module github.com/treedoc/treedoc

go 1.22

package treedoc_test

import (
	"fmt"
	"log"
	"time"

	"github.com/treedoc/treedoc"
)

// waitUntil polls a condition with a deadline, for examples that span
// real replication engines.
func waitUntil(cond func() bool) {
	deadline := time.Now().Add(30 * time.Second)
	for !cond() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}

// Two replicas edit concurrently and converge by exchanging operations.
func Example() {
	alice, err := treedoc.New(treedoc.WithSite(1))
	if err != nil {
		log.Fatal(err)
	}
	bob, err := treedoc.New(treedoc.WithSite(2))
	if err != nil {
		log.Fatal(err)
	}

	op1, _ := alice.InsertAt(0, "hello")
	op2, _ := alice.Append("world")
	_ = bob.Apply(op1)
	_ = bob.Apply(op2)

	// Concurrent edits commute.
	opA, _ := alice.InsertAt(1, "brave")
	opB, _ := bob.Append("!")
	_ = alice.Apply(opB)
	_ = bob.Apply(opA)

	fmt.Println(alice.ContentString())
	fmt.Println(alice.ContentString() == bob.ContentString())
	// Output:
	// hello
	// brave
	// world
	// !
	// true
}

// Operations serialise for transport with encoding.BinaryMarshaler.
func ExampleOp() {
	d, _ := treedoc.New(treedoc.WithSite(1))
	op, _ := d.InsertAt(0, "payload")

	wire, _ := op.MarshalBinary()
	var received treedoc.Op
	_ = received.UnmarshalBinary(wire)

	peer, _ := treedoc.New(treedoc.WithSite(2))
	_ = peer.Apply(received)
	fmt.Println(peer.ContentString())
	// Output:
	// payload
}

// Flatten compacts a quiescent document to a plain array with zero
// metadata overhead.
func ExampleDoc_Flatten() {
	d, _ := treedoc.New(treedoc.WithSite(1))
	for i := 0; i < 100; i++ {
		_, _ = d.Append("line")
	}
	for i := 0; i < 40; i++ {
		_, _ = d.DeleteAt(0) // tombstones pile up under SDIS
	}
	before := d.Stats()
	_ = d.Flatten()
	after := d.Stats()
	fmt.Println(before.Tree.DeadMinis > 0, after.Tree.DeadMinis, after.Tree.MemBytes)
	// Output:
	// true 0 0
}

// TextBuffer adapts a replica to a text editor's splice interface.
func ExampleTextBuffer() {
	buf, _ := treedoc.NewTextBuffer(treedoc.WithSite(1))
	_, _ = buf.Append("hello world")
	_, _ = buf.Splice(6, 5, "treedoc") // replace "world"
	fmt.Println(buf.String())
	// Output:
	// hello treedoc
}

// A simulated cluster replicates edits through causal broadcast and
// coordinates flatten with the commitment protocol.
func ExampleCluster() {
	cluster, _ := treedoc.NewCluster(3, treedoc.WithSeed(1))
	r1, _ := cluster.Replica(1)
	for i, s := range []string{"a", "b", "c"} {
		_ = r1.InsertAt(i, s)
	}
	cluster.Run(0) // deliver everything

	r3, _ := cluster.Replica(3)
	fmt.Println(r3.ContentString())
	fmt.Println(cluster.Converged())
	// Output:
	// a
	// b
	// c
	// true
}

// Flatten runs over live replication engines, not just the simulator:
// ProposeFlatten drives the paper's commitment protocol between the
// engines, and the committed flatten travels the causal stream like any
// operation — ordered before every post-flatten edit at every replica.
func ExampleEngine_ProposeFlatten() {
	alice, _ := treedoc.NewTextBuffer(treedoc.WithSite(1))
	bob, _ := treedoc.NewTextBuffer(treedoc.WithSite(2))
	ea, _ := treedoc.NewEngine(1, alice, treedoc.WithSyncInterval(10*time.Millisecond))
	eb, _ := treedoc.NewEngine(2, bob, treedoc.WithSyncInterval(10*time.Millisecond))
	defer ea.Stop()
	defer eb.Stop()
	la, lb := treedoc.NewChanPair(64)
	ea.Connect(la)
	eb.Connect(lb)

	ops, _ := alice.Append("shared document with history")
	_ = ea.Broadcast(ops...)
	waitUntil(func() bool { return bob.String() == alice.String() })
	ops, _ = bob.Delete(0, 7) // deletes leave tombstones under SDIS
	_ = eb.Broadcast(ops...)
	waitUntil(func() bool { return alice.String() == bob.String() })

	// Two-phase commit across the engines; the commit compacts everyone.
	_ = ea.ProposeFlatten()
	waitUntil(func() bool { return ea.FlattensApplied() == 1 && eb.FlattensApplied() == 1 })

	fmt.Println(alice.String())
	fmt.Println(alice.Stats().Tree.MemBytes, bob.Stats().Tree.MemBytes)
	// Output:
	// document with history
	// 0 0
}

// One process can replicate many documents over a single hub
// connection: a Session multiplexes per-document links, each feeding
// its own engine+replica pair. This is the fan-in shape cmd/treedoc-load
// drives at scale — thousands of client sessions sharing a bounded dial
// pool against a sharded hub fleet.
func ExampleDialSession() {
	hub, _ := treedoc.ListenHub("127.0.0.1:0")
	defer hub.Close()
	addr := hub.Addr().String()

	// Two processes' worth of clients, each editing both documents
	// through one TCP connection.
	type replica struct {
		buf *treedoc.TextBuffer
		eng *treedoc.Engine
	}
	fleet := make(map[string][]replica) // doc -> its replicas
	for i, sess := range []*treedoc.Session{treedoc.DialSession(addr), treedoc.DialSession(addr)} {
		defer sess.Close()
		for _, doc := range []string{"notes", "wiki"} {
			site := treedoc.SiteID(2*i + len(doc)%2 + 1) // unique per (session, doc)
			buf, _ := treedoc.NewTextBuffer(treedoc.WithSite(site))
			eng, _ := treedoc.NewEngine(site, buf, treedoc.WithSyncInterval(20*time.Millisecond))
			defer eng.Stop()
			link, _ := sess.Attach(doc)
			eng.Connect(link)
			fleet[doc] = append(fleet[doc], replica{buf, eng})
		}
	}

	// The first replica of each document writes; the hub relays within
	// each document's group only.
	for doc, group := range fleet {
		ops, _ := group[0].buf.Append(doc + " content")
		_ = group[0].eng.Broadcast(ops...)
	}
	waitUntil(func() bool {
		for _, group := range fleet {
			if group[1].buf.String() != group[0].buf.String() {
				return false
			}
		}
		return true
	})

	fmt.Println(fleet["notes"][1].buf.String())
	fmt.Println(fleet["wiki"][1].buf.String())
	// Output:
	// notes content
	// wiki content
}

// Snapshots persist a replica, including the allocation state it needs to
// keep minting fresh identifiers after a restart.
func ExampleOpen() {
	d, _ := treedoc.New(treedoc.WithSite(9), treedoc.WithMode(treedoc.UDIS))
	_, _ = d.Append("persists")
	data, _ := d.MarshalBinary()

	restored, err := treedoc.Open(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(restored.ContentString(), restored.Site())
	// Output:
	// persists 9
}

package treedoc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func newBuf(t *testing.T, site SiteID) *TextBuffer {
	t.Helper()
	b, err := NewTextBuffer(WithSite(site))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTextBufferSplice(t *testing.T) {
	b := newBuf(t, 1)
	if _, err := b.Append("hello world"); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "hello world" {
		t.Fatalf("buffer = %q", got)
	}
	if b.Len() != 11 {
		t.Errorf("len = %d", b.Len())
	}
	// Replace "world" with "treedoc".
	if _, err := b.Splice(6, 5, "treedoc"); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "hello treedoc" {
		t.Errorf("buffer = %q", got)
	}
	if _, err := b.Insert(5, ","); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "hello, treedoc" {
		t.Errorf("buffer = %q", got)
	}
	if _, err := b.Delete(0, 7); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "treedoc" {
		t.Errorf("buffer = %q", got)
	}
	s, err := b.Slice(1, 5)
	if err != nil || s != "reed" {
		t.Errorf("Slice = %q, %v", s, err)
	}
}

func TestTextBufferUnicode(t *testing.T) {
	b := newBuf(t, 1)
	if _, err := b.Append("héllo wörld ✓"); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 13 {
		t.Errorf("rune len = %d, want 13", b.Len())
	}
	if _, err := b.Splice(6, 5, "mönde"); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "héllo mönde ✓" {
		t.Errorf("buffer = %q", got)
	}
}

func TestTextBufferErrors(t *testing.T) {
	b := newBuf(t, 1)
	if _, err := b.Splice(-1, 0, "x"); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := b.Splice(1, 0, "x"); err == nil {
		t.Error("offset beyond end accepted")
	}
	if _, err := b.Splice(0, 5, ""); err == nil {
		t.Error("over-long delete accepted")
	}
	if _, err := b.Slice(0, 1); err == nil {
		t.Error("slice beyond end accepted")
	}
	if _, err := b.Slice(-1, 0); err == nil {
		t.Error("negative slice accepted")
	}
}

func TestTextBufferConvergence(t *testing.T) {
	a, b := newBuf(t, 1), newBuf(t, 2)
	ops, err := a.Append("the quick fox")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyAll(ops); err != nil {
		t.Fatal(err)
	}
	// Concurrent typing at different cursor positions.
	opsA, err := a.Insert(4, "very ")
	if err != nil {
		t.Fatal(err)
	}
	opsB, err := b.Splice(10, 3, "brown fox jumps")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ApplyAll(opsB); err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyAll(opsA); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("diverged: %q vs %q", a.String(), b.String())
	}
	if want := "the very quick brown fox jumps"; a.String() != want {
		t.Errorf("converged = %q, want %q", a.String(), want)
	}
}

func TestTextBufferCompact(t *testing.T) {
	b := newBuf(t, 1)
	if _, err := b.Append(strings.Repeat("abcdefgh", 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Delete(100, 100); err != nil {
		t.Fatal(err)
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.Tree.MemBytes != 0 {
		t.Errorf("compact left %d bytes overhead", s.Tree.MemBytes)
	}
	if b.Len() != 300 {
		t.Errorf("len = %d", b.Len())
	}
	// Editing after compaction re-explodes lazily.
	if _, err := b.Insert(150, "X"); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 301 {
		t.Errorf("len = %d", b.Len())
	}
	if err := b.Doc().Check(); err != nil {
		t.Fatal(err)
	}
}

// TestTextBufferRandomTypists runs a differential test against a plain
// string: two replicas splice randomly (non-overlapping sessions mirrored
// through op exchange) and must match the reference after every exchange.
func TestTextBufferRandomTypists(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a, b := newBuf(t, 1), newBuf(t, 2)
	for round := 0; round < 60; round++ {
		// a edits, b follows.
		n := a.Len()
		off := 0
		if n > 0 {
			off = rng.Intn(n + 1)
		}
		del := 0
		if n-off > 0 && rng.Intn(3) == 0 {
			del = rng.Intn(min(4, n-off+1))
		}
		ins := ""
		if rng.Intn(4) > 0 {
			ins = fmt.Sprintf("<%d>", round)
		}
		ops, err := a.Splice(off, del, ins)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := b.ApplyAll(ops); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if a.String() != b.String() {
			t.Fatalf("round %d: diverged\n%q\n%q", round, a.String(), b.String())
		}
	}
	if err := a.Doc().Check(); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package treedoc

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/storage"
)

// Mode selects the disambiguator scheme (Section 3.3 of the paper).
type Mode = ident.Mode

// Disambiguator schemes.
const (
	// SDIS uses bare site identifiers; deletes leave tombstones until a
	// flatten collects them.
	SDIS = ident.SDIS
	// UDIS uses (counter, site) pairs; deletes discard immediately.
	UDIS = ident.UDIS
)

// Op is a replicable edit operation. Ops serialise with MarshalBinary /
// UnmarshalBinary for transport.
type Op = core.Op

// Operation kinds.
const (
	OpInsert = core.OpInsert
	OpDelete = core.OpDelete
)

// Stats bundles a replica's overhead measurements under the paper's cost
// models (Section 5).
type Stats = core.Stats

// SiteID identifies a replica (48 bits, non-zero).
type SiteID = ident.SiteID

// Option configures a Doc.
type Option func(*config) error

type config struct {
	core core.Config
}

// WithSite sets the replica's unique site identifier (required unless the
// Doc is created by a Cluster).
func WithSite(site SiteID) Option {
	return func(c *config) error {
		if site == 0 || site > ident.MaxSiteID {
			return fmt.Errorf("treedoc: site must be in [1, 2^48)")
		}
		c.core.Site = site
		return nil
	}
}

// WithMode selects SDIS (default) or UDIS.
func WithMode(m Mode) Option {
	return func(c *config) error {
		switch m {
		case SDIS, UDIS:
			c.core.Mode = m
			return nil
		default:
			return fmt.Errorf("treedoc: invalid mode %v", m)
		}
	}
}

// WithNaiveAllocation selects the paper's Algorithm 1 without balancing,
// mainly useful for comparison; the default is balanced allocation
// (Section 4.1).
func WithNaiveAllocation() Option {
	return func(c *config) error {
		c.core.Strategy = core.Naive{}
		return nil
	}
}

// WithBalancedAllocation selects the balancing strategy (the default).
func WithBalancedAllocation() Option {
	return func(c *config) error {
		c.core.Strategy = core.Balanced{}
		return nil
	}
}

// WithFlattenEvery enables the local flatten heuristic: every interval
// revisions (see EndRevision), the largest subtree quiet for coldRevisions
// revisions is compacted. Use only on single-replica documents or under
// external coordination; Cluster coordinates flatten itself.
func WithFlattenEvery(interval int, coldRevisions int) Option {
	return func(c *config) error {
		if interval < 0 || coldRevisions < 0 {
			return fmt.Errorf("treedoc: negative flatten policy")
		}
		c.core.Flatten = core.FlattenPolicy{Interval: interval, ColdRevisions: int64(coldRevisions), MinNodes: 2}
		return nil
	}
}

// WithCompactSiteIDs accounts overheads with 2-byte site identifiers (the
// paper's known-membership variant, Section 3.3.2) instead of 6-byte ones.
func WithCompactSiteIDs() Option {
	return func(c *config) error {
		c.core.Cost = ident.CompactCost()
		return nil
	}
}

// Doc is one replica of a Treedoc document. All methods are safe for
// concurrent use by multiple goroutines.
type Doc struct {
	mu  sync.Mutex
	doc *core.Document
}

// New creates an empty replica.
func New(opts ...Option) (*Doc, error) {
	var c config
	for _, o := range opts {
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	d, err := core.NewDocument(c.core)
	if err != nil {
		return nil, err
	}
	return &Doc{doc: d}, nil
}

// Site returns the replica's site identifier.
func (d *Doc) Site() SiteID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.Site()
}

// Len returns the number of atoms.
func (d *Doc) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.Len()
}

// Content returns the atoms in document order.
func (d *Doc) Content() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.Content()
}

// ContentString joins the atoms with newlines.
func (d *Doc) ContentString() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.ContentString()
}

// AtomAt returns the atom at index i.
func (d *Doc) AtomAt(i int) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.AtomAt(i)
}

// InsertAt inserts atom at index i (0 ≤ i ≤ Len) and returns the operation
// to broadcast to other replicas.
func (d *Doc) InsertAt(i int, atom string) (Op, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.InsertAt(i, atom)
}

// Append inserts atom at the end of the document.
func (d *Doc) Append(atom string) (Op, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.InsertAt(d.doc.Len(), atom)
}

// InsertRunAt inserts consecutive atoms starting at index i, packing them
// into a minimal subtree under balanced allocation (Section 4.1). One
// operation per atom is returned.
func (d *Doc) InsertRunAt(i int, atoms []string) ([]Op, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.InsertRunAt(i, atoms)
}

// DeleteAt removes the atom at index i and returns the operation to
// broadcast.
func (d *Doc) DeleteAt(i int) (Op, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.DeleteAt(i)
}

// Apply replays a remote operation. Operations must be delivered in
// happened-before order (each replica's operations in sequence, and an
// atom's insert before any of its deletes); under that contract concurrent
// operations commute and replicas converge.
func (d *Doc) Apply(op Op) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.Apply(op)
}

// ApplyAll replays a batch of operations in order.
func (d *Doc) ApplyAll(ops []Op) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, op := range ops {
		if err := d.doc.Apply(op); err != nil {
			return fmt.Errorf("treedoc: op %d: %w", i, err)
		}
	}
	return nil
}

// EndRevision marks the end of an edit session, driving the flatten
// heuristic configured with WithFlattenEvery.
func (d *Doc) EndRevision() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.doc.EndRevision()
}

// Flatten compacts the whole document into a plain array with zero
// metadata (the paper's best case). It must not run concurrently with
// remote edits: coordinate with the commitment protocol (see Cluster) or
// use it on single-replica documents.
func (d *Doc) Flatten() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.FlattenAll()
}

// Stats measures the replica's overheads.
func (d *Doc) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.Stats()
}

// Check verifies internal invariants; it is used by tests and returns nil
// on healthy documents.
func (d *Doc) Check() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.Check()
}

// snapshot format: magic, site, seq, counter, mode, tree bytes.
var snapMagic = []byte{'T', 'D', 'S', '1'}

// MarshalBinary snapshots the replica — document tree plus the persistent
// allocation state — using the heap-array on-disk format of Section 5.2.
func (d *Doc) MarshalBinary() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	buf := append([]byte(nil), snapMagic...)
	buf = binary.AppendUvarint(buf, uint64(d.doc.Site()))
	buf = binary.AppendUvarint(buf, d.doc.Seq())
	buf = binary.AppendUvarint(buf, uint64(d.doc.Counter()))
	buf = append(buf, byte(d.doc.Config().Mode))
	return append(buf, storage.Encode(d.doc.Tree())...), nil
}

// Open restores a replica from a snapshot. Options may override the
// allocation strategy or cost model but not the site or mode, which are
// part of the snapshot.
func Open(data []byte, opts ...Option) (*Doc, error) {
	if len(data) < len(snapMagic)+4 || string(data[:4]) != string(snapMagic) {
		return nil, fmt.Errorf("treedoc: bad snapshot header")
	}
	off := len(snapMagic)
	site, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, fmt.Errorf("treedoc: truncated snapshot site")
	}
	off += n
	seq, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, fmt.Errorf("treedoc: truncated snapshot seq")
	}
	off += n
	counter, n := binary.Uvarint(data[off:])
	if n <= 0 || counter > 1<<32-1 {
		return nil, fmt.Errorf("treedoc: truncated snapshot counter")
	}
	off += n
	if off >= len(data) {
		return nil, fmt.Errorf("treedoc: truncated snapshot mode")
	}
	mode := Mode(data[off])
	off++
	tree, err := storage.Decode(data[off:])
	if err != nil {
		return nil, fmt.Errorf("treedoc: snapshot tree: %w", err)
	}
	var c config
	for _, o := range opts {
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	c.core.Site = SiteID(site)
	c.core.Mode = mode
	doc, err := core.Restore(c.core, tree, seq, uint32(counter))
	if err != nil {
		return nil, err
	}
	return &Doc{doc: doc}, nil
}

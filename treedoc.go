package treedoc

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/doctree"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/storage"
	"github.com/treedoc/treedoc/internal/vclock"
)

// Mode selects the disambiguator scheme (Section 3.3 of the paper).
type Mode = ident.Mode

// Disambiguator schemes.
const (
	// SDIS uses bare site identifiers; deletes leave tombstones until a
	// flatten collects them.
	SDIS = ident.SDIS
	// UDIS uses (counter, site) pairs; deletes discard immediately.
	UDIS = ident.UDIS
)

// Op is a replicable edit operation. Ops serialise with MarshalBinary /
// UnmarshalBinary for transport.
type Op = core.Op

// Operation kinds.
const (
	OpInsert = core.OpInsert
	OpDelete = core.OpDelete
)

// Stats bundles a replica's overhead measurements under the paper's cost
// models (Section 5).
type Stats = core.Stats

// SiteID identifies a replica (48 bits, non-zero).
type SiteID = ident.SiteID

// Path is a position in the Treedoc identifier tree: an atom identifier
// (as carried by operations) or a structural subtree path (as used by
// flatten — nil or empty means the whole document). Values come from the
// library (Doc.ColdestSubtree, lock callbacks); external code treats
// them as opaque.
type Path = ident.Path

// Version is an applied version vector: per site, the highest operation
// sequence number whose effects are in a replica (or a snapshot of one).
type Version = vclock.VC

// Option configures a Doc.
type Option func(*config) error

type config struct {
	core core.Config
}

// WithSite sets the replica's unique site identifier (required unless the
// Doc is created by a Cluster).
func WithSite(site SiteID) Option {
	return func(c *config) error {
		if site == 0 || site > ident.MaxSiteID {
			return fmt.Errorf("treedoc: site must be in [1, 2^48)")
		}
		c.core.Site = site
		return nil
	}
}

// WithMode selects SDIS (default) or UDIS.
func WithMode(m Mode) Option {
	return func(c *config) error {
		switch m {
		case SDIS, UDIS:
			c.core.Mode = m
			return nil
		default:
			return fmt.Errorf("treedoc: invalid mode %v", m)
		}
	}
}

// WithNaiveAllocation selects the paper's Algorithm 1 without balancing,
// mainly useful for comparison; the default is balanced allocation
// (Section 4.1).
func WithNaiveAllocation() Option {
	return func(c *config) error {
		c.core.Strategy = core.Naive{}
		return nil
	}
}

// WithBalancedAllocation selects the balancing strategy (the default).
func WithBalancedAllocation() Option {
	return func(c *config) error {
		c.core.Strategy = core.Balanced{}
		return nil
	}
}

// WithFlattenEvery enables the local flatten heuristic: every interval
// revisions (see EndRevision), the largest subtree quiet for coldRevisions
// revisions is compacted. Use only on single-replica documents or under
// external coordination; Cluster coordinates flatten itself.
func WithFlattenEvery(interval int, coldRevisions int) Option {
	return func(c *config) error {
		if interval < 0 || coldRevisions < 0 {
			return fmt.Errorf("treedoc: negative flatten policy")
		}
		c.core.Flatten = core.FlattenPolicy{Interval: interval, ColdRevisions: int64(coldRevisions), MinNodes: 2}
		return nil
	}
}

// WithCompactSiteIDs accounts overheads with 2-byte site identifiers (the
// paper's known-membership variant, Section 3.3.2) instead of 6-byte ones.
func WithCompactSiteIDs() Option {
	return func(c *config) error {
		c.core.Cost = ident.CompactCost()
		return nil
	}
}

// Doc is one replica of a Treedoc document. All methods are safe for
// concurrent use by multiple goroutines.
type Doc struct {
	mu  sync.Mutex
	doc *core.Document // guarded by mu
	// locks are the regions frozen by outstanding flatten commitment votes
	// (keyed by an engine-issued token): local edits that touch a locked
	// subtree fail with ErrRegionLocked until the commitment decides. Remote
	// operations (Apply) are never blocked — the protocol guarantees no
	// conflicting remote operation exists while a lock is held. Guarded
	// by mu.
	locks map[uint64]ident.Path
}

// New creates an empty replica.
func New(opts ...Option) (*Doc, error) {
	var c config
	for _, o := range opts {
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	d, err := core.NewDocument(c.core)
	if err != nil {
		return nil, fmt.Errorf("treedoc: new: %w", err)
	}
	return &Doc{doc: d}, nil
}

// Site returns the replica's site identifier.
func (d *Doc) Site() SiteID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.Site()
}

// Len returns the number of atoms.
func (d *Doc) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.Len()
}

// Content returns the atoms in document order.
func (d *Doc) Content() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.Content()
}

// ContentString joins the atoms with newlines.
func (d *Doc) ContentString() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.ContentString()
}

// AtomAt returns the atom at index i.
func (d *Doc) AtomAt(i int) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, err := d.doc.AtomAt(i)
	if err != nil {
		return "", fmt.Errorf("treedoc: atom at %d: %w", i, err)
	}
	return a, nil
}

// VisitRange calls fn for each atom of the index range [from, to) in
// document order, under one lock and one tree walk — O(height + to - from),
// where per-index AtomAt calls would descend from the root each time.
// Iteration stops early if fn returns false. fn must not call back into
// the Doc.
func (d *Doc) VisitRange(from, to int, fn func(atom string) bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.doc.VisitRange(from, to, fn); err != nil {
		return fmt.Errorf("treedoc: visit range [%d,%d): %w", from, to, err)
	}
	return nil
}

// InsertAt inserts atom at index i (0 ≤ i ≤ Len) and returns the operation
// to broadcast to other replicas. While a flatten commitment vote has the
// target region locked it fails with an error wrapping ErrRegionLocked;
// retry once the commitment decides.
func (d *Doc) InsertAt(i int, atom string) (Op, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.gapLocked(i) {
		return Op{}, fmt.Errorf("treedoc: insert at %d: %w", i, core.ErrRegionLocked)
	}
	op, err := d.doc.InsertAt(i, atom)
	if err != nil {
		return Op{}, fmt.Errorf("treedoc: insert at %d: %w", i, err)
	}
	return op, nil
}

// Append inserts atom at the end of the document.
func (d *Doc) Append(atom string) (Op, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.doc.Len()
	if d.gapLocked(n) {
		return Op{}, fmt.Errorf("treedoc: insert at %d: %w", n, core.ErrRegionLocked)
	}
	op, err := d.doc.InsertAt(n, atom)
	if err != nil {
		return Op{}, fmt.Errorf("treedoc: insert at %d: %w", n, err)
	}
	return op, nil
}

// InsertRunAt inserts consecutive atoms starting at index i, packing them
// into a minimal subtree under balanced allocation (Section 4.1). One
// operation per atom is returned. Like InsertAt, it fails with
// ErrRegionLocked while a flatten vote has the target gap locked.
func (d *Doc) InsertRunAt(i int, atoms []string) ([]Op, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.gapLocked(i) {
		return nil, fmt.Errorf("treedoc: insert at %d: %w", i, core.ErrRegionLocked)
	}
	ops, err := d.doc.InsertRunAt(i, atoms)
	if err != nil {
		return nil, fmt.Errorf("treedoc: insert at %d: %w", i, err)
	}
	return ops, nil
}

// DeleteAt removes the atom at index i and returns the operation to
// broadcast. Like InsertAt, it fails with ErrRegionLocked while a flatten
// vote has the atom's region locked.
func (d *Doc) DeleteAt(i int) (Op, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.locks) > 0 {
		id, err := d.doc.IDAt(i)
		if err != nil {
			return Op{}, fmt.Errorf("treedoc: delete at %d: %w", i, err)
		}
		if d.idLocked(id) {
			return Op{}, fmt.Errorf("treedoc: delete at %d: %w", i, core.ErrRegionLocked)
		}
	}
	op, err := d.doc.DeleteAt(i)
	if err != nil {
		return Op{}, fmt.Errorf("treedoc: delete at %d: %w", i, err)
	}
	return op, nil
}

// Apply replays a remote operation. Operations must be delivered in
// happened-before order (each replica's operations in sequence, and an
// atom's insert before any of its deletes); under that contract concurrent
// operations commute and replicas converge.
func (d *Doc) Apply(op Op) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.doc.Apply(op); err != nil {
		return fmt.Errorf("treedoc: apply: %w", err)
	}
	return nil
}

// ApplyAll replays a batch of operations in order.
func (d *Doc) ApplyAll(ops []Op) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, op := range ops {
		if err := d.doc.Apply(op); err != nil {
			return fmt.Errorf("treedoc: op %d: %w", i, err)
		}
	}
	return nil
}

// ApplyBatch replays remote operations in order under one lock, returning
// how many applied before the first failure (len(ops) and nil on success).
// The replication engine prefers it over per-op Apply: one lock acquisition
// per delivered frame, and the document's walk caches stay hot across the
// whole batch instead of being re-primed per call.
func (d *Doc) ApplyBatch(ops []Op) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, op := range ops {
		if err := d.doc.Apply(op); err != nil {
			return i, fmt.Errorf("treedoc: op %d: %w", i, err)
		}
	}
	return len(ops), nil
}

// EndRevision marks the end of an edit session, driving the flatten
// heuristic configured with WithFlattenEvery.
func (d *Doc) EndRevision() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.doc.EndRevision()
}

// Flatten compacts the whole document into a plain array with zero
// metadata (the paper's best case). It must not run concurrently with
// remote edits: coordinate with the commitment protocol (see Cluster) or
// use it on single-replica documents.
func (d *Doc) Flatten() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.doc.FlattenAll(); err != nil {
		return fmt.Errorf("treedoc: flatten: %w", err)
	}
	return nil
}

// Stats measures the replica's overheads.
func (d *Doc) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.Stats()
}

// ErrRegionLocked is returned for local edits blocked by an outstanding
// flatten commitment vote on their region — by a Cluster replica and by a
// Doc or TextBuffer wrapped in a replication Engine alike. Retry after the
// commitment decides (commits normally settle within one round trip; a
// coordinator crash holds the lock until its timeout aborts).
var ErrRegionLocked = core.ErrRegionLocked

// LockRegion freezes the subtree at the structural path against local
// edits until UnlockRegion is called with the same token: edits that touch
// the region fail with an error wrapping ErrRegionLocked. The replication
// engine calls it when this replica votes Yes in a flatten commitment —
// the vote promises the region stays untouched until the decision — so
// application code never needs it directly.
func (d *Doc) LockRegion(token uint64, path Path) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.locks == nil {
		d.locks = make(map[uint64]ident.Path)
	}
	d.locks[token] = path.Clone()
}

// UnlockRegion releases a LockRegion freeze.
func (d *Doc) UnlockRegion(token uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.locks, token)
}

// idLocked reports whether the atom identifier falls inside a locked
// region; d.mu must be held.
func (d *Doc) idLocked(id ident.Path) bool {
	for _, l := range d.locks {
		if ident.RegionCompare(id, l) == 0 {
			return true
		}
	}
	return false
}

// gapLocked reports whether an insert into the gap at index i could touch
// a locked region; d.mu must be held. An out-of-range index is never
// "locked" — it falls through to the core's own range error, so a caller
// retrying on ErrRegionLocked is not strung along by an index that can
// never succeed.
//
//treedoc:holds mu
func (d *Doc) gapLocked(i int) bool {
	if len(d.locks) == 0 || i < 0 || i > d.doc.Len() {
		return false
	}
	var p, f ident.Path
	if i > 0 {
		if id, err := d.doc.IDAt(i - 1); err == nil {
			p = id
		}
	}
	if i < d.doc.Len() {
		if id, err := d.doc.IDAt(i); err == nil {
			f = id
		}
	}
	return d.gapLockedIDs(p, f)
}

// gapLockedIDs reports whether an insert between neighbour identifiers p
// and f (nil = document start/end) could touch a locked region: either
// neighbour lies inside one, or a locked region lies strictly inside the
// open gap (where a fresh identifier could be allocated). d.mu must be
// held.
func (d *Doc) gapLockedIDs(p, f ident.Path) bool {
	if p != nil && d.idLocked(p) {
		return true
	}
	if f != nil && d.idLocked(f) {
		return true
	}
	for _, l := range d.locks {
		loBefore := p == nil || ident.RegionCompare(p, l) < 0
		hiAfter := f == nil || ident.RegionCompare(f, l) > 0
		if loBefore && hiAfter {
			return true
		}
	}
	return false
}

// spliceOps deletes delCount atoms at off, then inserts atoms there, as
// one atomic local edit: region-lock checks for the whole splice happen
// before the first delete is applied, so a flatten vote can never land
// between the deletes and the insert and leave half a splice applied but
// unbroadcast. TextBuffer.Splice is the caller.
func (d *Doc) spliceOps(off, delCount int, atoms []string) ([]Op, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.locks) > 0 {
		for i := off; i < off+delCount; i++ {
			id, err := d.doc.IDAt(i)
			if err != nil {
				return nil, err
			}
			if d.idLocked(id) {
				return nil, fmt.Errorf("treedoc: delete at %d: %w", i, core.ErrRegionLocked)
			}
		}
		if len(atoms) > 0 {
			// The insert lands in the gap left once the deletes are applied:
			// between the atoms now at off-1 and off+delCount.
			var p, f ident.Path
			if off > 0 {
				if id, err := d.doc.IDAt(off - 1); err == nil {
					p = id
				}
			}
			if off+delCount < d.doc.Len() {
				if id, err := d.doc.IDAt(off + delCount); err == nil {
					f = id
				}
			}
			if d.gapLockedIDs(p, f) {
				return nil, fmt.Errorf("treedoc: insert at %d: %w", off, core.ErrRegionLocked)
			}
		}
	}
	ops := make([]Op, 0, delCount+len(atoms))
	for i := 0; i < delCount; i++ {
		op, err := d.doc.DeleteAt(off)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	if len(atoms) > 0 {
		ins, err := d.doc.InsertRunAt(off, atoms)
		if err != nil {
			return nil, err
		}
		ops = append(ops, ins...)
	}
	return ops, nil
}

// FlattenOp executes a committed flatten as a local operation and returns
// the operation to broadcast, exactly as InsertAt does for inserts. It is
// the commit step of the distributed flatten protocol: only the
// coordinator of a successful commitment may call it (the replication
// engine does; see Engine.ProposeFlatten), because a flatten issued while
// any replica holds a concurrent edit of the region would diverge.
// afterSeq is the local sequence number (Version()[Site()]) the caller
// verified quiescence at; a concurrent local edit since then fails the
// mint with core.ErrMintRaced, leaving the replica untouched.
func (d *Doc) FlattenOp(path Path, afterSeq uint64) (Op, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	op, err := d.doc.FlattenOp(path, afterSeq)
	if err != nil {
		return Op{}, fmt.Errorf("treedoc: flatten op: %w", err)
	}
	return op, nil
}

// ColdestSubtree returns the structural path of the best flatten
// candidate — the largest tombstone-heavy subtree quiet for the given
// number of revisions (see EndRevision) — or nil when nothing qualifies.
// The replication engine uses it to pick cold-subtree flatten proposals.
func (d *Doc) ColdestSubtree(revisions int64, minNodes int) Path {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.ColdestSubtree(revisions, minNodes)
}

// Check verifies internal invariants; it is used by tests and returns nil
// on healthy documents.
func (d *Doc) Check() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.doc.Check(); err != nil {
		return fmt.Errorf("treedoc: check: %w", err)
	}
	return nil
}

// Snapshot formats. TDS1 (magic, site, seq, counter, mode, tree bytes)
// predates version vectors; TDS2 inserts the applied version vector
// between the mode byte and the tree so a snapshot says exactly which
// operations it stands in for. MarshalBinary writes TDS2; Open and
// InstallSnapshot read both.
var (
	snapMagic   = []byte{'T', 'D', 'S', '2'}
	snapMagicV1 = []byte{'T', 'D', 'S', '1'}
)

// snapshot is a decoded replica snapshot.
type snapshot struct {
	site    SiteID
	seq     uint64
	counter uint32
	mode    Mode
	version vclock.VC
	// exactVersion is false for legacy TDS1 snapshots, whose version is
	// derived as {site: seq} and may omit remote entries.
	exactVersion bool
	tree         *doctree.Tree
}

// MarshalBinary snapshots the replica — document tree, persistent
// allocation state, and applied version vector — using the heap-array
// on-disk format of Section 5.2 for the tree.
func (d *Doc) MarshalBinary() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.marshalLocked(), nil
}

//treedoc:holds mu
func (d *Doc) marshalLocked() []byte {
	buf := append([]byte(nil), snapMagic...)
	buf = binary.AppendUvarint(buf, uint64(d.doc.Site()))
	buf = binary.AppendUvarint(buf, d.doc.Seq())
	buf = binary.AppendUvarint(buf, uint64(d.doc.Counter()))
	buf = append(buf, byte(d.doc.Config().Mode))
	buf = d.doc.Version().AppendBinary(buf)
	// Appending the tree directly avoids encoding it into a separate
	// buffer and copying it over.
	return storage.AppendEncode(buf, d.doc.Tree())
}

// Snapshot captures the replica state and the version vector describing
// it in one atomic step: the returned version covers exactly the
// operations whose effects are in the returned bytes. The replication
// engine uses it for compaction barriers and snapshot catch-up.
func (d *Doc) Snapshot() ([]byte, Version, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.marshalLocked(), d.doc.Version(), nil
}

// Version returns a copy of the applied version vector: per site, the
// highest operation sequence number reflected in the document.
func (d *Doc) Version() Version {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.doc.Version()
}

// InstallSnapshot replaces the replica's state with a snapshot whose
// version vector dominates the replica's own — snapshot-based catch-up
// for a joiner too far behind to replay the operation log. The replica
// keeps its site identity; its sequence and disambiguator counters
// advance past anything the snapshot contains, so it never re-mints an
// identifier. A snapshot that does not cover the replica's applied state
// is rejected with an error wrapping core.ErrStaleSnapshot, leaving the
// replica untouched. The installed version vector is returned.
func (d *Doc) InstallSnapshot(data []byte) (Version, error) {
	snap, err := decodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	if !snap.exactVersion {
		// A TDS1 version is an under-approximation ({site: seq}, remote
		// entries unknown): it could pass the dominance check while the
		// snapshot is missing remote operations this replica has applied,
		// silently discarding them. Legacy snapshots restore via Open only.
		return nil, fmt.Errorf("treedoc: cannot install a TDS1 snapshot (no version vector); re-save it with MarshalBinary")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if snap.mode != d.doc.Config().Mode {
		return nil, fmt.Errorf("treedoc: snapshot mode %v does not match replica mode %v", snap.mode, d.doc.Config().Mode)
	}
	if err := d.doc.InstallSnapshot(snap.tree, snap.version, snap.site, snap.seq, snap.counter); err != nil {
		return nil, fmt.Errorf("treedoc: %w", err)
	}
	return d.doc.Version(), nil
}

// decodeSnapshot parses and validates a TDS1 or TDS2 snapshot.
func decodeSnapshot(data []byte) (snapshot, error) {
	var snap snapshot
	if len(data) < len(snapMagic)+4 {
		return snap, fmt.Errorf("treedoc: bad snapshot header")
	}
	v2 := string(data[:4]) == string(snapMagic)
	if !v2 && string(data[:4]) != string(snapMagicV1) {
		return snap, fmt.Errorf("treedoc: bad snapshot header")
	}
	off := len(snapMagic)
	site, n := binary.Uvarint(data[off:])
	if n <= 0 || site == 0 || SiteID(site) > ident.MaxSiteID {
		return snap, fmt.Errorf("treedoc: bad snapshot site")
	}
	off += n
	seq, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return snap, fmt.Errorf("treedoc: truncated snapshot seq")
	}
	off += n
	counter, n := binary.Uvarint(data[off:])
	if n <= 0 || counter > 1<<32-1 {
		return snap, fmt.Errorf("treedoc: truncated snapshot counter")
	}
	off += n
	if off >= len(data) {
		return snap, fmt.Errorf("treedoc: truncated snapshot mode")
	}
	mode := Mode(data[off])
	off++
	version := vclock.New()
	if v2 {
		vc, k, err := vclock.DecodeBinary(data[off:], -1)
		if err != nil {
			return snap, fmt.Errorf("treedoc: snapshot version: %w", err)
		}
		off += k
		version = vc
	} else if seq > 0 {
		version[SiteID(site)] = seq
	}
	tree, err := storage.Decode(data[off:])
	if err != nil {
		return snap, fmt.Errorf("treedoc: snapshot tree: %w", err)
	}
	snap = snapshot{site: SiteID(site), seq: seq, counter: uint32(counter), mode: mode, version: version, exactVersion: v2, tree: tree}
	return snap, nil
}

// Open restores a replica from a snapshot. Options may override the
// allocation strategy or cost model but not the site or mode, which are
// part of the snapshot.
func Open(data []byte, opts ...Option) (*Doc, error) {
	snap, err := decodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	var c config
	for _, o := range opts {
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	c.core.Site = snap.site
	c.core.Mode = snap.mode
	doc, err := core.Restore(c.core, snap.tree, snap.seq, snap.counter, snap.version)
	if err != nil {
		return nil, fmt.Errorf("treedoc: open snapshot: %w", err)
	}
	return &Doc{doc: doc}, nil
}

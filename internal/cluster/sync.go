package cluster

import (
	"github.com/treedoc/treedoc/internal/causal"
	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// Anti-entropy: operation gossip is lossy (simnet drops it with the
// configured probability), so replicas periodically exchange vector-clock
// digests and retransmit what the peer is missing. This implements the
// paper's delivery assumption — "eventually, every site executes every
// action" (Section 1) — over an unreliable transport.
//
// The exchange is a classic two-message protocol:
//
//	A → B: syncRequest{A's delivered clock}
//	B → A: syncReply{every message B has that A's clock does not cover}
//
// Replies carry the original causally-stamped messages, so the receiving
// buffer deduplicates and orders them exactly like first deliveries. Sync
// traffic itself is reliable (it does not implement Lossy).

// syncRequest asks a peer for everything missing from the sender's clock.
type syncRequest struct {
	From  ident.SiteID
	Clock vclock.VC
}

// syncReply retransmits messages the requester was missing.
type syncReply struct {
	From ident.SiteID
	Msgs []causal.Message
}

// remember retains a stamped message for future retransmission. Both own
// broadcasts and delivered remote messages are kept: a replica can heal a
// third party's loss.
func (r *Replica) remember(m causal.Message) {
	r.msgLog = append(r.msgLog, m)
}

// SyncWith sends an anti-entropy digest to one peer; the peer responds with
// everything this replica is missing. Call periodically (or after suspected
// loss); the cost is one digest message plus the missing operations.
func (r *Replica) SyncWith(peer ident.SiteID) {
	if peer == r.id {
		return
	}
	r.c.net.Send(r.id, peer, syncRequest{From: r.id, Clock: r.buf.Clock()})
}

// missingFor collects retained messages not covered by the clock.
func (r *Replica) missingFor(clock vclock.VC) []causal.Message {
	var out []causal.Message
	for _, m := range r.msgLog {
		if m.TS.Get(m.From) > clock.Get(m.From) {
			out = append(out, m)
		}
	}
	return out
}

// handleSync processes the two sync message kinds.
func (c *Cluster) handleSync(r *Replica, payload any) bool {
	switch m := payload.(type) {
	case syncRequest:
		if missing := r.missingFor(m.Clock); len(missing) > 0 {
			c.net.Send(r.id, m.From, syncReply{From: r.id, Msgs: missing})
		}
		return true
	case syncReply:
		for _, msg := range m.Msgs {
			r.ingest(msg)
		}
		return true
	}
	return false
}

// ingest feeds one causally-stamped message into the replica, applying
// whatever becomes deliverable.
func (r *Replica) ingest(m causal.Message) {
	deliverable, err := r.buf.Add(m)
	if err != nil {
		return
	}
	for _, dm := range deliverable {
		r.remember(dm)
		if op, ok := dm.Payload.(core.Op); ok {
			if err := r.doc.Apply(op); err == nil {
				r.record(op)
			}
		}
	}
}

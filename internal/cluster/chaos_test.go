package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/simnet"
)

// TestChaos drives a cluster through long random schedules of edits,
// partial delivery, partitions, heals, and flatten proposals — the full
// system under adversarial interleaving. After final healing and
// quiescence, every replica must converge and satisfy every structural
// invariant. Each seed is a different schedule.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos runs are slow")
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaos(t, seed)
		})
	}
}

func runChaos(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	const sites = 4
	mode := ident.SDIS
	if seed%2 == 0 {
		mode = ident.UDIS
	}
	c, err := New(Config{
		Sites: sites,
		Net:   simnet.Config{MinLatency: 1, MaxLatency: 40, Seed: seed},
		Doc: func(site ident.SiteID) core.Config {
			return core.Config{Mode: mode, Strategy: core.Balanced{}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	type cut struct{ a, b ident.SiteID }
	var cuts []cut
	blocked, edits, proposals := 0, 0, 0
	for step := 0; step < 600; step++ {
		switch r := rng.Intn(100); {
		case r < 55: // local edit at a random site
			site := ident.SiteID(1 + rng.Intn(sites))
			rep := c.Replica(site)
			n := rep.Doc().Len()
			var err error
			if n == 0 || rng.Intn(100) < 65 {
				err = rep.InsertAt(rng.Intn(n+1), fmt.Sprintf("s%d-%d", site, step))
			} else {
				err = rep.DeleteAt(rng.Intn(n))
			}
			switch err {
			case nil:
				edits++
			case ErrLocked:
				blocked++ // legal: a flatten vote is open on the region
			default:
				t.Fatalf("step %d: %v", step, err)
			}
		case r < 75: // deliver a burst
			c.Run(1 + rng.Intn(20))
		case r < 83 && len(cuts) < 3: // partition a random pair
			a := ident.SiteID(1 + rng.Intn(sites))
			b := ident.SiteID(1 + rng.Intn(sites))
			if a != b {
				if err := c.Net().Partition(a, b); err != nil {
					t.Fatal(err)
				}
				cuts = append(cuts, cut{a, b})
			}
		case r < 90 && len(cuts) > 0: // heal one pair
			i := rng.Intn(len(cuts))
			c.Net().Heal(cuts[i].a, cuts[i].b)
			cuts = append(cuts[:i], cuts[i+1:]...)
		case r < 96: // advance revisions (cold-subtree clock)
			for _, s := range c.Sites() {
				c.Replica(s).Doc().EndRevision()
			}
		default: // propose a flatten from a random site
			site := ident.SiteID(1 + rng.Intn(sites))
			if _, ok := c.Replica(site).ProposeFlattenCold(1, 2); ok {
				proposals++
			}
		}
	}
	c.Net().HealAll()
	c.Run(0)
	if ok, diag := c.Converged(); !ok {
		t.Fatalf("after %d edits (%d blocked), %d flatten proposals: %s",
			edits, blocked, proposals, diag)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	if c.Replica(1).Doc().Len() == 0 {
		t.Error("degenerate chaos run: empty document")
	}
	// Committed flattens, if any, applied at every site or none.
	applied := c.Replica(1).FlattensApplied()
	for _, s := range c.Sites() {
		if got := c.Replica(s).FlattensApplied(); got != applied {
			t.Errorf("site %d applied %d flattens, site 1 applied %d", s, got, applied)
		}
	}
}

// TestChaosDeterminism: the same seed must produce the same final document
// (the whole stack is deterministic, which is what makes failures
// reproducible).
func TestChaosDeterminism(t *testing.T) {
	run := func() string {
		rng := rand.New(rand.NewSource(42))
		c, err := New(Config{Sites: 3, Net: simnet.Config{MinLatency: 1, MaxLatency: 30, Seed: 42}})
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 200; step++ {
			site := ident.SiteID(1 + rng.Intn(3))
			rep := c.Replica(site)
			n := rep.Doc().Len()
			if n == 0 || rng.Intn(3) > 0 {
				_ = rep.InsertAt(rng.Intn(n+1), fmt.Sprintf("%d", step))
			} else {
				_ = rep.DeleteAt(rng.Intn(n))
			}
			c.Run(rng.Intn(5))
		}
		c.Run(0)
		return c.Replica(1).Doc().ContentString()
	}
	if a, b := run(), run(); a != b {
		t.Error("same seed produced different histories")
	}
}

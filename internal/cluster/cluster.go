// Package cluster wires Treedoc replicas into a simulated cooperative
// editing group: each site couples a core.Document with a causal delivery
// buffer (internal/causal) over the discrete-event network
// (internal/simnet), and participates in the flatten commitment protocol
// (internal/commit). This is the peer-to-peer setting the paper targets:
// "common edit operations execute optimistically, with no latency; replicas
// synchronise only in the background" (Section 6).
package cluster

import (
	"fmt"
	"sort"

	"github.com/treedoc/treedoc/internal/causal"
	"github.com/treedoc/treedoc/internal/commit"
	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/simnet"
	"github.com/treedoc/treedoc/internal/vclock"
)

// Replica is one site: document, causal delivery, and commitment roles.
type Replica struct {
	id    ident.SiteID
	doc   *core.Document
	buf   *causal.Buffer
	part  *commit.Participant
	coord *commit.Coordinator
	c     *Cluster

	// log holds applied ops uncovered by the last flatten, for the
	// commitment vote ("observes the execution of insert, delete or flatten
	// within the sub-tree", Section 4.2.1).
	log []logged
	// flattenClock is the causal clock at the last applied flatten; any
	// proposal must dominate it (a flatten counts as an edit of its region,
	// and identifiers are renamed by it).
	flattenClock vclock.VC

	flattensApplied int
	editsBlocked    int
	commitErrs      []error

	// msgLog retains every stamped message seen (own and delivered remote)
	// for anti-entropy retransmission (sync.go).
	msgLog []causal.Message
}

type logged struct {
	site ident.SiteID
	seq  uint64
	id   ident.Path
}

// Cluster is a group of replicas on one simulated network.
type Cluster struct {
	net      *simnet.Network
	replicas map[ident.SiteID]*Replica
	sites    []ident.SiteID
	timeout  int64
}

// Config parameterises a cluster.
type Config struct {
	// Sites is the number of replicas (site ids 1..Sites).
	Sites int
	// Net configures the simulated network.
	Net simnet.Config
	// Doc builds each replica's document configuration; nil uses defaults
	// (SDIS, balanced strategy).
	Doc func(site ident.SiteID) core.Config
	// CommitTimeout is the 2PC deadline in virtual milliseconds (default
	// 10× max latency).
	CommitTimeout int64
}

// New creates a cluster of replicas.
func New(cfg Config) (*Cluster, error) {
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("cluster: need at least one site")
	}
	if cfg.CommitTimeout == 0 {
		max := cfg.Net.MaxLatency
		if max == 0 {
			max = 50
		}
		cfg.CommitTimeout = 10 * max
	}
	c := &Cluster{
		net:      simnet.New(cfg.Net),
		replicas: make(map[ident.SiteID]*Replica, cfg.Sites),
		timeout:  cfg.CommitTimeout,
	}
	for i := 1; i <= cfg.Sites; i++ {
		site := ident.SiteID(i)
		dc := core.Config{Site: site}
		if cfg.Doc != nil {
			dc = cfg.Doc(site)
			dc.Site = site
		}
		doc, err := core.NewDocument(dc)
		if err != nil {
			return nil, fmt.Errorf("cluster: site %d: %w", site, err)
		}
		r := &Replica{
			id:    site,
			doc:   doc,
			buf:   causal.NewBuffer(site),
			coord: commit.NewCoordinator(site),
			c:     c,
		}
		r.part = commit.NewParticipant(site, (*resource)(r))
		c.replicas[site] = r
		c.sites = append(c.sites, site)
	}
	sort.Slice(c.sites, func(i, j int) bool { return c.sites[i] < c.sites[j] })
	return c, nil
}

// Replica returns the replica for a site id.
func (c *Cluster) Replica(site ident.SiteID) *Replica { return c.replicas[site] }

// Sites returns the site ids in ascending order.
func (c *Cluster) Sites() []ident.SiteID { return append([]ident.SiteID(nil), c.sites...) }

// Net exposes the network for partition control in tests.
func (c *Cluster) Net() *simnet.Network { return c.net }

// Doc returns the replica's document (read-mostly access for assertions and
// measurements).
func (r *Replica) Doc() *core.Document { return r.doc }

// ID returns the replica's site id.
func (r *Replica) ID() ident.SiteID { return r.id }

// EditsBlocked counts local edits rejected because a flatten vote had
// locked their region.
func (r *Replica) EditsBlocked() int { return r.editsBlocked }

// FlattensApplied counts committed flattens applied at this replica.
func (r *Replica) FlattensApplied() int { return r.flattensApplied }

// ErrLocked is returned for local edits inside a region locked by an
// outstanding flatten vote; the caller may retry after the decision. It is
// the same sentinel the transport engine's Doc-level locks use, so one
// errors.Is check covers both distribution layers.
var ErrLocked = core.ErrRegionLocked

// InsertAt performs a local insert and broadcasts it.
func (r *Replica) InsertAt(i int, atom string) error {
	if r.gapLocked(i) {
		r.editsBlocked++
		return ErrLocked
	}
	op, err := r.doc.InsertAt(i, atom)
	if err != nil {
		return fmt.Errorf("cluster: insert at %d: %w", i, err)
	}
	r.record(op)
	r.broadcast(op)
	return nil
}

// DeleteAt performs a local delete and broadcasts it.
func (r *Replica) DeleteAt(i int) error {
	id, err := r.doc.IDAt(i)
	if err != nil {
		return fmt.Errorf("cluster: delete at %d: %w", i, err)
	}
	if r.part.Blocks(id) {
		r.editsBlocked++
		return ErrLocked
	}
	op, err := r.doc.DeleteAt(i)
	if err != nil {
		return fmt.Errorf("cluster: delete at %d: %w", i, err)
	}
	r.record(op)
	r.broadcast(op)
	return nil
}

// InsertRunAt inserts a consecutive run locally and broadcasts each op.
func (r *Replica) InsertRunAt(i int, atoms []string) error {
	if r.gapLocked(i) {
		r.editsBlocked++
		return ErrLocked
	}
	ops, err := r.doc.InsertRunAt(i, atoms)
	if err != nil {
		return fmt.Errorf("cluster: insert run at %d: %w", i, err)
	}
	for _, op := range ops {
		r.record(op)
		r.broadcast(op)
	}
	return nil
}

// gapLocked reports whether the insertion gap i touches a locked region.
func (r *Replica) gapLocked(i int) bool {
	if r.part.Locked() == 0 {
		return false
	}
	var p, f ident.Path
	if i > 0 {
		if id, err := r.doc.IDAt(i - 1); err == nil {
			p = id
		}
	}
	if i < r.doc.Len() {
		if id, err := r.doc.IDAt(i); err == nil {
			f = id
		}
	}
	if p != nil && r.part.Blocks(p) {
		return true
	}
	if f != nil && r.part.Blocks(f) {
		return true
	}
	// A locked region strictly inside the gap also blocks: the insert could
	// land inside it.
	return r.part.BlocksGap(p, f)
}

func (r *Replica) record(op core.Op) {
	r.log = append(r.log, logged{site: op.Site, seq: op.Seq, id: op.ID})
}

func (r *Replica) broadcast(payload any) {
	m := r.buf.Stamp(payload)
	r.remember(m)
	for _, s := range r.c.sites {
		if s != r.id {
			r.c.net.Send(r.id, s, m)
		}
	}
}

// ProposeFlatten starts the commitment protocol to flatten the subtree at
// path, with this replica as coordinator. All sites (including this one)
// are participants.
func (r *Replica) ProposeFlatten(path ident.Path) commit.TxID {
	tx, outs := r.coord.Propose(path, r.buf.Clock(), r.c.sites, r.c.net.Now(), r.c.timeout)
	r.dispatch(outs)
	return tx
}

// ProposeFlattenCold proposes flattening the current coldest subtree (no
// edits for `revisions` revisions, at least minNodes nodes). It returns
// false if no cold subtree exists.
func (r *Replica) ProposeFlattenCold(revisions int64, minNodes int) (commit.TxID, bool) {
	path := r.doc.ColdestSubtree(revisions, minNodes)
	if path == nil {
		return commit.TxID{}, false
	}
	return r.ProposeFlatten(path), true
}

// dispatch routes protocol messages: To 0 broadcasts to every site,
// delivering locally without the network.
func (r *Replica) dispatch(outs []commit.Out) {
	for _, o := range outs {
		targets := []ident.SiteID{o.To}
		if o.To == 0 {
			targets = r.c.sites
		}
		for _, to := range targets {
			if to == r.id {
				r.c.handleCommitMsg(r, r.id, o.Msg)
			} else {
				r.c.net.Send(r.id, to, o.Msg)
			}
		}
	}
}

// resource adapts Replica to commit.Resource.
type resource Replica

// UneditedSince implements commit.Resource: vote Yes only if this replica
// has everything the coordinator observed, no flatten happened beyond obs,
// and no applied operation outside obs touches the subtree.
func (rs *resource) UneditedSince(path ident.Path, obs vclock.VC) bool {
	r := (*Replica)(rs)
	if !r.buf.Clock().Dominates(obs) {
		return false // cannot evaluate the coordinator's view of the region
	}
	if !obs.Dominates(r.flattenClock) {
		return false // an applied flatten renamed identifiers beyond obs
	}
	for _, l := range r.log {
		if l.seq > obs.Get(l.site) && ident.RegionCompare(l.id, path) == 0 {
			return false
		}
	}
	return true
}

// ApplyFlatten implements commit.Resource.
func (rs *resource) ApplyFlatten(path ident.Path) error {
	r := (*Replica)(rs)
	if err := r.doc.FlattenSubtree(path); err != nil {
		return fmt.Errorf("cluster: apply flatten: %w", err)
	}
	r.flattensApplied++
	r.flattenClock = r.buf.Clock()
	// Entries at or before the flatten clock can never be uncovered again
	// (proposals must dominate flattenClock), so the log resets.
	r.log = r.log[:0]
	return nil
}

// Step delivers one network message and processes it. It returns false when
// nothing is in flight.
func (c *Cluster) Step() bool {
	env, ok := c.net.DeliverNext()
	if !ok {
		return false
	}
	r := c.replicas[env.To]
	if r == nil {
		return true
	}
	switch m := env.Payload.(type) {
	case causal.Message:
		r.ingest(m)
	case commit.Msg:
		c.handleCommitMsg(r, env.From, m)
	default:
		c.handleSync(r, env.Payload)
	}
	// Drive coordinator timeouts from virtual time; participant locks block
	// until a decision arrives (see internal/commit).
	for _, rep := range c.replicas {
		rep.dispatch(rep.coord.Tick(c.net.Now()))
	}
	return true
}

func (c *Cluster) handleCommitMsg(r *Replica, from ident.SiteID, m commit.Msg) {
	switch m.Kind {
	case commit.Prepare:
		out := r.part.OnPrepare(m)
		r.dispatch([]commit.Out{out})
	case commit.Vote:
		r.dispatch(r.coord.OnVote(from, m))
	case commit.Decision:
		// A commit decision can only fail if the protocol's guarantees were
		// violated; record it so Check fails loudly.
		if err := r.part.OnDecision(m); err != nil {
			r.commitErrs = append(r.commitErrs, err)
		}
	}
}

// Run delivers messages until the network is quiescent or maxSteps is
// reached (0 = unlimited). It returns the number of messages delivered.
func (c *Cluster) Run(maxSteps int) int {
	steps := 0
	for c.Step() {
		steps++
		if maxSteps > 0 && steps >= maxSteps {
			break
		}
	}
	return steps
}

// Converged reports whether all replicas hold identical content, with a
// diagnostic naming the first divergent site.
func (c *Cluster) Converged() (bool, string) {
	if len(c.sites) == 0 {
		return true, ""
	}
	want := c.replicas[c.sites[0]].doc.ContentString()
	for _, s := range c.sites[1:] {
		if got := c.replicas[s].doc.ContentString(); got != want {
			return false, fmt.Sprintf("site %d diverged from site %d", s, c.sites[0])
		}
	}
	return true, ""
}

// Check runs every replica's structural invariants and surfaces any
// commitment-protocol violations.
func (c *Cluster) Check() error {
	for _, s := range c.sites {
		r := c.replicas[s]
		if len(r.commitErrs) > 0 {
			return fmt.Errorf("site %d: commit protocol violation: %w", s, r.commitErrs[0])
		}
		if err := r.doc.Check(); err != nil {
			return fmt.Errorf("site %d: %w", s, err)
		}
	}
	return nil
}

package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/simnet"
)

func newCluster(t *testing.T, sites int, opts ...func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{Sites: sites, Net: simnet.Config{MinLatency: 1, MaxLatency: 20, Seed: 3}}
	for _, o := range opts {
		o(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustConverge(t *testing.T, c *Cluster) {
	t.Helper()
	c.Run(0)
	if ok, diag := c.Converged(); !ok {
		t.Fatal(diag)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Sites: 0}); err == nil {
		t.Error("zero sites accepted")
	}
	c := newCluster(t, 3)
	if got := len(c.Sites()); got != 3 {
		t.Errorf("sites = %d", got)
	}
	if c.Replica(2).ID() != 2 {
		t.Error("replica lookup broken")
	}
}

func TestBasicReplication(t *testing.T) {
	c := newCluster(t, 3)
	r1 := c.Replica(1)
	for i, atom := range []string{"one", "two", "three"} {
		if err := r1.InsertAt(i, atom); err != nil {
			t.Fatal(err)
		}
	}
	mustConverge(t, c)
	if got := c.Replica(3).Doc().ContentString(); got != "one\ntwo\nthree" {
		t.Errorf("site 3 = %q", got)
	}
}

func TestConcurrentEditingConverges(t *testing.T) {
	c := newCluster(t, 4)
	rng := rand.New(rand.NewSource(12))
	// Seed the document from one site, replicate.
	for i := 0; i < 5; i++ {
		if err := c.Replica(1).InsertAt(i, fmt.Sprintf("seed%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(0)
	// All sites edit concurrently, interleaved with partial delivery.
	for round := 0; round < 20; round++ {
		for _, s := range c.Sites() {
			r := c.Replica(s)
			n := r.Doc().Len()
			if n == 0 || rng.Intn(100) < 70 {
				if err := r.InsertAt(rng.Intn(n+1), fmt.Sprintf("s%dr%d", s, round)); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := r.DeleteAt(rng.Intn(n)); err != nil {
					t.Fatal(err)
				}
			}
		}
		c.Run(rng.Intn(10)) // deliver a few messages mid-flight
	}
	mustConverge(t, c)
	if c.Replica(1).Doc().Len() == 0 {
		t.Error("degenerate final document")
	}
}

func TestPartitionedEditingConvergesAfterHeal(t *testing.T) {
	c := newCluster(t, 2)
	if err := c.Replica(1).InsertAt(0, "base"); err != nil {
		t.Fatal(err)
	}
	c.Run(0)
	if err := c.Net().Partition(1, 2); err != nil {
		t.Fatal(err)
	}
	// Disconnected edits on both sides.
	for i := 0; i < 10; i++ {
		if err := c.Replica(1).InsertAt(i, fmt.Sprintf("a%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := c.Replica(2).InsertAt(i, fmt.Sprintf("b%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(0)
	if ok, _ := c.Converged(); ok {
		t.Fatal("replicas converged across a partition")
	}
	c.Net().HealAll()
	mustConverge(t, c)
	if got := c.Replica(1).Doc().Len(); got != 21 {
		t.Errorf("final length = %d, want 21", got)
	}
}

func TestDistributedFlattenCommits(t *testing.T) {
	c := newCluster(t, 3)
	r1 := c.Replica(1)
	for i := 0; i < 20; i++ {
		if err := r1.InsertAt(i, fmt.Sprintf("l%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(0)
	before := c.Replica(2).Doc().Stats().Tree.Nodes
	if before == 0 {
		t.Fatal("no nodes before flatten")
	}
	r1.ProposeFlatten(ident.Path{}) // whole document
	mustConverge(t, c)
	for _, s := range c.Sites() {
		r := c.Replica(s)
		if r.FlattensApplied() != 1 {
			t.Errorf("site %d applied %d flattens, want 1", s, r.FlattensApplied())
		}
		st := r.Doc().Stats()
		if st.Tree.Nodes != 0 || st.Tree.MemBytes != 0 {
			t.Errorf("site %d not compacted: nodes=%d", s, st.Tree.Nodes)
		}
		if r.Doc().Len() != 20 {
			t.Errorf("site %d lost atoms: %d", s, r.Doc().Len())
		}
	}
}

func TestFlattenAbortsOnConcurrentEdit(t *testing.T) {
	c := newCluster(t, 2, func(cfg *Config) {
		cfg.Net = simnet.Config{MinLatency: 50, MaxLatency: 50, Seed: 1}
	})
	r1, r2 := c.Replica(1), c.Replica(2)
	for i := 0; i < 8; i++ {
		if err := r1.InsertAt(i, fmt.Sprintf("l%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(0)
	// Site 2 edits; before the op reaches site 1, site 1 proposes a flatten.
	if err := r2.InsertAt(3, "concurrent"); err != nil {
		t.Fatal(err)
	}
	r1.ProposeFlatten(ident.Path{})
	mustConverge(t, c)
	for _, s := range c.Sites() {
		if got := c.Replica(s).FlattensApplied(); got != 0 {
			t.Errorf("site %d applied %d flattens, want 0 (abort)", s, got)
		}
	}
	if got := r1.Doc().Len(); got != 9 {
		t.Errorf("doc len = %d, want 9 (no work lost)", got)
	}
}

func TestFlattenLockBlocksLocalEdits(t *testing.T) {
	c := newCluster(t, 2, func(cfg *Config) {
		cfg.Net = simnet.Config{MinLatency: 100, MaxLatency: 100, Seed: 1}
	})
	r1 := c.Replica(1)
	for i := 0; i < 6; i++ {
		if err := r1.InsertAt(i, fmt.Sprintf("l%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(0)
	r1.ProposeFlatten(ident.Path{})
	// The coordinator's own participant voted yes synchronously; its lock
	// must block local edits until the decision.
	err := r1.InsertAt(3, "blocked")
	if err != ErrLocked {
		t.Fatalf("insert during vote: %v, want ErrLocked", err)
	}
	if r1.EditsBlocked() != 1 {
		t.Errorf("blocked count = %d", r1.EditsBlocked())
	}
	mustConverge(t, c)
	// After the decision the edit goes through.
	if err := r1.InsertAt(3, "ok"); err != nil {
		t.Fatal(err)
	}
	mustConverge(t, c)
}

func TestFlattenColdSubtree(t *testing.T) {
	c := newCluster(t, 2)
	r1 := c.Replica(1)
	for i := 0; i < 30; i++ {
		if err := r1.InsertAt(i, fmt.Sprintf("l%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(0)
	// Age the document: advance revisions with an edit elsewhere.
	r1.Doc().EndRevision()
	c.Replica(2).Doc().EndRevision()
	tx, ok := r1.ProposeFlattenCold(0, 2)
	if !ok {
		t.Fatal("no cold subtree proposed")
	}
	_ = tx
	mustConverge(t, c)
	if got := r1.FlattensApplied(); got != 1 {
		t.Errorf("flattens applied = %d", got)
	}
	if got := r1.Doc().Len(); got != 30 {
		t.Errorf("len = %d", got)
	}
	// Contents survived on both sites.
	if ok, diag := c.Converged(); !ok {
		t.Fatal(diag)
	}
}

func TestFlattenTimeoutWithPartition(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) {
		cfg.CommitTimeout = 200
	})
	r1 := c.Replica(1)
	for i := 0; i < 10; i++ {
		if err := r1.InsertAt(i, fmt.Sprintf("l%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(0)
	// Partition site 3 away; its vote can never arrive.
	if err := c.Net().Partition(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Net().Partition(2, 3); err != nil {
		t.Fatal(err)
	}
	r1.ProposeFlatten(ident.Path{})
	c.Run(0)
	// Keep virtual time moving so the timeout fires: a heartbeat edit.
	for i := 0; i < 10; i++ {
		if err := r1.InsertAt(0, fmt.Sprintf("hb%d", i)); err != nil && err != ErrLocked {
			t.Fatal(err)
		}
		c.Run(0)
	}
	for _, s := range []ident.SiteID{1, 2} {
		if got := c.Replica(s).FlattensApplied(); got != 0 {
			t.Errorf("site %d applied %d flattens despite lost participant", s, got)
		}
	}
	// Heal: everything converges, flatten simply never happened.
	c.Net().HealAll()
	mustConverge(t, c)
}

func TestUDISCluster(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) {
		cfg.Doc = func(site ident.SiteID) core.Config {
			return core.Config{Mode: ident.UDIS, Strategy: core.Balanced{}}
		}
	})
	r1 := c.Replica(1)
	for i := 0; i < 10; i++ {
		if err := r1.InsertAt(i, fmt.Sprintf("l%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(0)
	for i := 9; i >= 5; i-- {
		if err := c.Replica(2).DeleteAt(i); err != nil {
			t.Fatal(err)
		}
	}
	mustConverge(t, c)
	for _, s := range c.Sites() {
		st := c.Replica(s).Doc().Stats()
		if st.Tree.DeadMinis != 0 {
			t.Errorf("site %d has %d tombstones under UDIS", s, st.Tree.DeadMinis)
		}
	}
}

func TestInsertRunReplicates(t *testing.T) {
	c := newCluster(t, 2)
	if err := c.Replica(1).InsertRunAt(0, []string{"a", "b", "c", "d", "e"}); err != nil {
		t.Fatal(err)
	}
	mustConverge(t, c)
	if got := c.Replica(2).Doc().ContentString(); got != "a\nb\nc\nd\ne" {
		t.Errorf("site 2 = %q", got)
	}
}

package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/simnet"
)

func TestLossyNetworkStallsWithoutSync(t *testing.T) {
	c := newCluster(t, 2, func(cfg *Config) {
		cfg.Net = simnet.Config{MinLatency: 1, MaxLatency: 5, Loss: 1.0, Seed: 9}
	})
	if err := c.Replica(1).InsertAt(0, "lost"); err != nil {
		t.Fatal(err)
	}
	c.Run(0)
	if got := c.Replica(2).Doc().Len(); got != 0 {
		t.Fatalf("total loss delivered anyway: len=%d", got)
	}
	if c.Net().Dropped() == 0 {
		t.Fatal("nothing dropped at loss=1.0")
	}
	// Anti-entropy recovers everything: the digest and reply are reliable.
	c.Replica(2).SyncWith(1)
	c.Run(0)
	if got := c.Replica(2).Doc().Len(); got != 1 {
		t.Fatalf("sync did not recover the op: len=%d", got)
	}
	if ok, diag := c.Converged(); !ok {
		t.Fatal(diag)
	}
}

func TestSyncRecoversThirdPartyOps(t *testing.T) {
	// Site 1's op reaches site 2 but not site 3; site 3 syncs with site 2
	// (not the originator) and still recovers it.
	c := newCluster(t, 3, func(cfg *Config) {
		cfg.Net = simnet.Config{MinLatency: 1, MaxLatency: 5, Seed: 4}
	})
	if err := c.Net().Partition(1, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Replica(1).InsertAt(0, "x"); err != nil {
		t.Fatal(err)
	}
	c.Run(0)
	if got := c.Replica(3).Doc().Len(); got != 0 {
		t.Fatalf("partitioned delivery: len=%d", got)
	}
	c.Replica(3).SyncWith(2)
	c.Run(0)
	if got := c.Replica(3).Doc().Len(); got != 1 {
		t.Fatalf("third-party sync failed: len=%d", got)
	}
	c.Net().HealAll()
	mustConverge(t, c)
}

func TestSyncIdempotent(t *testing.T) {
	c := newCluster(t, 2)
	for i := 0; i < 5; i++ {
		if err := c.Replica(1).InsertAt(i, fmt.Sprintf("l%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(0)
	// Syncing when nothing is missing sends no reply and changes nothing.
	before, _ := c.Net().Stats()
	c.Replica(2).SyncWith(1)
	c.Run(0)
	after, _ := c.Net().Stats()
	if after-before > 1 {
		t.Errorf("no-op sync generated %d messages, want 1 (the digest)", after-before)
	}
	// Repeated syncs with missing data do not duplicate applications.
	c.Replica(2).SyncWith(1)
	c.Replica(2).SyncWith(1)
	c.Run(0)
	if got := c.Replica(2).Doc().Len(); got != 5 {
		t.Errorf("len = %d after redundant syncs", got)
	}
	mustConverge(t, c)
	c.Replica(1).SyncWith(1) // self-sync is a no-op
	c.Run(0)
}

// TestChaosWithLoss: random editing over a 25%-lossy network, with periodic
// anti-entropy pulses, converges after final sync rounds.
func TestChaosWithLoss(t *testing.T) {
	for _, seed := range []int64{3, 8, 15} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			const sites = 3
			c := newCluster(t, sites, func(cfg *Config) {
				cfg.Net = simnet.Config{MinLatency: 1, MaxLatency: 20, Loss: 0.25, Seed: seed}
			})
			for step := 0; step < 300; step++ {
				site := ident.SiteID(1 + rng.Intn(sites))
				r := c.Replica(site)
				n := r.Doc().Len()
				if n == 0 || rng.Intn(100) < 70 {
					if err := r.InsertAt(rng.Intn(n+1), fmt.Sprintf("s%d-%d", site, step)); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := r.DeleteAt(rng.Intn(n)); err != nil {
						t.Fatal(err)
					}
				}
				if step%17 == 0 {
					// Periodic anti-entropy: everyone pulses a random peer.
					for _, s := range c.Sites() {
						peer := ident.SiteID(1 + rng.Intn(sites))
						c.Replica(s).SyncWith(peer)
					}
				}
				c.Run(rng.Intn(10))
			}
			// Final rounds: pulse everyone against everyone until stable.
			for round := 0; round < 4; round++ {
				for _, a := range c.Sites() {
					for _, b := range c.Sites() {
						if a != b {
							c.Replica(a).SyncWith(b)
						}
					}
				}
				c.Run(0)
			}
			if ok, diag := c.Converged(); !ok {
				t.Fatal(diag)
			}
			if err := c.Check(); err != nil {
				t.Fatal(err)
			}
			if c.Net().Dropped() == 0 {
				t.Error("loss=0.25 dropped nothing: test is vacuous")
			}
		})
	}
}

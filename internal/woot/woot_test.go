package woot

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
)

func newDoc(t *testing.T, site ident.SiteID) *Doc {
	t.Helper()
	d, err := New(site)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func docString(d *Doc) string { return strings.Join(d.Content(), "") }

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("site 0 accepted")
	}
	if _, err := New(ident.MaxSiteID + 1); err == nil {
		t.Error("oversized site accepted")
	}
}

func TestIDCompareAndString(t *testing.T) {
	if Begin.Compare(End) != -1 {
		t.Error("Begin must sort before End")
	}
	a := ID{Site: 1, Clock: 2}
	b := ID{Site: 1, Clock: 3}
	c := ID{Site: 2, Clock: 1}
	if a.Compare(b) != -1 || b.Compare(c) != -1 || a.Compare(a) != 0 {
		t.Error("ID ordering broken")
	}
	if Begin.String() != "⊢" || End.String() != "⊣" || a.String() != "s1:2" {
		t.Errorf("strings: %s %s %s", Begin, End, a)
	}
}

func TestEditingSequence(t *testing.T) {
	d := newDoc(t, 1)
	for i, a := range []string{"a", "b", "c", "d"} {
		if _, err := d.InsertAt(i, a); err != nil {
			t.Fatal(err)
		}
	}
	if docString(d) != "abcd" {
		t.Fatalf("doc = %q", docString(d))
	}
	if _, err := d.InsertAt(2, "X"); err != nil {
		t.Fatal(err)
	}
	if docString(d) != "abXcd" {
		t.Errorf("doc = %q", docString(d))
	}
	if _, err := d.DeleteAt(1); err != nil {
		t.Fatal(err)
	}
	if docString(d) != "aXcd" {
		t.Errorf("doc = %q", docString(d))
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertAt(99, "x"); err == nil {
		t.Error("out-of-range insert succeeded")
	}
	if _, err := d.DeleteAt(99); err == nil {
		t.Error("out-of-range delete succeeded")
	}
}

func TestTombstonesNeverCollected(t *testing.T) {
	d := newDoc(t, 1)
	for i := 0; i < 10; i++ {
		if _, err := d.InsertAt(i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 9; i >= 0; i-- {
		if _, err := d.DeleteAt(i); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.LiveAtoms != 0 {
		t.Errorf("live = %d", s.LiveAtoms)
	}
	if s.Tombstones != 10 {
		t.Errorf("tombstones = %d, want 10 (WOOT never collects)", s.Tombstones)
	}
	if s.TotalIDBits != 10*3*IDBits {
		t.Errorf("id bits = %d, want %d", s.TotalIDBits, 10*3*IDBits)
	}
}

// TestConcurrentInsertsSamePlace is the canonical WOOT scenario: two sites
// insert concurrently at the same position; both replicas converge with the
// concurrent atoms ordered by identifier.
func TestConcurrentInsertsSamePlace(t *testing.T) {
	a, b := newDoc(t, 1), newDoc(t, 2)
	var hist []Op
	for i, atom := range []string{"1", "2"} {
		op, err := a.InsertAt(i, atom)
		if err != nil {
			t.Fatal(err)
		}
		hist = append(hist, op)
	}
	for _, op := range hist {
		if err := b.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	opA, err := a.InsertAt(1, "X")
	if err != nil {
		t.Fatal(err)
	}
	opB, err := b.InsertAt(1, "Y")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Apply(opB); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(opA); err != nil {
		t.Fatal(err)
	}
	if docString(a) != docString(b) {
		t.Errorf("diverged: %q vs %q", docString(a), docString(b))
	}
	if docString(a) != "1XY2" {
		t.Errorf("doc = %q, want 1XY2 (site order)", docString(a))
	}
}

// TestThreeWayConcurrentIntegration exercises the recursive integrate with
// three sites editing the same region concurrently, in all delivery orders
// of the concurrent ops.
func TestThreeWayConcurrentIntegration(t *testing.T) {
	seedOps := func(t *testing.T, d *Doc) []Op {
		var ops []Op
		for i, atom := range []string{"L", "R"} {
			op, err := d.InsertAt(i, atom)
			if err != nil {
				t.Fatal(err)
			}
			ops = append(ops, op)
		}
		return ops
	}
	base := newDoc(t, 9)
	hist := seedOps(t, base)
	mk := func(site ident.SiteID) *Doc {
		d := newDoc(t, site)
		for _, op := range hist {
			if err := d.Apply(op); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	d1, d2, d3 := mk(1), mk(2), mk(3)
	op1, _ := d1.InsertAt(1, "a")
	op2, _ := d2.InsertAt(1, "b")
	op3, _ := d3.InsertAt(1, "c")
	ops := []Op{op1, op2, op3}
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	var want string
	for pi, perm := range perms {
		d := mk(ident.SiteID(10 + pi))
		for _, k := range perm {
			if err := d.Apply(ops[k]); err != nil {
				t.Fatalf("perm %v: %v", perm, err)
			}
		}
		if pi == 0 {
			want = docString(d)
			continue
		}
		if docString(d) != want {
			t.Errorf("perm %v = %q, want %q", perm, docString(d), want)
		}
	}
}

func TestConvergenceRandom(t *testing.T) {
	const sites = 3
	rng := rand.New(rand.NewSource(8))
	docs := make([]*Doc, sites)
	for i := range docs {
		docs[i] = newDoc(t, ident.SiteID(i+1))
	}
	hist := make([][]Op, sites)
	seen := make([]int, sites)
	for round := 0; round < 12; round++ {
		for i, d := range docs {
			for e := 0; e < 1+rng.Intn(2); e++ {
				if d.Len() == 0 || rng.Intn(100) < 70 {
					op, err := d.InsertAt(rng.Intn(d.Len()+1), fmt.Sprintf("s%dr%d", i, round))
					if err != nil {
						t.Fatal(err)
					}
					hist[i] = append(hist[i], op)
				} else {
					op, err := d.DeleteAt(rng.Intn(d.Len()))
					if err != nil {
						t.Fatal(err)
					}
					hist[i] = append(hist[i], op)
				}
			}
		}
		marks := make([]int, sites)
		for i := range hist {
			marks[i] = len(hist[i])
		}
		for i, d := range docs {
			for _, j := range rng.Perm(sites) {
				if j == i {
					continue
				}
				for k := seen[j]; k < marks[j]; k++ {
					if err := d.Apply(hist[j][k]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		copy(seen, marks)
	}
	want := docString(docs[0])
	for i, d := range docs {
		if docString(d) != want {
			t.Fatalf("site %d diverged: %q vs %q", i, docString(d), want)
		}
		if err := d.Check(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestApplyErrors(t *testing.T) {
	d := newDoc(t, 1)
	if err := d.Apply(Op{Kind: 9}); err == nil {
		t.Error("bad kind accepted")
	}
	if err := d.Apply(Op{Kind: OpDelete, Char: WChar{ID: ID{Site: 5, Clock: 5}}}); err == nil {
		t.Error("delete of unknown char accepted")
	}
	// Insert referencing unknown neighbours violates causality.
	bad := Op{Kind: OpInsert, Char: WChar{
		ID: ID{Site: 2, Clock: 1}, Atom: "x", Visible: true,
		Prev: ID{Site: 3, Clock: 1}, Next: End,
	}}
	if err := d.Apply(bad); err == nil {
		t.Error("insert with unknown prev accepted")
	}
	// Duplicate insert is idempotent.
	op, err := d.InsertAt(0, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(op); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Errorf("len = %d", d.Len())
	}
}

func TestNetworkBits(t *testing.T) {
	ins := Op{Kind: OpInsert, Char: WChar{Atom: "ab"}}
	if got := ins.NetworkBits(); got != 3*IDBits+16 {
		t.Errorf("insert = %d bits", got)
	}
	del := Op{Kind: OpDelete}
	if got := del.NetworkBits(); got != IDBits {
		t.Errorf("delete = %d bits", got)
	}
}

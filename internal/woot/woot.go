// Package woot implements the WOOT ("WithOut Operational Transformation")
// algorithm for cooperative editing (Oster, Urso, Molli, Imine, CSCW 2006),
// discussed in the Treedoc paper's related work: "In WOOT, each character
// has a unique identifier, and maintains the identifiers of the previous
// and following characters at the initial execution time. Furthermore, the
// data structure grows indefinitely, because there is no garbage collection
// or restructuring."
//
// WOOT serves as a second baseline for the extended comparisons: its
// per-character overhead is three identifiers (own, previous, next) and its
// tombstones are permanent.
package woot

import (
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
)

// ID identifies a W-character: the allocating site and its local clock.
// The zero ID is reserved; Begin and End mark the document boundaries.
type ID struct {
	Site  ident.SiteID
	Clock uint64
}

// Begin and End are the sentinel identifiers bounding every document.
var (
	Begin = ID{Site: 0, Clock: 0}
	End   = ID{Site: 0, Clock: ^uint64(0)}
)

// Compare orders identifiers by (site, clock); WOOT only compares
// identifiers of concurrent characters, for which this is a total order.
func (a ID) Compare(b ID) int {
	switch {
	case a.Site < b.Site:
		return -1
	case a.Site > b.Site:
		return +1
	case a.Clock < b.Clock:
		return -1
	case a.Clock > b.Clock:
		return +1
	}
	return 0
}

// String renders the identifier.
func (a ID) String() string {
	switch a {
	case Begin:
		return "⊢"
	case End:
		return "⊣"
	}
	return fmt.Sprintf("s%d:%d", a.Site, a.Clock)
}

// WChar is a W-character: an atom with its identifier and the identifiers
// of its left and right neighbours at insert time.
type WChar struct {
	ID      ID
	Atom    string
	Visible bool
	Prev    ID
	Next    ID
}

// OpKind distinguishes WOOT operations.
type OpKind uint8

const (
	// OpInsert integrates a W-character between its recorded neighbours.
	OpInsert OpKind = iota + 1
	// OpDelete makes a W-character invisible (permanent tombstone).
	OpDelete
)

// Op is a replicable WOOT edit.
type Op struct {
	Kind OpKind
	Char WChar // insert: full character; delete: only Char.ID is used
	Site ident.SiteID
	Seq  uint64
}

// IDBits is the wire size of one WOOT identifier under the paper's
// 10-byte unique-identifier model (6-byte site + 4-byte clock).
const IDBits = 8 * 10

// NetworkBits returns the operation's network cost: an insert ships three
// identifiers (own, prev, next) plus the atom; a delete ships one.
func (o Op) NetworkBits() int {
	if o.Kind == OpInsert {
		return 3*IDBits + 8*len(o.Char.Atom)
	}
	return IDBits
}

// Doc is one WOOT replica: the W-string including invisible characters.
// Not safe for concurrent use.
type Doc struct {
	site  ident.SiteID
	clock uint64
	seq   uint64
	chars []WChar    // document order, tombstones included
	index map[ID]int // identifier -> position in chars

	opsApplied uint64
	netBits    uint64
}

// New creates an empty WOOT replica.
func New(site ident.SiteID) (*Doc, error) {
	if site == 0 || site > ident.MaxSiteID {
		return nil, fmt.Errorf("woot: site must be in [1, 2^48); got %d", site)
	}
	return &Doc{site: site, index: make(map[ID]int)}, nil
}

// Len returns the number of visible atoms.
func (d *Doc) Len() int {
	n := 0
	for i := range d.chars {
		if d.chars[i].Visible {
			n++
		}
	}
	return n
}

// Content returns the visible atoms in order.
func (d *Doc) Content() []string {
	out := make([]string, 0, len(d.chars))
	for i := range d.chars {
		if d.chars[i].Visible {
			out = append(out, d.chars[i].Atom)
		}
	}
	return out
}

// indexOf returns the position of id in the W-string: -1 for the Begin
// sentinel, len(chars) for End, -2 when unknown.
func (d *Doc) indexOf(id ID) int {
	if id == Begin {
		return -1
	}
	if id == End {
		return len(d.chars)
	}
	if i, ok := d.index[id]; ok {
		return i
	}
	return -2
}

// insertChar splices c into the W-string at position i and reindexes.
func (d *Doc) insertChar(i int, c WChar) {
	d.chars = append(d.chars, WChar{})
	copy(d.chars[i+1:], d.chars[i:])
	d.chars[i] = c
	d.index[c.ID] = i
	for j := i + 1; j < len(d.chars); j++ {
		d.index[d.chars[j].ID] = j
	}
}

// visibleIndex returns the W-string position of the i-th visible atom.
func (d *Doc) visibleIndex(i int) int {
	seen := 0
	for j := range d.chars {
		if d.chars[j].Visible {
			if seen == i {
				return j
			}
			seen++
		}
	}
	return -1
}

// InsertAt inserts atom at visible index i as a local edit.
func (d *Doc) InsertAt(i int, atom string) (Op, error) {
	if i < 0 || i > d.Len() {
		return Op{}, fmt.Errorf("woot: index %d out of range [0,%d]", i, d.Len())
	}
	prev, next := Begin, End
	if i > 0 {
		prev = d.chars[d.visibleIndex(i-1)].ID
	}
	if i < d.Len() {
		next = d.chars[d.visibleIndex(i)].ID
	}
	d.clock++
	c := WChar{
		ID:      ID{Site: d.site, Clock: d.clock},
		Atom:    atom,
		Visible: true,
		Prev:    prev,
		Next:    next,
	}
	d.seq++
	op := Op{Kind: OpInsert, Char: c, Site: d.site, Seq: d.seq}
	if err := d.apply(op); err != nil {
		return Op{}, err
	}
	return op, nil
}

// DeleteAt deletes the visible atom at index i as a local edit.
func (d *Doc) DeleteAt(i int) (Op, error) {
	j := d.visibleIndex(i)
	if j < 0 {
		return Op{}, fmt.Errorf("woot: index %d out of range [0,%d)", i, d.Len())
	}
	d.seq++
	op := Op{Kind: OpDelete, Char: WChar{ID: d.chars[j].ID}, Site: d.site, Seq: d.seq}
	if err := d.apply(op); err != nil {
		return Op{}, err
	}
	return op, nil
}

// Apply replays a remote operation. Causal delivery guarantees WOOT's
// preconditions: an insert's prev and next characters are already present.
func (d *Doc) Apply(op Op) error { return d.apply(op) }

func (d *Doc) apply(op Op) error {
	d.opsApplied++
	d.netBits += uint64(op.NetworkBits())
	switch op.Kind {
	case OpInsert:
		if d.indexOf(op.Char.ID) >= 0 {
			return nil // duplicate: idempotent
		}
		return d.integrate(op.Char, op.Char.Prev, op.Char.Next)
	case OpDelete:
		i := d.indexOf(op.Char.ID)
		if i < 0 {
			return fmt.Errorf("woot: delete of unknown character %v", op.Char.ID)
		}
		d.chars[i].Visible = false
		d.chars[i].Atom = "" // the atom is gone; the tombstone remains forever
		return nil
	default:
		return fmt.Errorf("woot: invalid op kind %d", op.Kind)
	}
}

// integrate places c between the characters with identifiers prev and next,
// following the recursive IntegrateIns procedure of the WOOT paper: among
// the characters currently between prev and next, consider only those whose
// own prev/next lie outside the range, order c among them by identifier,
// and recurse into the narrowed range.
func (d *Doc) integrate(c WChar, prev, next ID) error {
	for {
		lo := d.indexOf(prev)
		hi := d.indexOf(next)
		if lo == -2 || hi == -2 {
			return fmt.Errorf("woot: integrate %v: missing neighbour (%v,%v)", c.ID, prev, next)
		}
		if hi-lo < 1 {
			return fmt.Errorf("woot: integrate %v: inverted range (%d,%d)", c.ID, lo, hi)
		}
		if hi-lo == 1 {
			// Empty subsequence: insert right before next.
			d.insertChar(hi, c)
			return nil
		}
		// L := prev · {d in S : d.prev and d.next outside (prev, next)} · next
		type bound struct {
			id  ID
			pos int
		}
		L := []bound{{prev, lo}}
		for j := lo + 1; j < hi; j++ {
			pj := d.indexOf(d.chars[j].Prev)
			nj := d.indexOf(d.chars[j].Next)
			if pj <= lo && hi <= nj {
				L = append(L, bound{d.chars[j].ID, j})
			}
		}
		L = append(L, bound{next, hi})
		i := 1
		for i < len(L)-1 && L[i].id.Compare(c.ID) < 0 {
			i++
		}
		np, nn := L[i-1].id, L[i].id
		if np == prev && nn == next {
			return fmt.Errorf("woot: integrate %v made no progress in (%v,%v)", c.ID, prev, next)
		}
		prev, next = np, nn
	}
}

// Stats reports WOOT's overheads: every character permanently stores three
// identifiers, and tombstones are never collected.
type Stats struct {
	LiveAtoms   int
	Tombstones  int
	DocBytes    int
	TotalIDBits int // 3 identifiers per character, tombstones included
	NetBits     uint64
	OpsApplied  uint64
}

// Stats measures the replica.
func (d *Doc) Stats() Stats {
	var s Stats
	for i := range d.chars {
		if d.chars[i].Visible {
			s.LiveAtoms++
			s.DocBytes += len(d.chars[i].Atom)
		} else {
			s.Tombstones++
		}
		s.TotalIDBits += 3 * IDBits
	}
	s.NetBits = d.netBits
	s.OpsApplied = d.opsApplied
	return s
}

// Check verifies internal invariants (tests): unique identifiers and
// resolvable neighbours.
func (d *Doc) Check() error {
	seen := make(map[ID]bool, len(d.chars))
	for i := range d.chars {
		id := d.chars[i].ID
		if seen[id] {
			return fmt.Errorf("woot: duplicate identifier %v", id)
		}
		seen[id] = true
		if d.indexOf(d.chars[i].Prev) == -2 || d.indexOf(d.chars[i].Next) == -2 {
			return fmt.Errorf("woot: character %v has unresolved neighbours", id)
		}
	}
	return nil
}

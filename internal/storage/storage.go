// Package storage implements the on-disk Treedoc representation of
// Section 5.2: the identifier tree laid out as a binary heap — "nodes are
// stored from top to bottom, line by line, and nodes on the same line are
// stored left to right" — where each entry carries a disambiguator and a
// reference to its atom, missing nodes are filled with a special marker,
// and "sequences of markers are compressed with run-length encoding".
//
// Atoms are stored inline rather than in the paper's separate atom file;
// Measure separates structure bytes from atom bytes so the "On-disk
// overhead" column of Table 1 (structure relative to document size) is
// computed the same way.
package storage

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/treedoc/treedoc/internal/doctree"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/intern"
)

// Format marker and version.
var magic = [4]byte{'T', 'D', 'C', '1'}

// Slot token kinds.
const (
	tokAbsentRun = 0x00 // followed by uvarint run length
	tokNode      = 0x01 // followed by uvarint mini count and minis
	tokFlat      = 0x02 // followed by uvarint atom count and atoms
)

// Mini flag bits.
const (
	miniDead      = 1 << 0
	miniCanonical = 1 << 1
)

// encScratch pools the growth buffer Encode and Measure serialise into:
// the encoded size is unknown up front, so building in a reused scratch
// and copying once keeps the append-growth garbage out of every snapshot,
// stats and anti-entropy cycle. Pooled buffers never escape: Encode hands
// out an exact-size copy, Measure only reads the length.
var encScratch = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// Encode serialises the document tree. The result is exactly sized.
//
//treedoc:noalloc
func Encode(t *doctree.Tree) []byte {
	bp := encScratch.Get().(*[]byte)
	buf := AppendEncode((*bp)[:0], t)
	out := make([]byte, len(buf)) //treedoc:escape the exact-size result copy is the function's one allocation
	copy(out, buf)
	*bp = buf[:0]
	encScratch.Put(bp)
	return out
}

// AppendEncode appends the tree's encoding to dst and returns the extended
// slice, letting callers with their own buffer (snapshot headers, pooled
// scratch) serialise without an intermediate copy.
//
//treedoc:noalloc
func AppendEncode(dst []byte, t *doctree.Tree) []byte {
	buf := append(dst, magic[:]...)
	run := uint64(0)
	flushRun := func() {
		if run > 0 {
			buf = append(buf, tokAbsentRun)
			buf = binary.AppendUvarint(buf, run)
			run = 0
		}
	}
	t.ExportBFS(func(en doctree.ExportNode) {
		if !en.Present {
			run++
			return
		}
		flushRun()
		if en.IsFlat {
			buf = append(buf, tokFlat)
			buf = binary.AppendUvarint(buf, uint64(len(en.Flat)))
			for _, a := range en.Flat {
				buf = binary.AppendUvarint(buf, uint64(len(a)))
				buf = append(buf, a...)
			}
			return
		}
		buf = append(buf, tokNode)
		buf = binary.AppendUvarint(buf, uint64(len(en.Minis)))
		for _, m := range en.Minis {
			var flags byte
			if m.Dead {
				flags |= miniDead
			}
			if m.Dis.IsCanonical() {
				flags |= miniCanonical
			}
			buf = append(buf, flags)
			if !m.Dis.IsCanonical() {
				buf = binary.AppendUvarint(buf, uint64(m.Dis.Counter))
				buf = binary.AppendUvarint(buf, uint64(m.Dis.Site))
			}
			if !m.Dead {
				buf = binary.AppendUvarint(buf, uint64(len(m.Atom)))
				buf = append(buf, m.Atom...)
			}
		}
	})
	flushRun()
	return buf
}

// decoder reads the slot stream.
type decoder struct {
	buf []byte
	off int
	run uint64 // remaining absent-run slots
	// seen interns multi-byte atoms repeated across the snapshot, so a
	// document of recurring tokens decodes into shared strings instead of
	// one allocation per occurrence. Single ASCII atoms — the whole
	// document, at character granularity — intern through the global table
	// and never touch the map.
	seen map[string]string
}

// atom converts decoded atom bytes to a string through the intern paths.
func (d *decoder) atom(b []byte) string {
	if len(b) <= 1 {
		return intern.Bytes(b)
	}
	// The map lookup keyed by string(b) does not allocate; only the first
	// occurrence of each distinct atom pays for its string.
	if s, ok := d.seen[string(b)]; ok {
		return s
	}
	s := string(b)
	if d.seen == nil {
		d.seen = make(map[string]string)
	}
	d.seen[s] = s
	return s
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("storage: truncated varint at %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(d.buf)-d.off) {
		return nil, fmt.Errorf("storage: truncated payload at %d", d.off)
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

func (d *decoder) next() (doctree.ExportNode, error) {
	if d.run > 0 {
		d.run--
		return doctree.ExportNode{}, nil
	}
	if d.off >= len(d.buf) {
		// Trailing absent slots may be omitted entirely.
		return doctree.ExportNode{}, nil
	}
	tok := d.buf[d.off]
	d.off++
	switch tok {
	case tokAbsentRun:
		n, err := d.uvarint()
		if err != nil {
			return doctree.ExportNode{}, err
		}
		if n == 0 {
			return doctree.ExportNode{}, fmt.Errorf("storage: zero-length marker run")
		}
		d.run = n - 1
		return doctree.ExportNode{}, nil
	case tokFlat:
		n, err := d.uvarint()
		if err != nil {
			return doctree.ExportNode{}, err
		}
		// Each atom costs at least its one-byte length prefix, so a count
		// beyond the remaining bytes is corrupt; checking before make()
		// keeps a hostile prefix from forcing an arbitrary allocation.
		if n > uint64(len(d.buf)-d.off) {
			return doctree.ExportNode{}, fmt.Errorf("storage: flat count %d exceeds buffer", n)
		}
		atoms := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			alen, err := d.uvarint()
			if err != nil {
				return doctree.ExportNode{}, err
			}
			b, err := d.bytes(alen)
			if err != nil {
				return doctree.ExportNode{}, err
			}
			atoms = append(atoms, d.atom(b))
		}
		return doctree.ExportNode{Present: true, IsFlat: true, Flat: atoms}, nil
	case tokNode:
		n, err := d.uvarint()
		if err != nil {
			return doctree.ExportNode{}, err
		}
		// Each mini costs at least its flags byte; see the tokFlat bound.
		if n > uint64(len(d.buf)-d.off) {
			return doctree.ExportNode{}, fmt.Errorf("storage: mini count %d exceeds buffer", n)
		}
		minis := make([]doctree.ExportMini, 0, n)
		for i := uint64(0); i < n; i++ {
			if d.off >= len(d.buf) {
				return doctree.ExportNode{}, fmt.Errorf("storage: truncated mini flags")
			}
			flags := d.buf[d.off]
			d.off++
			var m doctree.ExportMini
			m.Dead = flags&miniDead != 0
			if flags&miniCanonical == 0 {
				c, err := d.uvarint()
				if err != nil {
					return doctree.ExportNode{}, err
				}
				s, err := d.uvarint()
				if err != nil {
					return doctree.ExportNode{}, err
				}
				if c > 1<<32-1 || ident.SiteID(s) > ident.MaxSiteID {
					return doctree.ExportNode{}, fmt.Errorf("storage: disambiguator out of range")
				}
				m.Dis = ident.Dis{Counter: uint32(c), Site: ident.SiteID(s)}
			}
			if !m.Dead {
				alen, err := d.uvarint()
				if err != nil {
					return doctree.ExportNode{}, err
				}
				b, err := d.bytes(alen)
				if err != nil {
					return doctree.ExportNode{}, err
				}
				m.Atom = d.atom(b)
			}
			minis = append(minis, m)
		}
		return doctree.ExportNode{Present: true, Minis: minis}, nil
	default:
		return doctree.ExportNode{}, fmt.Errorf("storage: invalid slot token %#x at %d", tok, d.off-1)
	}
}

// Decode reconstructs a document tree. The result is validated against the
// structural invariants before it is returned: a snapshot is an external
// input (disk, network), and a byte pattern no encoder produces — such as
// a live mini-node at the root, whose empty path is not a legal atom
// identifier — must not become a corrupt in-memory tree.
func Decode(data []byte) (*doctree.Tree, error) {
	if len(data) < len(magic) || string(data[:4]) != string(magic[:]) {
		return nil, fmt.Errorf("storage: bad magic")
	}
	d := &decoder{buf: data, off: len(magic)}
	t, err := doctree.BuildFromBFS(d.next)
	if err != nil {
		return nil, fmt.Errorf("storage: decode: %w", err)
	}
	if err := t.Check(); err != nil {
		return nil, fmt.Errorf("storage: invalid snapshot: %w", err)
	}
	return t, nil
}

// Measurement separates document content from structural overhead, as the
// paper does by keeping atoms in a separate file.
type Measurement struct {
	// TotalBytes is the full encoded size (structure + atoms).
	TotalBytes int
	// AtomBytes is the bytes of live atom content.
	AtomBytes int
	// OverheadBytes is TotalBytes - AtomBytes: Table 1's "On-disk overhead,
	// bytes" column.
	OverheadBytes int
}

// OverheadPercent is overhead relative to document size (Table 1's "% doc").
func (m Measurement) OverheadPercent() float64 {
	if m.AtomBytes == 0 {
		return 0
	}
	return 100 * float64(m.OverheadBytes) / float64(m.AtomBytes)
}

// Measure encodes the tree and reports the size split. The encoding runs
// entirely in pooled scratch — only the sizes survive — and the atom bytes
// are summed by streaming the live atoms rather than materialising them.
func Measure(t *doctree.Tree) Measurement {
	bp := encScratch.Get().(*[]byte)
	buf := AppendEncode((*bp)[:0], t)
	m := Measurement{TotalBytes: len(buf)}
	*bp = buf[:0]
	encScratch.Put(bp)
	t.VisitLive(func(_ int, a string, _ *doctree.Mini) bool {
		m.AtomBytes += len(a)
		return true
	})
	m.OverheadBytes = m.TotalBytes - m.AtomBytes
	return m
}

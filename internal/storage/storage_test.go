package storage

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/treedoc/treedoc/internal/doctree"
	"github.com/treedoc/treedoc/internal/ident"
)

func buildDoc(t *testing.T) *doctree.Tree {
	t.Helper()
	tr := doctree.New()
	for _, fix := range []struct{ id, atom string }{
		{"[0(0:s1)]", "a"}, {"[(0:s2)]", "b"}, {"[0(1:s3)]", "c"},
		{"[1(0:s4)]", "d"}, {"[(1:s5)]", "e"}, {"[1(1:s6)]", "f"},
	} {
		if err := tr.InsertID(ident.MustParsePath(fix.id), fix.atom); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func roundTrip(t *testing.T, tr *doctree.Tree) *doctree.Tree {
	t.Helper()
	data := Encode(tr)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := got.Check(); err != nil {
		t.Fatalf("decoded tree invalid: %v", err)
	}
	if !reflect.DeepEqual(got.Content(), tr.Content()) {
		t.Fatalf("content mismatch: %v vs %v", got.Content(), tr.Content())
	}
	return got
}

func TestRoundTripBasic(t *testing.T) {
	tr := buildDoc(t)
	got := roundTrip(t, tr)
	// Identifiers must survive: look up an original id in the decoded tree.
	if !got.HasLive(ident.MustParsePath("[1(0:s4)]")) {
		t.Error("identifier lost in round trip")
	}
}

func TestRoundTripEmpty(t *testing.T) {
	tr := doctree.New()
	got := roundTrip(t, tr)
	if got.Len() != 0 {
		t.Errorf("len = %d", got.Len())
	}
}

func TestRoundTripTombstonesAndMinis(t *testing.T) {
	tr := buildDoc(t)
	if _, err := tr.DeleteID(ident.MustParsePath("[(0:s2)]"), false); err != nil {
		t.Fatal(err)
	}
	// Concurrent-style minis and a mini-child.
	for _, fix := range []struct{ id, atom string }{
		{"[10(0:s7)]", "W"}, {"[10(0:s9)]", "Y"}, {"[10(0:s7)(1:s8)]", "X"},
	} {
		if err := tr.InsertID(ident.MustParsePath(fix.id), fix.atom); err != nil {
			t.Fatal(err)
		}
	}
	got := roundTrip(t, tr)
	s := got.Stats(ident.PaperCost(ident.SDIS))
	if s.DeadMinis != 1 {
		t.Errorf("tombstones = %d, want 1", s.DeadMinis)
	}
	if !got.HasLive(ident.MustParsePath("[10(0:s7)(1:s8)]")) {
		t.Error("mini-child lost")
	}
}

func TestRoundTripFlattened(t *testing.T) {
	tr := buildDoc(t)
	if err := tr.FlattenAll(); err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, tr)
	s := got.Stats(ident.PaperCost(ident.SDIS))
	if s.FlatAtoms != 6 {
		t.Errorf("flat atoms = %d", s.FlatAtoms)
	}
}

func TestRoundTripMixed(t *testing.T) {
	tr := buildDoc(t)
	// Flatten the right subtree, keep the left live.
	if err := tr.Flatten(ident.Path{ident.J(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tr.InsertID(ident.MustParsePath("[00(0:s9)]"), "z"); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, tr)
}

func TestRoundTripUDISCanonical(t *testing.T) {
	tr := buildDoc(t)
	if err := tr.FlattenAll(); err != nil {
		t.Fatal(err)
	}
	// Explode by touching, then add UDIS atoms.
	if _, err := tr.IDAt(0); err != nil {
		t.Fatal(err)
	}
	if err := tr.InsertID(ident.MustParsePath("[00(0:c3s2)]"), "u"); err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, tr)
	if !got.HasLive(ident.MustParsePath("[00(0:c3s2)]")) {
		t.Error("UDIS disambiguator lost")
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr := doctree.New()
	var live []ident.Path
	site := ident.SiteID(1)
	for step := 0; step < 500; step++ {
		switch {
		case len(live) == 0 || rng.Intn(100) < 65:
			d := ident.Dis{Site: site}
			site++
			var id ident.Path
			if len(live) == 0 {
				id = ident.Path{ident.M(1, d)}
			} else {
				base := live[rng.Intn(len(live))]
				if rng.Intn(2) == 0 {
					id = base.Child(ident.M(uint8(rng.Intn(2)), d))
				} else {
					id = base.StripLastDis().Child(ident.M(uint8(rng.Intn(2)), d))
				}
			}
			if tr.Exists(id) {
				continue
			}
			if err := tr.InsertID(id, "x"); err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		default:
			i := rng.Intn(len(live))
			if _, err := tr.DeleteID(live[i], rng.Intn(2) == 0); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
	}
	roundTrip(t, tr)
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := Decode([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	tr := buildDoc(t)
	data := Encode(tr)
	// Corrupt the token stream.
	bad := append([]byte(nil), data...)
	bad[5] = 0xFF
	if _, err := Decode(bad); err == nil {
		t.Error("invalid token accepted")
	}
	// Truncations must error, not panic.
	for cut := 5; cut < len(data)-1; cut += 3 {
		if _, err := Decode(data[:cut]); err == nil {
			// Truncation may still decode if the cut lands between records
			// and remaining slots default to absent; content must then be a
			// prefix. Accept silently: the structural Check in BuildFromBFS
			// covers integrity.
			continue
		}
	}
}

// TestRLECompressesSparseTree: the format's point is that a deep sparse
// chain costs little thanks to marker runs. A right-spine of 64 atoms must
// encode in far less than 2^64 slots.
func TestRLECompressesSparseTree(t *testing.T) {
	tr := doctree.New()
	id := ident.Path{}
	for i := 0; i < 64; i++ {
		id = append(id, ident.J(1))
	}
	for i := 0; i < 64; i++ {
		atomID := id[:i+1].Clone()
		atomID[i] = ident.M(1, ident.Dis{Site: 1})
		if err := tr.InsertID(atomID, "x"); err != nil {
			t.Fatal(err)
		}
	}
	data := Encode(tr)
	if len(data) > 4096 {
		t.Errorf("sparse spine encoded to %d bytes; RLE is not working", len(data))
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 64 {
		t.Errorf("len = %d", got.Len())
	}
}

func TestMeasure(t *testing.T) {
	tr := buildDoc(t)
	m := Measure(tr)
	if m.AtomBytes != 6 {
		t.Errorf("atom bytes = %d", m.AtomBytes)
	}
	if m.TotalBytes <= m.AtomBytes {
		t.Errorf("total %d should exceed atoms %d", m.TotalBytes, m.AtomBytes)
	}
	if m.OverheadBytes != m.TotalBytes-m.AtomBytes {
		t.Error("overhead arithmetic")
	}
	if m.OverheadPercent() <= 0 {
		t.Error("overhead percent")
	}
	// Flattening must shrink on-disk overhead dramatically.
	if err := tr.FlattenAll(); err != nil {
		t.Fatal(err)
	}
	m2 := Measure(tr)
	if m2.OverheadBytes >= m.OverheadBytes {
		t.Errorf("flatten did not reduce overhead: %d -> %d", m.OverheadBytes, m2.OverheadBytes)
	}
	empty := Measurement{}
	if empty.OverheadPercent() != 0 {
		t.Error("empty overhead percent")
	}
}

package storage

import (
	"testing"

	"github.com/treedoc/treedoc/internal/doctree"
	"github.com/treedoc/treedoc/internal/ident"
)

// buildTree returns a tree holding n single-character atoms.
func buildTree(t testing.TB, n int) *doctree.Tree {
	t.Helper()
	tr := doctree.New()
	var prev ident.Path
	for i := 0; i < n; i++ {
		id := prev.Child(ident.M(1, ident.Dis{Counter: 1, Site: 1}))
		if err := tr.InsertID(id, "x"); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	return tr
}

// TestEncodeAllocs guards the pooled-scratch contract of the snapshot
// encoder: Encode of a flattened document builds in reused scratch and
// returns one exact-size copy, so the steady-state cost is a handful of
// allocations, not one per append-growth doubling. The compacted form is
// the paper's best case ("a compacted Treedoc reduces to a sequential
// array") and the common shape for snapshot-heavy workloads.
func TestEncodeAllocs(t *testing.T) {
	tr := buildTree(t, 512)
	if err := tr.FlattenAll(); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(100, func() {
		Encode(tr)
	})
	// One exact-size result plus the BFS queue and the root slot's export
	// view; anything beyond that means append-growth is back.
	if got > 4 {
		t.Errorf("Encode(flattened tree): %.1f allocs/op, want <= 4", got)
	}
}

// TestDecodeAllocs guards the decoder's atom interning: single-character
// atoms resolve through the shared intern table, so decoding is bounded by
// the tree structure, not one string header per atom. Without interning
// this tree would cost ~512 extra allocations per decode.
func TestDecodeAllocs(t *testing.T) {
	tr := buildTree(t, 512)
	if err := tr.FlattenAll(); err != nil {
		t.Fatal(err)
	}
	data := Encode(tr)
	got := testing.AllocsPerRun(50, func() {
		if _, err := Decode(data); err != nil {
			t.Fatal(err)
		}
	})
	// Structure for the decoded tree (root, flat slice, queue) — but no
	// per-atom string allocations.
	if got > 16 {
		t.Errorf("Decode(512-atom snapshot): %.1f allocs/op, want <= 16 (interned atoms)", got)
	}
}

package storage_test

import (
	"bytes"
	"testing"

	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/storage"
)

// seedEncodings builds snapshot corpora from real documents: an empty
// tree, a tree with live and dead minis, and a flattened (compacted) tree,
// so the fuzzer starts from every slot-token kind.
func seedEncodings(f *testing.F) [][]byte {
	var seeds [][]byte

	empty, err := core.NewDocument(core.Config{Site: 5})
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, storage.Encode(empty.Tree()))

	doc, err := core.NewDocument(core.Config{Site: 5})
	if err != nil {
		f.Fatal(err)
	}
	for i, atom := range []string{"one", "two", "three", "four", "five"} {
		if _, err := doc.InsertAt(i, atom); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := doc.DeleteAt(1); err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, storage.Encode(doc.Tree()))

	flat, err := core.NewDocument(core.Config{Site: 5})
	if err != nil {
		f.Fatal(err)
	}
	for i, atom := range []string{"a", "b", "c"} {
		if _, err := flat.InsertAt(i, atom); err != nil {
			f.Fatal(err)
		}
	}
	if err := flat.FlattenAll(); err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, storage.Encode(flat.Tree()))

	return seeds
}

// FuzzStorageDecode is the snapshot-boundary fuzz target: arbitrary bytes
// must never panic Decode, and any accepted tree must satisfy the
// structural invariants and survive an encode/decode round trip.
func FuzzStorageDecode(f *testing.F) {
	for _, s := range seedEncodings(f) {
		f.Add(s)
	}
	f.Add([]byte("TDC1"))
	f.Add([]byte{'T', 'D', 'C', '1', 0x00, 0x01})
	f.Add([]byte{'T', 'D', 'C', '1', 0x01, 0x01, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		tree, err := storage.Decode(data)
		if err != nil {
			return
		}
		if err := tree.Check(); err != nil {
			t.Fatalf("Decode accepted a tree violating invariants: %v", err)
		}
		re := storage.Encode(tree)
		again, err := storage.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded tree rejected: %v", err)
		}
		if !bytes.Equal(storage.Encode(again), re) {
			t.Fatal("tree not stable under encode/decode round trip")
		}
	})
}

// TestDecodeRoundTripSeeds pins the seed corpus through the full
// round trip outside fuzzing mode, so plain `go test` exercises it.
func TestDecodeRoundTripSeeds(t *testing.T) {
	doc, err := core.NewDocument(core.Config{Site: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, atom := range []string{"alpha", "beta", "gamma", "delta"} {
		if _, err := doc.InsertAt(i, atom); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := doc.DeleteAt(0); err != nil {
		t.Fatal(err)
	}
	enc := storage.Encode(doc.Tree())
	tree, err := storage.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Check(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(storage.Encode(tree), enc) {
		t.Fatal("encode/decode/encode not stable")
	}
}

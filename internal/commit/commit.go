// Package commit implements the distributed commitment procedure that makes
// flatten safe (Section 4.2.1 of the Treedoc paper): "When executing flatten
// at some site, if this site observes the execution of an insert, delete or
// flatten within the sub-tree to be flattened, that site votes No to
// commitment, otherwise it votes Yes. The operation succeeds only if all
// sites vote Yes, otherwise it has no effect."
//
// The protocol here is two-phase commit with presumed abort: the paper notes
// "any distributed commitment protocol from the literature will do". A
// participant that votes Yes locks the subtree against local edits until the
// decision (or a timeout) arrives, which closes the window between vote and
// decision; remote edits are excluded by the vote condition itself, because
// a site that issued or applied a subtree edit the coordinator has not seen
// votes No.
//
// The state machines are transport-agnostic and single-threaded; the cluster
// layer wires them to the simulated network and the causal delivery buffers.
package commit

import (
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// TxID identifies a flatten transaction.
type TxID struct {
	Coord ident.SiteID
	N     uint64
}

// String renders the transaction id.
func (t TxID) String() string { return fmt.Sprintf("tx(s%d#%d)", t.Coord, t.N) }

// MsgKind is the protocol message type.
type MsgKind uint8

const (
	// Prepare asks a participant to vote on flattening a subtree.
	Prepare MsgKind = iota + 1
	// Vote answers a Prepare.
	Vote
	// Decision announces commit or abort.
	Decision
)

// Msg is a protocol message.
type Msg struct {
	Kind MsgKind
	Tx   TxID
	// Path is the subtree to flatten (Prepare and Decision).
	Path ident.Path
	// Obs is the coordinator's delivered vector clock at proposal time: the
	// state of the subtree being flattened (Prepare).
	Obs vclock.VC
	// Yes is the participant's vote (Vote).
	Yes bool
	// Commit is the decision (Decision).
	Commit bool
}

// Out is an outbound message with its destination (0 = broadcast to all
// participants).
type Out struct {
	To  ident.SiteID
	Msg Msg
}

// Resource is the coordinator's and participants' view of the document
// replica.
type Resource interface {
	// UneditedSince reports whether the subtree at path has seen no insert,
	// delete or flatten beyond the causal history obs. False means vote No.
	UneditedSince(path ident.Path, obs vclock.VC) bool
	// ApplyFlatten flattens the subtree; called exactly once on commit.
	ApplyFlatten(path ident.Path) error
}

// Coordinator drives flatten transactions for one site.
type Coordinator struct {
	site    ident.SiteID
	n       uint64
	pending map[TxID]*txState
}

type txState struct {
	path     ident.Path
	waiting  map[ident.SiteID]bool
	deadline int64
	done     bool
}

// NewCoordinator creates a coordinator for the given site.
func NewCoordinator(site ident.SiteID) *Coordinator {
	return &Coordinator{site: site, pending: make(map[TxID]*txState)}
}

// SeedTxCounter raises the transaction counter floor. A coordinator that
// restarts loses its counter; seeding with a restart-unique value (e.g. a
// timestamp) keeps it from re-minting a TxID that participants may still
// hold state for from before the crash.
func (c *Coordinator) SeedTxCounter(n uint64) {
	if n > c.n {
		c.n = n
	}
}

// Propose starts a transaction to flatten path across the participants
// (which should include the coordinator's own site, so the local replica
// votes and locks like everyone else). obs is the coordinator's delivered
// vector clock; now and timeout set the abort deadline.
func (c *Coordinator) Propose(path ident.Path, obs vclock.VC, participants []ident.SiteID, now, timeout int64) (TxID, []Out) {
	c.n++
	tx := TxID{Coord: c.site, N: c.n}
	st := &txState{path: path.Clone(), waiting: make(map[ident.SiteID]bool, len(participants)), deadline: now + timeout}
	outs := make([]Out, 0, len(participants))
	for _, p := range participants {
		st.waiting[p] = true
		outs = append(outs, Out{To: p, Msg: Msg{Kind: Prepare, Tx: tx, Path: st.path, Obs: obs.Clone()}})
	}
	c.pending[tx] = st
	return tx, outs
}

// OnVote ingests a vote. When all participants voted Yes it emits the
// commit decision; on the first No it emits the abort decision.
func (c *Coordinator) OnVote(from ident.SiteID, m Msg) []Out {
	st, ok := c.pending[m.Tx]
	if !ok || st.done {
		return nil
	}
	if !m.Yes {
		return c.decide(m.Tx, st, false)
	}
	delete(st.waiting, from)
	if len(st.waiting) == 0 {
		return c.decide(m.Tx, st, true)
	}
	return nil
}

// Tick aborts transactions whose deadline passed (participant crash or
// partition): presumed abort keeps the protocol safe, just not live for
// that transaction.
func (c *Coordinator) Tick(now int64) []Out {
	var outs []Out
	for tx, st := range c.pending {
		if !st.done && now >= st.deadline {
			outs = append(outs, c.decide(tx, st, false)...)
		}
	}
	return outs
}

func (c *Coordinator) decide(tx TxID, st *txState, commit bool) []Out {
	st.done = true
	delete(c.pending, tx)
	return []Out{{To: 0, Msg: Msg{Kind: Decision, Tx: tx, Path: st.path, Commit: commit}}}
}

// Pending returns the number of undecided transactions.
func (c *Coordinator) Pending() int { return len(c.pending) }

// InFlight reports whether tx is still undecided at this coordinator. A
// transport that receives a vote for a transaction that is not in flight
// answers from its decision memory — or presumes abort — instead of
// feeding the vote to OnVote.
func (c *Coordinator) InFlight(tx TxID) bool {
	_, ok := c.pending[tx]
	return ok
}

// Participant is one site's voter. A Yes vote locks the subtree against
// local edits — and against votes for overlapping proposals — until the
// decision arrives. The lock must block until the decision: a participant
// that released early could accept edits that a late-arriving commit would
// then destroy. The coordinator's timeout (Coordinator.Tick) guarantees a
// decision is eventually broadcast, so in a crash-free deployment (and in
// the simulator) every lock is eventually released; tolerating coordinator
// crashes needs the fault-tolerant commitment the paper defers to
// (Gray & Lamport).
type Participant struct {
	site  ident.SiteID
	res   Resource
	locks map[TxID]lockState
}

type lockState struct {
	path ident.Path
}

// NewParticipant creates a participant bound to a replica.
func NewParticipant(site ident.SiteID, res Resource) *Participant {
	return &Participant{site: site, res: res, locks: make(map[TxID]lockState)}
}

// OnPrepare evaluates a Prepare and returns the vote. A participant votes
// No when the replica observed a conflicting edit (Resource.UneditedSince)
// or when it already holds a lock for an overlapping region: two concurrent
// flatten proposals must never both commit, because committed flattens
// apply in message order, not causal order.
func (p *Participant) OnPrepare(m Msg) Out {
	yes := p.res.UneditedSince(m.Path, m.Obs)
	if yes {
		for _, l := range p.locks {
			if regionsOverlap(l.path, m.Path) {
				yes = false
				break
			}
		}
	}
	if yes {
		p.locks[m.Tx] = lockState{path: m.Path.Clone()}
	}
	return Out{To: m.Tx.Coord, Msg: Msg{Kind: Vote, Tx: m.Tx, Yes: yes}}
}

// OnDecision applies a decision: commit flattens the subtree, abort leaves
// no side effects ("causing no harm"). Either way the lock is released.
func (p *Participant) OnDecision(m Msg) error {
	delete(p.locks, m.Tx)
	if !m.Commit {
		return nil
	}
	if err := p.res.ApplyFlatten(m.Path); err != nil {
		return fmt.Errorf("commit: %v flatten at %v: %w", m.Tx, m.Path, err)
	}
	return nil
}

// regionsOverlap reports whether the identifier regions of two structural
// paths intersect: subtree regions are intervals, and they intersect
// exactly when one node lies inside the other's subtree (one structural
// path extends the other's walk).
func regionsOverlap(a, b ident.Path) bool {
	return pathInRegion(a, b) || pathInRegion(b, a)
}

// pathInRegion reports whether the node at structural path a lies inside
// the region of the node at structural path b.
func pathInRegion(a, b ident.Path) bool {
	if len(b) == 0 {
		return true // the root's region is everything
	}
	if len(a) < len(b) {
		return false
	}
	for i := 0; i < len(b)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return a[len(b)-1].Bit == b[len(b)-1].Bit
}

// Blocks reports whether a local edit at the given identifier must wait:
// it falls inside a subtree locked by an outstanding Yes vote.
func (p *Participant) Blocks(id ident.Path) bool {
	for _, l := range p.locks {
		if ident.RegionCompare(id, l.path) == 0 {
			return true
		}
	}
	return false
}

// BlocksGap reports whether any locked region lies inside the open gap
// (lo, hi) (nil bounds = document start/end): an insert into the gap could
// allocate an identifier inside the locked region.
func (p *Participant) BlocksGap(lo, hi ident.Path) bool {
	for _, l := range p.locks {
		loBefore := lo == nil || ident.RegionCompare(lo, l.path) < 0
		hiAfter := hi == nil || ident.RegionCompare(hi, l.path) > 0
		if loBefore && hiAfter {
			return true
		}
	}
	return false
}

// Locked returns the number of held locks.
func (p *Participant) Locked() int { return len(p.locks) }

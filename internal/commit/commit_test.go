package commit

import (
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// fakeResource scripts votes and records flattens.
type fakeResource struct {
	unedited  bool
	flattened []ident.Path
	fail      bool
}

func (f *fakeResource) UneditedSince(path ident.Path, obs vclock.VC) bool { return f.unedited }
func (f *fakeResource) ApplyFlatten(path ident.Path) error {
	if f.fail {
		return errFail
	}
	f.flattened = append(f.flattened, path)
	return nil
}

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "fail" }

func path(s string) ident.Path { return ident.MustParsePath(s) }

func TestCommitUnanimousYes(t *testing.T) {
	coord := NewCoordinator(1)
	res := []*fakeResource{{unedited: true}, {unedited: true}, {unedited: true}}
	parts := make([]*Participant, 3)
	for i := range parts {
		parts[i] = NewParticipant(ident.SiteID(i+1), res[i])
	}
	tx, prepares := coord.Propose(ident.Path{}, vclock.VC{1: 3}, []ident.SiteID{1, 2, 3}, 0, 100)
	if len(prepares) != 3 {
		t.Fatalf("prepares = %d", len(prepares))
	}
	var decisions []Out
	for i, pr := range prepares {
		vote := parts[i].OnPrepare(pr.Msg)
		if vote.Msg.Kind != Vote || !vote.Msg.Yes || vote.To != 1 {
			t.Fatalf("vote = %+v", vote)
		}
		if parts[i].Locked() != 1 {
			t.Errorf("participant %d not locked after yes vote", i)
		}
		decisions = append(decisions, coord.OnVote(ident.SiteID(i+1), vote.Msg)...)
	}
	if len(decisions) != 1 || !decisions[0].Msg.Commit || decisions[0].To != 0 {
		t.Fatalf("decisions = %+v", decisions)
	}
	for i := range parts {
		if err := parts[i].OnDecision(decisions[0].Msg); err != nil {
			t.Fatal(err)
		}
		if len(res[i].flattened) != 1 {
			t.Errorf("participant %d did not flatten", i)
		}
		if parts[i].Locked() != 0 {
			t.Errorf("participant %d still locked", i)
		}
	}
	if coord.Pending() != 0 {
		t.Errorf("pending = %d", coord.Pending())
	}
	if tx.String() == "" {
		t.Error("empty tx id string")
	}
}

func TestAbortOnNoVote(t *testing.T) {
	coord := NewCoordinator(1)
	yes := NewParticipant(1, &fakeResource{unedited: true})
	no := NewParticipant(2, &fakeResource{unedited: false})
	_, prepares := coord.Propose(ident.Path{}, vclock.VC{}, []ident.SiteID{1, 2}, 0, 100)
	vYes := yes.OnPrepare(prepares[0].Msg)
	vNo := no.OnPrepare(prepares[1].Msg)
	if vNo.Msg.Yes {
		t.Fatal("edited participant voted yes")
	}
	if no.Locked() != 0 {
		t.Error("no-voter took a lock")
	}
	decisions := coord.OnVote(2, vNo.Msg)
	if len(decisions) != 1 || decisions[0].Msg.Commit {
		t.Fatalf("decisions = %+v", decisions)
	}
	// The straggler yes vote after the decision is ignored.
	if late := coord.OnVote(1, vYes.Msg); late != nil {
		t.Errorf("late vote produced %+v", late)
	}
	if err := yes.OnDecision(decisions[0].Msg); err != nil {
		t.Fatal(err)
	}
	if yes.Locked() != 0 {
		t.Error("abort did not release the lock")
	}
}

func TestCoordinatorTimeout(t *testing.T) {
	coord := NewCoordinator(1)
	_, _ = coord.Propose(ident.Path{}, vclock.VC{}, []ident.SiteID{1, 2}, 0, 100)
	if outs := coord.Tick(50); outs != nil {
		t.Errorf("early tick decided: %+v", outs)
	}
	outs := coord.Tick(100)
	if len(outs) != 1 || outs[0].Msg.Commit {
		t.Fatalf("timeout decision = %+v", outs)
	}
	if coord.Pending() != 0 {
		t.Error("transaction still pending after timeout")
	}
}

func TestLockBlocksUntilDecision(t *testing.T) {
	// A Yes vote holds its lock until the decision — early release would
	// let edits race a late commit (see the Participant doc comment). The
	// coordinator's timeout abort is what eventually frees it.
	p := NewParticipant(1, &fakeResource{unedited: true})
	tx := TxID{Coord: 2, N: 1}
	_ = p.OnPrepare(Msg{Kind: Prepare, Tx: tx, Path: ident.Path{}})
	if p.Locked() != 1 {
		t.Fatal("no lock taken")
	}
	if err := p.OnDecision(Msg{Kind: Decision, Tx: tx, Commit: false}); err != nil {
		t.Fatal(err)
	}
	if p.Locked() != 0 {
		t.Error("abort decision did not release the lock")
	}
}

func TestOverlappingProposalsExcluded(t *testing.T) {
	// A participant holding a lock votes No on any overlapping proposal:
	// two concurrent flattens must never both commit.
	p := NewParticipant(1, &fakeResource{unedited: true})
	tx1 := TxID{Coord: 2, N: 1}
	sub := path("[10(0:s1)]").StripLastDis()
	v1 := p.OnPrepare(Msg{Kind: Prepare, Tx: tx1, Path: sub})
	if !v1.Msg.Yes {
		t.Fatal("first proposal rejected")
	}
	// Overlapping: the whole document contains the locked subtree.
	v2 := p.OnPrepare(Msg{Kind: Prepare, Tx: TxID{Coord: 3, N: 1}, Path: ident.Path{}})
	if v2.Msg.Yes {
		t.Error("overlapping (enclosing) proposal accepted during open vote")
	}
	// Overlapping: a subtree inside the locked one.
	inner := path("[100(0:s1)]").StripLastDis()
	v3 := p.OnPrepare(Msg{Kind: Prepare, Tx: TxID{Coord: 3, N: 2}, Path: inner})
	if v3.Msg.Yes {
		t.Error("overlapping (inner) proposal accepted during open vote")
	}
	// Disjoint region: fine.
	other := path("[0(0:s1)]").StripLastDis()
	v4 := p.OnPrepare(Msg{Kind: Prepare, Tx: TxID{Coord: 3, N: 3}, Path: other})
	if !v4.Msg.Yes {
		t.Error("disjoint proposal rejected")
	}
	// After the decisions release both locks, new proposals pass again.
	if err := p.OnDecision(Msg{Kind: Decision, Tx: tx1, Commit: false}); err != nil {
		t.Fatal(err)
	}
	if err := p.OnDecision(Msg{Kind: Decision, Tx: TxID{Coord: 3, N: 3}, Commit: false}); err != nil {
		t.Fatal(err)
	}
	v5 := p.OnPrepare(Msg{Kind: Prepare, Tx: TxID{Coord: 3, N: 4}, Path: ident.Path{}})
	if !v5.Msg.Yes {
		t.Error("proposal rejected after locks were released")
	}
}

func TestBlocks(t *testing.T) {
	p := NewParticipant(1, &fakeResource{unedited: true})
	_ = p.OnPrepare(Msg{Kind: Prepare, Tx: TxID{Coord: 2, N: 1}, Path: path("[10(0:s1)]").StripLastDis()})
	if !p.Blocks(path("[10(0:s9)]")) {
		t.Error("identifier inside locked region not blocked")
	}
	if !p.Blocks(path("[100(1:s4)]")) {
		t.Error("descendant identifier not blocked")
	}
	if p.Blocks(path("[(0:s1)]")) {
		t.Error("identifier outside locked region blocked")
	}
	// Gap checks: a lock strictly inside the gap blocks inserts.
	if !p.BlocksGap(path("[(0:s1)]"), path("[(1:s1)]")) {
		t.Error("gap containing the locked region not blocked")
	}
	if p.BlocksGap(path("[11(0:s1)]"), nil) {
		t.Error("gap after the locked region blocked")
	}
	if !p.BlocksGap(nil, nil) {
		t.Error("whole-document gap not blocked")
	}
}

func TestOnDecisionFlattenError(t *testing.T) {
	p := NewParticipant(1, &fakeResource{unedited: true, fail: true})
	m := Msg{Kind: Prepare, Tx: TxID{Coord: 2, N: 1}, Path: ident.Path{}}
	_ = p.OnPrepare(m)
	err := p.OnDecision(Msg{Kind: Decision, Tx: m.Tx, Path: m.Path, Commit: true})
	if err == nil {
		t.Error("flatten failure swallowed")
	}
}

// TestProposerCrashMidVote: the coordinator collects a Yes vote and then
// loses its state (crash). Participants must keep their locks — releasing
// without a decision could race a commit they never heard about — and the
// restarted coordinator, which knows nothing of the transaction, ignores
// re-sent votes (InFlight false is what makes a transport answer them
// with presumed abort). Only a real abort decision releases the lock.
func TestProposerCrashMidVote(t *testing.T) {
	p := NewParticipant(2, &fakeResource{unedited: true})
	coord := NewCoordinator(1)
	tx, prepares := coord.Propose(ident.Path{}, vclock.VC{}, []ident.SiteID{2, 3}, 0, 100)
	vote := p.OnPrepare(prepares[0].Msg)
	if !vote.Msg.Yes || p.Locked() != 1 {
		t.Fatalf("vote = %+v, locked = %d", vote, p.Locked())
	}

	// Crash: all pending state is gone.
	coord = NewCoordinator(1)
	if coord.InFlight(tx) {
		t.Fatal("restarted coordinator knows the crashed transaction")
	}
	if outs := coord.OnVote(2, vote.Msg); outs != nil {
		t.Fatalf("restarted coordinator decided on a stale vote: %+v", outs)
	}
	if p.Locked() != 1 {
		t.Fatal("participant released its lock without a decision")
	}

	// The presumed-abort answer (what a transport sends for an unknown
	// transaction) releases the lock and leaves no side effects.
	res := &fakeResource{unedited: true}
	p2 := NewParticipant(2, res)
	_ = p2.OnPrepare(prepares[0].Msg)
	if err := p2.OnDecision(Msg{Kind: Decision, Tx: tx, Commit: false}); err != nil {
		t.Fatal(err)
	}
	if p2.Locked() != 0 || len(res.flattened) != 0 {
		t.Fatalf("abort left locked=%d flattened=%d", p2.Locked(), len(res.flattened))
	}
}

// TestDuplicateProposalSameRegion: a coordinator that re-proposes the
// same region while the first round is open gets a No (the participant's
// own outstanding lock overlaps), and the duplicate round aborts without
// disturbing the first.
func TestDuplicateProposalSameRegion(t *testing.T) {
	coord := NewCoordinator(1)
	p := NewParticipant(2, &fakeResource{unedited: true})
	sub := path("[10(0:s1)]").StripLastDis()

	tx1, prep1 := coord.Propose(sub, vclock.VC{}, []ident.SiteID{2}, 0, 100)
	v1 := p.OnPrepare(prep1[0].Msg)
	if !v1.Msg.Yes {
		t.Fatal("first proposal rejected")
	}

	tx2, prep2 := coord.Propose(sub, vclock.VC{}, []ident.SiteID{2}, 0, 100)
	v2 := p.OnPrepare(prep2[0].Msg)
	if v2.Msg.Yes {
		t.Fatal("duplicate proposal over a locked region accepted")
	}
	outs := coord.OnVote(2, v2.Msg)
	if len(outs) != 1 || outs[0].Msg.Commit {
		t.Fatalf("duplicate proposal decision = %+v", outs)
	}
	if err := p.OnDecision(outs[0].Msg); err != nil {
		t.Fatal(err)
	}
	if coord.InFlight(tx2) {
		t.Fatal("aborted duplicate still in flight")
	}

	// The first round is untouched and still commits.
	if !coord.InFlight(tx1) {
		t.Fatal("original round lost")
	}
	outs = coord.OnVote(2, v1.Msg)
	if len(outs) != 1 || !outs[0].Msg.Commit {
		t.Fatalf("original round decision = %+v", outs)
	}
	if err := p.OnDecision(outs[0].Msg); err != nil {
		t.Fatal(err)
	}
	if p.Locked() != 0 {
		t.Fatal("locks leaked across the duplicate round")
	}
}

// TestVoteAfterLocalEdit: a replica that executed an edit the coordinator
// has not observed votes No ("if this site observes the execution of an
// insert, delete or flatten within the sub-tree to be flattened, that
// site votes No"), takes no lock, and the round aborts with no effect.
func TestVoteAfterLocalEdit(t *testing.T) {
	coord := NewCoordinator(1)
	res := &fakeResource{unedited: true}
	p := NewParticipant(2, res)

	// Round 1 aborts for unrelated reasons (deadline): the participant's
	// lock is released and the replica edits afterwards.
	_, prep := coord.Propose(ident.Path{}, vclock.VC{}, []ident.SiteID{2, 3}, 0, 100)
	if v := p.OnPrepare(prep[0].Msg); !v.Msg.Yes {
		t.Fatal("quiescent replica voted No")
	}
	outs := coord.Tick(100)
	if len(outs) != 1 || outs[0].Msg.Commit {
		t.Fatalf("deadline decision = %+v", outs)
	}
	if err := p.OnDecision(outs[0].Msg); err != nil {
		t.Fatal(err)
	}
	res.unedited = false // the local edit happens here

	// Round 2 must be refused: the edit is beyond the coordinator's view.
	_, prep = coord.Propose(ident.Path{}, vclock.VC{}, []ident.SiteID{2}, 0, 100)
	v := p.OnPrepare(prep[0].Msg)
	if v.Msg.Yes {
		t.Fatal("replica with an unobserved edit voted Yes")
	}
	if p.Locked() != 0 {
		t.Fatal("No vote took a lock")
	}
	outs = coord.OnVote(2, v.Msg)
	if len(outs) != 1 || outs[0].Msg.Commit {
		t.Fatalf("decision after No vote = %+v", outs)
	}
	if len(res.flattened) != 0 {
		t.Fatal("aborted rounds flattened something")
	}
}

// TestVotesAfterDecisionIgnored: late votes for a decided (or timed-out)
// transaction neither revive it nor decide it twice.
func TestVotesAfterDecisionIgnored(t *testing.T) {
	coord := NewCoordinator(1)
	tx, _ := coord.Propose(ident.Path{}, vclock.VC{}, []ident.SiteID{2, 3}, 0, 100)
	if !coord.InFlight(tx) {
		t.Fatal("fresh proposal not in flight")
	}
	if outs := coord.Tick(250); len(outs) != 1 || outs[0].Msg.Commit {
		t.Fatalf("timeout decision = %+v", outs)
	}
	if coord.InFlight(tx) {
		t.Fatal("timed-out proposal still in flight")
	}
	if outs := coord.OnVote(2, Msg{Kind: Vote, Tx: tx, Yes: true}); outs != nil {
		t.Fatalf("late vote decided: %+v", outs)
	}
	if outs := coord.OnVote(3, Msg{Kind: Vote, Tx: tx, Yes: false}); outs != nil {
		t.Fatalf("late No vote decided: %+v", outs)
	}
	// Duplicate abort deliveries at a participant are harmless.
	p := NewParticipant(2, &fakeResource{unedited: true})
	_ = p.OnPrepare(Msg{Kind: Prepare, Tx: tx, Path: ident.Path{}})
	for i := 0; i < 2; i++ {
		if err := p.OnDecision(Msg{Kind: Decision, Tx: tx, Commit: false}); err != nil {
			t.Fatal(err)
		}
	}
	if p.Locked() != 0 {
		t.Fatal("lock survived the abort")
	}
}

func TestDuplicateVotesIgnored(t *testing.T) {
	coord := NewCoordinator(1)
	_, prepares := coord.Propose(ident.Path{}, vclock.VC{}, []ident.SiteID{1, 2}, 0, 100)
	_ = prepares
	v := Msg{Kind: Vote, Tx: TxID{Coord: 1, N: 1}, Yes: true}
	if outs := coord.OnVote(1, v); outs != nil {
		t.Fatalf("decision after one of two votes: %+v", outs)
	}
	if outs := coord.OnVote(1, v); outs != nil {
		t.Fatalf("duplicate vote decided: %+v", outs)
	}
	outs := coord.OnVote(2, v)
	if len(outs) != 1 || !outs[0].Msg.Commit {
		t.Fatalf("final vote: %+v", outs)
	}
	// Votes for unknown transactions are ignored.
	if outs := coord.OnVote(1, Msg{Kind: Vote, Tx: TxID{Coord: 9, N: 9}, Yes: true}); outs != nil {
		t.Errorf("unknown tx vote produced %+v", outs)
	}
}

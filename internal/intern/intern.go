// Package intern provides allocation-free interning for the small strings
// the hot paths churn through: character-granularity documents carry one
// atom per rune, so every keystroke, every decoded insert op and every
// snapshot atom is a one-rune string. Converting through this package makes
// all ASCII atoms share one preallocated table instead of costing a heap
// allocation each.
package intern

// asciiMax bounds the preallocated table: one entry per ASCII code point.
const asciiMax = 128

// ascii holds the canonical single-byte strings. Built once at init; the
// entries are immutable and shared freely across goroutines.
var ascii [asciiMax]string

func init() {
	// One backing array for the whole table keeps it a single allocation.
	backing := make([]byte, asciiMax)
	for i := range backing {
		backing[i] = byte(i)
	}
	for i := range ascii {
		ascii[i] = string(backing[i : i+1])
	}
}

// Rune returns the single-rune string for r, allocation-free for ASCII.
//
//treedoc:noalloc
func Rune(r rune) string {
	if r >= 0 && r < asciiMax {
		return ascii[r]
	}
	return string(r) //treedoc:escape non-ASCII fallback; the ASCII fast path is the contract
}

// Bytes returns string(b), reusing the interned table when b is a single
// ASCII byte — the common case for decoded character atoms.
//
//treedoc:noalloc
func Bytes(b []byte) string {
	if len(b) == 1 && b[0] < asciiMax {
		return ascii[b[0]]
	}
	return string(b) //treedoc:escape multi-byte fallback; the single-ASCII fast path is the contract
}

package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/treedoc/treedoc/internal/diff"
)

func TestGenerateProfilesMatchPaperStatistics(t *testing.T) {
	// The six calibrated profiles must land near the published numbers:
	// exact revision counts, exact initial sizes, final sizes within 15%,
	// final bytes within 30% (Table 1 captions, Table 2).
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tr, err := Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			s, err := tr.Summarize()
			if err != nil {
				t.Fatal(err)
			}
			if s.Revisions != p.Revisions {
				t.Errorf("revisions = %d, want %d", s.Revisions, p.Revisions)
			}
			if s.InitialAtoms != p.InitialAtoms {
				t.Errorf("initial = %d, want %d", s.InitialAtoms, p.InitialAtoms)
			}
			if dev := math.Abs(float64(s.FinalAtoms-p.FinalAtoms)) / float64(p.FinalAtoms); dev > 0.15 {
				t.Errorf("final atoms = %d, want %d (±15%%)", s.FinalAtoms, p.FinalAtoms)
			}
			wantBytes := p.FinalAtoms * p.AtomBytes
			if dev := math.Abs(float64(s.FinalBytes-wantBytes)) / float64(wantBytes); dev > 0.30 {
				t.Errorf("final bytes = %d, want ≈%d (±30%%)", s.FinalBytes, wantBytes)
			}
			// The modify-dominated mix means many deletes (Section 5: "an
			// unexpectedly large number of deletes").
			if s.Deletes == 0 || float64(s.Deletes) < 0.3*float64(s.Inserts) {
				t.Errorf("deletes = %d vs inserts = %d: not delete-heavy", s.Deletes, s.Inserts)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profiles()[3] // acf.tex
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := a.Final()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Final()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fa, fb) {
		t.Error("same seed produced different histories")
	}
	if len(a.Revisions) != len(b.Revisions) {
		t.Error("revision counts differ")
	}
}

func TestGenerateInvalidProfile(t *testing.T) {
	if _, err := Generate(Profile{FinalAtoms: 0, Revisions: 1}); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestVandalismEpisodes(t *testing.T) {
	p := Profile{
		Name: "vandal", Granularity: Paragraphs, Seed: 9,
		InitialAtoms: 40, FinalAtoms: 60, Revisions: 40, AtomBytes: 50,
		EditsPerRevision: 2, ModifyFraction: 0.5, HotSpots: 1, VandalismEvery: 10,
	}
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Find a revision that deletes a large contiguous chunk and verify the
	// next one restores the same atom count.
	foundVandalism := false
	doc := append([]string(nil), tr.Initial...)
	for i, rev := range tr.Revisions {
		dels := 0
		for _, op := range rev.Ops {
			if op.Kind == diff.Delete {
				dels++
			}
		}
		before := len(doc)
		doc, err = diff.Apply(doc, rev.Ops)
		if err != nil {
			t.Fatal(err)
		}
		if dels >= before/3 && dels > 3 && i+1 < len(tr.Revisions) {
			next := tr.Revisions[i+1]
			ins := 0
			for _, op := range next.Ops {
				if op.Kind == diff.Insert {
					ins++
				}
			}
			if ins >= dels {
				foundVandalism = true
			}
		}
	}
	if !foundVandalism {
		t.Error("no vandalise/restore episode found")
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("acf.tex")
	if err != nil || p.Granularity != Lines {
		t.Errorf("ProfileByName: %+v, %v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
	if got := len(LatexProfiles()); got != 3 {
		t.Errorf("latex profiles = %d", got)
	}
	for _, p := range LatexProfiles() {
		if p.Granularity != Lines {
			t.Errorf("latex profile %s has granularity %s", p.Name, p.Granularity)
		}
	}
}

func TestFromVersions(t *testing.T) {
	v1 := []string{"a", "b", "c"}
	v2 := []string{"a", "x", "c", "d"}
	v3 := []string{"x", "c", "d"}
	tr, err := FromVersions("doc", Lines, [][]string{v1, v2, v3})
	if err != nil {
		t.Fatal(err)
	}
	final, err := tr.Final()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final, v3) {
		t.Errorf("final = %v, want %v", final, v3)
	}
	if _, err := FromVersions("x", Lines, nil); err == nil {
		t.Error("empty versions accepted")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	p := Profiles()[4]
	p.Revisions = 20 // keep the fixture small
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Granularity != tr.Granularity {
		t.Errorf("header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Initial, tr.Initial) {
		t.Error("initial mismatch")
	}
	if len(got.Revisions) != len(tr.Revisions) {
		t.Fatalf("revisions = %d, want %d", len(got.Revisions), len(tr.Revisions))
	}
	f1, _ := tr.Final()
	f2, err := got.Final()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Error("round-tripped trace diverges")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Read(strings.NewReader(`{"name":"x","revisions":2}` + "\n")); err == nil {
		t.Error("missing revisions accepted")
	}
}

func TestSummarizeBrokenTrace(t *testing.T) {
	tr := &Trace{Name: "bad", Revisions: []Revision{{Ops: []diff.Op{{Kind: diff.Delete, Index: 5}}}}}
	if _, err := tr.Summarize(); err == nil {
		t.Error("invalid trace summarized")
	}
	if _, err := tr.Final(); err == nil {
		t.Error("invalid trace finalized")
	}
}

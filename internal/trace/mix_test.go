package trace

import (
	"math"
	"reflect"
	"testing"
)

// applyEdit maintains a doc length under a stream's edits so the stream
// observes realistic lengths (Next is driven with the evolving length,
// as the load harness drives it with the live Doc's length).
func applyEdit(docLen int, e Edit) int {
	return docLen - e.Del + len(e.Ins)
}

// TestMixDistributions drives streams for many actions and checks the
// realized action mix against the configured probabilities.
func TestMixDistributions(t *testing.T) {
	cases := []struct {
		name string
		mix  Mix
	}{
		{"default", DefaultMix()},
		{"paste-heavy", Mix{TypistRun: 4, JumpProb: 0.1, PasteProb: 0.2, PasteLen: 10, DeleteProb: 0.1, DeleteRun: 2, AtomBytes: 8}},
		{"delete-heavy", Mix{TypistRun: 6, JumpProb: 0.02, PasteProb: 0.01, PasteLen: 40, DeleteProb: 0.4, DeleteRun: 8, AtomBytes: 16}},
		{"pure-typist", Mix{TypistRun: 12, JumpProb: 0, PasteProb: 0, PasteLen: 1, DeleteProb: 0, DeleteRun: 1, AtomBytes: 12}},
	}
	const actions = 60000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewStream(tc.mix, 1, "c0")
			if err != nil {
				t.Fatal(err)
			}
			var deletes, pastes, singles int
			var pasteAtoms int
			docLen := 0
			for i := 0; i < actions; i++ {
				e := s.Next(docLen)
				if e.Pos < 0 || e.Pos+e.Del > docLen {
					t.Fatalf("action %d: edit %+v invalid for docLen %d", i, e, docLen)
				}
				switch {
				case e.Del > 0:
					deletes++
				case len(e.Ins) > 1:
					pastes++
					pasteAtoms += len(e.Ins)
				case len(e.Ins) == 1:
					singles++
				default:
					t.Fatalf("action %d: empty edit %+v", i, e)
				}
				docLen = applyEdit(docLen, e)
			}
			// Delete share tracks DeleteProb. The realized share runs a
			// touch below the probability because deletes are skipped on an
			// empty document; 15% relative plus 1 point absolute covers
			// both sampling noise and that early-run dilution.
			checkShare := func(name string, got int, want float64) {
				t.Helper()
				share := float64(got) / actions
				tol := 0.15*want + 0.01
				if math.Abs(share-want) > tol {
					t.Errorf("%s share = %.4f, want %.4f ± %.4f", name, share, want, tol)
				}
			}
			checkShare("delete", deletes, tc.mix.DeleteProb)
			checkShare("paste", pastes, tc.mix.PasteProb)
			checkShare("single-insert", singles, 1-tc.mix.DeleteProb-tc.mix.PasteProb)
			if pastes > 0 {
				mean := float64(pasteAtoms) / float64(pastes)
				// Paste length is 1 + PasteLen/2 + Intn(PasteLen): mean
				// ≈ PasteLen + 0.5.
				want := float64(tc.mix.PasteLen) + 0.5
				if math.Abs(mean-want) > 0.25*want+1 {
					t.Errorf("mean paste length = %.1f, want ≈ %.1f", mean, want)
				}
			}
		})
	}
}

// TestMixAtomSize checks generated atoms land near the configured mean.
func TestMixAtomSize(t *testing.T) {
	m := DefaultMix()
	s, err := NewStream(m, 3, "size")
	if err != nil {
		t.Fatal(err)
	}
	var total, n int
	docLen := 0
	for i := 0; i < 20000; i++ {
		e := s.Next(docLen)
		for _, a := range e.Ins {
			total += len(a)
			n++
		}
		docLen = applyEdit(docLen, e)
	}
	if n == 0 {
		t.Fatal("no atoms generated")
	}
	mean := float64(total) / float64(n)
	// Atom length is max(tag+counter, AtomBytes/2 + Intn(AtomBytes)): the
	// fixed prefix ("size-0000001", 12 bytes) floors the draw, so the mean
	// sits at or a bit above the nominal AtomBytes (= 24 here).
	if mean < float64(m.AtomBytes)*0.75 || mean > float64(m.AtomBytes)*1.5 {
		t.Errorf("mean atom bytes = %.1f, want near %d", mean, m.AtomBytes)
	}
}

// TestStreamDeterministic proves two streams with the same (mix, seed,
// tag) replay identical edits, and a different seed diverges.
func TestStreamDeterministic(t *testing.T) {
	m := DefaultMix()
	a, _ := NewStream(m, 99, "x")
	b, _ := NewStream(m, 99, "x")
	c, _ := NewStream(m, 100, "x")
	docA, docB, docC := 0, 0, 0
	diverged := false
	for i := 0; i < 2000; i++ {
		ea, eb, ec := a.Next(docA), b.Next(docB), c.Next(docC)
		if !reflect.DeepEqual(ea, eb) {
			t.Fatalf("action %d: same seed diverged: %+v vs %+v", i, ea, eb)
		}
		if !reflect.DeepEqual(ea, ec) {
			diverged = true
		}
		docA, docB, docC = applyEdit(docA, ea), applyEdit(docB, eb), applyEdit(docC, ec)
	}
	if !diverged {
		t.Error("different seeds produced identical streams")
	}
}

func TestMixValidate(t *testing.T) {
	bad := []Mix{
		{}, // zero value: runs are 0
		func() Mix { m := DefaultMix(); m.JumpProb = 1.5; return m }(),
		func() Mix { m := DefaultMix(); m.DeleteProb = -0.1; return m }(),
		func() Mix { m := DefaultMix(); m.PasteProb = 0.6; m.DeleteProb = 0.6; return m }(),
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid mix %+v", i, m)
		}
		if _, err := NewStream(m, 1, "t"); err == nil {
			t.Errorf("case %d: NewStream accepted invalid mix", i)
		}
	}
	if err := DefaultMix().Validate(); err != nil {
		t.Errorf("DefaultMix invalid: %v", err)
	}
}

// TestDocPicker checks the skew knob: uniform mode spreads picks evenly,
// Zipf mode concentrates them on the hottest doc, and both are
// deterministic under a fixed seed.
func TestDocPicker(t *testing.T) {
	docs := make([]string, 16)
	for i := range docs {
		docs[i] = string(rune('a' + i))
	}
	const picks = 40000

	count := func(p *DocPicker) map[string]int {
		c := make(map[string]int)
		for i := 0; i < picks; i++ {
			c[p.Pick()]++
		}
		return c
	}

	uni, err := NewDocPicker(docs, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	cu := count(uni)
	exp := picks / len(docs)
	for _, d := range docs {
		if cu[d] < exp/2 || cu[d] > exp*2 {
			t.Errorf("uniform: doc %q got %d picks, expected near %d", d, cu[d], exp)
		}
	}

	hot, err := NewDocPicker(docs, 1.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	ch := count(hot)
	// Zipf rank 0 is the first doc; with s=1.5 over 16 docs it should draw
	// well over double the uniform share.
	if ch[docs[0]] < exp*2 {
		t.Errorf("zipf: hottest doc got %d picks, expected > %d", ch[docs[0]], exp*2)
	}

	// Determinism: same seed, same sequence.
	p1, _ := NewDocPicker(docs, 1.5, 11)
	p2, _ := NewDocPicker(docs, 1.5, 11)
	for i := 0; i < 1000; i++ {
		if a, b := p1.Pick(), p2.Pick(); a != b {
			t.Fatalf("pick %d: %q != %q under same seed", i, a, b)
		}
	}

	if _, err := NewDocPicker(nil, 0, 1); err == nil {
		t.Error("empty docs accepted")
	}
	if _, err := NewDocPicker(docs, 0.5, 1); err == nil {
		t.Error("invalid skew 0.5 accepted")
	}
}

// Package trace provides the edit-history workloads of the paper's
// evaluation (Section 5). The paper replays co-operative edit sessions from
// existing repositories: Wikipedia page histories at paragraph granularity
// and SVN histories of LaTeX/C++/Java files at line granularity. Those
// repositories are not available offline, so this package supplies
// deterministic synthetic histories calibrated to the published workload
// statistics (Table 2 and the document captions of Table 1), plus a
// JSON-lines interchange format so real histories can be replayed through
// the same pipeline (see DESIGN.md, substitution 1).
//
// A trace is an initial document plus a sequence of revisions; each
// revision is an index-based edit script (internal/diff ops). Replaying a
// trace through a Treedoc replica reproduces the paper's measurement
// pipeline: modifications appear as delete+insert, Wikipedia histories
// include vandalism episodes ("large portions of text are repeatedly
// defaced, then restored"), and edits cluster in hot regions so the flatten
// heuristics have cold subtrees to find.
//
// Two generators share the calibrated behaviour:
//
//   - Generate (generate.go) produces whole replayable histories — a Trace
//     of revisions — from a Profile. This is the paper-evaluation path:
//     profiles for each published workload live in Profiles.
//   - Stream (mix.go) emits one live editor action at a time from a Mix of
//     behavioural knobs (typing-burst length, cursor-jump probability,
//     paste-storm frequency/size, delete share, atom size). This is the
//     open-loop load path used by cmd/treedoc-load, where thousands of
//     concurrent clients each own a Stream. DocPicker assigns those
//     clients to documents, either uniformly or Zipf-skewed toward hot
//     documents.
//
// Both are deterministic under a fixed seed, so a load run or an
// evaluation figure is reproducible from its flag line alone.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"github.com/treedoc/treedoc/internal/diff"
)

// Granularity is the atom unit of a document (Section 5: lines for source
// files, paragraphs for Wikipedia).
type Granularity string

const (
	// Lines splits documents into text lines (typically under 80 chars).
	Lines Granularity = "line"
	// Paragraphs uses whole paragraphs as atoms.
	Paragraphs Granularity = "paragraph"
	// Characters uses single characters (the paper's illustrative unit).
	Characters Granularity = "char"
)

// Revision is one edit session: a sequential edit script.
type Revision struct {
	Ops []diff.Op `json:"ops"`
}

// Trace is a replayable edit history.
type Trace struct {
	Name        string      `json:"name"`
	Granularity Granularity `json:"granularity"`
	Initial     []string    `json:"initial"`
	Revisions   []Revision  `json:"revisions"`

	// summary memoises Summarize: traces are immutable once built, and the
	// replay harness summarises the same trace once per replica flavour —
	// without the memo the summary replay dwarfs the replica being measured
	// in the benchmark profiles.
	summary     Summary
	summaryErr  error
	summaryDone bool
}

// Summary are the workload statistics reported in Table 2.
type Summary struct {
	Name         string
	Revisions    int
	InitialAtoms int
	FinalAtoms   int
	FinalBytes   int
	Inserts      int
	Deletes      int
}

// Summarize replays the trace against a plain buffer and reports its
// statistics. The result is computed once and memoised; callers must not
// mutate the trace after the first call (loaded and generated traces never
// are). Not safe for concurrent first use.
func (t *Trace) Summarize() (Summary, error) {
	if t.summaryDone {
		return t.summary, t.summaryErr
	}
	t.summary, t.summaryErr = t.summarize()
	t.summaryDone = true
	return t.summary, t.summaryErr
}

func (t *Trace) summarize() (Summary, error) {
	s := Summary{Name: t.Name, Revisions: len(t.Revisions), InitialAtoms: len(t.Initial)}
	doc := append([]string(nil), t.Initial...)
	for i, rev := range t.Revisions {
		var err error
		doc, err = diff.Apply(doc, rev.Ops)
		if err != nil {
			return Summary{}, fmt.Errorf("trace %s: revision %d: %w", t.Name, i, err)
		}
		for _, op := range rev.Ops {
			if op.Kind == diff.Insert {
				s.Inserts++
			} else {
				s.Deletes++
			}
		}
	}
	s.FinalAtoms = len(doc)
	for _, a := range doc {
		s.FinalBytes += len(a)
	}
	return s, nil
}

// Final replays the trace and returns the final document.
func (t *Trace) Final() ([]string, error) {
	doc := append([]string(nil), t.Initial...)
	for i, rev := range t.Revisions {
		var err error
		doc, err = diff.Apply(doc, rev.Ops)
		if err != nil {
			return nil, fmt.Errorf("trace %s: revision %d: %w", t.Name, i, err)
		}
	}
	return doc, nil
}

// FromVersions builds a trace from successive full-text revisions by
// diffing consecutive versions — the paper's exact pipeline for repository
// histories.
func FromVersions(name string, g Granularity, versions [][]string) (*Trace, error) {
	if len(versions) == 0 {
		return nil, fmt.Errorf("trace: no versions")
	}
	t := &Trace{Name: name, Granularity: g, Initial: append([]string(nil), versions[0]...)}
	prev := versions[0]
	for _, v := range versions[1:] {
		t.Revisions = append(t.Revisions, Revision{Ops: diff.Atoms(prev, v)})
		prev = v
	}
	return t, nil
}

// header is the first JSON line of the interchange format.
type header struct {
	Name        string      `json:"name"`
	Granularity Granularity `json:"granularity"`
	Initial     []string    `json:"initial"`
	Revisions   int         `json:"revisions"`
}

// Write serialises the trace in JSON-lines format: a header object followed
// by one revision object per line.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Name: t.Name, Granularity: t.Granularity, Initial: t.Initial, Revisions: len(t.Revisions)}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i := range t.Revisions {
		if err := enc.Encode(t.Revisions[i]); err != nil {
			return fmt.Errorf("trace: write revision %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines trace.
func Read(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	t := &Trace{Name: h.Name, Granularity: h.Granularity, Initial: h.Initial}
	t.Revisions = make([]Revision, 0, h.Revisions)
	for i := 0; i < h.Revisions; i++ {
		var rev Revision
		if err := dec.Decode(&rev); err != nil {
			return nil, fmt.Errorf("trace: read revision %d: %w", i, err)
		}
		t.Revisions = append(t.Revisions, rev)
	}
	return t, nil
}

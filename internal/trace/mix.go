package trace

import (
	"fmt"
	"math/rand"
)

// This file is the open-loop counterpart of the revision-based generator:
// where Generate replays whole edit sessions (the paper's repository
// histories), a Stream emits one editor action at a time, shaped like live
// typing, for cmd/treedoc-load's concurrent client fleet. Each action is a
// splice against the client's current view; the knobs (Mix) control the
// behavioural mix — typist bursts at a local cursor, long-range cursor
// jumps, paste storms, deletions — and DocPicker controls how a fleet of
// clients skews across documents (uniform vs hot-doc Zipf).

// Edit is one editor action against a document of atoms: at atom index
// Pos, delete Del atoms, then insert the Ins atoms. It is the streaming
// sibling of a diff edit script entry, shaped for Doc.InsertAt/DeleteAt.
type Edit struct {
	Pos int
	Del int
	Ins []string
}

// Mix parameterises a Stream's behavioural blend. The zero value is not
// useful; start from DefaultMix and override.
type Mix struct {
	// TypistRun is the mean length of a typing burst: consecutive
	// single-atom inserts at an advancing cursor before the next
	// behavioural decision.
	TypistRun int
	// JumpProb is the probability, per action, that the cursor abandons
	// its locality and jumps to a uniformly random position (a click or a
	// search). Between jumps the cursor wanders only a few atoms per
	// action — the paper's hot-region clustering.
	JumpProb float64
	// PasteProb is the probability that an insert action is a paste storm
	// of PasteLen atoms instead of a single-atom keystroke.
	PasteProb float64
	// PasteLen is the mean paste length in atoms.
	PasteLen int
	// DeleteProb is the probability that an action deletes (backspace or
	// a selected-range delete of up to DeleteRun atoms) instead of
	// inserting.
	DeleteProb float64
	// DeleteRun is the maximum atoms removed by one delete action.
	DeleteRun int
	// AtomBytes is the mean inserted atom length in bytes (before the
	// harness's latency stamp prefix).
	AtomBytes int
}

// DefaultMix is a balanced interactive-editing blend: mostly typing
// bursts with local cursor motion, an occasional jump, 2% paste storms
// and a realistic delete share.
func DefaultMix() Mix {
	return Mix{
		TypistRun:  8,
		JumpProb:   0.05,
		PasteProb:  0.02,
		PasteLen:   24,
		DeleteProb: 0.15,
		DeleteRun:  4,
		AtomBytes:  24,
	}
}

// Validate reports a Mix whose knobs are out of range.
func (m Mix) Validate() error {
	if m.TypistRun < 1 || m.PasteLen < 1 || m.DeleteRun < 1 || m.AtomBytes < 1 {
		return fmt.Errorf("trace: mix runs and sizes must be >= 1: %+v", m)
	}
	for _, p := range []float64{m.JumpProb, m.PasteProb, m.DeleteProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("trace: mix probabilities must be in [0,1]: %+v", m)
		}
	}
	if m.PasteProb+m.DeleteProb > 1 {
		return fmt.Errorf("trace: PasteProb+DeleteProb must leave room for typing: %+v", m)
	}
	return nil
}

// Stream generates an infinite sequence of edits for one client. Streams
// are deterministic: the same (Mix, seed) pair replays the same actions
// against the same document-length observations. Not safe for concurrent
// use — each client owns its stream.
type Stream struct {
	mix    Mix
	rng    *rand.Rand
	cursor int
	burst  int // remaining actions in the current typing burst
	next   int // atom content counter
	tag    string
}

// NewStream creates a deterministic edit stream. The tag namespaces the
// generated atom content so two clients' inserts are distinguishable in a
// converged document.
func NewStream(m Mix, seed int64, tag string) (*Stream, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Stream{mix: m, rng: rand.New(rand.NewSource(seed)), tag: tag}, nil
}

// atom synthesizes one atom of roughly AtomBytes bytes.
func (s *Stream) atom() string {
	s.next++
	a := fmt.Sprintf("%s-%07d", s.tag, s.next)
	want := s.mix.AtomBytes/2 + s.rng.Intn(s.mix.AtomBytes)
	for len(a) < want {
		a += "abcdefgh"[:min(8, want-len(a))]
	}
	return a
}

// place clamps and wanders the cursor for the next action against a
// document currently docLen atoms long.
func (s *Stream) place(docLen int) {
	if docLen <= 0 {
		s.cursor = 0
		return
	}
	if s.cursor > docLen {
		s.cursor = docLen
	}
	if s.rng.Float64() < s.mix.JumpProb {
		s.cursor = s.rng.Intn(docLen + 1)
		s.burst = 0
		return
	}
	// Local wander: stay within a few atoms of the current position.
	s.cursor += s.rng.Intn(5) - 2
	if s.cursor < 0 {
		s.cursor = 0
	}
	if s.cursor > docLen {
		s.cursor = docLen
	}
}

// Next produces the next action against a document of docLen atoms. The
// returned edit is always valid for that length: Pos+Del <= docLen.
func (s *Stream) Next(docLen int) Edit {
	s.place(docLen)
	r := s.rng.Float64()
	switch {
	case r < s.mix.DeleteProb && docLen > 0:
		del := 1 + s.rng.Intn(s.mix.DeleteRun)
		if s.cursor >= docLen {
			s.cursor = docLen - 1
		}
		if s.cursor+del > docLen {
			del = docLen - s.cursor
		}
		s.burst = 0
		return Edit{Pos: s.cursor, Del: del}
	case r < s.mix.DeleteProb+s.mix.PasteProb:
		n := 1 + s.mix.PasteLen/2 + s.rng.Intn(s.mix.PasteLen)
		ins := make([]string, n)
		for i := range ins {
			ins[i] = s.atom()
		}
		pos := s.cursor
		s.cursor += n
		s.burst = 0
		return Edit{Pos: pos, Ins: ins}
	default:
		// Typing burst: single-atom inserts at an advancing cursor. The
		// burst length decision is made when a burst starts; while one is
		// running the cursor does not wander (place still clamps it).
		if s.burst <= 0 {
			s.burst = 1 + s.rng.Intn(2*s.mix.TypistRun)
		}
		s.burst--
		pos := s.cursor
		s.cursor++
		return Edit{Pos: pos, Ins: []string{s.atom()}}
	}
}

// DocPicker assigns a fleet of clients to documents. With skew 0 the
// assignment is uniform; with skew s > 1 it is Zipf-distributed with
// exponent s, concentrating clients on a few hot documents — the shape
// that stresses one shard's fan-out while the rest idle. Picks are
// deterministic under a fixed seed. Not safe for concurrent use.
type DocPicker struct {
	docs []string
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewDocPicker builds a picker over docs. skew 0 means uniform; skew > 1
// is the Zipf exponent (1.1–2.0 are realistic hot-doc shapes).
func NewDocPicker(docs []string, skew float64, seed int64) (*DocPicker, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("trace: doc picker needs at least one document")
	}
	if skew != 0 && skew <= 1 {
		return nil, fmt.Errorf("trace: zipf skew must be 0 (uniform) or > 1, got %v", skew)
	}
	p := &DocPicker{docs: docs, rng: rand.New(rand.NewSource(seed))}
	if skew > 1 {
		p.zipf = rand.NewZipf(p.rng, skew, 1, uint64(len(docs)-1))
	}
	return p, nil
}

// Pick returns the next document assignment.
func (p *DocPicker) Pick() string {
	if p.zipf == nil {
		return p.docs[p.rng.Intn(len(p.docs))]
	}
	return p.docs[p.zipf.Uint64()]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package trace

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/treedoc/treedoc/internal/diff"
)

// Profile parameterises the synthetic history generator. The six stock
// profiles (Profiles) are calibrated to the documents of the paper's
// Tables 1 and 2.
type Profile struct {
	// Name labels the document (matches the paper's Table 1 rows).
	Name string
	// Granularity is the atom unit.
	Granularity Granularity
	// Seed makes generation deterministic.
	Seed int64
	// InitialAtoms and FinalAtoms are the document sizes bounding the
	// history (Table 2's "number of lines initial/final").
	InitialAtoms, FinalAtoms int
	// Revisions is the number of edit sessions (Table 2).
	Revisions int
	// AtomBytes is the mean atom length in bytes (lines ≈ 40, paragraphs
	// well over 100: "usually under 80 characters" for lines).
	AtomBytes int
	// EditsPerRevision is the mean number of edit actions per revision
	// beyond the net growth (an action is a modify, insert or delete).
	EditsPerRevision int
	// ModifyFraction is the share of actions that modify an existing atom
	// (delete + insert, Section 5: "modifying an atom is modeled as deleting
	// the original and inserting the modified atom"). The remainder splits
	// between pure inserts and pure deletes around the growth budget.
	ModifyFraction float64
	// HotSpots is the number of simultaneously active editing regions;
	// edits cluster near them and the spots drift, leaving the rest of the
	// document cold for the flatten heuristic.
	HotSpots int
	// RunLength is the mean length of consecutive insert runs (writing a
	// block of lines or a paragraph in one session). Source files see long
	// runs; wiki paragraphs shorter ones. Default 2.
	RunLength int
	// VandalismEvery, when positive, defaces the document every N revisions
	// (mass delete of a contiguous chunk) and restores it in the next
	// revision — the Wikipedia pathology called out in Section 5.
	VandalismEvery int
}

// Profiles are the six documents of the paper's evaluation, calibrated to
// the published statistics: name, type, atom counts, byte size, revisions
// (Table 1 captions and Table 2).
func Profiles() []Profile {
	return []Profile{
		{
			// "Distributed Computing (wiki, 171 paras, 19,686 bytes, 870
			// revisions)"; Table 2 most active: initial 9, final 171.
			Name: "Distributed Computing", Granularity: Paragraphs, Seed: 101,
			InitialAtoms: 9, FinalAtoms: 171, Revisions: 870, AtomBytes: 115,
			EditsPerRevision: 3, ModifyFraction: 0.70, HotSpots: 2, RunLength: 3,
			VandalismEvery: 60,
		},
		{
			// "IBM POWER (wiki, 184 paras, 24,651 bytes, 401 revisions)".
			Name: "IBM POWER", Granularity: Paragraphs, Seed: 102,
			InitialAtoms: 20, FinalAtoms: 184, Revisions: 401, AtomBytes: 134,
			EditsPerRevision: 3, ModifyFraction: 0.65, HotSpots: 2, RunLength: 3,
			VandalismEvery: 80,
		},
		{
			// "Grey Owl (wiki, 110 paras, 12,388 bytes, 242 revisions)".
			Name: "Grey Owl", Granularity: Paragraphs, Seed: 103,
			InitialAtoms: 15, FinalAtoms: 110, Revisions: 242, AtomBytes: 113,
			EditsPerRevision: 3, ModifyFraction: 0.65, HotSpots: 2, RunLength: 3,
			VandalismEvery: 70,
		},
		{
			// "acf.tex (latex, 332 lines, 14,048 bytes, 51 revisions)";
			// Table 2 least active: initial 99, final 332.
			Name: "acf.tex", Granularity: Lines, Seed: 104,
			InitialAtoms: 99, FinalAtoms: 332, Revisions: 51, AtomBytes: 42,
			EditsPerRevision: 10, ModifyFraction: 0.55, HotSpots: 2, RunLength: 14,
		},
		{
			// "algorithms.tex (latex, 396 lines, 15,186 bytes, 58 revisions)".
			Name: "algorithms.tex", Granularity: Lines, Seed: 105,
			InitialAtoms: 120, FinalAtoms: 396, Revisions: 58, AtomBytes: 38,
			EditsPerRevision: 10, ModifyFraction: 0.55, HotSpots: 2, RunLength: 14,
		},
		{
			// "propagation.tex (latex, 481 lines, 22,170 bytes, 68 revisions)".
			Name: "propagation.tex", Granularity: Lines, Seed: 106,
			InitialAtoms: 150, FinalAtoms: 481, Revisions: 68, AtomBytes: 46,
			EditsPerRevision: 10, ModifyFraction: 0.55, HotSpots: 2, RunLength: 14,
		},
	}
}

// ProfileByName returns the stock profile with the given name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown profile %q", name)
}

// LatexProfiles returns the three line-granularity documents (the paper's
// Tables 3 and 4 use "LaTeX documents").
func LatexProfiles() []Profile {
	all := Profiles()
	return all[3:]
}

// generator carries the evolving document and editing state.
type generator struct {
	p    Profile
	rng  *rand.Rand
	doc  []string
	hot  []float64 // hot spot centres as document fractions
	next int       // atom id counter for synthesized content
}

// Generate builds the synthetic history for a profile.
func Generate(p Profile) (*Trace, error) {
	if p.InitialAtoms < 0 || p.FinalAtoms < 1 || p.Revisions < 1 {
		return nil, fmt.Errorf("trace: invalid profile %+v", p)
	}
	if p.EditsPerRevision < 1 {
		p.EditsPerRevision = 3
	}
	if p.HotSpots < 1 {
		p.HotSpots = 1
	}
	if p.RunLength < 1 {
		p.RunLength = 2
	}
	if p.AtomBytes < 8 {
		p.AtomBytes = 8
	}
	g := &generator{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	for i := 0; i < p.InitialAtoms; i++ {
		g.doc = append(g.doc, g.atom())
	}
	t := &Trace{Name: p.Name, Granularity: p.Granularity, Initial: append([]string(nil), g.doc...)}
	for i := 0; i < p.HotSpots; i++ {
		g.hot = append(g.hot, g.rng.Float64())
	}

	// Self-correcting net growth: each revision budgets a share of the
	// remaining distance to FinalAtoms, so random insert/delete variance
	// cannot drift the history away from the published document sizes.
	carry := 0.0
	vandalised := []string(nil)
	vandalIdx := 0
	for rev := 1; rev <= p.Revisions; rev++ {
		var ops []diff.Op
		switch {
		case vandalised != nil:
			// Restore last revision's defacement (administrator revert).
			ops = g.restore(vandalIdx, vandalised)
			vandalised = nil
		case p.VandalismEvery > 0 && rev%p.VandalismEvery == 0 && len(g.doc) > 8:
			ops, vandalIdx, vandalised = g.vandalise()
		default:
			remaining := p.Revisions - rev + 1
			carry += float64(p.FinalAtoms-len(g.doc)) / float64(remaining)
			net := int(carry)
			carry -= float64(net)
			ops = g.editSession(net)
		}
		var err error
		g.doc, err = diff.Apply(g.doc, ops)
		if err != nil {
			return nil, fmt.Errorf("trace: generator produced invalid ops: %w", err)
		}
		t.Revisions = append(t.Revisions, Revision{Ops: ops})
	}
	return t, nil
}

// atom synthesizes content of roughly AtomBytes bytes.
func (g *generator) atom() string {
	g.next++
	base := fmt.Sprintf("%s-%06d ", sanitize(g.p.Name), g.next)
	want := g.p.AtomBytes/2 + g.rng.Intn(g.p.AtomBytes)
	if len(base) >= want {
		return base[:want]
	}
	return base + strings.Repeat("x", want-len(base))
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '.' {
			return '_'
		}
		return r
	}, s)
}

// driftSpots moves the hot regions once per revision: editing stays in the
// same few places for a while (compounding identifier pressure in those
// gaps, and leaving the rest of the document cold), with occasional jumps
// to fresh sections.
func (g *generator) driftSpots() {
	for h := range g.hot {
		if g.rng.Intn(12) == 0 {
			g.hot[h] = g.rng.Float64()
			continue
		}
		g.hot[h] += (g.rng.Float64() - 0.5) * 0.04
		if g.hot[h] < 0 {
			g.hot[h] = 0
		}
		if g.hot[h] > 1 {
			g.hot[h] = 1
		}
	}
}

// spot picks an edit position near a hot region.
func (g *generator) spot() int {
	if len(g.doc) == 0 {
		return 0
	}
	h := g.rng.Intn(len(g.hot))
	center := int(g.hot[h] * float64(len(g.doc)))
	off := g.rng.Intn(7) - 3
	pos := center + off
	if pos < 0 {
		pos = 0
	}
	if pos >= len(g.doc) {
		pos = len(g.doc) - 1
	}
	return pos
}

// editSession produces one revision's ops: EditsPerRevision±half actions
// plus net growth.
func (g *generator) editSession(net int) []diff.Op {
	g.driftSpots()
	var ops []diff.Op
	cur := len(g.doc)
	apply := func(op diff.Op) {
		ops = append(ops, op)
		if op.Kind == diff.Insert {
			cur++
		} else {
			cur--
		}
	}
	actions := 1 + g.p.EditsPerRevision/2 + g.rng.Intn(g.p.EditsPerRevision)
	for a := 0; a < actions; a++ {
		pos := g.spot()
		if pos > cur {
			pos = cur
		}
		switch r := g.rng.Float64(); {
		case r < g.p.ModifyFraction && cur > 0:
			if pos >= cur {
				pos = cur - 1
			}
			apply(diff.Op{Kind: diff.Delete, Index: pos})
			apply(diff.Op{Kind: diff.Insert, Index: pos, Atom: g.atom()})
		case r < g.p.ModifyFraction+(1-g.p.ModifyFraction)/2 || cur == 0:
			apply(diff.Op{Kind: diff.Insert, Index: pos, Atom: g.atom()})
		default:
			if pos >= cur {
				pos = cur - 1
			}
			apply(diff.Op{Kind: diff.Delete, Index: pos})
		}
	}
	// Apply the net growth budget (inserts are consecutive: a paragraph or
	// block being written, which the batch strategy can pack).
	for net > 0 {
		pos := g.spot()
		if pos > cur {
			pos = cur
		}
		run := 1 + g.rng.Intn(2*g.p.RunLength)
		if run > net {
			run = net
		}
		for i := 0; i < run; i++ {
			apply(diff.Op{Kind: diff.Insert, Index: pos + i, Atom: g.atom()})
		}
		net -= run
	}
	for net < 0 && cur > 0 {
		pos := g.spot()
		if pos >= cur {
			pos = cur - 1
		}
		apply(diff.Op{Kind: diff.Delete, Index: pos})
		net++
	}
	return ops
}

// vandalise deletes a contiguous chunk (Section 5: "large portions of text
// are repeatedly defaced"). It returns the ops, the start index, and the
// removed atoms for the follow-up restore.
func (g *generator) vandalise() (ops []diff.Op, start int, removed []string) {
	n := len(g.doc)
	chunk := n / 3
	if chunk < 4 {
		chunk = 4
	}
	if chunk > n {
		chunk = n
	}
	start = 0
	if n > chunk {
		start = g.rng.Intn(n - chunk)
	}
	removed = append(removed, g.doc[start:start+chunk]...)
	for i := 0; i < chunk; i++ {
		ops = append(ops, diff.Op{Kind: diff.Delete, Index: start})
	}
	return ops, start, removed
}

// restore re-inserts a defaced chunk (the administrator's revert; the text
// returns but — as in the paper — with fresh identifiers).
func (g *generator) restore(start int, removed []string) []diff.Op {
	if start > len(g.doc) {
		start = len(g.doc)
	}
	ops := make([]diff.Op, 0, len(removed))
	for i, atom := range removed {
		ops = append(ops, diff.Op{Kind: diff.Insert, Index: start + i, Atom: atom})
	}
	return ops
}

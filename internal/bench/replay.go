// Package bench regenerates every table and figure of the Treedoc paper's
// evaluation (Section 5). Each experiment replays the calibrated edit
// histories of internal/trace through replicas of Treedoc (and the Logoot
// and WOOT baselines), measuring identifier, node, memory, disk and network
// overheads exactly as Section 5 defines them. The per-experiment index
// lives in DESIGN.md; EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"fmt"
	"time"

	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/diff"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/logoot"
	"github.com/treedoc/treedoc/internal/storage"
	"github.com/treedoc/treedoc/internal/trace"
	"github.com/treedoc/treedoc/internal/woot"
)

// ReplayConfig selects the Treedoc variant for a replay, mirroring the
// paper's evaluation dimensions: disambiguator scheme, balancing, batching
// of consecutive inserts, and the flatten heuristic interval.
type ReplayConfig struct {
	// Mode is SDIS or UDIS (default SDIS).
	Mode ident.Mode
	// Balanced selects the balancing strategy of Section 4.1; false is the
	// naive Algorithm 1.
	Balanced bool
	// Batch groups each revision's consecutive inserts into a minimal
	// subtree (the Section 5.1 balancing variant).
	Batch bool
	// FlattenInterval flattens a cold subtree every N revisions; 0 disables
	// ("no", "1", "2", "8" in Table 1).
	FlattenInterval int
	// Series records per-revision node counts (Figure 6).
	Series bool
	// SkipDisk leaves Result.Disk zero instead of running the on-disk
	// encoder over the final tree. The CPU-replay comparisons set it: the
	// Logoot and WOOT baselines have no disk format, so a fair wall-time
	// comparison must not charge Treedoc for serialising one (Table 1's
	// disk experiment measures it separately).
	SkipDisk bool
}

func (rc ReplayConfig) name() string {
	s := "sdis"
	if rc.Mode == ident.UDIS {
		s = "udis"
	}
	if rc.Balanced {
		s += "+bal"
	}
	if rc.Batch {
		s += "+batch"
	}
	if rc.FlattenInterval > 0 {
		s += fmt.Sprintf("+flatten%d", rc.FlattenInterval)
	}
	return s
}

// SeriesPoint is one Figure 6 sample.
type SeriesPoint struct {
	Revision int
	Nodes    int
	NonTomb  int
}

// Result is the outcome of one replay.
type Result struct {
	Trace    trace.Summary
	Config   string
	Stats    core.Stats
	Disk     storage.Measurement
	Duration time.Duration
	Series   []SeriesPoint
}

// ReplayTreedoc replays a trace through a single Treedoc replica, applying
// each revision as an edit session followed by the flatten heuristic, which
// is exactly the paper's measurement pipeline ("execute an equivalent
// sequence of insert and delete operations", Section 5).
func ReplayTreedoc(tr *trace.Trace, rc ReplayConfig) (*Result, error) {
	mode := rc.Mode
	if mode == 0 {
		mode = ident.SDIS
	}
	var strat core.Strategy = core.Naive{}
	if rc.Balanced {
		strat = core.Balanced{}
	}
	cfg := core.Config{
		Site:     1,
		Mode:     mode,
		Strategy: strat,
		Flatten:  core.FlattenPolicy{Interval: rc.FlattenInterval, ColdRevisions: 1, MinNodes: 2},
	}
	doc, err := core.NewDocument(cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: new document: %w", err)
	}
	start := time.Now()
	if len(tr.Initial) > 0 {
		if _, err := doc.InsertRunAt(0, tr.Initial); err != nil {
			return nil, fmt.Errorf("bench: initial content: %w", err)
		}
	}
	res := &Result{Config: rc.name()}
	for ri, rev := range tr.Revisions {
		if err := applyRevision(doc, rev.Ops, rc.Batch); err != nil {
			return nil, fmt.Errorf("bench: %s revision %d: %w", tr.Name, ri, err)
		}
		doc.EndRevision()
		if rc.Series {
			s := doc.Stats()
			res.Series = append(res.Series, SeriesPoint{
				Revision: ri + 1,
				Nodes:    s.Tree.Nodes,
				NonTomb:  s.Tree.Nodes - s.Tree.DeadMinis,
			})
		}
	}
	res.Duration = time.Since(start)
	res.Stats = doc.Stats()
	if !rc.SkipDisk {
		res.Disk = storage.Measure(doc.Tree())
	}
	sum, err := tr.Summarize()
	if err != nil {
		return nil, fmt.Errorf("bench: summarize %s: %w", tr.Name, err)
	}
	res.Trace = sum
	return res, nil
}

// applyRevision executes one revision's index-based script. With batching,
// maximal runs of consecutive inserts go through InsertRunAt so the
// strategy can pack them into a minimal subtree.
func applyRevision(doc *core.Document, ops []diff.Op, batch bool) error {
	for i := 0; i < len(ops); i++ {
		op := ops[i]
		if op.Kind == diff.Delete {
			if _, err := doc.DeleteAt(op.Index); err != nil {
				return err
			}
			continue
		}
		if !batch {
			if _, err := doc.InsertAt(op.Index, op.Atom); err != nil {
				return err
			}
			continue
		}
		// Collect the maximal consecutive insert run starting here.
		atoms := []string{op.Atom}
		j := i + 1
		for j < len(ops) && ops[j].Kind == diff.Insert && ops[j].Index == op.Index+len(atoms) {
			atoms = append(atoms, ops[j].Atom)
			j++
		}
		if len(atoms) == 1 {
			if _, err := doc.InsertAt(op.Index, op.Atom); err != nil {
				return err
			}
			continue
		}
		if _, err := doc.InsertRunAt(op.Index, atoms); err != nil {
			return err
		}
		i = j - 1
	}
	return nil
}

// LogootResult is the Logoot baseline outcome.
type LogootResult struct {
	Trace    trace.Summary
	Stats    logoot.Stats
	Duration time.Duration
}

// ReplayLogoot replays a trace through a Logoot replica under the paper's
// Table 5 setup (10-byte unique identifiers, immediate delete, no flatten).
func ReplayLogoot(tr *trace.Trace) (*LogootResult, error) {
	doc, err := logoot.New(logoot.Config{Site: 1})
	if err != nil {
		return nil, fmt.Errorf("bench: logoot: %w", err)
	}
	start := time.Now()
	for i, atom := range tr.Initial {
		if _, err := doc.InsertAt(i, atom); err != nil {
			return nil, fmt.Errorf("bench: logoot %s initial: %w", tr.Name, err)
		}
	}
	for ri, rev := range tr.Revisions {
		for _, op := range rev.Ops {
			if op.Kind == diff.Insert {
				if _, err := doc.InsertAt(op.Index, op.Atom); err != nil {
					return nil, fmt.Errorf("bench: logoot %s revision %d: %w", tr.Name, ri, err)
				}
			} else {
				if _, err := doc.DeleteAt(op.Index); err != nil {
					return nil, fmt.Errorf("bench: logoot %s revision %d: %w", tr.Name, ri, err)
				}
			}
		}
	}
	sum, err := tr.Summarize()
	if err != nil {
		return nil, fmt.Errorf("bench: summarize %s: %w", tr.Name, err)
	}
	return &LogootResult{Trace: sum, Stats: doc.Stats(), Duration: time.Since(start)}, nil
}

// WootResult is the WOOT baseline outcome.
type WootResult struct {
	Trace    trace.Summary
	Stats    woot.Stats
	Duration time.Duration
}

// ReplayWoot replays a trace through a WOOT replica (extended comparison:
// permanent tombstones, three identifiers per character).
func ReplayWoot(tr *trace.Trace) (*WootResult, error) {
	doc, err := woot.New(1)
	if err != nil {
		return nil, fmt.Errorf("bench: woot: %w", err)
	}
	start := time.Now()
	for i, atom := range tr.Initial {
		if _, err := doc.InsertAt(i, atom); err != nil {
			return nil, fmt.Errorf("bench: woot %s initial: %w", tr.Name, err)
		}
	}
	for ri, rev := range tr.Revisions {
		for _, op := range rev.Ops {
			if op.Kind == diff.Insert {
				if _, err := doc.InsertAt(op.Index, op.Atom); err != nil {
					return nil, fmt.Errorf("bench: woot %s revision %d: %w", tr.Name, ri, err)
				}
			} else {
				if _, err := doc.DeleteAt(op.Index); err != nil {
					return nil, fmt.Errorf("bench: woot %s revision %d: %w", tr.Name, ri, err)
				}
			}
		}
	}
	sum, err := tr.Summarize()
	if err != nil {
		return nil, fmt.Errorf("bench: summarize %s: %w", tr.Name, err)
	}
	return &WootResult{Trace: sum, Stats: doc.Stats(), Duration: time.Since(start)}, nil
}

package bench

import (
	"bytes"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: github.com/treedoc/treedoc
cpu: Fake CPU @ 3.00GHz
BenchmarkLocalEdits/append-delete-8         	       1	      1200 ns/op
BenchmarkLocalEdits/append-delete-8         	       1	      1000 ns/op
BenchmarkLocalEdits/append-delete-8         	       1	      1400 ns/op
BenchmarkStorageCodec/encode-8              	       1	      5000 ns/op	    2048 B/op	      12 allocs/op
BenchmarkStorageCodec/encode-8              	       1	      7000 ns/op	    2048 B/op	      12 allocs/op
PASS
ok  	github.com/treedoc/treedoc	1.234s
`

func TestParseBenchOutput(t *testing.T) {
	samples, err := ParseBenchSamples(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(samples["BenchmarkLocalEdits/append-delete-8"].Ns); got != 3 {
		t.Fatalf("append-delete samples = %d, want 3", got)
	}
	if got := len(samples["BenchmarkStorageCodec/encode-8"].Ns); got != 2 {
		t.Fatalf("encode samples = %d, want 2", got)
	}
	med := ReduceNs(samples, Median)
	if med["BenchmarkLocalEdits/append-delete-8"] != 1200 {
		t.Fatalf("median = %v, want 1200", med["BenchmarkLocalEdits/append-delete-8"])
	}
	if med["BenchmarkStorageCodec/encode-8"] != 6000 {
		t.Fatalf("even-count median = %v, want 6000", med["BenchmarkStorageCodec/encode-8"])
	}
}

func TestMins(t *testing.T) {
	m := ReduceNs(map[string]*Samples{"a": {Ns: []float64{3, 1, 2}}, "b": {Ns: []float64{5}}}, Min)
	if m["a"] != 1 || m["b"] != 5 {
		t.Fatalf("mins = %v", m)
	}
}

func TestMedianOddEven(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
}

func TestCompare(t *testing.T) {
	base := &Baseline{
		Version: 1,
		Results: map[string]float64{
			"BenchA":    1000,
			"BenchB":    1000,
			"BenchC":    1000,
			"BenchGone": 1000,
		},
	}
	current := map[string]float64{
		"BenchA":   1500, // 50% slower: regression at 20% threshold
		"BenchB":   1100, // 10% slower: within band
		"BenchC":   500,  // 50% faster: improvement
		"BenchNew": 42,   // not in baseline
	}
	c := Compare(base, current, 0.20)
	if len(c.Regressions) != 1 || c.Regressions[0].Name != "BenchA" {
		t.Fatalf("regressions = %+v", c.Regressions)
	}
	if r := c.Regressions[0].Ratio; r < 1.49 || r > 1.51 {
		t.Fatalf("regression ratio = %v", r)
	}
	if len(c.Within) != 1 || c.Within[0].Name != "BenchB" {
		t.Fatalf("within = %+v", c.Within)
	}
	if len(c.Improvements) != 1 || c.Improvements[0].Name != "BenchC" {
		t.Fatalf("improvements = %+v", c.Improvements)
	}
	if len(c.MissingFromRun) != 1 || c.MissingFromRun[0] != "BenchGone" {
		t.Fatalf("missing from run = %v", c.MissingFromRun)
	}
	if len(c.MissingFromBase) != 1 || c.MissingFromBase[0] != "BenchNew" {
		t.Fatalf("missing from base = %v", c.MissingFromBase)
	}
}

func TestParseBenchSamplesMem(t *testing.T) {
	samples, err := ParseBenchSamples(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	enc := samples["BenchmarkStorageCodec/encode-8"]
	if enc == nil || len(enc.Bytes) != 2 || len(enc.Allocs) != 2 {
		t.Fatalf("encode mem samples: %+v", enc)
	}
	if enc.Bytes[0] != 2048 || enc.Allocs[0] != 12 {
		t.Fatalf("encode mem values: %+v", enc)
	}
	// The ns-only benchmark has no mem samples.
	if ad := samples["BenchmarkLocalEdits/append-delete-8"]; len(ad.Bytes) != 0 {
		t.Fatalf("append-delete grew mem samples: %+v", ad)
	}
	mem := ReduceMem(samples, Min)
	if p := mem["BenchmarkStorageCodec/encode-8"]; p.BytesOp != 2048 || p.AllocsOp != 12 {
		t.Fatalf("reduced mem: %+v", p)
	}
	if _, ok := mem["BenchmarkLocalEdits/append-delete-8"]; ok {
		t.Fatal("ns-only benchmark reduced to a mem point")
	}
}

func TestCompareMem(t *testing.T) {
	base := &Baseline{
		Version: 1,
		Results: map[string]float64{"A": 1, "B": 1, "C": 1, "D": 1, "E": 1},
		Mem: map[string]MemPoint{
			"A": {BytesOp: 1000, AllocsOp: 10},
			"B": {BytesOp: 1000, AllocsOp: 10},
			"C": {BytesOp: 48, AllocsOp: 1},
			"D": {BytesOp: 4096, AllocsOp: 100},
			"E": {BytesOp: 1000, AllocsOp: 10},
		},
	}
	current := map[string]MemPoint{
		"A": {BytesOp: 2000, AllocsOp: 10}, // bytes doubled: regression
		"B": {BytesOp: 1000, AllocsOp: 30}, // allocs tripled: regression
		"C": {BytesOp: 90, AllocsOp: 2},    // 88% bigger but inside absolute slack: no flap
		"D": {BytesOp: 1024, AllocsOp: 20}, // shrank: improvement
		// E missing: run without -benchmem
	}
	c := CompareMem(base, current, 0.20)
	if len(c.Regressions) != 2 {
		t.Fatalf("regressions = %+v", c.Regressions)
	}
	names := map[string]string{}
	for _, d := range c.Regressions {
		names[d.Name] = d.Metric
	}
	if names["A"] != "B/op" || names["B"] != "allocs/op" {
		t.Fatalf("regression metrics = %v", names)
	}
	if len(c.MissingFromRun) != 1 || c.MissingFromRun[0] != "E" {
		t.Fatalf("missing = %v", c.MissingFromRun)
	}
	if len(c.Improvements) != 2 {
		t.Fatalf("improvements = %+v", c.Improvements)
	}
}

func TestBaselineMemRoundTrip(t *testing.T) {
	b := &Baseline{
		Version: 1,
		Results: map[string]float64{"A": 1},
		Mem:     map[string]MemPoint{"A": {BytesOp: 64, AllocsOp: 3}},
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mem["A"].BytesOp != 64 || got.Mem["A"].AllocsOp != 3 {
		t.Fatalf("mem round trip: %+v", got.Mem)
	}
	// A pre-mem baseline still loads (the field is optional).
	old, err := ReadBaseline(strings.NewReader(`{"version":1,"results":{"A":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Mem) != 0 {
		t.Fatalf("legacy baseline grew mem: %+v", old.Mem)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := &Baseline{
		Version:   1,
		Benchtime: "1x",
		Count:     6,
		Results:   map[string]float64{"BenchA": 123.5},
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Results["BenchA"] != 123.5 || got.Count != 6 {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := ReadBaseline(strings.NewReader(`{"version":2,"results":{"a":1}}`)); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := ReadBaseline(strings.NewReader(`{"version":1,"results":{}}`)); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

package bench

import (
	"bytes"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: github.com/treedoc/treedoc
cpu: Fake CPU @ 3.00GHz
BenchmarkLocalEdits/append-delete-8         	       1	      1200 ns/op
BenchmarkLocalEdits/append-delete-8         	       1	      1000 ns/op
BenchmarkLocalEdits/append-delete-8         	       1	      1400 ns/op
BenchmarkStorageCodec/encode-8              	       1	      5000 ns/op	    2048 B/op	      12 allocs/op
BenchmarkStorageCodec/encode-8              	       1	      7000 ns/op	    2048 B/op	      12 allocs/op
PASS
ok  	github.com/treedoc/treedoc	1.234s
`

func TestParseBenchOutput(t *testing.T) {
	samples, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(samples["BenchmarkLocalEdits/append-delete-8"]); got != 3 {
		t.Fatalf("append-delete samples = %d, want 3", got)
	}
	if got := len(samples["BenchmarkStorageCodec/encode-8"]); got != 2 {
		t.Fatalf("encode samples = %d, want 2", got)
	}
	med := Medians(samples)
	if med["BenchmarkLocalEdits/append-delete-8"] != 1200 {
		t.Fatalf("median = %v, want 1200", med["BenchmarkLocalEdits/append-delete-8"])
	}
	if med["BenchmarkStorageCodec/encode-8"] != 6000 {
		t.Fatalf("even-count median = %v, want 6000", med["BenchmarkStorageCodec/encode-8"])
	}
}

func TestMins(t *testing.T) {
	m := Mins(map[string][]float64{"a": {3, 1, 2}, "b": {5}})
	if m["a"] != 1 || m["b"] != 5 {
		t.Fatalf("mins = %v", m)
	}
}

func TestMedianOddEven(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
}

func TestCompare(t *testing.T) {
	base := &Baseline{
		Version: 1,
		Results: map[string]float64{
			"BenchA":    1000,
			"BenchB":    1000,
			"BenchC":    1000,
			"BenchGone": 1000,
		},
	}
	current := map[string]float64{
		"BenchA":   1500, // 50% slower: regression at 20% threshold
		"BenchB":   1100, // 10% slower: within band
		"BenchC":   500,  // 50% faster: improvement
		"BenchNew": 42,   // not in baseline
	}
	c := Compare(base, current, 0.20)
	if len(c.Regressions) != 1 || c.Regressions[0].Name != "BenchA" {
		t.Fatalf("regressions = %+v", c.Regressions)
	}
	if r := c.Regressions[0].Ratio; r < 1.49 || r > 1.51 {
		t.Fatalf("regression ratio = %v", r)
	}
	if len(c.Within) != 1 || c.Within[0].Name != "BenchB" {
		t.Fatalf("within = %+v", c.Within)
	}
	if len(c.Improvements) != 1 || c.Improvements[0].Name != "BenchC" {
		t.Fatalf("improvements = %+v", c.Improvements)
	}
	if len(c.MissingFromRun) != 1 || c.MissingFromRun[0] != "BenchGone" {
		t.Fatalf("missing from run = %v", c.MissingFromRun)
	}
	if len(c.MissingFromBase) != 1 || c.MissingFromBase[0] != "BenchNew" {
		t.Fatalf("missing from base = %v", c.MissingFromBase)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := &Baseline{
		Version:   1,
		Benchtime: "1x",
		Count:     6,
		Results:   map[string]float64{"BenchA": 123.5},
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Results["BenchA"] != 123.5 || got.Count != 6 {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := ReadBaseline(strings.NewReader(`{"version":2,"results":{"a":1}}`)); err == nil {
		t.Fatal("unknown version accepted")
	}
	if _, err := ReadBaseline(strings.NewReader(`{"version":1,"results":{}}`)); err == nil {
		t.Fatal("empty baseline accepted")
	}
}

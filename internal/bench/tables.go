package bench

import (
	"fmt"
	"strings"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/trace"
)

// Table1Row is one (document, flatten setting) measurement of Table 1.
type Table1Row struct {
	Document   string
	Flatten    string // "no", "1", "2", "8"
	MaxIDBits  int
	AvgIDBits  float64
	Nodes      int
	NodeBytes  int
	MemOvhd    float64
	NonTombPct float64
	DiskOvhd   int
	DiskPct    float64
}

// Table1 regenerates Table 1 ("Measurements"): for every document and
// flatten setting, identifier sizes, node counts and memory, tombstone
// fraction, and on-disk overhead. Wiki documents use flatten intervals
// {no, 1, 2} and LaTeX documents {no, 2, 8}, matching the paper's rows.
// SDIS disambiguators, naive allocation (balancing is studied separately in
// Tables 3–4).
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, p := range trace.Profiles() {
		tr, err := trace.Generate(p)
		if err != nil {
			return nil, fmt.Errorf("bench: trace %s: %w", p.Name, err)
		}
		intervals := []int{0, 2, 8}
		if p.Granularity == trace.Paragraphs {
			intervals = []int{0, 1, 2}
		}
		for _, iv := range intervals {
			res, err := ReplayTreedoc(tr, ReplayConfig{Mode: ident.SDIS, FlattenInterval: iv})
			if err != nil {
				return nil, err
			}
			fl := "no"
			if iv > 0 {
				fl = fmt.Sprintf("%d", iv)
			}
			ts := res.Stats.Tree
			rows = append(rows, Table1Row{
				Document:   p.Name,
				Flatten:    fl,
				MaxIDBits:  ts.MaxIDBits,
				AvgIDBits:  ts.AvgIDBits(),
				Nodes:      ts.Nodes,
				NodeBytes:  ts.MemBytes,
				MemOvhd:    ts.MemOverheadRatio(),
				NonTombPct: 100 * ts.NonTombstoneFraction(),
				DiskOvhd:   res.Disk.OverheadBytes,
				DiskPct:    res.Disk.OverheadPercent(),
			})
		}
	}
	return rows, nil
}

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1. Measurements (SDIS, naive allocation)\n")
	fmt.Fprintf(&b, "%-22s %-7s %7s %8s %8s %10s %8s %9s %9s %7s\n",
		"Document", "Flatten", "PosID", "PosID", "Nodes", "Mem", "Mem", "non-Tomb", "Disk", "Disk")
	fmt.Fprintf(&b, "%-22s %-7s %7s %8s %8s %10s %8s %9s %9s %7s\n",
		"", "", "max(b)", "avg(b)", "number", "bytes", "ovhd", "%", "ovhd(B)", "% doc")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-7s %7d %8.2f %8d %10d %8.2f %9.2f %9d %7.2f\n",
			r.Document, r.Flatten, r.MaxIDBits, r.AvgIDBits, r.Nodes, r.NodeBytes,
			r.MemOvhd, r.NonTombPct, r.DiskOvhd, r.DiskPct)
	}
	return b.String()
}

// Table2Row summarises one workload class of Table 2.
type Table2Row struct {
	Class        string
	Revisions    int
	InitialLines int
	FinalLines   int
}

// Table2 regenerates Table 2 ("Summary of documents studied"): average,
// least active and most active workloads.
func Table2() ([]Table2Row, error) {
	var sums []trace.Summary
	for _, p := range trace.Profiles() {
		tr, err := trace.Generate(p)
		if err != nil {
			return nil, fmt.Errorf("bench: trace %s: %w", p.Name, err)
		}
		s, err := tr.Summarize()
		if err != nil {
			return nil, fmt.Errorf("bench: summarize %s: %w", p.Name, err)
		}
		sums = append(sums, s)
	}
	least, most := sums[0], sums[0]
	var avg Table2Row
	for _, s := range sums {
		avg.Revisions += s.Revisions
		avg.InitialLines += s.InitialAtoms
		avg.FinalLines += s.FinalAtoms
		if s.Revisions < least.Revisions {
			least = s
		}
		if s.Revisions > most.Revisions {
			most = s
		}
	}
	n := len(sums)
	return []Table2Row{
		{Class: "average", Revisions: avg.Revisions / n, InitialLines: avg.InitialLines / n, FinalLines: avg.FinalLines / n},
		{Class: "less active", Revisions: least.Revisions, InitialLines: least.InitialAtoms, FinalLines: least.FinalAtoms},
		{Class: "most active", Revisions: most.Revisions, InitialLines: most.InitialAtoms, FinalLines: most.FinalAtoms},
	}, nil
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2. Summary of documents studied\n")
	fmt.Fprintf(&b, "%-12s %10s %10s %10s\n", "", "revisions", "initial", "final")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10d %10d %10d\n", r.Class, r.Revisions, r.InitialLines, r.FinalLines)
	}
	return b.String()
}

// Table3Cell is one (flatten, balancing) tombstone fraction.
type Table3Cell struct {
	Flatten   string
	NoBalance float64 // percent
	Balance   float64 // percent
}

// Table3 regenerates Table 3 ("Fraction of tombstones, LaTeX documents"):
// tombstone percentage across the LaTeX workloads for flatten intervals
// {no, 8, 2}, with and without balancing (balanced strategy + grouped
// revision inserts). SDIS throughout, as in Section 5.1.
func Table3() ([]Table3Cell, error) {
	intervals := []struct {
		label string
		iv    int
	}{{"no-flatten", 0}, {"flatten-8", 8}, {"flatten-2", 2}}
	cells := make([]Table3Cell, 0, len(intervals))
	for _, in := range intervals {
		cell := Table3Cell{Flatten: in.label}
		for _, balanced := range []bool{false, true} {
			var dead, total int
			for _, p := range trace.LatexProfiles() {
				tr, err := trace.Generate(p)
				if err != nil {
					return nil, fmt.Errorf("bench: trace %s: %w", p.Name, err)
				}
				res, err := ReplayTreedoc(tr, ReplayConfig{
					Mode: ident.SDIS, Balanced: balanced, Batch: balanced, FlattenInterval: in.iv,
				})
				if err != nil {
					return nil, err
				}
				dead += res.Stats.Tree.DeadMinis
				total += res.Stats.Tree.Minis + res.Stats.Tree.FlatAtoms
			}
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(dead) / float64(total)
			}
			if balanced {
				cell.Balance = pct
			} else {
				cell.NoBalance = pct
			}
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// FormatTable3 renders Table 3.
func FormatTable3(cells []Table3Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3. Fraction of tombstones (LaTeX documents)\n")
	fmt.Fprintf(&b, "%-12s %14s %14s\n", "", "no balancing", "balancing")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-12s %13.1f%% %13.1f%%\n", c.Flatten, c.NoBalance, c.Balance)
	}
	return b.String()
}

// Table4Cell is one (flatten, balancing, scheme) overhead pair.
type Table4Cell struct {
	Flatten  string
	Balanced bool
	Scheme   ident.Mode
	// OverheadPerAtom is total identifier overhead (live + tombstone ids)
	// per live atom, in bits.
	OverheadPerAtom float64
	// AvgIDBits is the mean live identifier size in bits.
	AvgIDBits float64
}

// Table4 regenerates Table 4 ("SDIS vs. UDIS, LaTeX documents"): per-atom
// identifier overhead and average identifier size for every combination of
// flatten interval {no, 8, 2}, balancing, and disambiguator scheme.
func Table4() ([]Table4Cell, error) {
	intervals := []struct {
		label string
		iv    int
	}{{"no-flatten", 0}, {"flatten-8", 8}, {"flatten-2", 2}}
	var cells []Table4Cell
	for _, in := range intervals {
		for _, balanced := range []bool{false, true} {
			for _, mode := range []ident.Mode{ident.SDIS, ident.UDIS} {
				var ovhd, avg float64
				var docs int
				for _, p := range trace.LatexProfiles() {
					tr, err := trace.Generate(p)
					if err != nil {
						return nil, fmt.Errorf("bench: trace %s: %w", p.Name, err)
					}
					res, err := ReplayTreedoc(tr, ReplayConfig{
						Mode: mode, Balanced: balanced, Batch: balanced, FlattenInterval: in.iv,
					})
					if err != nil {
						return nil, err
					}
					ovhd += res.Stats.Tree.OverheadBitsPerAtom()
					avg += res.Stats.Tree.AvgIDBits()
					docs++
				}
				cells = append(cells, Table4Cell{
					Flatten:         in.label,
					Balanced:        balanced,
					Scheme:          mode,
					OverheadPerAtom: ovhd / float64(docs),
					AvgIDBits:       avg / float64(docs),
				})
			}
		}
	}
	return cells, nil
}

// FormatTable4 renders Table 4 in the paper's layout.
func FormatTable4(cells []Table4Cell) string {
	get := func(fl string, bal bool, mode ident.Mode) Table4Cell {
		for _, c := range cells {
			if c.Flatten == fl && c.Balanced == bal && c.Scheme == mode {
				return c
			}
		}
		return Table4Cell{}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4. SDIS vs. UDIS (LaTeX documents), bits\n")
	fmt.Fprintf(&b, "%-12s %-18s %10s %10s %10s %10s\n", "", "", "no-bal", "", "balancing", "")
	fmt.Fprintf(&b, "%-12s %-18s %10s %10s %10s %10s\n", "", "", "SDIS", "UDIS", "SDIS", "UDIS")
	for _, fl := range []string{"no-flatten", "flatten-8", "flatten-2"} {
		fmt.Fprintf(&b, "%-12s %-18s %10.0f %10.0f %10.0f %10.0f\n", fl, "overhead/atom",
			get(fl, false, ident.SDIS).OverheadPerAtom, get(fl, false, ident.UDIS).OverheadPerAtom,
			get(fl, true, ident.SDIS).OverheadPerAtom, get(fl, true, ident.UDIS).OverheadPerAtom)
		fmt.Fprintf(&b, "%-12s %-18s %10.0f %10.0f %10.0f %10.0f\n", "", "avg PosID size",
			get(fl, false, ident.SDIS).AvgIDBits, get(fl, false, ident.UDIS).AvgIDBits,
			get(fl, true, ident.SDIS).AvgIDBits, get(fl, true, ident.UDIS).AvgIDBits)
	}
	return b.String()
}

// Table5Row is one document's Logoot/Treedoc identifier-size ratio.
type Table5Row struct {
	Document    string
	TreedocBits int
	LogootBits  int
	Ratio       float64
}

// Table5 regenerates Table 5 ("Comparing Treedoc vs. Logoot: PosID sizes"):
// the total identifier size ratio per document, Treedoc under UDIS without
// flattening, Logoot with equal-size (10-byte) unique identifiers.
func Table5() ([]Table5Row, error) {
	var rows []Table5Row
	for _, p := range trace.Profiles() {
		tr, err := trace.Generate(p)
		if err != nil {
			return nil, fmt.Errorf("bench: trace %s: %w", p.Name, err)
		}
		td, err := ReplayTreedoc(tr, ReplayConfig{Mode: ident.UDIS})
		if err != nil {
			return nil, err
		}
		lg, err := ReplayLogoot(tr)
		if err != nil {
			return nil, err
		}
		row := Table5Row{
			Document:    p.Name,
			TreedocBits: td.Stats.Tree.TotalIDBits,
			LogootBits:  lg.Stats.TotalIDBits,
		}
		if row.TreedocBits > 0 {
			row.Ratio = float64(row.LogootBits) / float64(row.TreedocBits)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5. Comparing Treedoc vs. Logoot: PosID sizes\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %8s\n", "Document", "Treedoc(b)", "Logoot(b)", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %12d %12d %8.1f\n", r.Document, r.TreedocBits, r.LogootBits, r.Ratio)
	}
	return b.String()
}

// Figure6 regenerates Figure 6 ("Variation of number of nodes for
// acf.tex"): the total and non-tombstone node counts after every revision,
// with the flatten heuristic producing the drastic drops the paper shows.
func Figure6() ([]SeriesPoint, error) {
	p, err := trace.ProfileByName("acf.tex")
	if err != nil {
		return nil, fmt.Errorf("bench: profile acf.tex: %w", err)
	}
	tr, err := trace.Generate(p)
	if err != nil {
		return nil, fmt.Errorf("bench: trace %s: %w", p.Name, err)
	}
	res, err := ReplayTreedoc(tr, ReplayConfig{Mode: ident.SDIS, FlattenInterval: 8, Series: true})
	if err != nil {
		return nil, err
	}
	return res.Series, nil
}

// FormatFigure6 renders the two series as columns (revision, nodes,
// non-tombstone nodes), ready for plotting.
func FormatFigure6(series []SeriesPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6. Variation of number of nodes for acf.tex (flatten-8)\n")
	fmt.Fprintf(&b, "%10s %10s %12s\n", "revision", "nodes", "non-T nodes")
	for _, pt := range series {
		fmt.Fprintf(&b, "%10d %10d %12d\n", pt.Revision, pt.Nodes, pt.NonTomb)
	}
	return b.String()
}

package bench

// Benchmark baseline gate: a small, dependency-free benchstat
// equivalent. CI runs the hot-path benchmarks twice with
// `-cpu 1 -benchtime 100ms -count 6 -benchmem` (two pooled invocations,
// so a transient load spike cannot poison every sample), parses the
// standard `go test -bench` output, reduces each benchmark to its minimum
// ns/op — the least-noise estimate of true cost — plus its B/op and
// allocs/op, and compares all three against the checked-in
// BENCH_BASELINE.json, failing the build on a regression past the
// threshold (allocation metrics additionally get an absolute slack, so a
// relative threshold cannot flap on near-zero paths). `-cpu 1` keeps
// benchmark names free of the GOMAXPROCS "-N" suffix, so baselines
// compare across machines with different core counts. cmd/benchgate is
// the CLI wrapper and documents re-seeding; it can also append a run to
// the persisted history file that turns the single gate point into a
// per-merge trajectory.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MemPoint is one benchmark's allocation reference: bytes and allocations
// per operation (from `go test -bench -benchmem`).
type MemPoint struct {
	BytesOp  float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
}

// Baseline is the checked-in benchmark reference (BENCH_BASELINE.json):
// one reduced ns/op (and, when seeded with -benchmem, B/op + allocs/op)
// per benchmark, plus the run shape that produced it so a reviewer can
// reproduce.
type Baseline struct {
	Version   int    `json:"version"`
	Benchtime string `json:"benchtime"`
	Count     int    `json:"count"`
	// Stat is the reducing statistic the results were computed with
	// ("min" or "median"); compare runs with the same statistic.
	Stat string `json:"stat,omitempty"`
	// Note records where the baseline numbers came from; comparisons are
	// only meaningful on similar hardware, so CI re-seeds on its own
	// runner class when this drifts.
	Note    string             `json:"note,omitempty"`
	Results map[string]float64 `json:"results"`
	// Mem gates allocations alongside time. Absent in baselines seeded
	// before -benchmem was part of the gate; allocation regressions are
	// only checked for benchmarks present here.
	Mem map[string]MemPoint `json:"mem,omitempty"`
}

// Samples holds every parsed sample per metric for one benchmark. Bytes
// and Allocs are empty when the run was not executed with -benchmem.
type Samples struct {
	Ns     []float64
	Bytes  []float64
	Allocs []float64
}

// benchPrefix matches the start of one `go test -bench` result line (the
// name and the iteration count); the measurements after it are parsed as
// (value, unit) pairs, so extra columns like MB/s or custom
// b.ReportMetric units never misalign the -benchmem fields.
var benchPrefix = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// ParseBenchSamples extracts every ns/op (and, with -benchmem output,
// B/op and allocs/op) sample per benchmark name from `go test -bench`
// output, e.g.
//
//	BenchmarkStorageCodec   12   10156466 ns/op   3.18 MB/s   14146264 B/op   21250 allocs/op
//
// With -count N each benchmark contributes N samples.
func ParseBenchSamples(r io.Reader) (map[string]*Samples, error) {
	out := make(map[string]*Samples)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchPrefix.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		fields := strings.Fields(m[2])
		var ns, bytesOp, allocsOp float64
		var haveNs, haveMem bool
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // not a (value, unit) pair: custom suffix, stop
			}
			switch fields[i+1] {
			case "ns/op":
				ns, haveNs = v, true
			case "B/op":
				bytesOp = v
			case "allocs/op":
				allocsOp, haveMem = v, true
			}
		}
		if !haveNs {
			continue
		}
		s := out[m[1]]
		if s == nil {
			s = &Samples{}
			out[m[1]] = s
		}
		s.Ns = append(s.Ns, ns)
		if haveMem {
			s.Bytes = append(s.Bytes, bytesOp)
			s.Allocs = append(s.Allocs, allocsOp)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReduceMem reduces parsed samples to one MemPoint per benchmark that has
// allocation samples, using the given statistic over each metric.
func ReduceMem(samples map[string]*Samples, stat func([]float64) float64) map[string]MemPoint {
	out := make(map[string]MemPoint)
	for name, s := range samples {
		if len(s.Bytes) == 0 {
			continue
		}
		out[name] = MemPoint{BytesOp: stat(s.Bytes), AllocsOp: stat(s.Allocs)}
	}
	return out
}

// Min reduces a non-empty sample to its minimum.
func Min(xs []float64) float64 {
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Median returns the median of xs (the mean of the middle pair for even
// lengths); it panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("bench: median of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// ReduceNs reduces parsed samples to one ns/op value per benchmark with
// the given statistic (Min is the preferred gating statistic: the fastest
// of N runs is the best estimate of the code's cost with the least
// scheduler and cache noise on top; Median suits trajectories).
func ReduceNs(samples map[string]*Samples, stat func([]float64) float64) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for name, s := range samples {
		if len(s.Ns) > 0 {
			out[name] = stat(s.Ns)
		}
	}
	return out
}

// Delta is one benchmark's comparison against the baseline.
type Delta struct {
	Name    string
	Base    float64 // baseline median ns/op
	Current float64 // this run's median ns/op
	// Ratio is Current/Base: 1.25 reads "25% slower than baseline".
	Ratio float64
}

// Comparison is the gate's verdict.
type Comparison struct {
	// Regressions are benchmarks slower than baseline by more than the
	// threshold, worst first.
	Regressions []Delta
	// Improvements are benchmarks faster than baseline by more than the
	// threshold, best first (candidates for a baseline refresh).
	Improvements []Delta
	// Within are benchmarks inside the threshold band.
	Within []Delta
	// MissingFromRun are baseline benchmarks this run did not execute —
	// a renamed or deleted benchmark silently un-gates itself, so the
	// gate reports it.
	MissingFromRun []string
	// MissingFromBase are benchmarks this run executed that the baseline
	// does not know (new benchmarks; refresh the baseline to gate them).
	MissingFromBase []string
}

// Compare evaluates current medians against the baseline with a relative
// threshold (0.20 means: fail at >20% slower).
func Compare(base *Baseline, current map[string]float64, threshold float64) Comparison {
	var c Comparison
	for name, b := range base.Results {
		cur, ok := current[name]
		if !ok {
			c.MissingFromRun = append(c.MissingFromRun, name)
			continue
		}
		d := Delta{Name: name, Base: b, Current: cur}
		if b > 0 {
			d.Ratio = cur / b
		}
		switch {
		case d.Ratio > 1+threshold:
			c.Regressions = append(c.Regressions, d)
		case d.Ratio != 0 && d.Ratio < 1-threshold:
			c.Improvements = append(c.Improvements, d)
		default:
			c.Within = append(c.Within, d)
		}
	}
	for name := range current {
		if _, ok := base.Results[name]; !ok {
			c.MissingFromBase = append(c.MissingFromBase, name)
		}
	}
	sort.Slice(c.Regressions, func(i, j int) bool { return c.Regressions[i].Ratio > c.Regressions[j].Ratio })
	sort.Slice(c.Improvements, func(i, j int) bool { return c.Improvements[i].Ratio < c.Improvements[j].Ratio })
	sort.Slice(c.Within, func(i, j int) bool { return c.Within[i].Name < c.Within[j].Name })
	sort.Strings(c.MissingFromRun)
	sort.Strings(c.MissingFromBase)
	return c
}

// MemDelta is one allocation metric's comparison against the baseline.
type MemDelta struct {
	Name    string
	Metric  string // "B/op" or "allocs/op"
	Base    float64
	Current float64
	// Ratio is Current/Base.
	Ratio float64
}

// MemComparison is the allocation gate's verdict.
type MemComparison struct {
	// Regressions are metrics past the threshold (and past an absolute
	// slack, so one stray allocation on a zero-alloc path does not flap
	// the gate), worst first.
	Regressions []MemDelta
	// Improvements shrank past the threshold (refresh candidates).
	Improvements []MemDelta
	// MissingFromRun are baseline benchmarks without allocation samples in
	// this run — a gate run without -benchmem silently un-gates
	// allocations, so it is reported (and failed) like a missing
	// benchmark.
	MissingFromRun []string
}

// Absolute slack under which an allocation delta is never a regression:
// relative thresholds flap on tiny denominators (one pooled slice on a
// 48 B/op path is a 30% "regression" worth nothing).
const (
	memBytesSlack  = 64
	memAllocsSlack = 2
)

// CompareMem evaluates current allocation points against the baseline's
// Mem section with a relative threshold. Benchmarks absent from the
// baseline's Mem are not gated (re-seed to gate them).
func CompareMem(base *Baseline, current map[string]MemPoint, threshold float64) MemComparison {
	var c MemComparison
	classify := func(name, metric string, b, cur, slack float64) {
		if b == 0 && cur == 0 {
			return
		}
		d := MemDelta{Name: name, Metric: metric, Base: b, Current: cur}
		if b > 0 {
			d.Ratio = cur / b
		} else {
			d.Ratio = math.Inf(1) // allocations appeared on a zero-alloc path
		}
		switch {
		case cur > b*(1+threshold) && cur-b > slack:
			c.Regressions = append(c.Regressions, d)
		case cur < b*(1-threshold) && b-cur > slack:
			c.Improvements = append(c.Improvements, d)
		}
	}
	for name, b := range base.Mem {
		cur, ok := current[name]
		if !ok {
			c.MissingFromRun = append(c.MissingFromRun, name)
			continue
		}
		classify(name, "B/op", b.BytesOp, cur.BytesOp, memBytesSlack)
		classify(name, "allocs/op", b.AllocsOp, cur.AllocsOp, memAllocsSlack)
	}
	sort.Slice(c.Regressions, func(i, j int) bool { return c.Regressions[i].Ratio > c.Regressions[j].Ratio })
	sort.Slice(c.Improvements, func(i, j int) bool { return c.Improvements[i].Ratio < c.Improvements[j].Ratio })
	sort.Strings(c.MissingFromRun)
	return c
}

// HistoryEntry is one appended line of the benchmark trajectory file: the
// pooled, reduced numbers of one merge, so BENCH_BASELINE.json's single
// gate point grows into a curve across merges.
type HistoryEntry struct {
	// Note identifies the run (CI passes the commit SHA).
	Note string `json:"note"`
	// Stat is the reducing statistic ("min" or "median").
	Stat    string              `json:"stat"`
	Results map[string]float64  `json:"results"`
	Mem     map[string]MemPoint `json:"mem,omitempty"`
}

// AppendHistory writes one history entry as a JSON line.
func AppendHistory(w io.Writer, e *HistoryEntry) error {
	return json.NewEncoder(w).Encode(e)
}

// ReadBaseline loads a BENCH_BASELINE.json.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("bench: baseline: %w", err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("bench: baseline version %d unsupported", b.Version)
	}
	if len(b.Results) == 0 {
		return nil, fmt.Errorf("bench: baseline has no results")
	}
	return &b, nil
}

// WriteBaseline emits a BENCH_BASELINE.json, keys sorted for stable
// diffs.
func WriteBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

package bench

// Benchmark baseline gate: a small, dependency-free benchstat
// equivalent. CI runs the hot-path benchmarks twice with
// `-cpu 1 -benchtime 100ms -count 6` (two pooled invocations, so a
// transient load spike cannot poison every sample), parses the standard
// `go test -bench` output, reduces each benchmark to its minimum ns/op —
// the least-noise estimate of true cost — and compares against the
// checked-in BENCH_BASELINE.json, failing the build when a benchmark
// regresses past the threshold. `-cpu 1` keeps benchmark names free of
// the GOMAXPROCS "-N" suffix, so baselines compare across machines with
// different core counts. cmd/benchgate is the CLI wrapper and documents
// re-seeding.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the checked-in benchmark reference (BENCH_BASELINE.json):
// median ns/op per benchmark, plus the run shape that produced it so a
// reviewer can reproduce.
type Baseline struct {
	Version   int    `json:"version"`
	Benchtime string `json:"benchtime"`
	Count     int    `json:"count"`
	// Stat is the reducing statistic the results were computed with
	// ("min" or "median"); compare runs with the same statistic.
	Stat string `json:"stat,omitempty"`
	// Note records where the baseline numbers came from; comparisons are
	// only meaningful on similar hardware, so CI re-seeds on its own
	// runner class when this drifts.
	Note    string             `json:"note,omitempty"`
	Results map[string]float64 `json:"results"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkLocalEdits/append-delete-8   1   12345 ns/op   64 B/op ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?) ns/op`)

// ParseBenchOutput extracts every ns/op sample per benchmark name from
// `go test -bench` output. With -count N each benchmark contributes N
// samples.
func ParseBenchOutput(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bench: bad ns/op in %q: %w", sc.Text(), err)
		}
		out[m[1]] = append(out[m[1]], v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Median returns the median of xs (the mean of the middle pair for even
// lengths); it panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("bench: median of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Medians reduces parsed samples to one median per benchmark.
func Medians(samples map[string][]float64) map[string]float64 {
	return reduce(samples, Median)
}

// Mins reduces parsed samples to one minimum per benchmark: the preferred
// gating statistic, since the fastest of N runs is the best estimate of
// the code's cost with the least scheduler and cache noise on top.
func Mins(samples map[string][]float64) map[string]float64 {
	return reduce(samples, func(xs []float64) float64 {
		min := xs[0]
		for _, x := range xs[1:] {
			if x < min {
				min = x
			}
		}
		return min
	})
}

func reduce(samples map[string][]float64, f func([]float64) float64) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for name, xs := range samples {
		if len(xs) > 0 {
			out[name] = f(xs)
		}
	}
	return out
}

// Delta is one benchmark's comparison against the baseline.
type Delta struct {
	Name    string
	Base    float64 // baseline median ns/op
	Current float64 // this run's median ns/op
	// Ratio is Current/Base: 1.25 reads "25% slower than baseline".
	Ratio float64
}

// Comparison is the gate's verdict.
type Comparison struct {
	// Regressions are benchmarks slower than baseline by more than the
	// threshold, worst first.
	Regressions []Delta
	// Improvements are benchmarks faster than baseline by more than the
	// threshold, best first (candidates for a baseline refresh).
	Improvements []Delta
	// Within are benchmarks inside the threshold band.
	Within []Delta
	// MissingFromRun are baseline benchmarks this run did not execute —
	// a renamed or deleted benchmark silently un-gates itself, so the
	// gate reports it.
	MissingFromRun []string
	// MissingFromBase are benchmarks this run executed that the baseline
	// does not know (new benchmarks; refresh the baseline to gate them).
	MissingFromBase []string
}

// Compare evaluates current medians against the baseline with a relative
// threshold (0.20 means: fail at >20% slower).
func Compare(base *Baseline, current map[string]float64, threshold float64) Comparison {
	var c Comparison
	for name, b := range base.Results {
		cur, ok := current[name]
		if !ok {
			c.MissingFromRun = append(c.MissingFromRun, name)
			continue
		}
		d := Delta{Name: name, Base: b, Current: cur}
		if b > 0 {
			d.Ratio = cur / b
		}
		switch {
		case d.Ratio > 1+threshold:
			c.Regressions = append(c.Regressions, d)
		case d.Ratio != 0 && d.Ratio < 1-threshold:
			c.Improvements = append(c.Improvements, d)
		default:
			c.Within = append(c.Within, d)
		}
	}
	for name := range current {
		if _, ok := base.Results[name]; !ok {
			c.MissingFromBase = append(c.MissingFromBase, name)
		}
	}
	sort.Slice(c.Regressions, func(i, j int) bool { return c.Regressions[i].Ratio > c.Regressions[j].Ratio })
	sort.Slice(c.Improvements, func(i, j int) bool { return c.Improvements[i].Ratio < c.Improvements[j].Ratio })
	sort.Slice(c.Within, func(i, j int) bool { return c.Within[i].Name < c.Within[j].Name })
	sort.Strings(c.MissingFromRun)
	sort.Strings(c.MissingFromBase)
	return c
}

// ReadBaseline loads a BENCH_BASELINE.json.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("bench: baseline: %w", err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("bench: baseline version %d unsupported", b.Version)
	}
	if len(b.Results) == 0 {
		return nil, fmt.Errorf("bench: baseline has no results")
	}
	return &b, nil
}

// WriteBaseline emits a BENCH_BASELINE.json, keys sorted for stable
// diffs.
func WriteBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

package bench

import (
	"strings"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/trace"
)

// TestTable1Shapes: the overheads must be reasonable (the paper's headline)
// and flattening must reduce node counts and disk overhead.
func TestTable1Shapes(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // 6 documents × 3 flatten settings
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	byDoc := map[string][]Table1Row{}
	for _, r := range rows {
		byDoc[r.Document] = append(byDoc[r.Document], r)
	}
	for doc, rs := range byDoc {
		if len(rs) != 3 {
			t.Fatalf("%s has %d rows", doc, len(rs))
		}
		noFlatten := rs[0]
		best := rs[1] // most aggressive interval comes second (1 or 2)
		if noFlatten.Flatten != "no" {
			t.Fatalf("%s first row = %s", doc, noFlatten.Flatten)
		}
		if best.Nodes >= noFlatten.Nodes {
			t.Errorf("%s: flatten-%s did not reduce nodes: %d -> %d",
				doc, best.Flatten, noFlatten.Nodes, best.Nodes)
		}
		if best.NonTombPct <= noFlatten.NonTombPct {
			t.Errorf("%s: flatten did not improve tombstone fraction: %.1f -> %.1f",
				doc, noFlatten.NonTombPct, best.NonTombPct)
		}
		// Paper: mem overhead between 0.36 and 3.7 × file size; allow a
		// generous band around it.
		if noFlatten.MemOvhd > 8 {
			t.Errorf("%s: mem overhead ratio %.2f is unreasonable", doc, noFlatten.MemOvhd)
		}
		// Without flattening, tombstones dominate ("up to 95% of nodes are
		// tombstones"): non-tombstone fraction well under half.
		if noFlatten.NonTombPct > 60 {
			t.Errorf("%s: non-tombstone fraction %.1f%% too high without flatten",
				doc, noFlatten.NonTombPct)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "acf.tex") || !strings.Contains(out, "Distributed Computing") {
		t.Error("formatted table missing documents")
	}
}

// TestTable2MatchesPaper: the workload classes must reproduce Table 2's
// published statistics.
func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	within := func(got, want, tolPct int) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return d*100 <= want*tolPct
	}
	// Paper: average 312/103/279 over its full corpus; the six presented
	// documents average 281 revisions, so allow a 15% band around 312.
	if !within(rows[0].Revisions, 312, 15) {
		t.Errorf("average revisions = %d, want ≈312", rows[0].Revisions)
	}
	if !within(rows[0].FinalLines, 279, 20) {
		t.Errorf("average final = %d, want ≈279", rows[0].FinalLines)
	}
	if rows[1].Revisions != 51 || rows[1].InitialLines != 99 {
		t.Errorf("less active = %+v, want 51 revisions, 99 initial", rows[1])
	}
	if rows[2].Revisions != 870 || rows[2].InitialLines != 9 {
		t.Errorf("most active = %+v, want 870 revisions, 9 initial", rows[2])
	}
	if out := FormatTable2(rows); !strings.Contains(out, "most active") {
		t.Error("format")
	}
}

// TestTable3Shapes: tombstone fraction is high without flattening and drops
// sharply when flattening aggressively; balancing augments the effect
// (Section 5.1: "it is best to flatten aggressively").
func TestTable3Shapes(t *testing.T) {
	cells, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells = %d", len(cells))
	}
	noF, f8, f2 := cells[0], cells[1], cells[2]
	if noF.NoBalance < 50 {
		t.Errorf("no-flatten tombstones = %.1f%%, want high (paper: 77.5%%)", noF.NoBalance)
	}
	if !(f2.NoBalance < f8.NoBalance && f8.NoBalance < noF.NoBalance) {
		t.Errorf("aggressive flattening must reduce tombstones: %.1f, %.1f, %.1f",
			noF.NoBalance, f8.NoBalance, f2.NoBalance)
	}
	if f2.NoBalance > 35 {
		t.Errorf("flatten-2 tombstones = %.1f%%, want low (paper: 15.8%%)", f2.NoBalance)
	}
	// Balancing should not hurt, and generally helps with flattening
	// (paper: 67.8 -> 62.9 for flatten-8).
	if f8.Balance > f8.NoBalance+5 {
		t.Errorf("balancing made flatten-8 worse: %.1f vs %.1f", f8.Balance, f8.NoBalance)
	}
	if out := FormatTable3(cells); !strings.Contains(out, "flatten-2") {
		t.Error("format")
	}
}

// TestTable4Shapes: UDIS has lower total overhead than SDIS despite larger
// identifiers, because it discards tombstones early; flattening and
// balancing both shrink overheads (Section 5.2, Table 4).
func TestTable4Shapes(t *testing.T) {
	cells, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Fatalf("cells = %d", len(cells))
	}
	get := func(fl string, bal bool, mode ident.Mode) Table4Cell {
		for _, c := range cells {
			if c.Flatten == fl && c.Balanced == bal && c.Scheme == mode {
				return c
			}
		}
		t.Fatalf("missing cell %s/%v/%v", fl, bal, mode)
		return Table4Cell{}
	}
	for _, bal := range []bool{false, true} {
		s := get("no-flatten", bal, ident.SDIS)
		u := get("no-flatten", bal, ident.UDIS)
		if u.OverheadPerAtom >= s.OverheadPerAtom {
			t.Errorf("bal=%v: UDIS overhead %.0f ≥ SDIS %.0f (paper: UDIS wins overall)",
				bal, u.OverheadPerAtom, s.OverheadPerAtom)
		}
		// Per-identifier, UDIS is larger (80 vs 48 bits of disambiguator).
		if u.AvgIDBits <= s.AvgIDBits {
			t.Errorf("bal=%v: UDIS avg id %.0f ≤ SDIS %.0f (UDIS ids are larger)",
				bal, u.AvgIDBits, s.AvgIDBits)
		}
	}
	// Aggressive flattening collapses the SDIS/UDIS gap (paper: 34 vs 24).
	s2 := get("flatten-2", false, ident.SDIS)
	sNo := get("no-flatten", false, ident.SDIS)
	if s2.OverheadPerAtom >= sNo.OverheadPerAtom/2 {
		t.Errorf("flatten-2 SDIS overhead %.0f not far below no-flatten %.0f",
			s2.OverheadPerAtom, sNo.OverheadPerAtom)
	}
	// Balancing reduces SDIS overhead without flatten (paper: 570 -> 377).
	bNo := get("no-flatten", true, ident.SDIS)
	if bNo.OverheadPerAtom >= sNo.OverheadPerAtom {
		t.Errorf("balancing did not reduce SDIS overhead: %.0f vs %.0f",
			bNo.OverheadPerAtom, sNo.OverheadPerAtom)
	}
	if out := FormatTable4(cells); !strings.Contains(out, "overhead/atom") {
		t.Error("format")
	}
}

// TestTable5Shapes: Logoot identifiers are substantially larger in total
// than Treedoc/UDIS identifiers (paper ratios 1.8–3.9).
func TestTable5Shapes(t *testing.T) {
	rows, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Ratio <= 1.2 {
			t.Errorf("%s: Logoot/Treedoc ratio %.2f, want > 1.2", r.Document, r.Ratio)
		}
		if r.Ratio > 10 {
			t.Errorf("%s: ratio %.2f implausibly high", r.Document, r.Ratio)
		}
	}
	if out := FormatTable5(rows); !strings.Contains(out, "ratio") {
		t.Error("format")
	}
}

// TestFigure6Shapes: node counts grow over a document's lifetime and
// flattening appears as drastic drops (paper: "flattening appears as
// drastic reduction to the total number of nodes").
func TestFigure6Shapes(t *testing.T) {
	series, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 51 { // acf.tex has 51 revisions
		t.Fatalf("series length = %d", len(series))
	}
	drops := 0
	maxNodes := 0
	for i := 1; i < len(series); i++ {
		if series[i].Nodes > maxNodes {
			maxNodes = series[i].Nodes
		}
		if series[i].Nodes < series[i-1].Nodes*3/4 {
			drops++
		}
		if series[i].NonTomb > series[i].Nodes {
			t.Fatalf("revision %d: non-tomb %d > nodes %d",
				series[i].Revision, series[i].NonTomb, series[i].Nodes)
		}
	}
	if drops == 0 {
		t.Error("no flatten drops visible in the node-count series")
	}
	if maxNodes == 0 {
		t.Error("empty series")
	}
	if out := FormatFigure6(series); !strings.Contains(out, "non-T") {
		t.Error("format")
	}
}

// TestReplayCPUClaim: Section 5.2 reports the full 870-revision wiki replay
// at under 1.44 seconds on 2009 hardware; the reproduction must be at least
// that fast.
func TestReplayCPUClaim(t *testing.T) {
	p, err := trace.ProfileByName("Distributed Computing")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayTreedoc(tr, ReplayConfig{Mode: ident.SDIS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration.Seconds() > 1.44 {
		t.Errorf("replay took %v, paper reports < 1.44s", res.Duration)
	}
}

// TestBatchReplayEquivalence: batching only changes identifiers, never
// content.
func TestBatchReplayEquivalence(t *testing.T) {
	p := trace.LatexProfiles()[0]
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.Final()
	if err != nil {
		t.Fatal(err)
	}
	for _, rc := range []ReplayConfig{
		{},
		{Balanced: true},
		{Balanced: true, Batch: true},
		{Mode: ident.UDIS, Balanced: true, Batch: true, FlattenInterval: 4},
	} {
		res, err := ReplayTreedoc(tr, rc)
		if err != nil {
			t.Fatalf("%s: %v", rc.name(), err)
		}
		if res.Stats.Tree.LiveAtoms != len(want) {
			t.Errorf("%s: %d atoms, want %d", rc.name(), res.Stats.Tree.LiveAtoms, len(want))
		}
	}
}

// TestWootBaseline: WOOT accumulates permanent tombstones, exceeding
// Treedoc's overhead on the same trace.
func TestWootBaseline(t *testing.T) {
	p := trace.Profile{
		Name: "small", Granularity: trace.Lines, Seed: 77,
		InitialAtoms: 30, FinalAtoms: 60, Revisions: 15, AtomBytes: 30,
		EditsPerRevision: 5, ModifyFraction: 0.6, HotSpots: 2,
	}
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ReplayWoot(tr)
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats.Tombstones == 0 {
		t.Error("WOOT replay produced no tombstones")
	}
	lg, err := ReplayLogoot(tr)
	if err != nil {
		t.Fatal(err)
	}
	if lg.Stats.LiveAtoms != w.Stats.LiveAtoms {
		t.Errorf("baseline divergence: logoot %d vs woot %d atoms",
			lg.Stats.LiveAtoms, w.Stats.LiveAtoms)
	}
	final, err := tr.Final()
	if err != nil {
		t.Fatal(err)
	}
	if lg.Stats.LiveAtoms != len(final) {
		t.Errorf("logoot atoms = %d, want %d", lg.Stats.LiveAtoms, len(final))
	}
}

package core

import (
	"math/rand"
	"testing"

	"github.com/treedoc/treedoc/internal/doctree"
	"github.com/treedoc/treedoc/internal/ident"
)

func id(t *testing.T, s string) ident.Path {
	t.Helper()
	return ident.MustParsePath(s)
}

// TestNaiveIDRules exercises Algorithm 1 case by case on the Figure 2/3/4
// identifiers, checking both the chosen slot and strict betweenness.
func TestNaiveIDRules(t *testing.T) {
	d := ident.Dis{Site: 9}
	tests := []struct {
		name string
		p, f string // "" = document boundary
		want string // expected identifier
	}{
		// Empty document: the seed position.
		{"empty doc", "", "", "[(1:s9)]"},
		// Document start: left child of f's node (rule 4 degenerate).
		{"doc start", "", "[(0:s2)]", "[0(0:s9)]"},
		// Document end: right child of p's node (rule 5/7 degenerate).
		{"doc end", "[1(1:s6)]", "", "[11(1:s9)]"},
		// Rule 4: p ancestor of f (f descends through p's node): f-left.
		// p = b at [0], f = c at [01]: c walks through b's node.
		{"rule4 ancestor", "[(0:s2)]", "[0(1:s3)]", "[01(0:s9)]"},
		// Rule 5: f ancestor of p: p's node-right.
		// p = a at [00], f = b at [0]: a sits in b's node's left subtree.
		{"rule5 descendant", "[0(0:s1)]", "[(0:s2)]", "[00(1:s9)]"},
		// Rule 6: mini-siblings (concurrent inserts, Figure 4): child of
		// mini p, not of the node (the node-right slot would overshoot the
		// sibling).
		{"rule6 minisiblings", "[10(0:s7)]", "[10(0:s9)]", "[10(0:s7)(1:s9)]"},
		// Rule 6 second clause: f descends through a later mini-sibling.
		{"rule6 through sibling", "[10(0:s7)]", "[10(0:s8)(0:s1)]", "[10(0:s7)(1:s9)]"},
		// Rule 7: unrelated neighbours (p in one subtree, f in another):
		// p's node-right.
		{"rule7 unrelated", "[0(1:s3)]", "[1(0:s4)]", "[01(1:s9)]"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var p, f ident.Path
			if tt.p != "" {
				p = id(t, tt.p)
			}
			if tt.f != "" {
				f = id(t, tt.f)
			}
			got := naiveID(new(ident.Arena), p, f, d)
			if got.String() != tt.want {
				t.Errorf("naiveID(%s, %s) = %v, want %s", tt.p, tt.f, got, tt.want)
			}
			if !ident.Between(p, got, f) {
				t.Errorf("naiveID(%s, %s) = %v not strictly between", tt.p, tt.f, got)
			}
		})
	}
}

// TestNaiveIDBetweenProperty: for random adjacent pairs drawn from a
// growing random document, naiveID is always strictly between.
func TestNaiveIDBetweenProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var ids []ident.Path
	dis := func() ident.Dis { return ident.Dis{Site: ident.SiteID(1 + rng.Intn(5))} }
	for step := 0; step < 4000; step++ {
		var p, f ident.Path
		gap := rng.Intn(len(ids) + 1)
		if gap > 0 {
			p = ids[gap-1]
		}
		if gap < len(ids) {
			f = ids[gap]
		}
		got := naiveID(new(ident.Arena), p, f, dis())
		if !ident.Between(p, got, f) {
			t.Fatalf("step %d: naiveID(%v, %v) = %v not between", step, p, f, got)
		}
		// Insert in sorted position to keep the document ordered.
		ids = append(ids, nil)
		copy(ids[gap+1:], ids[gap:])
		ids[gap] = got
	}
}

func TestGrowShapes(t *testing.T) {
	d := ident.Dis{Site: 1}
	naive := ident.Path{ident.J(1), ident.J(1), ident.M(1, d)}
	if got := grow(naive, 1); !got.Equal(naive) {
		t.Errorf("k=1 must not grow: %v", got)
	}
	// k=3 on the Figure 5 shape: [11(1:d)] -> [1110(0:d)].
	got := grow(naive, 3)
	if got.String() != "[1110(0:s1)]" {
		t.Errorf("grow k=3 = %v, want [1110(0:s1)]", got)
	}
	if ident.Compare(naive, got) <= 0 {
		// The grown id replaces the naive one at the same slot: it must be
		// the smallest of the region, hence before the naive position.
		t.Errorf("grown id %v should sort before the naive id %v", got, naive)
	}
}

func TestGrowLevels(t *testing.T) {
	// growLevels(depth) = ⌈log2(depth+1)⌉ + 1 (the paper's h counts levels).
	for _, tt := range []struct{ h, want int }{
		{0, 1}, {1, 2}, {2, 3}, {3, 3}, {4, 4}, {7, 4}, {8, 5}, {100, 8},
	} {
		if got := growLevels(tt.h); got != tt.want {
			t.Errorf("growLevels(%d) = %d, want %d", tt.h, got, tt.want)
		}
	}
}

// TestBalancedFillsReservedInfix: after a growth, successive appends take
// the reserved slots in infix order (Figure 5's numbering).
func TestBalancedFillsReservedInfix(t *testing.T) {
	tr := doctree.New()
	// Figure 2 document.
	for _, fix := range []struct{ id, atom string }{
		{"[0(0:s2)]", "a"}, {"[(0:s2)]", "b"}, {"[0(1:s2)]", "c"},
		{"[1(0:s2)]", "d"}, {"[(1:s2)]", "e"}, {"[1(1:s2)]", "f"},
	} {
		if err := tr.InsertID(ident.MustParsePath(fix.id), fix.atom); err != nil {
			t.Fatal(err)
		}
	}
	strat := Balanced{}
	dis := ident.Dis{Site: 1}
	p := ident.MustParsePath("[1(1:s2)]") // f, the last atom
	var got []string
	for i := 0; i < 7; i++ {
		nid := strat.NewID(tr, new(ident.Arena), p, nil, dis)
		if err := tr.InsertID(nid, "x"); err != nil {
			t.Fatalf("append %d (%v): %v", i, nid, err)
		}
		got = append(got, nid.String())
		p = nid
	}
	// g takes the region's smallest id; the six reserved slots follow in
	// infix order; the 8th append (beyond the region) grows again.
	want := []string{
		"[1110(0:s1)]", // g: the paper's identifier
		"[111(0:s1)]",  // slot 1
		"[1110(1:s1)]", // slot 2
		"[11(1:s1)]",   // slot 3: the region root's own mini
		"[1111(0:s1)]", // slot 4
		"[111(1:s1)]",  // slot 5
		"[1111(1:s1)]", // slot 6
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("append %d = %s, want %s (all: %v)", i, got[i], want[i], got)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestBalancedAppendDepthSublinear: the balancing heuristic reserves
// ~2h slots per growth of ⌈log2 h⌉+1 levels, which bounds append depth by
// roughly √(n·log n) — against the naive strategy's exactly-n. For 3000
// appends that is ~190 versus 3000.
func TestBalancedAppendDepthSublinear(t *testing.T) {
	d, err := NewDocument(Config{Site: 1, Strategy: Balanced{}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		if _, err := d.InsertAt(i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if h := d.Stats().Height; h > 200 {
		t.Errorf("height after %d appends = %d, want <= 200 (≈√(n·log n))", n, h)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"errors"
	"fmt"
	"strings"

	"github.com/treedoc/treedoc/internal/doctree"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// Config parameterises a Document replica.
type Config struct {
	// Site is this replica's identifier; it must be non-zero (zero is the
	// canonical disambiguator's reserved site) and unique across replicas.
	Site ident.SiteID
	// Mode selects the disambiguator scheme: SDIS (tombstones) or UDIS
	// (immediate discard). Default SDIS.
	Mode ident.Mode
	// Strategy selects identifier allocation. Default Balanced.
	Strategy Strategy
	// Cost is the disambiguator size model for overhead accounting; defaults
	// to the paper's Section 5 model for the chosen Mode.
	Cost ident.Cost
	// Flatten configures the local flatten heuristic; the zero value never
	// flattens.
	Flatten FlattenPolicy
}

// FlattenPolicy drives the heuristic structural compaction of Section 4.2
// as evaluated in Section 5.1: every Interval revisions, flatten the largest
// subtree that has not been edited for at least ColdRevisions revisions.
type FlattenPolicy struct {
	// Interval is the number of revisions between flatten attempts; 0
	// disables the heuristic.
	Interval int
	// ColdRevisions is how many revisions a subtree must have been quiet to
	// count as cold. Zero means "not edited in the current revision".
	ColdRevisions int64
	// MinNodes is the smallest subtree (in tree nodes) worth flattening.
	// Zero defaults to 2.
	MinNodes int
}

// Document is one replica of the Treedoc CRDT (Section 2.2's atom buffer).
// Local edits return operations for propagation; remote operations are
// replayed with Apply. The type is not safe for concurrent use; the public
// treedoc package adds locking.
type Document struct {
	cfg      Config
	tree     *doctree.Tree
	strategy Strategy
	// trusted marks the package's own strategies, whose allocations are
	// exhaustively property-tested (order_prop_test.go): the per-insert
	// Between re-verification is skipped for them and runs only for
	// third-party Strategy implementations, whose bugs would otherwise
	// silently break convergence.
	trusted  bool
	counter  uint32 // per-site persistent counter (UDIS disambiguators)
	seq      uint64 // local operation sequence
	revision int64  // revision clock for the flatten heuristic

	// version is the replica's applied version vector: per site, the
	// highest operation sequence number whose effects are in the tree —
	// local edits at generation, remote operations at Apply. It is the
	// clock a state snapshot carries, telling a receiver exactly which
	// messages the snapshot stands in for.
	version vclock.VC

	// applied tracks per-site op counts for duplicate detection in direct
	// Apply use; the causal layer performs the authoritative filtering.
	opsApplied uint64
	netBits    uint64 // accumulated network cost of all ops seen

	// scratchP/scratchF are the reused neighbour-identifier buffers for
	// local edits. Strategies receive them read-only and never retain them
	// (every returned identifier is freshly built), so one buffer pair
	// serves every insert without allocating.
	scratchP ident.Path
	scratchF ident.Path

	// Insert-run cache: typing and pastes insert at consecutive gaps, so
	// after an insert at gap i the neighbours of gap i+1 are already known —
	// the atom just inserted and the unchanged right neighbour. runGap is
	// the gap a continuing insert would land on (-1 when invalid); runP/runF
	// are owned copies of its neighbour identifiers (runF nil = document
	// end). Any other mutation invalidates the cache.
	runGap int
	runP   ident.Path
	runF   ident.Path

	// arena bump-allocates the identifiers that escape into operations
	// (one per local edit); see ident.Arena.
	arena ident.Arena
}

// NewDocument creates an empty replica. It returns an error for invalid
// configuration (zero or out-of-range site).
func NewDocument(cfg Config) (*Document, error) {
	if cfg.Site == 0 || cfg.Site > ident.MaxSiteID {
		return nil, fmt.Errorf("core: site must be in [1, 2^48); got %d", cfg.Site)
	}
	if cfg.Mode == 0 {
		cfg.Mode = ident.SDIS
	}
	if cfg.Strategy == nil {
		cfg.Strategy = Balanced{}
	}
	if cfg.Cost == (ident.Cost{}) {
		cfg.Cost = ident.PaperCost(cfg.Mode)
	}
	if cfg.Flatten.MinNodes == 0 {
		cfg.Flatten.MinNodes = 2
	}
	trusted := false
	switch cfg.Strategy.(type) {
	case Naive, Balanced:
		trusted = true
	}
	return &Document{cfg: cfg, tree: doctree.New(), strategy: cfg.Strategy, trusted: trusted, version: vclock.New(), runGap: -1}, nil
}

// Restore rebuilds a replica from a deserialised tree and its persistent
// allocation state (the per-site operation sequence and UDIS counter, which
// must survive restarts so the site never re-mints identifiers). version is
// the applied version vector the snapshot was taken at; nil derives the
// pre-versioned form {site: seq}, which is correct for single-site
// snapshots and a safe under-approximation otherwise.
func Restore(cfg Config, tree *doctree.Tree, seq uint64, counter uint32, version vclock.VC) (*Document, error) {
	d, err := NewDocument(cfg)
	if err != nil {
		return nil, err
	}
	d.tree = tree
	d.seq = seq
	d.counter = counter
	if version != nil {
		d.version = version.Clone()
	} else if seq > 0 {
		d.version[cfg.Site] = seq
	}
	if d.version.Get(cfg.Site) > d.seq {
		d.seq = d.version.Get(cfg.Site)
	}
	return d, nil
}

// Version returns a copy of the applied version vector.
func (d *Document) Version() vclock.VC { return d.version.Clone() }

// ErrRegionLocked reports a local edit blocked by an outstanding flatten
// commitment vote on its region: a replica that voted Yes must not edit
// the subtree until the decision arrives (internal/commit). Callers retry
// after the commitment decides.
var ErrRegionLocked = errors.New("core: region locked by pending flatten commitment")

// ErrStaleSnapshot reports an InstallSnapshot whose version vector does
// not dominate the replica's applied state: installing it would silently
// discard operations the replica has already executed.
var ErrStaleSnapshot = errors.New("core: snapshot does not cover replica state")

// InstallSnapshot replaces the replica's document state with a decoded
// snapshot taken elsewhere, used by snapshot-based catch-up: a receiver
// whose whole history is covered by the snapshot's version vector adopts
// the state instead of replaying the operation log. The replica's own
// identity (site) is kept; its allocation state advances so it never
// re-mints a sequence number or disambiguator the snapshot already
// contains — from the snapshot's recorded seq/counter when the snapshot
// originated here (origin == site), otherwise from the version vector and
// a scan of the adopted tree's disambiguators.
func (d *Document) InstallSnapshot(tree *doctree.Tree, version vclock.VC, origin ident.SiteID, originSeq uint64, originCounter uint32) error {
	if !version.Dominates(d.version) {
		return ErrStaleSnapshot
	}
	d.runGap = -1
	d.tree = tree
	d.version = version.Clone()
	if v := d.version.Get(d.cfg.Site); v > d.seq {
		d.seq = v
	}
	if origin == d.cfg.Site {
		if originSeq > d.seq {
			d.seq = originSeq
		}
		if originCounter > d.counter {
			d.counter = originCounter
		}
	} else {
		tree.ExportBFS(func(en doctree.ExportNode) {
			for _, m := range en.Minis {
				if m.Dis.Site == d.cfg.Site && m.Dis.Counter > d.counter {
					d.counter = m.Dis.Counter
				}
			}
		})
	}
	return nil
}

// Seq returns the local operation sequence number (persisted by snapshots).
func (d *Document) Seq() uint64 { return d.seq }

// Counter returns the UDIS counter (persisted by snapshots).
func (d *Document) Counter() uint32 { return d.counter }

// Config returns the replica configuration.
func (d *Document) Config() Config { return d.cfg }

// Site returns the replica's site identifier.
func (d *Document) Site() ident.SiteID { return d.cfg.Site }

// Len returns the number of atoms in the document.
func (d *Document) Len() int { return d.tree.Len() }

// Content returns the document's atoms in order.
func (d *Document) Content() []string { return d.tree.Content() }

// ContentString returns the document joined with newlines, the natural
// rendering for line- and paragraph-granularity atoms.
func (d *Document) ContentString() string { return strings.Join(d.tree.Content(), "\n") }

// AtomAt returns the atom at index i.
func (d *Document) AtomAt(i int) (string, error) { return d.tree.AtomAt(i) }

// VisitRange streams the atoms of the index range [from, to) in document
// order in one tree walk, O(height + to - from); fn returning false stops
// the iteration early.
func (d *Document) VisitRange(from, to int, fn func(atom string) bool) error {
	return d.tree.VisitRange(from, to, fn)
}

// IDAt returns the position identifier of the atom at index i.
func (d *Document) IDAt(i int) (ident.Path, error) { return d.tree.IDAt(i) }

// nextDis mints a fresh disambiguator: (counter, site) under UDIS
// (Section 3.3.1), bare site under SDIS (Section 3.3.2).
func (d *Document) nextDis() ident.Dis {
	if d.cfg.Mode == ident.UDIS {
		d.counter++
		return ident.Dis{Counter: d.counter, Site: d.cfg.Site}
	}
	return ident.Dis{Site: d.cfg.Site}
}

// neighborIDs returns the identifiers around insertion gap i in the reused
// scratch buffers. The returned paths are valid until the next neighborIDs
// call; callers must not retain them (ops clone identifiers on allocation).
func (d *Document) neighborIDs(i int) (p, f ident.Path, err error) {
	n := d.tree.Len()
	if i < 0 || i > n {
		return nil, nil, fmt.Errorf("doctree: gap %d out of range [0,%d]", i, n)
	}
	if i > 0 && i < n {
		// Interior gap: one fused descent resolves both neighbours, walking
		// their shared identifier prefix once.
		if d.scratchP, d.scratchF, err = d.tree.AppendNeighborIDs(d.scratchP[:0], d.scratchF[:0], i); err != nil {
			return nil, nil, err
		}
		return d.scratchP, d.scratchF, nil
	}
	if i < n {
		if d.scratchF, err = d.tree.AppendIDAt(d.scratchF[:0], i); err != nil {
			return nil, nil, err
		}
		f = d.scratchF
	}
	if i > 0 {
		if d.scratchP, err = d.tree.AppendIDAt(d.scratchP[:0], i-1); err != nil {
			return nil, nil, err
		}
		p = d.scratchP
	}
	return p, f, nil
}

// InsertAt inserts atom at index i (0 ≤ i ≤ Len) as a local edit and returns
// the operation to propagate.
func (d *Document) InsertAt(i int, atom string) (Op, error) {
	var p, f ident.Path
	var err error
	if i > 0 && i == d.runGap {
		// Continuing an insert run: the left neighbour is the atom inserted
		// by the previous call and the right neighbour is unchanged, so the
		// two root-to-leaf locate walks are skipped entirely.
		p, f = d.runP, d.runF
	} else if p, f, err = d.neighborIDs(i); err != nil {
		return Op{}, err
	}
	id, err := d.allocate(p, f)
	if err != nil {
		return Op{}, err
	}
	d.seq++
	op := Op{Kind: OpInsert, ID: id, Atom: atom, Site: d.cfg.Site, Seq: d.seq}
	if err := d.apply(op); err != nil {
		return Op{}, err
	}
	d.primeRun(i+1, id, f)
	return op, nil
}

// primeRun records the neighbour identifiers of gap g for a continuing
// insert run: the just-inserted id on the left, f on the right. id is
// arena-allocated and immutable once escaped into the op, so the cache
// holds it by reference (nothing ever writes through runP); f is
// scratch-backed and copied into a document-owned buffer. apply
// invalidates the cache on every mutation, so the cache only survives
// between back-to-back local inserts.
func (d *Document) primeRun(g int, id, f ident.Path) {
	d.runGap = g
	d.runP = id
	if f == nil {
		d.runF = nil
	} else {
		d.runF = append(d.runF[:0], f...)
	}
}

// allocate mints a fresh identifier strictly between p and f that is not a
// used identifier. Under SDIS the same site re-inserting at the same gap
// would otherwise re-mint a tombstone's identifier (the disambiguator is
// just the site), which would not commute with deletes concurrent to the
// new insert; tombstones mark identifiers as used precisely to prevent this
// (Section 3.3.2). On a collision the tombstone becomes the new lower
// bound and allocation retries deeper: the used identifiers between p and
// f are finite, so this terminates. UDIS never collides (fresh counters).
func (d *Document) allocate(p, f ident.Path) (ident.Path, error) {
	dis := d.nextDis()
	for {
		id := d.strategy.NewID(d.tree, &d.arena, p, f, dis)
		if !d.trusted {
			if err := checkAllocation(p, id, f); err != nil {
				return nil, err
			}
		}
		if d.cfg.Mode == ident.UDIS {
			// A UDIS disambiguator is (counter, site) with a counter this
			// site has never used before, and the identifier ends with it:
			// it cannot collide with any used identifier (Section 3.3.1's
			// uniqueness argument), so the tree probe is skipped.
			return id, nil
		}
		if !d.tree.Exists(id) {
			return id, nil
		}
		p = id
	}
}

// InsertRunAt inserts a consecutive run of atoms starting at index i and
// returns the operations, one per atom. Strategies may pack the run into a
// minimal subtree (Section 4.1's revision-grouping variant).
func (d *Document) InsertRunAt(i int, atoms []string) ([]Op, error) {
	if len(atoms) == 0 {
		return nil, nil
	}
	p, f, err := d.neighborIDs(i)
	if err != nil {
		return nil, err
	}
	ids := d.strategy.NewRun(d.tree, &d.arena, p, f, d.nextDis(), len(atoms))
	if len(ids) != len(atoms) {
		return nil, fmt.Errorf("core: strategy returned %d ids for %d atoms", len(ids), len(atoms))
	}
	ops := make([]Op, 0, len(atoms))
	prev := p
	usable := true
	for j := range atoms {
		var id ident.Path
		if usable {
			id = ids[j]
			// Every identifier in the run ends with this edit's fresh
			// (counter, site) disambiguator, so under UDIS none can collide
			// with a used identifier (the same Section 3.3.1 uniqueness
			// argument allocate relies on) and the tree probes are skipped.
			// The Between re-verification runs for third-party strategies
			// only, like allocate's.
			if (!d.trusted && !ident.Between(prev, id, f)) ||
				(d.cfg.Mode != ident.UDIS && d.tree.Exists(id)) {
				// A used identifier (or an out-of-order substitute earlier in
				// the run) spoils the precomputed packing; allocate the rest
				// individually.
				usable = false
			}
		}
		if !usable {
			var err error
			id, err = d.allocate(prev, f)
			if err != nil {
				return nil, err
			}
		}
		prev = id
		d.seq++
		op := Op{Kind: OpInsert, ID: id, Atom: atoms[j], Site: d.cfg.Site, Seq: d.seq}
		if err := d.apply(op); err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	d.primeRun(i+len(atoms), prev, f)
	return ops, nil
}

// DeleteAt deletes the atom at index i as a local edit and returns the
// operation to propagate.
func (d *Document) DeleteAt(i int) (Op, error) {
	// One fused descent locates the atom, emits its identifier into the
	// scratch buffer, and deletes it; only the arena copy that escapes into
	// the op touches the heap. Going through apply instead would re-walk the
	// identifier the locate descent just produced.
	sp, err := d.tree.DeleteAtIndex(i, d.cfg.Mode == ident.UDIS, d.scratchP[:0])
	if err != nil {
		return Op{}, fmt.Errorf("core: delete at %d: %w", i, err)
	}
	d.scratchP = sp
	id := d.arena.Copy(sp)
	d.seq++
	op := Op{Kind: OpDelete, ID: id, Site: d.cfg.Site, Seq: d.seq}
	d.noteApplied(op)
	return op, nil
}

// Apply replays a remote operation. Operations must arrive in
// happened-before order (the causal layer's contract); under that contract
// every pair of concurrent operations commutes and replicas converge
// (Section 2.2).
func (d *Document) Apply(op Op) error {
	if err := op.Validate(); err != nil {
		return err
	}
	return d.apply(op)
}

func (d *Document) apply(op Op) error {
	switch op.Kind {
	case OpInsert:
		if err := d.tree.InsertID(op.ID, op.Atom); err != nil {
			return err
		}
	case OpDelete:
		if _, err := d.tree.DeleteID(op.ID, d.cfg.Mode == ident.UDIS); err != nil {
			return err
		}
	case OpFlatten:
		if err := d.tree.Flatten(op.ID); err != nil {
			return err
		}
	}
	d.noteApplied(op)
	return nil
}

// noteApplied records an operation's bookkeeping after its tree mutation has
// been performed — by apply's dispatch, or by a fused edit that already
// mutated the tree during its locate descent (DeleteAt).
func (d *Document) noteApplied(op Op) {
	d.runGap = -1 // any mutation invalidates the insert-run cache; InsertAt re-primes it
	if op.Seq > d.version.Get(op.Site) {
		d.version[op.Site] = op.Seq
	}
	if op.Site == d.cfg.Site && op.Seq > d.seq {
		// Our own operation replayed from a durable log or a snapshot: the
		// allocation state must advance past it, or a restarted replica
		// would re-mint the same sequence numbers and disambiguators for
		// fresh edits and peers would discard them as duplicates. A locally
		// minted op (op.Seq == d.seq, advanced by the caller) carries only
		// disambiguators at or below the current counter by construction,
		// so the identifier scan runs only on genuine replays.
		d.seq = op.Seq
		for _, el := range op.ID {
			if el.Kind == ident.Mini && el.Dis.Site == d.cfg.Site && el.Dis.Counter > d.counter {
				d.counter = el.Dis.Counter
			}
		}
	}
	d.opsApplied++
	d.netBits += uint64(op.NetworkBits(d.cfg.Cost))
}

// EndRevision advances the revision clock and runs the flatten heuristic
// when due: every Interval revisions, the largest subtree untouched for
// ColdRevisions revisions is flattened (Section 5.1). It returns the
// flattened subtree's structural path, or nil.
//
// This is the local (benchmark-replay) form used throughout the paper's
// evaluation; the distributed form runs the same flatten under the
// commitment protocol of internal/commit.
func (d *Document) EndRevision() ident.Path {
	d.revision++
	d.tree.AdvanceRev()
	pol := d.cfg.Flatten
	if pol.Interval <= 0 || d.revision%int64(pol.Interval) != 0 {
		return nil
	}
	cutoff := d.tree.Rev() - 1 - pol.ColdRevisions
	cold := d.tree.ColdestSubtree(cutoff, pol.MinNodes)
	if cold == nil {
		return nil
	}
	if err := d.tree.Flatten(cold); err != nil {
		return nil
	}
	d.runGap = -1
	return cold
}

// Revision returns the current revision number.
func (d *Document) Revision() int64 { return d.revision }

// ErrMintRaced reports a FlattenOp whose afterSeq precondition failed: a
// local edit was minted between the caller's readiness check and the
// flatten mint, so executing the flatten now would give it a sequence
// number out of order with its causal stamp. The caller retries once the
// racing edit has been stamped.
var ErrMintRaced = errors.New("core: local edit raced the flatten mint")

// FlattenOp executes a committed flatten as a local operation: the subtree
// at the structural path (empty = whole document) is flattened and the
// operation to propagate is returned. afterSeq is the local sequence
// number the caller expects the replica to be at; a mismatch (a local
// edit raced in) fails with ErrMintRaced before anything is modified —
// the check and the mint are one atomic step from the caller's locked
// view. Only the coordinator of a successful flatten commitment may call
// this — the protocol establishes that no replica holds a concurrent
// edit of the region — and the returned operation must be broadcast like
// any insert or delete, so causal delivery orders it before every
// post-flatten edit at every replica.
func (d *Document) FlattenOp(path ident.Path, afterSeq uint64) (Op, error) {
	if err := path.ValidateStructural(); err != nil {
		return Op{}, fmt.Errorf("core: flatten path: %w", err)
	}
	if d.seq != afterSeq {
		return Op{}, fmt.Errorf("core: flatten mint at seq %d, expected %d: %w", d.seq, afterSeq, ErrMintRaced)
	}
	d.seq++
	op := Op{Kind: OpFlatten, ID: path.Clone(), Site: d.cfg.Site, Seq: d.seq}
	if err := d.apply(op); err != nil {
		return Op{}, err
	}
	return op, nil
}

// FlattenSubtree flattens the subtree at the given structural path,
// discarding tombstones and identifier metadata in the region. Callers are
// responsible for coordination (see internal/commit); concurrent edits to a
// flattened region would diverge.
func (d *Document) FlattenSubtree(path ident.Path) error {
	d.runGap = -1
	if err := d.tree.Flatten(path); err != nil {
		return fmt.Errorf("core: flatten subtree: %w", err)
	}
	return nil
}

// FlattenAll compacts the whole document to a plain array: the paper's
// zero-overhead best case.
func (d *Document) FlattenAll() error {
	d.runGap = -1
	if err := d.tree.FlattenAll(); err != nil {
		return fmt.Errorf("core: flatten all: %w", err)
	}
	return nil
}

// ColdestSubtree exposes the flatten heuristic's candidate selection: the
// largest subtree not edited for `revisions` revisions with at least
// minNodes nodes, or nil.
func (d *Document) ColdestSubtree(revisions int64, minNodes int) ident.Path {
	return d.tree.ColdestSubtree(d.tree.Rev()-revisions, minNodes)
}

// Stats measures the replica's overheads under its cost model.
func (d *Document) Stats() Stats {
	ts := d.tree.Stats(d.cfg.Cost)
	return Stats{
		Tree:       ts,
		Mode:       d.cfg.Mode,
		Strategy:   d.strategy.Name(),
		OpsApplied: d.opsApplied,
		NetBits:    d.netBits,
		Height:     d.tree.Height(),
	}
}

// Check verifies the underlying tree's structural invariants (tests).
func (d *Document) Check() error { return d.tree.Check() }

// Tree exposes the underlying document tree to sibling internal packages
// (storage serialisation, benches). External users go through the public
// treedoc package, which does not expose it.
func (d *Document) Tree() *doctree.Tree { return d.tree }

// Stats bundles a replica's measurements (Section 5's cost accounting).
type Stats struct {
	Tree       doctree.Stats
	Mode       ident.Mode
	Strategy   string
	OpsApplied uint64
	NetBits    uint64 // total network cost of all operations seen
	Height     int
}

package core

import (
	"encoding/json"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
)

func TestOpJSONRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpInsert, ID: ident.MustParsePath("[10(0:s3)]"), Atom: "hello \"quoted\"", Site: 3, Seq: 42},
		{Kind: OpDelete, ID: ident.MustParsePath("[(1:c7s9)]"), Site: 9, Seq: 1},
	}
	for _, op := range ops {
		data, err := json.Marshal(op)
		if err != nil {
			t.Fatal(err)
		}
		var got Op
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if got.Kind != op.Kind || !got.ID.Equal(op.ID) || got.Atom != op.Atom ||
			got.Site != op.Site || got.Seq != op.Seq {
			t.Errorf("round trip %v -> %v", op, got)
		}
	}
}

func TestOpJSONReadable(t *testing.T) {
	op := Op{Kind: OpInsert, ID: ident.MustParsePath("[10(0:s3)]"), Atom: "x", Site: 3, Seq: 1}
	data, err := json.Marshal(op)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"insert","id":"[10(0:s3)]","atom":"x","site":3,"seq":1}`
	if string(data) != want {
		t.Errorf("json = %s, want %s", data, want)
	}
}

func TestOpJSONErrors(t *testing.T) {
	var o Op
	if err := json.Unmarshal([]byte(`{"kind":"mangle","id":"[(1:s1)]"}`), &o); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := json.Unmarshal([]byte(`{"kind":"insert","id":"bogus"}`), &o); err == nil {
		t.Error("bad id accepted")
	}
	if err := json.Unmarshal([]byte(`{"kind":"insert","id":7}`), &o); err == nil {
		t.Error("numeric id accepted")
	}
	if err := json.Unmarshal([]byte(`{"kind":"delete","id":"[(1:s1)]","atom":"x","site":1}`), &o); err == nil {
		t.Error("delete with atom accepted")
	}
}

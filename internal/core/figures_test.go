package core

import (
	"strings"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
)

func newDoc(t *testing.T, site ident.SiteID, opts ...func(*Config)) *Document {
	t.Helper()
	cfg := Config{Site: site, Strategy: Naive{}}
	for _, o := range opts {
		o(&cfg)
	}
	d, err := NewDocument(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func withUDIS(c *Config)     { c.Mode = ident.UDIS }
func withBalanced(c *Config) { c.Strategy = Balanced{} }

func docString(d *Document) string { return strings.Join(d.Content(), "") }

// buildABCDEF appends the paper's running example document atom by atom.
func buildABCDEF(t *testing.T, d *Document) []Op {
	t.Helper()
	var ops []Op
	for i, atom := range []string{"a", "b", "c", "d", "e", "f"} {
		op, err := d.InsertAt(i, atom)
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, op)
	}
	if got := docString(d); got != "abcdef" {
		t.Fatalf("document = %q, want abcdef", got)
	}
	return ops
}

// TestFigure3ConcurrentInserts replays the scenario of Figure 3: two sites
// concurrently insert W and Y between c and d; after exchanging operations
// both replicas converge, with the concurrent atoms ordered by
// disambiguator (site order under SDIS).
func TestFigure3ConcurrentInserts(t *testing.T) {
	siteA := newDoc(t, 7) // will hold W; site 7 < site 9 so W sorts first
	siteB := newDoc(t, 9)
	ops := buildABCDEF(t, siteA)
	for _, op := range ops {
		if err := siteB.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	// Concurrent edits: neither site has seen the other's insert.
	opW, err := siteA.InsertAt(3, "W")
	if err != nil {
		t.Fatal(err)
	}
	opY, err := siteB.InsertAt(3, "Y")
	if err != nil {
		t.Fatal(err)
	}
	// Exchange.
	if err := siteA.Apply(opY); err != nil {
		t.Fatal(err)
	}
	if err := siteB.Apply(opW); err != nil {
		t.Fatal(err)
	}
	wantDoc := "abcWYdef"
	if got := docString(siteA); got != wantDoc {
		t.Errorf("site A = %q, want %q", got, wantDoc)
	}
	if got := docString(siteB); got != wantDoc {
		t.Errorf("site B = %q, want %q", got, wantDoc)
	}
	// The concurrent identifiers are mini-siblings: same node (identical
	// structural prefix), different disambiguators.
	if !opW.ID[:len(opW.ID)-1].Equal(opY.ID[:len(opY.ID)-1]) ||
		opW.ID.Last().Bit != opY.ID.Last().Bit {
		t.Errorf("W %v and Y %v are not mini-siblings", opW.ID, opY.ID)
	}
	if opW.ID.Last().Dis == opY.ID.Last().Dis {
		t.Errorf("mini-siblings share a disambiguator")
	}
}

// TestFigure4InsertBetweenMiniSiblings continues into Figure 4: inserting X
// between mini-siblings W and Y must create a child of mini-node W
// (Algorithm 1, rule in line 6).
func TestFigure4InsertBetweenMiniSiblings(t *testing.T) {
	siteA := newDoc(t, 7)
	siteB := newDoc(t, 9)
	for _, op := range buildABCDEF(t, siteA) {
		if err := siteB.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	opW, _ := siteA.InsertAt(3, "W")
	opY, _ := siteB.InsertAt(3, "Y")
	if err := siteA.Apply(opY); err != nil {
		t.Fatal(err)
	}
	if err := siteB.Apply(opW); err != nil {
		t.Fatal(err)
	}
	opX, err := siteA.InsertAt(4, "X") // between W and Y
	if err != nil {
		t.Fatal(err)
	}
	if err := siteB.Apply(opX); err != nil {
		t.Fatal(err)
	}
	want := "abcWXYdef"
	if got := docString(siteA); got != want {
		t.Errorf("site A = %q, want %q", got, want)
	}
	if got := docString(siteB); got != want {
		t.Errorf("site B = %q, want %q", got, want)
	}
	// X hangs off mini-node W: its identifier extends W's by one element.
	if !opX.ID[:len(opX.ID)-1].Equal(opW.ID) {
		t.Errorf("X %v is not a child of mini-node W %v", opX.ID, opW.ID)
	}
	if opX.ID.Last() != ident.M(1, opX.ID.Last().Dis) {
		t.Errorf("X %v is not a right child", opX.ID)
	}
}

// TestFigure5BalancedGrowth replays Section 4.1's example exactly: on the
// Figure 2 tree (complete, three levels), a balanced append of atom g grows
// the tree by ⌈log2(h)⌉+1 = 3 levels, yielding the paper's identifier
// [1110(0:d)], and subsequent appends fill the reserved empty slots instead
// of deepening the tree.
func TestFigure5BalancedGrowth(t *testing.T) {
	d := newDoc(t, 1, withBalanced)
	// The Figure 2 document in its canonical heap layout (see doctree tests).
	for _, fix := range []struct{ id, atom string }{
		{"[0(0:s2)]", "a"}, {"[(0:s2)]", "b"}, {"[0(1:s2)]", "c"},
		{"[1(0:s2)]", "d"}, {"[(1:s2)]", "e"}, {"[1(1:s2)]", "f"},
	} {
		op := Op{Kind: OpInsert, ID: ident.MustParsePath(fix.id), Atom: fix.atom, Site: 2, Seq: 1}
		if err := d.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	h := d.Stats().Height // 2: the complete three-level tree
	opG, err := d.InsertAt(6, "g")
	if err != nil {
		t.Fatal(err)
	}
	if want := "[1110(0:s1)]"; opG.ID.String() != want {
		t.Errorf("g's identifier = %v, want %v (the paper's [1110(0:d)])", opG.ID, want)
	}
	k := growLevels(h)
	if got := len(opG.ID); got != h+k {
		t.Errorf("g's identifier %v has depth %d, want h+k = %d", opG.ID, got, h+k)
	}
	// Subsequent appends consume the grown subtree's empty slots ("the
	// following atoms would consecutively use the PosIDs for the empty nodes
	// in the sub-tree") and stay within the grown height.
	maxDepth := 0
	for i, atom := range []string{"h", "i", "j", "k"} {
		op, err := d.InsertAt(7+i, atom)
		if err != nil {
			t.Fatal(err)
		}
		if len(op.ID) > maxDepth {
			maxDepth = len(op.ID)
		}
	}
	if maxDepth > h+k {
		t.Errorf("follow-up appends deepened the tree to %d, want <= %d", maxDepth, h+k)
	}
	if got := docString(d); got != "abcdefghijk" {
		t.Errorf("document = %q", got)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestNaiveAppendDegenerates documents the unbalanced behaviour the paper's
// Section 4.1 fixes: naive appends grow one level per atom.
func TestNaiveAppendDegenerates(t *testing.T) {
	d := newDoc(t, 1) // Naive
	var last Op
	for i := 0; i < 16; i++ {
		var err error
		last, err = d.InsertAt(i, "x")
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := len(last.ID); got != 16 {
		t.Errorf("16th naive append has depth %d, want 16", got)
	}

	b := newDoc(t, 1, withBalanced)
	for i := 0; i < 16; i++ {
		var err error
		last, err = b.InsertAt(i, "x")
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Stats().Height; got >= 16 {
		t.Errorf("balanced append reached height %d, want < 16", got)
	}
}

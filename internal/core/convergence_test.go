package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
)

// TestDensityProperty: every strategy must allocate strictly between the
// neighbours at any gap, for documents built by random editing.
func TestDensityProperty(t *testing.T) {
	for _, strat := range []Strategy{Naive{}, Balanced{}} {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			d := newDoc(t, 1, func(c *Config) { c.Strategy = strat })
			for step := 0; step < 1500; step++ {
				n := d.Len()
				if n == 0 || rng.Intn(100) < 65 {
					gap := rng.Intn(n + 1)
					// InsertAt validates Between internally (checkAllocation);
					// an allocation outside the gap returns an error.
					if _, err := d.InsertAt(gap, fmt.Sprintf("a%d", step)); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				} else {
					if _, err := d.DeleteAt(rng.Intn(n)); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			if err := d.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// happenedBeforeSchedules builds a concurrent editing history across
// replicas and replays random linearisations that respect happened-before
// (per-site order plus insert-before-delete), asserting all replicas reach
// the same final state. This is the paper's central claim: "replicas of a
// CRDT converge automatically" (Section 1).
func TestConvergenceRandomConcurrentEditing(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode ident.Mode
		str  Strategy
	}{
		{"sdis-naive", ident.SDIS, Naive{}},
		{"sdis-balanced", ident.SDIS, Balanced{}},
		{"udis-naive", ident.UDIS, Naive{}},
		{"udis-balanced", ident.UDIS, Balanced{}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const sites = 4
			const rounds = 12
			rng := rand.New(rand.NewSource(99))

			docs := make([]*Document, sites)
			for i := range docs {
				var err error
				docs[i], err = NewDocument(Config{
					Site: ident.SiteID(i + 1), Mode: tc.mode, Strategy: tc.str,
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			// history[i] = ops originated by site i, in order.
			history := make([][]Op, sites)
			// Each round: every site performs 1-3 local edits concurrently,
			// then all sites exchange and apply everything new from the
			// others (a causally consistent broadcast round).
			delivered := make([]int, sites) // per-site count each doc has seen
			for round := 0; round < rounds; round++ {
				for i, d := range docs {
					edits := 1 + rng.Intn(3)
					for e := 0; e < edits; e++ {
						if d.Len() == 0 || rng.Intn(100) < 70 {
							op, err := d.InsertAt(rng.Intn(d.Len()+1), fmt.Sprintf("s%dr%de%d", i, round, e))
							if err != nil {
								t.Fatalf("site %d round %d: %v", i, round, err)
							}
							history[i] = append(history[i], op)
						} else {
							op, err := d.DeleteAt(rng.Intn(d.Len()))
							if err != nil {
								t.Fatalf("site %d round %d: %v", i, round, err)
							}
							history[i] = append(history[i], op)
						}
					}
				}
				// Exchange: each site applies the others' new ops in a
				// different random site order (operations across sites in
				// one round are concurrent, so order must not matter).
				newCounts := make([]int, sites)
				for i := range history {
					newCounts[i] = len(history[i])
				}
				for i, d := range docs {
					order := rng.Perm(sites)
					for _, j := range order {
						if j == i {
							continue
						}
						for k := delivered[j]; k < newCounts[j]; k++ {
							if err := d.Apply(history[j][k]); err != nil {
								t.Fatalf("site %d applying %v: %v", i, history[j][k], err)
							}
						}
					}
				}
				// All docs have now seen everything up to newCounts; advance
				// the shared watermark. (Each site already has its own ops.)
				copy(delivered, newCounts)
			}
			want := docs[0].ContentString()
			for i, d := range docs {
				if got := d.ContentString(); got != want {
					t.Fatalf("site %d diverged:\n%q\nvs site 0:\n%q", i, got, want)
				}
				if err := d.Check(); err != nil {
					t.Fatalf("site %d: %v", i, err)
				}
			}
			if docs[0].Len() == 0 {
				t.Error("degenerate test: empty final document")
			}
		})
	}
}

// TestConvergencePairwisePermutation exhaustively permutes small concurrent
// op sets (3 ops from 3 sites) and checks all 6 delivery orders agree.
func TestConvergencePairwisePermutation(t *testing.T) {
	base := newDoc(t, 9)
	baseOps := buildABCDEF(t, base)

	mk := func(site ident.SiteID) *Document {
		d := newDoc(t, site)
		for _, op := range baseOps {
			if err := d.Apply(op); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	// Three concurrent ops from three different replicas.
	d1, d2, d3 := mk(1), mk(2), mk(3)
	op1, err := d1.InsertAt(2, "X")
	if err != nil {
		t.Fatal(err)
	}
	op2, err := d2.InsertAt(2, "Y")
	if err != nil {
		t.Fatal(err)
	}
	op3, err := d3.DeleteAt(4)
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{op1, op2, op3}
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	var want string
	for pi, perm := range perms {
		d := mk(ident.SiteID(10 + pi))
		for _, k := range perm {
			if err := d.Apply(ops[k]); err != nil {
				t.Fatalf("perm %v: %v", perm, err)
			}
		}
		got := docString(d)
		if pi == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("perm %v = %q, want %q", perm, got, want)
		}
	}
}

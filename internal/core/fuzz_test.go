package core_test

import (
	"reflect"
	"testing"

	"github.com/treedoc/treedoc/internal/core"
)

// seedOps builds operations from a live document so the corpus contains
// realistic paths, disambiguators and atoms (including multi-byte UTF-8).
func seedOps(f *testing.F) []core.Op {
	doc, err := core.NewDocument(core.Config{Site: 42})
	if err != nil {
		f.Fatal(err)
	}
	var ops []core.Op
	for i, atom := range []string{"a", "hello world", "αβγ∂", ""} {
		op, err := doc.InsertAt(i, atom)
		if err != nil {
			f.Fatal(err)
		}
		ops = append(ops, op)
	}
	del, err := doc.DeleteAt(2)
	if err != nil {
		f.Fatal(err)
	}
	ops = append(ops, del)
	return ops
}

// FuzzOpUnmarshalBinary is the wire-boundary fuzz target: arbitrary bytes
// must never panic the decoder, and any accepted operation must survive a
// marshal/unmarshal round trip unchanged.
func FuzzOpUnmarshalBinary(f *testing.F) {
	for _, op := range seedOps(f) {
		data, err := op.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x02, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var op core.Op
		if err := op.UnmarshalBinary(data); err != nil {
			return
		}
		if err := op.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid op %v: %v", op, err)
		}
		re, err := op.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted op %v failed to re-marshal: %v", op, err)
		}
		var again core.Op
		if err := again.UnmarshalBinary(re); err != nil {
			t.Fatalf("re-marshalled op rejected: %v", err)
		}
		if !reflect.DeepEqual(op, again) {
			t.Fatalf("op not stable under round trip:\n got %v\nwant %v", again, op)
		}
	})
}

// FuzzDecodeOp covers the stream-decoding entry point (prefix decode with
// consumed length), which the batched wire frames use directly.
func FuzzDecodeOp(f *testing.F) {
	for _, op := range seedOps(f) {
		f.Add(op.AppendBinary(nil))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		op, n, err := core.DecodeOp(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("DecodeOp consumed %d of %d bytes", n, len(data))
		}
		if err := op.Validate(); err != nil {
			t.Fatalf("DecodeOp accepted invalid op: %v", err)
		}
	})
}

package core

import (
	"fmt"
	"math/bits"

	"github.com/treedoc/treedoc/internal/doctree"
	"github.com/treedoc/treedoc/internal/ident"
)

// Strategy allocates fresh position identifiers for local inserts. All
// strategies must return an identifier strictly between the neighbours (nil
// p means document start, nil f document end); they differ in how they fight
// tree unbalance (Section 4.1).
type Strategy interface {
	// NewID returns a fresh identifier strictly between p and f, carrying
	// disambiguator d. The tree provides structural context (existing empty
	// slots, current height); implementations must not modify it. The arena
	// is the preferred allocator for the returned identifier (one escaping
	// path per local edit is the dominant allocation cost of a replica);
	// implementations may ignore it and allocate directly.
	NewID(t *doctree.Tree, a *ident.Arena, p, f ident.Path, d ident.Dis) ident.Path
	// NewRun returns n fresh identifiers in ascending order, all strictly
	// between p and f, for a consecutive insert run.
	NewRun(t *doctree.Tree, a *ident.Arena, p, f ident.Path, d ident.Dis, n int) []ident.Path
	// Name identifies the strategy in benchmark output.
	Name() string
}

// naiveID implements Algorithm 1: allocate a child slot adjacent to one of
// the neighbours. The case analysis follows the paper's rules 4–7, phrased
// constructively on identifier regions (see DESIGN.md):
//
//   - rule 6: f enters p's major node through a later mini-sibling (or is
//     one): the new atom becomes a right child of mini-node p;
//   - rule 4: p is an ancestor of f (f's walk passes through p's node): the
//     new atom becomes the left child of f's node;
//   - rules 5/7: otherwise the new atom becomes the right child of p's node.
func naiveID(a *ident.Arena, p, f ident.Path, d ident.Dis) ident.Path {
	switch {
	case p == nil && f == nil:
		id := a.Alloc(1)
		id[0] = ident.M(1, d)
		return id
	case p == nil:
		return childOfStripped(a, f, ident.M(0, d))
	case f == nil:
		return childOfStripped(a, p, ident.M(1, d))
	}
	k := len(p)
	if len(f) >= k && f[k-1].Kind == ident.Mini &&
		f[k-1].Bit == p[k-1].Bit && f[k-1].Dis != p[k-1].Dis &&
		f[:k-1].Equal(p[:k-1]) {
		// Rule 6: mini-siblings (p < f implies f's sibling disambiguator is
		// the larger, so p's node-level right child would overshoot it).
		// Extend writes the child element in place when p was the arena's
		// last mint — every insert of a typing run — so a run of rule-6
		// children costs one element per atom instead of one path copy.
		return a.Extend(p, ident.M(1, d))
	}
	if len(f) >= k && f[k-1].Bit == p[k-1].Bit && f[:k-1].Equal(p[:k-1]) {
		// Rule 4: f descends through p's node (p is its ancestor): attach
		// left of f. Everything under f's node-left slot sorts after p here.
		// (The structural test is RegionCompare(f, p.StripLastDis()) == 0,
		// spelled out to avoid materialising the stripped path.)
		return childOfStripped(a, f, ident.M(0, d))
	}
	// Rules 5 and 7: f is an ancestor of p or unrelated; in both cases p's
	// node-level right region lies strictly between p and f (subtree regions
	// are intervals, and f sorts beyond p's node's region).
	return childOfStripped(a, p, ident.M(1, d))
}

// childOfStripped returns p.StripLastDis().Child(e) built in one exact-size
// arena allocation; naiveID runs once per local insert, so the fused
// arena-backed form removes its per-insert heap cost. The result never
// aliases p.
func childOfStripped(a *ident.Arena, p ident.Path, e ident.Elem) ident.Path {
	q := a.Alloc(len(p) + 1)
	copy(q, p)
	q[len(p)-1] = ident.J(q[len(p)-1].Bit)
	q[len(p)] = e
	return q
}

// Naive is Algorithm 1 without balancing: always an immediate child of a
// neighbour. Repeated end-appends grow one level per atom.
type Naive struct{}

// NewID implements Strategy.
func (Naive) NewID(_ *doctree.Tree, a *ident.Arena, p, f ident.Path, d ident.Dis) ident.Path {
	return naiveID(a, p, f, d)
}

// NewRun implements Strategy: a chain of immediate children (each atom the
// right child of its predecessor's node), which is exactly what replaying
// Algorithm 1 per atom produces.
func (Naive) NewRun(t *doctree.Tree, a *ident.Arena, p, f ident.Path, d ident.Dis, n int) []ident.Path {
	out := make([]ident.Path, 0, n)
	for i := 0; i < n; i++ {
		id := naiveID(a, p, f, d)
		out = append(out, id)
		p = id
	}
	return out
}

// Name implements Strategy.
func (Naive) Name() string { return "naive" }

// Balanced is the balancing heuristic of Section 4.1: it first reuses empty
// identifier slots between the neighbours; otherwise, when the naive
// identifier would deepen the tree, it grows the height by ⌈log2(h)⌉+1
// levels at once and takes the smallest identifier of the grown subtree,
// leaving the remaining slots for subsequent inserts.
type Balanced struct{}

// NewID implements Strategy.
func (Balanced) NewID(t *doctree.Tree, a *ident.Arena, p, f ident.Path, d ident.Dis) ident.Path {
	if id := t.FreeMiniBetween(p, f, d); id != nil {
		return id
	}
	id := naiveID(a, p, f, d)
	if h := t.Height(); len(id) > h {
		k := growLevels(h)
		if k >= 2 {
			// Reserve the whole grown subtree (Figure 5's empty nodes), so
			// subsequent inserts fill its slots instead of deepening the
			// tree; take the region's smallest identifier now.
			region := id[:len(id)-1].Clone()
			region = append(region, ident.J(id[len(id)-1].Bit))
			if err := t.Reserve(region, k); err == nil {
				id = grow(id, k)
			}
		}
	}
	return id
}

// growLevels returns the paper's growth amount ⌈log2(levels)⌉+1, where
// levels counts nodes on the deepest path (the paper's height h; our Height
// is the deepest depth, one less). For the Figure 2 tree (three levels)
// this is 3, reproducing the example identifier [1110(0:d)] of Section 4.1.
func growLevels(depth int) int {
	return bits.Len(uint(depth)) + 1 // bits.Len(d) = ⌈log2(d+1)⌉
}

// grow rewrites a naive identifier s+(b:d) as the smallest identifier of a
// subtree grown k levels below the same slot: s+b+0…0+(0:d). The result
// stays inside the naive identifier's already-validated region. k ≤ 1
// leaves the identifier unchanged.
func grow(id ident.Path, k int) ident.Path {
	if k <= 1 {
		return id
	}
	last := id[len(id)-1]
	out := make(ident.Path, 0, len(id)+k-1)
	out = append(out, id[:len(id)-1]...)
	out = append(out, ident.J(last.Bit))
	for i := 0; i < k-2; i++ {
		out = append(out, ident.J(0))
	}
	return append(out, ident.M(0, last.Dis))
}

// NewRun implements Strategy: the paper's revision-grouping variant
// (Section 5.1, footnote 2): "group all the consecutive inserts of a given
// revision into a minimal sub-tree". The run occupies the canonical complete
// subtree of depth ⌈log2(n+1)⌉ below one allocated slot, every atom carrying
// the same disambiguator (identifiers differ by their bits).
func (Balanced) NewRun(t *doctree.Tree, a *ident.Arena, p, f ident.Path, d ident.Dis, n int) []ident.Path {
	if n == 1 {
		return []ident.Path{Balanced{}.NewID(t, a, p, f, d)}
	}
	// Allocate the run's region root: the naive slot (without growth — the
	// run subtree is already the growth).
	head := naiveID(a, p, f, d)
	slot := head[:len(head)-1] // structural path of the region root's parent slot
	bit := head[len(head)-1].Bit
	root := append(slot.Clone(), ident.J(bit))
	depth := 1
	for capacity(depth) < n {
		depth++
	}
	out := make([]ident.Path, 0, n)
	fillRun(root, depth, n, d, &out)
	return out
}

// capacity returns 2^depth - 1.
func capacity(depth int) int {
	if depth >= 62 {
		return 1<<62 - 1
	}
	return 1<<depth - 1
}

// fillRun appends the first n infix identifiers of a canonical complete
// subtree rooted at structural path root (ending in a Major element).
func fillRun(root ident.Path, depth, n int, d ident.Dis, out *[]ident.Path) {
	if n == 0 {
		return
	}
	capChild := capacity(depth - 1)
	nLeft := n
	if nLeft > capChild {
		nLeft = capChild
	}
	fillRun(root.Child(ident.J(0)), depth-1, nLeft, d, out)
	rest := n - nLeft
	if rest > 0 {
		id := root.Clone()
		id[len(id)-1] = ident.M(id[len(id)-1].Bit, d)
		*out = append(*out, id)
		rest--
	}
	fillRun(root.Child(ident.J(1)), depth-1, rest, d, out)
}

// Name implements Strategy.
func (Balanced) Name() string { return "balanced" }

var (
	_ Strategy = Naive{}
	_ Strategy = Balanced{}
)

// checkAllocation verifies an allocated identifier lies strictly between the
// neighbours; allocation bugs would silently break convergence, so Document
// validates every identifier a third-party strategy returns (its own
// strategies carry the property-test suite instead — see Document.trusted).
func checkAllocation(p, id, f ident.Path) error {
	if !ident.Between(p, id, f) {
		return fmt.Errorf("core: allocated identifier %v not strictly between %v and %v", id, p, f)
	}
	return nil
}

package core

import (
	"encoding/json"
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
)

// opJSON is the JSON wire form of an operation: human-readable, with the
// identifier in the paper's bracket notation. The binary codec (op.go) is
// the compact transport; JSON serves tooling, logs and trace files.
type opJSON struct {
	Kind string       `json:"kind"`
	ID   ident.Path   `json:"id"`
	Atom string       `json:"atom,omitempty"`
	Site ident.SiteID `json:"site"`
	Seq  uint64       `json:"seq"`
}

// MarshalJSON encodes the operation for tooling.
func (o Op) MarshalJSON() ([]byte, error) {
	return json.Marshal(opJSON{
		Kind: o.Kind.String(),
		ID:   o.ID,
		Atom: o.Atom,
		Site: o.Site,
		Seq:  o.Seq,
	})
}

// UnmarshalJSON decodes the JSON form.
func (o *Op) UnmarshalJSON(data []byte) error {
	var j opJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	var kind OpKind
	switch j.Kind {
	case "insert":
		kind = OpInsert
	case "delete":
		kind = OpDelete
	default:
		return fmt.Errorf("core: unknown op kind %q", j.Kind)
	}
	dec := Op{Kind: kind, ID: j.ID, Atom: j.Atom, Site: j.Site, Seq: j.Seq}
	if err := dec.Validate(); err != nil {
		return err
	}
	*o = dec
	return nil
}

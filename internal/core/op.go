// Package core implements the Treedoc commutative replicated data type: the
// shared edit buffer of the ICDCS 2009 paper (Sections 2–4). A Document is
// one replica's state; local edits produce operations that commute with all
// concurrent operations, so replicas that replay each other's operations in
// happened-before order converge without further concurrency control.
//
// The package builds on internal/ident (the dense identifier space) and
// internal/doctree (the extended binary tree). Distribution — causal
// delivery and the flatten commitment protocol — lives in internal/causal,
// internal/simnet and internal/commit; the public treedoc package ties them
// together.
package core

import (
	"encoding/binary"
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/intern"
)

// OpKind identifies an edit operation type (Section 2.2).
type OpKind uint8

const (
	// OpInsert inserts an atom at a fresh position identifier.
	OpInsert OpKind = iota + 1
	// OpDelete removes the atom with a given position identifier. Delete is
	// idempotent and commutes with every concurrent operation.
	OpDelete
	// OpFlatten rewrites the subtree at a structural path as a flat atom
	// array (Section 4.2's flatten). Unlike insert and delete it does NOT
	// commute with concurrent edits of its region: it may only be issued by
	// the coordinator of a successful flatten commitment (internal/commit,
	// ported onto live links by internal/transport), which establishes that
	// no such edit exists anywhere. Shipping the committed flatten as a
	// stamped operation puts it in the causal stream, so every replica
	// applies it before any operation issued after it — post-flatten edits
	// reference post-flatten identifiers, and causal delivery guarantees
	// the rename has happened first.
	OpFlatten
)

// String returns the operation name.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpFlatten:
		return "flatten"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one Treedoc edit operation, the unit of replication. Site and Seq
// identify the originating replica and its local operation sequence number;
// the causal delivery layer uses them for happened-before ordering and
// duplicate suppression.
type Op struct {
	Kind OpKind
	ID   ident.Path
	Atom string // insert only
	Site ident.SiteID
	Seq  uint64
}

// Validate checks well-formedness.
func (o Op) Validate() error {
	switch o.Kind {
	case OpInsert, OpDelete:
		if err := o.ID.Validate(); err != nil {
			return fmt.Errorf("core: invalid op id: %w", err)
		}
	case OpFlatten:
		// A flatten targets a major node: its ID is a structural path (empty
		// = the whole document), not an atom identifier.
		if err := o.ID.ValidateStructural(); err != nil {
			return fmt.Errorf("core: invalid flatten path: %w", err)
		}
	default:
		return fmt.Errorf("core: invalid op kind %d", o.Kind)
	}
	if o.Kind != OpInsert && o.Atom != "" {
		return fmt.Errorf("core: %s op carries an atom", o.Kind)
	}
	return nil
}

// NetworkBits returns the operation's network cost in bits under the
// paper's model (Section 5.2): "the network cost of an edit operation is
// sending a PosID and, when inserting, the corresponding atom".
func (o Op) NetworkBits(c ident.Cost) int {
	bits := o.ID.Bits(c)
	if o.Kind == OpInsert {
		bits += 8 * len(o.Atom)
	}
	return bits
}

// String renders the op for logs and test failures.
func (o Op) String() string {
	if o.Kind == OpInsert {
		return fmt.Sprintf("insert%v %q by s%d#%d", o.ID, o.Atom, o.Site, o.Seq)
	}
	return fmt.Sprintf("%s%v by s%d#%d", o.Kind, o.ID, o.Site, o.Seq)
}

// AppendBinary appends the wire encoding of o to dst. Layout: kind byte,
// uvarint site, uvarint seq, path, and for inserts a uvarint-length-prefixed
// atom.
//
//treedoc:noalloc
func (o Op) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(o.Kind))
	dst = binary.AppendUvarint(dst, uint64(o.Site))
	dst = binary.AppendUvarint(dst, o.Seq)
	dst = o.ID.AppendBinary(dst)
	if o.Kind == OpInsert {
		dst = binary.AppendUvarint(dst, uint64(len(o.Atom)))
		dst = append(dst, o.Atom...)
	}
	return dst
}

// MarshalBinary encodes o in the wire format.
func (o Op) MarshalBinary() ([]byte, error) { return o.AppendBinary(nil), nil }

// DecodeOp decodes one operation from the front of buf, returning the
// number of bytes consumed.
func DecodeOp(buf []byte) (Op, int, error) {
	var o Op
	if len(buf) == 0 {
		return o, 0, fmt.Errorf("core: empty op buffer")
	}
	o.Kind = OpKind(buf[0])
	off := 1
	site, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return o, 0, fmt.Errorf("core: truncated op site")
	}
	off += n
	if ident.SiteID(site) > ident.MaxSiteID {
		return o, 0, fmt.Errorf("core: op site %d exceeds 48 bits", site)
	}
	o.Site = ident.SiteID(site)
	seq, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return o, 0, fmt.Errorf("core: truncated op seq")
	}
	off += n
	o.Seq = seq
	id, n, err := ident.DecodePath(buf[off:])
	if err != nil {
		return o, 0, fmt.Errorf("core: op id: %w", err)
	}
	off += n
	o.ID = id
	if o.Kind == OpInsert {
		alen, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return o, 0, fmt.Errorf("core: truncated atom length")
		}
		off += n
		if alen > uint64(len(buf)-off) {
			return o, 0, fmt.Errorf("core: atom length %d exceeds buffer", alen)
		}
		// Character-granularity documents make almost every decoded atom a
		// single ASCII byte; interning those shares one table entry instead
		// of allocating a fresh string per replayed insert.
		o.Atom = intern.Bytes(buf[off : off+int(alen)])
		off += int(alen)
	}
	if err := o.Validate(); err != nil {
		return o, 0, err
	}
	return o, off, nil
}

// UnmarshalBinary decodes o from data, requiring full consumption.
func (o *Op) UnmarshalBinary(data []byte) error {
	dec, n, err := DecodeOp(data)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("core: %d trailing bytes after op", len(data)-n)
	}
	*o = dec
	return nil
}

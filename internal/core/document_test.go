package core

import (
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
)

func TestNewDocumentValidation(t *testing.T) {
	if _, err := NewDocument(Config{Site: 0}); err == nil {
		t.Error("site 0 accepted")
	}
	if _, err := NewDocument(Config{Site: ident.MaxSiteID + 1}); err == nil {
		t.Error("oversized site accepted")
	}
	d, err := NewDocument(Config{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.Config()
	if cfg.Mode != ident.SDIS {
		t.Errorf("default mode = %v, want SDIS", cfg.Mode)
	}
	if cfg.Strategy == nil || cfg.Strategy.Name() != "balanced" {
		t.Errorf("default strategy = %v, want balanced", cfg.Strategy)
	}
	if cfg.Cost != ident.PaperCost(ident.SDIS) {
		t.Errorf("default cost = %+v", cfg.Cost)
	}
	if d.Site() != 1 {
		t.Errorf("Site = %d", d.Site())
	}
}

func TestInsertDeleteRoundTrip(t *testing.T) {
	d := newDoc(t, 1)
	buildABCDEF(t, d)
	op, err := d.DeleteAt(2) // delete c
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != OpDelete {
		t.Errorf("op kind = %v", op.Kind)
	}
	if got := docString(d); got != "abdef" {
		t.Errorf("document = %q", got)
	}
	if _, err := d.DeleteAt(10); err == nil {
		t.Error("out-of-range delete succeeded")
	}
	if _, err := d.InsertAt(-1, "x"); err == nil {
		t.Error("negative-index insert succeeded")
	}
	a, err := d.AtomAt(0)
	if err != nil || a != "a" {
		t.Errorf("AtomAt(0) = %q, %v", a, err)
	}
	if _, err := d.IDAt(0); err != nil {
		t.Errorf("IDAt: %v", err)
	}
	if d.ContentString() != "a\nb\nd\ne\nf" {
		t.Errorf("ContentString = %q", d.ContentString())
	}
}

// TestCommutativity checks the CRDT property directly (Section 2.2): any two
// concurrent operations applied in either order leave identical states.
func TestCommutativity(t *testing.T) {
	base := newDoc(t, 1)
	ops := buildABCDEF(t, base)

	// Two fresh replicas that have seen the base history.
	mk := func(site ident.SiteID) *Document {
		d := newDoc(t, site)
		for _, op := range ops {
			if err := d.Apply(op); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	a, b := mk(7), mk(9)
	opA, err := a.InsertAt(3, "X")
	if err != nil {
		t.Fatal(err)
	}
	opB, err := b.DeleteAt(1)
	if err != nil {
		t.Fatal(err)
	}

	// Replay both ops in both orders on fresh replicas.
	r1, r2 := mk(11), mk(12)
	for _, op := range []Op{opA, opB} {
		if err := r1.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range []Op{opB, opA} {
		if err := r2.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	if docString(r1) != docString(r2) {
		t.Errorf("orders diverge: %q vs %q", docString(r1), docString(r2))
	}
	if docString(r1) != "acXdef" {
		t.Errorf("converged state = %q, want acXdef", docString(r1))
	}
}

// TestConcurrentDeletesIdempotent: concurrent deletes of the same atom
// commute ("the delete operation is idempotent", Section 2.2).
func TestConcurrentDeletesIdempotent(t *testing.T) {
	for _, mode := range []ident.Mode{ident.SDIS, ident.UDIS} {
		t.Run(mode.String(), func(t *testing.T) {
			setMode := func(c *Config) { c.Mode = mode }
			a := newDoc(t, 1, setMode)
			ops := buildABCDEF(t, a)
			b := newDoc(t, 2, setMode)
			for _, op := range ops {
				if err := b.Apply(op); err != nil {
					t.Fatal(err)
				}
			}
			delA, err := a.DeleteAt(2)
			if err != nil {
				t.Fatal(err)
			}
			delB, err := b.DeleteAt(2)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Apply(delB); err != nil {
				t.Fatal(err)
			}
			if err := b.Apply(delA); err != nil {
				t.Fatal(err)
			}
			if docString(a) != "abdef" || docString(b) != "abdef" {
				t.Errorf("states: %q, %q", docString(a), docString(b))
			}
		})
	}
}

func TestUDISDiscardsImmediately(t *testing.T) {
	d := newDoc(t, 1, withUDIS)
	buildABCDEF(t, d)
	for i := 5; i >= 3; i-- {
		if _, err := d.DeleteAt(i); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.Tree.DeadMinis != 0 {
		t.Errorf("UDIS kept %d tombstones", s.Tree.DeadMinis)
	}
	if s.Mode != ident.UDIS {
		t.Errorf("stats mode = %v", s.Mode)
	}
	// SDIS keeps them.
	e := newDoc(t, 1)
	buildABCDEF(t, e)
	for i := 5; i >= 3; i-- {
		if _, err := e.DeleteAt(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().Tree.DeadMinis; got != 3 {
		t.Errorf("SDIS tombstones = %d, want 3", got)
	}
}

// TestSDISNeverRevivesTombstones is the regression test for identifier
// reuse: under SDIS the disambiguator is just the site, so re-inserting at
// the same gap would re-mint the tombstone's identifier unless allocation
// treats tombstones as used. Reuse would break commutativity with deletes
// concurrent to the second insert.
func TestSDISNeverRevivesTombstones(t *testing.T) {
	for _, strat := range []Strategy{Naive{}, Balanced{}} {
		t.Run(strat.Name(), func(t *testing.T) {
			d := newDoc(t, 1, func(c *Config) { c.Strategy = strat })
			buildABCDEF(t, d)
			seen := map[string]bool{}
			// Insert/delete repeatedly at the same gap: every id must be new.
			for round := 0; round < 10; round++ {
				op, err := d.InsertAt(3, "X")
				if err != nil {
					t.Fatal(err)
				}
				key := op.ID.String()
				if seen[key] {
					t.Fatalf("round %d: identifier %s reused", round, key)
				}
				seen[key] = true
				if _, err := d.DeleteAt(3); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Check(); err != nil {
				t.Fatal(err)
			}
			// The commutativity scenario end-to-end: a concurrent delete of
			// the tombstoned id must not kill the re-inserted atom.
			s := d.Stats()
			if s.Tree.DeadMinis != 10 {
				t.Errorf("tombstones = %d, want 10", s.Tree.DeadMinis)
			}
		})
	}
}

// TestSDISAppendAfterTrailingTombstones: delete the tail then append; the
// new atom's identifier must not collide with the trailing tombstones.
func TestSDISAppendAfterTrailingTombstones(t *testing.T) {
	d := newDoc(t, 1)
	buildABCDEF(t, d)
	for i := 5; i >= 3; i-- {
		if _, err := d.DeleteAt(i); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		op, err := d.InsertAt(3+i, "n")
		if err != nil {
			t.Fatal(err)
		}
		if seen[op.ID.String()] {
			t.Fatalf("identifier %s reused", op.ID)
		}
		seen[op.ID.String()] = true
	}
	if got := docString(d); got != "abcnnnnn" {
		t.Errorf("doc = %q", got)
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestUDISCounterMakesFreshIDs(t *testing.T) {
	d := newDoc(t, 1, withUDIS)
	op1, err := d.InsertAt(0, "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DeleteAt(0); err != nil {
		t.Fatal(err)
	}
	op2, err := d.InsertAt(0, "y")
	if err != nil {
		t.Fatal(err)
	}
	if op1.ID.Equal(op2.ID) {
		t.Errorf("identifier %v reused after discard (UDIS must mint fresh)", op1.ID)
	}
}

func TestInsertRunAt(t *testing.T) {
	for _, strat := range []Strategy{Naive{}, Balanced{}} {
		t.Run(strat.Name(), func(t *testing.T) {
			d := newDoc(t, 1, func(c *Config) { c.Strategy = strat })
			opH, err := d.InsertAt(0, "H")
			if err != nil {
				t.Fatal(err)
			}
			opT, err := d.InsertAt(1, "T")
			if err != nil {
				t.Fatal(err)
			}
			atoms := []string{"1", "2", "3", "4", "5", "6", "7"}
			ops, err := d.InsertRunAt(1, atoms)
			if err != nil {
				t.Fatal(err)
			}
			if len(ops) != len(atoms) {
				t.Fatalf("ops = %d", len(ops))
			}
			if got := docString(d); got != "H1234567T" {
				t.Errorf("document = %q", got)
			}
			if err := d.Check(); err != nil {
				t.Fatal(err)
			}
			// The run's ops replay independently and in any order: apply
			// them reversed on a second replica.
			e := newDoc(t, 2)
			for _, op := range []Op{opH, opT} {
				if err := e.Apply(op); err != nil {
					t.Fatal(err)
				}
			}
			for i := len(ops) - 1; i >= 0; i-- {
				if err := e.Apply(ops[i]); err != nil {
					t.Fatal(err)
				}
			}
			if docString(e) != docString(d) {
				t.Errorf("replayed replica = %q, want %q", docString(e), docString(d))
			}
			// The balanced run packs into a minimal complete subtree: the
			// depth spread across the run is at most ⌈log2(n+1)⌉-1 = 2 for
			// n=7 (the naive chain spreads n-1 = 6 levels).
			minLen, maxLen := 1<<30, 0
			for _, op := range ops {
				if len(op.ID) > maxLen {
					maxLen = len(op.ID)
				}
				if len(op.ID) < minLen {
					minLen = len(op.ID)
				}
			}
			spread := maxLen - minLen
			if strat.Name() == "balanced" && spread > 2 {
				t.Errorf("balanced run depth spread = %d, want <= 2", spread)
			}
			if strat.Name() == "naive" && spread != len(atoms)-1 {
				t.Errorf("naive run depth spread = %d, want %d", spread, len(atoms)-1)
			}
		})
	}
}

func TestInsertRunEmpty(t *testing.T) {
	d := newDoc(t, 1)
	ops, err := d.InsertRunAt(0, nil)
	if err != nil || ops != nil {
		t.Errorf("empty run: %v, %v", ops, err)
	}
}

func TestFlattenPolicyEndRevision(t *testing.T) {
	d := newDoc(t, 1, func(c *Config) {
		c.Flatten = FlattenPolicy{Interval: 2, ColdRevisions: 0, MinNodes: 1}
	})
	buildABCDEF(t, d)
	// Revision 1: no flatten (interval 2).
	if got := d.EndRevision(); got != nil {
		t.Errorf("rev 1 flattened %v", got)
	}
	// Edit something so revision 2 has a hot region; the cold remainder
	// should flatten.
	if _, err := d.InsertAt(6, "g"); err != nil {
		t.Fatal(err)
	}
	cold := d.EndRevision()
	if cold == nil {
		t.Fatal("rev 2 flattened nothing")
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if d.Revision() != 2 {
		t.Errorf("revision = %d", d.Revision())
	}
	if got := docString(d); got != "abcdefg" {
		t.Errorf("document = %q", got)
	}
	if d.Stats().Tree.FlatAtoms == 0 {
		t.Error("no atoms in flat storage after heuristic flatten")
	}
}

func TestFlattenAllZeroOverhead(t *testing.T) {
	d := newDoc(t, 1)
	buildABCDEF(t, d)
	if _, err := d.DeleteAt(0); err != nil {
		t.Fatal(err)
	}
	if err := d.FlattenAll(); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Tree.MemBytes != 0 || s.Tree.Nodes != 0 {
		t.Errorf("flattened doc: mem=%d nodes=%d, want zero overhead", s.Tree.MemBytes, s.Tree.Nodes)
	}
	if docString(d) != "bcdef" {
		t.Errorf("document = %q", docString(d))
	}
	// ColdestSubtree on a flat doc finds nothing.
	if got := d.ColdestSubtree(0, 1); got != nil {
		t.Errorf("cold subtree on flat doc: %v", got)
	}
}

func TestOpCodecRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpInsert, ID: ident.MustParsePath("[10(0:s3)]"), Atom: "hello world", Site: 3, Seq: 42},
		{Kind: OpDelete, ID: ident.MustParsePath("[(1:c7s9)]"), Site: 9, Seq: 1},
		{Kind: OpInsert, ID: ident.MustParsePath("[(0:⊥)]"), Atom: "", Site: 1, Seq: 0},
	}
	for _, op := range ops {
		data, err := op.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got Op
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal %v: %v", op, err)
		}
		if got.Kind != op.Kind || !got.ID.Equal(op.ID) || got.Atom != op.Atom ||
			got.Site != op.Site || got.Seq != op.Seq {
			t.Errorf("round trip %v -> %v", op, got)
		}
	}
}

func TestOpCodecErrors(t *testing.T) {
	if _, _, err := DecodeOp(nil); err == nil {
		t.Error("empty buffer decoded")
	}
	op := Op{Kind: OpInsert, ID: ident.MustParsePath("[(1:s1)]"), Atom: "abc", Site: 1, Seq: 1}
	data := op.AppendBinary(nil)
	for cut := 1; cut < len(data); cut++ {
		if _, _, err := DecodeOp(data[:cut]); err == nil {
			t.Errorf("truncated op at %d decoded", cut)
		}
	}
	var o Op
	if err := o.UnmarshalBinary(append(data, 9)); err == nil {
		t.Error("trailing bytes accepted")
	}
	bad := Op{Kind: 9, ID: ident.MustParsePath("[(1:s1)]"), Site: 1}
	if err := bad.Validate(); err == nil {
		t.Error("bad kind validated")
	}
	del := Op{Kind: OpDelete, ID: ident.MustParsePath("[(1:s1)]"), Atom: "x", Site: 1}
	if err := del.Validate(); err == nil {
		t.Error("delete with atom validated")
	}
}

func TestOpNetworkBits(t *testing.T) {
	c := ident.PaperCost(ident.SDIS)
	ins := Op{Kind: OpInsert, ID: ident.MustParsePath("[10(0:s3)]"), Atom: "ab"}
	if got := ins.NetworkBits(c); got != 3+48+16 {
		t.Errorf("insert bits = %d, want %d", got, 3+48+16)
	}
	del := Op{Kind: OpDelete, ID: ident.MustParsePath("[10(0:s3)]")}
	if got := del.NetworkBits(c); got != 3+48 {
		t.Errorf("delete bits = %d, want %d", got, 3+48)
	}
}

func TestApplyRejectsInvalid(t *testing.T) {
	d := newDoc(t, 1)
	if err := d.Apply(Op{Kind: OpInsert, Site: 1}); err == nil {
		t.Error("op with empty id applied")
	}
	// Duplicate insert of the same identifier must fail loudly.
	op, err := d.InsertAt(0, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(op); err == nil {
		t.Error("duplicate insert applied")
	}
}

func TestStatsAccounting(t *testing.T) {
	d := newDoc(t, 1)
	buildABCDEF(t, d)
	s := d.Stats()
	if s.OpsApplied != 6 {
		t.Errorf("ops applied = %d", s.OpsApplied)
	}
	if s.NetBits == 0 {
		t.Error("network bits not accounted")
	}
	if s.Strategy != "naive" {
		t.Errorf("strategy = %q", s.Strategy)
	}
}

package analysis

import (
	"go/ast"
	"strings"
)

// Directive looks for a "//treedoc:<name>" line in a comment group and
// returns the rest of that line (trimmed) plus whether it was found.
// Directives follow the compiler's own convention: no space after "//",
// so "// treedoc:noalloc" is prose, not a directive.
func Directive(cg *ast.CommentGroup, name string) (string, bool) {
	if cg == nil {
		return "", false
	}
	prefix := "//treedoc:" + name
	for _, c := range cg.List {
		text := c.Text
		if !strings.HasPrefix(text, prefix) {
			continue
		}
		rest := text[len(prefix):]
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // longer directive name, e.g. noallocfoo
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// FieldAnnotation scans a struct field's doc and trailing comments for a
// marker phrase ("guarded by", "actor-owned") and returns the first word
// following it, if any. Matching is case-insensitive on the phrase so the
// existing "Guarded by mu." comments in the tree count.
func FieldAnnotation(field *ast.Field, phrase string) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		text := cg.Text()
		idx := strings.Index(strings.ToLower(text), strings.ToLower(phrase))
		if idx < 0 {
			continue
		}
		rest := strings.TrimSpace(text[idx+len(phrase):])
		// First token after the phrase, stripped of sentence punctuation.
		word := rest
		if i := strings.IndexAny(word, " \t\n"); i >= 0 {
			word = word[:i]
		}
		word = strings.TrimRight(word, ".,;:)")
		return word, true
	}
	return "", false
}

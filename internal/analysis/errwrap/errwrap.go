// Package errwrap checks that exported functions don't leak another
// internal package's errors bare. An error produced by a call into a
// different internal/* package must be wrapped (fmt.Errorf with %w, or
// any transforming expression) or be an exported Err* sentinel before it
// crosses an exported signature — otherwise callers start matching on
// sub-package error strings and the internal layering leaks into the API.
//
// Two deliberate exemptions:
//
//   - A function whose whole body is a single return statement is a
//     delegation facade (the root package's transport.go); the wrapping
//     obligation sits on the internal function it forwards to, which this
//     analyzer checks in its own package.
//   - Identifiers resolving to package-level Err* variables are exported
//     sentinels; returning them bare is the API contract, not a leak.
//
// The trace is intentionally shallow: a returned identifier is flagged if
// the last assignment to it before the return (in source-position order,
// which stands in for control flow in straight-line error handling) is a
// direct call into a foreign internal package. Re-assigning the same err
// variable from a local call or expression clears the taint, so Go's
// conventional err reuse doesn't produce cascading false positives.
// Errors laundered through struct fields, channels, or function values
// are not tracked — the analyzer aims at the dominant
// "err := internalpkg.F(); return err" shape, not full dataflow.
package errwrap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/treedoc/treedoc/internal/analysis"
)

// Analyzer is the errwrap check.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "check that exported functions wrap errors from other internal packages",
	Run:  run,
}

var errorType = types.Universe.Lookup("error").Type()

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !ast.IsExported(fn.Name.Name) {
				continue
			}
			if !returnsError(pass, fn) {
				continue
			}
			// Whole-body delegation facade: pass-through by design.
			if len(fn.Body.List) == 1 {
				if _, ok := fn.Body.List[0].(*ast.ReturnStmt); ok {
					continue
				}
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func returnsError(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && types.Identical(t, errorType) {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	taint := collectTaints(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		// Returns inside closures are not this function's results.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			switch e := ast.Unparen(res).(type) {
			case *ast.CallExpr:
				if pkg := foreignInternalCallee(pass, e); pkg != "" && yieldsError(pass, e) {
					pass.Reportf(res.Pos(),
						"exported %s returns unwrapped error from %s; wrap it or return an exported sentinel", fn.Name.Name, pkg)
				}
			case *ast.Ident:
				if t := pass.TypesInfo.TypeOf(e); t == nil || !types.Identical(t, errorType) {
					continue
				}
				obj := pass.TypesInfo.Uses[e]
				if obj == nil || isSentinel(obj) {
					continue
				}
				if pkg := taintedAt(taint[obj], ret.Pos()); pkg != "" {
					pass.Reportf(res.Pos(),
						"exported %s returns unwrapped error from %s; wrap it or return an exported sentinel", fn.Name.Name, pkg)
				}
			}
		}
		return true
	})
}

// taintEvent records one assignment to an error variable: the position of
// the assignment, and the foreign internal package it came from ("" for a
// clean assignment, which kills any earlier taint).
type taintEvent struct {
	pos token.Pos
	pkg string
}

// taintedAt returns the tainting package in effect at position pos — the
// pkg of the latest assignment event before pos, or "" if that event is
// clean or no assignment precedes pos.
func taintedAt(events []taintEvent, pos token.Pos) string {
	pkg := ""
	var at token.Pos
	for _, e := range events {
		if e.pos < pos && e.pos >= at {
			at, pkg = e.pos, e.pkg
		}
	}
	return pkg
}

// collectTaints maps local error variables to their assignment history:
// which assignments came from a call into a foreign internal package and
// which re-assignments cleared that.
func collectTaints(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object][]taintEvent {
	taint := make(map[types.Object][]taintEvent)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		record := func(lhs ast.Expr, pkg string) {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				return
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				return
			}
			if t := obj.Type(); t != nil && types.Identical(t, errorType) {
				taint[obj] = append(taint[obj], taintEvent{pos: id.Pos(), pkg: pkg})
			}
		}
		if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
			pkg := ""
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
				pkg = foreignInternalCallee(pass, call)
			}
			for _, lhs := range as.Lhs {
				record(lhs, pkg)
			}
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			pkg := ""
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				pkg = foreignInternalCallee(pass, call)
			}
			record(as.Lhs[i], pkg)
		}
		return true
	})
	return taint
}

// foreignInternalCallee returns the callee's package path when the call
// statically resolves to a function in a different internal/* package.
func foreignInternalCallee(pass *analysis.Pass, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	default:
		return ""
	}
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg() == pass.Pkg {
		return ""
	}
	path := f.Pkg().Path()
	if strings.Contains(path, "/internal/") || strings.HasPrefix(path, "internal/") {
		return path
	}
	return ""
}

// yieldsError reports whether the call has an error among its results.
func yieldsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errorType)
}

// isSentinel reports whether obj is a package-level Err* variable — an
// exported (or exportable) sentinel callers are meant to compare against.
func isSentinel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	if v.Parent() != v.Pkg().Scope() {
		return false
	}
	return strings.HasPrefix(v.Name(), "Err")
}

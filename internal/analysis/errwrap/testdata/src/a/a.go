// Package a exercises the errwrap analyzer: exported functions leaking
// another internal package's errors bare, against the wrapped, sentinel,
// delegation, and taint-clearing shapes that are allowed.
package a

import (
	"errors"
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// ErrBad is an exported sentinel; returning it bare is the contract.
var ErrBad = errors.New("a: bad")

// Bare leaks the vclock error to callers unwrapped.
func Bare(data []byte) error {
	_, _, err := vclock.DecodeBinary(data, -1)
	return err // want `exported Bare returns unwrapped error from github.com/treedoc/treedoc/internal/vclock; wrap it or return an exported sentinel`
}

// DirectLeak returns a foreign internal call's error straight through.
func DirectLeak(p ident.Path) error {
	if len(p) == 0 {
		return nil
	}
	return p.ValidateStructural() // want `exported DirectLeak returns unwrapped error from github.com/treedoc/treedoc/internal/ident; wrap it or return an exported sentinel`
}

// Wrapped adds this package's context before the error escapes.
func Wrapped(data []byte) error {
	_, _, err := vclock.DecodeBinary(data, -1)
	if err != nil {
		return fmt.Errorf("a: decode: %w", err)
	}
	return nil
}

// Delegate is a whole-body delegation facade: the wrapping obligation
// sits on the callee, checked in its own package.
func Delegate(p ident.Path) error {
	return p.ValidateStructural()
}

// Sentinel returns an exported Err* variable bare: the API contract.
func Sentinel(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return ErrBad
}

// Killed re-assigns err from a local call after handling the foreign
// error, which clears the taint.
func Killed(data []byte) error {
	_, _, err := vclock.DecodeBinary(data, -1)
	if err != nil {
		return fmt.Errorf("a: decode: %w", err)
	}
	err = localCheck(data)
	return err
}

// bare is unexported, so its callers inside this package carry the
// wrapping obligation instead.
func bare(data []byte) error {
	_, _, err := vclock.DecodeBinary(data, -1)
	return err
}

func localCheck(data []byte) error {
	if len(data) > 1<<20 {
		return ErrBad
	}
	return nil
}

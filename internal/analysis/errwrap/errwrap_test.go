package errwrap_test

import (
	"testing"

	"github.com/treedoc/treedoc/internal/analysis/analysistest"
	"github.com/treedoc/treedoc/internal/analysis/errwrap"
)

func TestErrWrap(t *testing.T) {
	diags := analysistest.Run(t, errwrap.Analyzer, "testdata/src/a")
	if len(diags) == 0 {
		t.Fatal("positive fixture produced no diagnostics; boundary checks are not running")
	}
}

// Package a models a miniature wire protocol for the framekinds
// analyzer: one fully wired kind, one kind missing fuzz coverage, and
// one orphan missing everything.
package a

const (
	kindPing   = 0x01
	kindPong   = 0x02 // want `kindPong is not exercised by any fuzz target \(reference kindPong or one of EncodePong in a Fuzz function\)`
	kindOrphan = 0x03 // want `kindOrphan is not referenced by any encode function` `kindOrphan is not handled by any decode function` `kindOrphan is not exercised by any fuzz target \(reference kindOrphan or one of its encoder in a Fuzz function\)`
)

// EncodePing frames an empty ping.
func EncodePing() []byte { return []byte{kindPing} }

// EncodePong frames an empty pong.
func EncodePong() []byte { return []byte{kindPong} }

// DecodeFrame dispatches on the kind byte.
func DecodeFrame(b []byte) byte {
	if len(b) == 0 {
		return 0
	}
	switch b[0] {
	case kindPing:
		return kindPing
	case kindPong:
		return kindPong
	}
	return 0
}

package a

import "testing"

// FuzzPing covers kindPing by calling its encoder; kindPong is
// deliberately left out so the analyzer flags it.
func FuzzPing(f *testing.F) {
	f.Add(EncodePing())
	f.Fuzz(func(t *testing.T, b []byte) {
		DecodeFrame(b)
	})
}

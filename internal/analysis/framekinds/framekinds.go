// Package framekinds checks that every wire-frame kind constant is fully
// wired: referenced by an encode function, handled on the decode side,
// and exercised by at least one fuzz target. A frame that can be encoded
// but not decoded (or vice versa), or that ships without fuzz coverage of
// its decoder, is the PR 5 failure class this analyzer exists to block.
//
// The contract is inferred from naming conventions rather than
// annotations, because the wire package already follows them strictly:
//
//   - kind constants: package-level consts matching ^kind[A-Z]
//   - encode side: functions whose lowercased name starts with "encode"
//   - decode side: functions whose lowercased name starts with "decode"
//     or "split" (the envelope splitters DecodeFrame delegates to)
//   - fuzz targets: Fuzz* functions in the package's _test.go files; a
//     kind counts as fuzzed if the target mentions the constant itself
//     or calls one of the encode functions that emits it
//
// Test files are matched syntactically (they are not type-checked), so a
// fuzz target in package transport_test would count too.
package framekinds

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/treedoc/treedoc/internal/analysis"
)

// Analyzer is the framekinds check.
var Analyzer = &analysis.Analyzer{
	Name: "framekinds",
	Doc:  "check that every kind* wire constant is encoded, decoded, and covered by a fuzz target",
	Run:  run,
}

type kindInfo struct {
	name     string
	pos      token.Pos
	encoders map[string]bool // encode functions referencing this kind
	decoded  bool
	fuzzed   bool
}

func run(pass *analysis.Pass) error {
	// Kind constants, in declaration order.
	var kinds []*kindInfo
	byObj := make(map[types.Object]*kindInfo)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, name := range vs.Names {
					if !isKindName(name.Name) {
						continue
					}
					k := &kindInfo{
						name:     name.Name,
						pos:      name.Pos(),
						encoders: make(map[string]bool),
					}
					kinds = append(kinds, k)
					byObj[pass.TypesInfo.Defs[name]] = k
				}
			}
		}
	}
	if len(kinds) == 0 {
		return nil
	}

	// Attribute each use of a kind constant to its enclosing function.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			lower := strings.ToLower(fn.Name.Name)
			isEnc := strings.HasPrefix(lower, "encode")
			isDec := strings.HasPrefix(lower, "decode") || strings.HasPrefix(lower, "split")
			if !isEnc && !isDec {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				k := byObj[pass.TypesInfo.Uses[id]]
				if k == nil {
					return true
				}
				if isEnc {
					k.encoders[fn.Name.Name] = true
				}
				if isDec {
					k.decoded = true
				}
				return true
			})
		}
	}

	// Fuzz coverage: syntactic scan of Fuzz* bodies in test files.
	for _, file := range pass.TestFiles {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !strings.HasPrefix(fn.Name.Name, "Fuzz") {
				continue
			}
			mentioned := make(map[string]bool)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					mentioned[id.Name] = true
				}
				return true
			})
			for _, k := range kinds {
				if k.fuzzed || mentioned[k.name] {
					k.fuzzed = true
					continue
				}
				for enc := range k.encoders {
					if mentioned[enc] {
						k.fuzzed = true
						break
					}
				}
			}
		}
	}

	for _, k := range kinds {
		if len(k.encoders) == 0 {
			pass.Reportf(k.pos, "%s is not referenced by any encode function", k.name)
		}
		if !k.decoded {
			pass.Reportf(k.pos, "%s is not handled by any decode function", k.name)
		}
		if !k.fuzzed {
			pass.Reportf(k.pos, "%s is not exercised by any fuzz target (reference %s or one of %s in a Fuzz function)",
				k.name, k.name, encoderList(k))
		}
	}
	return nil
}

func isKindName(name string) bool {
	if !strings.HasPrefix(name, "kind") || len(name) == len("kind") {
		return false
	}
	c := name[len("kind")]
	return c >= 'A' && c <= 'Z'
}

func encoderList(k *kindInfo) string {
	if len(k.encoders) == 0 {
		return "its encoder"
	}
	names := make([]string, 0, len(k.encoders))
	for enc := range k.encoders {
		names = append(names, enc)
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}

package framekinds_test

import (
	"testing"

	"github.com/treedoc/treedoc/internal/analysis/analysistest"
	"github.com/treedoc/treedoc/internal/analysis/framekinds"
)

func TestFrameKinds(t *testing.T) {
	diags := analysistest.Run(t, framekinds.Analyzer, "testdata/src/a")
	if len(diags) == 0 {
		t.Fatal("positive fixture produced no diagnostics; kind wiring checks are not running")
	}
}

package actoronly_test

import (
	"testing"

	"github.com/treedoc/treedoc/internal/analysis/actoronly"
	"github.com/treedoc/treedoc/internal/analysis/analysistest"
)

func TestActorOnly(t *testing.T) {
	diags := analysistest.Run(t, actoronly.Analyzer, "testdata/src/a")
	if len(diags) == 0 {
		t.Fatal("positive fixture produced no diagnostics; actor-owned handling is not running")
	}
}

// Package actoronly checks that struct fields annotated "actor-owned" are
// only touched from the actor goroutine's call tree.
//
// Field annotation (doc or trailing comment):
//
//	buf *causal.Buffer // actor-owned
//
// Function directives:
//
//	//treedoc:actorloop   the actor goroutine's run loop; the root of the
//	                      allowed call tree
//	//treedoc:actorsafe   runs before the actor starts (constructors,
//	                      recovery) or under an external happens-before
//	//treedoc:actorexec   function literals passed as arguments execute on
//	                      the actor (Engine.ctl)
//
// The allowed set is the static same-package call tree of actorloop and
// actorsafe functions, plus closures passed to actorexec functions, plus
// closures nested in allowed code — except a closure launched by a go
// statement, which is a new goroutine and must re-earn access. A field
// access anywhere else is reported.
//
// Deliberately not proven: that an allowed helper isn't *also* called
// from a non-actor goroutine (the analyzer whitelists the function, not
// the call site), and calls through function values or interfaces. Those
// stay with the race detector; this analyzer makes the cheap mistake —
// reading engine state from an RPC or test hook without ctl — fail vet.
package actoronly

import (
	"go/ast"
	"go/types"

	"github.com/treedoc/treedoc/internal/analysis"
)

// Analyzer is the actoronly check.
var Analyzer = &analysis.Analyzer{
	Name: "actoronly",
	Doc:  "check that fields commented \"actor-owned\" are touched only from the actor loop's call tree",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	owned := collectOwned(pass)
	if len(owned) == 0 {
		return nil
	}

	c := &checker{
		pass:        pass,
		owned:       owned,
		decls:       make(map[*types.Func]*ast.FuncDecl),
		allowedDecl: make(map[*ast.FuncDecl]bool),
		actorExec:   make(map[*types.Func]bool),
		actorLit:    make(map[*ast.FuncLit]bool),
	}
	var funcs []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			funcs = append(funcs, fn)
			obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if obj != nil {
				c.decls[obj] = fn
			}
			if _, ok := analysis.Directive(fn.Doc, "actorloop"); ok {
				c.allowedDecl[fn] = true
			}
			if _, ok := analysis.Directive(fn.Doc, "actorsafe"); ok {
				c.allowedDecl[fn] = true
			}
			if obj != nil {
				if _, ok := analysis.Directive(fn.Doc, "actorexec"); ok {
					c.actorExec[obj] = true
				}
			}
		}
	}

	// Fixpoint: grow the allowed set until no walk discovers a new
	// allowed function or closure. Both sets only ever grow, so this
	// terminates.
	for {
		c.changed = false
		for _, fn := range funcs {
			c.walk(fn.Body, c.allowedDecl[fn], false)
		}
		if !c.changed {
			break
		}
	}

	c.reporting = true
	for _, fn := range funcs {
		c.walk(fn.Body, c.allowedDecl[fn], false)
	}
	return nil
}

func collectOwned(pass *analysis.Pass) map[*types.Var]bool {
	owned := make(map[*types.Var]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if _, ok := analysis.FieldAnnotation(field, "actor-owned"); !ok {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						owned[v] = true
					}
				}
			}
			return true
		})
	}
	return owned
}

type checker struct {
	pass  *analysis.Pass
	owned map[*types.Var]bool
	decls map[*types.Func]*ast.FuncDecl
	// allowedDecl marks functions in the actor/actorsafe call tree;
	// actorLit marks closures that execute on the actor.
	allowedDecl map[*ast.FuncDecl]bool
	actorExec   map[*types.Func]bool
	actorLit    map[*ast.FuncLit]bool
	changed     bool
	reporting   bool
}

// walk visits n with `allowed` saying whether this syntactic context runs
// on the actor (or is actorsafe). goCall marks the callee position of a
// go statement, where a call edge does not extend the allowed tree.
func (c *checker) walk(n ast.Node, allowed, goCall bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.GoStmt:
		// The spawned goroutine is not the actor; argument expressions
		// still evaluate here.
		c.walk(n.Call.Fun, allowed, true)
		for _, arg := range n.Call.Args {
			c.walk(arg, allowed, false)
		}
		return
	case *ast.FuncLit:
		litAllowed := c.actorLit[n] || (allowed && !goCall)
		if litAllowed && !c.actorLit[n] {
			c.actorLit[n] = true
			c.changed = true
		}
		c.walk(n.Body, litAllowed, false)
		return
	case *ast.CallExpr:
		callee := c.callee(n)
		if callee != nil {
			if c.actorExec[callee] {
				// Closures handed to ctl-style dispatchers run on the
				// actor no matter who queues them.
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok && !c.actorLit[lit] {
						c.actorLit[lit] = true
						c.changed = true
					}
				}
			}
			if allowed && !goCall {
				if d, ok := c.decls[callee]; ok && !c.allowedDecl[d] {
					c.allowedDecl[d] = true
					c.changed = true
				}
			}
		}
		c.walk(n.Fun, allowed, goCall)
		for _, arg := range n.Args {
			c.walk(arg, allowed, false)
		}
		return
	case *ast.SelectorExpr:
		if c.reporting && !allowed {
			if sel := c.pass.TypesInfo.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok && c.owned[v] {
					c.pass.Reportf(n.Sel.Pos(),
						"actor-owned field %s touched outside the actor call tree (dispatch via ctl, or mark the path //treedoc:actorsafe)", v.Name())
				}
			}
		}
		c.walk(n.X, allowed, false)
		return
	}
	// Generic traversal for everything else: recurse one level, keeping
	// the context flags.
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n || child == nil {
			return child == n
		}
		c.walk(child, allowed, false)
		return false
	})
}

func (c *checker) callee(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := c.pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

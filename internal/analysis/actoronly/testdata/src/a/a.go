// Package a exercises the actoronly analyzer: a field owned by an actor
// goroutine, the loop's call tree, the ctl dispatch pattern, goroutine
// boundaries inside the loop, and the actorsafe waiver.
package a

type engine struct {
	inbox chan func()
	buf   []int // actor-owned
}

// run is the actor loop; its call tree may touch buf freely.
//
//treedoc:actorloop
func (e *engine) run() {
	for fn := range e.inbox {
		fn()
		e.buf = append(e.buf, 1)
		e.helper()
		go func() {
			_ = e.buf // want `actor-owned field buf touched outside the actor call tree`
		}()
	}
}

// helper is reached only from run, so the fixpoint admits it.
func (e *engine) helper() {
	e.buf = e.buf[:0]
}

// Len runs on the caller's goroutine: touching buf races the loop.
func (e *engine) Len() int {
	return len(e.buf) // want `actor-owned field buf touched outside the actor call tree`
}

// ctl hands fn to the actor loop for execution.
//
//treedoc:actorexec
func (e *engine) ctl(fn func()) {
	e.inbox <- fn
}

// Reset dispatches through ctl, so the closure body runs on the actor.
func (e *engine) Reset() {
	e.ctl(func() {
		e.buf = e.buf[:0]
	})
}

// newEngine touches buf before the actor goroutine exists.
//
//treedoc:actorsafe construction happens before the actor starts
func newEngine() *engine {
	e := &engine{inbox: make(chan func())}
	e.buf = make([]int, 0, 8)
	return e
}

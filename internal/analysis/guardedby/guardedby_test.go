package guardedby_test

import (
	"testing"

	"github.com/treedoc/treedoc/internal/analysis/analysistest"
	"github.com/treedoc/treedoc/internal/analysis/guardedby"
)

// TestGuardedBy checks the fixture's want expectations in both
// directions. The explicit non-empty assertion makes the suite
// load-bearing: deleting the "guarded by" annotation handling from the
// analyzer would silence every diagnostic and fail here, not just
// quietly stop vetting the repo.
func TestGuardedBy(t *testing.T) {
	diags := analysistest.Run(t, guardedby.Analyzer, "testdata/src/a")
	if len(diags) == 0 {
		t.Fatal("positive fixture produced no diagnostics; guarded-by handling is not running")
	}
}

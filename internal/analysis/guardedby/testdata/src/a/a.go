// Package a exercises the guardedby analyzer: a mutex-annotated field,
// locked and unlocked access, branch merging, goroutine boundaries, and
// the holds/unguarded waivers.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Inc holds the lock across the access: clean.
func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Bad reads the field with no lock anywhere in sight.
func (c *counter) Bad() int {
	return c.n // want `access to n without holding mu`
}

// BothBranches locks on every path, so the merge keeps the lock.
func (c *counter) BothBranches(b bool) {
	if b {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	c.n++
	c.mu.Unlock()
}

// OneBranch locks on only one path: after the merge the lock is not
// provably held.
func (c *counter) OneBranch(b bool) {
	if b {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.n++ // want `access to n without holding mu`
}

// LockOrBail's else branch terminates, so the merge still holds the lock.
func (c *counter) LockOrBail(b bool) {
	if b {
		c.mu.Lock()
	} else {
		return
	}
	c.n++
	c.mu.Unlock()
}

// Goroutine closures start with an empty lock set: the spawning
// function's lock does not protect them.
func (c *counter) Goroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `access to n without holding mu`
	}()
}

// incLocked documents its caller's obligation instead of locking.
//
//treedoc:holds mu
func (c *counter) incLocked() {
	c.n++
}

// newCounter touches the field before the value is shared.
//
//treedoc:unguarded the counter is not shared during construction
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

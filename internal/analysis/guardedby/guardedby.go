// Package guardedby checks that struct fields annotated "guarded by <mu>"
// are only accessed while that mutex is held on the syntactic path.
//
// The annotation lives in the field's doc or trailing comment:
//
//	conns map[string]*conn // guarded by mu
//
// and names a mutex by its final identifier ("mu" matches h.mu.Lock(),
// s.mu.Lock(), or a plain mu.Lock()). The check is flow-insensitive
// across calls and name-based across instances: it proves "every access
// sits under a Lock/RLock of a mutex with that name in the same function,
// or in a function that declares //treedoc:holds <mu>", not that the
// runtime lock instance is the right one. Aliased mutexes, locks taken in
// a caller without the holds directive, and cross-goroutine handoffs are
// out of scope — the race detector owns those; this analyzer catches the
// plain forgotten-lock edit cheaply and deterministically.
//
// Function-level directives:
//
//	//treedoc:holds mu        caller guarantees mu is held on entry
//	//treedoc:unguarded why   pre-publication/externally-synchronized code
package guardedby

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/treedoc/treedoc/internal/analysis"
)

// Analyzer is the guardedby check.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "check that fields commented \"guarded by <mu>\" are accessed with the mutex held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	c := &checker{pass: pass, guarded: guarded}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, skip := analysis.Directive(fn.Doc, "unguarded"); skip {
				continue
			}
			held := make(lockSet)
			if names, ok := analysis.Directive(fn.Doc, "holds"); ok {
				for _, name := range strings.Fields(names) {
					held[lastName(name)] = true
				}
			}
			c.block(fn.Body, held)
		}
	}
	return nil
}

// collectGuarded maps each annotated field object to the bare name of its
// guarding mutex ("hub.mu" and "mu" both normalize to "mu").
func collectGuarded(pass *analysis.Pass) map[*types.Var]string {
	guarded := make(map[*types.Var]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := analysis.FieldAnnotation(field, "guarded by")
				if !ok || mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guarded[v] = lastName(mu)
					}
				}
			}
			return true
		})
	}
	return guarded
}

// lockSet is the set of mutex names held at a program point.
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// intersect drops names not held in o.
func (s lockSet) intersect(o lockSet) {
	for k := range s {
		if !o[k] {
			delete(s, k)
		}
	}
}

type checker struct {
	pass    *analysis.Pass
	guarded map[*types.Var]string
}

// block walks statements in order, threading lock acquire/release effects
// through held.
func (c *checker) block(b *ast.BlockStmt, held lockSet) {
	for _, s := range b.List {
		c.stmt(s, held)
	}
}

func (c *checker) stmt(s ast.Stmt, held lockSet) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.block(s, held)
	case *ast.ExprStmt:
		if mu, op, ok := lockCall(s.X); ok {
			// Check the call's own subexpressions first (the receiver
			// chain is never a guarded field access), then apply.
			if op == acquire {
				held[mu] = true
			} else {
				delete(held, mu)
			}
			return
		}
		c.expr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock releases at function exit, so it does not
		// change what is held on the remaining path. Deferred closures
		// are checked against the current set: in this codebase they run
		// while the function's locks are still pending release.
		if _, _, ok := lockCall(s.Call); ok {
			return
		}
		c.expr(s.Call, held)
	case *ast.GoStmt:
		// The goroutine runs concurrently: whatever is held here is not
		// held there.
		for _, arg := range s.Call.Args {
			if lit, ok := arg.(*ast.FuncLit); ok {
				c.block(lit.Body, make(lockSet))
			} else {
				c.expr(arg, held)
			}
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.block(lit.Body, make(lockSet))
		} else {
			c.expr(s.Call.Fun, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.expr(s.Cond, held)
		thenHeld := held.clone()
		c.block(s.Body, thenHeld)
		elseHeld := held.clone()
		if s.Else != nil {
			c.stmt(s.Else, elseHeld)
		}
		// Fall-through state: the intersection of the exit states of the
		// branches that can fall through — a branch that terminates
		// (returns, breaks, panics) contributes nothing, and with no else
		// the implicit branch falls through with the entry state. A lock
		// acquired on every falling-through path is held afterwards.
		var states []lockSet
		if !terminates(s.Body) {
			states = append(states, thenHeld)
		}
		if s.Else == nil || !stmtTerminates(s.Else) {
			states = append(states, elseHeld)
		}
		if len(states) > 0 {
			merged := states[0]
			for _, st := range states[1:] {
				merged.intersect(st)
			}
			for mu := range held {
				if !merged[mu] {
					delete(held, mu)
				}
			}
			for mu := range merged {
				held[mu] = true
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Cond != nil {
			c.expr(s.Cond, held)
		}
		if s.Post != nil {
			c.stmt(s.Post, held.clone())
		}
		c.block(s.Body, held.clone())
	case *ast.RangeStmt:
		c.expr(s.X, held)
		c.block(s.Body, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			c.expr(s.Tag, held)
		}
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			branch := held.clone()
			for _, e := range cc.List {
				c.expr(e, branch)
			}
			for _, st := range cc.Body {
				c.stmt(st, branch)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, held)
		}
		c.stmt(s.Assign, held)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			branch := held.clone()
			for _, st := range cc.Body {
				c.stmt(st, branch)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			branch := held.clone()
			if cc.Comm != nil {
				c.stmt(cc.Comm, branch)
			}
			for _, st := range cc.Body {
				c.stmt(st, branch)
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, held)
		}
		for _, e := range s.Lhs {
			c.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.expr(e, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.expr(s.X, held)
	case *ast.SendStmt:
		c.expr(s.Chan, held)
		c.expr(s.Value, held)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held)
	}
}

// expr reports guarded-field selections reached without their mutex.
// Closures encountered here inherit the current lock set: the dominant
// patterns are immediate invocation and callbacks run under the caller's
// lock (publishShards-style); a closure stashed for later concurrent use
// must be caught by review or the race detector.
func (c *checker) expr(e ast.Expr, held lockSet) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.block(n.Body, held.clone())
			return false
		case *ast.SelectorExpr:
			sel := c.pass.TypesInfo.Selections[n]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			v, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			if mu, guarded := c.guarded[v]; guarded && !held[mu] {
				c.pass.Reportf(n.Sel.Pos(), "access to %s without holding %s", v.Name(), mu)
			}
		}
		return true
	})
}

type lockOp int

const (
	acquire lockOp = iota
	release
)

// lockCall recognizes <expr>.Lock/RLock/Unlock/RUnlock() and returns the
// bare name of the mutex expression.
func lockCall(e ast.Expr) (mu string, op lockOp, ok bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = acquire
	case "Unlock", "RUnlock":
		op = release
	default:
		return "", 0, false
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		return x.Name, op, true
	case *ast.SelectorExpr:
		return x.Sel.Name, op, true
	}
	return "", 0, false
}

func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

// stmtTerminates reports whether control cannot fall out of s — enough
// precision for merging if/else lock states.
func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s)
	}
	return false
}

func lastName(dotted string) string {
	if i := strings.LastIndexByte(dotted, '.'); i >= 0 {
		return dotted[i+1:]
	}
	return dotted
}

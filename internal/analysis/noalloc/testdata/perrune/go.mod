module fixture.example/perrune

go 1.22

// Package perrune re-creates the per-rune heap-string bug the intern
// table was built to kill: converting each typed rune with string(r)
// allocates once per keystroke. The noalloc annotation must catch the
// conversion, and the waived fallback must stay silent.
package perrune

var ascii [128]string

func init() {
	for i := range ascii {
		ascii[i] = string(rune(i))
	}
}

// Atom interns ASCII runes but falls back to a fresh conversion — the
// allocation this fixture exists to catch.
//
//treedoc:noalloc
func Atom(r rune) string {
	if r >= 0 && r < 128 {
		return ascii[r]
	}
	return string(r) // want `Atom is //treedoc:noalloc but string\(r\) escapes to heap \(add //treedoc:escape <reason> if intended\)`
}

// Waived makes the same conversion but declares it: the line-scoped
// waiver keeps the analyzer silent.
//
//treedoc:noalloc
func Waived(r rune) string {
	return string(r) //treedoc:escape the fallback conversion is the contract here
}

// Clean allocates nothing; the annotation holds without help.
//
//treedoc:noalloc
func Clean(r rune) bool {
	return r < 128
}

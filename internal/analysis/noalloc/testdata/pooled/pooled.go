// Package pooled contrasts the pooled append-style encoder the hot path
// requires with the un-pooled variant that allocates a fresh buffer per
// call: the noalloc annotation must reject the latter.
package pooled

import "encoding/binary"

// AppendEncode appends the encoding to a caller-managed buffer; no heap
// allocation of its own.
//
//treedoc:noalloc
func AppendEncode(dst []byte, vals []uint64) []byte {
	for _, v := range vals {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], v)
		dst = append(dst, tmp[:n]...)
	}
	return dst
}

// Encode is the un-pooled variant: the fresh result buffer escapes.
//
//treedoc:noalloc
func Encode(vals []uint64) []byte {
	out := make([]byte, 0, binary.MaxVarintLen64*len(vals)) // want `Encode is //treedoc:noalloc but make\(.*\) escapes to heap`
	return AppendEncode(out, vals)
}

module fixture.example/pooled

go 1.22

// Package noalloc verifies that functions annotated //treedoc:noalloc
// compile without heap allocations, by running the compiler's escape
// analysis (go build -gcflags=-m) over the package and diffing its
// "escapes to heap" / "moved to heap" diagnostics against the annotation
// set. The bench gate catches an un-pooled encoder statistically and
// after the fact; this check catches it deterministically at vet time,
// from the compiler's own proof.
//
// Escapes inside an annotated function are tolerated in two cases:
//
//   - error construction: diagnostics positioned inside a fmt.Errorf,
//     fmt.Sprintf, or errors.New call are the cold failure path, not the
//     hot path the annotation protects;
//   - explicit waivers: a "//treedoc:escape <reason>" comment waives
//     diagnostics on its own line (trailing form) or the next line
//     (standalone form) — the intended exact-size result copies in
//     storage.Encode and transport.EncodeOps, and the interning
//     fallbacks in intern.Rune/Bytes.
//
// Everything else is reported. The waiver is line-scoped, so a new
// allocation on any other line of the function — making pooled scratch
// escape, dropping a stack buffer, reintroducing a per-rune string
// conversion — fails vet. Deliberately not proven: allocation-freedom of
// callees (annotate them too; non-inlined calls are opaque to -m) and
// anything the compiler of a future Go release decides differently —
// this check rides the toolchain's escape analysis, it does not reimplement it.
//
// Running the compiler requires the package to be buildable from the
// module root; the analyzer shells out with the module root as working
// directory. The Go build cache replays diagnostics on cache hits, so
// repeat runs cost a cache probe, not a rebuild.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"github.com/treedoc/treedoc/internal/analysis"
)

// Analyzer is the noalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "check that //treedoc:noalloc functions compile without heap escapes",
	Run:  run,
}

// span is one annotated function's extent in a file, with the line
// ranges of its error-construction calls.
type span struct {
	name        string
	start, end  int
	exemptLines map[int]bool
}

func run(pass *analysis.Pass) error {
	// Annotated functions and waiver lines, keyed by absolute filename.
	spans := make(map[string][]span)
	waived := make(map[string]map[int]bool)
	total := 0
	for _, file := range pass.Files {
		pos := pass.Fset.Position(file.Pos())
		filename := pos.Filename
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := analysis.Directive(fn.Doc, "noalloc"); !ok {
				continue
			}
			s := span{
				name:        fn.Name.Name,
				start:       pass.Fset.Position(fn.Pos()).Line,
				end:         pass.Fset.Position(fn.End()).Line,
				exemptLines: errorCallLines(pass.Fset, fn),
			}
			spans[filename] = append(spans[filename], s)
			total++
		}
		w, err := waiverLines(pass.Fset, file, filename)
		if err != nil {
			return err
		}
		if len(w) > 0 {
			waived[filename] = w
		}
	}
	if total == 0 {
		return nil
	}

	diags, err := escapeDiagnostics(pass)
	if err != nil {
		return err
	}
	for _, d := range diags {
		fns := spans[d.file]
		var fn *span
		for i := range fns {
			if d.line >= fns[i].start && d.line <= fns[i].end {
				fn = &fns[i]
				break
			}
		}
		if fn == nil || fn.exemptLines[d.line] || waived[d.file][d.line] {
			continue
		}
		pass.ReportAt(token.Position{Filename: d.file, Line: d.line, Column: d.col},
			"%s is //treedoc:noalloc but %s (add //treedoc:escape <reason> if intended)", fn.name, d.msg)
	}
	return nil
}

// errorCallLines returns the lines covered by fmt.Errorf/fmt.Sprintf/
// errors.New calls in fn: the cold error path, exempt from the noalloc
// contract.
func errorCallLines(fset *token.FileSet, fn *ast.FuncDecl) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		name := pkg.Name + "." + sel.Sel.Name
		switch name {
		case "fmt.Errorf", "fmt.Sprintf", "errors.New":
			for l := fset.Position(call.Pos()).Line; l <= fset.Position(call.End()).Line; l++ {
				lines[l] = true
			}
		}
		return true
	})
	return lines
}

// waiverLines maps each //treedoc:escape comment to the line it waives:
// its own line when code precedes it (trailing form), the next line when
// the comment stands alone.
func waiverLines(fset *token.FileSet, file *ast.File, filename string) (map[int]bool, error) {
	var src []string
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//treedoc:escape") {
				continue
			}
			pos := fset.Position(c.Pos())
			if src == nil {
				data, err := os.ReadFile(filename)
				if err != nil {
					return nil, fmt.Errorf("noalloc: %w", err)
				}
				src = strings.Split(string(data), "\n")
			}
			trailing := false
			if pos.Line-1 < len(src) {
				before := src[pos.Line-1][:pos.Column-1]
				trailing = strings.TrimSpace(before) != ""
			}
			if trailing {
				lines[pos.Line] = true
			} else {
				lines[pos.Line+1] = true
			}
		}
	}
	return lines, nil
}

type escapeDiag struct {
	file      string
	line, col int
	msg       string
}

var diagRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// escapeDiagnostics compiles the package with -gcflags=-m from the
// module root and returns the heap-escape diagnostics with filenames
// resolved to absolute paths.
func escapeDiagnostics(pass *analysis.Pass) ([]escapeDiag, error) {
	rel, err := filepath.Rel(pass.ModRoot, pass.Dir)
	if err != nil {
		return nil, fmt.Errorf("noalloc: %w", err)
	}
	arg := "."
	if rel != "." {
		arg = "./" + filepath.ToSlash(rel)
	}
	cmd := exec.Command("go", "build", "-gcflags=-m", arg)
	cmd.Dir = pass.ModRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("noalloc: go build -gcflags=-m %s: %w\n%s", arg, err, out)
	}
	var diags []escapeDiag
	for _, line := range strings.Split(string(out), "\n") {
		m := diagRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.HasSuffix(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(pass.ModRoot, file)
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		diags = append(diags, escapeDiag{file: filepath.Clean(file), line: ln, col: col, msg: msg})
	}
	return diags, nil
}

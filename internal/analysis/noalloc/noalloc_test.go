package noalloc_test

import (
	"testing"

	"github.com/treedoc/treedoc/internal/analysis/analysistest"
	"github.com/treedoc/treedoc/internal/analysis/noalloc"
)

// TestPerRune re-creates the per-rune heap-string regression: a
// string(r) conversion inside a //treedoc:noalloc function must be
// reported, the //treedoc:escape waiver must silence its line, and an
// allocation-free function must stay clean.
func TestPerRune(t *testing.T) {
	diags := analysistest.Run(t, noalloc.Analyzer, "testdata/perrune")
	if len(diags) == 0 {
		t.Fatal("per-rune string conversion was not caught; the compiler escape pass is not wired")
	}
}

// TestPooledEncoder proves the annotation is load-bearing for the wire
// encoders: the pooled append-style shape passes, and un-pooling —
// allocating a fresh result buffer per call — fails vet.
func TestPooledEncoder(t *testing.T) {
	diags := analysistest.Run(t, noalloc.Analyzer, "testdata/pooled")
	if len(diags) == 0 {
		t.Fatal("un-pooled encoder was not caught; the compiler escape pass is not wired")
	}
}

// Package analysistest runs an analyzer over a fixture directory and
// checks its diagnostics against // want "regex" comments in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest on the
// in-repo analysis framework.
//
// A fixture directory is one package. A line expecting diagnostics
// carries a trailing comment:
//
//	h.conns["x"] = c // want `access to conns without holding mu`
//
// Each want pattern must be matched by a diagnostic reported on that
// file and line, and every diagnostic must be claimed by a want — any
// mismatch in either direction fails the test. Fixtures with their own
// go.mod (the noalloc suite, which shells out to the compiler) are
// treated as standalone modules; plain fixture directories type-check
// against the enclosing repo's module.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/treedoc/treedoc/internal/analysis"
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run applies the analyzer to the package in dir and reports any
// divergence from the fixture's want comments. It returns the
// diagnostics for tests that assert beyond positions.
func Run(t *testing.T, a *analysis.Analyzer, dir string) []analysis.Diagnostic {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	modRoot, importPath := fixtureModule(t, abs)

	loader := analysis.NewLoader()
	pkg, err := loader.Load(abs, importPath, modRoot)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	expects := collectWants(t, pkg)
	for i := range diags {
		d := &diags[i]
		claimed := false
		for _, e := range expects {
			if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("no diagnostic at %s:%d matching %q", filepath.Base(e.file), e.line, e.raw)
		}
	}
	return diags
}

// fixtureModule decides the module context: a go.mod in the fixture makes
// it standalone; otherwise the enclosing repo's module root is used.
func fixtureModule(t *testing.T, abs string) (modRoot, importPath string) {
	t.Helper()
	if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
		return abs, "fixture.example/" + filepath.Base(abs)
	}
	dir := abs
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, "fixture.example/" + filepath.Base(abs)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("no go.mod above fixture %s", abs)
		}
		dir = parent
	}
}

var wantRE = regexp.MustCompile("want\\s+((?:[`\"](?:[^`\"]|\\\\.)*[`\"]\\s*)+)")
var patRE = regexp.MustCompile("[`\"]((?:[^`\"]|\\\\.)*)[`\"]")

// collectWants extracts // want expectations from every fixture file,
// non-test and test alike.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var expects []*expectation
	files := make([]*ast.File, 0, len(pkg.Files)+len(pkg.TestFiles))
	files = append(files, pkg.Files...)
	files = append(files, pkg.TestFiles...)
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") && !strings.HasPrefix(text, "want\t") {
					continue
				}
				m := wantRE.FindStringSubmatch(text)
				if m == nil {
					t.Fatalf("malformed want comment: %s", c.Text)
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pm := range patRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", pm[1], err)
					}
					expects = append(expects, &expectation{
						file: pos.Filename,
						line: pos.Line,
						re:   re,
						raw:  pm[1],
					})
				}
			}
		}
	}
	return expects
}

// Position formats a token.Position relative to dir, for failure output.
func Position(dir string, pos token.Position) string {
	rel, err := filepath.Rel(dir, pos.Filename)
	if err != nil {
		rel = pos.Filename
	}
	return fmt.Sprintf("%s:%d:%d", rel, pos.Line, pos.Column)
}

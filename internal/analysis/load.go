package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one directory of Go source, parsed and type-checked, ready
// to hand to analyzers.
type Package struct {
	Fset      *token.FileSet
	Files     []*ast.File
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
	// Dir is the package directory; ImportPath the path used to
	// type-check it; ModRoot the module root that go-build-driven
	// analyzers use as their working directory.
	Dir        string
	ImportPath string
	ModRoot    string
}

// Loader parses and type-checks packages. One Loader shares a FileSet and
// a source importer across every Load call, so dependencies type-checked
// for one package (internal/transport pulls in ident, vclock, core, ...)
// are reused by the next.
//
// Imports resolve through the standard library's source importer, which
// locates module dependencies relative to the process working directory —
// so the process must be running inside the module being analyzed.
// treedoc-vet enforces that at startup.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a Loader with a fresh FileSet and source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil),
	}
}

// Fset exposes the shared FileSet (fixture runners resolve expectation
// positions against it).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses every .go file in dir and type-checks the non-test files as
// importPath. Test files (*_test.go, both in-package and external) are
// parsed but not type-checked: they land in Package.TestFiles for
// analyzers that only need their syntax. Subdirectories are not visited.
func (l *Loader) Load(dir, importPath, modRoot string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	pkg := &Package{
		Fset:       l.fset,
		Dir:        dir,
		ImportPath: importPath,
		ModRoot:    modRoot,
	}
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

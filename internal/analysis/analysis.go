// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The x/tools module is deliberately not imported — the repository builds
// offline from the standard library alone — so this package provides just
// the surface the treedoc-vet analyzers need: parsed syntax (including
// test files for the fuzz-coverage checks), full type information for the
// non-test package, position-addressed diagnostics, and a loader
// (load.go) that resolves imports through the stdlib source importer.
// Should the repo ever vendor x/tools, each analyzer's Run function ports
// over mechanically: the Pass fields mirror analysis.Pass by name.
//
// The five analyzers under this package machine-check invariants the
// repository otherwise states only in prose (docs/ARCHITECTURE.md §9–§11):
//
//   - noalloc: //treedoc:noalloc functions compile without heap escapes
//   - guardedby: fields commented "guarded by <mu>" are accessed with the
//     mutex held on the syntactic path
//   - actoronly: fields commented "actor-owned" are touched only from the
//     actor loop's call tree
//   - framekinds: every kind* wire constant is encoded, decoded and fuzzed
//   - errwrap: exported functions don't leak other packages' bare errors
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters. It
	// must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by treedoc-vet -help.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	// A non-nil error aborts the whole vet run (a broken analyzer or an
	// unbuildable package), which is distinct from reporting diagnostics.
	Run func(pass *Pass) error
}

// Pass carries one package's syntax and types to an Analyzer, mirroring
// x/tools' analysis.Pass by field name where the concepts coincide.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the type-checked, non-test syntax of the package.
	Files []*ast.File
	// TestFiles is the parsed (not type-checked) syntax of the package's
	// _test.go files, in-package and external alike. Analyzers that only
	// need syntactic presence — framekinds' fuzz-target check — read it;
	// nothing here resolves identifiers in test files.
	TestFiles []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package directory on disk; ImportPath its import path
	// ("." for ad-hoc fixture directories). ModRoot is the enclosing
	// module root, the working directory for go-build-driven analyzers.
	Dir        string
	ImportPath string
	ModRoot    string

	diagnostics []Diagnostic
}

// Diagnostic is one finding, addressed to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a finding at an already-resolved file position, for
// analyzers whose evidence comes from outside the fileset (noalloc's
// compiler diagnostics).
func (p *Pass) ReportAt(pos token.Position, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies one analyzer to a loaded package and returns its findings
// sorted by position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		TestFiles:  pkg.TestFiles,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		Dir:        pkg.Dir,
		ImportPath: pkg.ImportPath,
		ModRoot:    pkg.ModRoot,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	sort.Slice(pass.diagnostics, func(i, j int) bool {
		di, dj := pass.diagnostics[i].Pos, pass.diagnostics[j].Pos
		if di.Filename != dj.Filename {
			return di.Filename < dj.Filename
		}
		if di.Line != dj.Line {
			return di.Line < dj.Line
		}
		return di.Column < dj.Column
	})
	return pass.diagnostics, nil
}

package transport

// Chunked snapshot catch-up: a document snapshot that outgrows a single
// kindSnap frame (MaxSnapFrameSize) is sliced into kindSnapChunk frames
// and reassembled at the receiver, then installed exactly as if one frame
// had arrived. Chunks are consumed strictly in offset order — links
// deliver frames in order, and a chunk lost to a full queue voids the
// reassembly, which restarts when the sender re-offers the snapshot after
// snapResendAfter.

import (
	"time"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// Chunking knobs. Variables rather than constants so the chunked path is
// testable without 64 MiB documents; production values never change.
var (
	// snapChunkThreshold is the snapshot size above which sendSnapshot
	// switches to kindSnapChunk frames: the largest payload that, with
	// frame headers, still fits one kindSnap frame.
	snapChunkThreshold = MaxSnapFrameSize - 4096
	// snapChunkPayload is the data carried per chunk frame.
	snapChunkPayload = 32 << 20
)

// snapAssembly is one in-progress chunked-snapshot reassembly.
type snapAssembly struct {
	version vclock.VC
	total   uint64
	buf     []byte
	// lastChunk is refreshed on every accepted chunk: the GC must void
	// stalled assemblies, not slow ones — a multi-gigabyte transfer may
	// legitimately take far longer than the TTL end to end.
	lastChunk time.Time
}

// handleSnapChunk consumes one chunk. Out-of-sequence chunks (a different
// snapshot version, a mismatched total, or a gap from a dropped frame)
// void the assembly; only a chunk at offset 0 starts a new one. The
// buffer grows with the data actually received, so a hostile total
// cannot force a large allocation up front.
func (e *Engine) handleSnapChunk(f *SnapChunkFrame) {
	if e.snap == nil || f.From == e.site {
		return
	}
	if e.buf.Clock().Dominates(f.Version) {
		delete(e.snapAsm, f.From) // already covered: duplicate or stale
		return
	}
	asm := e.snapAsm[f.From]
	if asm == nil || !vcEqual(asm.version, f.Version) || asm.total != f.Total || uint64(len(asm.buf)) != f.Offset {
		delete(e.snapAsm, f.From)
		if f.Offset != 0 {
			return
		}
		if e.snapAsm == nil {
			e.snapAsm = make(map[ident.SiteID]*snapAssembly)
		}
		asm = &snapAssembly{version: f.Version.Clone(), total: f.Total}
		e.snapAsm[f.From] = asm
	}
	asm.buf = append(asm.buf, f.Data...)
	asm.lastChunk = time.Now()
	if uint64(len(asm.buf)) >= asm.total {
		delete(e.snapAsm, f.From)
		e.handleSnap(&SnapFrame{From: f.From, Version: asm.version, Data: asm.buf})
	}
}

// gcSnapAssemblies drops reassemblies that stalled (their sender stopped,
// or a chunk was lost and no re-offer arrived), bounding the memory
// partial snapshots can pin.
func (e *Engine) gcSnapAssemblies() {
	for s, asm := range e.snapAsm {
		if time.Since(asm.lastChunk) > snapAssemblyTTL {
			delete(e.snapAsm, s)
		}
	}
}

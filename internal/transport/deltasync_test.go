package transport

// Delta anti-entropy suite: digest suppression goes quiet on idle
// documents without giving up loss healing, and batched multi-document
// digests interoperate with peers that only speak kindSyncReq. Run under
// `go test -race`: the suppression state lives next to every other peer
// field the actor goroutine owns.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/treedoc/treedoc/internal/ident"
)

// TestDigestSuppressionIdle converges a pair and then watches an idle
// window: ticks must be suppressed instead of sent, except for the slow
// keepalive that bounds loss healing.
func TestDigestSuppressionIdle(t *testing.T) {
	const syncEvery = 10 * time.Millisecond
	r1, r2 := newTestReplica(t, 1), newTestReplica(t, 2)
	e1, err := NewEngine(1, r1, WithSyncInterval(syncEvery))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(2, r2, WithSyncInterval(syncEvery))
	if err != nil {
		t.Fatal(err)
	}
	defer stopAll(e1, e2)
	a, b := ChanPair(64)
	e1.Connect(a)
	e2.Connect(b)

	for i := 0; i < 20; i++ {
		if err := e1.Broadcast(r1.insertAt(t, r1.len(), fmt.Sprintf("x%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, []*Engine{e1, e2}, 10*time.Second)

	// Let the post-convergence digests settle (each side announces its
	// final clock once), then measure a pure idle window.
	time.Sleep(5 * syncEvery)
	sent0 := e1.DigestsSent() + e2.DigestsSent()
	supp0 := e1.DigestsSuppressed() + e2.DigestsSuppressed()

	const idle = 50 * syncEvery // 5 keepalive periods
	time.Sleep(idle)

	sent := e1.DigestsSent() + e2.DigestsSent() - sent0
	supp := e1.DigestsSuppressed() + e2.DigestsSuppressed() - supp0
	// Two engines ticking for 5 keepalive periods: ~10 keepalive sends
	// expected. Anything near the unsuppressed rate (~100 sends) means
	// suppression is not engaging; zero suppressions means the same.
	if supp == 0 {
		t.Fatalf("idle window suppressed no digests (sent %d)", sent)
	}
	if sent > 30 {
		t.Fatalf("idle window sent %d digests (suppressed %d): suppression not engaging", sent, supp)
	}
	if supp < sent {
		t.Fatalf("idle window sent more digests (%d) than it suppressed (%d)", sent, supp)
	}
}

// dropOnce wraps a Link and, once armed, silently drops the next frame of
// the given kind sent through it — an injected single-frame loss.
type dropOnce struct {
	Link
	kind byte

	mu    sync.Mutex
	armed bool
}

func (d *dropOnce) arm() {
	d.mu.Lock()
	d.armed = true
	d.mu.Unlock()
}

func (d *dropOnce) Send(frame []byte) error {
	d.mu.Lock()
	drop := d.armed && len(frame) > 0 && frame[0] == d.kind
	if drop {
		d.armed = false
	}
	d.mu.Unlock()
	if drop {
		return nil
	}
	return d.Link.Send(frame)
}

// TestDigestSuppressionHealsDrop injects the loss of an operations frame
// and asserts anti-entropy still heals it promptly: the victim's clock
// cannot dominate the frontier it keeps hearing, so its digests are never
// suppressed and the sender's indexed replay closes the gap.
func TestDigestSuppressionHealsDrop(t *testing.T) {
	const syncEvery = 10 * time.Millisecond
	r1, r2 := newTestReplica(t, 1), newTestReplica(t, 2)
	e1, err := NewEngine(1, r1, WithSyncInterval(syncEvery))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(2, r2, WithSyncInterval(syncEvery))
	if err != nil {
		t.Fatal(err)
	}
	defer stopAll(e1, e2)
	a, b := ChanPair(64)
	// Frames from e1 toward e2 lose one ops frame once the dropper arms.
	dropper := &dropOnce{Link: a, kind: kindOps}
	e1.Connect(dropper)
	e2.Connect(b)

	// Converge once so both sides have announced clocks and suppression
	// has had the chance to arm.
	if err := e1.Broadcast(r1.insertAt(t, 0, "seed")); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, []*Engine{e1, e2}, 10*time.Second)

	// The drop must land on the next broadcast's frame, but a duplicate
	// replay of the seed (its flush racing e2's connect digest) can still
	// sit in the writer queue; dropping that duplicate heals for free and
	// proves nothing. Drain, and retry if an attempt's drop was eaten by
	// a queued duplicate.
	healed := false
	for attempt := 0; attempt < 5 && !healed; attempt++ {
		time.Sleep(5 * syncEvery)
		replay0 := e1.ReplayOps()
		// This broadcast's ops frame is dropped on the floor: e2 can only
		// learn it through a digest answer.
		dropper.arm()
		if err := e1.Broadcast(r1.insertAt(t, r1.len(), fmt.Sprintf("lost%d", attempt))); err != nil {
			t.Fatal(err)
		}
		// The healing bound is one keepalive period plus the sync tick
		// that answers; 10s is generous slack over the 100ms keepalive.
		waitConverged(t, []*Engine{e1, e2}, 10*time.Second)
		checkAll(t, r1, r2)
		healed = e1.ReplayOps() > replay0
	}
	if !healed {
		t.Fatal("no attempt healed through a digest answer: drop injection never took")
	}
}

// TestSyncBatchInterop is the mixed-version check: a Session client whose
// digests ride kindSyncBatch frames converges with per-document DialDoc
// clients that only ever speak enveloped kindSyncReq, through a hub that
// splits every batch back into the per-document path.
func TestSyncBatchInterop(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	addr := hub.Addr().String()
	docs := []string{"alpha", "beta", "gamma"}

	sess := DialSession(addr)
	defer sess.Close()

	type party struct {
		rep *testReplica
		eng *Engine
	}
	var batched, legacy []party
	for i, doc := range docs {
		// Batched side: attached through the shared session.
		link, err := sess.Attach(doc)
		if err != nil {
			t.Fatal(err)
		}
		site := ident.SiteID(2*i + 1)
		rep := newTestReplica(t, site)
		eng, err := NewEngine(site, rep, WithSyncInterval(15*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		eng.Connect(link)
		batched = append(batched, party{rep, eng})

		// Legacy side: a dedicated doc-aware connection per document,
		// which never sends nor receives a kindSyncBatch frame.
		llink, err := DialDoc(addr, doc)
		if err != nil {
			t.Fatal(err)
		}
		lsite := ident.SiteID(2*i + 2)
		lrep := newTestReplica(t, lsite)
		leng, err := NewEngine(lsite, lrep, WithSyncInterval(15*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		leng.Connect(llink)
		legacy = append(legacy, party{lrep, leng})
	}
	defer func() {
		for i := range batched {
			batched[i].eng.Stop()
			legacy[i].eng.Stop()
		}
	}()

	for round := 0; round < 20; round++ {
		for i := range docs {
			if err := batched[i].eng.Broadcast(batched[i].rep.insertAt(t, batched[i].rep.len(), fmt.Sprintf("b%d.%d ", i, round))); err != nil {
				t.Fatal(err)
			}
			if err := legacy[i].eng.Broadcast(legacy[i].rep.insertAt(t, 0, fmt.Sprintf("l%d.%d ", i, round))); err != nil {
				t.Fatal(err)
			}
		}
		// Spread rounds across several sync windows so per-doc digests
		// actually coalesce into batches instead of one warm-up burst.
		time.Sleep(5 * time.Millisecond)
	}

	for i := range docs {
		waitConverged(t, []*Engine{batched[i].eng, legacy[i].eng}, 30*time.Second)
		checkAll(t, batched[i].rep, legacy[i].rep)
	}

	// The batching must actually have happened: the hub split at least one
	// multi-entry frame, and every batched entry is a per-doc digest.
	if hub.SyncBatchFrames() == 0 {
		t.Fatal("session never coalesced digests into a kindSyncBatch frame")
	}
	if hub.SyncBatchEntries() < hub.SyncBatchFrames() {
		t.Fatalf("batch counters inconsistent: %d frames, %d entries",
			hub.SyncBatchFrames(), hub.SyncBatchEntries())
	}
}

package transport

// Engine-coordinated flatten: the commitment protocol of internal/commit
// (two-phase commit with presumed abort, Section 4.2.1 of the Treedoc
// paper) ported from the discrete-event simulator onto live links. The
// same Coordinator and Participant state machines run here, driven from
// the engine's actor loop instead of the simnet event loop:
//
//   - Proposals, votes and abort decisions travel as commitment frames
//     (kindFlatPropose / kindFlatVote / kindFlatDecision). They are
//     broadcast to every peer — a relay hub fans them like any frame —
//     and filtered by site id at the receiver; unlike operations they are
//     not retained for anti-entropy.
//
//   - The committed flatten itself does NOT travel as a decision frame.
//     The coordinator executes it locally (Flattener.FlattenOp) and
//     broadcasts it as a stamped OpFlatten operation through the ordinary
//     causal stream. That single choice buys the ordering the paper's
//     Section 4.2.2 ("update of a non-flattened tree") requires: any edit
//     a replica issues after applying the flatten carries a vector clock
//     that covers the flatten op, so causal delivery replays the flatten
//     first at every other replica — and the durable log replays it at
//     the right point on restart.
//
//   - A Yes vote freezes the subtree against local edits
//     (Flattener.LockRegion) until the decision: the abort frame, or the
//     OpFlatten delivery for a commit. Votes are evaluated with the
//     region already frozen, so a racing local edit either lands before
//     the freeze (and is seen by the vote) or is rejected with
//     ErrRegionLocked.
//
//   - In-flight local edits force a No vote: an operation the caller has
//     applied but the actor has not yet stamped is invisible to the edit
//     log, so a participant votes Yes only when the replica's applied
//     version vector equals its delivered clock exactly.
//
// What the port does NOT give: tolerance of a coordinator that crashes
// after collecting votes. A participant whose Yes-vote lock gets no
// decision re-sends its vote each deadline; a live coordinator answers
// from its decision memory (presumed abort for forgotten transactions),
// but a permanently dead coordinator leaves the region frozen — the
// classic 2PC blocking case, which the paper also concedes ("any
// distributed commitment protocol from the literature will do"; the
// fault-tolerant variant is deferred to Gray & Lamport). Stopping the
// engine releases its own locks.
//
// Membership: participants are the sites this engine has seen frames
// from within a recency window (plus itself). The protocol is safe for
// any replica that receives the proposal — every receiver votes, and a
// No from any site aborts — but a replica partitioned away during the
// whole round neither votes nor blocks the commit; if it was editing the
// flattened region concurrently, the commitment it never saw cannot
// protect it. The paper's protocol has the same requirement ("the
// operation succeeds only if all sites vote Yes"): flatten assumes known,
// connected membership, and this port approximates it by recency.

import (
	"errors"
	"fmt"
	"time"

	"github.com/treedoc/treedoc/internal/commit"
	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// Flattener is the optional replica interface behind engine-coordinated
// flatten (the public Doc and TextBuffer both qualify). FlattenOp
// executes a committed flatten locally and returns the operation to
// broadcast; LockRegion/UnlockRegion freeze a subtree against local edits
// while a Yes vote is outstanding; Version reports the applied version
// vector so the engine can detect local edits it has not stamped yet;
// ColdestSubtree picks cold-subtree proposal candidates.
type Flattener interface {
	Applier
	Version() vclock.VC
	// FlattenOp mints the committed flatten if the replica's local
	// sequence still equals afterSeq; a racing local edit fails the mint
	// with core.ErrMintRaced and the engine retries after the edit's
	// stamp lands — keeping op sequence numbers and causal stamps in
	// lockstep.
	FlattenOp(path ident.Path, afterSeq uint64) (core.Op, error)
	ColdestSubtree(revisions int64, minNodes int) ident.Path
	LockRegion(token uint64, path ident.Path)
	UnlockRegion(token uint64)
}

// coldMinNodes is the smallest subtree ProposeFlattenCold proposes.
const coldMinNodes = 2

// maxDecidedMemory bounds the coordinator's decided-transaction memory
// (the presumed-abort answer store for re-sent votes).
const maxDecidedMemory = 256

// flattenState is the engine's commitment bookkeeping. Actor-owned.
type flattenState struct {
	coord *commit.Coordinator // actor-owned
	part  *commit.Participant // actor-owned
	// locks are the Yes votes awaiting a decision, keyed by transaction.
	locks   map[commit.TxID]*heldLock // actor-owned
	nextTok uint64                    // actor-owned
	// editLog records every stamped or delivered operation since the last
	// applied flatten: the vote's "observed an insert, delete or flatten
	// within the sub-tree" evidence. It resets when a flatten applies
	// (proposals must observe the flatten, so older entries can never be
	// uncovered again) and is pruned as the compaction floor rises.
	editLog []editRec // actor-owned
	// editFloor is the clock below which editLog entries have been pruned
	// (snapshot install, log truncation): a proposal that does not observe
	// at least this much cannot be evaluated and votes No.
	editFloor vclock.VC // actor-owned
	// flattenVC is the delivered clock when the last flatten applied; any
	// proposal must dominate it (a flatten renames identifiers, so it
	// counts as an edit of its whole region).
	flattenVC vclock.VC // actor-owned
	// lastSeen is the membership estimate: engine-monotonic time of the
	// last frame attributable to each site.
	lastSeen map[ident.SiteID]time.Duration // actor-owned
	// decided remembers recent coordinator decisions so re-sent votes for
	// finished transactions get an answer (presumed abort otherwise).
	decided      map[commit.TxID]decision // actor-owned
	decidedOrder []commit.TxID            // actor-owned
	// pendingCommits are commit decisions whose OpFlatten mint is deferred
	// until every locally applied edit has been stamped (the op's sequence
	// number must match its causal stamp).
	pendingCommits []pendingCommit // actor-owned
	// compactPending asks the ticker to keep trying to adopt the flatten
	// epoch as the oplog compaction barrier until the snapshot lands.
	compactPending bool // actor-owned
}

type heldLock struct {
	tok uint64
	// path and obs identify the round this lock answers: a proposal
	// re-using the TxID with a different path or observed clock (a
	// restarted coordinator's counter wrapping back) is a different round
	// and must be re-evaluated, never re-affirmed.
	path ident.Path
	obs  vclock.VC
	// lastPing paces the in-doubt vote resend; commitKnown stops it once
	// a commit decision with the op's stamp arrives. opSeq is the
	// committed OpFlatten's sequence number at the coordinator (from the
	// decision frame): the lock releases once the local clock covers it,
	// whether the operation arrived as an op frame or inside an installed
	// snapshot.
	lastPing    time.Duration
	commitKnown bool
	opSeq       uint64
}

// decision is one remembered coordinator outcome; seq is the committed
// OpFlatten's sequence number (0 for aborts, or for a commit whose mint
// is still pending).
type decision struct {
	committed bool
	seq       uint64
}

type editRec struct {
	site ident.SiteID
	seq  uint64
	id   ident.Path
}

type pendingCommit struct {
	tx   commit.TxID
	path ident.Path
}

func newFlattenState(e *Engine) *flattenState {
	st := &flattenState{
		coord:    commit.NewCoordinator(e.site),
		locks:    make(map[commit.TxID]*heldLock),
		lastSeen: make(map[ident.SiteID]time.Duration),
		decided:  make(map[commit.TxID]decision),
	}
	// A restarted coordinator must never re-mint a TxID a participant may
	// still hold pre-crash state for; a wall-clock seed makes the counter
	// restart-unique.
	st.coord.SeedTxCounter(uint64(time.Now().UnixNano()))
	st.part = commit.NewParticipant(e.site, (*flattenResource)(e))
	return st
}

// sinceStart is the engine's monotonic clock, anchoring commitment
// deadlines and membership recency.
func (e *Engine) sinceStart() time.Duration { return time.Since(e.start) }

// nowMs is sinceStart in the milliseconds internal/commit deadlines use.
func (e *Engine) nowMs() int64 { return e.sinceStart().Milliseconds() }

// noteSite refreshes the membership estimate for a site a frame was
// attributable to.
func (e *Engine) noteSite(s ident.SiteID) {
	if e.fl == nil || s == 0 || s == e.site {
		return
	}
	e.fl.lastSeen[s] = e.sinceStart()
}

// participants returns the proposal participant set: this site plus every
// site seen within the recency window. The coordinator waits for exactly
// these votes; any additional receiver of the proposal still votes, and
// its No still aborts.
func (e *Engine) participants() []ident.SiteID {
	now := e.sinceStart()
	window := 3 * e.flattenTimeout
	parts := []ident.SiteID{e.site}
	for s, seen := range e.fl.lastSeen {
		if now-seen <= window {
			parts = append(parts, s)
		}
	}
	return parts
}

// ProposeFlatten starts the commitment protocol to flatten the whole
// document, with this engine as coordinator. It returns once the proposal
// is queued; the round itself is asynchronous — watch FlattensCommitted,
// FlattensAborted and FlattensApplied, or the document's Stats. A
// proposal racing any concurrent edit aborts harmlessly; propose again
// when the document quiesces. The replica must implement Flattener (Doc
// and TextBuffer do).
func (e *Engine) ProposeFlatten() error {
	if e.fl == nil {
		return fmt.Errorf("transport: replica does not support coordinated flatten")
	}
	if !e.ctl(func() { e.startProposal(ident.Path{}) }) {
		return ErrStopped
	}
	return nil
}

// ProposeFlattenCold proposes flattening the most profitable subtree that
// has been quiet for the given number of revisions (drive the revision
// clock with the replica's EndRevision). It reports whether a candidate
// existed; false with a nil error means the document has no cold subtree
// worth flattening right now.
func (e *Engine) ProposeFlattenCold(revisions int) (bool, error) {
	if e.fl == nil {
		return false, fmt.Errorf("transport: replica does not support coordinated flatten")
	}
	ch := make(chan bool, 1)
	if !e.ctl(func() {
		path := e.flat.ColdestSubtree(int64(revisions), coldMinNodes)
		if path == nil {
			ch <- false
			return
		}
		e.startProposal(path)
		ch <- true
	}) {
		return false, ErrStopped
	}
	select {
	case ok := <-ch:
		return ok, nil
	case <-e.done:
		return false, ErrStopped
	}
}

// startProposal opens a commitment round on the actor: register the
// transaction, broadcast the proposal, and cast the coordinator's own
// vote (the coordinator is a participant like everyone else, so its own
// replica locks and votes under the same rules).
func (e *Engine) startProposal(path ident.Path) {
	st := e.fl
	obs := e.buf.Clock()
	tx, _ := st.coord.Propose(path, obs, e.participants(), e.nowMs(), e.flattenTimeout.Milliseconds())
	if frame, err := EncodeFlatPropose(e.site, tx.N, path, obs); err == nil {
		e.fanout(frame)
	} else {
		e.wireErrs.Add(1)
	}
	yes := e.prepareOnActor(commit.Msg{Kind: commit.Prepare, Tx: tx, Path: path, Obs: obs})
	e.processCoordOuts(st.coord.OnVote(e.site, commit.Msg{Kind: commit.Vote, Tx: tx, Yes: yes}))
}

// prepareOnActor evaluates a proposal and casts this replica's vote. The
// region is frozen BEFORE the vote condition is read: any local edit that
// completed before the freeze is visible to the version check, and any
// edit after it is rejected by the lock — so a Yes vote's promise ("the
// region stays as the coordinator observed it until the decision") has no
// race window. A No vote releases the freeze immediately.
func (e *Engine) prepareOnActor(m commit.Msg) bool {
	st := e.fl
	tok := st.nextTok
	st.nextTok++
	e.flat.LockRegion(tok, m.Path)
	out := st.part.OnPrepare(m)
	if !out.Msg.Yes {
		e.flat.UnlockRegion(tok)
		return false
	}
	st.locks[m.Tx] = &heldLock{tok: tok, path: m.Path.Clone(), obs: m.Obs.Clone(), lastPing: e.sinceStart()}
	return true
}

// flattenResource adapts the engine to commit.Resource. ApplyFlatten is
// deliberately a no-op: on this transport the committed flatten applies
// through the causal stream (OpFlatten), not through the decision.
type flattenResource Engine

// UneditedSince implements the vote condition of Section 4.2.1 over the
// engine's state: vote Yes only if this replica has delivered everything
// the coordinator observed, can still evaluate that far back (no pruned
// evidence, no flatten beyond obs), holds no applied-but-unstamped local
// edit, and has recorded no operation beyond obs inside the subtree.
//
// entry points (handleFlatPropose/Vote/Decision) all run on the actor
//
//treedoc:actorsafe invoked synchronously by the commit participant, whose
func (r *flattenResource) UneditedSince(path ident.Path, obs vclock.VC) bool {
	e := (*Engine)(r)
	st := e.fl
	clock := e.buf.Clock()
	if !clock.Dominates(obs) {
		return false // cannot evaluate the coordinator's view of the region
	}
	if st.flattenVC != nil && !obs.Dominates(st.flattenVC) {
		return false // an applied flatten renamed identifiers beyond obs
	}
	if st.editFloor != nil && !obs.Dominates(st.editFloor) {
		return false // evidence below the compaction floor no longer exists
	}
	if !vcEqual(e.flat.Version(), clock) {
		return false // in-flight local edits the actor has not stamped yet
	}
	for _, l := range st.editLog {
		if l.seq > obs.Get(l.site) && ident.RegionCompare(l.id, path) == 0 {
			return false
		}
	}
	return true
}

// ApplyFlatten implements commit.Resource; see flattenResource.
func (r *flattenResource) ApplyFlatten(ident.Path) error { return nil }

// handleFlatPropose votes on a proposal from another coordinator.
func (e *Engine) handleFlatPropose(f *FlatProposeFrame) {
	if e.fl == nil || f.From == e.site {
		return
	}
	e.noteSite(f.From)
	tx := commit.TxID{Coord: f.From, N: f.N}
	if l, held := e.fl.locks[tx]; held {
		if l.path.Equal(f.Path) && vcEqual(l.obs, f.Obs) {
			// Duplicate of the round we already voted Yes in: re-affirm.
			e.sendVote(tx, true)
			return
		}
		// Same TxID, different round: a coordinator that lost its counter
		// re-minted the id. The old round died with that coordinator, so
		// its lock is released (abort) and the new round evaluated from
		// scratch — re-affirming blindly would skip the vote condition.
		e.releaseLock(tx, false)
	}
	yes := e.prepareOnActor(commit.Msg{Kind: commit.Prepare, Tx: tx, Path: f.Path, Obs: f.Obs})
	e.sendVote(tx, yes)
}

// sendVote broadcasts a vote frame; only the coordinator consumes it.
func (e *Engine) sendVote(tx commit.TxID, yes bool) {
	frame, err := EncodeFlatVote(e.site, tx.Coord, tx.N, yes)
	if err != nil {
		e.wireErrs.Add(1)
		return
	}
	e.fanout(frame)
}

// handleFlatVote ingests a vote addressed to this coordinator. Votes for
// transactions no longer in flight — a participant querying an in-doubt
// lock, or a frame delayed past the decision — are answered from the
// decision memory, presuming abort for anything forgotten: the classic
// presumed-abort recovery that lets a participant release a lock whose
// decision frame was lost.
func (e *Engine) handleFlatVote(f *FlatVoteFrame, from *peer) {
	if e.fl == nil || f.From == e.site {
		return
	}
	e.noteSite(f.From)
	if f.Coord != e.site {
		return
	}
	st := e.fl
	tx := commit.TxID{Coord: f.Coord, N: f.N}
	if st.coord.InFlight(tx) {
		e.processCoordOuts(st.coord.OnVote(f.From, commit.Msg{Kind: commit.Vote, Tx: tx, Yes: f.Yes}))
		return
	}
	if from == nil || from.dead() {
		return
	}
	dec := st.decided[tx] // zero value = presumed abort
	if frame, err := EncodeFlatDecision(e.site, f.N, dec.committed, dec.seq, nil); err == nil {
		from.trySend(frame)
	} else {
		e.wireErrs.Add(1)
	}
}

// handleFlatDecision applies a coordinator's decision to a lock this
// replica holds. Abort releases the freeze with no other effect. Commit
// marks the outcome and the flatten's sequence number as known: the
// freeze holds until the local clock covers the OpFlatten — normally its
// delivery through the causal stream, but an installed snapshot that
// absorbed the operation counts too. Releasing on the frame alone would
// let a local edit slip in un-ordered against the flatten. An abort for
// a lock whose commit is already known is stale (a forgetful coordinator
// answering an old query) and is ignored: a commit outcome, once seen,
// is authoritative.
func (e *Engine) handleFlatDecision(f *FlatDecisionFrame) {
	if e.fl == nil || f.From == e.site {
		return
	}
	e.noteSite(f.From)
	tx := commit.TxID{Coord: f.From, N: f.N}
	l, ok := e.fl.locks[tx]
	if !ok {
		return
	}
	switch {
	case f.Commit:
		l.commitKnown = true
		if f.Seq > 0 {
			l.opSeq = f.Seq
		}
		e.releaseCoveredLocks()
	case l.commitKnown && l.opSeq > 0:
		// Stale presumed-abort for a commit whose stamp we know: ignore —
		// the covered-lock sweep resolves it once the durable OpFlatten
		// (or a snapshot containing it) arrives. Without the stamp we
		// cannot self-resolve, so the coordinator's current word, abort,
		// is accepted below (the documented amnesia window).
	default:
		e.releaseLock(tx, false)
	}
}

// releaseCoveredLocks releases every committed lock whose OpFlatten the
// local clock already covers — delivered as an operation (the usual
// path, also handled by releaseLocksFor) or absorbed into an installed
// snapshot, which is the path that would otherwise leak the lock
// forever.
func (e *Engine) releaseCoveredLocks() {
	if e.fl == nil {
		return
	}
	clock := e.buf.Clock()
	for tx, l := range e.fl.locks {
		if l.commitKnown && l.opSeq > 0 && clock.Get(tx.Coord) >= l.opSeq {
			e.releaseLock(tx, true)
		}
	}
}

// processCoordOuts turns coordinator state-machine output into transport
// actions. The only outs a live coordinator emits after Propose are
// decisions (To 0, broadcast).
func (e *Engine) processCoordOuts(outs []commit.Out) {
	for _, o := range outs {
		if o.Msg.Kind == commit.Decision {
			e.decideLocal(o.Msg)
		}
	}
}

// decideLocal finalises a round this engine coordinated: remember the
// outcome (for re-sent votes), and either queue the OpFlatten mint
// (commit — the decision frame is broadcast by the mint, once the
// operation's sequence number exists to put in it) or broadcast the
// abort and release the coordinator's own lock.
func (e *Engine) decideLocal(m commit.Msg) {
	st := e.fl
	if m.Commit {
		e.flattensCommitted.Add(1)
		st.remember(m.Tx, decision{committed: true})
		st.pendingCommits = append(st.pendingCommits, pendingCommit{tx: m.Tx, path: m.Path.Clone()})
		e.mintPendingFlattens()
		return
	}
	e.flattensAborted.Add(1)
	st.remember(m.Tx, decision{})
	if frame, err := EncodeFlatDecision(e.site, m.Tx.N, false, 0, m.Path); err == nil {
		e.fanout(frame)
	} else {
		e.wireErrs.Add(1)
	}
	e.releaseLock(m.Tx, false)
}

// mintPendingFlattens executes committed flattens whose mint had to wait.
// The wait: an OpFlatten's sequence number is assigned by the replica and
// its causal stamp by the actor, and the two must agree — so the mint is
// deferred while any locally applied edit is still waiting to be stamped
// (its Broadcast is in flight towards the actor). The commit's region
// lock stays held meanwhile, so the region itself cannot move; the actor
// retries after every inbox drain and on every tick.
func (e *Engine) mintPendingFlattens() {
	if e.fl == nil || len(e.fl.pendingCommits) == 0 {
		return
	}
	st := e.fl
	for len(st.pendingCommits) > 0 {
		pc := st.pendingCommits[0]
		clock := e.buf.Clock()
		if !vcEqual(e.flat.Version(), clock) {
			return
		}
		op, err := e.flat.FlattenOp(pc.path, clock.Get(e.site))
		if errors.Is(err, core.ErrMintRaced) {
			// A local edit slipped in between the readiness check and the
			// mint (the replica's own lock makes this atomic, so the race
			// was out-of-region); retry once its stamp lands.
			return
		}
		if err != nil {
			// The committed flatten could not be executed (the region path
			// vanished — only possible if the protocol's guarantees were
			// violated upstream). Surface it loudly, and announce the round
			// as aborted: no operation will ever arrive, so participants
			// holding locks must not wait for one.
			e.setErr(fmt.Errorf("transport: flatten commit %v at %v: %w", pc.tx, pc.path, err))
			st.remember(pc.tx, decision{})
			if frame, ferr := EncodeFlatDecision(e.site, pc.tx.N, false, 0, pc.path); ferr == nil {
				e.fanout(frame)
			}
		} else {
			m := e.buf.Stamp(op)
			e.record(m)
			e.batch = append(e.batch, m)
			// Now the operation has a stamp, the commit decision can name
			// it: participants release their locks once their clocks cover
			// (site, seq), even if the op reaches them inside a snapshot.
			st.remember(pc.tx, decision{committed: true, seq: op.Seq})
			if frame, ferr := EncodeFlatDecision(e.site, pc.tx.N, true, op.Seq, pc.path); ferr == nil {
				e.fanout(frame)
			} else {
				e.wireErrs.Add(1)
			}
			e.afterFlattenApplied()
		}
		e.releaseLock(pc.tx, true)
		st.pendingCommits = st.pendingCommits[1:]
	}
}

// onLocalOpStamped feeds the vote bookkeeping for a locally broadcast
// operation (called from the actor right after stamping).
func (e *Engine) onLocalOpStamped(op core.Op) {
	if op.Kind == core.OpFlatten {
		// A caller broadcasting Doc.FlattenOp directly, outside the engine's
		// own commitment: treat it like any applied flatten.
		e.releaseLocksFor(op.Site, op.ID)
		e.afterFlattenApplied()
		return
	}
	e.fl.editLog = append(e.fl.editLog, editRec{site: op.Site, seq: op.Seq, id: op.ID})
}

// onRemoteOpDelivered feeds the vote bookkeeping for a delivered remote
// operation; a delivered OpFlatten is the commit taking effect here.
func (e *Engine) onRemoteOpDelivered(op core.Op) {
	e.noteSite(op.Site)
	if op.Kind == core.OpFlatten {
		e.releaseLocksFor(op.Site, op.ID)
		e.afterFlattenApplied()
		return
	}
	e.fl.editLog = append(e.fl.editLog, editRec{site: op.Site, seq: op.Seq, id: op.ID})
}

// afterFlattenApplied runs once a flatten has taken effect on the local
// replica (minted or delivered): anchor the flatten clock, reset the edit
// log, and make the flatten epoch the oplog compaction barrier — the
// snapshot taken here is what lets a post-flatten joiner skip every
// pre-flatten operation.
func (e *Engine) afterFlattenApplied() {
	st := e.fl
	st.flattenVC = e.buf.Clock()
	st.editLog = st.editLog[:0]
	e.flattensApplied.Add(1)
	if e.snap != nil {
		st.compactPending = true
		if vcEqual(e.flat.Version(), e.buf.Clock()) && e.compactNow() {
			st.compactPending = false
		}
	}
}

// releaseLocksFor releases every lock matching an applied flatten (its
// coordinator and subtree), completing those transactions at this
// participant.
func (e *Engine) releaseLocksFor(coord ident.SiteID, path ident.Path) {
	for tx, l := range e.fl.locks {
		if tx.Coord == coord && l.path.Equal(path) {
			e.releaseLock(tx, true)
		}
	}
}

// releaseLock completes one transaction at this participant: the state
// machine hears the decision and the replica's region unfreezes.
func (e *Engine) releaseLock(tx commit.TxID, committed bool) {
	st := e.fl
	l, ok := st.locks[tx]
	if !ok {
		return
	}
	if err := st.part.OnDecision(commit.Msg{Kind: commit.Decision, Tx: tx, Path: l.path, Commit: committed}); err != nil {
		e.setErr(err)
	}
	e.flat.UnlockRegion(l.tok)
	delete(st.locks, tx)
}

// releaseAllLocks abandons every open vote on engine stop: a stopped
// engine can never receive a decision, and a region frozen forever is
// worse than an abandoned vote (the coordinator's deadline aborts the
// round without us).
func (e *Engine) releaseAllLocks() {
	if e.fl == nil {
		return
	}
	for tx := range e.fl.locks {
		e.releaseLock(tx, false)
	}
}

// flattenTick is the per-sync-tick commitment work: coordinator
// deadlines, in-doubt vote resends, deferred mints, the flatten-epoch
// compaction retry, and chunked-snapshot assembly GC.
func (e *Engine) flattenTick() {
	e.gcSnapAssemblies()
	if e.fl == nil {
		return
	}
	st := e.fl
	e.processCoordOuts(st.coord.Tick(e.nowMs()))
	e.releaseCoveredLocks()
	e.resendDoubtVotes()
	e.mintPendingFlattens()
	if st.compactPending && e.snap != nil && vcEqual(e.flat.Version(), e.buf.Clock()) && e.compactNow() {
		st.compactPending = false
	}
}

// resendDoubtVotes re-sends the Yes vote for locks that have waited a
// full deadline without a resolving answer, querying the coordinator: a
// live one answers from its decision memory (presumed abort for
// forgotten transactions), releasing locks whose decision frame was
// lost. A lock stops querying only once it can resolve on its own —
// the commit is known AND the OpFlatten's stamp is known, so the
// covered-lock sweep will release it; a commit answer that predates the
// mint (seq still 0) keeps the query loop alive until the definitive
// answer arrives.
func (e *Engine) resendDoubtVotes() {
	now := e.sinceStart()
	for tx, l := range e.fl.locks {
		if (l.commitKnown && l.opSeq > 0) || now-l.lastPing < e.flattenTimeout {
			continue
		}
		l.lastPing = now
		e.sendVote(tx, true)
	}
}

// pruneEditLog drops vote evidence the compaction floor covers and raises
// the evaluation floor to match: entries at or below the floor can never
// trigger a No (an evaluable proposal observes at least the floor), so
// the edit log stays bounded by the same mechanism that bounds the
// message log.
func (e *Engine) pruneEditLog(floor vclock.VC) {
	if e.fl == nil {
		return
	}
	st := e.fl
	if st.editFloor == nil {
		st.editFloor = vclock.New()
	}
	st.editFloor.Merge(floor)
	kept := st.editLog[:0]
	for _, l := range st.editLog {
		if l.seq > floor.Get(l.site) {
			kept = append(kept, l)
		}
	}
	for i := len(kept); i < len(st.editLog); i++ {
		st.editLog[i] = editRec{}
	}
	st.editLog = kept
}

// remember stores a coordinator decision, bounded.
func (st *flattenState) remember(tx commit.TxID, dec decision) {
	if _, ok := st.decided[tx]; !ok {
		st.decidedOrder = append(st.decidedOrder, tx)
		if len(st.decidedOrder) > maxDecidedMemory {
			delete(st.decided, st.decidedOrder[0])
			st.decidedOrder = st.decidedOrder[1:]
		}
	}
	st.decided[tx] = dec
}

package transport

import (
	"reflect"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

func testBatchEntries() []SyncBatchEntry {
	return []SyncBatchEntry{
		{Doc: "notes", From: 3, Clock: vclock.VC{1: 5, 3: 9}},
		{Doc: "todo", From: 7, Clock: vclock.VC{7: 1}},
		{Doc: "a-b.c", From: 1, Clock: vclock.VC{1: 1 << 40, 2: 2}},
	}
}

func TestSyncBatchRoundTrip(t *testing.T) {
	for _, forwarded := range []bool{false, true} {
		entries := testBatchEntries()
		frame, err := EncodeSyncBatch(entries, forwarded)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		sb, ok := decoded.(*SyncBatchFrame)
		if !ok {
			t.Fatalf("decoded %T, want *SyncBatchFrame", decoded)
		}
		if sb.Forwarded != forwarded {
			t.Fatalf("forwarded flag: got %v, want %v", sb.Forwarded, forwarded)
		}
		if !reflect.DeepEqual(sb.Entries, entries) {
			t.Fatalf("entries round trip:\n got %+v\nwant %+v", sb.Entries, entries)
		}
	}
}

func TestSyncBatchRejects(t *testing.T) {
	if _, err := EncodeSyncBatch(nil, false); err == nil {
		t.Fatal("empty batch accepted on encode")
	}
	big := make([]SyncBatchEntry, maxSyncBatch+1)
	for i := range big {
		big[i] = SyncBatchEntry{Doc: "d", From: 1, Clock: vclock.VC{1: 1}}
	}
	if _, err := EncodeSyncBatch(big, false); err == nil {
		t.Fatal("oversized batch accepted on encode")
	}
	if _, err := EncodeSyncBatch([]SyncBatchEntry{{Doc: "", From: 1, Clock: vclock.VC{1: 1}}}, false); err == nil {
		t.Fatal("empty doc id accepted on encode")
	}

	good, err := EncodeSyncBatch(testBatchEntries(), false)
	if err != nil {
		t.Fatal(err)
	}
	// Trailing garbage must be refused: the flags byte is the only legal
	// trailer and only the forwarded bit may be set.
	if _, err := DecodeFrame(append(append([]byte{}, good...), 0x00)); err == nil {
		t.Fatal("zero flags byte accepted (canonical encoding omits it)")
	}
	if _, err := DecodeFrame(append(append([]byte{}, good...), 0x02)); err == nil {
		t.Fatal("unknown flag bit accepted")
	}
	fwd, err := EncodeSyncBatch(testBatchEntries(), true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrame(append(append([]byte{}, fwd...), 0x01)); err == nil {
		t.Fatal("bytes after the flags byte accepted")
	}
	// A count claiming more entries than the body can hold is refused.
	if _, err := DecodeFrame([]byte{kindSyncBatch, 0xFF, 0x01}); err == nil {
		t.Fatal("count exceeding body length accepted")
	}
	if _, err := DecodeFrame([]byte{kindSyncBatch, 0x00}); err == nil {
		t.Fatal("zero-entry batch accepted on decode")
	}
}

// FuzzSyncBatchFrame fuzzes kindSyncBatch specifically: arbitrary bodies
// must decode cleanly or fail cleanly, never panic, and anything accepted
// must semantically round-trip through EncodeSyncBatch.
func FuzzSyncBatchFrame(f *testing.F) {
	if fr, err := EncodeSyncBatch(testBatchEntries(), false); err == nil {
		f.Add(fr)
	}
	if fr, err := EncodeSyncBatch(testBatchEntries()[:1], true); err == nil {
		f.Add(fr)
	}
	if fr, err := EncodeSyncBatch([]SyncBatchEntry{
		{Doc: "x", From: ident.SiteID(1), Clock: vclock.VC{1: 1, 2: 2, 3: 3}},
	}, false); err == nil {
		f.Add(fr)
	}
	f.Add([]byte{kindSyncBatch})
	f.Add([]byte{kindSyncBatch, 0x01, 0x01, 'a', 0x01, 0x00})
	f.Fuzz(func(t *testing.T, body []byte) {
		frame := body
		if len(frame) == 0 || frame[0] != kindSyncBatch {
			frame = append([]byte{kindSyncBatch}, body...)
		}
		decoded, err := DecodeFrame(frame)
		if err != nil {
			return
		}
		sb, ok := decoded.(*SyncBatchFrame)
		if !ok {
			t.Fatalf("kindSyncBatch decoded to %T", decoded)
		}
		re, err := EncodeSyncBatch(sb.Entries, sb.Forwarded)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		again, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if !reflect.DeepEqual(again, decoded) {
			t.Fatalf("sync batch round trip:\n got %+v\nwant %+v", again, decoded)
		}
	})
}

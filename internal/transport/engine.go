package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/treedoc/treedoc/internal/causal"
	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/oplog"
	"github.com/treedoc/treedoc/internal/vclock"
)

// Applier is the replica interface the engine drives: anything that can
// replay Treedoc operations (the public Doc and TextBuffer both qualify).
// Apply must be safe to call concurrently with the caller's local edits.
type Applier interface {
	Apply(op core.Op) error
}

// BatchApplier is the optional replica interface for batched remote
// application (the public Doc and TextBuffer both qualify): ApplyBatch
// applies ops in order under one replica lock, returning how many applied
// before the first failure (len(ops) and nil on success). The engine
// prefers it on the delivery path — one lock acquisition per causally-ready
// run instead of per op, and the replica's tree walk caches stay hot across
// the whole batch.
type BatchApplier interface {
	Applier
	ApplyBatch(ops []core.Op) (int, error)
}

// Snapshotter is the optional replica interface behind log compaction and
// snapshot catch-up (the public Doc and TextBuffer both qualify). Snapshot
// must capture the state and the version vector describing it atomically:
// the version covers exactly the operations whose effects are in the
// bytes. InstallSnapshot must reject (with an error wrapping
// core.ErrStaleSnapshot) any snapshot whose version does not dominate the
// replica's state, and must return the installed version on success.
type Snapshotter interface {
	Applier
	Snapshot() (data []byte, version vclock.VC, err error)
	InstallSnapshot(data []byte) (version vclock.VC, err error)
}

// FsyncMode re-exports the oplog durability policy.
type FsyncMode = oplog.FsyncMode

// Fsync policies for WithLogDir engines.
const (
	// FsyncBatch (default): the engine syncs the log once per flushed
	// batch, before frames fan out to peers — locally generated operations
	// are on stable storage before any peer can have seen their stamps.
	FsyncBatch = oplog.FsyncBatch
	// FsyncAlways syncs after every append.
	FsyncAlways = oplog.FsyncAlways
	// FsyncOff never syncs (benchmarks and tests only): a crash may forget
	// stamps that peers remember, which permanently desynchronises the
	// site's sequence numbers.
	FsyncOff = oplog.FsyncOff
)

// ErrStopped is returned by Broadcast after Stop.
var ErrStopped = fmt.Errorf("transport: engine stopped")

// Engine defaults.
const (
	defaultBatchSize    = 64
	defaultQueueDepth   = 256
	defaultSyncInterval = 200 * time.Millisecond
	// defaultCompactEvery is the retained-message count that triggers a
	// snapshot + truncate cycle when the replica supports snapshots.
	defaultCompactEvery = 16384
	// defaultSnapThreshold is how many operations behind a digest must be
	// before the engine answers with a snapshot instead of an op replay.
	defaultSnapThreshold = 8192
	// syncChunk bounds the operations per anti-entropy reply frame.
	syncChunk = 256
	// maxPending caps the causal buffer's undeliverable backlog: wire-valid
	// messages with permanent causal gaps (a hostile or broken peer) must
	// not pin unbounded memory. Pruned legitimate messages come back via
	// anti-entropy.
	maxPending = 1 << 14
	// stopDrainTimeout bounds how long a peer writer keeps flushing its
	// queue after Stop before the link is torn down anyway.
	stopDrainTimeout = 2 * time.Second
	// snapResendAfter is how long the engine waits before offering the
	// same barrier snapshot to the same peer again (covering the case
	// where the first offer was dropped by a full queue).
	snapResendAfter = time.Second
	// defaultFlattenTimeout is the flatten commitment deadline (see
	// WithFlattenTimeout).
	defaultFlattenTimeout = 2 * time.Second
	// snapAssemblyTTL bounds how long a partial chunked-snapshot
	// reassembly is retained: a sender that stopped mid-sequence (or a
	// dropped chunk) must not pin buffer memory forever. The snapshot is
	// re-offered by the sender's own snapResendAfter pacing.
	snapAssemblyTTL = 15 * time.Second
	// keepaliveTicks is the digest-suppression escape hatch: a peer whose
	// digests have been suppressed this many sync intervals in a row gets
	// one anyway, so a frame lost after the state went quiet is still
	// healed within a bounded number of ticks.
	keepaliveTicks = 10
	// gapGraceTicks is how many sync intervals a frontier gap must
	// persist before it triggers a digest. A gap against the link's heard
	// frontier usually closes on its own — the missing operations are in
	// flight on the relay path — and digesting into it would draw a
	// retransmission of frames about to arrive anyway.
	gapGraceTicks = 2
	// replayCacheCap bounds the per-tick encoded-replay cache: distinct
	// missing ranges per tick beyond this are encoded per request, which
	// only costs the pre-index behaviour.
	replayCacheCap = 32
)

// Option configures an Engine.
type Option func(*Engine)

// WithBatchSize sets the maximum operations packed into one outbound frame
// (default 64). Larger batches amortise framing; smaller ones cut latency.
func WithBatchSize(n int) Option {
	return func(e *Engine) {
		if n > 0 && n <= maxBatch {
			e.batchSize = n
		}
	}
}

// WithSyncInterval sets the anti-entropy period (default 200ms). Each tick
// the engine sends its delivered clock to every peer; peers retransmit
// whatever the clock does not cover.
func WithSyncInterval(d time.Duration) Option {
	return func(e *Engine) {
		if d > 0 {
			e.syncEvery = d
		}
	}
}

// WithQueueDepth sets the per-peer outbound queue depth (default 256).
// When a peer's queue is full, frames to it are dropped — anti-entropy
// retransmits them later — so a slow consumer never stalls the actor.
func WithQueueDepth(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.queueDepth = n
		}
	}
}

// WithLogDir enables the durable operation log in dir: every stamped and
// delivered message is appended to an internal/oplog segment store, and
// NewEngine replays the directory on start — restoring the replica's
// state, clock and allocation sequence, so a restarted site re-stamps
// nothing. The replica handed to NewEngine must be fresh (no history);
// the engine rebuilds it from the stored snapshot and log suffix.
func WithLogDir(dir string) Option {
	return func(e *Engine) { e.logDir = dir }
}

// WithFsync sets the durable log's fsync policy (default FsyncBatch).
// Only meaningful together with WithLogDir.
func WithFsync(mode FsyncMode) Option {
	return func(e *Engine) { e.fsync = mode }
}

// WithCompactEvery sets how many retained messages accumulate before the
// engine snapshots the replica and truncates everything the snapshot
// covers — the in-memory message log always, and the on-disk segments
// when WithLogDir is set (default 16384; 0 disables compaction). Requires
// a replica implementing Snapshotter to take effect.
func WithCompactEvery(n int) Option {
	return func(e *Engine) {
		if n >= 0 {
			e.compactEvery = n
		}
	}
}

// WithSnapshotThreshold sets how many operations behind a peer's
// anti-entropy digest must be before the engine serves a snapshot plus
// log suffix instead of replaying the full op history (default 8192; 0
// disables threshold-based snapshots — peers below the compaction barrier
// still receive snapshots, because the ops below the barrier no longer
// exist). Requires a replica implementing Snapshotter to take effect.
func WithSnapshotThreshold(n int) Option {
	return func(e *Engine) {
		if n >= 0 {
			e.snapThreshold = n
		}
	}
}

// WithFlattenTimeout sets the flatten commitment deadline: a proposal
// still missing votes after this long is aborted (presumed abort), and a
// participant whose Yes-vote lock has waited this long starts re-sending
// its vote to query the coordinator for the decision. Default 2s, raised
// to five sync intervals when WithSyncInterval is longer.
func WithFlattenTimeout(d time.Duration) Option {
	return func(e *Engine) {
		if d > 0 {
			e.flattenTimeout = d
		}
	}
}

// command is one unit of work on the actor inbox. Exactly one field group
// is set: local ops to stamp and broadcast, inbound remote messages, an
// inbound digest, snapshot or flatten-commitment frame, or a control
// closure.
type command struct {
	ops       []core.Op
	msgs      []causal.Message
	sync      *SyncReqFrame
	snapReq   *SnapReqFrame
	snap      *SnapFrame
	snapChunk *SnapChunkFrame
	flatProp  *FlatProposeFrame
	flatVote  *FlatVoteFrame
	flatDec   *FlatDecisionFrame
	from      *peer
	ctl       func()
}

// Engine runs one replica's replication: causal delivery in, stamped
// batches out, periodic anti-entropy, and (optionally) a durable, pruned
// operation log with snapshot catch-up. All distribution state (causal
// buffer, message log, peer set, compaction barrier) is owned by a single
// actor goroutine that drains the inbox channel, so none of it needs a
// lock.
type Engine struct {
	site       ident.SiteID
	doc        Applier
	batcher    BatchApplier // doc, when it supports batched apply; else nil
	snap       Snapshotter  // doc, when it supports snapshots; else nil
	flat       Flattener    // doc, when it supports coordinated flatten; else nil
	batchSize  int
	queueDepth int
	syncEvery  time.Duration
	// start anchors the engine's monotonic clock (sinceStart) used by the
	// commitment deadlines and membership recency.
	start time.Time

	logDir         string
	fsync          FsyncMode
	compactEvery   int
	snapThreshold  int
	flattenTimeout time.Duration

	inbox chan command
	done  chan struct{}
	// drained closes after the actor's final flush on Stop: peer writers
	// wait for it so Broadcast-accepted ops reach their queues before the
	// final drain.
	drained chan struct{}
	wg      sync.WaitGroup
	// lifeMu orders Connect against Stop: Connect's wg.Add must not race
	// a Stop whose wg.Wait already returned.
	lifeMu  sync.Mutex
	stopped bool

	drops             atomic.Uint64
	wireErrs          atomic.Uint64
	pruned            atomic.Uint64
	applied           atomic.Uint64
	snapsSent         atomic.Uint64
	snapsInstalled    atomic.Uint64
	flattensApplied   atomic.Uint64
	flattensCommitted atomic.Uint64
	flattensAborted   atomic.Uint64
	digestsSent       atomic.Uint64
	digestsSuppressed atomic.Uint64
	repliesSquelched  atomic.Uint64
	replayOps         atomic.Uint64
	replayBytes       atomic.Uint64

	// Actor-owned state: touched only from run(). The trailing
	// "actor-owned" markers are load-bearing — treedoc-vet's actoronly
	// analyzer rejects any access outside the actor loop's call tree.
	buf      *causal.Buffer   // actor-owned
	retained RetainedLog      // actor-owned
	batch    []causal.Message // actor-owned
	peers    []*peer          // actor-owned
	log      *oplog.Log       // actor-owned
	// replayCache holds this tick's encoded digest answers keyed by the
	// missing span set, so one distinct missing range is encoded once and
	// fanned out to every peer requesting it. Cleared each sync tick and
	// on truncation (truncation shifts span offsets).
	replayCache map[string]*replayEntry // actor-owned
	spanScratch []span                  // actor-owned
	keyScratch  []byte                  // actor-owned
	missScratch []causal.Message        // actor-owned
	// logBroken latches after the first append failure: see record.
	logBroken bool // actor-owned
	// snapData/snapVC are the serving barrier: the latest snapshot and the
	// version vector of exactly what it contains. truncVC is the
	// truncation floor — the previous barrier — below which messages have
	// been dropped from the retained log and the sealed log segments. Keeping one
	// generation of slack between the two means a live peer slightly
	// behind the newest barrier is still served operations; only a digest
	// below the floor (whose missing ops no longer exist as messages)
	// forces a snapshot.
	snapData []byte    // actor-owned
	snapVC   vclock.VC // actor-owned
	truncVC  vclock.VC // actor-owned
	// barrierAt is when the serving barrier was adopted; once it has aged
	// past floorDelay, the floor is promoted up to it (live peers have had
	// time to catch up past the barrier, so truncating below it can no
	// longer force snapshots on them).
	barrierAt time.Time // actor-owned
	// sinceSnap counts retained messages since the serving barrier,
	// driving the compaction policy.
	sinceSnap int // actor-owned
	// snapReqSent limits explicit snapshot requests to one per sync tick.
	snapReqSent bool // actor-owned
	// fl is the flatten commitment state (flatten.go); nil unless the
	// replica implements Flattener. The pointer is set in NewEngine and
	// immutable thereafter (safe to nil-check from any goroutine); the
	// state it points to belongs to the actor, marked field by field.
	fl *flattenState
	// snapAsm holds in-progress chunked-snapshot reassemblies, keyed by the
	// sending site (snapchunk handling in flatten.go's sibling code path).
	snapAsm map[ident.SiteID]*snapAssembly // actor-owned
	// opScratch is deliverBatch's reusable op buffer (actor-owned).
	opScratch []core.Op

	// firstErr outlives the actor so Err stays truthful after Stop.
	errMu    sync.Mutex
	firstErr error
}

// NewEngine creates and starts an engine for the given site wrapping the
// given replica. Without WithLogDir, the replica must not have applied
// remote operations already: the engine's causal clock starts empty and
// must match the document's history. With WithLogDir, the replica must be
// completely fresh — NewEngine restores its state from the stored
// snapshot and replays the log suffix before the engine goes live, so an
// engine restarted over the same directory resumes exactly where it
// crashed and re-stamps nothing.
//
//treedoc:actorsafe construction happens before the actor goroutine starts
func NewEngine(site ident.SiteID, doc Applier, opts ...Option) (*Engine, error) {
	if site == 0 || site > ident.MaxSiteID {
		return nil, fmt.Errorf("transport: site must be in [1, 2^48)")
	}
	if doc == nil {
		return nil, fmt.Errorf("transport: nil replica")
	}
	e := &Engine{
		site:          site,
		doc:           doc,
		batchSize:     defaultBatchSize,
		queueDepth:    defaultQueueDepth,
		syncEvery:     defaultSyncInterval,
		compactEvery:  defaultCompactEvery,
		snapThreshold: defaultSnapThreshold,
		start:         time.Now(),
		done:          make(chan struct{}),
		drained:       make(chan struct{}),
		buf:           causal.NewBuffer(site),
	}
	e.batcher, _ = doc.(BatchApplier)
	e.snap, _ = doc.(Snapshotter)
	e.flat, _ = doc.(Flattener)
	for _, o := range opts {
		o(e)
	}
	if e.flattenTimeout <= 0 {
		e.flattenTimeout = defaultFlattenTimeout
		if min := 5 * e.syncEvery; e.flattenTimeout < min {
			// Votes and in-doubt resends ride the anti-entropy tick, so the
			// deadline must span several of them.
			e.flattenTimeout = min
		}
	}
	if e.flat != nil {
		e.fl = newFlattenState(e)
	}
	if e.logDir != "" {
		if err := e.openAndReplay(); err != nil {
			return nil, err
		}
	}
	depth := 4 * e.queueDepth
	if depth < 1024 {
		depth = 1024
	}
	e.inbox = make(chan command, depth)
	e.wg.Add(1)
	go e.run()
	return e, nil
}

// openAndReplay opens the durable log and rebuilds the replica: install
// the stored snapshot (if any), then replay every retained record the
// snapshot does not cover, advancing the causal clock as it goes.
//
//treedoc:actorsafe recovery runs from NewEngine, before the actor starts
func (e *Engine) openAndReplay() error {
	l, err := oplog.Open(e.logDir, oplog.Options{Fsync: e.fsync})
	if err != nil {
		return err
	}
	clock := vclock.New()
	if data, snapClock, err := l.Snapshot(); err != nil {
		l.Close()
		return err
	} else if data != nil {
		if e.snap == nil {
			l.Close()
			return fmt.Errorf("transport: log %s holds a snapshot but the replica cannot install one", e.logDir)
		}
		version, err := e.snap.InstallSnapshot(data)
		if err != nil {
			l.Close()
			return fmt.Errorf("transport: restore snapshot: %w", err)
		}
		clock = version
		e.snapData, e.snapVC = data, snapClock.Clone()
		// Nothing below the stored snapshot survives a restart, so the
		// retained-log floor starts at the snapshot clock — and so does the
		// flatten vote's evaluation floor: edits below it no longer exist
		// as records, so proposals must observe at least this much.
		e.truncVC = snapClock.Clone()
		if e.fl != nil {
			e.fl.editFloor = snapClock.Clone()
		}
	}
	replayErr := l.Replay(func(site ident.SiteID, seq uint64, body []byte) error {
		if seq <= clock.Get(site) {
			return nil // covered by the snapshot (or a segment overlap)
		}
		m, err := DecodeMsgBody(body)
		if err != nil {
			return fmt.Errorf("transport: log record s%d#%d: %w", site, seq, err)
		}
		op, ok := m.Payload.(core.Op)
		if !ok {
			return fmt.Errorf("transport: log record s%d#%d is not an op", site, seq)
		}
		// Mirror the live delivery path: an op the replica rejects was
		// tolerated (setErr + continue) when it first arrived, so it must
		// be tolerated on replay too — aborting here would brick every
		// restart over this directory. The message still counts as
		// delivered, exactly as it did live.
		if err := e.doc.Apply(op); err != nil {
			e.setErr(fmt.Errorf("transport: replay s%d#%d: %w", site, seq, err))
		}
		clock.Merge(m.TS)
		e.retained.Append(m)
		if e.fl != nil {
			// Rebuild the vote bookkeeping exactly as the live path does: a
			// replayed flatten resets the edit log and anchors the flatten
			// clock; everything after it is an edit a future vote must see.
			if op.Kind == core.OpFlatten {
				e.fl.flattenVC = clock.Clone()
				e.fl.editLog = e.fl.editLog[:0]
			} else {
				e.fl.editLog = append(e.fl.editLog, editRec{site: op.Site, seq: op.Seq, id: op.ID})
			}
		}
		return nil
	})
	if replayErr != nil {
		l.Close()
		return replayErr
	}
	e.buf.Advance(clock)
	e.log = l
	e.sinceSnap = e.retained.Len()
	return nil
}

// Site returns the engine's site identifier.
func (e *Engine) Site() ident.SiteID { return e.site }

// Drops counts outbound frames discarded because a peer queue was full.
// Anti-entropy repairs the loss; a steadily climbing count means a peer is
// persistently slower than the local edit rate.
func (e *Engine) Drops() uint64 { return e.drops.Load() }

// WireErrs counts malformed frames and messages discarded on receive.
func (e *Engine) WireErrs() uint64 { return e.wireErrs.Load() }

// Pruned counts wire-valid messages discarded from the causal buffer to
// bound its undeliverable backlog (see maxPending). Pruning is load
// shedding, not corruption — anti-entropy redelivers legitimate messages —
// so it is counted apart from WireErrs.
func (e *Engine) Pruned() uint64 { return e.pruned.Load() }

// Applied counts remote operations replayed into the replica (live
// delivery only; restart replay from the durable log is not counted).
func (e *Engine) Applied() uint64 { return e.applied.Load() }

// SnapshotsSent counts snapshot catch-up frames served to peers.
func (e *Engine) SnapshotsSent() uint64 { return e.snapsSent.Load() }

// SnapshotsInstalled counts snapshot catch-up frames installed into the
// replica.
func (e *Engine) SnapshotsInstalled() uint64 { return e.snapsInstalled.Load() }

// FlattensApplied counts committed flattens applied to this replica —
// minted here as coordinator or delivered through the causal stream.
func (e *Engine) FlattensApplied() uint64 { return e.flattensApplied.Load() }

// FlattensCommitted counts flatten proposals this engine coordinated to a
// commit decision.
func (e *Engine) FlattensCommitted() uint64 { return e.flattensCommitted.Load() }

// FlattensAborted counts flatten proposals this engine coordinated to an
// abort — a replica voted No (it observed a conflicting edit) or the
// deadline passed with votes missing. Aborts are harmless; propose again
// once the region quiesces.
func (e *Engine) FlattensAborted() uint64 { return e.flattensAborted.Load() }

// DigestsSent counts anti-entropy digests sent to peers.
func (e *Engine) DigestsSent() uint64 { return e.digestsSent.Load() }

// DigestsSuppressed counts sync ticks on which a peer's digest was
// skipped because there was no persistent gap to pull against and the
// keepalive had not elapsed. A high ratio of suppressed to sent is the
// healthy state, hot or idle; see docs/ARCHITECTURE.md §13.
func (e *Engine) DigestsSuppressed() uint64 { return e.digestsSuppressed.Load() }

// RepliesSquelched counts digests left unanswered because an answer
// covering the requester's frontier had already been sent on the same
// link in the same sync tick (the relay fans that answer to the whole
// group, so a second copy would be pure duplication).
func (e *Engine) RepliesSquelched() uint64 { return e.repliesSquelched.Load() }

// ReplayOps counts retained operations queued in answer to peers'
// digests (each op counted once per peer it was queued to).
func (e *Engine) ReplayOps() uint64 { return e.replayOps.Load() }

// ReplayBytes counts the frame bytes queued in answer to peers' digests.
func (e *Engine) ReplayBytes() uint64 { return e.replayBytes.Load() }

// Broadcast stamps local operations and queues them for delivery to every
// peer. Ops must be passed in generation order; per-replica local edits
// must be serialised by the caller (one writer goroutine, or a lock around
// edit+Broadcast) so stamps match generation order. Ops accepted before
// Stop is called are stamped and flushed to peer queues during shutdown,
// and peer writers drain their queues (bounded by a deadline) before the
// links close.
func (e *Engine) Broadcast(ops ...core.Op) error {
	if len(ops) == 0 {
		return nil
	}
	select {
	case <-e.done:
		return ErrStopped
	default:
	}
	cp := make([]core.Op, len(ops))
	copy(cp, ops)
	select {
	case e.inbox <- command{ops: cp}:
		return nil
	case <-e.done:
		return ErrStopped
	}
}

// Connect attaches a peer link and starts its reader and writer
// goroutines. The engine immediately sends the peer an anti-entropy digest
// so a late joiner catches up on history. Connect may be called at any
// time, from any goroutine.
func (e *Engine) Connect(link Link) {
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	if e.stopped {
		link.Close()
		return
	}
	p := &peer{eng: e, link: link, out: make(chan []byte, e.queueDepth), gone: make(chan struct{}), wdone: make(chan struct{})}
	if rr, ok := link.(ReplayRouter); ok {
		p.routes = rr.RoutesReplay()
	}
	e.wg.Add(3)
	go p.writer()
	go p.reader()
	go p.closer()
	e.ctl(func() {
		e.peers = append(e.peers, p)
		clock := e.buf.Clock()
		if f, err := EncodeSyncReq(e.site, clock); err == nil {
			p.trySend(f)
			p.lastSyncAt = time.Now()
			e.digestsSent.Add(1)
		}
	})
}

// HandoffState captures the replica's migration payload for an online
// document handoff: the freshest barrier snapshot (nil when the replica
// cannot snapshot or the document is empty) with its version vector, plus
// every retained message the snapshot does not cover, in causal-delivery
// order. The new owner installs the snapshot and replays only the suffix,
// so it replays zero pre-snapshot operations. The engine stays live —
// HandoffState is a read on the actor, not a shutdown — so stamped
// operations racing the handoff remain in the engine and reach the new
// owner through the clients' anti-entropy instead of being lost.
func (e *Engine) HandoffState() (snap []byte, version vclock.VC, suffix []causal.Message, err error) {
	type state struct {
		snap    []byte
		version vclock.VC
		suffix  []causal.Message
	}
	ch := make(chan state, 1)
	if !e.ctl(func() {
		e.ensureBarrier() // compact at the current clock when possible
		var st state
		if e.snapData != nil {
			st.snap, st.version = e.snapData, e.snapVC.Clone()
		}
		st.suffix = e.retained.AppendMissing(nil, st.version)
		ch <- st
	}) {
		return nil, nil, nil, ErrStopped
	}
	select {
	case st := <-ch:
		return st.snap, st.version, st.suffix, nil
	case <-e.done:
		return nil, nil, nil, ErrStopped
	}
}

// Clock returns the delivered vector clock (nil after Stop). Entry s is the
// count of site s's operations applied here; comparing clocks across
// engines is the quiescence test.
func (e *Engine) Clock() vclock.VC {
	ch := make(chan vclock.VC, 1)
	if !e.ctl(func() { ch <- e.buf.Clock() }) {
		return nil
	}
	select {
	case vc := <-ch:
		return vc
	case <-e.done:
		return nil
	}
}

// Err returns the first replica apply or log error, if any — including
// after Stop, so teardown-order checks stay truthful. A non-nil result
// means the causal delivery contract was violated upstream, or the
// durable log could not be written.
func (e *Engine) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

func (e *Engine) setErr(err error) {
	e.errMu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.errMu.Unlock()
}

// Stop shuts the engine down: the actor stamps and flushes everything
// already accepted, peer writers drain their queues (bounded by
// stopDrainTimeout), links close, goroutines drain, and the durable log
// is synced and closed. Stop blocks until everything has wound down; it
// is idempotent.
func (e *Engine) Stop() {
	e.lifeMu.Lock()
	if !e.stopped {
		e.stopped = true
		close(e.done)
	}
	e.lifeMu.Unlock()
	e.wg.Wait()
}

// ctl queues a control closure for the actor, reporting false if the
// engine already stopped.
//
//treedoc:actorexec
func (e *Engine) ctl(fn func()) bool {
	select {
	case <-e.done:
		return false
	default:
	}
	select {
	case e.inbox <- command{ctl: fn}:
		return true
	case <-e.done:
		return false
	}
}

// run is the actor loop: the only goroutine touching buf, the retained
// log, batch, peers, the durable log and the compaction barrier.
//
//treedoc:actorloop
func (e *Engine) run() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.syncEvery)
	defer ticker.Stop()
	for {
		select {
		case cmd := <-e.inbox:
			e.handle(cmd)
			// Opportunistic drain: batch whatever else is already queued
			// before flushing, without blocking.
		drain:
			for len(e.batch) < e.batchSize {
				select {
				case cmd := <-e.inbox:
					e.handle(cmd)
				default:
					break drain
				}
			}
			e.mintPendingFlattens()
			e.flush()
		case <-ticker.C:
			e.flattenTick()
			e.flush()
			e.maybeCompact()
			e.promoteFloor()
			// The encoded-replay cache lives one tick: peers sharing a
			// frontier cluster their digests within a round, and a stale
			// cache would pin frame memory for ranges nobody asks for again.
			clear(e.replayCache)
			e.retained.Settle()
			e.syncAll()
			e.snapReqSent = false
		case <-e.done:
			// Best-effort drain: Broadcast returned nil for anything already
			// in the inbox, so stamp and flush it rather than losing it —
			// a stopped engine's unsent ops are unrecoverable, unlike the
			// drop-and-heal losses anti-entropy repairs.
			for {
				select {
				case cmd := <-e.inbox:
					e.handle(cmd)
					continue
				default:
				}
				break
			}
			e.mintPendingFlattens()
			e.flush()
			// Frames are in the peer queues; let the writers drain them.
			close(e.drained)
			// A stopped engine can never receive a decision, so any lock an
			// open vote holds would freeze its region forever; release them
			// (the coordinator's timeout aborts the orphaned transaction).
			e.releaseAllLocks()
			if e.log != nil {
				if err := e.log.Close(); err != nil {
					e.setErr(err)
				}
			}
			return
		}
	}
}

func (e *Engine) handle(cmd command) {
	switch {
	case cmd.ctl != nil:
		cmd.ctl()
	case cmd.ops != nil:
		for _, op := range cmd.ops {
			m := e.buf.Stamp(op)
			e.record(m)
			e.batch = append(e.batch, m)
			if e.fl != nil {
				e.onLocalOpStamped(op)
			}
			if len(e.batch) >= e.batchSize {
				e.flush()
			}
		}
	case cmd.msgs != nil:
		for _, m := range cmd.msgs {
			e.ingest(m)
		}
	case cmd.sync != nil:
		e.noteSite(cmd.sync.From)
		e.handleSyncReq(cmd.sync, cmd.from)
	case cmd.snapReq != nil:
		e.noteSite(cmd.snapReq.From)
		e.handleSnapReq(cmd.snapReq, cmd.from)
	case cmd.snap != nil:
		e.handleSnap(cmd.snap)
	case cmd.snapChunk != nil:
		e.handleSnapChunk(cmd.snapChunk)
	case cmd.flatProp != nil:
		e.handleFlatPropose(cmd.flatProp)
	case cmd.flatVote != nil:
		e.handleFlatVote(cmd.flatVote, cmd.from)
	case cmd.flatDec != nil:
		e.handleFlatDecision(cmd.flatDec)
	}
}

// record retains one stamped message for anti-entropy and appends it to
// the durable log when one is configured. The first append failure
// disables the log for the rest of the session: writing successors of a
// missing record would leave a causal hole that restart replay applies
// over (corrupting the tree), whereas a clean prefix merely restarts the
// replica further in the past, which anti-entropy heals. Err reports the
// lost durability.
func (e *Engine) record(m causal.Message) {
	e.retained.Append(m)
	e.sinceSnap++
	if e.log == nil || e.logBroken {
		return
	}
	body, err := EncodeMsgBody(m)
	if err != nil {
		e.logBroken = true
		e.setErr(fmt.Errorf("transport: log encode: %w", err))
		return
	}
	if err := e.log.Append(m.From, m.TS.Get(m.From), body); err != nil {
		e.logBroken = true
		e.setErr(err)
	}
}

// ingest feeds one stamped message to the causal buffer and applies
// whatever becomes deliverable. Delivered messages (own or relayed) are
// retained for anti-entropy: a replica can heal a third party's loss.
func (e *Engine) ingest(m causal.Message) {
	deliverable, err := e.buf.Add(m)
	if err != nil {
		e.wireErrs.Add(1)
		return
	}
	if n := e.buf.Prune(maxPending); n > 0 {
		e.pruned.Add(uint64(n))
	}
	e.deliver(deliverable)
}

// deliver records and applies causally-ready messages. When the replica
// supports batched application, the whole run goes through ApplyBatch —
// one replica lock per run instead of per op.
func (e *Engine) deliver(msgs []causal.Message) {
	if e.batcher != nil && len(msgs) > 1 {
		e.deliverBatch(msgs)
		return
	}
	for _, dm := range msgs {
		e.record(dm)
		op, ok := dm.Payload.(core.Op)
		if !ok {
			continue
		}
		if err := e.doc.Apply(op); err != nil {
			e.setErr(fmt.Errorf("transport: apply op from s%d: %w", dm.From, err))
			continue
		}
		e.applied.Add(1)
		if e.fl != nil {
			e.onRemoteOpDelivered(op)
		}
	}
}

// deliverBatch is deliver's batched form: record every message, then apply
// the ops through the replica's batch entry point. A failing op is
// tolerated exactly as on the per-op path — the error is latched, the op
// skipped, and the rest of the batch continues.
func (e *Engine) deliverBatch(msgs []causal.Message) {
	ops := e.opScratch[:0]
	for _, dm := range msgs {
		e.record(dm)
		if op, ok := dm.Payload.(core.Op); ok {
			ops = append(ops, op)
		}
	}
	all := ops
	for len(ops) > 0 {
		n, err := e.batcher.ApplyBatch(ops)
		e.applied.Add(uint64(n))
		if e.fl != nil {
			for _, op := range ops[:n] {
				e.onRemoteOpDelivered(op)
			}
		}
		if err == nil {
			break
		}
		e.setErr(fmt.Errorf("transport: apply op from s%d: %w", ops[n].Site, err))
		ops = ops[n+1:]
	}
	// Drop the op references (each pins an identifier path) but keep the
	// grown capacity for the next delivered run.
	clear(all)
	e.opScratch = all[:0]
}

// gap returns how far behind clock is relative to ahead: the number of
// operations ahead covers that clock does not.
func gap(ahead, clock vclock.VC) uint64 {
	var n uint64
	for s, a := range ahead {
		if c := clock.Get(s); a > c {
			n += a - c
		}
	}
	return n
}

// vcEqual reports clock equality (mutual domination).
func vcEqual(a, b vclock.VC) bool {
	return a.Dominates(b) && b.Dominates(a)
}

// vcMin returns the pointwise minimum of a replay floor and a digest
// clock: the frontier below which every retained message has been offered
// on the link this tick. A nil floor adopts the clock. Sites missing from
// either side are already served from zero, so they stay absent.
func vcMin(floor, clock vclock.VC) vclock.VC {
	if floor == nil {
		return clock
	}
	out := vclock.New()
	for s, v := range floor {
		if cv := clock.Get(s); cv > 0 {
			if cv < v {
				out[s] = cv
			} else {
				out[s] = v
			}
		}
	}
	return out
}

// handleSyncReq answers an anti-entropy digest. A requester below the
// compaction barrier — or further behind than the snapshot threshold —
// receives the barrier snapshot followed by the retained suffix; anyone
// else gets the retained messages their clock does not cover, chunked
// into frames. The reply goes back through the peer the request arrived
// on (which may be a relay hub; the causal buffers at the edges
// deduplicate). Replies to a torn-down link are skipped: encoding frames
// for a dead peer only wastes cycles and inflates the drop counter.
func (e *Engine) handleSyncReq(req *SyncReqFrame, from *peer) {
	if from == nil || from.dead() || req.From == e.site {
		return
	}
	from.noteHeard(req.Clock)
	// The digest cuts both ways: if it shows this engine is the one far
	// behind, ask that peer for a snapshot instead of waiting out a long
	// op replay (at most one request per sync tick).
	if e.snap != nil && e.snapThreshold > 0 && !e.snapReqSent &&
		gap(req.Clock, e.buf.Clock()) >= uint64(e.snapThreshold) {
		if f, err := EncodeSnapReq(e.site, e.buf.Clock()); err == nil {
			from.trySend(f)
			e.snapReqSent = true
		}
	}
	// One answer per frontier per tick — but only on broadcast links:
	// through a legacy relay, a hot document's cohort digests in lockstep
	// and every answer fans out to the whole group, so a digest at or
	// above a floor already answered this tick is covered by that answer
	// in flight. On a replay-routing link each answer reaches its
	// requester alone; squelching there would starve co-requesters, not
	// deduplicate them.
	if !from.routes {
		if from.replayFloor != nil && req.Clock.Dominates(from.replayFloor) {
			e.repliesSquelched.Add(1)
			return
		}
		from.replayFloor = vcMin(from.replayFloor, req.Clock)
	}
	if e.truncVC != nil && !req.Clock.Dominates(e.truncVC) {
		// Below the truncation floor: some ops the requester is missing no
		// longer exist as messages. Snapshot, then the retained suffix.
		e.sendSnapshot(from, req.From)
		e.sendMissing(from, req.Clock, req.From)
		return
	}
	if e.snapThreshold > 0 && gap(e.buf.Clock(), req.Clock) >= uint64(e.snapThreshold) && e.ensureBarrier() {
		e.sendSnapshot(from, req.From)
		e.sendMissing(from, req.Clock, req.From)
		return
	}
	e.sendMissing(from, req.Clock, req.From)
}

// handleSnapReq answers an explicit snapshot request: barrier snapshot
// plus retained suffix when possible, full op replay otherwise.
func (e *Engine) handleSnapReq(req *SnapReqFrame, from *peer) {
	if from == nil || from.dead() || req.From == e.site {
		return
	}
	from.noteHeard(req.Clock)
	if e.ensureBarrier() {
		e.sendSnapshot(from, req.From)
	}
	e.sendMissing(from, req.Clock, req.From)
}

// handleSnap installs a snapshot catch-up frame: if its version dominates
// local state, the replica adopts it, the causal clock advances to cover
// it, buffered successors deliver, and the snapshot becomes this engine's
// own compaction barrier (persisted when a log is configured). Stale or
// duplicate snapshots are ignored — through a relay hub, one digest can
// draw snapshots from several peers at once.
func (e *Engine) handleSnap(f *SnapFrame) {
	if f.From == e.site || e.snap == nil {
		return
	}
	if e.buf.Clock().Dominates(f.Version) {
		return // already covered: duplicate or stale
	}
	version, err := e.snap.InstallSnapshot(f.Data)
	if err != nil {
		if errors.Is(err, core.ErrStaleSnapshot) {
			// Concurrent local edits the snapshot does not cover: not
			// corrupt, just not installable; anti-entropy converges the
			// slow way.
			return
		}
		// Undecodable or otherwise malformed snapshot bytes: count it, or
		// a never-converging catch-up is undiagnosable.
		e.wireErrs.Add(1)
		return
	}
	e.snapsInstalled.Add(1)
	delivered := e.buf.Advance(version)
	e.adoptBarrier(f.Data, version, version)
	e.deliver(delivered)
}

// adoptBarrier makes (data, version) the engine's serving barrier and
// floor the truncation floor: messages the floor covers are dropped from
// the in-memory log and, when a durable log is configured, from its
// sealed segments. Local compaction passes the previous barrier as the
// floor (one generation of slack keeps the window (floor, barrier]
// servable as plain operations); installing a received snapshot passes
// the installed version itself, because this engine never held the
// messages below it.
func (e *Engine) adoptBarrier(data []byte, version, floor vclock.VC) {
	if e.log != nil {
		if err := e.log.WriteSnapshot(data, version); err != nil {
			e.setErr(err)
			return
		}
		// A stored snapshot supersedes every record below it, including
		// any suffix a failed append hole-punched out of the log — the
		// directory is consistent again, so appending may resume.
		e.logBroken = false
		if floor != nil {
			if _, err := e.log.Compact(floor); err != nil {
				e.setErr(err)
			}
		}
	}
	e.snapData, e.snapVC = data, version.Clone()
	e.barrierAt = time.Now()
	if floor != nil {
		e.truncVC = floor.Clone()
		e.truncateRetained(floor)
		e.pruneEditLog(floor)
	}
	e.sinceSnap = e.retained.CountAbove(version)
}

// truncateRetained drops retained messages the floor covers and
// invalidates the encoded-replay cache: truncation shifts every span
// offset, so cached frames would replay the wrong messages.
func (e *Engine) truncateRetained(floor vclock.VC) {
	e.retained.Truncate(floor)
	clear(e.replayCache)
}

// promoteFloor raises the truncation floor to the serving barrier once
// the barrier has aged past floorDelay: everything below the barrier is
// then dropped from the in-memory log and the sealed segments, bounding
// both even when no further traffic triggers another compaction.
func (e *Engine) promoteFloor() {
	if e.snapVC == nil || (e.truncVC != nil && vcEqual(e.truncVC, e.snapVC)) {
		return
	}
	if time.Since(e.barrierAt) < e.floorDelay() {
		return
	}
	e.truncVC = e.snapVC.Clone()
	if e.log != nil {
		if _, err := e.log.Compact(e.truncVC); err != nil {
			e.setErr(err)
		}
	}
	e.truncateRetained(e.truncVC)
	e.pruneEditLog(e.truncVC)
}

// floorDelay is how long the serving barrier ages before the floor
// catches up to it: a few anti-entropy rounds, so every live peer has had
// digest exchanges covering the window below the barrier.
func (e *Engine) floorDelay() time.Duration {
	return 4 * e.syncEvery
}

// maybeCompact runs the compaction policy: once enough messages have
// accumulated past the barrier, snapshot the replica and truncate
// everything the snapshot covers. It runs from the anti-entropy ticker
// only — Snapshot() is O(document), and attempting it after every inbox
// drain would re-marshal the document continuously whenever racing local
// edits (or a tolerated apply error) keep the version and the delivered
// clock apart.
func (e *Engine) maybeCompact() {
	if e.snap == nil || e.compactEvery <= 0 || e.sinceSnap < e.compactEvery {
		return
	}
	e.compactNow()
}

// compactNow snapshots the replica and adopts it as the barrier. The
// snapshot is only adopted when its version equals the delivered clock
// exactly: a caller may have applied a local edit whose Broadcast the
// actor has not stamped yet, and a barrier covering an unstamped
// operation would hand peers a clock entry for a message that does not
// exist. Skipping is cheap — the next flush retries once the stamp lands.
func (e *Engine) compactNow() bool {
	data, version, err := e.snap.Snapshot()
	if err != nil {
		e.setErr(fmt.Errorf("transport: snapshot: %w", err))
		return false
	}
	if len(version) == 0 {
		// An empty document has nothing to snapshot, and peers reject a
		// snap frame with an empty version as malformed.
		return false
	}
	if !vcEqual(version, e.buf.Clock()) {
		return false
	}
	e.adoptBarrier(data, version, e.snapVC)
	return true
}

// ensureBarrier reports whether a barrier snapshot is available to serve,
// compacting on demand if none exists yet.
func (e *Engine) ensureBarrier() bool {
	if e.snapData != nil {
		return true
	}
	if e.snap == nil {
		return false
	}
	return e.compactNow()
}

// sendSnapshot queues the barrier snapshot to one peer — in one kindSnap
// frame normally, or as a kindSnapChunk sequence when the snapshot
// outgrows MaxSnapFrameSize. The same barrier is offered to the same peer
// at most once per snapResendAfter: repeated digests from a catching-up
// peer must not draw a snapshot per tick, but an offer lost to a full
// queue is eventually repeated.
func (e *Engine) sendSnapshot(to *peer, dst ident.SiteID) {
	if e.snapData == nil || to.dead() {
		return
	}
	if to.lastSnapVC != nil && vcEqual(to.lastSnapVC, e.snapVC) && time.Since(to.lastSnapAt) < snapResendAfter {
		return
	}
	if len(e.snapData) > snapChunkThreshold {
		e.sendSnapshotChunked(to, dst)
	} else {
		frame, err := EncodeSnapReply(e.site, e.snapVC, e.snapData)
		if err != nil {
			// Near-threshold snapshot whose headers (a wide version vector)
			// pushed the frame over the limit: chunk it instead.
			e.sendSnapshotChunked(to, dst)
		} else {
			to.trySend(directed(to, dst, frame))
		}
	}
	to.lastSnapVC, to.lastSnapAt = e.snapVC, time.Now()
	e.snapsSent.Add(1)
}

// sendSnapshotChunked slices the barrier snapshot into kindSnapChunk
// frames, paced by a dedicated sender goroutine that sends blocking into
// the peer queue: the receiver's reassembly is strictly in-order, so a
// chunk dropped by a full queue would void the whole sequence — and a
// queue shallower than the chunk count would void every offer, forever.
// Blocking also bounds the memory in flight to the queue depth; only one
// chunk is encoded at a time. At most one sequence runs per peer; the
// snapshot slice is immutable once adopted, so the goroutine reads it
// safely after the actor has moved on.
func (e *Engine) sendSnapshotChunked(to *peer, dst ident.SiteID) {
	if !to.chunking.CompareAndSwap(false, true) {
		return // a sequence is already in flight to this peer
	}
	data, version := e.snapData, e.snapVC.Clone()
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer to.chunking.Store(false)
		total := uint64(len(data))
		for off := uint64(0); off < total; off += uint64(snapChunkPayload) {
			end := off + uint64(snapChunkPayload)
			if end > total {
				end = total
			}
			frame, err := EncodeSnapChunk(e.site, version, total, off, data[off:end])
			if err != nil {
				e.wireErrs.Add(1)
				return
			}
			frame = directed(to, dst, frame)
			select {
			case to.out <- frame:
			case <-to.gone:
				return
			case <-e.done:
				return
			}
		}
	}()
}

// replayEntry is one cached digest answer: the encoded frames for a
// distinct missing span set, plus the op and byte totals they carry so
// fan-out sends count without re-measuring. Frames are immutable once
// encoded, so sharing them across peers is safe.
type replayEntry struct {
	frames     [][]byte
	ops, bytes uint64
}

// sendMissing queues every retained message the clock does not cover,
// chunked into frames. The missing set comes from the retained log's
// per-site index — a binary search plus contiguous suffix slices per
// site, never a scan of the whole log — and the encoded frames are
// cached per tick keyed by the span set, so a cohort of peers sharing
// one frontier (the hot-document shape) draws one encode and a fan-out
// of the same frames. The log is synced first: retransmissions may
// carry locally stamped operations that no flush has synced yet.
func (e *Engine) sendMissing(to *peer, clock vclock.VC, dst ident.SiteID) {
	// The settle horizon keeps the newest tick-and-a-bit of the log out of
	// the answer: those frames are presumed still in flight on the relay
	// path, and a requester racing them re-digests if any were truly lost.
	spans := e.retained.missingSpans(e.spanScratch[:0], clock, e.retained.SettledLen())
	e.spanScratch = spans[:0]
	if len(spans) == 0 {
		return
	}
	e.syncLog()
	e.keyScratch = spanKey(e.keyScratch[:0], spans)
	ent, ok := e.replayCache[string(e.keyScratch)]
	if !ok {
		ent = e.encodeSpans(spans)
		if e.replayCache == nil {
			e.replayCache = make(map[string]*replayEntry)
		}
		if len(e.replayCache) < replayCacheCap {
			e.replayCache[string(e.keyScratch)] = ent
		}
	}
	for _, f := range ent.frames {
		to.trySend(directed(to, dst, f))
	}
	e.replayOps.Add(ent.ops)
	e.replayBytes.Add(ent.bytes)
}

// directed addresses one answer frame to its requester when the link
// routes replays (the cached broadcast encoding stays shared; the wrap is
// a per-send copy). On a plain link — or if the wrap fails, which cannot
// happen for frames this engine encoded — the frame broadcasts as-is.
func directed(to *peer, dst ident.SiteID, frame []byte) []byte {
	if !to.routes || dst == 0 {
		return frame
	}
	if f, err := EncodeReplay(dst, frame); err == nil {
		return f
	}
	return frame
}

// encodeSpans assembles one digest answer: gather the spans' messages and
// frame them in syncChunk slices.
func (e *Engine) encodeSpans(spans []span) *replayEntry {
	missing := e.missScratch[:0]
	msgs := e.retained.Msgs()
	for _, sp := range spans {
		missing = append(missing, msgs[sp.start:sp.start+sp.n]...)
	}
	ent := &replayEntry{}
	rest := missing
	for len(rest) > 0 {
		n := len(rest)
		if n > syncChunk {
			n = syncChunk
		}
		chunk := rest[:n]
		rest = rest[n:]
		frame, err := EncodeOps(chunk)
		if err != nil {
			// Oversized chunk (large atoms): fall back to one frame per op,
			// as flush does, so one fat chunk cannot starve the rest of the
			// retransmission and leave the peer permanently behind.
			for _, m := range chunk {
				f, err := EncodeOps([]causal.Message{m})
				if err != nil {
					e.wireErrs.Add(1)
					continue
				}
				ent.frames = append(ent.frames, f)
				ent.ops++
				ent.bytes += uint64(len(f))
			}
			continue
		}
		ent.frames = append(ent.frames, frame)
		ent.ops += uint64(n)
		ent.bytes += uint64(len(frame))
	}
	// Drop the gathered message references (each pins an identifier path)
	// but keep the grown capacity for the next digest answered.
	clear(missing)
	e.missScratch = missing[:0]
	return ent
}

// flush syncs the durable log (so no peer can see a stamp that is not on
// stable storage), frames the pending batch and fans it out to every live
// peer, then prunes peers whose links died.
// syncLog flushes appended records to stable storage under FsyncBatch. It
// must run before any frame carrying a locally stamped operation can
// reach a peer — the batch fanout and the anti-entropy retransmission
// path both — or a crash could forget a stamp a peer remembers, and the
// restarted site would re-mint it.
func (e *Engine) syncLog() {
	if e.log != nil && !e.logBroken && e.fsync == FsyncBatch {
		if err := e.log.Sync(); err != nil {
			e.logBroken = true
			e.setErr(err)
		}
	}
}

func (e *Engine) flush() {
	e.syncLog()
	if len(e.batch) > 0 {
		frame, err := EncodeOps(e.batch)
		if err != nil {
			// Oversized batch (giant atom): retry per-op so one outlier
			// cannot poison the rest.
			for _, m := range e.batch {
				f, err := EncodeOps([]causal.Message{m})
				if err != nil {
					e.wireErrs.Add(1)
					continue
				}
				e.fanout(f)
			}
		} else {
			e.fanout(frame)
		}
		e.batch = e.batch[:0]
	}
	live := e.peers[:0]
	for _, p := range e.peers {
		if !p.dead() {
			live = append(live, p)
		}
	}
	e.peers = live
}

func (e *Engine) fanout(frame []byte) {
	for _, p := range e.peers {
		if !p.dead() {
			p.trySend(frame)
		}
	}
}

// syncAll treats the digest as a pull request, not a heartbeat: a peer
// link gets one when its heard frontier has announced operations we lack
// for longer than the gap grace (a real loss, not an in-flight delivery),
// or when the keepalive elapses. Everything else — our own writes, replay
// bursts we are absorbing, idle ticks — is suppressed, so a hot document
// sheds the per-tick digest storm and an idle one goes silent. The
// keepalive digest still goes out every keepaliveTicks intervals: it is
// both the advertisement that lets a peer discover a loss it cannot see
// (their clock covers their heard frontier too) and the bound on how long
// a gap digest lost in transit stays unrepaired.
//
// Suppression never stalls convergence: every replica keepalives, a heard
// keepalive reopens the gap path on whoever is behind, and handleSyncReq
// answers regardless of the answering side's send-side state.
func (e *Engine) syncAll() {
	if len(e.peers) == 0 {
		return
	}
	clock := e.buf.Clock()
	now := time.Now()
	keepalive := time.Duration(keepaliveTicks) * e.syncEvery
	grace := time.Duration(gapGraceTicks) * e.syncEvery
	var frame []byte
	for _, p := range e.peers {
		// The replay floor lives one tick, like the encoded-replay cache:
		// answers sent last tick are with the relay by now, so a fresh
		// round of digests deserves fresh answers.
		p.replayFloor = nil
		if p.dead() {
			continue
		}
		gap := p.heardVC != nil && !clock.Dominates(p.heardVC)
		if !gap {
			p.gapSince = time.Time{}
			if now.Sub(p.lastSyncAt) < keepalive {
				e.digestsSuppressed.Add(1)
				continue
			}
		} else {
			if p.gapSince.IsZero() {
				p.gapSince = now
			}
			if now.Sub(p.gapSince) < grace && now.Sub(p.lastSyncAt) < keepalive {
				e.digestsSuppressed.Add(1)
				continue
			}
			p.gapSince = time.Time{}
		}
		if frame == nil {
			var err error
			frame, err = EncodeSyncReq(e.site, clock)
			if err != nil {
				e.wireErrs.Add(1)
				return
			}
		}
		p.trySend(frame)
		p.lastSyncAt = now
		e.digestsSent.Add(1)
	}
}

// peer is one attached link: a bounded outbound queue drained by a writer
// goroutine, and a reader goroutine decoding inbound frames into the
// engine inbox (blocking there is the inbound backpressure path).
type peer struct {
	eng      *Engine
	link     Link
	out      chan []byte
	gone     chan struct{}
	goneOnce sync.Once
	// wdone closes when the writer returns; closer waits for it on
	// shutdown so the link stays open while the writer drains its queue.
	wdone chan struct{}
	// lastSnapVC/lastSnapAt rate-limit snapshot offers (actor-owned).
	lastSnapVC vclock.VC
	lastSnapAt time.Time
	// lastSyncAt is when this link last received our digest; with no gap
	// to pull against, the next one waits out the keepalive (actor-owned).
	lastSyncAt time.Time
	// gapSince marks when the link's heard frontier first ran ahead of
	// our clock; a gap must outlive gapGraceTicks before it draws a
	// digest, filtering gaps that close via in-flight ops (actor-owned).
	gapSince time.Time
	// replayFloor is the lowest digest clock answered on this link in the
	// current tick (pointwise minimum). A later digest at or above the
	// floor is squelched: the earlier answer, fanned out by the relay,
	// already covers it. Only broadcast links keep a floor — see routes.
	// Cleared each tick (actor-owned).
	replayFloor vclock.VC
	// routes is set before the peer goes live when the link's far end can
	// deliver a directed kindReplay to its addressed site (ReplayRouter);
	// answers on such links are addressed per requester, and the replay
	// floor does not apply — an answer reaching one requester covers no
	// one else. Immutable after Connect.
	routes bool
	// heardVC is the merged frontier of every digest received on this
	// link. A hub link relays digests from many sites, so the merge is the
	// link's collective frontier; merging only ever widens it, which makes
	// suppression conservative — any site announcing something we lack
	// reopens our sends (actor-owned).
	heardVC vclock.VC
	// chunking guards the single in-flight chunked-snapshot sequence to
	// this peer (set by the actor, cleared by the sender goroutine).
	chunking atomic.Bool
}

// noteHeard folds a received digest clock into the link's announced
// frontier (called from the actor's digest handlers only).
func (p *peer) noteHeard(clock vclock.VC) {
	if p.heardVC == nil {
		p.heardVC = vclock.New()
	}
	p.heardVC.Merge(clock)
}

// fail marks the peer dead, which stops its writer and makes closer tear
// the link down.
func (p *peer) fail() { p.goneOnce.Do(func() { close(p.gone) }) }

func (p *peer) dead() bool {
	select {
	case <-p.gone:
		return true
	default:
		return false
	}
}

// trySend queues a frame without blocking; a full queue drops the frame
// and counts it (anti-entropy will retransmit).
func (p *peer) trySend(frame []byte) {
	select {
	case p.out <- frame:
	default:
		p.eng.drops.Add(1)
	}
}

func (p *peer) writer() {
	defer p.eng.wg.Done()
	defer close(p.wdone)
	for {
		select {
		case f := <-p.out:
			if err := p.link.Send(f); err != nil {
				p.fail()
				return
			}
		case <-p.gone:
			return
		case <-p.eng.done:
			p.drainOnStop()
			return
		}
	}
}

// drainOnStop empties the outbound queue before shutdown: Broadcast
// accepted these ops, so exiting with frames still queued would silently
// drop them — and a stopped engine cannot heal the loss via anti-entropy.
// The drain waits for the actor's final flush (which fans the last stamps
// into the queues), then sends until the queue is empty, the link fails,
// or the deadline tears the peer down.
func (p *peer) drainOnStop() {
	select {
	case <-p.eng.drained:
	case <-p.gone:
		return
	}
	timer := time.AfterFunc(stopDrainTimeout, p.fail)
	defer timer.Stop()
	for {
		if p.dead() {
			return
		}
		select {
		case f := <-p.out:
			if err := p.link.Send(f); err != nil {
				p.fail()
				return
			}
		default:
			return // queue drained
		}
	}
}

// reader fails the peer only on link errors: exiting because the engine
// is shutting down must leave the peer alive, or the writer's stop-time
// drain would be cut short and Broadcast-accepted frames silently lost
// (the closer tears the link down once the writer finishes, which in turn
// unblocks and ends the reader).
func (p *peer) reader() {
	defer p.eng.wg.Done()
	for {
		frame, err := p.link.Recv()
		if err != nil {
			p.fail()
			return
		}
		decoded, err := DecodeFrame(frame)
		if err != nil {
			p.eng.wireErrs.Add(1)
			continue
		}
		if rf, ok := decoded.(*ReplayFrame); ok {
			// A directed answer: the address only mattered to the routing
			// relay — replay is idempotent, so a stale route heals a
			// different replica harmlessly. Process the payload.
			if decoded, err = DecodeFrame(rf.Inner); err != nil {
				p.eng.wireErrs.Add(1)
				continue
			}
		}
		var cmd command
		switch f := decoded.(type) {
		case *OpsFrame:
			cmd = command{msgs: f.Msgs, from: p}
		case *SyncReqFrame:
			cmd = command{sync: f, from: p}
		case *SnapReqFrame:
			cmd = command{snapReq: f, from: p}
		case *SnapFrame:
			cmd = command{snap: f, from: p}
		case *SnapChunkFrame:
			cmd = command{snapChunk: f, from: p}
		case *FlatProposeFrame:
			cmd = command{flatProp: f, from: p}
		case *FlatVoteFrame:
			cmd = command{flatVote: f, from: p}
		case *FlatDecisionFrame:
			cmd = command{flatDec: f, from: p}
		default:
			continue
		}
		select {
		case p.eng.inbox <- cmd:
		case <-p.eng.done:
			return
		}
	}
}

// closer tears the link down on engine stop or peer failure, unblocking
// any Send or Recv in flight. On engine stop it waits for the writer to
// drain its queue first (the writer bounds that wait with
// stopDrainTimeout), so flushed frames reach the wire before the link
// closes.
func (p *peer) closer() {
	defer p.eng.wg.Done()
	select {
	case <-p.gone:
	case <-p.eng.done:
		select {
		case <-p.wdone:
		case <-p.gone:
		}
	}
	p.link.Close()
}

package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/treedoc/treedoc/internal/causal"
	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// Applier is the replica interface the engine drives: anything that can
// replay Treedoc operations (the public Doc and TextBuffer both qualify).
// Apply must be safe to call concurrently with the caller's local edits.
type Applier interface {
	Apply(op core.Op) error
}

// ErrStopped is returned by Broadcast after Stop.
var ErrStopped = fmt.Errorf("transport: engine stopped")

// Engine defaults.
const (
	defaultBatchSize    = 64
	defaultQueueDepth   = 256
	defaultSyncInterval = 200 * time.Millisecond
	// syncChunk bounds the operations per anti-entropy reply frame.
	syncChunk = 256
	// maxPending caps the causal buffer's undeliverable backlog: wire-valid
	// messages with permanent causal gaps (a hostile or broken peer) must
	// not pin unbounded memory. Pruned legitimate messages come back via
	// anti-entropy.
	maxPending = 1 << 14
)

// Option configures an Engine.
type Option func(*Engine)

// WithBatchSize sets the maximum operations packed into one outbound frame
// (default 64). Larger batches amortise framing; smaller ones cut latency.
func WithBatchSize(n int) Option {
	return func(e *Engine) {
		if n > 0 && n <= maxBatch {
			e.batchSize = n
		}
	}
}

// WithSyncInterval sets the anti-entropy period (default 200ms). Each tick
// the engine sends its delivered clock to every peer; peers retransmit
// whatever the clock does not cover.
func WithSyncInterval(d time.Duration) Option {
	return func(e *Engine) {
		if d > 0 {
			e.syncEvery = d
		}
	}
}

// WithQueueDepth sets the per-peer outbound queue depth (default 256).
// When a peer's queue is full, frames to it are dropped — anti-entropy
// retransmits them later — so a slow consumer never stalls the actor.
func WithQueueDepth(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.queueDepth = n
		}
	}
}

// command is one unit of work on the actor inbox. Exactly one field group
// is set: local ops to stamp and broadcast, inbound remote messages, an
// inbound sync digest, or a control closure.
type command struct {
	ops  []core.Op
	msgs []causal.Message
	sync *SyncReqFrame
	from *peer
	ctl  func()
}

// Engine runs one replica's replication: causal delivery in, stamped
// batches out, periodic anti-entropy. All distribution state (causal
// buffer, message log, peer set) is owned by a single actor goroutine that
// drains the inbox channel, so none of it needs a lock.
type Engine struct {
	site       ident.SiteID
	doc        Applier
	batchSize  int
	queueDepth int
	syncEvery  time.Duration

	inbox chan command
	done  chan struct{}
	wg    sync.WaitGroup
	// lifeMu orders Connect against Stop: Connect's wg.Add must not race
	// a Stop whose wg.Wait already returned.
	lifeMu  sync.Mutex
	stopped bool

	drops    atomic.Uint64
	wireErrs atomic.Uint64
	applied  atomic.Uint64

	// Actor-owned state: touched only from run().
	buf    *causal.Buffer
	msgLog []causal.Message
	batch  []causal.Message
	peers  []*peer

	// firstErr outlives the actor so Err stays truthful after Stop.
	errMu    sync.Mutex
	firstErr error
}

// NewEngine creates and starts an engine for the given site wrapping the
// given replica. The replica must not have applied remote operations
// already: the engine's causal clock starts empty and must match the
// document's history.
func NewEngine(site ident.SiteID, doc Applier, opts ...Option) (*Engine, error) {
	if site == 0 || site > ident.MaxSiteID {
		return nil, fmt.Errorf("transport: site must be in [1, 2^48)")
	}
	if doc == nil {
		return nil, fmt.Errorf("transport: nil replica")
	}
	e := &Engine{
		site:       site,
		doc:        doc,
		batchSize:  defaultBatchSize,
		queueDepth: defaultQueueDepth,
		syncEvery:  defaultSyncInterval,
		done:       make(chan struct{}),
		buf:        causal.NewBuffer(site),
	}
	for _, o := range opts {
		o(e)
	}
	depth := 4 * e.queueDepth
	if depth < 1024 {
		depth = 1024
	}
	e.inbox = make(chan command, depth)
	e.wg.Add(1)
	go e.run()
	return e, nil
}

// Site returns the engine's site identifier.
func (e *Engine) Site() ident.SiteID { return e.site }

// Drops counts outbound frames discarded because a peer queue was full.
// Anti-entropy repairs the loss; a steadily climbing count means a peer is
// persistently slower than the local edit rate.
func (e *Engine) Drops() uint64 { return e.drops.Load() }

// WireErrs counts malformed frames and messages discarded on receive.
func (e *Engine) WireErrs() uint64 { return e.wireErrs.Load() }

// Applied counts remote operations replayed into the replica.
func (e *Engine) Applied() uint64 { return e.applied.Load() }

// Broadcast stamps local operations and queues them for delivery to every
// peer. Ops must be passed in generation order; per-replica local edits
// must be serialised by the caller (one writer goroutine, or a lock around
// edit+Broadcast) so stamps match generation order.
func (e *Engine) Broadcast(ops ...core.Op) error {
	if len(ops) == 0 {
		return nil
	}
	select {
	case <-e.done:
		return ErrStopped
	default:
	}
	cp := make([]core.Op, len(ops))
	copy(cp, ops)
	select {
	case e.inbox <- command{ops: cp}:
		return nil
	case <-e.done:
		return ErrStopped
	}
}

// Connect attaches a peer link and starts its reader and writer
// goroutines. The engine immediately sends the peer an anti-entropy digest
// so a late joiner catches up on history. Connect may be called at any
// time, from any goroutine.
func (e *Engine) Connect(link Link) {
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	if e.stopped {
		link.Close()
		return
	}
	p := &peer{eng: e, link: link, out: make(chan []byte, e.queueDepth), gone: make(chan struct{})}
	e.wg.Add(3)
	go p.writer()
	go p.reader()
	go p.closer()
	e.ctl(func() {
		e.peers = append(e.peers, p)
		if f, err := EncodeSyncReq(e.site, e.buf.Clock()); err == nil {
			p.trySend(f)
		}
	})
}

// Clock returns the delivered vector clock (nil after Stop). Entry s is the
// count of site s's operations applied here; comparing clocks across
// engines is the quiescence test.
func (e *Engine) Clock() vclock.VC {
	ch := make(chan vclock.VC, 1)
	if !e.ctl(func() { ch <- e.buf.Clock() }) {
		return nil
	}
	select {
	case vc := <-ch:
		return vc
	case <-e.done:
		return nil
	}
}

// Err returns the first replica apply error, if any — including after
// Stop, so teardown-order checks stay truthful. A non-nil result means the
// causal delivery contract was violated upstream.
func (e *Engine) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

func (e *Engine) setErr(err error) {
	e.errMu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.errMu.Unlock()
}

// Stop shuts the engine down: the actor exits, links close, goroutines
// drain. Stop blocks until everything has wound down; it is idempotent.
func (e *Engine) Stop() {
	e.lifeMu.Lock()
	if !e.stopped {
		e.stopped = true
		close(e.done)
	}
	e.lifeMu.Unlock()
	e.wg.Wait()
}

// ctl queues a control closure for the actor, reporting false if the
// engine already stopped.
func (e *Engine) ctl(fn func()) bool {
	select {
	case <-e.done:
		return false
	default:
	}
	select {
	case e.inbox <- command{ctl: fn}:
		return true
	case <-e.done:
		return false
	}
}

// run is the actor loop: the only goroutine touching buf, msgLog, batch
// and peers.
func (e *Engine) run() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.syncEvery)
	defer ticker.Stop()
	for {
		select {
		case cmd := <-e.inbox:
			e.handle(cmd)
			// Opportunistic drain: batch whatever else is already queued
			// before flushing, without blocking.
		drain:
			for len(e.batch) < e.batchSize {
				select {
				case cmd := <-e.inbox:
					e.handle(cmd)
				default:
					break drain
				}
			}
			e.flush()
		case <-ticker.C:
			e.flush()
			e.syncAll()
		case <-e.done:
			// Best-effort drain: Broadcast returned nil for anything already
			// in the inbox, so stamp and flush it rather than losing it —
			// a stopped engine's unsent ops are unrecoverable, unlike the
			// drop-and-heal losses anti-entropy repairs.
			for {
				select {
				case cmd := <-e.inbox:
					e.handle(cmd)
					continue
				default:
				}
				break
			}
			e.flush()
			return
		}
	}
}

func (e *Engine) handle(cmd command) {
	switch {
	case cmd.ctl != nil:
		cmd.ctl()
	case cmd.ops != nil:
		for _, op := range cmd.ops {
			m := e.buf.Stamp(op)
			e.msgLog = append(e.msgLog, m)
			e.batch = append(e.batch, m)
			if len(e.batch) >= e.batchSize {
				e.flush()
			}
		}
	case cmd.msgs != nil:
		for _, m := range cmd.msgs {
			e.ingest(m)
		}
	case cmd.sync != nil:
		e.handleSyncReq(cmd.sync, cmd.from)
	}
}

// ingest feeds one stamped message to the causal buffer and applies
// whatever becomes deliverable. Delivered messages (own or relayed) are
// retained for anti-entropy: a replica can heal a third party's loss.
func (e *Engine) ingest(m causal.Message) {
	deliverable, err := e.buf.Add(m)
	if err != nil {
		e.wireErrs.Add(1)
		return
	}
	if n := e.buf.Prune(maxPending); n > 0 {
		e.wireErrs.Add(uint64(n))
	}
	for _, dm := range deliverable {
		e.msgLog = append(e.msgLog, dm)
		op, ok := dm.Payload.(core.Op)
		if !ok {
			continue
		}
		if err := e.doc.Apply(op); err != nil {
			e.setErr(fmt.Errorf("transport: apply op from s%d: %w", dm.From, err))
			continue
		}
		e.applied.Add(1)
	}
}

// handleSyncReq answers an anti-entropy digest with everything retained
// that the requester's clock does not cover, chunked into frames. The
// reply goes back through the peer the request arrived on (which may be a
// relay hub; the causal buffers at the edges deduplicate).
func (e *Engine) handleSyncReq(req *SyncReqFrame, from *peer) {
	if from == nil || req.From == e.site {
		return
	}
	var missing []causal.Message
	for _, m := range e.msgLog {
		if m.TS.Get(m.From) > req.Clock.Get(m.From) {
			missing = append(missing, m)
		}
	}
	for len(missing) > 0 {
		n := len(missing)
		if n > syncChunk {
			n = syncChunk
		}
		chunk := missing[:n]
		missing = missing[n:]
		frame, err := EncodeOps(chunk)
		if err != nil {
			// Oversized chunk (large atoms): fall back to one frame per op,
			// as flush does, so one fat chunk cannot starve the rest of the
			// retransmission and leave the peer permanently behind.
			for _, m := range chunk {
				f, err := EncodeOps([]causal.Message{m})
				if err != nil {
					e.wireErrs.Add(1)
					continue
				}
				from.trySend(f)
			}
			continue
		}
		from.trySend(frame)
	}
}

// flush frames the pending batch and fans it out to every live peer, then
// prunes peers whose links died.
func (e *Engine) flush() {
	if len(e.batch) > 0 {
		frame, err := EncodeOps(e.batch)
		if err != nil {
			// Oversized batch (giant atom): retry per-op so one outlier
			// cannot poison the rest.
			for _, m := range e.batch {
				f, err := EncodeOps([]causal.Message{m})
				if err != nil {
					e.wireErrs.Add(1)
					continue
				}
				e.fanout(f)
			}
		} else {
			e.fanout(frame)
		}
		e.batch = e.batch[:0]
	}
	live := e.peers[:0]
	for _, p := range e.peers {
		if !p.dead() {
			live = append(live, p)
		}
	}
	e.peers = live
}

func (e *Engine) fanout(frame []byte) {
	for _, p := range e.peers {
		if !p.dead() {
			p.trySend(frame)
		}
	}
}

// syncAll sends the anti-entropy digest to every live peer.
func (e *Engine) syncAll() {
	if len(e.peers) == 0 {
		return
	}
	frame, err := EncodeSyncReq(e.site, e.buf.Clock())
	if err != nil {
		e.wireErrs.Add(1)
		return
	}
	e.fanout(frame)
}

// peer is one attached link: a bounded outbound queue drained by a writer
// goroutine, and a reader goroutine decoding inbound frames into the
// engine inbox (blocking there is the inbound backpressure path).
type peer struct {
	eng      *Engine
	link     Link
	out      chan []byte
	gone     chan struct{}
	goneOnce sync.Once
}

// fail marks the peer dead, which stops its writer and makes closer tear
// the link down.
func (p *peer) fail() { p.goneOnce.Do(func() { close(p.gone) }) }

func (p *peer) dead() bool {
	select {
	case <-p.gone:
		return true
	default:
		return false
	}
}

// trySend queues a frame without blocking; a full queue drops the frame
// and counts it (anti-entropy will retransmit).
func (p *peer) trySend(frame []byte) {
	select {
	case p.out <- frame:
	default:
		p.eng.drops.Add(1)
	}
}

func (p *peer) writer() {
	defer p.eng.wg.Done()
	for {
		select {
		case f := <-p.out:
			if err := p.link.Send(f); err != nil {
				p.fail()
				return
			}
		case <-p.gone:
			return
		case <-p.eng.done:
			return
		}
	}
}

func (p *peer) reader() {
	defer p.eng.wg.Done()
	defer p.fail()
	for {
		frame, err := p.link.Recv()
		if err != nil {
			return
		}
		decoded, err := DecodeFrame(frame)
		if err != nil {
			p.eng.wireErrs.Add(1)
			continue
		}
		var cmd command
		switch f := decoded.(type) {
		case *OpsFrame:
			cmd = command{msgs: f.Msgs, from: p}
		case *SyncReqFrame:
			cmd = command{sync: f, from: p}
		default:
			continue
		}
		select {
		case p.eng.inbox <- cmd:
		case <-p.eng.done:
			return
		}
	}
}

// closer tears the link down on engine stop or peer failure, unblocking
// any Send or Recv in flight.
func (p *peer) closer() {
	defer p.eng.wg.Done()
	select {
	case <-p.eng.done:
	case <-p.gone:
	}
	p.link.Close()
}

package transport

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"github.com/treedoc/treedoc/internal/causal"
	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// testMsgs builds a small batch of stamped operations from a real document
// so the paths and disambiguators are valid.
func testMsgs(t testing.TB) []causal.Message {
	t.Helper()
	doc, err := core.NewDocument(core.Config{Site: 7})
	if err != nil {
		t.Fatal(err)
	}
	buf := causal.NewBuffer(7)
	var msgs []causal.Message
	for i, atom := range []string{"a", "b", "c"} {
		op, err := doc.InsertAt(i, atom)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, buf.Stamp(op))
	}
	del, err := doc.DeleteAt(1)
	if err != nil {
		t.Fatal(err)
	}
	msgs = append(msgs, buf.Stamp(del))
	return msgs
}

func TestOpsFrameRoundTrip(t *testing.T) {
	msgs := testMsgs(t)
	frame, err := EncodeOps(msgs)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := decoded.(*OpsFrame)
	if !ok {
		t.Fatalf("decoded %T, want *OpsFrame", decoded)
	}
	if !reflect.DeepEqual(f.Msgs, msgs) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", f.Msgs, msgs)
	}
}

func TestSyncReqRoundTrip(t *testing.T) {
	clock := vclock.VC{1: 5, 9: 2, ident.MaxSiteID: 7}
	frame, err := EncodeSyncReq(3, clock)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := decoded.(*SyncReqFrame)
	if !ok {
		t.Fatalf("decoded %T, want *SyncReqFrame", decoded)
	}
	if f.From != 3 || !reflect.DeepEqual(f.Clock, clock) {
		t.Fatalf("round trip mismatch: %v %v", f.From, f.Clock)
	}
}

func TestDecodeFrameRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x00},
		{0xff, 1, 2, 3},
		{kindOps},                    // missing count
		{kindOps, 0x01},              // promised one op, empty body
		{kindSyncReq, 0x00},          // zero sender
		{kindSyncReq, 0x05, 1, 1, 0}, // zero clock count
	}
	for _, c := range cases {
		if _, err := DecodeFrame(c); err == nil {
			t.Errorf("DecodeFrame(%v) accepted garbage", c)
		}
	}
}

func TestFrameIO(t *testing.T) {
	msgs := testMsgs(t)
	f1, err := EncodeOps(msgs)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := EncodeSyncReq(7, vclock.VC{7: 4})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := WriteFrame(&b, f1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&b, f2); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&b)
	for _, want := range [][]byte{f1, f2} {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame corrupted in transit")
		}
	}
	if _, err := ReadFrame(r); err == nil {
		t.Fatal("expected error at stream end")
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	r := bufio.NewReader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0}))
	if _, err := ReadFrame(r); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}

// FuzzDecodeFrame asserts the wire decoder never panics and that anything
// it accepts re-encodes to an equivalent frame.
func FuzzDecodeFrame(f *testing.F) {
	msgs := testMsgs(f)
	if frame, err := EncodeOps(msgs); err == nil {
		f.Add(frame)
	}
	if frame, err := EncodeSyncReq(3, vclock.VC{1: 5, 9: 2}); err == nil {
		f.Add(frame)
	}
	f.Add([]byte{kindOps, 0x00})
	f.Add([]byte{kindSyncReq, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeFrame(data)
		if err != nil {
			return
		}
		switch d := decoded.(type) {
		case *OpsFrame:
			re, err := EncodeOps(d.Msgs)
			if err != nil {
				t.Fatalf("accepted ops frame failed to re-encode: %v", err)
			}
			again, err := DecodeFrame(re)
			if err != nil {
				t.Fatalf("re-encoded ops frame rejected: %v", err)
			}
			if !reflect.DeepEqual(again, decoded) {
				t.Fatalf("ops frame not stable under re-encoding")
			}
		case *SyncReqFrame:
			re, err := EncodeSyncReq(d.From, d.Clock)
			if err != nil {
				t.Fatalf("accepted sync frame failed to re-encode: %v", err)
			}
			again, err := DecodeFrame(re)
			if err != nil {
				t.Fatalf("re-encoded sync frame rejected: %v", err)
			}
			if !reflect.DeepEqual(again, decoded) {
				t.Fatalf("sync frame not stable under re-encoding")
			}
		}
	})
}

func TestSnapReqRoundTrip(t *testing.T) {
	clock := vclock.VC{1: 5, 9: 2}
	frame, err := EncodeSnapReq(4, clock)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := decoded.(*SnapReqFrame)
	if !ok {
		t.Fatalf("decoded %T, want *SnapReqFrame", decoded)
	}
	if f.From != 4 || !reflect.DeepEqual(f.Clock, clock) {
		t.Fatalf("round trip: %+v", f)
	}
}

func TestSnapReplyRoundTrip(t *testing.T) {
	version := vclock.VC{1: 100, 2: 42}
	data := bytes.Repeat([]byte{0xCD}, 4096)
	frame, err := EncodeSnapReply(2, version, data)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := decoded.(*SnapFrame)
	if !ok {
		t.Fatalf("decoded %T, want *SnapFrame", decoded)
	}
	if f.From != 2 || !reflect.DeepEqual(f.Version, version) || !bytes.Equal(f.Data, data) {
		t.Fatalf("round trip mismatch")
	}
}

func TestSnapReplyRejectsEmptyVersion(t *testing.T) {
	frame, err := EncodeSnapReply(2, vclock.New(), []byte("state"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrame(frame); err == nil {
		t.Fatal("snap frame with empty version accepted")
	}
}

func TestSnapFrameSizeLimits(t *testing.T) {
	// A snap frame may exceed MaxFrameSize (up to MaxSnapFrameSize)...
	big := make([]byte, MaxFrameSize+1024)
	frame, err := EncodeSnapReply(1, vclock.VC{1: 1}, big)
	if err != nil {
		t.Fatalf("big snap frame refused: %v", err)
	}
	if _, err := DecodeFrame(frame); err != nil {
		t.Fatalf("big snap frame rejected on decode: %v", err)
	}
	var net bytes.Buffer
	if err := WriteFrame(&net, frame); err != nil {
		t.Fatalf("big snap frame rejected on write: %v", err)
	}
	rt, err := ReadFrame(bufio.NewReader(&net))
	if err != nil {
		t.Fatalf("big snap frame rejected on read: %v", err)
	}
	if !bytes.Equal(rt, frame) {
		t.Fatal("big snap frame corrupted in framing")
	}
	// ...but no other kind may: an oversized length prefix claiming kindOps
	// must be refused before the body is read.
	var hostile bytes.Buffer
	hostile.Write([]byte{0, 32, 0, 0}) // length 2MiB
	hostile.WriteByte(kindOps)
	hostile.Write(make([]byte, 64))
	if _, err := ReadFrame(bufio.NewReader(&hostile)); err == nil {
		t.Fatal("oversized non-snap frame accepted")
	}
	// And beyond MaxSnapFrameSize nothing goes.
	if _, err := EncodeSnapReply(1, vclock.VC{1: 1}, make([]byte, MaxSnapFrameSize)); err == nil {
		t.Fatal("snap frame beyond MaxSnapFrameSize accepted")
	}
}

func TestMsgBodyRoundTrip(t *testing.T) {
	for _, m := range testMsgs(t) {
		body, err := EncodeMsgBody(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeMsgBody(body)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("log record round trip:\n got %v\nwant %v", got, m)
		}
		if _, err := DecodeMsgBody(append(body, 0x00)); err == nil {
			t.Fatal("trailing bytes accepted in log record")
		}
	}
}

// FuzzSnapFrame fuzzes the snapshot catch-up frame kinds specifically:
// arbitrary bodies behind kindSnapReq and kindSnap bytes must decode
// cleanly or fail cleanly, never panic, and valid frames must re-encode
// to the same bytes.
func FuzzSnapFrame(f *testing.F) {
	if fr, err := EncodeSnapReq(4, vclock.VC{1: 5, 9: 2}); err == nil {
		f.Add(fr)
	}
	if fr, err := EncodeSnapReply(2, vclock.VC{1: 100}, []byte("snapshot-bytes")); err == nil {
		f.Add(fr)
	}
	f.Add([]byte{kindSnap})
	f.Add([]byte{kindSnapReq, 0xFF})
	f.Fuzz(func(t *testing.T, body []byte) {
		for _, kind := range []byte{kindSnapReq, kindSnap} {
			frame := append([]byte{kind}, body...)
			decoded, err := DecodeFrame(frame)
			if err != nil {
				continue
			}
			// Whatever decodes must semantically round-trip: re-encoding and
			// re-decoding yields the same frame (byte equality is too strict,
			// since Uvarint tolerates non-minimal encodings on input).
			switch fr := decoded.(type) {
			case *SnapReqFrame:
				re, err := EncodeSnapReq(fr.From, fr.Clock)
				if err != nil {
					t.Fatalf("decoded snap request does not re-encode: %v", err)
				}
				again, err := DecodeFrame(re)
				if err != nil {
					t.Fatalf("re-encoded snap request does not decode: %v", err)
				}
				if !reflect.DeepEqual(again, fr) {
					t.Fatalf("snap request round trip:\n got %+v\nwant %+v", again, fr)
				}
			case *SnapFrame:
				re, err := EncodeSnapReply(fr.From, fr.Version, fr.Data)
				if err != nil {
					t.Fatalf("decoded snap frame does not re-encode: %v", err)
				}
				again, err := DecodeFrame(re)
				if err != nil {
					t.Fatalf("re-encoded snap frame does not decode: %v", err)
				}
				ff, ok := again.(*SnapFrame)
				if !ok || ff.From != fr.From || !reflect.DeepEqual(ff.Version, fr.Version) || !bytes.Equal(ff.Data, fr.Data) {
					t.Fatalf("snap frame round trip mismatch")
				}
			default:
				t.Fatalf("kind %#x decoded to %T", kind, decoded)
			}
		}
	})
}

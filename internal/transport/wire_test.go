package transport

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"github.com/treedoc/treedoc/internal/causal"
	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// testMsgs builds a small batch of stamped operations from a real document
// so the paths and disambiguators are valid.
func testMsgs(t testing.TB) []causal.Message {
	t.Helper()
	doc, err := core.NewDocument(core.Config{Site: 7})
	if err != nil {
		t.Fatal(err)
	}
	buf := causal.NewBuffer(7)
	var msgs []causal.Message
	for i, atom := range []string{"a", "b", "c"} {
		op, err := doc.InsertAt(i, atom)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, buf.Stamp(op))
	}
	del, err := doc.DeleteAt(1)
	if err != nil {
		t.Fatal(err)
	}
	msgs = append(msgs, buf.Stamp(del))
	return msgs
}

func TestOpsFrameRoundTrip(t *testing.T) {
	msgs := testMsgs(t)
	frame, err := EncodeOps(msgs)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := decoded.(*OpsFrame)
	if !ok {
		t.Fatalf("decoded %T, want *OpsFrame", decoded)
	}
	if !reflect.DeepEqual(f.Msgs, msgs) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", f.Msgs, msgs)
	}
}

func TestSyncReqRoundTrip(t *testing.T) {
	clock := vclock.VC{1: 5, 9: 2, ident.MaxSiteID: 7}
	frame, err := EncodeSyncReq(3, clock)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := decoded.(*SyncReqFrame)
	if !ok {
		t.Fatalf("decoded %T, want *SyncReqFrame", decoded)
	}
	if f.From != 3 || !reflect.DeepEqual(f.Clock, clock) {
		t.Fatalf("round trip mismatch: %v %v", f.From, f.Clock)
	}
}

func TestDecodeFrameRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x00},
		{0xff, 1, 2, 3},
		{kindOps},                    // missing count
		{kindOps, 0x01},              // promised one op, empty body
		{kindSyncReq, 0x00},          // zero sender
		{kindSyncReq, 0x05, 1, 1, 0}, // zero clock count
	}
	for _, c := range cases {
		if _, err := DecodeFrame(c); err == nil {
			t.Errorf("DecodeFrame(%v) accepted garbage", c)
		}
	}
}

func TestFrameIO(t *testing.T) {
	msgs := testMsgs(t)
	f1, err := EncodeOps(msgs)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := EncodeSyncReq(7, vclock.VC{7: 4})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := WriteFrame(&b, f1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&b, f2); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&b)
	for _, want := range [][]byte{f1, f2} {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame corrupted in transit")
		}
	}
	if _, err := ReadFrame(r); err == nil {
		t.Fatal("expected error at stream end")
	}
}

func TestReadFrameRejectsOversizedLength(t *testing.T) {
	r := bufio.NewReader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0}))
	if _, err := ReadFrame(r); err == nil {
		t.Fatal("oversized length prefix accepted")
	}
}

// FuzzDecodeFrame asserts the wire decoder never panics and that anything
// it accepts re-encodes to an equivalent frame.
func FuzzDecodeFrame(f *testing.F) {
	msgs := testMsgs(f)
	if frame, err := EncodeOps(msgs); err == nil {
		f.Add(frame)
	}
	if frame, err := EncodeSyncReq(3, vclock.VC{1: 5, 9: 2}); err == nil {
		f.Add(frame)
	}
	f.Add([]byte{kindOps, 0x00})
	f.Add([]byte{kindSyncReq, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeFrame(data)
		if err != nil {
			return
		}
		switch d := decoded.(type) {
		case *OpsFrame:
			re, err := EncodeOps(d.Msgs)
			if err != nil {
				t.Fatalf("accepted ops frame failed to re-encode: %v", err)
			}
			again, err := DecodeFrame(re)
			if err != nil {
				t.Fatalf("re-encoded ops frame rejected: %v", err)
			}
			if !reflect.DeepEqual(again, decoded) {
				t.Fatalf("ops frame not stable under re-encoding")
			}
		case *SyncReqFrame:
			re, err := EncodeSyncReq(d.From, d.Clock)
			if err != nil {
				t.Fatalf("accepted sync frame failed to re-encode: %v", err)
			}
			again, err := DecodeFrame(re)
			if err != nil {
				t.Fatalf("re-encoded sync frame rejected: %v", err)
			}
			if !reflect.DeepEqual(again, decoded) {
				t.Fatalf("sync frame not stable under re-encoding")
			}
		}
	})
}

package shardmap

import (
	"fmt"
	"testing"
)

func TestOwnerDeterministic(t *testing.T) {
	nodes := []string{"10.0.0.1:9707", "10.0.0.2:9707", "10.0.0.3:9707"}
	a, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings built from the same list disagree on %q", key)
		}
	}
}

func TestOwnerSpread(t *testing.T) {
	// Realistic node addresses differing only in trailing digits: the case
	// that degenerates without post-hash avalanching (raw FNV-1a barely
	// mixes trailing-byte differences, clustering each node's vnodes into
	// one arc).
	for _, nodes := range [][]string{
		{"a:1", "b:1", "c:1"},
		{"127.0.0.1:19801", "127.0.0.1:19802"},
		{"hub1.internal:9707", "hub2.internal:9707", "hub3.internal:9707"},
	} {
		m, err := New(nodes, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		const keys = 10_000
		for i := 0; i < keys; i++ {
			counts[m.Owner(fmt.Sprintf("doc-%d", i))]++
		}
		if len(counts) != len(nodes) {
			t.Fatalf("ring %v: only %d of %d nodes own any key: %v", nodes, len(counts), len(nodes), counts)
		}
		for n, c := range counts {
			// Even-ish split: every node must own at least half its fair
			// share of the keyspace.
			if c < keys/(2*len(nodes)) {
				t.Errorf("ring %v: node %s owns only %d/%d keys", nodes, n, c, keys)
			}
		}
	}
}

func TestMembershipChangeMovesLittle(t *testing.T) {
	before, err := New([]string{"a:1", "b:1", "c:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := New([]string{"a:1", "b:1", "c:1", "d:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 10_000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if before.Owner(key) != after.Owner(key) {
			moved++
		}
	}
	// Adding a fourth node should move roughly a quarter of the keys, and
	// certainly far fewer than a naive mod-N rehash (three quarters).
	if moved > keys/2 {
		t.Fatalf("adding one node moved %d/%d keys", moved, keys)
	}
	if moved == 0 {
		t.Fatal("adding one node moved nothing: the new node owns no keys")
	}
}

// TestMovedMatchesOwnerDiff is the Moved contract: a key falls inside a
// moved arc exactly when the two rings assign it different owners, and the
// arc's From/To annotations name exactly those owners.
func TestMovedMatchesOwnerDiff(t *testing.T) {
	cases := []struct{ old, new []string }{
		{[]string{"a:1", "b:1"}, []string{"a:1", "b:1", "c:1"}},                  // join
		{[]string{"a:1", "b:1", "c:1"}, []string{"a:1", "b:1"}},                  // leave
		{[]string{"a:1", "b:1", "c:1"}, []string{"a:1", "b:1", "d:1"}},           // replace
		{[]string{"a:1"}, []string{"a:1", "b:1", "c:1", "d:1", "e:1"}},           // bulk join
		{[]string{"hub1:9707", "hub2:9707"}, []string{"hub2:9707", "hub1:9707"}}, // reorder only: nothing moves
	}
	for _, tc := range cases {
		old, err := NewRing(1, tc.old)
		if err != nil {
			t.Fatal(err)
		}
		next, err := NewRing(2, tc.new)
		if err != nil {
			t.Fatal(err)
		}
		arcs := Moved(old, next)
		for i := 0; i < 5000; i++ {
			key := fmt.Sprintf("doc-%d", i)
			was, is := old.Owner(key), next.Owner(key)
			if got := Contains(arcs, key); got != (was != is) {
				t.Fatalf("ring %v -> %v: Contains(%q) = %v, but owner %s -> %s", tc.old, tc.new, key, got, was, is)
			}
			if was != is {
				found := false
				for _, a := range arcs {
					if a.contains(hash(key)) {
						if a.From != was || a.To != is {
							t.Fatalf("key %q in arc %+v but moved %s -> %s", key, a, was, is)
						}
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("key %q moved but no arc covers it", key)
				}
			}
		}
	}
}

// TestMovedDeterministic: every process diffing the same pair of rings
// computes byte-identical arcs.
func TestMovedDeterministic(t *testing.T) {
	mk := func() []Arc {
		old, _ := NewRing(3, []string{"a:1", "b:1", "c:1"})
		next, _ := NewRing(4, []string{"a:1", "b:1", "c:1", "d:1"})
		return Moved(old, next)
	}
	a, b := mk(), mk()
	if len(a) == 0 {
		t.Fatal("join moved no arcs")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("Moved is not deterministic across processes")
	}
}

func TestMovedIdenticalRings(t *testing.T) {
	old, _ := NewRing(1, []string{"a:1", "b:1"})
	next, _ := NewRing(2, []string{"a:1", "b:1"})
	if arcs := Moved(old, next); len(arcs) != 0 {
		t.Fatalf("identical membership produced %d moved arcs: %+v", len(arcs), arcs)
	}
}

func TestRingBasics(t *testing.T) {
	r, err := NewRing(7, []string{"a:1", "b:1"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch != 7 {
		t.Fatalf("epoch = %d", r.Epoch)
	}
	if !r.Has("a:1") || r.Has("z:1") {
		t.Fatal("Has is wrong")
	}
	m, _ := New([]string{"a:1", "b:1"}, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if r.Owner(key) != m.Owner(key) {
			t.Fatalf("Ring and Map disagree on %q", key)
		}
	}
	if _, err := NewRing(1, nil); err == nil {
		t.Fatal("empty ring accepted")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := New([]string{"a:1", "a:1"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := New([]string{""}, 0); err == nil {
		t.Fatal("empty node address accepted")
	}
}

package shardmap

import (
	"fmt"
	"testing"
)

func TestOwnerDeterministic(t *testing.T) {
	nodes := []string{"10.0.0.1:9707", "10.0.0.2:9707", "10.0.0.3:9707"}
	a, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("rings built from the same list disagree on %q", key)
		}
	}
}

func TestOwnerSpread(t *testing.T) {
	// Realistic node addresses differing only in trailing digits: the case
	// that degenerates without post-hash avalanching (raw FNV-1a barely
	// mixes trailing-byte differences, clustering each node's vnodes into
	// one arc).
	for _, nodes := range [][]string{
		{"a:1", "b:1", "c:1"},
		{"127.0.0.1:19801", "127.0.0.1:19802"},
		{"hub1.internal:9707", "hub2.internal:9707", "hub3.internal:9707"},
	} {
		m, err := New(nodes, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		const keys = 10_000
		for i := 0; i < keys; i++ {
			counts[m.Owner(fmt.Sprintf("doc-%d", i))]++
		}
		if len(counts) != len(nodes) {
			t.Fatalf("ring %v: only %d of %d nodes own any key: %v", nodes, len(counts), len(nodes), counts)
		}
		for n, c := range counts {
			// Even-ish split: every node must own at least half its fair
			// share of the keyspace.
			if c < keys/(2*len(nodes)) {
				t.Errorf("ring %v: node %s owns only %d/%d keys", nodes, n, c, keys)
			}
		}
	}
}

func TestMembershipChangeMovesLittle(t *testing.T) {
	before, err := New([]string{"a:1", "b:1", "c:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := New([]string{"a:1", "b:1", "c:1", "d:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 10_000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if before.Owner(key) != after.Owner(key) {
			moved++
		}
	}
	// Adding a fourth node should move roughly a quarter of the keys, and
	// certainly far fewer than a naive mod-N rehash (three quarters).
	if moved > keys/2 {
		t.Fatalf("adding one node moved %d/%d keys", moved, keys)
	}
	if moved == 0 {
		t.Fatal("adding one node moved nothing: the new node owns no keys")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := New([]string{"a:1", "a:1"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := New([]string{""}, 0); err == nil {
		t.Fatal("empty node address accepted")
	}
}

// Package shardmap is the consistent-hash routing layer behind hub
// sharding: N hub processes split the document space, and every process
// (and every doc-aware client library, if it wants to skip a redirect
// hop) computes the same document→owner assignment from the same node
// list. Consistent hashing keeps the assignment stable under membership
// change: adding or removing one node moves only the documents on the
// ring arcs that node owned, not the whole keyspace.
package shardmap

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is the virtual-node count per physical node: enough ring
// points that a two- or three-node ring splits the keyspace near-evenly.
const defaultVnodes = 128

// Map is an immutable consistent-hash ring over a set of node addresses.
// All methods are safe for concurrent use.
type Map struct {
	nodes  []string
	points []point // sorted by hash
}

type point struct {
	hash uint64
	node string
}

// New builds a ring over the given node addresses with vnodes virtual
// nodes each (0 means the default). Node addresses must be non-empty and
// unique; the hash is FNV-1a, so every process building a ring from the
// same list computes the same assignment.
func New(nodes []string, vnodes int) (*Map, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("shardmap: empty node list")
	}
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	seen := make(map[string]bool, len(nodes))
	m := &Map{
		nodes:  make([]string, 0, len(nodes)),
		points: make([]point, 0, len(nodes)*vnodes),
	}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("shardmap: empty node address")
		}
		if seen[n] {
			return nil, fmt.Errorf("shardmap: duplicate node %q", n)
		}
		seen[n] = true
		m.nodes = append(m.nodes, n)
		for i := 0; i < vnodes; i++ {
			m.points = append(m.points, point{hash: hash(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(m.points, func(i, j int) bool {
		if m.points[i].hash != m.points[j].hash {
			return m.points[i].hash < m.points[j].hash
		}
		// Tie-break on the node address so equal hashes still order
		// identically on every process.
		return m.points[i].node < m.points[j].node
	})
	return m, nil
}

// Owner returns the node that owns key: the first ring point at or after
// the key's hash, wrapping at the top.
func (m *Map) Owner(key string) string {
	h := hash(key)
	i := sort.Search(len(m.points), func(i int) bool { return m.points[i].hash >= h })
	if i == len(m.points) {
		i = 0
	}
	return m.points[i].node
}

// Nodes returns the ring membership in insertion order.
func (m *Map) Nodes() []string {
	out := make([]string, len(m.nodes))
	copy(out, m.nodes)
	return out
}

// hash is FNV-1a followed by a murmur3-style 64-bit finalizer. The
// finalizer matters: raw FNV-1a barely mixes trailing-byte differences,
// so the vnode labels of one node ("host:port#0" … "host:port#127")
// cluster into one tight arc and a two-node ring degenerates to a single
// owner. The avalanche scatters them uniformly. Both stages are fixed
// constants, so every process computes the same ring.
func hash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Package shardmap is the consistent-hash routing layer behind hub
// sharding: N hub processes split the document space, and every process
// (and every doc-aware client library, if it wants to skip a redirect
// hop) computes the same document→owner assignment from the same node
// list. Consistent hashing keeps the assignment stable under membership
// change: adding or removing one node moves only the documents on the
// ring arcs that node owned, not the whole keyspace.
package shardmap

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is the virtual-node count per physical node: enough ring
// points that a two- or three-node ring splits the keyspace near-evenly.
const defaultVnodes = 128

// Map is an immutable consistent-hash ring over a set of node addresses.
// All methods are safe for concurrent use.
type Map struct {
	nodes  []string
	points []point // sorted by hash
}

type point struct {
	hash uint64
	node string
}

// New builds a ring over the given node addresses with vnodes virtual
// nodes each (0 means the default). Node addresses must be non-empty and
// unique; the hash is FNV-1a, so every process building a ring from the
// same list computes the same assignment.
func New(nodes []string, vnodes int) (*Map, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("shardmap: empty node list")
	}
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	seen := make(map[string]bool, len(nodes))
	m := &Map{
		nodes:  make([]string, 0, len(nodes)),
		points: make([]point, 0, len(nodes)*vnodes),
	}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("shardmap: empty node address")
		}
		if seen[n] {
			return nil, fmt.Errorf("shardmap: duplicate node %q", n)
		}
		seen[n] = true
		m.nodes = append(m.nodes, n)
		for i := 0; i < vnodes; i++ {
			m.points = append(m.points, point{hash: hash(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(m.points, func(i, j int) bool {
		if m.points[i].hash != m.points[j].hash {
			return m.points[i].hash < m.points[j].hash
		}
		// Tie-break on the node address so equal hashes still order
		// identically on every process.
		return m.points[i].node < m.points[j].node
	})
	return m, nil
}

// Owner returns the node that owns key: the first ring point at or after
// the key's hash, wrapping at the top.
func (m *Map) Owner(key string) string {
	return m.ownerOfHash(hash(key))
}

// Nodes returns the ring membership in insertion order.
func (m *Map) Nodes() []string {
	out := make([]string, len(m.nodes))
	copy(out, m.nodes)
	return out
}

// Ring is an immutable, epoch-versioned ring membership: the consistent-
// hash assignment of Map plus a monotonically increasing epoch number, so
// every hub and client can order two membership views and compute exactly
// which documents a change relocates (Moved). Rings are value-compared by
// epoch alone: two rings with the same epoch must have been built from the
// same node list (the membership service's job is to never mint the same
// epoch twice with different members).
type Ring struct {
	// Epoch orders membership views; higher wins. Epoch 0 is reserved for
	// the wire-level ring query (see transport.QueryRing).
	Epoch uint64
	// Nodes is the membership in insertion order. Treat as immutable.
	Nodes []string

	m *Map
}

// NewRing builds an epoch-versioned ring over nodes (default vnode count).
// Node addresses must be non-empty and unique.
func NewRing(epoch uint64, nodes []string) (*Ring, error) {
	m, err := New(nodes, 0)
	if err != nil {
		return nil, err
	}
	return &Ring{Epoch: epoch, Nodes: m.Nodes(), m: m}, nil
}

// Owner returns the node that owns key under this ring.
func (r *Ring) Owner(key string) string { return r.m.Owner(key) }

// Has reports whether node is a ring member.
func (r *Ring) Has(node string) bool {
	for _, n := range r.Nodes {
		if n == node {
			return true
		}
	}
	return false
}

// Arc is one interval of the hash circle whose owner changed between two
// rings: every key hashing into (Lo, Hi] moved from From to To. The
// interval is open at Lo and closed at Hi because a ring point owns the
// keys hashing at or below it down to the previous point; when Lo >= Hi
// the arc wraps through the top of the 64-bit space.
type Arc struct {
	Lo, Hi   uint64
	From, To string
}

// contains reports whether hash h falls inside the arc.
func (a Arc) contains(h uint64) bool {
	if a.Lo < a.Hi {
		return h > a.Lo && h <= a.Hi
	}
	return h > a.Lo || h <= a.Hi
}

// Moved computes the deterministic diff between two rings: the set of hash
// arcs whose owner differs, annotated with the losing and gaining node.
// Every process diffing the same two rings computes the same arcs, so the
// old owner, the new owner, and every client agree on exactly which
// documents a membership change relocates — Contains(Moved(old, new), doc)
// is true iff old.Owner(doc) != new.Owner(doc).
func Moved(old, new *Ring) []Arc {
	// The owner function of each ring is constant on the intervals between
	// consecutive ring points, so on the union of both rings' points both
	// owner functions are constant per interval: owner((b_{i-1}, b_i]) =
	// owner(b_i), wrapping at the top.
	bounds := make([]uint64, 0, len(old.m.points)+len(new.m.points))
	for _, p := range old.m.points {
		bounds = append(bounds, p.hash)
	}
	for _, p := range new.m.points {
		bounds = append(bounds, p.hash)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	var arcs []Arc
	for i, hi := range uniq {
		lo := uniq[(i+len(uniq)-1)%len(uniq)] // previous boundary, wrapping
		was, is := old.m.ownerOfHash(hi), new.m.ownerOfHash(hi)
		if was == is {
			continue
		}
		// Coalesce with the previous arc when the intervals are adjacent
		// and moved between the same pair of nodes.
		if n := len(arcs); n > 0 && arcs[n-1].Hi == lo && arcs[n-1].From == was && arcs[n-1].To == is {
			arcs[n-1].Hi = hi
			continue
		}
		arcs = append(arcs, Arc{Lo: lo, Hi: hi, From: was, To: is})
	}
	return arcs
}

// Contains reports whether key falls inside any of the arcs (i.e. whether
// the membership change that produced them relocates the key).
func Contains(arcs []Arc, key string) bool {
	h := hash(key)
	for _, a := range arcs {
		if a.contains(h) {
			return true
		}
	}
	return false
}

// ownerOfHash returns the node owning hash h: the first ring point at or
// after h, wrapping at the top.
func (m *Map) ownerOfHash(h uint64) string {
	i := sort.Search(len(m.points), func(i int) bool { return m.points[i].hash >= h })
	if i == len(m.points) {
		i = 0
	}
	return m.points[i].node
}

// hash is FNV-1a followed by a murmur3-style 64-bit finalizer. The
// finalizer matters: raw FNV-1a barely mixes trailing-byte differences,
// so the vnode labels of one node ("host:port#0" … "host:port#127")
// cluster into one tight arc and a two-node ring degenerates to a single
// owner. The avalanche scatters them uniformly. Both stages are fixed
// constants, so every process computes the same ring.
func hash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

package transport

import (
	"testing"

	"github.com/treedoc/treedoc/internal/causal"
	"github.com/treedoc/treedoc/internal/vclock"
)

// TestEncodeAllocs guards the buffer-reuse contract of the frame encoders:
// EncodeOps builds frames in pooled scratch and hands out one exact-size
// copy, so a batch encode costs one allocation regardless of batch size,
// and the doc-scoped envelope adds exactly one more. These run once per
// delivered frame on every hub and replica; append-growth creeping back in
// here is invisible to correctness tests and only surfaces as GC pressure
// under load.
func TestEncodeAllocs(t *testing.T) {
	r := newTestReplica(t, 7)
	msgs := make([]causal.Message, 0, 64)
	for i := 0; i < 64; i++ {
		op := r.insertAt(t, i, "x")
		msgs = append(msgs, causal.Message{From: 7, TS: vclock.VC{7: uint64(i + 1)}, Payload: op})
	}

	t.Run("EncodeOps", func(t *testing.T) {
		got := testing.AllocsPerRun(100, func() {
			if _, err := EncodeOps(msgs); err != nil {
				t.Fatal(err)
			}
		})
		if got > 1 {
			t.Errorf("EncodeOps(64 ops): %.1f allocs/op, want <= 1 (the exact-size result)", got)
		}
	})

	t.Run("EncodeDocFrame", func(t *testing.T) {
		inner, err := EncodeOps(msgs)
		if err != nil {
			t.Fatal(err)
		}
		got := testing.AllocsPerRun(100, func() {
			if _, err := EncodeDocFrame("doc-1", inner); err != nil {
				t.Fatal(err)
			}
		})
		if got > 1 {
			t.Errorf("EncodeDocFrame: %.1f allocs/op, want <= 1 (the envelope)", got)
		}
	})
}

package transport

import (
	"bufio"
	"net"
	"sync"
	"time"
)

// TCPLink frames the wire protocol over a net.Conn: each frame is a 4-byte
// big-endian length followed by the frame bytes (WriteFrame/ReadFrame).
// Backpressure is the socket's own: Send blocks once the kernel buffers
// fill because the peer stopped reading.
type TCPLink struct {
	conn net.Conn
	br   *bufio.Reader
	wmu  sync.Mutex
	bw   *bufio.Writer
}

// NewTCPLink wraps an established connection (TCP, Unix socket, or
// anything else satisfying net.Conn).
func NewTCPLink(conn net.Conn) *TCPLink {
	return &TCPLink{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
}

// Dial connects to a listening peer or hub (e.g. cmd/treedoc-serve) and
// returns the framed link.
func Dial(addr string) (*TCPLink, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewTCPLink(conn), nil
}

// DialTimeout is Dial with a connect deadline: the session layer uses it
// so an unreachable shard owner costs a bounded wait, not the OS connect
// timeout.
func DialTimeout(addr string, d time.Duration) (*TCPLink, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return NewTCPLink(conn), nil
}

// Send writes one length-prefixed frame. Frames are flushed immediately:
// the engine already batches operations, so a frame is the unit of
// transmission.
func (l *TCPLink) Send(frame []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if err := WriteFrame(l.bw, frame); err != nil {
		return err
	}
	return l.bw.Flush()
}

// Recv reads one length-prefixed frame.
func (l *TCPLink) Recv() ([]byte, error) {
	return ReadFrame(l.br)
}

// Close closes the underlying connection, unblocking Send and Recv.
func (l *TCPLink) Close() error {
	return l.conn.Close()
}

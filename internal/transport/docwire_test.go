package transport

import (
	"bufio"
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/treedoc/treedoc/internal/vclock"
)

func TestValidateDocID(t *testing.T) {
	for _, ok := range []string{"default", "a", "notes-2026", "a.b_c-D9", strings.Repeat("x", MaxDocIDLen)} {
		if err := ValidateDocID(ok); err != nil {
			t.Errorf("ValidateDocID(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", ".", "..", ".hidden", "a/b", "a b", "a\x00b", "ä", strings.Repeat("x", MaxDocIDLen+1)} {
		if err := ValidateDocID(bad); err == nil {
			t.Errorf("ValidateDocID(%q) accepted", bad)
		}
	}
}

func TestDocFrameRoundTrip(t *testing.T) {
	inner, err := EncodeSyncReq(7, vclock.VC{7: 4})
	if err != nil {
		t.Fatal(err)
	}
	env, err := EncodeDocFrame("notes", inner)
	if err != nil {
		t.Fatal(err)
	}
	doc, got, err := SplitDocFrame(env)
	if err != nil {
		t.Fatal(err)
	}
	if doc != "notes" || !bytes.Equal(got, inner) {
		t.Fatalf("split (%q, %x), want (notes, %x)", doc, got, inner)
	}
	decoded, err := DecodeFrame(env)
	if err != nil {
		t.Fatal(err)
	}
	df, ok := decoded.(*DocFrame)
	if !ok {
		t.Fatalf("decoded %T, want *DocFrame", decoded)
	}
	if df.Doc != "notes" || !bytes.Equal(df.Inner, inner) {
		t.Fatalf("decoded %+v", df)
	}
	// The inner frame decodes independently.
	if _, err := DecodeFrame(df.Inner); err != nil {
		t.Fatalf("inner frame rejected: %v", err)
	}
}

func TestDocFrameRejects(t *testing.T) {
	inner, err := EncodeSyncReq(7, vclock.VC{7: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeDocFrame("bad/doc", inner); err == nil {
		t.Fatal("invalid doc id accepted")
	}
	if _, err := EncodeDocFrame("notes", nil); err == nil {
		t.Fatal("empty inner frame accepted")
	}
	env, err := EncodeDocFrame("notes", inner)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeDocFrame("notes", env); err == nil {
		t.Fatal("nested envelope accepted")
	}
	if _, _, err := SplitDocFrame(inner); err == nil {
		t.Fatal("non-envelope frame split")
	}
	// A truncated envelope (doc id length pointing past the end).
	if _, _, err := SplitDocFrame([]byte{kindDocFrame, 0x20, 'a'}); err == nil {
		t.Fatal("truncated envelope split")
	}
}

func TestDocFrameCarriesSnapshots(t *testing.T) {
	// The envelope must admit a full-size snapshot frame: its ceiling is
	// the snap ceiling plus the envelope overhead, and WriteFrame/ReadFrame
	// must round-trip it.
	data := bytes.Repeat([]byte{0xAB}, MaxSnapFrameSize-1024)
	inner, err := EncodeSnapReply(3, vclock.VC{3: 9}, data)
	if err != nil {
		t.Fatal(err)
	}
	env, err := EncodeDocFrame("big", inner)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, env) {
		t.Fatal("oversized envelope corrupted in transit")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	docs := []string{"notes", "design", "default"}
	frame, err := EncodeHello(docs)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	hf, ok := decoded.(*HelloFrame)
	if !ok {
		t.Fatalf("decoded %T, want *HelloFrame", decoded)
	}
	if !reflect.DeepEqual(hf.Docs, docs) {
		t.Fatalf("round trip: %v", hf.Docs)
	}
	if _, err := EncodeHello(nil); err == nil {
		t.Fatal("empty doc list accepted")
	}
	if _, err := EncodeHello([]string{"bad doc"}); err == nil {
		t.Fatal("invalid doc id accepted")
	}
}

func TestDetachRoundTrip(t *testing.T) {
	frame, err := EncodeDetach([]string{"notes"})
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	df, ok := decoded.(*DetachFrame)
	if !ok {
		t.Fatalf("decoded %T, want *DetachFrame", decoded)
	}
	if !reflect.DeepEqual(df.Docs, []string{"notes"}) {
		t.Fatalf("round trip: %v", df.Docs)
	}
}

func TestHelloRespRoundTrip(t *testing.T) {
	entries := []HelloEntry{
		{Doc: "notes"},
		{Doc: "design", Redirect: "10.0.0.2:9707"},
	}
	frame, err := EncodeHelloResp(entries)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	hr, ok := decoded.(*HelloRespFrame)
	if !ok {
		t.Fatalf("decoded %T, want *HelloRespFrame", decoded)
	}
	if !reflect.DeepEqual(hr.Entries, entries) {
		t.Fatalf("round trip: %+v", hr.Entries)
	}
	if _, err := EncodeHelloResp([]HelloEntry{{Doc: "x", Redirect: strings.Repeat("a", maxRedirectAddr+1)}}); err == nil {
		t.Fatal("oversized redirect accepted")
	}
}

// FuzzDocFrame fuzzes the doc-scoped envelope and handshake decoders: the
// decoder must never panic, and anything it accepts must re-encode to an
// equivalent frame.
func FuzzDocFrame(f *testing.F) {
	if inner, err := EncodeSyncReq(3, vclock.VC{1: 5}); err == nil {
		if env, err := EncodeDocFrame("notes", inner); err == nil {
			f.Add(env)
		}
	}
	if frame, err := EncodeHello([]string{"a", "b"}); err == nil {
		f.Add(frame)
	}
	if frame, err := EncodeHelloResp([]HelloEntry{{Doc: "a"}, {Doc: "b", Redirect: "h:1"}}); err == nil {
		f.Add(frame)
	}
	if frame, err := EncodeDetach([]string{"a"}); err == nil {
		f.Add(frame)
	}
	f.Add([]byte{kindDocFrame, 0x01, 'a', kindSyncReq})
	f.Add([]byte{kindHello, 0x01, 0x01, 'a'})
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeFrame(data)
		if err != nil {
			return
		}
		switch d := decoded.(type) {
		case *DocFrame:
			re, err := EncodeDocFrame(d.Doc, d.Inner)
			if err != nil {
				t.Fatalf("accepted doc frame failed to re-encode: %v", err)
			}
			doc, inner, err := SplitDocFrame(re)
			if err != nil {
				t.Fatalf("re-encoded doc frame rejected: %v", err)
			}
			if doc != d.Doc || !bytes.Equal(inner, d.Inner) {
				t.Fatal("doc frame not stable under re-encoding")
			}
		case *HelloFrame:
			enc := EncodeHello
			if d.Forward {
				enc = EncodeHelloForward
			}
			re, err := enc(d.Docs)
			if err != nil {
				t.Fatalf("accepted hello failed to re-encode: %v", err)
			}
			again, err := DecodeFrame(re)
			if err != nil || !reflect.DeepEqual(again, decoded) {
				t.Fatalf("hello not stable under re-encoding: %v", err)
			}
		case *HelloRespFrame:
			re, err := EncodeHelloResp(d.Entries)
			if err != nil {
				t.Fatalf("accepted hello resp failed to re-encode: %v", err)
			}
			again, err := DecodeFrame(re)
			if err != nil || !reflect.DeepEqual(again, decoded) {
				t.Fatalf("hello resp not stable under re-encoding: %v", err)
			}
		case *DetachFrame:
			re, err := EncodeDetach(d.Docs)
			if err != nil {
				t.Fatalf("accepted detach failed to re-encode: %v", err)
			}
			again, err := DecodeFrame(re)
			if err != nil || !reflect.DeepEqual(again, decoded) {
				t.Fatalf("detach not stable under re-encoding: %v", err)
			}
		}
	})
}

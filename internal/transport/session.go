package transport

import (
	"fmt"
	"sync"
	"time"
)

// Session-side constants.
const (
	// helloTimeout bounds how long an attach waits for the hub's handshake
	// answer.
	helloTimeout = 10 * time.Second
	// sessionQueueDepth is the per-document inbound queue on a session
	// link; a full queue drops frames (anti-entropy heals), mirroring the
	// hub's per-client queue semantics.
	sessionQueueDepth = 256
)

// Session multiplexes one or more document-scoped links over shared hub
// connections: Attach performs the kindHello handshake for a document and
// returns a Link carrying only that document's frames (envelope-wrapped
// on Send, stripped on Recv). When the hub answers an attach with a shard
// redirect, the session transparently dials the owning hub process and
// attaches there, so callers never see the ring topology.
//
// A Session is safe for concurrent use. Closing a Session tears down
// every connection and fails every attached link.
type Session struct {
	primary string

	mu     sync.Mutex
	conns  map[string]*sessConn // keyed by hub address
	closed bool
}

// DialSession prepares a session against the hub at addr. Dialing is
// lazy: the first Attach establishes the connection (and any redirect
// target connections).
func DialSession(addr string) *Session {
	return &Session{primary: addr, conns: make(map[string]*sessConn)}
}

// DialDoc connects to a hub and attaches to one document, following a
// shard redirect if the addressed hub does not own it. The returned link
// owns its session: closing the link tears the connection down.
func DialDoc(addr, doc string) (Link, error) {
	s := DialSession(addr)
	l, err := s.Attach(doc)
	if err != nil {
		s.Close()
		return nil, err
	}
	l.(*docLink).ownsSess = s
	return l, nil
}

// Attach subscribes to doc and returns the link carrying its frames. At
// most one link per document per session.
func (s *Session) Attach(doc string) (Link, error) {
	if err := ValidateDocID(doc); err != nil {
		return nil, err
	}
	sc, err := s.conn(s.primary)
	if err != nil {
		return nil, err
	}
	entry, err := sc.attach(doc)
	if err != nil {
		return nil, err
	}
	if entry.Redirect != "" {
		// One redirect hop: the owner answers its own attaches, so a second
		// redirect means the ring views disagree — fail loudly rather than
		// chase a loop.
		if sc, err = s.conn(entry.Redirect); err != nil {
			return nil, err
		}
		if entry, err = sc.attach(doc); err != nil {
			return nil, err
		}
		if entry.Redirect != "" {
			return nil, fmt.Errorf("transport: doc %q redirected twice (ring disagreement: via %s then %s)",
				doc, s.primary, entry.Redirect)
		}
	}
	return sc.newDocLink(doc)
}

// conn returns the session's connection to addr, dialing it on first use.
func (s *Session) conn(addr string) (*sessConn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("transport: session closed")
	}
	if sc := s.conns[addr]; sc != nil && !sc.isDead() {
		return sc, nil
	}
	link, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	sc := &sessConn{
		addr:    addr,
		link:    link,
		docs:    make(map[string]*docLink),
		waiters: make(map[string][]chan HelloEntry),
		dead:    make(chan struct{}),
	}
	s.conns[addr] = sc
	go sc.reader()
	return sc, nil
}

// Close tears down every hub connection, failing all attached links.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*sessConn, 0, len(s.conns))
	for _, sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.fail(fmt.Errorf("transport: session closed"))
	}
	return nil
}

// sessConn is one shared hub connection: a reader goroutine demultiplexes
// inbound frames to per-document links and handshake waiters.
type sessConn struct {
	addr string
	link *TCPLink

	mu      sync.Mutex
	docs    map[string]*docLink
	waiters map[string][]chan HelloEntry
	err     error

	dead     chan struct{}
	deadOnce sync.Once
}

func (sc *sessConn) isDead() bool {
	select {
	case <-sc.dead:
		return true
	default:
		return false
	}
}

// fail marks the connection dead, closes the socket, and wakes every
// waiter and attached link.
func (sc *sessConn) fail(err error) {
	sc.deadOnce.Do(func() {
		sc.mu.Lock()
		sc.err = err
		sc.mu.Unlock()
		close(sc.dead)
		sc.link.Close()
	})
}

func (sc *sessConn) lastErr() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.err != nil {
		return sc.err
	}
	return fmt.Errorf("transport: hub connection closed")
}

// attach sends the handshake for one document and waits for the hub's
// per-document answer.
func (sc *sessConn) attach(doc string) (HelloEntry, error) {
	frame, err := EncodeHello([]string{doc})
	if err != nil {
		return HelloEntry{}, err
	}
	ch := make(chan HelloEntry, 1)
	sc.mu.Lock()
	if sc.docs[doc] != nil {
		sc.mu.Unlock()
		return HelloEntry{}, fmt.Errorf("transport: doc %q already attached on %s", doc, sc.addr)
	}
	sc.waiters[doc] = append(sc.waiters[doc], ch)
	sc.mu.Unlock()
	if err := sc.link.Send(frame); err != nil {
		sc.fail(err)
		return HelloEntry{}, err
	}
	select {
	case e := <-ch:
		return e, nil
	case <-sc.dead:
		return HelloEntry{}, sc.lastErr()
	case <-time.After(helloTimeout):
		return HelloEntry{}, fmt.Errorf("transport: attach %q to %s timed out", doc, sc.addr)
	}
}

// newDocLink registers the per-document link on this connection.
func (sc *sessConn) newDocLink(doc string) (*docLink, error) {
	dl := &docLink{
		sc:   sc,
		doc:  doc,
		in:   make(chan []byte, sessionQueueDepth),
		done: make(chan struct{}),
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.isDead() {
		return nil, sc.err
	}
	if sc.docs[doc] != nil {
		return nil, fmt.Errorf("transport: doc %q already attached on %s", doc, sc.addr)
	}
	sc.docs[doc] = dl
	return dl, nil
}

func (sc *sessConn) removeDoc(doc string, dl *docLink) {
	sc.mu.Lock()
	if sc.docs[doc] == dl {
		delete(sc.docs, doc)
	}
	sc.mu.Unlock()
}

// reader demultiplexes the shared connection: handshake answers to their
// waiters, envelope frames to their document's link, bare frames to the
// sole attached document (a hub only sends bare frames to clients it
// believes are legacy).
func (sc *sessConn) reader() {
	for {
		frame, err := sc.link.Recv()
		if err != nil {
			sc.fail(err)
			return
		}
		switch frame[0] {
		case kindHelloResp:
			decoded, err := DecodeFrame(frame)
			if err != nil {
				continue
			}
			sc.mu.Lock()
			for _, e := range decoded.(*HelloRespFrame).Entries {
				if q := sc.waiters[e.Doc]; len(q) > 0 {
					q[0] <- e
					sc.waiters[e.Doc] = q[1:]
				}
			}
			sc.mu.Unlock()
		case kindDocFrame:
			doc, inner, err := SplitDocFrame(frame)
			if err != nil {
				continue
			}
			sc.mu.Lock()
			dl := sc.docs[doc]
			sc.mu.Unlock()
			if dl != nil {
				dl.push(inner)
			}
		default:
			var sole *docLink
			sc.mu.Lock()
			if len(sc.docs) == 1 {
				for _, dl := range sc.docs {
					sole = dl
				}
			}
			sc.mu.Unlock()
			if sole != nil {
				sole.push(frame)
			}
		}
	}
}

// docLink is a Link scoped to one document over a shared session
// connection: Send wraps frames in the doc envelope, Recv yields the
// stripped inner frames the reader routed here.
type docLink struct {
	sc   *sessConn
	doc  string
	in   chan []byte
	done chan struct{}
	once sync.Once
	// ownsSess is set when DialDoc created a private session for this
	// link, so closing the link closes the connection too.
	ownsSess *Session
}

// push delivers one inbound frame, dropping on overflow: the consumer is
// an engine whose anti-entropy heals the loss, and a slow document must
// not stall its siblings on the shared connection.
func (dl *docLink) push(frame []byte) {
	select {
	case <-dl.done:
	case dl.in <- frame:
	default:
	}
}

// Send wraps one frame in the document envelope and writes it to the
// shared connection.
func (dl *docLink) Send(frame []byte) error {
	select {
	case <-dl.done:
		return fmt.Errorf("transport: doc link closed")
	case <-dl.sc.dead:
		return dl.sc.lastErr()
	default:
	}
	env, err := EncodeDocFrame(dl.doc, frame)
	if err != nil {
		return err
	}
	if err := dl.sc.link.Send(env); err != nil {
		dl.sc.fail(err)
		return err
	}
	return nil
}

// Recv returns the next frame for this document.
func (dl *docLink) Recv() ([]byte, error) {
	select {
	case f := <-dl.in:
		return f, nil
	case <-dl.done:
		return nil, fmt.Errorf("transport: doc link closed")
	case <-dl.sc.dead:
		// Drain anything already routed before reporting the failure.
		select {
		case f := <-dl.in:
			return f, nil
		default:
			return nil, dl.sc.lastErr()
		}
	}
}

// Close detaches from the document (best-effort) and fails pending Recv
// calls. A DialDoc link also tears down its private session.
func (dl *docLink) Close() error {
	dl.once.Do(func() {
		if f, err := EncodeDetach([]string{dl.doc}); err == nil {
			_ = dl.sc.link.Send(f)
		}
		dl.sc.removeDoc(dl.doc, dl)
		close(dl.done)
		if dl.ownsSess != nil {
			dl.ownsSess.Close()
		}
	})
	return nil
}

package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Session-side constants.
const (
	// helloTimeout bounds how long an attach waits for the hub's handshake
	// answer.
	helloTimeout = 10 * time.Second
	// sessionQueueDepth is the per-document inbound queue on a session
	// link; a full queue drops frames (anti-entropy heals), mirroring the
	// hub's per-client queue semantics.
	sessionQueueDepth = 256
	// maxRedirectHops bounds redirect chasing during Attach: a healthy
	// reshard resolves in one hop (two while an epoch propagates), so a
	// longer chain means the ring views disagree and the client must fail
	// loudly rather than bounce forever.
	maxRedirectHops = 4
	// syncBatchWindow is how long a shared link accumulates per-document
	// digests before flushing them as one kindSyncBatch frame. The engines
	// behind a session tick independently, so without a window each tick
	// would still leave one frame per document; a window an order of
	// magnitude under the default sync interval collects a whole round
	// while adding latency only to a path that is already periodic.
	syncBatchWindow = 25 * time.Millisecond
)

// Session multiplexes one or more document-scoped links over shared hub
// connections: Attach performs the kindHello handshake for a document and
// returns a Link carrying only that document's frames (envelope-wrapped
// on Send, stripped on Recv). When the hub answers an attach with a shard
// redirect, the session transparently dials the owning hub process and
// attaches there, so callers never see the ring topology. Redirects are
// epoch-stamped and bounded: the session follows at most maxRedirectHops,
// and revisiting a hub whose ring epoch has not advanced fails the attach
// instead of looping. If a redirect target cannot be dialed, the session
// falls back to asking the original hub to serve the document through
// hub-to-hub forwarding.
//
// During a live reshard the hub re-points attached clients with an
// unsolicited epoch-stamped redirect; the session migrates the document's
// link to the new owner transparently — the Link stays valid, the engine
// on top never notices, and any frames lost in the window are healed by
// anti-entropy.
//
// A Session is safe for concurrent use. Closing a Session tears down
// every connection and fails every attached link.
type Session struct {
	primary string
	// ringEpoch is the highest ring epoch any hub has reported; stale
	// re-points (a lower epoch than already seen) are ignored.
	ringEpoch atomic.Uint64

	mu     sync.Mutex
	conns  map[string]*sessConn // keyed by hub address; guarded by mu
	links  map[string]*docLink  // attached documents, for live re-pointing; guarded by mu
	closed bool                 // guarded by mu
}

// DialSession prepares a session against the hub at addr. Dialing is
// lazy: the first Attach establishes the connection (and any redirect
// target connections).
func DialSession(addr string) *Session {
	return &Session{primary: addr, conns: make(map[string]*sessConn), links: make(map[string]*docLink)}
}

// DialDoc connects to a hub and attaches to one document, following shard
// redirects. The returned link owns its session: closing the link tears
// the connection down.
func DialDoc(addr, doc string) (Link, error) {
	s := DialSession(addr)
	l, err := s.Attach(doc)
	if err != nil {
		s.Close()
		return nil, err
	}
	l.(*docLink).ownsSess = s
	return l, nil
}

// noteEpoch records the highest ring epoch seen across all hubs.
func (s *Session) noteEpoch(epoch uint64) {
	for {
		cur := s.ringEpoch.Load()
		if epoch <= cur || s.ringEpoch.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// Attach subscribes to doc and returns the link carrying its frames. At
// most one link per document per session.
func (s *Session) Attach(doc string) (Link, error) {
	if err := ValidateDocID(doc); err != nil {
		return nil, err
	}
	// The duplicate check runs before any hub is asked, so a second
	// Attach of a redirected document errors here instead of reaching the
	// forward fallback and silently minting a second link.
	s.mu.Lock()
	dup := s.links[doc] != nil
	s.mu.Unlock()
	if dup {
		return nil, fmt.Errorf("transport: doc %q already attached in this session", doc)
	}
	addr := s.primary
	prev := ""
	// visited records the ring epoch each hub reported; a redirect back to
	// a hub whose epoch has not advanced is a ring-disagreement loop.
	visited := make(map[string]uint64)
	for hop := 0; ; hop++ {
		sc, err := s.conn(addr)
		if err != nil {
			if prev != "" {
				// The redirect target is unreachable from here: fall back to
				// the hub that issued the redirect and ask it to serve the
				// document through hub-to-hub forwarding.
				return s.attachForwarded(doc, prev, err)
			}
			return nil, err
		}
		entry, err := sc.attach(doc, false)
		if err != nil {
			if prev != "" {
				// Dialed but unhealthy (handshake timeout, connection died
				// mid-attach): the same fallback applies.
				return s.attachForwarded(doc, prev, err)
			}
			return nil, err
		}
		s.noteEpoch(entry.Epoch)
		if entry.Redirect == "" {
			return s.finishAttach(sc, doc)
		}
		if seen, ok := visited[addr]; ok && entry.Epoch <= seen {
			return nil, fmt.Errorf("transport: doc %q redirect loop at %s (ring epoch %d did not advance): hubs disagree on the ring",
				doc, addr, entry.Epoch)
		}
		visited[addr] = entry.Epoch
		if hop >= maxRedirectHops {
			return nil, fmt.Errorf("transport: doc %q not resolved after %d redirects (last: %s -> %s at epoch %d)",
				doc, hop+1, addr, entry.Redirect, entry.Epoch)
		}
		prev, addr = addr, entry.Redirect
	}
}

// attachForwarded asks the hub at addr to serve doc locally via the mesh
// (the forward-flagged hello), for clients that cannot reach the owner
// shard. dialErr is the failure that forced the fallback.
func (s *Session) attachForwarded(doc, addr string, dialErr error) (Link, error) {
	sc, err := s.conn(addr)
	if err != nil {
		return nil, fmt.Errorf("transport: doc %q owner unreachable (%v) and %s gone too: %w", doc, dialErr, addr, err)
	}
	entry, err := sc.attach(doc, true)
	if err != nil {
		return nil, err
	}
	s.noteEpoch(entry.Epoch)
	if entry.Redirect != "" {
		return nil, fmt.Errorf("transport: doc %q owner unreachable (%v) and hub %s declined to forward", doc, dialErr, addr)
	}
	return s.finishAttach(sc, doc)
}

// finishAttach registers the per-document link on the connection that
// accepted the attach. The session registry is the arbiter: a racing
// Attach for the same document loses here, releasing its hub-side
// attachment, so exactly one link per document survives.
func (s *Session) finishAttach(sc *sessConn, doc string) (Link, error) {
	dl, err := sc.newDocLink(doc)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.links[doc] != nil {
		s.mu.Unlock()
		dl.Close()
		return nil, fmt.Errorf("transport: doc %q already attached in this session", doc)
	}
	s.links[doc] = dl
	s.mu.Unlock()
	return dl, nil
}

// sessionDialTimeout bounds dialing a hub from a session: repoint and the
// forward fallback exist precisely because an owner may be unreachable,
// so an unresponsive address must cost seconds, not the OS connect
// timeout.
const sessionDialTimeout = 5 * time.Second

// conn returns the session's connection to addr, dialing it on first use.
// The dial happens outside the session lock — a slow or unreachable hub
// must not stall the session's other documents.
func (s *Session) conn(addr string) (*sessConn, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("transport: session closed")
	}
	if sc := s.conns[addr]; sc != nil && !sc.isDead() {
		s.mu.Unlock()
		return sc, nil
	}
	s.mu.Unlock()
	link, err := DialTimeout(addr, sessionDialTimeout)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		link.Close()
		return nil, fmt.Errorf("transport: session closed")
	}
	if sc := s.conns[addr]; sc != nil && !sc.isDead() {
		// A racing caller connected first; use theirs.
		link.Close()
		return sc, nil
	}
	sc := &sessConn{
		sess:    s,
		addr:    addr,
		link:    link,
		docs:    make(map[string]*docLink),
		waiters: make(map[string][]chan HelloEntry),
		dead:    make(chan struct{}),
	}
	s.conns[addr] = sc
	go sc.reader()
	return sc, nil
}

// repoint migrates an attached document to a new owner hub: the old owner
// handed the document off and sent an unsolicited epoch-stamped redirect.
// The document's Link survives — only the connection underneath changes.
// If the new owner cannot be reached, the link stays on the old hub,
// which keeps serving the document through hub-to-hub forwarding.
func (s *Session) repoint(doc, addr string, epoch uint64) {
	if epoch < s.ringEpoch.Load() {
		return // stale re-point from a hub behind the ring
	}
	s.noteEpoch(epoch)
	s.mu.Lock()
	dl := s.links[doc]
	s.mu.Unlock()
	if dl == nil || dl.closed() {
		return
	}
	if !dl.repointing.CompareAndSwap(false, true) {
		return // a migration is already in flight
	}
	defer dl.repointing.Store(false)
	if dl.conn().addr == addr {
		return // already there
	}
	sc, err := s.conn(addr)
	if err != nil {
		return // stay: the old hub forwards
	}
	entry, err := sc.attach(doc, false)
	if err != nil || entry.Redirect != "" {
		// The target redirected again (the ring moved on): one more hop,
		// then give up and stay on the forwarding path.
		if err == nil && entry.Redirect != "" && entry.Epoch >= epoch {
			if sc2, err2 := s.conn(entry.Redirect); err2 == nil {
				if e2, err3 := sc2.attach(doc, false); err3 == nil && e2.Redirect == "" {
					dl.migrate(sc2)
				}
			}
		}
		return
	}
	dl.migrate(sc)
}

// Close tears down every hub connection, failing all attached links.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*sessConn, 0, len(s.conns))
	for _, sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.fail(fmt.Errorf("transport: session closed"))
	}
	return nil
}

// forget drops the session's doc->link registration (on link close).
func (s *Session) forget(doc string, dl *docLink) {
	s.mu.Lock()
	if s.links[doc] == dl {
		delete(s.links, doc)
	}
	s.mu.Unlock()
}

// sessConn is one shared hub connection: a reader goroutine demultiplexes
// inbound frames to per-document links and handshake waiters.
type sessConn struct {
	sess *Session
	addr string
	link *TCPLink

	mu      sync.Mutex
	docs    map[string]*docLink
	waiters map[string][]chan HelloEntry
	err     error

	// Digest batching: kindSyncReq frames from the documents sharing this
	// connection accumulate under batchMu for syncBatchWindow, then leave
	// as one kindSyncBatch frame instead of one envelope per document. A
	// fresher digest for a document already pending replaces it in place.
	batchMu    sync.Mutex
	pending    []SyncBatchEntry
	pendingIdx map[string]int
	batchArmed bool

	dead     chan struct{}
	deadOnce sync.Once
}

func (sc *sessConn) isDead() bool {
	select {
	case <-sc.dead:
		return true
	default:
		return false
	}
}

// fail marks the connection dead, closes the socket, and wakes every
// waiter and attached link.
func (sc *sessConn) fail(err error) {
	sc.deadOnce.Do(func() {
		sc.mu.Lock()
		sc.err = err
		sc.mu.Unlock()
		close(sc.dead)
		sc.link.Close()
	})
}

func (sc *sessConn) lastErr() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.err != nil {
		return sc.err
	}
	return fmt.Errorf("transport: hub connection closed")
}

// attach sends the handshake for one document and waits for the hub's
// per-document answer. With forward set, the hub is asked to serve the
// document locally via the mesh even when another shard owns it.
func (sc *sessConn) attach(doc string, forward bool) (HelloEntry, error) {
	var frame []byte
	var err error
	if forward {
		frame, err = EncodeHelloForward([]string{doc})
	} else {
		frame, err = EncodeHello([]string{doc})
	}
	if err != nil {
		return HelloEntry{}, err
	}
	ch := make(chan HelloEntry, 1)
	sc.mu.Lock()
	if sc.docs[doc] != nil {
		sc.mu.Unlock()
		return HelloEntry{}, fmt.Errorf("transport: doc %q already attached on %s", doc, sc.addr)
	}
	sc.waiters[doc] = append(sc.waiters[doc], ch)
	sc.mu.Unlock()
	if err := sc.link.Send(frame); err != nil {
		sc.removeWaiter(doc, ch)
		sc.fail(err)
		return HelloEntry{}, err
	}
	select {
	case e := <-ch:
		return e, nil
	case <-sc.dead:
		sc.removeWaiter(doc, ch)
		return HelloEntry{}, sc.lastErr()
	case <-time.After(helloTimeout):
		// An abandoned waiter must not linger: the hub's late answer — or
		// the next unsolicited re-point for this document — would be
		// delivered to it and lost, starving the real consumer.
		sc.removeWaiter(doc, ch)
		// The answer may have raced the timeout into the channel.
		select {
		case e := <-ch:
			return e, nil
		default:
		}
		return HelloEntry{}, fmt.Errorf("transport: attach %q to %s timed out", doc, sc.addr)
	}
}

// queueDigest holds one document's anti-entropy digest for the batching
// window, reporting false (send it yourself) when the frame does not
// parse as a digest. The first digest of a window arms the flush timer.
func (sc *sessConn) queueDigest(doc string, frame []byte) bool {
	decoded, err := DecodeFrame(frame)
	if err != nil {
		return false
	}
	sr, ok := decoded.(*SyncReqFrame)
	if !ok {
		return false
	}
	sc.batchMu.Lock()
	if i, ok := sc.pendingIdx[doc]; ok {
		sc.pending[i] = SyncBatchEntry{Doc: doc, From: sr.From, Clock: sr.Clock}
	} else {
		if sc.pendingIdx == nil {
			sc.pendingIdx = make(map[string]int)
		}
		sc.pendingIdx[doc] = len(sc.pending)
		sc.pending = append(sc.pending, SyncBatchEntry{Doc: doc, From: sr.From, Clock: sr.Clock})
	}
	armed := sc.batchArmed
	sc.batchArmed = true
	sc.batchMu.Unlock()
	if !armed {
		time.AfterFunc(syncBatchWindow, sc.flushDigests)
	}
	return true
}

// flushDigests sends the window's accumulated digests: one batch frame
// normally, the legacy per-document envelope when only a single document
// spoke (wire-identical to a pre-batch client), and the same envelope as
// a per-entry fallback when a batch will not encode. A dead connection
// drops the window — the engines' next sync tick re-queues fresh digests.
func (sc *sessConn) flushDigests() {
	sc.batchMu.Lock()
	entries := sc.pending
	sc.pending = nil
	clear(sc.pendingIdx)
	sc.batchArmed = false
	sc.batchMu.Unlock()
	if len(entries) == 0 || sc.isDead() {
		return
	}
	if len(entries) == 1 {
		sc.sendLegacyDigest(entries[0])
		return
	}
	for len(entries) > 0 {
		n := len(entries)
		if n > maxSyncBatch {
			n = maxSyncBatch
		}
		chunk := entries[:n]
		entries = entries[n:]
		frame, err := EncodeSyncBatch(chunk, false)
		if err != nil {
			// Oversized batch (wide clocks): fall back per document so one
			// fat window cannot starve the rest.
			for _, e := range chunk {
				sc.sendLegacyDigest(e)
			}
			continue
		}
		if err := sc.link.Send(frame); err != nil {
			sc.fail(err)
			return
		}
	}
}

// sendLegacyDigest sends one digest the pre-batch way: a kindSyncReq
// frame in the document envelope.
func (sc *sessConn) sendLegacyDigest(e SyncBatchEntry) {
	inner, err := EncodeSyncReq(e.From, e.Clock)
	if err != nil {
		return
	}
	env, err := EncodeDocFrame(e.Doc, inner)
	if err != nil {
		return
	}
	if err := sc.link.Send(env); err != nil {
		sc.fail(err)
	}
}

// removeWaiter unregisters an attach waiter that gave up.
func (sc *sessConn) removeWaiter(doc string, ch chan HelloEntry) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	q := sc.waiters[doc]
	for i, w := range q {
		if w == ch {
			sc.waiters[doc] = append(q[:i:i], q[i+1:]...)
			return
		}
	}
}

// newDocLink registers the per-document link on this connection.
func (sc *sessConn) newDocLink(doc string) (*docLink, error) {
	dl := &docLink{
		doc:   doc,
		in:    make(chan []byte, sessionQueueDepth),
		done:  make(chan struct{}),
		moved: make(chan struct{}),
	}
	dl.sc = sc
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.isDead() {
		return nil, sc.err
	}
	if sc.docs[doc] != nil {
		return nil, fmt.Errorf("transport: doc %q already attached on %s", doc, sc.addr)
	}
	sc.docs[doc] = dl
	return dl, nil
}

// adopt registers an already-running link on this connection (migration).
func (sc *sessConn) adopt(doc string, dl *docLink) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.isDead() || sc.docs[doc] != nil {
		return false
	}
	sc.docs[doc] = dl
	return true
}

func (sc *sessConn) removeDoc(doc string, dl *docLink) {
	sc.mu.Lock()
	if sc.docs[doc] == dl {
		delete(sc.docs, doc)
	}
	sc.mu.Unlock()
}

// reader demultiplexes the shared connection: handshake answers to their
// waiters (unsolicited redirect answers re-point the document's link to
// its new owner), ring announces to the session's epoch, envelope frames
// to their document's link, bare frames to the sole attached document (a
// hub only sends bare frames to clients it believes are legacy).
func (sc *sessConn) reader() {
	for {
		frame, err := sc.link.Recv()
		if err != nil {
			sc.fail(err)
			return
		}
		switch frame[0] {
		case kindHelloResp:
			decoded, err := DecodeFrame(frame)
			if err != nil {
				continue
			}
			for _, e := range decoded.(*HelloRespFrame).Entries {
				sc.mu.Lock()
				q := sc.waiters[e.Doc]
				if len(q) > 0 {
					sc.waiters[e.Doc] = q[1:]
				}
				sc.mu.Unlock()
				if len(q) > 0 {
					q[0] <- e
					continue
				}
				if e.Redirect != "" {
					// Unsolicited: the hub handed the document to a new
					// owner and is re-pointing us. Migrate off the reader
					// goroutine — it must keep draining frames.
					go sc.sess.repoint(e.Doc, e.Redirect, e.Epoch)
				}
			}
		case kindRingAnnounce:
			decoded, err := DecodeFrame(frame)
			if err != nil {
				continue
			}
			if rf := decoded.(*RingFrame); !rf.IsQuery() {
				sc.sess.noteEpoch(rf.Epoch)
			}
		case kindDocFrame:
			doc, inner, err := SplitDocFrame(frame)
			if err != nil {
				continue
			}
			sc.mu.Lock()
			dl := sc.docs[doc]
			sc.mu.Unlock()
			if dl != nil {
				dl.push(inner)
			}
		default:
			var sole *docLink
			sc.mu.Lock()
			if len(sc.docs) == 1 {
				for _, dl := range sc.docs {
					sole = dl
				}
			}
			sc.mu.Unlock()
			if sole != nil {
				sole.push(frame)
			}
		}
	}
}

// docLink is a Link scoped to one document over a shared session
// connection: Send wraps frames in the doc envelope, Recv yields the
// stripped inner frames the reader routed here. The connection underneath
// can change during a live reshard (migrate); the link itself stays
// valid.
type docLink struct {
	doc string
	in  chan []byte

	mu sync.Mutex
	sc *sessConn
	// moved is replaced (and the old one closed) on each migration, so a
	// Recv blocked on the old connection's death re-arms on the new one.
	moved chan struct{}

	done chan struct{}
	once sync.Once
	// repointing serialises migrations.
	repointing atomic.Bool
	// ownsSess is set when DialDoc created a private session for this
	// link, so closing the link closes the connection too.
	ownsSess *Session
}

func (dl *docLink) conn() *sessConn {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	return dl.sc
}

// RoutesReplay marks this link replay-routing (see ReplayRouter): a
// docLink exists only after a kindHello handshake succeeded, and a hub
// that answers the handshake routes directed kindReplay answers — the
// capability shipped alongside the batched digests the same handshake
// gates.
func (dl *docLink) RoutesReplay() bool { return true }

func (dl *docLink) closed() bool {
	select {
	case <-dl.done:
		return true
	default:
		return false
	}
}

// migrate atomically switches the link to a new connection: the new
// connection routes the document's frames into the same inbound queue, so
// consumers never notice. The old attachment is released best-effort.
func (dl *docLink) migrate(to *sessConn) {
	if !to.adopt(dl.doc, dl) {
		return
	}
	dl.mu.Lock()
	old := dl.sc
	dl.sc = to
	moved := dl.moved
	dl.moved = make(chan struct{})
	dl.mu.Unlock()
	close(moved)
	if old != nil && old != to {
		old.removeDoc(dl.doc, dl)
		if f, err := EncodeDetach([]string{dl.doc}); err == nil {
			_ = old.link.Send(f)
		}
	}
}

// push delivers one inbound frame, dropping on overflow: the consumer is
// an engine whose anti-entropy heals the loss, and a slow document must
// not stall its siblings on the shared connection.
func (dl *docLink) push(frame []byte) {
	select {
	case <-dl.done:
	case dl.in <- frame:
	default:
	}
}

// Send wraps one frame in the document envelope and writes it to the
// current connection. Anti-entropy digests take the batching path
// instead: they are held for syncBatchWindow and leave as one
// kindSyncBatch frame per connection, not one envelope per document. If
// the connection fails mid-migration, the send is retried once on the
// new one; a frame lost in the window is healed by anti-entropy.
func (dl *docLink) Send(frame []byte) error {
	select {
	case <-dl.done:
		return fmt.Errorf("transport: doc link closed")
	default:
	}
	if len(frame) > 0 && frame[0] == kindSyncReq && dl.conn().queueDigest(dl.doc, frame) {
		return nil
	}
	env, err := EncodeDocFrame(dl.doc, frame)
	if err != nil {
		return err
	}
	sc := dl.conn()
	if err := sc.link.Send(env); err != nil {
		sc.fail(err)
		if sc2 := dl.conn(); sc2 != sc {
			if err2 := sc2.link.Send(env); err2 == nil {
				return nil
			}
		}
		return err
	}
	return nil
}

// Recv returns the next frame for this document. A migration re-arms the
// wait on the new connection; the old connection dying only fails the
// link if the document still lives there.
func (dl *docLink) Recv() ([]byte, error) {
	for {
		dl.mu.Lock()
		sc, moved := dl.sc, dl.moved
		dl.mu.Unlock()
		select {
		case f := <-dl.in:
			return f, nil
		case <-dl.done:
			return nil, fmt.Errorf("transport: doc link closed")
		case <-moved:
			continue // migrated: wait on the new connection
		case <-sc.dead:
			// Drain anything already routed before deciding.
			select {
			case f := <-dl.in:
				return f, nil
			default:
			}
			if dl.conn() != sc {
				continue // migrated away just as the old connection died
			}
			return nil, sc.lastErr()
		}
	}
}

// Close detaches from the document (best-effort) and fails pending Recv
// calls. A DialDoc link also tears down its private session.
func (dl *docLink) Close() error {
	dl.once.Do(func() {
		sc := dl.conn()
		if f, err := EncodeDetach([]string{dl.doc}); err == nil {
			_ = sc.link.Send(f)
		}
		sc.removeDoc(dl.doc, dl)
		sc.sess.forget(dl.doc, dl)
		close(dl.done)
		if dl.ownsSess != nil {
			dl.ownsSess.Close()
		}
	})
	return nil
}

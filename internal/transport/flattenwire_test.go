package transport

// Wire tests for the flatten commitment frames and the chunked snapshot
// frames this package's engine drives.

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// structuralPath builds a valid flatten subtree path: walk right, then
// left, ending at a major node.
func structuralPath() ident.Path {
	return ident.Path{
		{Bit: 1, Kind: ident.Major},
		{Bit: 0, Kind: ident.Major},
	}
}

func TestFlatProposeRoundTrip(t *testing.T) {
	for _, path := range []ident.Path{nil, structuralPath()} {
		obs := vclock.VC{3: 41, 9: 7}
		frame, err := EncodeFlatPropose(3, 12, path, obs)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		f, ok := decoded.(*FlatProposeFrame)
		if !ok {
			t.Fatalf("decoded %T, want *FlatProposeFrame", decoded)
		}
		if f.From != 3 || f.N != 12 || !reflect.DeepEqual(f.Obs, obs) {
			t.Fatalf("round trip mismatch: %+v", f)
		}
		if len(f.Path) != len(path) {
			t.Fatalf("path mismatch: got %v want %v", f.Path, path)
		}
		for i := range path {
			if f.Path[i] != path[i] {
				t.Fatalf("path mismatch: got %v want %v", f.Path, path)
			}
		}
	}
}

func TestFlatVoteRoundTrip(t *testing.T) {
	for _, yes := range []bool{true, false} {
		frame, err := EncodeFlatVote(5, 3, 12, yes)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		f, ok := decoded.(*FlatVoteFrame)
		if !ok {
			t.Fatalf("decoded %T, want *FlatVoteFrame", decoded)
		}
		if f.From != 5 || f.Coord != 3 || f.N != 12 || f.Yes != yes {
			t.Fatalf("round trip mismatch: %+v", f)
		}
	}
}

func TestFlatDecisionRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		commit bool
		seq    uint64
	}{{true, 77}, {false, 0}} {
		frame, err := EncodeFlatDecision(3, 12, tc.commit, tc.seq, structuralPath())
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		f, ok := decoded.(*FlatDecisionFrame)
		if !ok {
			t.Fatalf("decoded %T, want *FlatDecisionFrame", decoded)
		}
		if f.From != 3 || f.N != 12 || f.Commit != tc.commit || f.Seq != tc.seq || len(f.Path) != 2 {
			t.Fatalf("round trip mismatch: %+v", f)
		}
	}
}

func TestFlatFramesRejectMalformed(t *testing.T) {
	// An atom identifier (ending in a mini element) is not a flatten
	// subtree path.
	atomPath := ident.Path{{Bit: 1, Kind: ident.Mini, Dis: ident.Dis{Site: 4}}}
	if frame, err := EncodeFlatPropose(3, 1, atomPath, vclock.New()); err == nil {
		if _, err := DecodeFrame(frame); err == nil {
			t.Fatal("propose with an atom path decoded")
		}
	}

	vote, err := EncodeFlatVote(5, 3, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), vote...)
	bad[len(bad)-1] = 2 // vote byte must be 0 or 1
	if _, err := DecodeFrame(bad); err == nil {
		t.Fatal("vote byte 2 decoded")
	}
	if _, err := DecodeFrame(vote[:len(vote)-1]); err == nil {
		t.Fatal("truncated vote decoded")
	}

	prop, err := EncodeFlatPropose(3, 1, structuralPath(), vclock.VC{3: 9})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(prop); cut++ {
		if _, err := DecodeFrame(prop[:cut]); err == nil {
			t.Fatalf("truncated propose (%d bytes) decoded", cut)
		}
	}
	if _, err := DecodeFrame(append(append([]byte(nil), prop...), 0xff)); err == nil {
		t.Fatal("propose with trailing bytes decoded")
	}
}

func TestSnapChunkRoundTrip(t *testing.T) {
	version := vclock.VC{2: 9, 4: 1}
	data := bytes.Repeat([]byte{0xab}, 1000)
	frame, err := EncodeSnapChunk(2, version, 5000, 2000, data)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := decoded.(*SnapChunkFrame)
	if !ok {
		t.Fatalf("decoded %T, want *SnapChunkFrame", decoded)
	}
	if f.From != 2 || f.Total != 5000 || f.Offset != 2000 ||
		!reflect.DeepEqual(f.Version, version) || !bytes.Equal(f.Data, data) {
		t.Fatalf("round trip mismatch: %+v", f)
	}
}

func TestSnapChunkRejectsMalformed(t *testing.T) {
	version := vclock.VC{2: 9}
	// Slice outside the claimed total.
	frame, err := EncodeSnapChunk(2, version, 100, 90, bytes.Repeat([]byte{1}, 20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrame(frame); err == nil {
		t.Fatal("chunk outside total decoded")
	}
	// Zero total.
	frame, err = EncodeSnapChunk(2, version, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrame(frame); err == nil {
		t.Fatal("zero-total chunk decoded")
	}
	// Total beyond the reassembly ceiling.
	frame, err = EncodeSnapChunk(2, version, MaxSnapshotSize+1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrame(frame); err == nil {
		t.Fatal("over-ceiling total decoded")
	}
	// Empty version.
	frame, err = EncodeSnapChunk(2, vclock.New(), 100, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFrame(frame); err == nil {
		t.Fatal("empty-version chunk decoded")
	}
}

// TestSnapChunkFrameSizeLimit verifies an oversized chunk frame is
// tolerated by the length-prefixed reader (it is a snapshot-bearing kind)
// while other kinds at that length are refused before allocation.
func TestSnapChunkFrameSizeLimit(t *testing.T) {
	version := vclock.VC{2: 1}
	big := make([]byte, MaxFrameSize+1024)
	frame, err := EncodeSnapChunk(2, version, uint64(len(big)), 0, big)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := WriteFrame(&wire, frame); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(bufio.NewReader(bytes.NewReader(wire.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("chunk frame corrupted through frame IO")
	}
}

// FuzzFlattenFrame fuzzes the flatten commitment frames (kindFlatPropose,
// kindFlatVote, kindFlatDecision) and the chunked snapshot frame
// (kindSnapChunk): arbitrary bodies behind those kind bytes must decode
// cleanly or fail cleanly, never panic, and whatever decodes must
// semantically round-trip through its encoder.
func FuzzFlattenFrame(f *testing.F) {
	if fr, err := EncodeFlatPropose(3, 12, structuralPath(), vclock.VC{3: 41, 9: 7}); err == nil {
		f.Add(fr)
	}
	if fr, err := EncodeFlatVote(4, 3, 12, true); err == nil {
		f.Add(fr)
	}
	if fr, err := EncodeFlatDecision(3, 12, true, 99, structuralPath()); err == nil {
		f.Add(fr)
	}
	if fr, err := EncodeSnapChunk(2, vclock.VC{2: 8}, 64, 16, []byte("chunk-bytes")); err == nil {
		f.Add(fr)
	}
	f.Add([]byte{kindFlatPropose, 0xFF})
	f.Add([]byte{kindFlatVote})
	f.Add([]byte{kindFlatDecision, 0x00, 0x01})
	f.Add([]byte{kindSnapChunk, 0x80})
	f.Fuzz(func(t *testing.T, body []byte) {
		for _, kind := range []byte{kindFlatPropose, kindFlatVote, kindFlatDecision, kindSnapChunk} {
			frame := append([]byte{kind}, body...)
			decoded, err := DecodeFrame(frame)
			if err != nil {
				continue
			}
			// Re-encoding and re-decoding must yield the same frame (byte
			// equality is too strict, since Uvarint tolerates non-minimal
			// encodings on input).
			var re []byte
			switch fr := decoded.(type) {
			case *FlatProposeFrame:
				re, err = EncodeFlatPropose(fr.From, fr.N, fr.Path, fr.Obs)
			case *FlatVoteFrame:
				re, err = EncodeFlatVote(fr.From, fr.Coord, fr.N, fr.Yes)
			case *FlatDecisionFrame:
				re, err = EncodeFlatDecision(fr.From, fr.N, fr.Commit, fr.Seq, fr.Path)
			case *SnapChunkFrame:
				re, err = EncodeSnapChunk(fr.From, fr.Version, fr.Total, fr.Offset, fr.Data)
			default:
				t.Fatalf("kind %#x decoded to %T", kind, decoded)
			}
			if err != nil {
				t.Fatalf("decoded kind %#x frame does not re-encode: %v", kind, err)
			}
			again, err := DecodeFrame(re)
			if err != nil {
				t.Fatalf("re-encoded kind %#x frame does not decode: %v", kind, err)
			}
			if !reflect.DeepEqual(again, decoded) {
				t.Fatalf("kind %#x round trip:\n got %+v\nwant %+v", kind, again, decoded)
			}
		}
	})
}

package transport_test

// Live resharding suite: epoch-versioned ring membership, online document
// handoff between live hubs, forward-mode service for clients that cannot
// follow redirects, and bounded redirect chasing under ring disagreement.
// Run under `go test -race`: handoffs race continuously writing clients.

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/treedoc/treedoc"
	"github.com/treedoc/treedoc/internal/transport"
	"github.com/treedoc/treedoc/internal/transport/shardmap"
)

// hoWriter is one writer replica attached through a session link.
type hoWriter struct {
	id  treedoc.SiteID
	buf *treedoc.TextBuffer
	eng *treedoc.Engine
}

func newHOWriter(t testing.TB, id treedoc.SiteID, link treedoc.Link) *hoWriter {
	t.Helper()
	buf, err := treedoc.NewTextBuffer(treedoc.WithSite(id))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := treedoc.NewEngine(id, buf, treedoc.WithSyncInterval(15*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	eng.Connect(link)
	return &hoWriter{id: id, buf: buf, eng: eng}
}

// write floods n edits from this writer's goroutine, pacing slightly so a
// concurrent handoff interleaves with live traffic.
func (w *hoWriter) write(t testing.TB, n int, pace time.Duration) {
	rng := rand.New(rand.NewSource(int64(w.id)))
	for i := 0; i < n; i++ {
		l := w.buf.Len()
		var ops []treedoc.Op
		var err error
		if l > 0 && rng.Intn(6) == 0 {
			ops, err = w.buf.Delete(rng.Intn(l), 1)
		} else {
			ops, err = w.buf.Insert(rng.Intn(l+1), fmt.Sprintf("w%d.%d ", w.id, i))
		}
		if errors.Is(err, treedoc.ErrOutOfRange) {
			i--
			continue
		}
		if err != nil {
			t.Errorf("writer %d: %v", w.id, err)
			return
		}
		if err := w.eng.Broadcast(ops...); err != nil {
			t.Errorf("writer %d: %v", w.id, err)
			return
		}
		if pace > 0 {
			time.Sleep(pace)
		}
	}
}

// hoConverge polls until every engine reports the same delivered clock.
func hoConverge(t testing.TB, engines []*treedoc.Engine, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		same := true
		first := engines[0].Clock().String()
		for _, e := range engines[1:] {
			if e.Clock().String() != first {
				same = false
				break
			}
		}
		if same {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	clocks := make([]string, len(engines))
	for i, e := range engines {
		clocks[i] = e.Clock().String()
	}
	t.Fatalf("engines did not converge within %v: %v", timeout, clocks)
}

// archMgr manages one hub process's archivists the way cmd/treedoc-serve
// does: the ownership callback starts an archivist (registered as the
// handoff source) on acquire and stops it on release.
type archMgr struct {
	t       testing.TB
	hubAddr string
	dir     string
	site    treedoc.SiteID

	mu   sync.Mutex
	hub  *transport.Hub
	arch map[string]*hoWriter
}

func (m *archMgr) ownership(doc string, epoch uint64, acquired bool) {
	if acquired {
		m.start(doc)
		return
	}
	m.stop(doc)
}

func (m *archMgr) start(doc string) *hoWriter {
	m.mu.Lock()
	defer m.mu.Unlock()
	if a := m.arch[doc]; a != nil {
		return a
	}
	buf, err := treedoc.NewTextBuffer(treedoc.WithSite(m.site))
	if err != nil {
		m.t.Error(err)
		return nil
	}
	eng, err := treedoc.NewEngine(m.site, buf,
		treedoc.WithLogDir(filepath.Join(m.dir, doc)),
		treedoc.WithSyncInterval(15*time.Millisecond))
	if err != nil {
		m.t.Error(err)
		return nil
	}
	link, err := treedoc.DialDoc(m.hubAddr, doc)
	if err != nil {
		eng.Stop()
		m.t.Errorf("archivist attach %q: %v", doc, err)
		return nil
	}
	eng.Connect(link)
	a := &hoWriter{id: m.site, buf: buf, eng: eng}
	m.arch[doc] = a
	m.hub.RegisterHandoff(doc, eng)
	return a
}

func (m *archMgr) stop(doc string) {
	m.mu.Lock()
	a := m.arch[doc]
	delete(m.arch, doc)
	m.mu.Unlock()
	if a == nil {
		return
	}
	m.hub.RegisterHandoff(doc, nil)
	a.eng.Stop()
}

func (m *archMgr) get(doc string) *hoWriter {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.arch[doc]
}

// docOwnedBy finds a document name owned by addr under the ring.
func docOwnedBy(t testing.TB, ring *shardmap.Ring, addr string) string {
	t.Helper()
	for i := 0; i < 100_000; i++ {
		doc := fmt.Sprintf("doc-%d", i)
		if ring.Owner(doc) == addr {
			return doc
		}
	}
	t.Fatal("no document hashes to the target hub")
	return ""
}

// TestLiveHandoffUnderWriters is the acceptance test for online
// resharding: with two writers editing continuously, a new hub joins the
// ring and the document moves to it — no hub or client restarts, no op is
// lost, every replica converges byte-identical, the new owner's archivist
// catches up from the streamed snapshot (replaying zero pre-snapshot
// operations), and a stale-epoch client attaching through the old owner
// recovers via the epoch-stamped redirect.
func TestLiveHandoffUnderWriters(t *testing.T) {
	const (
		phase1PerWriter = 200
		phase2PerWriter = 150
	)
	var mgrA *archMgr
	hubA, err := treedoc.ListenHub("127.0.0.1:0",
		transport.WithHubOwnership(func(doc string, epoch uint64, acquired bool) {
			mgrA.ownership(doc, epoch, acquired)
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer hubA.Close()
	addrA := hubA.Addr().String()
	mgrA = &archMgr{t: t, hubAddr: addrA, dir: t.TempDir(), site: 1000, hub: hubA, arch: make(map[string]*hoWriter)}

	ring1, err := shardmap.NewRing(1, []string{addrA})
	if err != nil {
		t.Fatal(err)
	}
	if err := hubA.ConfigureRing(addrA, ring1); err != nil {
		t.Fatal(err)
	}

	// The second hub is configured with an ownership hook that brings up a
	// local archivist the moment a handoff begins streaming in.
	var mgrB *archMgr
	hubB, err := treedoc.ListenHub("127.0.0.1:0",
		transport.WithHubOwnership(func(doc string, epoch uint64, acquired bool) {
			mgrB.ownership(doc, epoch, acquired)
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer hubB.Close()
	addrB := hubB.Addr().String()
	mgrB = &archMgr{t: t, hubAddr: addrB, dir: t.TempDir(), site: 2000, hub: hubB, arch: make(map[string]*hoWriter)}

	ring2, err := shardmap.NewRing(2, []string{addrA, addrB})
	if err != nil {
		t.Fatal(err)
	}
	doc := docOwnedBy(t, ring2, addrB) // owned by A at epoch 1, by B at epoch 2

	// Archivist for the doc at hub A, registered as the handoff source.
	archA := mgrA.start(doc)
	if archA == nil {
		t.Fatal("archivist A failed to start")
	}

	linkOf := func(addr string) treedoc.Link {
		l, err := treedoc.DialDoc(addr, doc)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	w1 := newHOWriter(t, 1, linkOf(addrA))
	w2 := newHOWriter(t, 2, linkOf(addrA))
	defer w1.eng.Stop()
	defer w2.eng.Stop()

	// Phase 1: write and converge, so the archivist's snapshot barrier
	// will cover at least this history when the handoff streams it.
	var wg sync.WaitGroup
	for _, w := range []*hoWriter{w1, w2} {
		wg.Add(1)
		go func(w *hoWriter) { defer wg.Done(); w.write(t, phase1PerWriter, 0) }(w)
	}
	wg.Wait()
	hoConverge(t, []*treedoc.Engine{w1.eng, w2.eng, archA.eng}, 30*time.Second)
	phase1VC := w1.eng.Clock()
	phase1Total := phase1VC.Get(1) + phase1VC.Get(2)

	// Phase 2: keep writing while hub B joins the ring at epoch 2. Hub A
	// adopts the announced ring, freezes the doc, streams the archivist
	// snapshot + suffix to B, re-points the writers with an epoch-stamped
	// redirect, and releases its archivist. Nothing restarts.
	for _, w := range []*hoWriter{w1, w2} {
		wg.Add(1)
		go func(w *hoWriter) { defer wg.Done(); w.write(t, phase2PerWriter, time.Millisecond) }(w)
	}
	time.Sleep(30 * time.Millisecond) // let phase 2 overlap the reshard
	if err := hubB.ConfigureRing(addrB, ring2); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// The new owner's archivist must exist (ownership hook fired).
	deadline := time.Now().Add(10 * time.Second)
	for mgrB.get(doc) == nil && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	archB := mgrB.get(doc)
	if archB == nil {
		t.Fatalf("hub B never acquired doc %q (handoffs in: %d)", doc, hubB.HandoffsIn())
	}

	hoConverge(t, []*treedoc.Engine{w1.eng, w2.eng, archB.eng}, 30*time.Second)
	want := w1.buf.String()
	if got := w2.buf.String(); got != want {
		t.Fatalf("writers diverged after handoff (%d vs %d runes)", len(got), len(want))
	}
	if got := archB.buf.String(); got != want {
		t.Fatalf("new owner archivist diverged (%d vs %d runes)", len(got), len(want))
	}

	// Zero pre-snapshot replay: the new archivist installed the streamed
	// snapshot (which covers all of phase 1) and applied live only what
	// the snapshot did not cover.
	if archB.eng.SnapshotsInstalled() == 0 {
		t.Fatal("new owner archivist never installed the handoff snapshot")
	}
	total := w1.eng.Clock().Get(1) + w1.eng.Clock().Get(2)
	phase2 := total - phase1Total
	if applied := archB.eng.Applied(); applied > phase2 {
		t.Fatalf("new owner archivist replayed %d ops live; snapshot should cover all %d phase-1 ops (total %d)",
			applied, phase1Total, total)
	}

	if hubA.HandoffsOut() == 0 || hubB.HandoffsIn() == 0 {
		t.Fatalf("handoff counters: A out %d, B in %d", hubA.HandoffsOut(), hubB.HandoffsIn())
	}
	if hubA.RingEpoch() != 2 || hubB.RingEpoch() != 2 {
		t.Fatalf("ring epochs after join: A %d, B %d", hubA.RingEpoch(), hubB.RingEpoch())
	}
	if mgrA.get(doc) != nil {
		t.Fatal("old owner still runs an archivist for the moved doc")
	}

	// A stale-epoch client that only knows the old owner recovers through
	// the epoch-stamped redirect: attach via A, converge with everyone.
	late := newHOWriter(t, 3, linkOf(addrA))
	defer late.eng.Stop()
	hoConverge(t, []*treedoc.Engine{w1.eng, late.eng}, 30*time.Second)
	if got := late.buf.String(); got != want {
		t.Fatal("stale-epoch client diverged after following the epoch-stamped redirect")
	}
}

// TestLegacyDefaultSurvivesEpochChange moves the "default" document to a
// newly joined hub while a legacy Dial client (bare frames, cannot follow
// redirects) is attached to the old owner: the old hub serves it through
// hub-to-hub forwarding, and it converges with a doc-aware client that
// was re-pointed to the new owner.
func TestLegacyDefaultSurvivesEpochChange(t *testing.T) {
	hubA, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hubA.Close()
	addrA := hubA.Addr().String()
	ring1, err := shardmap.NewRing(1, []string{addrA})
	if err != nil {
		t.Fatal(err)
	}
	if err := hubA.ConfigureRing(addrA, ring1); err != nil {
		t.Fatal(err)
	}

	// Find a second hub whose address makes the two-node ring assign
	// "default" to it (listen ports are random, so probe).
	var hubB *treedoc.Hub
	var ring2 *shardmap.Ring
	for i := 0; i < 64; i++ {
		h, err := treedoc.ListenHub("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		r, err := shardmap.NewRing(2, []string{addrA, h.Addr().String()})
		if err != nil {
			t.Fatal(err)
		}
		if r.Owner(treedoc.DefaultDoc) == h.Addr().String() {
			hubB, ring2 = h, r
			break
		}
		h.Close()
	}
	if hubB == nil {
		t.Skip("no listen port made the ring move the default doc (vanishingly unlikely)")
	}
	defer hubB.Close()
	addrB := hubB.Addr().String()

	legacyLink, err := treedoc.Dial(addrA)
	if err != nil {
		t.Fatal(err)
	}
	legacy := newHOWriter(t, 1, legacyLink)
	defer legacy.eng.Stop()
	awareLink, err := treedoc.DialDoc(addrA, treedoc.DefaultDoc)
	if err != nil {
		t.Fatal(err)
	}
	aware := newHOWriter(t, 2, awareLink)
	defer aware.eng.Stop()

	// Phase 1 on the old owner.
	var wg sync.WaitGroup
	for _, w := range []*hoWriter{legacy, aware} {
		wg.Add(1)
		go func(w *hoWriter) { defer wg.Done(); w.write(t, 100, 0) }(w)
	}
	wg.Wait()
	hoConverge(t, []*treedoc.Engine{legacy.eng, aware.eng}, 30*time.Second)

	// Epoch change: "default" moves to hub B while both keep writing.
	for _, w := range []*hoWriter{legacy, aware} {
		wg.Add(1)
		go func(w *hoWriter) { defer wg.Done(); w.write(t, 100, time.Millisecond) }(w)
	}
	time.Sleep(20 * time.Millisecond)
	if err := hubB.ConfigureRing(addrB, ring2); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	hoConverge(t, []*treedoc.Engine{legacy.eng, aware.eng}, 30*time.Second)
	if legacy.buf.String() != aware.buf.String() {
		t.Fatal("legacy and re-pointed doc-aware replicas diverged across the epoch change")
	}
	if hubA.Forwards() == 0 {
		t.Fatalf("old owner never forwarded the legacy client's frames (forwards %d)", hubA.Forwards())
	}
	if hubA.RingEpoch() != 2 {
		t.Fatalf("hub A ring epoch = %d, want 2", hubA.RingEpoch())
	}
}

// TestRedirectLoopFailsFast wires two hubs with deliberately disagreeing
// rings of the same epoch — each names the other as the owner — and
// asserts the client fails the attach with a loop error instead of
// bouncing forever (the pre-epoch behaviour was a single blind hop; two
// hops that revisit a hub whose epoch did not advance must fail).
func TestRedirectLoopFailsFast(t *testing.T) {
	hubA, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hubA.Close()
	hubB, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hubB.Close()
	addrA, addrB := hubA.Addr().String(), hubB.Addr().String()

	ringA, err := shardmap.NewRing(1, []string{addrA, addrB})
	if err != nil {
		t.Fatal(err)
	}
	// Hub B's view replaces B with a phantom node, so every document ring
	// A assigns to B is assigned to A (or the phantom) under ring B — B
	// bounces it straight back.
	ringB, err := shardmap.NewRing(1, []string{addrA, "203.0.113.7:1"})
	if err != nil {
		t.Fatal(err)
	}
	var doc string
	for i := 0; i < 100_000 && doc == ""; i++ {
		d := fmt.Sprintf("doc-%d", i)
		if ringA.Owner(d) == addrB && ringB.Owner(d) == addrA {
			doc = d
		}
	}
	if doc == "" {
		t.Fatal("no document bounces between the disagreeing rings")
	}
	if err := hubA.ConfigureRing(addrA, ringA); err != nil {
		t.Fatal(err)
	}
	if err := hubB.ConfigureRing(addrB, ringB); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := treedoc.DialDoc(addrA, doc)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("attach succeeded through disagreeing rings")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("attach hung: redirect bouncing is unbounded")
	}
}

// TestForwardFallbackWhenOwnerUnreachable: the ring places a document on
// a hub the clients cannot reach; the attach falls back to the forward
// flag and the reachable hub serves the document locally, relaying among
// its own clients (and towards the owner, best-effort, over the mesh).
func TestForwardFallbackWhenOwnerUnreachable(t *testing.T) {
	hubA, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hubA.Close()
	addrA := hubA.Addr().String()
	// Port 1 refuses connections immediately: an owner shard that exists
	// in the ring but is unreachable from these clients.
	const deadOwner = "127.0.0.1:1"
	ring, err := shardmap.NewRing(1, []string{addrA, deadOwner})
	if err != nil {
		t.Fatal(err)
	}
	if err := hubA.ConfigureRing(addrA, ring); err != nil {
		t.Fatal(err)
	}
	doc := docOwnedBy(t, ring, deadOwner)

	w1link, err := treedoc.DialDoc(addrA, doc)
	if err != nil {
		t.Fatalf("attach with unreachable owner: %v", err)
	}
	w1 := newHOWriter(t, 1, w1link)
	defer w1.eng.Stop()
	w2link, err := treedoc.DialDoc(addrA, doc)
	if err != nil {
		t.Fatal(err)
	}
	w2 := newHOWriter(t, 2, w2link)
	defer w2.eng.Stop()

	var wg sync.WaitGroup
	for _, w := range []*hoWriter{w1, w2} {
		wg.Add(1)
		go func(w *hoWriter) { defer wg.Done(); w.write(t, 100, 0) }(w)
	}
	wg.Wait()
	hoConverge(t, []*treedoc.Engine{w1.eng, w2.eng}, 30*time.Second)
	if w1.buf.String() != w2.buf.String() {
		t.Fatal("forward-fallback clients diverged")
	}
	if st := hubA.DocStats()[doc]; st.Clients != 2 || st.Relays == 0 {
		t.Fatalf("reachable hub did not serve the foreign doc: %+v", st)
	}
}

// TestResignHandsEverythingBack: a hub leaves the ring gracefully; its
// document moves back to the survivor, attached writers are re-pointed,
// and convergence holds.
func TestResignHandsEverythingBack(t *testing.T) {
	hubA, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hubA.Close()
	hubB, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hubB.Close()
	addrA, addrB := hubA.Addr().String(), hubB.Addr().String()
	ring1, err := shardmap.NewRing(1, []string{addrA, addrB})
	if err != nil {
		t.Fatal(err)
	}
	if err := hubA.ConfigureRing(addrA, ring1); err != nil {
		t.Fatal(err)
	}
	if err := hubB.ConfigureRing(addrB, ring1); err != nil {
		t.Fatal(err)
	}
	doc := docOwnedBy(t, ring1, addrB)

	l1, err := treedoc.DialDoc(addrA, doc) // redirected to B
	if err != nil {
		t.Fatal(err)
	}
	w1 := newHOWriter(t, 1, l1)
	defer w1.eng.Stop()
	l2, err := treedoc.DialDoc(addrB, doc)
	if err != nil {
		t.Fatal(err)
	}
	w2 := newHOWriter(t, 2, l2)
	defer w2.eng.Stop()

	var wg sync.WaitGroup
	for _, w := range []*hoWriter{w1, w2} {
		wg.Add(1)
		go func(w *hoWriter) { defer wg.Done(); w.write(t, 150, time.Millisecond) }(w)
	}
	time.Sleep(20 * time.Millisecond)
	if err := hubB.Resign(20 * time.Second); err != nil {
		t.Fatalf("resign: %v", err)
	}
	wg.Wait()

	hoConverge(t, []*treedoc.Engine{w1.eng, w2.eng}, 30*time.Second)
	if w1.buf.String() != w2.buf.String() {
		t.Fatal("writers diverged across the resign")
	}
	if owner, owned := hubA.DocOwner(doc); !owned {
		t.Fatalf("survivor does not own the doc after resign (owner %s)", owner)
	}
	if hubB.RingEpoch() != 2 || hubA.RingEpoch() != 2 {
		t.Fatalf("ring epochs after resign: A %d, B %d", hubA.RingEpoch(), hubB.RingEpoch())
	}
}

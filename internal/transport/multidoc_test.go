package transport_test

// Multi-document hub suite: one hub process relays several independent
// documents at once, each in its own relay group, with zero cross-document
// leakage; and two cooperating hub processes split the document space by
// consistent hashing, redirecting attaches for documents they do not own.
// Run under `go test -race`: writers for different documents interleave
// through the same hub connections and shard structures.

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/treedoc/treedoc"
	"github.com/treedoc/treedoc/internal/transport/shardmap"
)

const mdEditsPerWriter = 150

// mdSite is one writer replica attached to a named document.
type mdSite struct {
	id     treedoc.SiteID
	doc    string
	marker string // every insert carries this sigil, unique per doc
	buf    *treedoc.TextBuffer
	eng    *treedoc.Engine
}

func newMDSite(t testing.TB, id treedoc.SiteID, doc, marker string, link treedoc.Link) *mdSite {
	t.Helper()
	buf, err := treedoc.NewTextBuffer(treedoc.WithSite(id))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := treedoc.NewEngine(id, buf, treedoc.WithSyncInterval(15*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	eng.Connect(link)
	return &mdSite{id: id, doc: doc, marker: marker, buf: buf, eng: eng}
}

// write floods the site's document with marker-tagged inserts and
// occasional deletes from its own goroutine.
func (s *mdSite) write(t testing.TB) {
	rng := rand.New(rand.NewSource(int64(s.id)))
	for i := 0; i < mdEditsPerWriter; i++ {
		n := s.buf.Len()
		var ops []treedoc.Op
		var err error
		if n > 0 && rng.Intn(5) == 0 {
			ops, err = s.buf.Delete(rng.Intn(n), 1)
		} else {
			ops, err = s.buf.Insert(rng.Intn(n+1), fmt.Sprintf("%s%d.%d ", s.marker, s.id, i))
		}
		if errors.Is(err, treedoc.ErrOutOfRange) {
			i--
			continue
		}
		if err != nil {
			t.Errorf("site %d: %v", s.id, err)
			return
		}
		if err := s.eng.Broadcast(ops...); err != nil {
			t.Errorf("site %d: %v", s.id, err)
			return
		}
	}
}

// mdConverge polls until every engine in the group reports the same
// delivered clock.
func mdConverge(t testing.TB, sites []*mdSite, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		same := true
		first := sites[0].eng.Clock().String()
		for _, s := range sites[1:] {
			if s.eng.Clock().String() != first {
				same = false
				break
			}
		}
		if same {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("doc %q: writers did not converge within %v", sites[0].doc, timeout)
}

// TestHubMultiDocIsolation drives two independent documents through one
// hub process with interleaved writers and asserts byte-identical per-doc
// convergence and zero cross-doc frame leakage.
func TestHubMultiDocIsolation(t *testing.T) {
	hub, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	addr := hub.Addr().String()

	dial := func(id treedoc.SiteID, doc, marker string) *mdSite {
		link, err := treedoc.DialDoc(addr, doc)
		if err != nil {
			t.Fatal(err)
		}
		return newMDSite(t, id, doc, marker, link)
	}
	alpha := []*mdSite{dial(1, "alpha", "a"), dial(2, "alpha", "a")}
	beta := []*mdSite{dial(3, "beta", "b"), dial(4, "beta", "b")}
	all := append(append([]*mdSite{}, alpha...), beta...)
	defer func() {
		for _, s := range all {
			s.eng.Stop()
		}
	}()

	var wg sync.WaitGroup
	for _, s := range all {
		wg.Add(1)
		go func(s *mdSite) {
			defer wg.Done()
			s.write(t)
		}(s)
	}
	wg.Wait()

	mdConverge(t, alpha, 30*time.Second)
	mdConverge(t, beta, 30*time.Second)

	for _, group := range [][]*mdSite{alpha, beta} {
		want := group[0].buf.String()
		for _, s := range group[1:] {
			if got := s.buf.String(); got != want {
				t.Fatalf("doc %q: site %d diverged (%d vs %d runes)", s.doc, s.id, len(got), len(want))
			}
		}
	}

	// Zero cross-doc leakage: no beta marker in any alpha replica and vice
	// versa, and no alpha engine ever delivered an op stamped by a beta
	// site (the clocks stay disjoint).
	alphaText, betaText := alpha[0].buf.String(), beta[0].buf.String()
	if strings.Contains(alphaText, "b3.") || strings.Contains(alphaText, "b4.") {
		t.Fatal("beta content leaked into alpha")
	}
	if strings.Contains(betaText, "a1.") || strings.Contains(betaText, "a2.") {
		t.Fatal("alpha content leaked into beta")
	}
	for _, s := range alpha {
		vc := s.eng.Clock()
		if vc.Get(3) != 0 || vc.Get(4) != 0 {
			t.Fatalf("alpha site %d delivered beta ops: clock %s", s.id, vc)
		}
	}
	for _, s := range beta {
		vc := s.eng.Clock()
		if vc.Get(1) != 0 || vc.Get(2) != 0 {
			t.Fatalf("beta site %d delivered alpha ops: clock %s", s.id, vc)
		}
	}

	stats := hub.DocStats()
	for _, doc := range []string{"alpha", "beta"} {
		st, ok := stats[doc]
		if !ok || st.Relays == 0 {
			t.Fatalf("hub relayed nothing for doc %q: %+v", doc, stats)
		}
		if st.Clients != 2 {
			t.Fatalf("doc %q has %d attached clients, want 2", doc, st.Clients)
		}
	}
}

// TestHubLegacyClientInterop wires a legacy Dial client (no handshake,
// bare frames) and a doc-aware DialDoc client to the same hub: both land
// on the default document and converge.
func TestHubLegacyClientInterop(t *testing.T) {
	hub, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	addr := hub.Addr().String()

	legacyLink, err := treedoc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	legacy := newMDSite(t, 1, treedoc.DefaultDoc, "a", legacyLink)
	awareLink, err := treedoc.DialDoc(addr, treedoc.DefaultDoc)
	if err != nil {
		t.Fatal(err)
	}
	aware := newMDSite(t, 2, treedoc.DefaultDoc, "a", awareLink)
	sites := []*mdSite{legacy, aware}
	defer func() {
		for _, s := range sites {
			s.eng.Stop()
		}
	}()

	var wg sync.WaitGroup
	for _, s := range sites {
		wg.Add(1)
		go func(s *mdSite) {
			defer wg.Done()
			s.write(t)
		}(s)
	}
	wg.Wait()
	mdConverge(t, sites, 30*time.Second)
	if legacy.buf.String() != aware.buf.String() {
		t.Fatal("legacy and doc-aware replicas diverged on the default doc")
	}
}

// TestShardedHubsRouteAttaches runs two cooperating hub processes
// splitting the document space: every client dials the first hub, and
// attaches for documents the second hub owns are redirected and followed
// transparently. Each hub relays only the documents it owns.
func TestShardedHubsRouteAttaches(t *testing.T) {
	hubA, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hubA.Close()
	hubB, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hubB.Close()
	addrA, addrB := hubA.Addr().String(), hubB.Addr().String()
	peers := []string{addrA, addrB}
	if err := hubA.ConfigureSharding(addrA, peers); err != nil {
		t.Fatal(err)
	}
	if err := hubB.ConfigureSharding(addrB, peers); err != nil {
		t.Fatal(err)
	}

	// Pick one document owned by each hub, exactly as the hubs will see it.
	ring, err := shardmap.New(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	var docA, docB string
	for i := 0; docA == "" || docB == ""; i++ {
		doc := fmt.Sprintf("doc-%d", i)
		switch ring.Owner(doc) {
		case addrA:
			if docA == "" {
				docA = doc
			}
		case addrB:
			if docB == "" {
				docB = doc
			}
		}
	}

	// All clients dial hubA; attaches for docB must be redirected to hubB.
	// One client uses a multi-doc session with a link per document.
	sess := treedoc.DialSession(addrA)
	defer sess.Close()
	linkA1, err := sess.Attach(docA)
	if err != nil {
		t.Fatal(err)
	}
	linkB1, err := sess.Attach(docB)
	if err != nil {
		t.Fatal(err)
	}
	linkA2, err := treedoc.DialDoc(addrA, docA)
	if err != nil {
		t.Fatal(err)
	}
	linkB2, err := treedoc.DialDoc(addrA, docB)
	if err != nil {
		t.Fatal(err)
	}

	groupA := []*mdSite{newMDSite(t, 1, docA, "a", linkA1), newMDSite(t, 2, docA, "a", linkA2)}
	groupB := []*mdSite{newMDSite(t, 3, docB, "b", linkB1), newMDSite(t, 4, docB, "b", linkB2)}
	all := append(append([]*mdSite{}, groupA...), groupB...)
	defer func() {
		for _, s := range all {
			s.eng.Stop()
		}
	}()

	var wg sync.WaitGroup
	for _, s := range all {
		wg.Add(1)
		go func(s *mdSite) {
			defer wg.Done()
			s.write(t)
		}(s)
	}
	wg.Wait()
	mdConverge(t, groupA, 30*time.Second)
	mdConverge(t, groupB, 30*time.Second)
	for _, group := range [][]*mdSite{groupA, groupB} {
		if group[0].buf.String() != group[1].buf.String() {
			t.Fatalf("doc %q diverged across its shard", group[0].doc)
		}
	}

	// Each hub served exactly the documents it owns.
	statsA, statsB := hubA.DocStats(), hubB.DocStats()
	if st := statsA[docA]; st.Relays == 0 || st.Clients != 2 {
		t.Fatalf("hub A did not serve its own doc %q: %+v", docA, statsA)
	}
	if st, ok := statsA[docB]; ok && (st.Clients > 0 || st.Relays > 0) {
		t.Fatalf("hub A relayed foreign doc %q: %+v", docB, st)
	}
	if st := statsB[docB]; st.Relays == 0 || st.Clients != 2 {
		t.Fatalf("hub B did not serve its own doc %q: %+v", docB, statsB)
	}
	if st, ok := statsB[docA]; ok && (st.Clients > 0 || st.Relays > 0) {
		t.Fatalf("hub B relayed foreign doc %q: %+v", docA, st)
	}
}

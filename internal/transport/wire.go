package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"github.com/treedoc/treedoc/internal/causal"
	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// Frame kinds. A frame is one length-delimited unit on a Link: a kind byte
// followed by the kind-specific body.
const (
	// kindOps carries a batch of causally-stamped operations.
	kindOps = 0x01
	// kindSyncReq is an anti-entropy digest: the sender's delivered clock.
	// The receiver answers with a kindOps frame of everything it retains
	// that the clock does not cover.
	kindSyncReq = 0x02
)

// Wire limits. Frames above MaxFrameSize are refused on read and write so a
// corrupt or hostile length prefix cannot force an arbitrary allocation.
const (
	// MaxFrameSize bounds one frame's encoded size.
	MaxFrameSize = 1 << 20
	// maxBatch bounds the operations in one kindOps frame.
	maxBatch = 1 << 16
	// maxClockEntries bounds the sites in one encoded vector clock.
	maxClockEntries = 1 << 12
)

// OpsFrame is a decoded kindOps frame.
type OpsFrame struct {
	Msgs []causal.Message // every Payload is a core.Op
}

// SyncReqFrame is a decoded kindSyncReq frame.
type SyncReqFrame struct {
	From  ident.SiteID
	Clock vclock.VC
}

// appendVC appends a vector clock: uvarint entry count, then (site, count)
// pairs with sites ascending so encodings are deterministic.
func appendVC(dst []byte, vc vclock.VC) []byte {
	sites := make([]ident.SiteID, 0, len(vc))
	for s, n := range vc {
		if n > 0 {
			sites = append(sites, s)
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	dst = binary.AppendUvarint(dst, uint64(len(sites)))
	for _, s := range sites {
		dst = binary.AppendUvarint(dst, uint64(s))
		dst = binary.AppendUvarint(dst, vc[s])
	}
	return dst
}

// decodeVC decodes a vector clock from the front of buf, returning the
// bytes consumed.
func decodeVC(buf []byte) (vclock.VC, int, error) {
	n, off := binary.Uvarint(buf)
	if off <= 0 {
		return nil, 0, fmt.Errorf("transport: truncated clock size")
	}
	if n > maxClockEntries {
		return nil, 0, fmt.Errorf("transport: clock with %d entries exceeds limit", n)
	}
	// Each entry costs at least two bytes; bound before allocating.
	if n > uint64(len(buf)-off) {
		return nil, 0, fmt.Errorf("transport: clock entry count %d exceeds buffer", n)
	}
	vc := make(vclock.VC, n)
	for i := uint64(0); i < n; i++ {
		site, k := binary.Uvarint(buf[off:])
		if k <= 0 {
			return nil, 0, fmt.Errorf("transport: truncated clock site")
		}
		off += k
		if site == 0 || ident.SiteID(site) > ident.MaxSiteID {
			return nil, 0, fmt.Errorf("transport: clock site %d out of range", site)
		}
		count, k := binary.Uvarint(buf[off:])
		if k <= 0 {
			return nil, 0, fmt.Errorf("transport: truncated clock count")
		}
		off += k
		if count == 0 {
			return nil, 0, fmt.Errorf("transport: zero clock entry for site %d", site)
		}
		vc[ident.SiteID(site)] = count
	}
	return vc, off, nil
}

// EncodeOps encodes a batch of stamped operations as one kindOps frame.
// Every message payload must be a core.Op.
func EncodeOps(msgs []causal.Message) ([]byte, error) {
	if len(msgs) > maxBatch {
		return nil, fmt.Errorf("transport: batch of %d ops exceeds limit", len(msgs))
	}
	buf := []byte{kindOps}
	buf = binary.AppendUvarint(buf, uint64(len(msgs)))
	for _, m := range msgs {
		op, ok := m.Payload.(core.Op)
		if !ok {
			return nil, fmt.Errorf("transport: message payload %T is not an op", m.Payload)
		}
		buf = binary.AppendUvarint(buf, uint64(m.From))
		buf = appendVC(buf, m.TS)
		buf = op.AppendBinary(buf)
	}
	if len(buf) > MaxFrameSize {
		return nil, fmt.Errorf("transport: ops frame of %d bytes exceeds limit", len(buf))
	}
	return buf, nil
}

// EncodeSyncReq encodes an anti-entropy digest frame.
func EncodeSyncReq(from ident.SiteID, clock vclock.VC) ([]byte, error) {
	buf := []byte{kindSyncReq}
	buf = binary.AppendUvarint(buf, uint64(from))
	buf = appendVC(buf, clock)
	if len(buf) > MaxFrameSize {
		return nil, fmt.Errorf("transport: sync frame of %d bytes exceeds limit", len(buf))
	}
	return buf, nil
}

// DecodeFrame parses one frame into an *OpsFrame or *SyncReqFrame. Every
// decoded message is validated: sites in range, clocks well-formed, the
// op's own stamp present.
func DecodeFrame(frame []byte) (any, error) {
	if len(frame) == 0 {
		return nil, fmt.Errorf("transport: empty frame")
	}
	if len(frame) > MaxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	body := frame[1:]
	switch frame[0] {
	case kindOps:
		n, off := binary.Uvarint(body)
		if off <= 0 {
			return nil, fmt.Errorf("transport: truncated ops count")
		}
		if n > maxBatch {
			return nil, fmt.Errorf("transport: ops frame with %d ops exceeds limit", n)
		}
		// Each op costs several bytes on the wire, so a count beyond the
		// remaining body is corrupt; checking before make() keeps a tiny
		// hostile frame from forcing a large allocation.
		if n > uint64(len(body)-off) {
			return nil, fmt.Errorf("transport: ops count %d exceeds frame", n)
		}
		f := &OpsFrame{Msgs: make([]causal.Message, 0, n)}
		for i := uint64(0); i < n; i++ {
			from, k := binary.Uvarint(body[off:])
			if k <= 0 {
				return nil, fmt.Errorf("transport: truncated op sender")
			}
			off += k
			if from == 0 || ident.SiteID(from) > ident.MaxSiteID {
				return nil, fmt.Errorf("transport: op sender %d out of range", from)
			}
			vc, k, err := decodeVC(body[off:])
			if err != nil {
				return nil, err
			}
			off += k
			if vc.Get(ident.SiteID(from)) == 0 {
				return nil, fmt.Errorf("transport: op from s%d without own stamp", from)
			}
			op, k, err := core.DecodeOp(body[off:])
			if err != nil {
				return nil, err
			}
			off += k
			f.Msgs = append(f.Msgs, causal.Message{From: ident.SiteID(from), TS: vc, Payload: op})
		}
		if off != len(body) {
			return nil, fmt.Errorf("transport: %d trailing bytes after ops frame", len(body)-off)
		}
		return f, nil
	case kindSyncReq:
		from, off := binary.Uvarint(body)
		if off <= 0 {
			return nil, fmt.Errorf("transport: truncated sync sender")
		}
		if from == 0 || ident.SiteID(from) > ident.MaxSiteID {
			return nil, fmt.Errorf("transport: sync sender %d out of range", from)
		}
		vc, k, err := decodeVC(body[off:])
		if err != nil {
			return nil, err
		}
		off += k
		if off != len(body) {
			return nil, fmt.Errorf("transport: %d trailing bytes after sync frame", len(body)-off)
		}
		return &SyncReqFrame{From: ident.SiteID(from), Clock: vc}, nil
	default:
		return nil, fmt.Errorf("transport: unknown frame kind %#x", frame[0])
	}
}

// WriteFrame writes one length-prefixed frame: a 4-byte big-endian length
// followed by the frame bytes. Callers serialise concurrent writers.
func WriteFrame(w io.Writer, frame []byte) error {
	if len(frame) == 0 || len(frame) > MaxFrameSize {
		return fmt.Errorf("transport: frame size %d out of range", len(frame))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one length-prefixed frame, refusing oversized lengths
// before allocating.
func ReadFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameSize {
		return nil, fmt.Errorf("transport: frame length %d out of range", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"github.com/treedoc/treedoc/internal/causal"
	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// Frame kinds. A frame is one length-delimited unit on a Link: a kind byte
// followed by the kind-specific body.
const (
	// kindOps carries a batch of causally-stamped operations.
	kindOps = 0x01
	// kindSyncReq is an anti-entropy digest: the sender's delivered clock.
	// The receiver answers with a kindOps frame of everything it retains
	// that the clock does not cover — or, when the sender is below the
	// receiver's compaction barrier or further behind than the snapshot
	// threshold, with a kindSnap frame.
	kindSyncReq = 0x02
	// kindSnapReq asks the receiver for a snapshot: the sender has learned
	// (from a digest) that it is too far behind for op replay to be cheap.
	kindSnapReq = 0x03
	// kindSnap is snapshot catch-up: a replica state snapshot plus the
	// version vector of exactly the operations it stands in for. The
	// receiver installs it (if it dominates local state) and advances its
	// causal clock; the log suffix above the version arrives as ordinary
	// kindOps frames.
	kindSnap = 0x04
	// kindFlatPropose opens a flatten commitment round (the Prepare of the
	// paper's Section 4.2.1 protocol): the coordinator names the subtree to
	// flatten and its delivered clock at proposal time. Every replica that
	// receives it votes. Commitment frames are addressed by site id and
	// relayed unmodified (a hub fans them out like any frame); unlike
	// operations they are not retained for anti-entropy — a lost frame is
	// healed by the protocol's timeout-and-resend paths, not retransmission.
	kindFlatPropose = 0x05
	// kindFlatVote answers a proposal: Yes (the region is unedited beyond
	// the coordinator's clock and now locked) or No. Participants re-send
	// Yes votes while a lock is in doubt; the coordinator answers re-sent
	// votes for decided transactions from its decision memory.
	kindFlatVote = 0x06
	// kindFlatDecision closes a round. Abort releases participant locks and
	// has no other effect ("causing no harm"). A commit decision frame only
	// announces the outcome: the flatten itself travels as a stamped
	// OpFlatten operation in the causal stream, so every replica applies it
	// after everything it causally follows and before everything that
	// causally follows it.
	kindFlatDecision = 0x07
	// kindSnapChunk carries one slice of a snapshot too large for a single
	// kindSnap frame (> MaxSnapFrameSize): the receiver reassembles slices
	// in offset order and installs the whole as if one kindSnap frame had
	// arrived.
	kindSnapChunk = 0x08
	// kindDocFrame is the doc-scoped envelope: a document ID followed by one
	// complete inner frame of any other kind. A sharded hub routes the
	// envelope to the document's relay group only; engines never see it —
	// the Session link wraps on Send and strips on Recv. Bare (unwrapped)
	// frames remain valid and are routed to DefaultDoc, so pre-envelope
	// Dial clients keep working.
	kindDocFrame = 0x09
	// kindHello is the attach handshake: a client names the documents it
	// wants to join. The hub answers with one kindHelloResp. A connection
	// that never sends kindHello is a legacy client, implicitly attached to
	// DefaultDoc.
	kindHello = 0x0a
	// kindHelloResp answers a kindHello per requested document: attached
	// (frames for that doc will now be relayed here) or a redirect naming
	// the hub process that owns the document's shard.
	kindHelloResp = 0x0b
	// kindDetach unsubscribes the connection from the named documents.
	kindDetach = 0x0c
	// kindRingAnnounce carries the shard ring membership: the epoch and the
	// full node list. Hubs exchange it over the peer mesh to propagate a
	// membership change (a receiver adopts any announce with a higher epoch
	// and hands off the documents that moved), and push it to doc-aware
	// clients so their sessions learn the current epoch. The degenerate
	// frame with epoch 0 and no nodes is the ring *query*: the receiver
	// answers with its current ring.
	kindRingAnnounce = 0x0d
	// kindForward is the hub-to-hub envelope: a non-owner hub that serves a
	// document locally (because its clients cannot reach the owner shard)
	// wraps the document's inbound frames in kindForward and sends them to
	// the owner over the peer mesh. The owner relays the inner frame into
	// its relay group exactly as if a directly attached client had sent it.
	// A frame received as kindForward is never re-forwarded, so two hubs
	// with disagreeing rings cannot loop a frame between them.
	kindForward = 0x0e
	// kindHandoffBegin opens an online document handoff: the old owner
	// tells the new owner (by the announced ring epoch) that the document's
	// state is about to stream. The receiver prepares a consumer (e.g.
	// starts an archivist replica) before acknowledging nothing — the
	// stream itself is self-describing.
	kindHandoffBegin = 0x0f
	// kindHandoffState carries one slice of a migrating document's state: a
	// complete inner frame (kindSnap, kindSnapChunk or kindOps — the same
	// machinery as snapshot catch-up) scoped to the document being handed
	// off. The receiving hub relays the inner frame into the document's
	// local relay group, where the new archivist (and any already-attached
	// client) consumes it through the ordinary catch-up paths.
	kindHandoffState = 0x10
	// kindHandoffDone closes a handoff: the state streamed completely and
	// the old owner is about to re-point its clients.
	kindHandoffDone = 0x11
	// kindSyncBatch carries one anti-entropy digest per document — a
	// count-prefixed list of (doc, site, clock) entries — so a Session or
	// mesh peer sends one frame per link per sync tick instead of one
	// enveloped kindSyncReq per attached document. A hub splits the batch
	// into per-document relay groups and answers through the existing
	// per-doc path; engines never see the batch form. A batch may carry a
	// trailing forwarded flag: it already crossed the hub-to-hub mesh and
	// must only be relayed locally, mirroring kindForward's loop freedom.
	kindSyncBatch = 0x12
	// kindReplay is a directed anti-entropy answer: the requester's site id
	// followed by one complete answer frame (kindOps, kindSnap or
	// kindSnapChunk). Through a relay hub a broadcast answer costs the whole
	// group one copy each — quadratic on a hot document, where hundreds of
	// concurrent answers each fan to hundreds of members — so an engine
	// whose link routes replays (see ReplayRouter) addresses each answer
	// instead. The hub delivers the frame to the one connection that last
	// sent a pull for that site (learned as pulls pass through the relay),
	// stripping the wrapper for legacy receivers so directed replay needs no
	// receiver support; an unknown or dead target falls back to the
	// broadcast the wrapper replaced. An engine receiving the wrapper
	// processes the inner frame regardless of the addressed site: replay is
	// idempotent, so a stale route can only heal the wrong replica, never
	// corrupt one.
	kindReplay = 0x13
)

// Wire limits. Frames above the per-kind size limit are refused on read
// and write so a corrupt or hostile length prefix cannot force an
// arbitrary allocation.
const (
	// MaxFrameSize bounds one frame's encoded size for every kind except
	// kindSnap.
	MaxFrameSize = 1 << 20
	// MaxSnapFrameSize bounds a kindSnap frame: snapshots carry whole
	// documents, so they get a higher ceiling than op gossip.
	MaxSnapFrameSize = 1 << 26
	// maxBatch bounds the operations in one kindOps frame.
	maxBatch = 1 << 16
	// maxClockEntries bounds the sites in one encoded vector clock.
	maxClockEntries = 1 << 12
	// MaxSnapshotSize bounds a chunked snapshot's total reassembled size:
	// the ceiling a hostile kindSnapChunk total can make a receiver
	// allocate towards.
	MaxSnapshotSize = 1 << 31
	// MaxDocIDLen bounds a document identifier on the wire.
	MaxDocIDLen = 128
	// maxHelloDocs bounds the documents in one hello/hello-resp/detach
	// frame.
	maxHelloDocs = 1 << 10
	// docFrameOverhead is the worst-case envelope header: kind byte, doc ID
	// length uvarint, doc ID bytes. An envelope (kindDocFrame, kindForward,
	// kindHandoffState) may wrap any inner kind, so its ceiling is the
	// largest inner ceiling plus this overhead.
	docFrameOverhead = 1 + 2 + MaxDocIDLen
	// maxRingNodes bounds the membership in one ring announce frame.
	maxRingNodes = 1 << 10
	// maxSyncBatch bounds the digests in one kindSyncBatch frame — the
	// same ceiling as the documents one connection may attach to.
	maxSyncBatch = maxHelloDocs
	// replayOverhead is the worst-case kindReplay header: kind byte plus the
	// addressed site id uvarint. A replay may wrap any answer kind up to
	// kindSnap, so its ceiling is the snapshot ceiling plus this overhead.
	replayOverhead = 1 + 10
)

// DefaultDoc is the document legacy (pre-envelope) clients are attached
// to: a hub routes every bare frame to it, so a deployment that never
// names documents behaves exactly as the single-document hub did.
const DefaultDoc = "default"

// frameSizeLimit returns the size ceiling for a frame of the given kind.
func frameSizeLimit(kind byte) int {
	switch kind {
	case kindSnap, kindSnapChunk:
		return MaxSnapFrameSize
	case kindReplay:
		return MaxSnapFrameSize + replayOverhead
	case kindDocFrame, kindForward, kindHandoffState:
		return MaxSnapFrameSize + replayOverhead + docFrameOverhead
	default:
		return MaxFrameSize
	}
}

// isEnvelopeKind reports whether kind is a doc-scoped envelope; envelopes
// never nest.
func isEnvelopeKind(kind byte) bool {
	return kind == kindDocFrame || kind == kindForward || kind == kindHandoffState
}

// OpsFrame is a decoded kindOps frame.
type OpsFrame struct {
	Msgs []causal.Message // every Payload is a core.Op
}

// SyncReqFrame is a decoded kindSyncReq frame.
type SyncReqFrame struct {
	From  ident.SiteID
	Clock vclock.VC
}

// SnapReqFrame is a decoded kindSnapReq frame: an explicit snapshot
// request carrying the requester's delivered clock.
type SnapReqFrame struct {
	From  ident.SiteID
	Clock vclock.VC
}

// SnapFrame is a decoded kindSnap frame: a replica snapshot and the
// version vector of the operations it contains.
type SnapFrame struct {
	From    ident.SiteID
	Version vclock.VC
	Data    []byte
}

// SnapChunkFrame is a decoded kindSnapChunk frame: one offset-addressed
// slice of a snapshot whose total size exceeds MaxSnapFrameSize. Version
// identifies the snapshot being assembled; Total is its full size.
type SnapChunkFrame struct {
	From    ident.SiteID
	Version vclock.VC
	Total   uint64
	Offset  uint64
	Data    []byte
}

// DocFrame is a decoded kindDocFrame envelope: one complete inner frame
// scoped to document Doc. Inner aliases the envelope's backing array.
type DocFrame struct {
	Doc   string
	Inner []byte
}

// HelloFrame is a decoded kindHello frame: the documents a client asks to
// attach to. Forward asks the hub to serve the documents locally even if
// another shard owns them, relaying their frames over the hub-to-hub mesh
// — the fallback for clients that cannot reach every shard.
type HelloFrame struct {
	Docs    []string
	Forward bool
}

// HelloEntry is one per-document answer inside a kindHelloResp frame: the
// document was attached here, or (Redirect non-empty) is owned by the hub
// process at that address. Epoch is the answering hub's ring epoch, so a
// client chasing redirects can tell a stale ring view from a fresh one
// (zero when the hub has no ring configured). Hubs also send unsolicited
// redirect entries to re-point attached clients when a document is handed
// to a new owner mid-session.
type HelloEntry struct {
	Doc      string
	Redirect string
	Epoch    uint64
}

// RingFrame is a decoded kindRingAnnounce frame: an epoch-versioned ring
// membership, or (Epoch 0, no Nodes) a query for the receiver's ring.
type RingFrame struct {
	Epoch uint64
	Nodes []string
}

// IsQuery reports whether the frame is the ring query form.
func (r *RingFrame) IsQuery() bool { return r.Epoch == 0 && len(r.Nodes) == 0 }

// ForwardFrame is a decoded kindForward frame: one complete inner frame a
// non-owner hub forwards to the owner of Doc. Inner aliases the envelope's
// backing array.
type ForwardFrame struct {
	Doc   string
	Inner []byte
}

// HandoffBeginFrame is a decoded kindHandoffBegin frame: the sender is
// about to stream Doc's state, relocated by the ring at Epoch.
type HandoffBeginFrame struct {
	Doc   string
	Epoch uint64
}

// HandoffStateFrame is a decoded kindHandoffState frame: one inner frame
// of a migrating document's state. Inner aliases the envelope's backing
// array.
type HandoffStateFrame struct {
	Doc   string
	Inner []byte
}

// HandoffDoneFrame is a decoded kindHandoffDone frame: Doc's state
// streamed completely under the ring at Epoch.
type HandoffDoneFrame struct {
	Doc   string
	Epoch uint64
}

// HelloRespFrame is a decoded kindHelloResp frame.
type HelloRespFrame struct {
	Entries []HelloEntry
}

// ReplayFrame is a decoded kindReplay frame: a directed anti-entropy
// answer addressed to site To. Inner aliases the frame's backing array.
type ReplayFrame struct {
	To    ident.SiteID
	Inner []byte
}

// SyncBatchEntry is one document's anti-entropy digest inside a
// kindSyncBatch frame: site From's delivered clock for document Doc.
type SyncBatchEntry struct {
	Doc   string
	From  ident.SiteID
	Clock vclock.VC
}

// SyncBatchFrame is a decoded kindSyncBatch frame: the digests a link
// accumulated across its attached documents this sync tick. Forwarded
// marks a batch that already crossed the hub-to-hub mesh; the receiver
// splits it into local relay groups only and never forwards it onward.
type SyncBatchFrame struct {
	Entries   []SyncBatchEntry
	Forwarded bool
}

// DetachFrame is a decoded kindDetach frame: the documents a client is
// leaving.
type DetachFrame struct {
	Docs []string
}

// FlatProposeFrame is a decoded kindFlatPropose frame: the coordinator
// From asks every receiver to vote on flattening the subtree at Path, as
// transaction (From, N), given the coordinator's delivered clock Obs.
type FlatProposeFrame struct {
	From ident.SiteID
	N    uint64
	Path ident.Path
	Obs  vclock.VC
}

// FlatVoteFrame is a decoded kindFlatVote frame: participant From's vote
// on transaction (Coord, N). Receivers other than Coord ignore it.
type FlatVoteFrame struct {
	From  ident.SiteID
	Coord ident.SiteID
	N     uint64
	Yes   bool
}

// FlatDecisionFrame is a decoded kindFlatDecision frame: coordinator
// From's decision for transaction (From, N) over the subtree at Path.
// For a commit, Seq is the coordinator's sequence number of the OpFlatten
// that executes it: a participant holding a Yes-vote lock releases it
// once its clock covers (From, Seq) — whether the operation arrived as an
// op frame or was absorbed into an installed snapshot. Zero for aborts.
type FlatDecisionFrame struct {
	From   ident.SiteID
	N      uint64
	Commit bool
	Seq    uint64
	Path   ident.Path
}

// appendVC appends a vector clock in the canonical vclock encoding
// (uvarint entry count, then ascending (site, count) pairs).
func appendVC(dst []byte, vc vclock.VC) []byte {
	return vc.AppendBinary(dst)
}

// decodeVC decodes a vector clock from the front of buf, returning the
// bytes consumed; entry counts are bounded by maxClockEntries.
func decodeVC(buf []byte) (vclock.VC, int, error) {
	vc, n, err := vclock.DecodeBinary(buf, maxClockEntries)
	if err != nil {
		return nil, 0, fmt.Errorf("transport: %w", err)
	}
	return vc, n, nil
}

// appendMsg appends one stamped message — uvarint sender, vector clock,
// op bytes — the unit shared by kindOps frames and oplog record bodies.
func appendMsg(dst []byte, m causal.Message) ([]byte, error) {
	op, ok := m.Payload.(core.Op)
	if !ok {
		return nil, fmt.Errorf("transport: message payload %T is not an op", m.Payload)
	}
	dst = binary.AppendUvarint(dst, uint64(m.From))
	dst = appendVC(dst, m.TS)
	return op.AppendBinary(dst), nil
}

// decodeMsg decodes one stamped message from the front of buf, returning
// the bytes consumed. The message is validated: sender in range, clock
// well-formed, the op's own stamp present.
func decodeMsg(buf []byte) (causal.Message, int, error) {
	from, off := binary.Uvarint(buf)
	if off <= 0 {
		return causal.Message{}, 0, fmt.Errorf("transport: truncated op sender")
	}
	if from == 0 || ident.SiteID(from) > ident.MaxSiteID {
		return causal.Message{}, 0, fmt.Errorf("transport: op sender %d out of range", from)
	}
	vc, k, err := decodeVC(buf[off:])
	if err != nil {
		return causal.Message{}, 0, err
	}
	off += k
	if vc.Get(ident.SiteID(from)) == 0 {
		return causal.Message{}, 0, fmt.Errorf("transport: op from s%d without own stamp", from)
	}
	op, k, err := core.DecodeOp(buf[off:])
	if err != nil {
		return causal.Message{}, 0, err
	}
	off += k
	return causal.Message{From: ident.SiteID(from), TS: vc, Payload: op}, off, nil
}

// EncodeMsgBody encodes one stamped message as a durable log record body
// (the same layout as a message inside a kindOps frame).
func EncodeMsgBody(m causal.Message) ([]byte, error) {
	return appendMsg(nil, m)
}

// DecodeMsgBody decodes a durable log record body, requiring full
// consumption.
func DecodeMsgBody(body []byte) (causal.Message, error) {
	m, n, err := decodeMsg(body)
	if err != nil {
		return causal.Message{}, err
	}
	if n != len(body) {
		return causal.Message{}, fmt.Errorf("transport: %d trailing bytes after log record", len(body)-n)
	}
	return m, nil
}

// frameScratch pools the growth buffer EncodeOps serialises into: frame
// sizes are unknown up front, so building in reused scratch and copying
// once keeps the append-growth garbage off the batch fanout and
// anti-entropy retransmission paths. Pooled buffers never escape — callers
// receive an exact-size copy.
var frameScratch = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// EncodeOps encodes a batch of stamped operations as one kindOps frame.
// Every message payload must be a core.Op. The returned frame is exactly
// sized and owned by the caller.
//
//treedoc:noalloc
func EncodeOps(msgs []causal.Message) ([]byte, error) {
	if len(msgs) > maxBatch {
		return nil, fmt.Errorf("transport: batch of %d ops exceeds limit", len(msgs))
	}
	bp := frameScratch.Get().(*[]byte)
	buf := append((*bp)[:0], kindOps)
	buf = binary.AppendUvarint(buf, uint64(len(msgs)))
	var err error
	for _, m := range msgs {
		if buf, err = appendMsg(buf, m); err != nil {
			*bp = buf[:0]
			frameScratch.Put(bp)
			return nil, err
		}
	}
	n := len(buf)
	var out []byte
	if n <= MaxFrameSize {
		out = make([]byte, n) //treedoc:escape the exact-size frame copy is the function's one allocation
		copy(out, buf)
	}
	*bp = buf[:0]
	frameScratch.Put(bp)
	if out == nil {
		return nil, fmt.Errorf("transport: ops frame of %d bytes exceeds limit", n)
	}
	return out, nil
}

// EncodeSyncReq encodes an anti-entropy digest frame.
func EncodeSyncReq(from ident.SiteID, clock vclock.VC) ([]byte, error) {
	buf := []byte{kindSyncReq}
	buf = binary.AppendUvarint(buf, uint64(from))
	buf = appendVC(buf, clock)
	if len(buf) > MaxFrameSize {
		return nil, fmt.Errorf("transport: sync frame of %d bytes exceeds limit", len(buf))
	}
	return buf, nil
}

// EncodeSnapReq encodes an explicit snapshot request frame.
func EncodeSnapReq(from ident.SiteID, clock vclock.VC) ([]byte, error) {
	buf := []byte{kindSnapReq}
	buf = binary.AppendUvarint(buf, uint64(from))
	buf = appendVC(buf, clock)
	if len(buf) > MaxFrameSize {
		return nil, fmt.Errorf("transport: snap request frame of %d bytes exceeds limit", len(buf))
	}
	return buf, nil
}

// EncodeReplay wraps one complete answer frame with the requester's site
// id, addressing it through replay-routing relays (see kindReplay).
func EncodeReplay(to ident.SiteID, inner []byte) ([]byte, error) {
	if len(inner) == 0 {
		return nil, fmt.Errorf("transport: empty replay inner frame")
	}
	if isEnvelopeKind(inner[0]) || inner[0] == kindReplay {
		return nil, fmt.Errorf("transport: replay cannot wrap frame kind %#x", inner[0])
	}
	if len(inner) > frameSizeLimit(inner[0]) {
		return nil, fmt.Errorf("transport: replay inner frame of %d bytes exceeds limit", len(inner))
	}
	buf := make([]byte, 0, replayOverhead+len(inner))
	buf = append(buf, kindReplay)
	buf = binary.AppendUvarint(buf, uint64(to))
	return append(buf, inner...), nil
}

// SplitReplay splits a directed answer into the addressed site and the
// inner frame (aliasing the frame's backing array), validating the inner
// kind and size without decoding its body — the hub routes replays
// without paying for a decode.
func SplitReplay(frame []byte) (ident.SiteID, []byte, error) {
	if len(frame) == 0 || frame[0] != kindReplay {
		return 0, nil, fmt.Errorf("transport: not a replay frame")
	}
	if len(frame) > frameSizeLimit(kindReplay) {
		return 0, nil, fmt.Errorf("transport: replay frame of %d bytes exceeds limit", len(frame))
	}
	to, off := binary.Uvarint(frame[1:])
	if off <= 0 {
		return 0, nil, fmt.Errorf("transport: truncated replay site id")
	}
	if to == 0 || ident.SiteID(to) > ident.MaxSiteID {
		return 0, nil, fmt.Errorf("transport: replay site id %d out of range", to)
	}
	inner := frame[1+off:]
	if len(inner) == 0 {
		return 0, nil, fmt.Errorf("transport: empty replay inner frame")
	}
	if isEnvelopeKind(inner[0]) || inner[0] == kindReplay {
		return 0, nil, fmt.Errorf("transport: replay cannot wrap frame kind %#x", inner[0])
	}
	if len(inner) > frameSizeLimit(inner[0]) {
		return 0, nil, fmt.Errorf("transport: replay inner frame of %d bytes exceeds limit", len(inner))
	}
	return ident.SiteID(to), inner, nil
}

// peekDigestFrom reads the requesting site id off the front of a
// kindSyncReq or kindSnapReq frame without decoding its clock: the hub
// learns site→connection reverse routes from passing pulls, and must do
// so at relay cost, not decode cost.
func peekDigestFrom(frame []byte) (ident.SiteID, bool) {
	if len(frame) < 2 {
		return 0, false
	}
	v, n := binary.Uvarint(frame[1:])
	if n <= 0 {
		return 0, false
	}
	return ident.SiteID(v), true
}

// EncodeSnapReply encodes a snapshot catch-up frame: the sender's replica
// snapshot and the version vector of exactly the operations it contains.
func EncodeSnapReply(from ident.SiteID, version vclock.VC, data []byte) ([]byte, error) {
	buf := []byte{kindSnap}
	buf = binary.AppendUvarint(buf, uint64(from))
	buf = appendVC(buf, version)
	buf = append(buf, data...)
	if len(buf) > MaxSnapFrameSize {
		return nil, fmt.Errorf("transport: snap frame of %d bytes exceeds limit", len(buf))
	}
	return buf, nil
}

// EncodeSnapChunk encodes one slice of an oversized snapshot. The caller
// slices data so every frame stays within MaxSnapFrameSize.
func EncodeSnapChunk(from ident.SiteID, version vclock.VC, total, offset uint64, data []byte) ([]byte, error) {
	buf := []byte{kindSnapChunk}
	buf = binary.AppendUvarint(buf, uint64(from))
	buf = appendVC(buf, version)
	buf = binary.AppendUvarint(buf, total)
	buf = binary.AppendUvarint(buf, offset)
	buf = append(buf, data...)
	if len(buf) > MaxSnapFrameSize {
		return nil, fmt.Errorf("transport: snap chunk frame of %d bytes exceeds limit", len(buf))
	}
	return buf, nil
}

// ValidateDocID checks a document identifier: 1..MaxDocIDLen bytes of
// [A-Za-z0-9._-], not starting with a dot. The character set is strict
// because doc IDs double as oplog subdirectory names on archivist hubs.
func ValidateDocID(doc string) error {
	if doc == "" {
		return fmt.Errorf("transport: empty doc id")
	}
	if len(doc) > MaxDocIDLen {
		return fmt.Errorf("transport: doc id of %d bytes exceeds limit", len(doc))
	}
	if doc[0] == '.' {
		return fmt.Errorf("transport: doc id %q starts with a dot", doc)
	}
	for i := 0; i < len(doc); i++ {
		c := doc[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("transport: doc id %q has invalid byte %#x", doc, c)
		}
	}
	return nil
}

// appendDoc appends one length-prefixed document ID.
func appendDoc(dst []byte, doc string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(doc)))
	return append(dst, doc...)
}

// decodeDoc decodes and validates one length-prefixed document ID from the
// front of buf, returning the bytes consumed.
func decodeDoc(buf []byte) (string, int, error) {
	n, off := binary.Uvarint(buf)
	if off <= 0 {
		return "", 0, fmt.Errorf("transport: truncated doc id length")
	}
	if n > MaxDocIDLen {
		return "", 0, fmt.Errorf("transport: doc id of %d bytes exceeds limit", n)
	}
	if n > uint64(len(buf)-off) {
		return "", 0, fmt.Errorf("transport: truncated doc id")
	}
	doc := string(buf[off : off+int(n)])
	if err := ValidateDocID(doc); err != nil {
		return "", 0, err
	}
	return doc, off + int(n), nil
}

// encodeEnvelope wraps one complete inner frame in a doc-scoped envelope
// of the given kind (kindDocFrame, kindForward or kindHandoffState).
func encodeEnvelope(kind byte, doc string, inner []byte) ([]byte, error) {
	if err := ValidateDocID(doc); err != nil {
		return nil, err
	}
	if len(inner) == 0 {
		return nil, fmt.Errorf("transport: empty inner frame")
	}
	if isEnvelopeKind(inner[0]) {
		return nil, fmt.Errorf("transport: nested doc envelope")
	}
	if len(inner) > frameSizeLimit(inner[0]) {
		return nil, fmt.Errorf("transport: inner frame of %d bytes exceeds limit", len(inner))
	}
	buf := make([]byte, 0, 1+2+len(doc)+len(inner))
	buf = append(buf, kind)
	buf = appendDoc(buf, doc)
	return append(buf, inner...), nil
}

// splitEnvelope splits a doc-scoped envelope of the given kind into the
// document ID and the inner frame (aliasing the envelope's backing array),
// validating the inner frame's kind and size but not decoding its body —
// the relay path routes envelopes without paying for a full decode.
func splitEnvelope(kind byte, frame []byte) (string, []byte, error) {
	if len(frame) == 0 || frame[0] != kind {
		return "", nil, fmt.Errorf("transport: not a doc envelope of kind %#x", kind)
	}
	if len(frame) > frameSizeLimit(kind) {
		return "", nil, fmt.Errorf("transport: doc envelope of %d bytes exceeds limit", len(frame))
	}
	doc, off, err := decodeDoc(frame[1:])
	if err != nil {
		return "", nil, err
	}
	inner := frame[1+off:]
	if len(inner) == 0 {
		return "", nil, fmt.Errorf("transport: empty inner frame")
	}
	if isEnvelopeKind(inner[0]) {
		return "", nil, fmt.Errorf("transport: nested doc envelope")
	}
	if len(inner) > frameSizeLimit(inner[0]) {
		return "", nil, fmt.Errorf("transport: inner frame of %d bytes exceeds limit", len(inner))
	}
	return doc, inner, nil
}

// EncodeDocFrame wraps one complete inner frame in the doc-scoped
// envelope.
func EncodeDocFrame(doc string, inner []byte) ([]byte, error) {
	return encodeEnvelope(kindDocFrame, doc, inner)
}

// SplitDocFrame splits a doc-scoped envelope into the document ID and the
// inner frame (aliasing the envelope's backing array).
func SplitDocFrame(frame []byte) (string, []byte, error) {
	return splitEnvelope(kindDocFrame, frame)
}

// EncodeForward wraps one complete inner frame in the hub-to-hub
// forwarding envelope.
func EncodeForward(doc string, inner []byte) ([]byte, error) {
	return encodeEnvelope(kindForward, doc, inner)
}

// EncodeHandoffState wraps one inner frame of a migrating document's
// state stream.
func EncodeHandoffState(doc string, inner []byte) ([]byte, error) {
	return encodeEnvelope(kindHandoffState, doc, inner)
}

// EncodeRingAnnounce encodes a ring membership announce — or, with epoch 0
// and no nodes, the ring query.
func EncodeRingAnnounce(epoch uint64, nodes []string) ([]byte, error) {
	if len(nodes) > maxRingNodes {
		return nil, fmt.Errorf("transport: ring of %d nodes exceeds limit", len(nodes))
	}
	buf := []byte{kindRingAnnounce}
	buf = binary.AppendUvarint(buf, epoch)
	buf = binary.AppendUvarint(buf, uint64(len(nodes)))
	for _, n := range nodes {
		if n == "" || len(n) > maxRedirectAddr {
			return nil, fmt.Errorf("transport: ring node address of %d bytes out of range", len(n))
		}
		buf = binary.AppendUvarint(buf, uint64(len(n)))
		buf = append(buf, n...)
	}
	if len(buf) > MaxFrameSize {
		return nil, fmt.Errorf("transport: ring frame of %d bytes exceeds limit", len(buf))
	}
	return buf, nil
}

// encodeHandoffMark encodes a kindHandoffBegin or kindHandoffDone frame.
func encodeHandoffMark(kind byte, doc string, epoch uint64) ([]byte, error) {
	if err := ValidateDocID(doc); err != nil {
		return nil, err
	}
	buf := []byte{kind}
	buf = appendDoc(buf, doc)
	buf = binary.AppendUvarint(buf, epoch)
	return buf, nil
}

// EncodeHandoffBegin encodes the frame opening a document handoff.
func EncodeHandoffBegin(doc string, epoch uint64) ([]byte, error) {
	return encodeHandoffMark(kindHandoffBegin, doc, epoch)
}

// EncodeHandoffDone encodes the frame closing a document handoff.
func EncodeHandoffDone(doc string, epoch uint64) ([]byte, error) {
	return encodeHandoffMark(kindHandoffDone, doc, epoch)
}

// helloFlagForward asks the hub to serve foreign documents locally via
// the hub-to-hub mesh instead of redirecting.
const helloFlagForward = 0x01

// encodeDocList encodes a kindHello or kindDetach frame body.
func encodeDocList(kind byte, docs []string) ([]byte, error) {
	if len(docs) == 0 || len(docs) > maxHelloDocs {
		return nil, fmt.Errorf("transport: %d docs out of range", len(docs))
	}
	buf := []byte{kind}
	buf = binary.AppendUvarint(buf, uint64(len(docs)))
	for _, d := range docs {
		if err := ValidateDocID(d); err != nil {
			return nil, err
		}
		buf = appendDoc(buf, d)
	}
	if len(buf) > MaxFrameSize {
		return nil, fmt.Errorf("transport: hello frame of %d bytes exceeds limit", len(buf))
	}
	return buf, nil
}

// EncodeHello encodes the attach handshake frame.
func EncodeHello(docs []string) ([]byte, error) {
	return encodeDocList(kindHello, docs)
}

// EncodeHelloForward encodes the attach handshake with the forward flag:
// the hub should attach the documents locally even when another shard owns
// them, relaying their frames over the hub-to-hub mesh.
func EncodeHelloForward(docs []string) ([]byte, error) {
	buf, err := encodeDocList(kindHello, docs)
	if err != nil {
		return nil, err
	}
	return append(buf, helloFlagForward), nil
}

// EncodeDetach encodes the unsubscribe frame.
func EncodeDetach(docs []string) ([]byte, error) {
	return encodeDocList(kindDetach, docs)
}

// syncBatchFlagForwarded marks a batched digest frame that already
// crossed the hub-to-hub mesh: the receiver answers it locally only.
const syncBatchFlagForwarded = 0x01

// EncodeSyncBatch encodes one batched multi-document digest frame. As
// with the hello flags byte, a zero flags value is encoded by omission so
// the encoding stays canonical.
func EncodeSyncBatch(entries []SyncBatchEntry, forwarded bool) ([]byte, error) {
	if len(entries) == 0 || len(entries) > maxSyncBatch {
		return nil, fmt.Errorf("transport: %d batched digests out of range", len(entries))
	}
	buf := []byte{kindSyncBatch}
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		if err := ValidateDocID(e.Doc); err != nil {
			return nil, err
		}
		if e.From == 0 || e.From > ident.MaxSiteID {
			return nil, fmt.Errorf("transport: batched digest sender %d out of range", e.From)
		}
		buf = appendDoc(buf, e.Doc)
		buf = binary.AppendUvarint(buf, uint64(e.From))
		buf = appendVC(buf, e.Clock)
	}
	if forwarded {
		buf = append(buf, syncBatchFlagForwarded)
	}
	if len(buf) > MaxFrameSize {
		return nil, fmt.Errorf("transport: sync batch frame of %d bytes exceeds limit", len(buf))
	}
	return buf, nil
}

// maxRedirectAddr bounds a redirect address in a hello response.
const maxRedirectAddr = 256

// EncodeHelloResp encodes the hub's answer to an attach handshake. Each
// entry carries the answering hub's ring epoch.
func EncodeHelloResp(entries []HelloEntry) ([]byte, error) {
	if len(entries) == 0 || len(entries) > maxHelloDocs {
		return nil, fmt.Errorf("transport: %d hello entries out of range", len(entries))
	}
	buf := []byte{kindHelloResp}
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		if err := ValidateDocID(e.Doc); err != nil {
			return nil, err
		}
		if len(e.Redirect) > maxRedirectAddr {
			return nil, fmt.Errorf("transport: redirect address of %d bytes exceeds limit", len(e.Redirect))
		}
		buf = appendDoc(buf, e.Doc)
		buf = binary.AppendUvarint(buf, uint64(len(e.Redirect)))
		buf = append(buf, e.Redirect...)
		buf = binary.AppendUvarint(buf, e.Epoch)
	}
	if len(buf) > MaxFrameSize {
		return nil, fmt.Errorf("transport: hello resp frame of %d bytes exceeds limit", len(buf))
	}
	return buf, nil
}

// decodeDocList decodes a kindHello or kindDetach body. A hello body may
// carry one trailing flags byte (absent in legacy frames); a detach body
// may not.
func decodeDocList(body []byte, allowFlags bool) ([]string, byte, error) {
	n, off := binary.Uvarint(body)
	if off <= 0 {
		return nil, 0, fmt.Errorf("transport: truncated doc count")
	}
	if n == 0 || n > maxHelloDocs {
		return nil, 0, fmt.Errorf("transport: doc count %d out of range", n)
	}
	if n > uint64(len(body)-off) {
		return nil, 0, fmt.Errorf("transport: doc count %d exceeds frame", n)
	}
	docs := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		doc, k, err := decodeDoc(body[off:])
		if err != nil {
			return nil, 0, err
		}
		off += k
		docs = append(docs, doc)
	}
	var flags byte
	if allowFlags && off == len(body)-1 {
		flags = body[off]
		if flags == 0 || flags > helloFlagForward {
			// Zero flags must be encoded by omission, and unknown bits are
			// refused — both keep the encoding canonical for the fuzzer.
			return nil, 0, fmt.Errorf("transport: hello flags byte %#x out of range", flags)
		}
		off++
	}
	if off != len(body) {
		return nil, 0, fmt.Errorf("transport: %d trailing bytes after doc list", len(body)-off)
	}
	return docs, flags, nil
}

// EncodeFlatPropose encodes a flatten commitment proposal frame.
func EncodeFlatPropose(from ident.SiteID, n uint64, path ident.Path, obs vclock.VC) ([]byte, error) {
	buf := []byte{kindFlatPropose}
	buf = binary.AppendUvarint(buf, uint64(from))
	buf = binary.AppendUvarint(buf, n)
	buf = path.AppendBinary(buf)
	buf = appendVC(buf, obs)
	if len(buf) > MaxFrameSize {
		return nil, fmt.Errorf("transport: flatten propose frame of %d bytes exceeds limit", len(buf))
	}
	return buf, nil
}

// EncodeFlatVote encodes a flatten commitment vote frame.
func EncodeFlatVote(from, coord ident.SiteID, n uint64, yes bool) ([]byte, error) {
	buf := []byte{kindFlatVote}
	buf = binary.AppendUvarint(buf, uint64(from))
	buf = binary.AppendUvarint(buf, uint64(coord))
	buf = binary.AppendUvarint(buf, n)
	var y byte
	if yes {
		y = 1
	}
	buf = append(buf, y)
	return buf, nil
}

// EncodeFlatDecision encodes a flatten commitment decision frame. For
// commits, seq is the stamped OpFlatten's sequence number; zero for
// aborts.
func EncodeFlatDecision(from ident.SiteID, n uint64, commit bool, seq uint64, path ident.Path) ([]byte, error) {
	buf := []byte{kindFlatDecision}
	buf = binary.AppendUvarint(buf, uint64(from))
	buf = binary.AppendUvarint(buf, n)
	var c byte
	if commit {
		c = 1
	}
	buf = append(buf, c)
	buf = binary.AppendUvarint(buf, seq)
	buf = path.AppendBinary(buf)
	if len(buf) > MaxFrameSize {
		return nil, fmt.Errorf("transport: flatten decision frame of %d bytes exceeds limit", len(buf))
	}
	return buf, nil
}

// decodeSite decodes one uvarint site id from the front of buf, validating
// its range.
func decodeSite(buf []byte, what string) (ident.SiteID, int, error) {
	s, off := binary.Uvarint(buf)
	if off <= 0 {
		return 0, 0, fmt.Errorf("transport: truncated %s", what)
	}
	if s == 0 || ident.SiteID(s) > ident.MaxSiteID {
		return 0, 0, fmt.Errorf("transport: %s %d out of range", what, s)
	}
	return ident.SiteID(s), off, nil
}

// decodeStructuralPath decodes and validates a flatten subtree path.
func decodeStructuralPath(buf []byte) (ident.Path, int, error) {
	path, n, err := ident.DecodePath(buf)
	if err != nil {
		return nil, 0, fmt.Errorf("transport: flatten path: %w", err)
	}
	if err := path.ValidateStructural(); err != nil {
		return nil, 0, fmt.Errorf("transport: flatten path: %w", err)
	}
	return path, n, nil
}

// DecodeFrame parses one frame into its typed form (*OpsFrame,
// *SyncReqFrame, *SnapReqFrame, *SnapFrame, *SnapChunkFrame, the flatten
// commitment frames, the doc envelope/handshake frames, or the ring
// membership and handoff frames). Every decoded message is validated:
// sites in range, clocks well-formed, the op's own stamp present.
func DecodeFrame(frame []byte) (any, error) {
	if len(frame) == 0 {
		return nil, fmt.Errorf("transport: empty frame")
	}
	if len(frame) > frameSizeLimit(frame[0]) {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	body := frame[1:]
	switch frame[0] {
	case kindOps:
		n, off := binary.Uvarint(body)
		if off <= 0 {
			return nil, fmt.Errorf("transport: truncated ops count")
		}
		if n > maxBatch {
			return nil, fmt.Errorf("transport: ops frame with %d ops exceeds limit", n)
		}
		// Each op costs several bytes on the wire, so a count beyond the
		// remaining body is corrupt; checking before make() keeps a tiny
		// hostile frame from forcing a large allocation.
		if n > uint64(len(body)-off) {
			return nil, fmt.Errorf("transport: ops count %d exceeds frame", n)
		}
		f := &OpsFrame{Msgs: make([]causal.Message, 0, n)}
		for i := uint64(0); i < n; i++ {
			m, k, err := decodeMsg(body[off:])
			if err != nil {
				return nil, err
			}
			off += k
			f.Msgs = append(f.Msgs, m)
		}
		if off != len(body) {
			return nil, fmt.Errorf("transport: %d trailing bytes after ops frame", len(body)-off)
		}
		return f, nil
	case kindSyncReq, kindSnapReq:
		from, off := binary.Uvarint(body)
		if off <= 0 {
			return nil, fmt.Errorf("transport: truncated sync sender")
		}
		if from == 0 || ident.SiteID(from) > ident.MaxSiteID {
			return nil, fmt.Errorf("transport: sync sender %d out of range", from)
		}
		vc, k, err := decodeVC(body[off:])
		if err != nil {
			return nil, err
		}
		off += k
		if off != len(body) {
			return nil, fmt.Errorf("transport: %d trailing bytes after sync frame", len(body)-off)
		}
		if frame[0] == kindSnapReq {
			return &SnapReqFrame{From: ident.SiteID(from), Clock: vc}, nil
		}
		return &SyncReqFrame{From: ident.SiteID(from), Clock: vc}, nil
	case kindSnap:
		from, off := binary.Uvarint(body)
		if off <= 0 {
			return nil, fmt.Errorf("transport: truncated snap sender")
		}
		if from == 0 || ident.SiteID(from) > ident.MaxSiteID {
			return nil, fmt.Errorf("transport: snap sender %d out of range", from)
		}
		vc, k, err := decodeVC(body[off:])
		if err != nil {
			return nil, err
		}
		off += k
		if len(vc) == 0 {
			return nil, fmt.Errorf("transport: snap frame with empty version")
		}
		return &SnapFrame{From: ident.SiteID(from), Version: vc, Data: body[off:]}, nil
	case kindSnapChunk:
		from, off, err := decodeSite(body, "snap chunk sender")
		if err != nil {
			return nil, err
		}
		vc, k, err := decodeVC(body[off:])
		if err != nil {
			return nil, err
		}
		off += k
		if len(vc) == 0 {
			return nil, fmt.Errorf("transport: snap chunk frame with empty version")
		}
		total, k := binary.Uvarint(body[off:])
		if k <= 0 {
			return nil, fmt.Errorf("transport: truncated snap chunk total")
		}
		off += k
		offset, k := binary.Uvarint(body[off:])
		if k <= 0 {
			return nil, fmt.Errorf("transport: truncated snap chunk offset")
		}
		off += k
		data := body[off:]
		if total == 0 || total > MaxSnapshotSize {
			return nil, fmt.Errorf("transport: snap chunk total %d out of range", total)
		}
		if offset > total || uint64(len(data)) > total-offset {
			return nil, fmt.Errorf("transport: snap chunk [%d,+%d) outside total %d", offset, len(data), total)
		}
		return &SnapChunkFrame{From: from, Version: vc, Total: total, Offset: offset, Data: data}, nil
	case kindFlatPropose:
		from, off, err := decodeSite(body, "flatten proposer")
		if err != nil {
			return nil, err
		}
		n, k := binary.Uvarint(body[off:])
		if k <= 0 {
			return nil, fmt.Errorf("transport: truncated flatten tx number")
		}
		off += k
		path, k, err := decodeStructuralPath(body[off:])
		if err != nil {
			return nil, err
		}
		off += k
		obs, k, err := decodeVC(body[off:])
		if err != nil {
			return nil, err
		}
		off += k
		if off != len(body) {
			return nil, fmt.Errorf("transport: %d trailing bytes after flatten propose frame", len(body)-off)
		}
		return &FlatProposeFrame{From: from, N: n, Path: path, Obs: obs}, nil
	case kindFlatVote:
		from, off, err := decodeSite(body, "flatten voter")
		if err != nil {
			return nil, err
		}
		coord, k, err := decodeSite(body[off:], "flatten coordinator")
		if err != nil {
			return nil, err
		}
		off += k
		n, k := binary.Uvarint(body[off:])
		if k <= 0 {
			return nil, fmt.Errorf("transport: truncated flatten tx number")
		}
		off += k
		if off+1 != len(body) {
			return nil, fmt.Errorf("transport: flatten vote frame length %d", len(body))
		}
		if body[off] > 1 {
			return nil, fmt.Errorf("transport: flatten vote byte %d", body[off])
		}
		return &FlatVoteFrame{From: from, Coord: coord, N: n, Yes: body[off] == 1}, nil
	case kindFlatDecision:
		from, off, err := decodeSite(body, "flatten coordinator")
		if err != nil {
			return nil, err
		}
		n, k := binary.Uvarint(body[off:])
		if k <= 0 {
			return nil, fmt.Errorf("transport: truncated flatten tx number")
		}
		off += k
		if off >= len(body) {
			return nil, fmt.Errorf("transport: truncated flatten decision")
		}
		if body[off] > 1 {
			return nil, fmt.Errorf("transport: flatten decision byte %d", body[off])
		}
		commit := body[off] == 1
		off++
		seq, k := binary.Uvarint(body[off:])
		if k <= 0 {
			return nil, fmt.Errorf("transport: truncated flatten decision seq")
		}
		off += k
		path, k, err := decodeStructuralPath(body[off:])
		if err != nil {
			return nil, err
		}
		off += k
		if off != len(body) {
			return nil, fmt.Errorf("transport: %d trailing bytes after flatten decision frame", len(body)-off)
		}
		return &FlatDecisionFrame{From: from, N: n, Commit: commit, Seq: seq, Path: path}, nil
	case kindDocFrame:
		doc, inner, err := SplitDocFrame(frame)
		if err != nil {
			return nil, err
		}
		return &DocFrame{Doc: doc, Inner: inner}, nil
	case kindForward:
		doc, inner, err := splitEnvelope(kindForward, frame)
		if err != nil {
			return nil, err
		}
		return &ForwardFrame{Doc: doc, Inner: inner}, nil
	case kindHandoffState:
		doc, inner, err := splitEnvelope(kindHandoffState, frame)
		if err != nil {
			return nil, err
		}
		return &HandoffStateFrame{Doc: doc, Inner: inner}, nil
	case kindRingAnnounce:
		epoch, off := binary.Uvarint(body)
		if off <= 0 {
			return nil, fmt.Errorf("transport: truncated ring epoch")
		}
		n, k := binary.Uvarint(body[off:])
		if k <= 0 {
			return nil, fmt.Errorf("transport: truncated ring node count")
		}
		off += k
		if n > maxRingNodes {
			return nil, fmt.Errorf("transport: ring node count %d exceeds limit", n)
		}
		if n > uint64(len(body)-off) {
			return nil, fmt.Errorf("transport: ring node count %d exceeds frame", n)
		}
		var nodes []string
		for i := uint64(0); i < n; i++ {
			alen, k := binary.Uvarint(body[off:])
			if k <= 0 {
				return nil, fmt.Errorf("transport: truncated ring node length")
			}
			off += k
			if alen == 0 || alen > maxRedirectAddr {
				return nil, fmt.Errorf("transport: ring node address of %d bytes out of range", alen)
			}
			if alen > uint64(len(body)-off) {
				return nil, fmt.Errorf("transport: truncated ring node address")
			}
			nodes = append(nodes, string(body[off:off+int(alen)]))
			off += int(alen)
		}
		if off != len(body) {
			return nil, fmt.Errorf("transport: %d trailing bytes after ring frame", len(body)-off)
		}
		return &RingFrame{Epoch: epoch, Nodes: nodes}, nil
	case kindHandoffBegin, kindHandoffDone:
		doc, off, err := decodeDoc(body)
		if err != nil {
			return nil, err
		}
		epoch, k := binary.Uvarint(body[off:])
		if k <= 0 {
			return nil, fmt.Errorf("transport: truncated handoff epoch")
		}
		off += k
		if off != len(body) {
			return nil, fmt.Errorf("transport: %d trailing bytes after handoff frame", len(body)-off)
		}
		if frame[0] == kindHandoffBegin {
			return &HandoffBeginFrame{Doc: doc, Epoch: epoch}, nil
		}
		return &HandoffDoneFrame{Doc: doc, Epoch: epoch}, nil
	case kindSyncBatch:
		n, off := binary.Uvarint(body)
		if off <= 0 {
			return nil, fmt.Errorf("transport: truncated sync batch count")
		}
		if n == 0 || n > maxSyncBatch {
			return nil, fmt.Errorf("transport: sync batch count %d out of range", n)
		}
		if n > uint64(len(body)-off) {
			return nil, fmt.Errorf("transport: sync batch count %d exceeds frame", n)
		}
		entries := make([]SyncBatchEntry, 0, n)
		for i := uint64(0); i < n; i++ {
			doc, k, err := decodeDoc(body[off:])
			if err != nil {
				return nil, err
			}
			off += k
			from, k, err := decodeSite(body[off:], "batched digest sender")
			if err != nil {
				return nil, err
			}
			off += k
			vc, k, err := decodeVC(body[off:])
			if err != nil {
				return nil, err
			}
			off += k
			entries = append(entries, SyncBatchEntry{Doc: doc, From: from, Clock: vc})
		}
		forwarded := false
		if off == len(body)-1 {
			if body[off] != syncBatchFlagForwarded {
				// Zero flags must be encoded by omission, and unknown bits
				// are refused — both keep the encoding canonical for the
				// fuzzer.
				return nil, fmt.Errorf("transport: sync batch flags byte %#x out of range", body[off])
			}
			forwarded = true
			off++
		}
		if off != len(body) {
			return nil, fmt.Errorf("transport: %d trailing bytes after sync batch frame", len(body)-off)
		}
		return &SyncBatchFrame{Entries: entries, Forwarded: forwarded}, nil
	case kindReplay:
		to, inner, err := SplitReplay(frame)
		if err != nil {
			return nil, err
		}
		return &ReplayFrame{To: to, Inner: inner}, nil
	case kindHello:
		docs, flags, err := decodeDocList(body, true)
		if err != nil {
			return nil, err
		}
		return &HelloFrame{Docs: docs, Forward: flags&helloFlagForward != 0}, nil
	case kindDetach:
		docs, _, err := decodeDocList(body, false)
		if err != nil {
			return nil, err
		}
		return &DetachFrame{Docs: docs}, nil
	case kindHelloResp:
		n, off := binary.Uvarint(body)
		if off <= 0 {
			return nil, fmt.Errorf("transport: truncated hello entry count")
		}
		if n == 0 || n > maxHelloDocs {
			return nil, fmt.Errorf("transport: hello entry count %d out of range", n)
		}
		if n > uint64(len(body)-off) {
			return nil, fmt.Errorf("transport: hello entry count %d exceeds frame", n)
		}
		entries := make([]HelloEntry, 0, n)
		for i := uint64(0); i < n; i++ {
			doc, k, err := decodeDoc(body[off:])
			if err != nil {
				return nil, err
			}
			off += k
			alen, k := binary.Uvarint(body[off:])
			if k <= 0 {
				return nil, fmt.Errorf("transport: truncated redirect length")
			}
			off += k
			if alen > maxRedirectAddr {
				return nil, fmt.Errorf("transport: redirect address of %d bytes exceeds limit", alen)
			}
			if alen > uint64(len(body)-off) {
				return nil, fmt.Errorf("transport: truncated redirect address")
			}
			redirect := string(body[off : off+int(alen)])
			off += int(alen)
			epoch, k := binary.Uvarint(body[off:])
			if k <= 0 {
				return nil, fmt.Errorf("transport: truncated hello entry epoch")
			}
			off += k
			entries = append(entries, HelloEntry{Doc: doc, Redirect: redirect, Epoch: epoch})
		}
		if off != len(body) {
			return nil, fmt.Errorf("transport: %d trailing bytes after hello resp", len(body)-off)
		}
		return &HelloRespFrame{Entries: entries}, nil
	default:
		return nil, fmt.Errorf("transport: unknown frame kind %#x", frame[0])
	}
}

// WriteFrame writes one length-prefixed frame: a 4-byte big-endian length
// followed by the frame bytes. Callers serialise concurrent writers.
func WriteFrame(w io.Writer, frame []byte) error {
	if len(frame) == 0 || len(frame) > frameSizeLimit(frame[0]) {
		return fmt.Errorf("transport: frame size %d out of range", len(frame))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one length-prefixed frame, refusing oversized lengths
// before allocating. Lengths above MaxFrameSize are tolerated only for
// kinds with a higher ceiling (kindSnap, kindSnapChunk, and the doc
// envelope that may wrap them; checked against the kind byte before the
// body is read), so a hostile length prefix cannot force a large
// allocation by claiming any other kind.
func ReadFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxSnapFrameSize+docFrameOverhead {
		return nil, fmt.Errorf("transport: frame length %d out of range", n)
	}
	if n > MaxFrameSize {
		kind, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		if int(n) > frameSizeLimit(kind) {
			return nil, fmt.Errorf("transport: frame length %d out of range for kind %#x", n, kind)
		}
		frame := make([]byte, n)
		frame[0] = kind
		if _, err := io.ReadFull(r, frame[1:]); err != nil {
			return nil, err
		}
		return frame, nil
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/treedoc/treedoc/internal/transport/shardmap"
)

// Hub is the relay server behind cmd/treedoc-serve: it accepts framed TCP
// connections and fans frames out within per-document relay groups. The
// hub holds no replica and never decodes operations — the causal buffers
// at the edges deduplicate, order, and repair — so it scales with wire
// throughput, not document size.
//
// Documents partition the relay: a client attaches to one or more
// documents via the kindHello handshake, doc-scoped envelope frames
// (kindDocFrame) are relayed only to that document's group, and bare
// frames from legacy clients are routed to DefaultDoc — a connection that
// never says hello behaves exactly as it did on the single-document hub.
// A slow client's queue overflowing drops frames for that client only;
// its engine heals via anti-entropy.
//
// With a shard ring configured (WithHubShards / ConfigureSharding /
// ConfigureRing), N hub processes split the document space by consistent
// hashing: an attach for a document this process does not own is answered
// with an epoch-stamped redirect naming the owner, which Session/DialDoc
// clients follow transparently. The ring is epoch-versioned
// (shardmap.Ring): adopting a ring with a higher epoch — from
// ConfigureRing locally, or from a kindRingAnnounce a peer or joining hub
// sent — triggers the online handoff state machine for every local
// document the membership change relocates (see handoff.go), and hubs
// maintain persistent hub-to-hub mesh connections that forward a foreign
// document's frames for clients that cannot reach its owner shard.
type Hub struct {
	ln         net.Listener
	queueDepth int
	logf       func(format string, args ...any)
	// ownership, when set, is invoked as documents are acquired (a handoff
	// begins streaming in) or released (a handoff finished streaming out)
	// through a live reshard. Called from hub goroutines; the callee
	// synchronises.
	ownership func(doc string, epoch uint64, acquired bool)

	mu     sync.Mutex
	conns  map[int64]*hubConn // guarded by mu
	nextID int64              // guarded by mu
	closed bool               // guarded by mu
	// shards maps document ID to its relay group. The map itself is
	// copy-on-write behind an atomic pointer, and each shard keeps an
	// immutable snapshot of its connections, so the per-frame relay path
	// reads both lock-free; mu serialises the (rare) attach, detach and
	// disconnect mutations.
	shards   map[string]*docShard // guarded by mu (shardPtr is the lock-free view)
	shardPtr atomic.Pointer[map[string]*docShard]

	// ring is the epoch-versioned consistent-hash routing layer when this
	// hub is one of N cooperating processes; nil means this hub owns every
	// document. ringView republishes (ring, self) behind an atomic pointer
	// for the per-frame paths (DocOwner on every kindForward), which must
	// not take the hub lock; mu still guards the mutations.
	ring     *shardmap.Ring // guarded by mu (ringView is the lock-free view)
	self     string
	ringView atomic.Pointer[hubRingView]
	// peers is the hub-to-hub mesh: one persistent outbound connection per
	// cooperating hub, dialed on first use (forwarding, handoff streaming,
	// ring announces). Guarded by mu.
	peers map[string]*hubPeer
	// sources supplies migrating documents' durable state (archivist
	// engines, registered by cmd/treedoc-serve). Guarded by mu.
	sources map[string]HandoffSource
	// pendingPeers carries WithHubShards arguments until ListenHub
	// validates them; tests with :0 listeners use ConfigureSharding after
	// the port is known instead.
	pendingPeers []string // guarded by mu

	drops    atomic.Uint64
	relays   atomic.Uint64
	unrouted atomic.Uint64
	forwards atomic.Uint64
	// syncBatchFrames/syncBatchEntries count received kindSyncBatch frames
	// and the per-document digests they carried; the ratio is the batching
	// win (one frame standing in for N envelopes).
	syncBatchFrames  atomic.Uint64
	syncBatchEntries atomic.Uint64
	// replayRoutes counts directed anti-entropy answers delivered to their
	// addressed requester alone; replayFallbacks counts answers whose
	// target was unknown or dead and fell back to the group broadcast.
	replayRoutes    atomic.Uint64
	replayFallbacks atomic.Uint64
	// frozenDrops counts frames dropped because their document was frozen
	// mid-handoff; client anti-entropy heals them through the new owner.
	frozenDrops atomic.Uint64
	handoffsOut atomic.Uint64
	handoffsIn  atomic.Uint64
	// lastDropWarn rate-limits the slow-client warning (unix nanos).
	lastDropWarn atomic.Int64
	wg           sync.WaitGroup
	// handoffWG tracks in-flight outbound handoffs so Resign can wait for
	// them; its goroutines are also counted in wg.
	handoffWG sync.WaitGroup
}

// docShard is one document's relay group.
type docShard struct {
	doc   string
	conns map[int64]*hubConn
	// snap is an immutable snapshot of conns, rebuilt under the hub lock
	// on attach/detach/disconnect, read lock-free by the relay path.
	snap   atomic.Pointer[[]*hubConn]
	relays atomic.Uint64
	drops  atomic.Uint64
	// digestRR is the rotation cursor for sampled anti-entropy relays
	// (see fanoutDigest).
	digestRR atomic.Uint64
	// sites maps a requesting site id to the connection that last sent an
	// anti-entropy pull for it, learned as pulls pass through the relay:
	// directed kindReplay answers route back along the reverse path. An
	// entry goes stale when its client reconnects; the next pull (at most
	// one grace period later) re-learns it, and routeReplay falls back to
	// broadcast for unknown or dead targets in the meantime.
	sites sync.Map // ident.SiteID → *hubConn
	// frozen is set for the streaming window of an outbound handoff:
	// inbound frames are dropped (counted) rather than relayed, so the
	// state stream is a consistent cut; anti-entropy heals the window.
	frozen atomic.Bool
	// fwd, when non-nil, marks the shard as locally served but foreign:
	// frames from local clients are additionally wrapped in kindForward and
	// sent to the owning hub over this mesh connection.
	fwd atomic.Pointer[hubPeer]
	// refreshing single-flights the redial of a dead fwd peer, so a busy
	// relay path spawns at most one refresh goroutine per shard.
	refreshing atomic.Bool
}

// DocStats is one document's relay counters.
type DocStats struct {
	// Clients is the number of connections currently attached.
	Clients int
	// Relays counts frames fanned out on this document (one per receiving
	// client).
	Relays uint64
	// Drops counts frames discarded on this document because a client
	// queue was full.
	Drops uint64
}

// HubOption configures a Hub.
type HubOption func(*Hub)

// WithHubQueueDepth sets the per-client outbound queue depth (default 256).
func WithHubQueueDepth(n int) HubOption {
	return func(h *Hub) {
		if n > 0 {
			h.queueDepth = n
		}
	}
}

// WithHubLogger directs connection logging and slow-client drop warnings
// (default: silent).
func WithHubLogger(logf func(format string, args ...any)) HubOption {
	return func(h *Hub) { h.logf = logf }
}

// WithHubShards makes the hub one of N cooperating processes splitting
// the document space: peers is the full ring membership (advertised
// addresses, identical on every process) and self is this process's own
// advertised address. Attaches for documents owned by another peer are
// answered with a redirect. A bad ring (empty, duplicate or unknown self)
// is reported by ListenHub.
//
//treedoc:unguarded options are applied in ListenHub before the hub goes live
func WithHubShards(self string, peers []string) HubOption {
	return func(h *Hub) {
		// Defer validation to ListenHub via ConfigureSharding so the error
		// surfaces instead of being swallowed by the option signature.
		h.self = self
		h.pendingPeers = peers
	}
}

// WithHubSelf records the hub's own advertised address without configuring
// a ring: the hub owns every document until a ring is adopted, but can
// already answer ring queries and be named by a joining hub.
func WithHubSelf(self string) HubOption {
	return func(h *Hub) { h.self = self }
}

// WithHubOwnership installs a callback invoked when this hub acquires a
// document (an inbound handoff began) or releases one (an outbound handoff
// finished streaming) through a live reshard. cmd/treedoc-serve uses it to
// start and stop per-document archivists. The callback runs on hub
// goroutines and must not call back into the hub synchronously with long
// delays; it may call RegisterHandoff.
func WithHubOwnership(fn func(doc string, epoch uint64, acquired bool)) HubOption {
	return func(h *Hub) { h.ownership = fn }
}

// ListenHub starts a hub on addr (e.g. ":9707" or "127.0.0.1:0") and
// begins accepting clients in the background.
//
//treedoc:unguarded the hub is not live until acceptLoop starts, at the end
func ListenHub(addr string, opts ...HubOption) (*Hub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &Hub{
		ln:         ln,
		queueDepth: defaultQueueDepth,
		logf:       func(string, ...any) {},
		conns:      make(map[int64]*hubConn),
		shards:     make(map[string]*docShard),
		peers:      make(map[string]*hubPeer),
		sources:    make(map[string]HandoffSource),
	}
	for _, o := range opts {
		o(h)
	}
	h.publishShards()
	h.publishRingView()
	if h.pendingPeers != nil {
		if err := h.ConfigureSharding(h.self, h.pendingPeers); err != nil {
			ln.Close()
			return nil, err
		}
		h.pendingPeers = nil
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// ConfigureSharding installs (or replaces) the consistent-hash ring: self
// is this process's advertised address and peers the full membership. The
// new ring's epoch is one above the current one (1 on first
// configuration), and installing it over live traffic triggers the online
// handoff machinery for every local document the change relocates — see
// ConfigureRing.
func (h *Hub) ConfigureSharding(self string, peers []string) error {
	// Epoch minting and installation race concurrently adopted announces:
	// ConfigureRing treats an equal epoch as an idempotent no-op, so
	// verify by identity that OUR ring landed and remint one higher if a
	// racer took the epoch first.
	for attempt := 0; attempt < 4; attempt++ {
		h.mu.Lock()
		var epoch uint64 = 1
		if h.ring != nil {
			epoch = h.ring.Epoch + 1
		}
		h.mu.Unlock()
		ring, err := shardmap.NewRing(epoch, peers)
		if err != nil {
			return fmt.Errorf("transport: configure sharding: %w", err)
		}
		if !ring.Has(self) {
			return &net.AddrError{Err: "self address not in peer ring", Addr: self}
		}
		if err := h.ConfigureRing(self, ring); err != nil {
			if errors.Is(err, errStaleEpoch) {
				continue // a racer installed a higher epoch; remint
			}
			return err
		}
		h.mu.Lock()
		installed := h.ring == ring
		h.mu.Unlock()
		if installed {
			return nil
		}
	}
	return fmt.Errorf("transport: ring configuration kept racing concurrent adoptions")
}

// Addr returns the hub's listen address.
func (h *Hub) Addr() net.Addr { return h.ln.Addr() }

// hubRingView is the lock-free snapshot of (ring, self) the per-frame
// paths read.
type hubRingView struct {
	ring *shardmap.Ring
	self string
}

// publishRingView refreshes the lock-free ring snapshot; call with mu
// held (or before the hub goes live).
//
//treedoc:holds mu
func (h *Hub) publishRingView() {
	h.ringView.Store(&hubRingView{ring: h.ring, self: h.self})
}

// DocOwner reports the shard-ring owner of doc and whether that is this
// hub, lock-free (it runs per forwarded frame). Without a configured
// ring this hub owns every document. Callers (like cmd/treedoc-serve
// deciding where to run archivists) must consult this rather than
// building a parallel ring, so ownership decisions and attach redirects
// can never disagree.
func (h *Hub) DocOwner(doc string) (owner string, owned bool) {
	v := h.ringView.Load()
	if v == nil || v.ring == nil {
		if v != nil {
			return v.self, true
		}
		return "", true
	}
	owner = v.ring.Owner(doc)
	return owner, owner == v.self
}

// RingEpoch returns the epoch of the currently installed ring (0 when no
// ring is configured).
func (h *Hub) RingEpoch() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ring == nil {
		return 0
	}
	return h.ring.Epoch
}

// Ring returns the currently installed ring (nil when none): callers like
// treedoc-serve's join loop verify membership actually landed, because a
// racing adoption of an equal epoch makes ConfigureRing a silent no-op.
func (h *Hub) Ring() *shardmap.Ring {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ring
}

// RegisterHandoff registers src as the supplier of doc's durable state
// when the document is handed to a new owner (nil unregisters). An
// archivist's engine is the usual source; without one, a handoff streams
// no state and the new owner's replicas catch up through anti-entropy.
func (h *Hub) RegisterHandoff(doc string, src HandoffSource) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if src == nil {
		delete(h.sources, doc)
		return
	}
	h.sources[doc] = src
}

// Drops counts frames discarded because a client queue was full, across
// all documents.
func (h *Hub) Drops() uint64 { return h.drops.Load() }

// Relays counts frames fanned out (one per receiving client), across all
// documents.
func (h *Hub) Relays() uint64 { return h.relays.Load() }

// Unrouted counts frames that named a document with no attached clients
// (including envelope frames that failed to parse).
func (h *Hub) Unrouted() uint64 { return h.unrouted.Load() }

// Forwards counts frames wrapped in the hub-to-hub envelope and sent to a
// document's owner shard on behalf of locally attached clients.
func (h *Hub) Forwards() uint64 { return h.forwards.Load() }

// FrozenDrops counts frames dropped because their document was frozen for
// the streaming window of an outbound handoff (healed by anti-entropy).
func (h *Hub) FrozenDrops() uint64 { return h.frozenDrops.Load() }

// ReplayRoutes counts directed anti-entropy answers (kindReplay)
// delivered to their addressed requester alone instead of the group.
func (h *Hub) ReplayRoutes() uint64 { return h.replayRoutes.Load() }

// ReplayFallbacks counts directed answers whose addressed requester was
// unknown or dead, delivered by group broadcast instead.
func (h *Hub) ReplayFallbacks() uint64 { return h.replayFallbacks.Load() }

// SyncBatchFrames counts batched multi-document digest frames received.
func (h *Hub) SyncBatchFrames() uint64 { return h.syncBatchFrames.Load() }

// SyncBatchEntries counts the per-document digests received inside
// batched frames; divided by SyncBatchFrames it is the mean batch width.
func (h *Hub) SyncBatchEntries() uint64 { return h.syncBatchEntries.Load() }

// HandoffsOut counts documents this hub streamed to a new owner.
func (h *Hub) HandoffsOut() uint64 { return h.handoffsOut.Load() }

// HandoffsIn counts documents streamed to this hub by a previous owner.
func (h *Hub) HandoffsIn() uint64 { return h.handoffsIn.Load() }

// DocStats returns per-document relay counters for every document with an
// active relay group or nonzero history this hub retains.
func (h *Hub) DocStats() map[string]DocStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]DocStats, len(h.shards))
	for doc, s := range h.shards {
		out[doc] = DocStats{
			Clients: len(s.conns),
			Relays:  s.relays.Load(),
			Drops:   s.drops.Load(),
		}
	}
	return out
}

// Close stops accepting, disconnects every client, and waits for the
// hub's goroutines to drain.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		h.wg.Wait()
		return nil
	}
	h.closed = true
	conns := make([]*hubConn, 0, len(h.conns))
	for _, c := range h.conns {
		conns = append(conns, c)
	}
	peers := make([]*hubPeer, 0, len(h.peers))
	for _, p := range h.peers {
		peers = append(peers, p)
	}
	h.mu.Unlock()
	err := h.ln.Close()
	for _, c := range conns {
		c.shut()
	}
	for _, p := range peers {
		p.fail()
	}
	h.wg.Wait()
	return err
}

func (h *Hub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			conn.Close()
			return
		}
		h.nextID++
		c := &hubConn{
			hub:  h,
			id:   h.nextID,
			conn: conn,
			out:  make(chan []byte, h.queueDepth),
			gone: make(chan struct{}),
			docs: make(map[string]bool),
		}
		h.conns[c.id] = c
		// Every connection starts attached to the default document: a
		// legacy client never says hello, and this is exactly the old
		// single-document relay behaviour. The first kindHello re-homes the
		// connection to the documents it names.
		h.attachLocked(c, DefaultDoc)
		n := len(h.conns)
		h.mu.Unlock()
		h.logf("hub: client %d connected from %s (%d online)", c.id, conn.RemoteAddr(), n)
		h.wg.Add(2)
		go c.reader()
		go c.writer()
	}
}

// publishShards refreshes the copy-on-write shard map; call with mu held
// (or before the hub goes live).
//
//treedoc:holds mu
func (h *Hub) publishShards() {
	m := make(map[string]*docShard, len(h.shards))
	for doc, s := range h.shards {
		m[doc] = s
	}
	h.shardPtr.Store(&m)
}

// attachLocked adds c to doc's relay group, creating it on first attach;
// call with mu held.
//
//treedoc:holds mu
func (h *Hub) attachLocked(c *hubConn, doc string) {
	s := h.shards[doc]
	if s == nil {
		s = &docShard{doc: doc, conns: make(map[int64]*hubConn)}
		h.shards[doc] = s
		h.publishShards()
	}
	if c.docs[doc] {
		return
	}
	c.docs[doc] = true
	s.conns[c.id] = c
	s.rebuild()
}

// enableForwardLocked puts doc's relay group (created if absent) in
// forward mode towards its ring owner; call with mu held. No-op when this
// hub owns the document or has no ring.
//
//treedoc:holds mu
func (h *Hub) enableForwardLocked(doc string) {
	if h.ring == nil {
		return
	}
	owner := h.ring.Owner(doc)
	if owner == h.self {
		return
	}
	s := h.shards[doc]
	if s == nil {
		s = &docShard{doc: doc, conns: make(map[int64]*hubConn)}
		h.shards[doc] = s
		h.publishShards()
	}
	h.retargetLocked(doc, s, owner)
}

// ensureLegacyForward runs once per connection, on its first bare frame:
// a legacy client cannot follow redirects, so if the default document is
// foreign under the current ring, its relay group switches to forward
// mode. Engine-backed legacy clients send an anti-entropy digest every
// sync interval, so forwarding engages within one interval even for
// read-mostly clients.
func (h *Hub) ensureLegacyForward(c *hubConn) {
	if c.legacyChecked.Swap(true) {
		return
	}
	h.mu.Lock()
	// Only a connection actually attached to the default document (a true
	// legacy client) turns on forwarding: a doc-aware client's stray bare
	// frame must not mint a zero-connection shard whose mesh subscription
	// would draw the default document's traffic here forever.
	if c.docs[DefaultDoc] {
		h.enableForwardLocked(DefaultDoc)
	}
	h.mu.Unlock()
}

// detachLocked removes c from doc's relay group, deleting the group when
// its last connection leaves — and releasing its mesh subscription, so a
// dissolved forward-mode group stops drawing the document's traffic
// cross-hub; call with mu held.
//
//treedoc:holds mu
func (h *Hub) detachLocked(c *hubConn, doc string) {
	if !c.docs[doc] {
		return
	}
	delete(c.docs, doc)
	s := h.shards[doc]
	if s == nil {
		return
	}
	delete(s.conns, c.id)
	if len(s.conns) == 0 {
		delete(h.shards, doc)
		h.publishShards()
		if p := s.fwd.Swap(nil); p != nil {
			p.unsubscribe(doc)
		}
		return
	}
	s.rebuild()
}

// rebuild refreshes the shard's lock-free snapshot; call with the hub
// lock held.
func (s *docShard) rebuild() {
	snap := make([]*hubConn, 0, len(s.conns))
	for _, c := range s.conns {
		snap = append(snap, c)
	}
	s.snap.Store(&snap)
}

// hello processes an attach handshake: attach every owned document,
// answer epoch-stamped redirects for documents another shard owns — or,
// when the client set the forward flag (it cannot reach the owner),
// attach the foreign document locally and relay its frames over the mesh.
func (h *Hub) hello(c *hubConn, docs []string, forward bool) {
	c.aware.Store(true)
	entries := make([]HelloEntry, 0, len(docs))
	h.mu.Lock()
	ring, self := h.ring, h.self
	var epoch uint64
	if ring != nil {
		epoch = ring.Epoch
	}
	for _, doc := range docs {
		if ring != nil && ring.Owner(doc) != self {
			if !forward {
				entries = append(entries, HelloEntry{Doc: doc, Redirect: ring.Owner(doc), Epoch: epoch})
				continue
			}
			h.enableForwardLocked(doc)
		}
		h.attachLocked(c, doc)
		entries = append(entries, HelloEntry{Doc: doc, Epoch: epoch})
	}
	// The first hello re-homes the connection: it is doc-aware now, so the
	// implicit legacy attachment to the default document is dropped unless
	// it was requested by name.
	if !c.helloSeen {
		c.helloSeen = true
		keep := false
		for _, doc := range docs {
			if doc == DefaultDoc {
				keep = true
				break
			}
		}
		if !keep {
			h.detachLocked(c, DefaultDoc)
		}
	}
	h.mu.Unlock()
	resp, err := EncodeHelloResp(entries)
	if err != nil {
		h.logf("hub: client %d hello response: %v", c.id, err)
		return
	}
	// The handshake answer must not be silently dropped: block into the
	// queue (the writer is draining it) until the connection dies.
	select {
	case c.out <- resp:
	case <-c.gone:
	}
	for _, e := range entries {
		if e.Redirect != "" {
			h.logf("hub: client %d doc %q redirected to %s", c.id, e.Doc, e.Redirect)
		} else {
			h.logf("hub: client %d attached to doc %q", c.id, e.Doc)
		}
	}
}

func (h *Hub) detach(c *hubConn, docs []string) {
	h.mu.Lock()
	for _, doc := range docs {
		h.detachLocked(c, doc)
	}
	h.mu.Unlock()
}

// relay fans one frame out to every other client attached to doc, and —
// when the shard is in forward mode — on to the owning hub over the mesh.
// It runs on every inbound frame, so it reads the copy-on-write shard map
// and the shard's connection snapshot without taking the hub lock. inner
// is the bare frame (what legacy clients receive); env is the doc-scoped
// envelope if the sender provided one, else it is built lazily the first
// time a doc-aware receiver needs it.
func (h *Hub) relay(from *hubConn, doc string, inner, env []byte) {
	shards := h.shardPtr.Load()
	s := (*shards)[doc]
	if s == nil {
		h.unrouted.Add(1)
		return
	}
	if s.frozen.Load() {
		h.frozenDrops.Add(1)
		return
	}
	h.fanoutShard(s, from, doc, inner, env)
	if p := s.fwd.Load(); p != nil {
		if p.dead() {
			// The owner's mesh connection died: redial and resubscribe off
			// the hot path (single-flight per shard); this frame is dropped
			// and healed by anti-entropy.
			if s.refreshing.CompareAndSwap(false, true) {
				go h.refreshForward(doc, s, p.addr)
			}
			return
		}
		if inner[0] == kindSyncReq && p.queueDigest(doc, inner) {
			// Digests crossing the mesh batch per peer link, exactly as
			// session clients batch per connection: one forwarded-flagged
			// kindSyncBatch frame per link per window instead of one
			// kindForward envelope per document.
			return
		}
		fwd, err := EncodeForward(doc, inner)
		if err == nil && p.trySend(fwd) {
			h.forwards.Add(1)
		}
	}
}

// handleSyncBatch splits a batched multi-document digest into the
// per-document relay path: each entry is re-framed as the kindSyncReq it
// stands for and relayed to its document's group, where attached engines
// answer exactly as they would a legacy digest. A forwarded batch — one
// that already crossed the hub-to-hub mesh — is relayed to local clients
// only, mirroring kindForward's loop freedom (and, as there, a batch for
// documents this hub does not own draws one ring correction so a stale
// forwarder catches up).
func (h *Hub) handleSyncBatch(from *hubConn, sb *SyncBatchFrame) {
	h.syncBatchFrames.Add(1)
	h.syncBatchEntries.Add(uint64(len(sb.Entries)))
	corrected := false
	for _, e := range sb.Entries {
		inner, err := EncodeSyncReq(e.From, e.Clock)
		if err != nil {
			h.unrouted.Add(1)
			continue
		}
		if sb.Forwarded {
			if !corrected {
				if _, owned := h.DocOwner(e.Doc); !owned {
					h.sendRingCorrection(from)
					corrected = true
				}
			}
			h.relayLocal(from, e.Doc, inner, nil)
		} else {
			h.relay(from, e.Doc, inner, nil)
		}
	}
}

// relayLocal fans one mesh-delivered frame (a forwarded or handed-off
// document's traffic arriving from another hub) out to the local clients
// only, excluding from when the delivering connection is itself attached:
// mesh frames are never forwarded onward, so disagreeing rings cannot
// loop a frame between hubs.
func (h *Hub) relayLocal(from *hubConn, doc string, inner, env []byte) {
	shards := h.shardPtr.Load()
	s := (*shards)[doc]
	if s == nil {
		h.unrouted.Add(1)
		return
	}
	if s.frozen.Load() {
		h.frozenDrops.Add(1)
		return
	}
	h.fanoutShard(s, from, doc, inner, env)
}

// fanoutShard delivers one frame to every connection in the shard except
// from. Anti-entropy frames take narrower paths instead: a pull (digest
// or snapshot request) is delivered to a rotating sample of the group —
// on a hot document, relaying every member's digest to every other
// member is a quadratic storm in which each copy solicits the same
// retransmission, and the rotation guarantees a requester unlucky in one
// round is heard by different members in the next — and a directed
// answer (kindReplay) is routed to its addressed requester alone, along
// the reverse path the pull taught.
func (h *Hub) fanoutShard(s *docShard, from *hubConn, doc string, inner, env []byte) {
	conns := s.snap.Load()
	if conns == nil {
		return
	}
	if inner[0] == kindReplay {
		h.routeReplay(s, from, doc, inner, env, *conns)
		return
	}
	if inner[0] == kindSyncReq || inner[0] == kindSnapReq {
		// A passing pull teaches the reverse route its answers take.
		if from != nil {
			if site, ok := peekDigestFrom(inner); ok {
				s.sites.Store(site, from)
			}
		}
		if len(*conns) > digestRelayFanout+1 {
			h.fanoutDigest(s, from, doc, inner, env, *conns)
			return
		}
	}
	for _, c := range *conns {
		if c == from {
			continue
		}
		env = h.deliverFrame(s, c, doc, inner, env)
	}
}

// digestRelayFanout is how many group members a relayed anti-entropy pull
// reaches. Two gives one spare answer against a dead or equally-behind
// sample; groups at or below fanout+1 members skip sampling entirely.
const digestRelayFanout = 2

// fanoutDigest delivers one pull frame to digestRelayFanout members,
// starting at the shard's rotation cursor. The cursor advances by the
// fanout per pull, so consecutive pulls sweep disjoint windows of the
// group and every member is sampled within one rotation.
func (h *Hub) fanoutDigest(s *docShard, from *hubConn, doc string, inner, env []byte, conns []*hubConn) {
	start := int(s.digestRR.Add(digestRelayFanout) % uint64(len(conns)))
	sent := 0
	for off := 0; off < len(conns) && sent < digestRelayFanout; off++ {
		c := conns[(start+off)%len(conns)]
		if c == from {
			continue
		}
		env = h.deliverFrame(s, c, doc, inner, env)
		sent++
	}
}

// routeReplay delivers a directed anti-entropy answer to the one
// connection that last pulled for the addressed site, instead of the
// whole group — on a hot document, broadcasting every answer multiplies
// its bytes by the group size for members who never asked. An aware
// target receives the wrapper intact (a mesh hop routes it onward by the
// same rule; the requester's engine unwraps); a legacy target receives
// the bare inner frame, so directed replay needs no receiver support.
// An unknown, dead or self target falls back to broadcasting the inner
// frame — exactly what an unwrapped answer would have done.
func (h *Hub) routeReplay(s *docShard, from *hubConn, doc string, inner, env []byte, conns []*hubConn) {
	to, payload, err := SplitReplay(inner)
	if err != nil {
		h.unrouted.Add(1)
		return
	}
	if v, ok := s.sites.Load(to); ok {
		if c := v.(*hubConn); c != from && !c.isGone() {
			if env == nil && c.aware.Load() {
				env, err = EncodeDocFrame(doc, inner)
				if err != nil {
					env = nil
				}
			}
			h.deliverFrame(s, c, doc, payload, env)
			h.replayRoutes.Add(1)
			return
		}
	}
	h.replayFallbacks.Add(1)
	var penv []byte
	for _, c := range conns {
		if c == from {
			continue
		}
		penv = h.deliverFrame(s, c, doc, payload, penv)
	}
}

// deliverFrame queues one frame for a shard member, choosing the
// doc-scoped envelope for aware receivers (built lazily, returned so the
// caller reuses it across the group). An unwrappable inner frame (cannot
// happen for wire-read frames, which already passed the size limits)
// skips doc-aware receivers rather than mis-deliver.
func (h *Hub) deliverFrame(s *docShard, c *hubConn, doc string, inner, env []byte) []byte {
	f := inner
	if c.aware.Load() {
		if env == nil {
			var err error
			if env, err = EncodeDocFrame(doc, inner); err != nil {
				return nil
			}
		}
		f = env
	}
	select {
	case c.out <- f:
		s.relays.Add(1)
		h.relays.Add(1)
	default:
		s.drops.Add(1)
		h.drops.Add(1)
		h.warnDrop(c, s)
	}
	return env
}

// warnDrop logs a slow-client drop with client and document identity, at
// most once per second across the hub: a saturated client drops thousands
// of frames per second, and the log must not amplify that.
func (h *Hub) warnDrop(c *hubConn, s *docShard) {
	const warnEvery = int64(time.Second)
	now := time.Now().UnixNano()
	last := h.lastDropWarn.Load()
	if now-last < warnEvery || !h.lastDropWarn.CompareAndSwap(last, now) {
		return
	}
	h.logf("hub: dropping frames for slow client %d (%s) on doc %q (doc drops %d, hub drops %d); anti-entropy will heal",
		c.id, c.conn.RemoteAddr(), s.doc, s.drops.Load(), h.drops.Load())
}

func (h *Hub) drop(c *hubConn) {
	h.mu.Lock()
	_, present := h.conns[c.id]
	delete(h.conns, c.id)
	for doc := range c.docs {
		h.detachLocked(c, doc)
	}
	n := len(h.conns)
	h.mu.Unlock()
	c.shut()
	if present {
		h.logf("hub: client %d disconnected (%d online)", c.id, n)
	}
}

// hubConn is one relayed client: reader fans frames in, writer drains the
// bounded outbound queue.
type hubConn struct {
	hub      *Hub
	id       int64
	conn     net.Conn
	out      chan []byte
	gone     chan struct{}
	goneOnce sync.Once
	// aware flips once the client sends kindHello: doc-aware clients
	// receive envelope frames, legacy clients receive bare frames.
	aware atomic.Bool
	// docs is the set of attached documents; guarded by hub.mu (the relay
	// path never reads it — shard snapshots carry membership).
	docs map[string]bool
	// helloSeen records that the first hello already re-homed this
	// connection off the implicit default attachment; guarded by hub.mu.
	helloSeen bool
	// legacyChecked latches after the connection's first bare frame set up
	// legacy forwarding (see ensureLegacyForward).
	legacyChecked atomic.Bool
	// lastRingCorrect rate-limits ring-announce corrections to a stale
	// forwarder on this connection (unix nanos).
	lastRingCorrect atomic.Int64
}

func (c *hubConn) shut() {
	c.goneOnce.Do(func() { close(c.gone) })
	c.conn.Close()
}

func (c *hubConn) isGone() bool {
	select {
	case <-c.gone:
		return true
	default:
		return false
	}
}

func (c *hubConn) reader() {
	defer c.hub.wg.Done()
	defer c.hub.drop(c)
	br := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		frame, err := ReadFrame(br)
		if err != nil {
			return
		}
		switch frame[0] {
		case kindHello:
			decoded, err := DecodeFrame(frame)
			if err != nil {
				c.hub.unrouted.Add(1)
				continue
			}
			hf := decoded.(*HelloFrame)
			c.hub.hello(c, hf.Docs, hf.Forward)
		case kindDetach:
			decoded, err := DecodeFrame(frame)
			if err != nil {
				c.hub.unrouted.Add(1)
				continue
			}
			c.hub.detach(c, decoded.(*DetachFrame).Docs)
		case kindHelloResp:
			// Clients never relay handshake answers.
			c.hub.unrouted.Add(1)
		case kindDocFrame:
			doc, inner, err := SplitDocFrame(frame)
			if err != nil {
				c.hub.unrouted.Add(1)
				continue
			}
			c.hub.relay(c, doc, inner, frame)
		case kindRingAnnounce:
			decoded, err := DecodeFrame(frame)
			if err != nil {
				c.hub.unrouted.Add(1)
				continue
			}
			c.hub.handleRingFrame(c, decoded.(*RingFrame))
		case kindForward:
			doc, inner, err := splitEnvelope(kindForward, frame)
			if err != nil {
				c.hub.unrouted.Add(1)
				continue
			}
			c.hub.handleForward(c, doc, inner)
		case kindSyncBatch:
			decoded, err := DecodeFrame(frame)
			if err != nil {
				c.hub.unrouted.Add(1)
				continue
			}
			c.hub.handleSyncBatch(c, decoded.(*SyncBatchFrame))
		case kindHandoffBegin:
			decoded, err := DecodeFrame(frame)
			if err != nil {
				c.hub.unrouted.Add(1)
				continue
			}
			c.hub.handleHandoffBegin(c, decoded.(*HandoffBeginFrame))
		case kindHandoffState:
			doc, inner, err := splitEnvelope(kindHandoffState, frame)
			if err != nil {
				c.hub.unrouted.Add(1)
				continue
			}
			c.hub.relayLocal(c, doc, inner, nil)
		case kindHandoffDone:
			decoded, err := DecodeFrame(frame)
			if err != nil {
				c.hub.unrouted.Add(1)
				continue
			}
			hd := decoded.(*HandoffDoneFrame)
			c.hub.logf("hub: handoff of doc %q (epoch %d) fully received", hd.Doc, hd.Epoch)
		default:
			// Bare frame from a legacy client (or a doc-aware client's
			// unscoped traffic): route to the default document, forwarding
			// to its owner shard if the ring placed it elsewhere.
			c.hub.ensureLegacyForward(c)
			c.hub.relay(c, DefaultDoc, frame, nil)
		}
	}
}

func (c *hubConn) writer() {
	defer c.hub.wg.Done()
	bw := bufio.NewWriterSize(c.conn, 64<<10)
	for {
		select {
		case f := <-c.out:
			if err := WriteFrame(bw, f); err != nil {
				c.hub.drop(c)
				return
			}
			// Flush opportunistically: drain whatever else is queued first.
			for {
				select {
				case f := <-c.out:
					if err := WriteFrame(bw, f); err != nil {
						c.hub.drop(c)
						return
					}
					continue
				default:
				}
				break
			}
			if err := bw.Flush(); err != nil {
				c.hub.drop(c)
				return
			}
		case <-c.gone:
			return
		}
	}
}

package transport

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
)

// Hub is the relay server behind cmd/treedoc-serve: it accepts framed TCP
// connections and fans every inbound frame out to all other clients. The
// hub holds no replica and never decodes operations — the causal buffers
// at the edges deduplicate, order, and repair — so it scales with wire
// throughput, not document size. A slow client's queue overflowing drops
// frames for that client only; its engine heals via anti-entropy.
type Hub struct {
	ln         net.Listener
	queueDepth int
	logf       func(format string, args ...any)

	mu     sync.Mutex
	conns  map[int64]*hubConn
	nextID int64
	closed bool
	// snap is an immutable snapshot of conns, rebuilt under mu on connect
	// and disconnect, so the per-frame relay path reads it lock-free and
	// allocation-free.
	snap atomic.Pointer[[]*hubConn]

	drops  atomic.Uint64
	relays atomic.Uint64
	wg     sync.WaitGroup
}

// HubOption configures a Hub.
type HubOption func(*Hub)

// WithHubQueueDepth sets the per-client outbound queue depth (default 256).
func WithHubQueueDepth(n int) HubOption {
	return func(h *Hub) {
		if n > 0 {
			h.queueDepth = n
		}
	}
}

// WithHubLogger directs connection logging (default: silent).
func WithHubLogger(logf func(format string, args ...any)) HubOption {
	return func(h *Hub) { h.logf = logf }
}

// ListenHub starts a hub on addr (e.g. ":9707" or "127.0.0.1:0") and
// begins accepting clients in the background.
func ListenHub(addr string, opts ...HubOption) (*Hub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &Hub{
		ln:         ln,
		queueDepth: defaultQueueDepth,
		logf:       func(string, ...any) {},
		conns:      make(map[int64]*hubConn),
	}
	for _, o := range opts {
		o(h)
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listen address.
func (h *Hub) Addr() net.Addr { return h.ln.Addr() }

// Drops counts frames discarded because a client queue was full.
func (h *Hub) Drops() uint64 { return h.drops.Load() }

// Relays counts frames fanned out (one per receiving client).
func (h *Hub) Relays() uint64 { return h.relays.Load() }

// Close stops accepting, disconnects every client, and waits for the
// hub's goroutines to drain.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		h.wg.Wait()
		return nil
	}
	h.closed = true
	conns := make([]*hubConn, 0, len(h.conns))
	for _, c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	err := h.ln.Close()
	for _, c := range conns {
		c.shut()
	}
	h.wg.Wait()
	return err
}

func (h *Hub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return // listener closed
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			conn.Close()
			return
		}
		h.nextID++
		c := &hubConn{
			hub:  h,
			id:   h.nextID,
			conn: conn,
			out:  make(chan []byte, h.queueDepth),
			gone: make(chan struct{}),
		}
		h.conns[c.id] = c
		h.rebuild()
		n := len(h.conns)
		h.mu.Unlock()
		h.logf("hub: client %d connected from %s (%d online)", c.id, conn.RemoteAddr(), n)
		h.wg.Add(2)
		go c.reader()
		go c.writer()
	}
}

// rebuild refreshes the lock-free snapshot; call with mu held.
func (h *Hub) rebuild() {
	s := make([]*hubConn, 0, len(h.conns))
	for _, c := range h.conns {
		s = append(s, c)
	}
	h.snap.Store(&s)
}

// relay fans one frame out to every client except the origin. It runs on
// every inbound frame, so it reads the connection snapshot without taking
// the hub lock or allocating.
func (h *Hub) relay(from int64, frame []byte) {
	s := h.snap.Load()
	if s == nil {
		return
	}
	for _, c := range *s {
		if c.id == from {
			continue
		}
		select {
		case c.out <- frame:
			h.relays.Add(1)
		default:
			h.drops.Add(1)
		}
	}
}

func (h *Hub) drop(c *hubConn) {
	h.mu.Lock()
	_, present := h.conns[c.id]
	delete(h.conns, c.id)
	h.rebuild()
	n := len(h.conns)
	h.mu.Unlock()
	c.shut()
	if present {
		h.logf("hub: client %d disconnected (%d online)", c.id, n)
	}
}

// hubConn is one relayed client: reader fans frames in, writer drains the
// bounded outbound queue.
type hubConn struct {
	hub      *Hub
	id       int64
	conn     net.Conn
	out      chan []byte
	gone     chan struct{}
	goneOnce sync.Once
}

func (c *hubConn) shut() {
	c.goneOnce.Do(func() { close(c.gone) })
	c.conn.Close()
}

func (c *hubConn) reader() {
	defer c.hub.wg.Done()
	defer c.hub.drop(c)
	br := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		frame, err := ReadFrame(br)
		if err != nil {
			return
		}
		c.hub.relay(c.id, frame)
	}
}

func (c *hubConn) writer() {
	defer c.hub.wg.Done()
	bw := bufio.NewWriterSize(c.conn, 64<<10)
	for {
		select {
		case f := <-c.out:
			if err := WriteFrame(bw, f); err != nil {
				c.hub.drop(c)
				return
			}
			// Flush opportunistically: drain whatever else is queued first.
			for {
				select {
				case f := <-c.out:
					if err := WriteFrame(bw, f); err != nil {
						c.hub.drop(c)
						return
					}
					continue
				default:
				}
				break
			}
			if err := bw.Flush(); err != nil {
				c.hub.drop(c)
				return
			}
		case <-c.gone:
			return
		}
	}
}

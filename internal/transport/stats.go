package transport

// HubStats is a point-in-time aggregate of every counter a Hub exposes,
// shaped for machine export: cmd/treedoc-serve and cmd/treedoc-load
// publish it as an expvar (JSON over /debug/vars), and the load harness
// snapshots it before/after chaos events to assert envelopes ("frozen
// drops stopped growing", "forwards went to zero after heal"). All
// counters are cumulative since hub start; rates are the consumer's job.
type HubStats struct {
	// Clients is the number of currently connected client conns (all
	// documents plus legacy and mesh conns).
	Clients int
	// Docs is the number of documents with a live relay group.
	Docs int
	// RingEpoch is the live sharding ring's epoch (0 when unsharded).
	RingEpoch uint64
	// Relays, Drops and Unrouted are Hub.Relays/Drops/Unrouted.
	Relays, Drops, Unrouted uint64
	// Forwards is Hub.Forwards (hub-to-hub envelopes sent for non-owned
	// documents).
	Forwards uint64
	// FrozenDrops, HandoffsOut and HandoffsIn are the live-resharding
	// counters (see Hub.FrozenDrops and friends).
	FrozenDrops, HandoffsOut, HandoffsIn uint64
	// SyncBatchFrames and SyncBatchEntries are the delta anti-entropy
	// counters: batched multi-document digest frames received, and the
	// per-document digests they carried (see Hub.SyncBatchFrames).
	SyncBatchFrames, SyncBatchEntries uint64
	// ReplayRoutes and ReplayFallbacks are the directed-answer counters:
	// kindReplay frames delivered to their addressed requester alone, and
	// those broadcast because the target was unknown or dead (see
	// Hub.ReplayRoutes).
	ReplayRoutes, ReplayFallbacks uint64
	// PerDoc is Hub.DocStats: per-document clients/relays/drops.
	PerDoc map[string]DocStats
}

// Stats collects a consistent-enough snapshot of the hub's counters. The
// atomic counters are each read once; the per-document map is taken under
// the hub lock. Safe to call at any frequency — it allocates only the
// PerDoc map.
func (h *Hub) Stats() HubStats {
	s := HubStats{
		RingEpoch:        h.RingEpoch(),
		Relays:           h.Relays(),
		Drops:            h.Drops(),
		Unrouted:         h.Unrouted(),
		Forwards:         h.Forwards(),
		FrozenDrops:      h.FrozenDrops(),
		HandoffsOut:      h.HandoffsOut(),
		HandoffsIn:       h.HandoffsIn(),
		SyncBatchFrames:  h.SyncBatchFrames(),
		SyncBatchEntries: h.SyncBatchEntries(),
		ReplayRoutes:     h.ReplayRoutes(),
		ReplayFallbacks:  h.ReplayFallbacks(),
		PerDoc:           h.DocStats(),
	}
	h.mu.Lock()
	s.Clients = len(h.conns)
	s.Docs = len(h.shards)
	h.mu.Unlock()
	return s
}

// EngineStats is a point-in-time aggregate of one engine's counters,
// shaped for machine export the same way as HubStats: cmd/treedoc-serve
// publishes one per archivist document. The digest counters are the
// delta anti-entropy telemetry — a high Suppressed:Sent ratio is the
// healthy idle state, and ReplayOps/ReplayBytes say what digest answers
// actually cost on the wire.
type EngineStats struct {
	// Drops, WireErrs, Pruned and Applied are the engine's delivery
	// counters (see Engine.Drops and friends).
	Drops, WireErrs, Pruned, Applied uint64
	// SnapshotsSent and SnapshotsInstalled are the snapshot catch-up
	// counters.
	SnapshotsSent, SnapshotsInstalled uint64
	// DigestsSent and DigestsSuppressed are the digest-suppression
	// counters (see Engine.DigestsSuppressed); RepliesSquelched counts
	// digest answers skipped because an in-flight answer on the same link
	// already covered the requester (see Engine.RepliesSquelched).
	DigestsSent, DigestsSuppressed, RepliesSquelched uint64
	// ReplayOps and ReplayBytes are the retransmission counters: retained
	// operations (and the frame bytes carrying them) queued in answer to
	// peers' digests.
	ReplayOps, ReplayBytes uint64
}

// Stats collects a snapshot of the engine's counters; each atomic is
// read once and nothing is locked, so it is safe at any frequency.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Drops:              e.Drops(),
		WireErrs:           e.WireErrs(),
		Pruned:             e.Pruned(),
		Applied:            e.Applied(),
		SnapshotsSent:      e.SnapshotsSent(),
		SnapshotsInstalled: e.SnapshotsInstalled(),
		DigestsSent:        e.DigestsSent(),
		DigestsSuppressed:  e.DigestsSuppressed(),
		RepliesSquelched:   e.RepliesSquelched(),
		ReplayOps:          e.ReplayOps(),
		ReplayBytes:        e.ReplayBytes(),
	}
}

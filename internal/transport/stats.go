package transport

// HubStats is a point-in-time aggregate of every counter a Hub exposes,
// shaped for machine export: cmd/treedoc-serve and cmd/treedoc-load
// publish it as an expvar (JSON over /debug/vars), and the load harness
// snapshots it before/after chaos events to assert envelopes ("frozen
// drops stopped growing", "forwards went to zero after heal"). All
// counters are cumulative since hub start; rates are the consumer's job.
type HubStats struct {
	// Clients is the number of currently connected client conns (all
	// documents plus legacy and mesh conns).
	Clients int
	// Docs is the number of documents with a live relay group.
	Docs int
	// RingEpoch is the live sharding ring's epoch (0 when unsharded).
	RingEpoch uint64
	// Relays, Drops and Unrouted are Hub.Relays/Drops/Unrouted.
	Relays, Drops, Unrouted uint64
	// Forwards is Hub.Forwards (hub-to-hub envelopes sent for non-owned
	// documents).
	Forwards uint64
	// FrozenDrops, HandoffsOut and HandoffsIn are the live-resharding
	// counters (see Hub.FrozenDrops and friends).
	FrozenDrops, HandoffsOut, HandoffsIn uint64
	// PerDoc is Hub.DocStats: per-document clients/relays/drops.
	PerDoc map[string]DocStats
}

// Stats collects a consistent-enough snapshot of the hub's counters. The
// atomic counters are each read once; the per-document map is taken under
// the hub lock. Safe to call at any frequency — it allocates only the
// PerDoc map.
func (h *Hub) Stats() HubStats {
	s := HubStats{
		RingEpoch:   h.RingEpoch(),
		Relays:      h.Relays(),
		Drops:       h.Drops(),
		Unrouted:    h.Unrouted(),
		Forwards:    h.Forwards(),
		FrozenDrops: h.FrozenDrops(),
		HandoffsOut: h.HandoffsOut(),
		HandoffsIn:  h.HandoffsIn(),
		PerDoc:      h.DocStats(),
	}
	h.mu.Lock()
	s.Clients = len(h.conns)
	s.Docs = len(h.shards)
	h.mu.Unlock()
	return s
}

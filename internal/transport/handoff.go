package transport

// Live resharding: epoch-versioned ring membership, hub-to-hub forwarding,
// and online document handoff.
//
// The hub tier was the only static piece of the system — the paper's
// replicas join and leave freely, and the original shard ring was fixed
// flag config. This file makes the serving layer dynamic:
//
//   - A ring is adopted with ConfigureRing (or a kindRingAnnounce from a
//     peer); higher epoch wins. The deterministic diff (shardmap.Moved)
//     tells every hub which local documents the change relocates.
//   - Each relocated document runs the handoff state machine:
//     freeze → stream (kindHandoffBegin, state frames reusing the
//     kindSnap/kindSnapChunk/kindOps machinery, kindHandoffDone) →
//     re-point (epoch-stamped unsolicited redirect to every attached
//     doc-aware client) → release (forward mode for stragglers, ownership
//     callback for the archivist lifecycle).
//   - Hubs keep persistent mesh connections (hubPeer) to other ring
//     members: the handoff stream, ring announces, and the kindForward
//     envelope all travel over them. Forward mode serves a foreign
//     document to clients that cannot reach its owner shard: local frames
//     are relayed locally and forwarded to the owner; the mesh connection
//     subscribes to the document at the owner so its traffic flows back.
//
// Failure envelope: the state stream is a catch-up accelerator, not the
// source of truth. If the new owner is unreachable or dies mid-handoff,
// the old owner unfreezes, re-points its clients anyway, and logs the
// failure — the clients' engines retain their message logs and heal the
// new owner's archivist through ordinary anti-entropy. A frame received
// as kindForward is never re-forwarded, so hubs with disagreeing rings
// cannot loop frames; the disagreeing hub is answered with a ring
// announce instead.

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/treedoc/treedoc/internal/causal"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/transport/shardmap"
	"github.com/treedoc/treedoc/internal/vclock"
)

// HandoffSource supplies a migrating document's durable state: the
// freshest snapshot with its version vector plus the retained operation
// suffix above it. *Engine implements it (see Engine.HandoffState), so an
// archivist registered with Hub.RegisterHandoff streams its whole state to
// the new owner, and the receiving archivist replays zero pre-snapshot
// operations.
type HandoffSource interface {
	Site() ident.SiteID
	HandoffState() (snap []byte, version vclock.VC, suffix []causal.Message, err error)
}

const (
	// meshDialTimeout bounds dialing a peer hub.
	meshDialTimeout = 5 * time.Second
	// handoffStreamTimeout bounds one outbound handoff's streaming phase:
	// past it the document unfreezes and clients are re-pointed regardless
	// (anti-entropy heals whatever the stream did not deliver).
	handoffStreamTimeout = 30 * time.Second
)

// errStaleEpoch marks a ConfigureRing refusal because the offered epoch
// is not above the installed one — the one failure mode callers may
// meaningfully retry with a fresher epoch.
var errStaleEpoch = errors.New("transport: ring epoch not above current")

// ConfigureRing adopts an epoch-versioned ring: self is this hub's
// advertised address (it may be absent from the ring — a resigning hub
// owns nothing afterwards) and ring the full membership. A ring whose
// epoch is not above the current one is refused (same epoch: no-op, so
// repeated announces are idempotent). Adopting a ring over live traffic
// triggers the online handoff state machine for every local document the
// membership change relocates: the document is frozen briefly, its
// registered state source streamed to the new owner over the mesh,
// attached doc-aware clients re-pointed with an epoch-stamped redirect,
// and remaining clients (legacy Dial clients cannot follow redirects)
// served through forward mode. The new ring is announced to every mesh
// peer and every attached doc-aware client.
func (h *Hub) ConfigureRing(self string, ring *shardmap.Ring) error {
	if ring == nil || ring.Epoch == 0 {
		return fmt.Errorf("transport: nil or epoch-0 ring")
	}
	if self == "" {
		return &net.AddrError{Err: "hub has no advertised self address", Addr: self}
	}
	type moveOut struct {
		doc string
		to  string
		s   *docShard
	}
	var outs []moveOut
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return fmt.Errorf("transport: hub closed")
	}
	old := h.ring
	if old != nil && ring.Epoch <= old.Epoch {
		h.mu.Unlock()
		if ring.Epoch == old.Epoch {
			return nil
		}
		return fmt.Errorf("%w (%d vs %d)", errStaleEpoch, ring.Epoch, old.Epoch)
	}
	h.ring, h.self = ring, self
	h.publishRingView()
	// The deterministic diff bounds the scan: only documents inside a
	// moved arc can have changed owner, and every hub and client diffing
	// the same pair of rings computes the same arcs.
	var arcs []shardmap.Arc
	if old != nil {
		arcs = shardmap.Moved(old, ring)
	}
	ownedBefore := func(doc string) bool {
		if old == nil {
			return true // no ring: this hub owned every document
		}
		return old.Owner(doc) == self
	}
	var gained []string
	for doc, s := range h.shards {
		if old != nil && !shardmap.Contains(arcs, doc) {
			// The arc diff says this document did not change owner.
			continue
		}
		owner := ring.Owner(doc)
		if owner == self {
			// Ours now (newly or still): authoritative, no forwarding. A
			// previous forward-mode subscription is detached, or the old
			// owner would keep relaying every straggler frame here twice.
			// A freeze left by an in-flight outbound handoff (a newer epoch
			// moved the document back mid-stream) is lifted immediately —
			// an owned document must not drop frames for the rest of that
			// stream's deadline.
			s.frozen.Store(false)
			if old := s.fwd.Swap(nil); old != nil {
				old.unsubscribe(doc)
			}
			if !ownedBefore(doc) {
				// Acquisition keys off ring adoption, not just the old
				// owner's kindHandoffBegin: if the old owner crashed or its
				// stream never arrives, this hub still brings up an
				// archivist for the served document and anti-entropy heals
				// it from the attached clients.
				gained = append(gained, doc)
			}
			continue
		}
		if ownedBefore(doc) && s.fwd.Load() == nil {
			// Moving off this hub: freeze for the streaming window.
			s.frozen.Store(true)
			outs = append(outs, moveOut{doc: doc, to: owner, s: s})
			continue
		}
		// Already foreign (forward mode, possibly with a stale target):
		// retarget the mesh subscription at the new owner.
		h.retargetLocked(doc, s, owner)
	}
	// A registered state source whose document has no local relay group
	// (its archivist is attached through another path, or nobody is
	// connected) still migrates.
	for doc := range h.sources {
		if h.shards[doc] != nil {
			continue
		}
		if owner := ring.Owner(doc); owner != self && ownedBefore(doc) {
			outs = append(outs, moveOut{doc: doc, to: owner})
		}
	}
	var aware []*hubConn
	for _, c := range h.conns {
		if c.aware.Load() {
			aware = append(aware, c)
		}
	}
	var mesh []*hubPeer
	for _, n := range ring.Nodes {
		if n == self {
			continue
		}
		if p := h.peerLocked(n); p != nil {
			mesh = append(mesh, p)
		}
	}
	h.mu.Unlock()

	if ann, err := EncodeRingAnnounce(ring.Epoch, ring.Nodes); err == nil {
		for _, p := range mesh {
			p.trySend(ann)
		}
		for _, c := range aware {
			select {
			case c.out <- ann:
			default:
			}
		}
	}
	h.logf("hub: adopted ring epoch %d (%d nodes, self %s): %d documents moving off this hub, %d gained",
		ring.Epoch, len(ring.Nodes), self, len(outs), len(gained))
	if h.ownership != nil {
		for _, doc := range gained {
			h.ownership(doc, ring.Epoch, true)
		}
	}
	for _, m := range outs {
		h.wg.Add(1)
		h.handoffWG.Add(1)
		go h.handoffDoc(m.doc, m.to, ring.Epoch, m.s)
	}
	return nil
}

// Resign removes this hub from the ring: it adopts and announces a ring
// one epoch higher without itself, hands off every owned document with
// local state, and waits (bounded by timeout) for the outbound handoffs
// to finish streaming. The hub keeps relaying afterwards — remaining
// clients are served through forward mode — but owns no documents.
func (h *Hub) Resign(timeout time.Duration) error {
	h.mu.Lock()
	ring, self := h.ring, h.self
	h.mu.Unlock()
	if ring == nil || self == "" {
		return fmt.Errorf("transport: hub has no ring to resign from")
	}
	nodes := make([]string, 0, len(ring.Nodes))
	for _, n := range ring.Nodes {
		if n != self {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		return fmt.Errorf("transport: cannot resign from a single-node ring")
	}
	next, err := shardmap.NewRing(ring.Epoch+1, nodes)
	if err != nil {
		return fmt.Errorf("transport: resign: %w", err)
	}
	if err := h.ConfigureRing(self, next); err != nil {
		return err
	}
	done := make(chan struct{})
	go func() {
		h.handoffWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("transport: handoffs still streaming after %v", timeout)
	}
}

// handoffDoc runs one outbound handoff: stream the document's state to
// the new owner, re-point attached doc-aware clients with an epoch-stamped
// redirect, keep stragglers served through forward mode, unfreeze, and
// fire the release callback.
func (h *Hub) handoffDoc(doc, to string, epoch uint64, s *docShard) {
	defer h.wg.Done()
	defer h.handoffWG.Done()
	h.handoffsOut.Add(1)
	start := time.Now()
	p := h.peer(to)
	var streamErr error
	beginSent := false
	if p == nil {
		streamErr = fmt.Errorf("no mesh connection to %s", to)
	} else {
		beginSent, streamErr = h.streamHandoff(p, doc, epoch)
	}
	// Re-point and set up forwarding for whoever stays attached — against
	// the ring as it stands NOW, not the epoch that started this handoff:
	// a newer epoch may have moved the document onward (re-point there
	// instead) or back to this hub (then nothing is re-pointed, no forward
	// mode is installed, and the archivist is not released). The shard may
	// also have been recreated since ConfigureRing's snapshot.
	h.mu.Lock()
	target, curEpoch := to, epoch
	ownedAgain := false
	if h.ring != nil {
		curEpoch = h.ring.Epoch
		if owner := h.ring.Owner(doc); owner == h.self {
			ownedAgain = true
		} else {
			target = owner
		}
	}
	cur := h.shards[doc]
	var aware []*hubConn
	if cur != nil {
		if ownedAgain {
			if old := cur.fwd.Swap(nil); old != nil {
				old.unsubscribe(doc)
			}
		} else {
			for _, c := range cur.conns {
				if c.aware.Load() {
					aware = append(aware, c)
				}
			}
			h.retargetLocked(doc, cur, target)
		}
	}
	h.mu.Unlock()
	if !ownedAgain {
		if resp, err := EncodeHelloResp([]HelloEntry{{Doc: doc, Redirect: target, Epoch: curEpoch}}); err == nil {
			for _, c := range aware {
				select {
				case c.out <- resp:
				default:
				}
			}
		}
	}
	if s != nil {
		s.frozen.Store(false)
	}
	if cur != nil && cur != s {
		cur.frozen.Store(false)
	}
	if ownedAgain {
		h.logf("hub: handoff of doc %q overtaken by ring epoch %d: owned here again, clients not re-pointed", doc, curEpoch)
		return
	}
	// Release only if the new owner at least saw the Begin (its own
	// acquisition hook has run, or ring adoption fired it). If the owner
	// was completely unreachable, keeping the local archivist alive keeps
	// the document durable somewhere: its re-pointed link follows the doc
	// wherever it is relayed, and the registered source can still stream
	// on a later ring change.
	if beginSent && h.ownership != nil {
		h.ownership(doc, epoch, false)
	}
	if streamErr != nil {
		h.logf("hub: handoff of doc %q to %s (epoch %d): state stream failed after %v: %v (anti-entropy heals the new owner)",
			doc, to, epoch, time.Since(start), streamErr)
		return
	}
	h.logf("hub: handoff of doc %q to %s complete in %v (epoch %d, %d clients re-pointed)",
		doc, to, time.Since(start), epoch, len(aware))
}

// streamHandoff sends Begin, the registered source's snapshot + retained
// suffix (reusing the snapshot catch-up frame kinds inside kindHandoffState
// envelopes), and Done, reporting whether the Begin made it onto the
// queue. Sends block into the mesh queue — the receiver's chunk
// reassembly is strictly in-order, so dropping one frame would void the
// sequence — bounded by handoffStreamTimeout overall.
func (h *Hub) streamHandoff(p *hubPeer, doc string, epoch uint64) (beginSent bool, err error) {
	deadline := time.Now().Add(handoffStreamTimeout)
	// The ring rides ahead of the Begin on the same FIFO: adoption's
	// one-shot announce is a lossy trySend, and a receiver still on the
	// old epoch would refuse the handoff as not-its-document.
	h.mu.Lock()
	ring := h.ring
	h.mu.Unlock()
	if ring != nil {
		if ann, err := EncodeRingAnnounce(ring.Epoch, ring.Nodes); err == nil {
			p.send(ann, deadline)
		}
	}
	begin, err := EncodeHandoffBegin(doc, epoch)
	if err != nil {
		return false, err
	}
	if !p.send(begin, deadline) {
		return false, fmt.Errorf("mesh connection to %s lost or timed out", p.addr)
	}
	h.mu.Lock()
	src := h.sources[doc]
	h.mu.Unlock()
	if src != nil {
		if err := h.streamSource(p, doc, src, deadline); err != nil {
			// Close the bracket even on a partial stream: the receiver's
			// consumers tolerate gaps (anti-entropy), and the Done lets it
			// log the handoff as delimited.
			if done, derr := EncodeHandoffDone(doc, epoch); derr == nil {
				p.send(done, deadline)
			}
			return true, err
		}
	}
	done, err := EncodeHandoffDone(doc, epoch)
	if err != nil {
		return true, err
	}
	if !p.send(done, deadline) {
		return true, fmt.Errorf("mesh connection to %s lost before handoff done", p.addr)
	}
	// Queued is not delivered: wait for the writer to put the stream on
	// the wire, so a resigning hub does not exit with the tail still
	// buffered.
	if !p.flush(deadline) {
		return true, fmt.Errorf("mesh connection to %s lost before handoff stream drained", p.addr)
	}
	return true, nil
}

// streamSource streams one source's snapshot and suffix.
func (h *Hub) streamSource(p *hubPeer, doc string, src HandoffSource, deadline time.Time) error {
	snap, version, suffix, err := src.HandoffState()
	if err != nil {
		return fmt.Errorf("handoff source: %w", err)
	}
	site := src.Site()
	sendState := func(inner []byte) error {
		env, err := EncodeHandoffState(doc, inner)
		if err != nil {
			return err
		}
		if !p.send(env, deadline) {
			return fmt.Errorf("mesh connection to %s lost mid-stream", p.addr)
		}
		return nil
	}
	if len(snap) > 0 {
		if len(snap) > snapChunkThreshold {
			total := uint64(len(snap))
			for off := uint64(0); off < total; off += uint64(snapChunkPayload) {
				end := off + uint64(snapChunkPayload)
				if end > total {
					end = total
				}
				chunk, err := EncodeSnapChunk(site, version, total, off, snap[off:end])
				if err != nil {
					return err
				}
				if err := sendState(chunk); err != nil {
					return err
				}
			}
		} else {
			frame, err := EncodeSnapReply(site, version, snap)
			if err != nil {
				return err
			}
			if err := sendState(frame); err != nil {
				return err
			}
		}
	}
	for len(suffix) > 0 {
		n := len(suffix)
		if n > syncChunk {
			n = syncChunk
		}
		chunk := suffix[:n]
		suffix = suffix[n:]
		frame, err := EncodeOps(chunk)
		if err != nil {
			// Oversized chunk (large atoms): one frame per op, as the
			// anti-entropy path does.
			for _, m := range chunk {
				f, err := EncodeOps([]causal.Message{m})
				if err != nil {
					continue
				}
				if err := sendState(f); err != nil {
					return err
				}
			}
			continue
		}
		if err := sendState(frame); err != nil {
			return err
		}
	}
	return nil
}

// handleRingFrame answers ring queries and adopts announces with a higher
// epoch.
func (h *Hub) handleRingFrame(c *hubConn, rf *RingFrame) {
	if rf.IsQuery() {
		h.mu.Lock()
		ring, self := h.ring, h.self
		h.mu.Unlock()
		var resp []byte
		var err error
		switch {
		case ring != nil:
			resp, err = EncodeRingAnnounce(ring.Epoch, ring.Nodes)
		case self != "":
			// No ring yet: a single-hub deployment answers epoch 0 with just
			// itself, which a joiner turns into the epoch-1 two-node ring.
			resp, err = EncodeRingAnnounce(0, []string{self})
		default:
			h.logf("hub: client %d queried the ring but this hub has no advertised self address", c.id)
			return
		}
		if err != nil {
			return
		}
		select {
		case c.out <- resp:
		case <-c.gone:
		}
		return
	}
	h.adoptAnnouncedRing(rf, c.conn.RemoteAddr().String())
	// A stale announce (the sender is behind) is answered with the newer
	// ring: announces gossip both ways, so a hub that missed an epoch
	// heals on its next announce instead of waiting for an operator.
	h.mu.Lock()
	cur := h.ring
	h.mu.Unlock()
	if cur != nil && rf.Epoch < cur.Epoch {
		h.sendRingCorrection(c)
	}
}

// sendRingCorrection pushes the current ring to a connection whose view
// is behind, at most once per second per connection: a busy stale sender
// must not be corrected per frame.
func (h *Hub) sendRingCorrection(c *hubConn) {
	now := time.Now().UnixNano()
	if last := c.lastRingCorrect.Load(); now-last < int64(time.Second) || !c.lastRingCorrect.CompareAndSwap(last, now) {
		return
	}
	h.mu.Lock()
	ring := h.ring
	h.mu.Unlock()
	if ring == nil {
		return
	}
	if ann, err := EncodeRingAnnounce(ring.Epoch, ring.Nodes); err == nil {
		select {
		case c.out <- ann:
		default:
		}
	}
}

// adoptAnnouncedRing installs an announced ring when its epoch is above
// the current one. Continuity is required: an announced ring must keep at
// least one current member (or, when no ring is configured yet, must
// include this hub), so an announce from an unrelated cluster — or one
// that would silently replace the whole membership — is refused rather
// than adopted. This is configuration hygiene, not authentication: the
// wire carries no credentials anywhere in this stack, so hubs and
// clients must share one trust domain (see docs/ARCHITECTURE.md §8).
func (h *Hub) adoptAnnouncedRing(rf *RingFrame, from string) {
	h.mu.Lock()
	self, cur := h.self, h.ring
	h.mu.Unlock()
	if self == "" {
		h.logf("hub: ignoring ring announce epoch %d from %s: no advertised self address", rf.Epoch, from)
		return
	}
	if cur != nil && rf.Epoch <= cur.Epoch {
		return
	}
	ring, err := shardmap.NewRing(rf.Epoch, rf.Nodes)
	if err != nil {
		h.logf("hub: refusing announced ring epoch %d from %s: %v", rf.Epoch, from, err)
		return
	}
	continuous := false
	if cur == nil {
		continuous = ring.Has(self)
	} else {
		for _, n := range cur.Nodes {
			if ring.Has(n) {
				continuous = true
				break
			}
		}
	}
	if !continuous {
		h.logf("hub: refusing announced ring epoch %d from %s: no membership continuity with the current ring", rf.Epoch, from)
		return
	}
	if err := h.ConfigureRing(self, ring); err != nil {
		// A racing adoption of an equal-or-higher epoch: benign.
		h.logf("hub: announced ring epoch %d from %s not adopted: %v", rf.Epoch, from, err)
		return
	}
	h.logf("hub: adopted ring epoch %d announced by %s", rf.Epoch, from)
}

// handleForward relays one hub-to-hub forwarded frame to the local relay
// group (never onward — that is what makes ring disagreement loop-free);
// a forward for a document this hub does not own is answered with the
// current ring so the stale sender re-points.
func (h *Hub) handleForward(c *hubConn, doc string, inner []byte) {
	if _, owned := h.DocOwner(doc); !owned {
		h.sendRingCorrection(c)
	}
	h.relayLocal(c, doc, inner, nil)
}

// handleHandoffBegin prepares this hub to receive a document: the
// ownership callback starts a consumer (an archivist) before any state
// frame is read off this connection — the callback runs synchronously on
// the connection's reader goroutine, so the state stream cannot outrun
// it. A handoff for a document the current ring does not assign to this
// hub is refused (no callback): it is either a stale owner that missed a
// newer epoch — its clients re-point once it catches up — or a hostile
// client trying to make this hub spawn archivists for arbitrary
// documents.
func (h *Hub) handleHandoffBegin(c *hubConn, hb *HandoffBeginFrame) {
	if _, owned := h.DocOwner(hb.Doc); !owned {
		h.logf("hub: refusing handoff of doc %q (epoch %d) from %s: not the owner under the current ring",
			hb.Doc, hb.Epoch, c.conn.RemoteAddr())
		return
	}
	h.handoffsIn.Add(1)
	h.logf("hub: receiving handoff of doc %q (epoch %d) from %s", hb.Doc, hb.Epoch, c.conn.RemoteAddr())
	if h.ownership != nil {
		h.ownership(hb.Doc, hb.Epoch, true)
	}
}

// peer returns the mesh connection to addr, creating it on first use.
func (h *Hub) peer(addr string) *hubPeer {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.peerLocked(addr)
}

// peerLocked is peer with h.mu already held.
//
//treedoc:holds mu
func (h *Hub) peerLocked(addr string) *hubPeer {
	if h.closed || addr == "" || addr == h.self {
		return nil
	}
	if p := h.peers[addr]; p != nil && !p.dead() {
		return p
	}
	p := &hubPeer{
		hub:  h,
		addr: addr,
		out:  make(chan []byte, h.queueDepth),
		gone: make(chan struct{}),
		docs: make(map[string]bool),
	}
	h.peers[addr] = p
	h.wg.Add(1)
	go p.run()
	return p
}

// hubPeer is one persistent outbound mesh connection to a cooperating
// hub: ring announces, forwarded frames and handoff streams go out
// through a bounded queue; inbound frames (the forwarded documents'
// downstream traffic, ring announces) are relayed to local clients only.
type hubPeer struct {
	hub  *Hub
	addr string
	out  chan []byte
	gone chan struct{}

	goneOnce  sync.Once
	mu        sync.Mutex
	docs      map[string]bool // documents subscribed at the peer (forward mode)
	connected bool
	// Digest batching across the mesh, mirroring sessConn's client-side
	// window: forwarded kindSyncReq frames accumulate under batchMu and
	// leave as one forwarded-flagged kindSyncBatch frame per window.
	batchMu    sync.Mutex
	pending    []SyncBatchEntry
	pendingIdx map[string]int
	batchArmed bool
	// enqueued/written count frames accepted into out and frames the
	// writer flushed to the socket: flush() waits for the gap to close, so
	// a handoff stream (and a resigning hub about to exit) knows its
	// frames actually left the process rather than dying in the queue.
	enqueued atomic.Uint64
	written  atomic.Uint64
}

func (p *hubPeer) fail() { p.goneOnce.Do(func() { close(p.gone) }) }

func (p *hubPeer) dead() bool {
	select {
	case <-p.gone:
		return true
	default:
		return false
	}
}

// trySend queues a frame without blocking; a full queue drops it (the
// forwarding path mirrors the relay path's drop-and-heal semantics). The
// enqueue counter is raised before the channel send and rolled back on
// failure, so flush can never observe a queued-but-uncounted frame.
func (p *hubPeer) trySend(frame []byte) bool {
	p.enqueued.Add(1)
	select {
	case p.out <- frame:
		return true
	default:
		p.enqueued.Add(^uint64(0))
		return false
	}
}

// queueDigest holds one forwarded document digest for the mesh batching
// window, reporting false (forward it yourself) when the frame does not
// parse as a digest. A fresher digest for a document already pending
// replaces it; the first digest of a window arms the flush timer.
func (p *hubPeer) queueDigest(doc string, inner []byte) bool {
	decoded, err := DecodeFrame(inner)
	if err != nil {
		return false
	}
	sr, ok := decoded.(*SyncReqFrame)
	if !ok {
		return false
	}
	p.batchMu.Lock()
	if i, ok := p.pendingIdx[doc]; ok {
		p.pending[i] = SyncBatchEntry{Doc: doc, From: sr.From, Clock: sr.Clock}
	} else {
		if p.pendingIdx == nil {
			p.pendingIdx = make(map[string]int)
		}
		p.pendingIdx[doc] = len(p.pending)
		p.pending = append(p.pending, SyncBatchEntry{Doc: doc, From: sr.From, Clock: sr.Clock})
	}
	armed := p.batchArmed
	p.batchArmed = true
	p.batchMu.Unlock()
	if !armed {
		time.AfterFunc(syncBatchWindow, p.flushDigests)
	}
	return true
}

// flushDigests forwards the window's accumulated digests as
// forwarded-flagged kindSyncBatch frames (the receiver relays them to
// its local clients only, so mesh loop freedom holds exactly as for
// kindForward). A single-document window still goes out batched: the
// mesh peer is always a hub from this repository, so there is no legacy
// receiver to stay wire-identical for. A dead peer drops the window —
// the next sync round re-queues fresh digests — and an unencodable batch
// falls back to per-document kindForward envelopes.
func (p *hubPeer) flushDigests() {
	p.batchMu.Lock()
	entries := p.pending
	p.pending = nil
	clear(p.pendingIdx)
	p.batchArmed = false
	p.batchMu.Unlock()
	if len(entries) == 0 || p.dead() {
		return
	}
	for len(entries) > 0 {
		n := len(entries)
		if n > maxSyncBatch {
			n = maxSyncBatch
		}
		chunk := entries[:n]
		entries = entries[n:]
		frame, err := EncodeSyncBatch(chunk, true)
		if err != nil {
			for _, e := range chunk {
				if inner, err := EncodeSyncReq(e.From, e.Clock); err == nil {
					if fwd, err := EncodeForward(e.Doc, inner); err == nil && p.trySend(fwd) {
						p.hub.forwards.Add(1)
					}
				}
			}
			continue
		}
		if p.trySend(frame) {
			p.hub.forwards.Add(uint64(len(chunk)))
		}
	}
}

// send queues a frame, blocking until it is accepted, the peer dies, or
// the deadline passes — the handoff stream path, where a drop would void
// the receiver's in-order reassembly.
func (p *hubPeer) send(frame []byte, deadline time.Time) bool {
	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	p.enqueued.Add(1)
	select {
	case p.out <- frame:
		return true
	case <-p.gone:
		p.enqueued.Add(^uint64(0))
		return false
	case <-t.C:
		p.enqueued.Add(^uint64(0))
		return false
	}
}

// flush waits until the writer has caught up with the enqueue count as
// observed at entry — the queue is FIFO with a single writer, so
// catching up to that snapshot covers this caller's frames; waiting on
// the live counter instead would starve under sustained concurrent
// forwarding. The target is revised downwards when a racing sender's
// optimistic increment rolls back (its frame never queued), so the wait
// cannot hang on frames that do not exist. A resigning hub calls flush
// through streamHandoff before reporting the handoff complete —
// otherwise the process could exit with the stream's tail still queued.
func (p *hubPeer) flush(deadline time.Time) bool {
	target := p.enqueued.Load()
	for p.written.Load() < target {
		if cur := p.enqueued.Load(); cur < target {
			target = cur
		}
		if p.dead() || !time.Now().Before(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

// subscribe records (and, once connected, performs) the attach handshake
// for doc at the peer, so the owner relays the document's traffic back
// over this connection. The subscription is only latched once the hello
// actually made it into the queue — a hello dropped on a full queue must
// leave the next subscribe call free to retry, or the forwarded
// document's return path would be silently missing forever.
func (p *hubPeer) subscribe(doc string) {
	p.mu.Lock()
	if p.docs[doc] {
		p.mu.Unlock()
		return
	}
	if !p.connected {
		// run() flushes pending subscriptions right after connecting.
		p.docs[doc] = true
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	if f, err := EncodeHello([]string{doc}); err == nil && p.trySend(f) {
		p.mu.Lock()
		p.docs[doc] = true
		p.mu.Unlock()
	}
}

// unsubscribe detaches a forward-mode subscription that is no longer
// wanted (the document became locally owned, or moved to another hub).
func (p *hubPeer) unsubscribe(doc string) {
	p.mu.Lock()
	had := p.docs[doc]
	delete(p.docs, doc)
	connected := p.connected
	p.mu.Unlock()
	if !had || !connected || p.dead() {
		return
	}
	if f, err := EncodeDetach([]string{doc}); err == nil {
		p.trySend(f)
	}
}

// run dials the peer and pumps the connection: a writer goroutine drains
// the queue, a closer tears the link down on failure, and the reader
// relays inbound frames to local clients.
func (p *hubPeer) run() {
	defer p.hub.wg.Done()
	link, err := DialTimeout(p.addr, meshDialTimeout)
	if err != nil {
		p.hub.logf("hub: mesh dial %s: %v", p.addr, err)
		p.fail()
		return
	}
	p.hub.wg.Add(2)
	go func() {
		defer p.hub.wg.Done()
		<-p.gone
		link.Close()
	}()
	go func() {
		defer p.hub.wg.Done()
		for {
			select {
			case f := <-p.out:
				if err := link.Send(f); err != nil {
					p.fail()
					return
				}
				p.written.Add(1)
			case <-p.gone:
				return
			}
		}
	}()
	// The mesh connection carries no default-document traffic, and any
	// subscriptions recorded while dialing are flushed now. The current
	// ring rides along: a peer that missed the one-shot announce at
	// adoption (unreachable, full queue) catches up whenever a mesh
	// connection to it comes up.
	if f, err := EncodeDetach([]string{DefaultDoc}); err == nil {
		p.trySend(f)
	}
	p.hub.mu.Lock()
	ring := p.hub.ring
	p.hub.mu.Unlock()
	if ring != nil {
		if ann, err := EncodeRingAnnounce(ring.Epoch, ring.Nodes); err == nil {
			p.trySend(ann)
		}
	}
	p.mu.Lock()
	p.connected = true
	pending := make([]string, 0, len(p.docs))
	for doc := range p.docs {
		pending = append(pending, doc)
	}
	p.mu.Unlock()
	// Blocking sends with a deadline: the docs are already latched as
	// subscribed, so a lossy flush here would silently kill each
	// document's return path; on failure, unlatch so a later subscribe
	// retries.
	helloDeadline := time.Now().Add(meshDialTimeout)
	for _, doc := range pending {
		f, err := EncodeHello([]string{doc})
		if err != nil || !p.send(f, helloDeadline) {
			p.mu.Lock()
			delete(p.docs, doc)
			p.mu.Unlock()
		}
	}
	p.hub.logf("hub: mesh connection to %s up", p.addr)
	for {
		frame, err := link.Recv()
		if err != nil {
			p.fail()
			p.hub.logf("hub: mesh connection to %s down: %v", p.addr, err)
			return
		}
		p.handleInbound(frame)
	}
}

// handleInbound processes one frame from the peer: forwarded documents'
// downstream traffic is relayed to local clients only (never forwarded
// onward), ring announces are adopted, and unsolicited redirects retarget
// the forward subscriptions.
func (p *hubPeer) handleInbound(frame []byte) {
	switch frame[0] {
	case kindDocFrame:
		doc, inner, err := SplitDocFrame(frame)
		if err != nil {
			p.hub.unrouted.Add(1)
			return
		}
		p.hub.relayLocal(nil, doc, inner, frame)
	case kindRingAnnounce:
		decoded, err := DecodeFrame(frame)
		if err != nil {
			return
		}
		if rf := decoded.(*RingFrame); !rf.IsQuery() {
			p.hub.adoptAnnouncedRing(rf, p.addr)
		}
	case kindHelloResp:
		decoded, err := DecodeFrame(frame)
		if err != nil {
			return
		}
		for _, e := range decoded.(*HelloRespFrame).Entries {
			if e.Redirect != "" {
				p.hub.retargetForward(e.Doc, e.Redirect)
			}
		}
	default:
		// Bare frames (the peer believes this connection is legacy until
		// the hello lands) and anything else: ignore. Forwarded documents
		// re-sync via their clients' anti-entropy.
	}
}

// retargetLocked points s's forward subscription at owner's mesh peer,
// releasing the previous subscription; call with h.mu held. It is the
// single implementation of the subscribe/swap/unsubscribe dance every
// retarget path shares.
func (h *Hub) retargetLocked(doc string, s *docShard, owner string) {
	p := h.peerLocked(owner)
	if p == nil {
		return
	}
	p.subscribe(doc)
	if old := s.fwd.Swap(p); old != nil && old != p {
		old.unsubscribe(doc)
	}
}

// retargetForward moves a forwarded document's subscription to a new
// owner (the previous owner answered with a redirect: the ring moved).
func (h *Hub) retargetForward(doc, owner string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.shards[doc]
	if s == nil || s.fwd.Load() == nil {
		return
	}
	h.retargetLocked(doc, s, owner)
}

// refreshForward replaces a dead forward-mode mesh connection, re-dialing
// the owner and re-subscribing. Callers single-flight it via s.refreshing.
func (h *Hub) refreshForward(doc string, s *docShard, addr string) {
	defer s.refreshing.Store(false)
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := s.fwd.Load()
	if cur == nil || !cur.dead() {
		return // already refreshed by a racing caller
	}
	h.retargetLocked(doc, s, addr)
}

// QueryRing dials a hub and asks for its current ring. A hub without a
// configured ring answers epoch 0 with its own advertised address; a hub
// that does not know its own address cannot answer, and the query times
// out.
func QueryRing(addr string, timeout time.Duration) (*RingFrame, error) {
	link, err := DialTimeout(addr, timeout)
	if err != nil {
		return nil, err
	}
	defer link.Close()
	if err := link.conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	q, err := EncodeRingAnnounce(0, nil)
	if err != nil {
		return nil, err
	}
	if err := link.Send(q); err != nil {
		return nil, err
	}
	for {
		frame, err := link.Recv()
		if err != nil {
			return nil, fmt.Errorf("transport: ring query to %s: %w", addr, err)
		}
		if frame[0] != kindRingAnnounce {
			continue // relay noise (the hub attaches us to the default doc)
		}
		decoded, err := DecodeFrame(frame)
		if err != nil {
			continue
		}
		if rf := decoded.(*RingFrame); !rf.IsQuery() {
			return rf, nil
		}
	}
}

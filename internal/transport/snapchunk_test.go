package transport

// End-to-end chunked snapshot catch-up: the chunking knobs are shrunk so
// an ordinary test document overflows the (scaled-down) single-frame
// limit, and a late joiner must reassemble the snapshot from chunk
// frames before installing it.

import (
	"testing"
	"time"

	"github.com/treedoc/treedoc/internal/commit"
	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// snapDataLen reads the actor-owned barrier snapshot size.
func snapDataLen(e *Engine) int {
	ch := make(chan int, 1)
	if !e.ctl(func() { ch <- len(e.snapData) }) {
		return -1
	}
	select {
	case n := <-ch:
		return n
	case <-e.done:
		return -1
	}
}

func TestChunkedSnapshotCatchup(t *testing.T) {
	defer func(th, pay int) {
		snapChunkThreshold, snapChunkPayload = th, pay
	}(snapChunkThreshold, snapChunkPayload)
	snapChunkThreshold = 512
	snapChunkPayload = 128

	server := newSnapReplica(t, 1)
	serverEng, err := NewEngine(1, server,
		WithSyncInterval(15*time.Millisecond),
		WithCompactEvery(32),
		WithSnapshotThreshold(16))
	if err != nil {
		t.Fatal(err)
	}
	defer serverEng.Stop()
	// Enough history that the snapshot clears the shrunken threshold and
	// the joiner's gap clears the snapshot threshold.
	var ops int
	for i := 0; i < 120; i++ {
		op := server.insertAt(t, i, "chunked snapshot payload")
		if err := serverEng.Broadcast(op); err != nil {
			t.Fatal(err)
		}
		ops++
	}
	// Wait for compaction to truncate the retained history behind the
	// barrier: the chunked snapshot must be the joiner's only way to the
	// truncated prefix, not an optimisation it can skip.
	truncDeadline := time.Now().Add(30 * time.Second)
	for msgLogLen(serverEng) >= ops {
		if time.Now().After(truncDeadline) {
			t.Fatalf("server never truncated its message log (%d retained)", msgLogLen(serverEng))
		}
		time.Sleep(15 * time.Millisecond)
	}

	joiner := newSnapReplica(t, 2)
	joinerEng, err := NewEngine(2, joiner,
		WithSyncInterval(15*time.Millisecond),
		WithSnapshotThreshold(16))
	if err != nil {
		t.Fatal(err)
	}
	defer joinerEng.Stop()

	a, b := ChanPair(256)
	serverEng.Connect(a)
	joinerEng.Connect(b)

	deadline := time.Now().Add(30 * time.Second)
	want := server.content()
	for joiner.content() != want || joinerEng.Clock().Get(1) != uint64(ops) {
		if time.Now().After(deadline) {
			t.Fatalf("joiner did not converge: len %d of %d, %d snapshots installed",
				joiner.length(), server.length(), joinerEng.SnapshotsInstalled())
		}
		time.Sleep(15 * time.Millisecond)
	}
	if got := joinerEng.SnapshotsInstalled(); got == 0 {
		t.Fatal("joiner converged without installing a snapshot")
	}
	if n := snapDataLen(serverEng); n >= 0 && n <= snapChunkThreshold {
		t.Fatalf("barrier snapshot is %d bytes; the test did not exercise the chunked path (threshold %d)",
			n, snapChunkThreshold)
	}
	if err := joiner.check(); err != nil {
		t.Fatal(err)
	}
	if err := joinerEng.Err(); err != nil {
		t.Fatal(err)
	}
	if err := serverEng.Err(); err != nil {
		t.Fatal(err)
	}
}

// flatReplica extends the snapshot test replica with the Flattener
// contract (no-op region locks suffice for engine-level tests).
type flatReplica struct {
	*snapReplica
}

func (r *flatReplica) Version() vclock.VC {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doc.Version()
}

func (r *flatReplica) FlattenOp(path ident.Path, afterSeq uint64) (core.Op, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doc.FlattenOp(path, afterSeq)
}

func (r *flatReplica) ColdestSubtree(revisions int64, minNodes int) ident.Path {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doc.ColdestSubtree(revisions, minNodes)
}

func (r *flatReplica) LockRegion(uint64, ident.Path) {}
func (r *flatReplica) UnlockRegion(uint64)           {}

var _ Flattener = (*flatReplica)(nil)

// TestFlattenLockReleasedBySnapshotAbsorption pins the recovery path for
// a Yes-vote lock whose committed OpFlatten never arrives as an
// operation frame: once a commit decision has named the op's stamp, the
// covered-lock sweep must release the lock as soon as the local clock
// covers it — e.g. after an installed snapshot absorbed the flatten —
// instead of freezing the region forever.
func TestFlattenLockReleasedBySnapshotAbsorption(t *testing.T) {
	r := &flatReplica{snapReplica: newSnapReplica(t, 2)}
	e, err := NewEngine(2, r)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	done := make(chan struct{})
	e.ctl(func() {
		defer close(done)
		// A committed round at coordinator site 7 whose op frame was lost:
		// this participant holds a commit-known lock for op seq 3.
		tx := commit.TxID{Coord: 7, N: 41}
		e.fl.locks[tx] = &heldLock{tok: 1, obs: e.buf.Clock(), lastPing: e.sinceStart(), commitKnown: true, opSeq: 3}
		e.releaseCoveredLocks()
		if len(e.fl.locks) != 1 {
			t.Error("lock released before the clock covered the flatten")
		}
		// The flatten epoch arrives inside a snapshot: the clock advances
		// past (7, 3) without the op ever being delivered.
		e.buf.Advance(vclock.VC{7: 3})
		e.releaseCoveredLocks()
		if len(e.fl.locks) != 0 {
			t.Error("lock leaked after the clock covered the committed flatten")
		}
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("actor closure never ran")
	}
}

// TestSnapChunkAssemblyResists exercises the reassembly guards directly:
// stale chunks, gaps, and mismatched totals void the assembly instead of
// corrupting it.
func TestSnapChunkAssemblyResists(t *testing.T) {
	r := newSnapReplica(t, 9)
	e, err := NewEngine(9, r)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	version := vclock.VC{3: 5}
	done := make(chan struct{})
	e.ctl(func() {
		defer close(done)
		// A mid-stream chunk with no assembly in progress is dropped.
		e.handleSnapChunk(&SnapChunkFrame{From: 3, Version: version, Total: 100, Offset: 50, Data: make([]byte, 10)})
		if len(e.snapAsm) != 0 {
			t.Error("mid-stream chunk started an assembly")
		}
		// A proper start is retained…
		e.handleSnapChunk(&SnapChunkFrame{From: 3, Version: version, Total: 100, Offset: 0, Data: make([]byte, 40)})
		if len(e.snapAsm) != 1 {
			t.Error("offset-0 chunk did not start an assembly")
		}
		// …a gap voids it…
		e.handleSnapChunk(&SnapChunkFrame{From: 3, Version: version, Total: 100, Offset: 80, Data: make([]byte, 10)})
		if len(e.snapAsm) != 0 {
			t.Error("gapped chunk did not void the assembly")
		}
		// …and a mismatched total on a restart voids it too.
		e.handleSnapChunk(&SnapChunkFrame{From: 3, Version: version, Total: 100, Offset: 0, Data: make([]byte, 40)})
		e.handleSnapChunk(&SnapChunkFrame{From: 3, Version: version, Total: 90, Offset: 40, Data: make([]byte, 10)})
		if len(e.snapAsm) != 0 {
			t.Error("total mismatch did not void the assembly")
		}
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("actor closure never ran")
	}
}

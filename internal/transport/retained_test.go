package transport

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/treedoc/treedoc/internal/causal"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// oracleMissing is the pre-index implementation the run index replaced: a
// full scan of the retained log in delivery order. The index must agree
// with it on every clock, including across truncation barriers.
func oracleMissing(msgs []causal.Message, clock vclock.VC) []causal.Message {
	var out []causal.Message
	for _, m := range msgs {
		if m.TS.Get(m.From) > clock.Get(m.From) {
			out = append(out, m)
		}
	}
	return out
}

func oracleCount(msgs []causal.Message, clock vclock.VC) int {
	n := 0
	for _, m := range msgs {
		if m.TS.Get(m.From) > clock.Get(m.From) {
			n++
		}
	}
	return n
}

// TestRetainedLogMatchesOracle drives a RetainedLog through randomized
// interleaved appends and truncations — the compaction and floor-promotion
// barriers — and checks AppendMissing and CountAbove against the full-scan
// oracle at every step, for clocks behind, at, and ahead of the log.
func TestRetainedLogMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const sites = 5
	var log RetainedLog
	seqs := make(map[ident.SiteID]uint64)

	check := func(step int, clock vclock.VC) {
		t.Helper()
		want := oracleMissing(log.Msgs(), clock)
		got := log.AppendMissing(nil, clock)
		if len(want) == 0 && len(got) == 0 {
			// reflect.DeepEqual distinguishes nil from empty; both are fine.
		} else if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: AppendMissing disagrees with oracle for clock %v:\n got %d msgs\nwant %d msgs", step, clock, len(got), len(want))
		}
		if g, w := log.CountAbove(clock), oracleCount(log.Msgs(), clock); g != w {
			t.Fatalf("step %d: CountAbove = %d, oracle = %d for clock %v", step, g, w, clock)
		}
	}

	randClock := func() vclock.VC {
		clock := vclock.New()
		for s, q := range seqs {
			switch rng.Intn(4) {
			case 0: // well behind
				clock[s] = q / 2
			case 1: // just behind
				if q > 0 {
					clock[s] = q - 1
				}
			case 2: // exactly caught up
				clock[s] = q
			case 3: // ahead (a peer that heard sites we truncated past)
				clock[s] = q + uint64(rng.Intn(3))
			}
		}
		return clock
	}

	for step := 0; step < 2000; step++ {
		switch {
		case step%97 == 96:
			// Truncation barrier: floor covers a random prefix of each
			// site's sequence space, like an adopted snapshot version.
			floor := vclock.New()
			for s, q := range seqs {
				floor[s] = uint64(rng.Int63n(int64(q) + 1))
			}
			log.Truncate(floor)
			// After the barrier the index is rebuilt; everything must
			// still agree, including for the floor itself.
			check(step, floor)
		default:
			// Biased interleave: bursts from one site split runs rarely,
			// scattered singles split them constantly.
			site := ident.SiteID(rng.Intn(sites) + 1)
			burst := 1 + rng.Intn(8)
			for i := 0; i < burst; i++ {
				seqs[site]++
				ts := vclock.New()
				ts[site] = seqs[site]
				// Salt in other sites' entries: only the sender's own
				// entry may matter to the index.
				for o, q := range seqs {
					if o != site && rng.Intn(3) == 0 {
						ts[o] = q
					}
				}
				log.Append(causal.Message{From: site, TS: ts})
			}
		}
		if step%13 == 0 {
			check(step, randClock())
		}
	}

	// Full truncation: a floor covering everything empties the log.
	floor := vclock.New()
	for s, q := range seqs {
		floor[s] = q
	}
	log.Truncate(floor)
	if log.Len() != 0 {
		t.Fatalf("floor covering everything left %d messages retained", log.Len())
	}
	check(-1, vclock.New())
}

// TestRetainedLogSpanOrder asserts the delivery-order guarantee digest
// answers rely on: missing messages come back sorted by log position, so a
// receiver replaying them in order never parks them in its pending buffer.
func TestRetainedLogSpanOrder(t *testing.T) {
	var log RetainedLog
	// Interleave two sites so each ends up with several runs.
	for i := 0; i < 100; i++ {
		site := ident.SiteID(i%2 + 1)
		seq := uint64(i/2 + 1)
		log.Append(causal.Message{From: site, TS: vclock.VC{site: seq}})
	}
	got := log.AppendMissing(nil, vclock.VC{1: 10, 2: 20})
	idx := 0
	for _, m := range log.Msgs() {
		if m.TS.Get(m.From) > (vclock.VC{1: 10, 2: 20}).Get(m.From) {
			if got[idx].From != m.From || got[idx].TS.Get(m.From) != m.TS.Get(m.From) {
				t.Fatalf("answer out of delivery order at %d", idx)
			}
			idx++
		}
	}
	if idx != len(got) {
		t.Fatalf("answer carried %d messages, oracle %d", len(got), idx)
	}
}

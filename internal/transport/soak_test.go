package transport_test

// Soak tests: the satellite headline for this subsystem. N writer
// goroutines splice concurrently on TextBuffer replicas wired through the
// real transport — an in-process channel mesh and a TCP loopback hub (the
// cmd/treedoc-serve relay) — then the test quiesces and asserts
// byte-identical convergence and structural invariants. Run under
// `go test -race`; this is the first place in the repository where
// convergence must hold across genuine parallelism rather than the
// discrete-event simulator.

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/treedoc/treedoc"
)

const (
	soakWriters   = 4
	soakOpsTarget = 520 // per writer; 4×520 = 2080 ops ≥ the 2,000 floor
)

type soakSite struct {
	id  treedoc.SiteID
	buf *treedoc.TextBuffer
	eng *treedoc.Engine
}

func newSoakSite(t testing.TB, id treedoc.SiteID) *soakSite {
	t.Helper()
	buf, err := treedoc.NewTextBuffer(treedoc.WithSite(id))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := treedoc.NewEngine(id, buf,
		treedoc.WithSyncInterval(15*time.Millisecond),
		treedoc.WithBatchSize(64),
		treedoc.WithQueueDepth(256),
	)
	if err != nil {
		t.Fatal(err)
	}
	return &soakSite{id: id, buf: buf, eng: eng}
}

// write runs one replica's editor: random inserts (with occasional
// multi-rune pastes) and deletes until at least soakOpsTarget operations
// have been broadcast. It returns the exact operation count, which becomes
// the site's expected vector-clock entry.
func (s *soakSite) write(t testing.TB, seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"a", "xy", "lorem", "ipsum®", "αβγ", "treedoc!"}
	var sent uint64
	for sent < soakOpsTarget {
		n := s.buf.Len()
		var ops []treedoc.Op
		var err error
		switch {
		case n > 0 && rng.Intn(4) == 0:
			del := 1 + rng.Intn(2)
			off := rng.Intn(n)
			if off+del > n {
				del = n - off
			}
			ops, err = s.buf.Delete(off, del)
		default:
			ops, err = s.buf.Insert(rng.Intn(n+1), words[rng.Intn(len(words))])
		}
		if errors.Is(err, treedoc.ErrOutOfRange) {
			// A remote delete shrank the buffer between Len and Splice;
			// retry with fresh offsets, as a live editor would.
			continue
		}
		if err != nil {
			t.Errorf("site %d: %v", s.id, err)
			return sent
		}
		if err := s.eng.Broadcast(ops...); err != nil {
			t.Errorf("site %d: %v", s.id, err)
			return sent
		}
		sent += uint64(len(ops))
	}
	return sent
}

// runWriters drives one writer goroutine per site and returns the exact
// per-site operation counts.
func runWriters(t *testing.T, sites []*soakSite, seedBase int64) map[treedoc.SiteID]uint64 {
	t.Helper()
	counts := make([]uint64, len(sites))
	var wg sync.WaitGroup
	for i, s := range sites {
		wg.Add(1)
		go func(i int, s *soakSite) {
			defer wg.Done()
			counts[i] = s.write(t, seedBase+int64(i))
		}(i, s)
	}
	wg.Wait()
	out := make(map[treedoc.SiteID]uint64, len(sites))
	for i, s := range sites {
		out[s.id] = counts[i]
	}
	return out
}

// waitQuiesced polls until every engine's clock matches the exact per-site
// operation counts (sites with zero count must be absent from the clock),
// dumping per-site diagnostics and failing at the deadline.
func waitQuiesced(t testing.TB, sites []*soakSite, counts map[treedoc.SiteID]uint64, timeout time.Duration) {
	t.Helper()
	nonzero := 0
	for _, n := range counts {
		if n > 0 {
			nonzero++
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		done := true
	check:
		for _, s := range sites {
			clock := s.eng.Clock()
			if len(clock) != nonzero {
				done = false
				break
			}
			for id, n := range counts {
				if clock.Get(id) != n {
					done = false
					break check
				}
			}
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			for _, s := range sites {
				t.Logf("site %d clock %v drops %d wireErrs %d",
					s.id, s.eng.Clock(), s.eng.Drops(), s.eng.WireErrs())
			}
			t.Fatal("replicas did not quiesce within deadline")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// soak drives the writers, waits for quiescence, and asserts convergence.
func soak(t *testing.T, sites []*soakSite) {
	t.Helper()
	counts := runWriters(t, sites, 1000)
	if t.Failed() {
		return
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	t.Logf("%d writers broadcast %d ops total", len(sites), total)
	waitQuiesced(t, sites, counts, 90*time.Second)

	want := sites[0].buf.String()
	for _, s := range sites[1:] {
		if got := s.buf.String(); got != want {
			t.Fatalf("site %d diverged after quiescence:\n got %d bytes %q...\nwant %d bytes %q...",
				s.id, len(got), head(got), len(want), head(want))
		}
	}
	for _, s := range sites {
		if err := s.buf.Doc().Check(); err != nil {
			t.Fatalf("site %d invariants: %v", s.id, err)
		}
		if err := s.eng.Err(); err != nil {
			t.Fatalf("site %d apply error: %v", s.id, err)
		}
	}
}

func head(s string) string {
	if len(s) > 48 {
		return s[:48]
	}
	return s
}

func stopSites(sites []*soakSite) {
	for _, s := range sites {
		s.eng.Stop()
	}
}

// TestSoakConvergenceChannelMesh wires every pair of replicas with an
// in-process channel link (full mesh) and soaks it.
func TestSoakConvergenceChannelMesh(t *testing.T) {
	sites := make([]*soakSite, soakWriters)
	for i := range sites {
		sites[i] = newSoakSite(t, treedoc.SiteID(i+1))
	}
	defer stopSites(sites)
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			a, b := treedoc.NewChanPair(128)
			sites[i].eng.Connect(a)
			sites[j].eng.Connect(b)
		}
	}
	soak(t, sites)
}

// TestSoakConvergenceTCPHub routes every replica through a real TCP
// loopback connection to the cmd/treedoc-serve relay hub (ListenHub is the
// hub that binary runs).
func TestSoakConvergenceTCPHub(t *testing.T) {
	hub, err := treedoc.ListenHub("127.0.0.1:0", treedoc.WithHubQueueDepth(512))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	sites := make([]*soakSite, soakWriters)
	for i := range sites {
		sites[i] = newSoakSite(t, treedoc.SiteID(i+1))
	}
	defer stopSites(sites)
	for _, s := range sites {
		link, err := treedoc.Dial(hub.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		s.eng.Connect(link)
	}
	soak(t, sites)
	t.Logf("hub relayed %d frames, dropped %d", hub.Relays(), hub.Drops())
	if hub.Relays() == 0 {
		t.Fatal("hub relayed nothing; traffic bypassed TCP")
	}
}

// TestSoakLateJoinerTCP starts a fifth replica after the storm and makes
// sure anti-entropy alone carries it to the same bytes.
func TestSoakLateJoinerTCP(t *testing.T) {
	hub, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	sites := make([]*soakSite, soakWriters)
	for i := range sites {
		sites[i] = newSoakSite(t, treedoc.SiteID(i+1))
		link, err := treedoc.Dial(hub.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		sites[i].eng.Connect(link)
	}
	defer stopSites(sites)

	counts := runWriters(t, sites, 2000)
	if t.Failed() {
		return
	}

	late := newSoakSite(t, treedoc.SiteID(soakWriters+1))
	link, err := treedoc.Dial(hub.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	late.eng.Connect(link)
	defer late.eng.Stop()
	counts[late.id] = 0 // the late joiner only reads

	all := append(append([]*soakSite(nil), sites...), late)
	waitQuiesced(t, all, counts, 90*time.Second)
	if got, want := late.buf.String(), sites[0].buf.String(); got != want {
		t.Fatalf("late joiner diverged: %d vs %d runes", late.buf.Len(), sites[0].buf.Len())
	}
	if err := late.buf.Doc().Check(); err != nil {
		t.Fatal(err)
	}
}

package transport

import (
	"encoding/binary"
	"sort"

	"github.com/treedoc/treedoc/internal/causal"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// siteRun is one contiguous stretch of the retained log holding messages
// from a single site with consecutive sequence numbers: msgs[start:start+n]
// carries seqs [firstSeq, firstSeq+n). Runs split only when another site's
// message interleaves, so a mostly-single-writer document indexes its whole
// log in a handful of runs.
type siteRun struct {
	start    int
	n        int
	firstSeq uint64
}

// span is one half-open window [start, start+n) of the retained log, the
// unit a digest answer is assembled from.
type span struct {
	start, n int
}

// RetainedLog is the engine's anti-entropy retention buffer: every stamped
// or delivered message in causal-delivery order, plus a per-site index of
// seq-sorted run offsets maintained incrementally on append. Answering a
// digest is a binary search per site followed by contiguous suffix slices,
// instead of a scan of the whole log.
//
// The zero value is ready to use. RetainedLog is not safe for concurrent
// use; inside the engine every access happens on the actor goroutine.
type RetainedLog struct {
	msgs []causal.Message
	runs map[ident.SiteID][]siteRun
	// settled[0] is the log length at the most recent Settle call,
	// settled[1] the length at the one before. Everything below
	// settled[1] has been retained for at least one full sync interval,
	// which is the replay horizon: younger messages are presumed still
	// in flight on the normal relay path, and retransmitting them would
	// duplicate the live stream.
	settled [2]int
}

// Len returns the number of retained messages.
func (r *RetainedLog) Len() int { return len(r.msgs) }

// Msgs returns the retained messages in causal-delivery order. The slice
// is owned by the log; callers must not mutate or retain it across Append
// or Truncate.
func (r *RetainedLog) Msgs() []causal.Message { return r.msgs }

// Settle advances the replay horizon: the engine calls it once per sync
// tick, so SettledLen lags the head by one to two full intervals.
func (r *RetainedLog) Settle() {
	r.settled[1] = r.settled[0]
	r.settled[0] = len(r.msgs)
}

// SettledLen returns how many leading messages have been retained since
// before the previous Settle call — the prefix old enough to retransmit
// without racing the live relay stream.
func (r *RetainedLog) SettledLen() int { return r.settled[1] }

// Append retains one message, extending the site's last run when the
// message lands directly after it (the common case: a flushed local batch
// or a delivered remote run appends positionally and sequentially).
func (r *RetainedLog) Append(m causal.Message) {
	if r.runs == nil {
		r.runs = make(map[ident.SiteID][]siteRun)
	}
	seq := m.TS.Get(m.From)
	rs := r.runs[m.From]
	if k := len(rs) - 1; k >= 0 && rs[k].start+rs[k].n == len(r.msgs) && rs[k].firstSeq+uint64(rs[k].n) == seq {
		rs[k].n++
	} else {
		rs = append(rs, siteRun{start: len(r.msgs), n: 1, firstSeq: seq})
	}
	r.runs[m.From] = rs
	r.msgs = append(r.msgs, m)
}

// Truncate drops every message the floor covers, releasing the tail for GC
// and rebuilding the per-site index over the survivors. Truncation runs
// once per compaction or floor promotion — rare next to appends and digest
// answers — so the O(len) rebuild is the right trade against carrying
// tombstones in every binary search.
func (r *RetainedLog) Truncate(floor vclock.VC) {
	kept := r.msgs[:0]
	for _, m := range r.msgs {
		if m.TS.Get(m.From) > floor.Get(m.From) {
			kept = append(kept, m)
		}
	}
	removed := len(r.msgs) - len(kept)
	for i := len(kept); i < len(r.msgs); i++ {
		r.msgs[i] = causal.Message{}
	}
	r.msgs = kept
	// Shift the settle marks by the total removed count. A survivor at old
	// position p moves down by at most that much, so the shifted marks
	// never cover a message younger than the one they covered before —
	// the horizon only errs toward retransmitting less.
	for i := range r.settled {
		if r.settled[i] -= removed; r.settled[i] < 0 {
			r.settled[i] = 0
		}
	}
	for s := range r.runs {
		delete(r.runs, s)
	}
	for i, m := range r.msgs {
		seq := m.TS.Get(m.From)
		rs := r.runs[m.From]
		if k := len(rs) - 1; k >= 0 && rs[k].start+rs[k].n == i && rs[k].firstSeq+uint64(rs[k].n) == seq {
			rs[k].n++
		} else {
			rs = append(rs, siteRun{start: i, n: 1, firstSeq: seq})
		}
		r.runs[m.From] = rs
	}
}

// missingSpans appends to dst the log windows holding every message the
// clock does not cover among the first limit retained messages, sorted by
// log position — which is causal-delivery order, so a receiver replaying
// the spans in order never builds a pending backlog it would otherwise
// prune. Callers pass Len() for everything (state transfer) or
// SettledLen() for anti-entropy answers, which must not duplicate frames
// still in flight on the relay path. Cost is O(sites × log runs) for the
// searches plus O(spans log spans) for the ordering; the log length never
// appears.
func (r *RetainedLog) missingSpans(dst []span, clock vclock.VC, limit int) []span {
	for site, rs := range r.runs {
		c := clock.Get(site)
		last := rs[len(rs)-1]
		if last.firstSeq+uint64(last.n)-1 <= c {
			continue // clock covers everything retained from this site
		}
		// First run still holding a seq above the clock.
		i := sort.Search(len(rs), func(i int) bool {
			return rs[i].firstSeq+uint64(rs[i].n)-1 > c
		})
		// That run may be partially covered: skip the covered prefix.
		run := rs[i]
		off := 0
		if run.firstSeq <= c {
			off = int(c + 1 - run.firstSeq)
		}
		// A site's runs are position-ordered, so the horizon clips the
		// current window and ends the site.
		if sp := clipSpan(span{start: run.start + off, n: run.n - off}, limit); sp.n > 0 {
			dst = append(dst, sp)
		} else {
			continue
		}
		for _, run := range rs[i+1:] {
			sp := clipSpan(span{start: run.start, n: run.n}, limit)
			if sp.n == 0 {
				break
			}
			dst = append(dst, sp)
		}
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i].start < dst[j].start })
	return dst
}

// clipSpan trims a span to log positions below limit.
func clipSpan(sp span, limit int) span {
	if sp.start >= limit {
		return span{}
	}
	if sp.start+sp.n > limit {
		sp.n = limit - sp.start
	}
	return sp
}

// AppendMissing appends to dst every retained message the clock does not
// cover, in causal-delivery order, and returns the extended slice. It
// ignores the settle horizon: state transfer must carry everything.
func (r *RetainedLog) AppendMissing(dst []causal.Message, clock vclock.VC) []causal.Message {
	for _, sp := range r.missingSpans(nil, clock, len(r.msgs)) {
		dst = append(dst, r.msgs[sp.start:sp.start+sp.n]...)
	}
	return dst
}

// CountAbove returns how many retained messages the version does not
// cover — the barrier adoption recount — without touching the messages
// themselves.
func (r *RetainedLog) CountAbove(version vclock.VC) int {
	n := 0
	for site, rs := range r.runs {
		c := version.Get(site)
		for _, run := range rs {
			top := run.firstSeq + uint64(run.n) - 1
			if top <= c {
				continue
			}
			missing := run.n
			if run.firstSeq <= c {
				missing = int(top - c)
			}
			n += missing
		}
	}
	return n
}

// spanKey serialises a span list into a map key: two varints per span.
// Identical span sets — several peers whose digests miss the same suffix —
// collapse to one key, which is what lets the engine encode each distinct
// missing range once per tick and fan the frames out.
func spanKey(dst []byte, spans []span) []byte {
	for _, sp := range spans {
		dst = binary.AppendUvarint(dst, uint64(sp.start))
		dst = binary.AppendUvarint(dst, uint64(sp.n))
	}
	return dst
}

package transport

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/storage"
	"github.com/treedoc/treedoc/internal/vclock"
)

// snapReplica is a Snapshotter test replica: a core.Document plus the
// same atomic (state, version) snapshot contract the public Doc provides,
// in a minimal test-local encoding (the transport treats snapshot bytes
// as opaque).
type snapReplica struct {
	mu  sync.Mutex
	doc *core.Document
}

func newSnapReplica(t testing.TB, site ident.SiteID) *snapReplica {
	t.Helper()
	doc, err := core.NewDocument(core.Config{Site: site})
	if err != nil {
		t.Fatal(err)
	}
	return &snapReplica{doc: doc}
}

func (r *snapReplica) Apply(op core.Op) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doc.Apply(op)
}

func (r *snapReplica) Snapshot() ([]byte, vclock.VC, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	buf := binary.AppendUvarint(nil, uint64(r.doc.Site()))
	buf = binary.AppendUvarint(buf, r.doc.Seq())
	buf = binary.AppendUvarint(buf, uint64(r.doc.Counter()))
	version := r.doc.Version()
	buf = binary.AppendUvarint(buf, uint64(len(version)))
	for s, n := range version {
		buf = binary.AppendUvarint(buf, uint64(s))
		buf = binary.AppendUvarint(buf, n)
	}
	return append(buf, storage.Encode(r.doc.Tree())...), version, nil
}

func (r *snapReplica) InstallSnapshot(data []byte) (vclock.VC, error) {
	site, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("snapReplica: bad site")
	}
	off := n
	seq, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, fmt.Errorf("snapReplica: bad seq")
	}
	off += n
	counter, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, fmt.Errorf("snapReplica: bad counter")
	}
	off += n
	cnt, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, fmt.Errorf("snapReplica: bad version count")
	}
	off += n
	version := vclock.New()
	for i := uint64(0); i < cnt; i++ {
		s, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("snapReplica: bad version site")
		}
		off += n
		c, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("snapReplica: bad version seq")
		}
		off += n
		version[ident.SiteID(s)] = c
	}
	tree, err := storage.Decode(data[off:])
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.doc.InstallSnapshot(tree, version, ident.SiteID(site), seq, uint32(counter)); err != nil {
		return nil, err
	}
	return r.doc.Version(), nil
}

var _ Snapshotter = (*snapReplica)(nil)

func (r *snapReplica) insertAt(t testing.TB, i int, atom string) core.Op {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	op, err := r.doc.InsertAt(i, atom)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func (r *snapReplica) content() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doc.ContentString()
}

func (r *snapReplica) length() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doc.Len()
}

func (r *snapReplica) seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doc.Seq()
}

func (r *snapReplica) check() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doc.Check()
}

// msgLogLen reads the actor-owned retained-message count.
func msgLogLen(e *Engine) int {
	ch := make(chan int, 1)
	if !e.ctl(func() { ch <- e.retained.Len() }) {
		return -1
	}
	select {
	case n := <-ch:
		return n
	case <-e.done:
		return -1
	}
}

// TestStopFlushesQueuedOps is the regression test for stop-time op loss:
// Broadcast accepts ops, Stop flushes them into the peer queues, and the
// peer writers must drain those queues before the links close — before
// the fix, writers exited on the done signal with the flushed frames
// still queued, silently dropping acknowledged ops.
func TestStopFlushesQueuedOps(t *testing.T) {
	ra := newTestReplica(t, 1)
	rb := newTestReplica(t, 2)
	// A long sync interval ensures delivery can only come from the stop
	// flush itself, not a later anti-entropy round.
	ea, err := NewEngine(1, ra, WithSyncInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	eb, err := NewEngine(2, rb, WithSyncInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer eb.Stop()
	la, lb := ChanPair(1024)
	ea.Connect(la)
	eb.Connect(lb)

	const n = 100
	for i := 0; i < n; i++ {
		op := ra.insertAt(t, i, "a")
		if err := ea.Broadcast(op); err != nil {
			t.Fatal(err)
		}
	}
	// Stop immediately: everything Broadcast accepted must still reach B.
	ea.Stop()

	deadline := time.Now().Add(10 * time.Second)
	for eb.Applied() < n {
		if time.Now().After(deadline) {
			t.Fatalf("peer received %d of %d ops accepted before Stop", eb.Applied(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := rb.content(); got != ra.content() {
		t.Fatalf("replica diverged after stop flush:\n a=%q\n b=%q", ra.content(), got)
	}
}

// TestSyncReqSkipsDeadPeer checks the dead-link guard: answering a digest
// from a torn-down peer must not encode and queue reply frames.
func TestSyncReqSkipsDeadPeer(t *testing.T) {
	r := newTestReplica(t, 1)
	e, err := NewEngine(1, r, WithSyncInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	a, b := ChanPair(64)
	e.Connect(a)
	for i := 0; i < 10; i++ {
		if err := e.Broadcast(r.insertAt(t, i, "x")); err != nil {
			t.Fatal(err)
		}
	}
	// Grab the peer, then kill the link and wait for the reader to mark it
	// dead.
	pch := make(chan *peer, 1)
	e.ctl(func() { pch <- e.peers[0] })
	p := <-pch
	b.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !p.dead() {
		if time.Now().After(deadline) {
			t.Fatal("peer never died")
		}
		time.Sleep(time.Millisecond)
	}
	// The dead peer's queue keeps whatever it held when the writer exited;
	// the guard means a digest reply must not add to it.
	base := len(p.out)
	done := make(chan struct{})
	e.ctl(func() {
		e.handleSyncReq(&SyncReqFrame{From: 9, Clock: vclock.New()}, p)
		close(done)
	})
	<-done
	if n := len(p.out); n != base {
		t.Fatalf("handleSyncReq queued %d frames for a dead peer", n-base)
	}
}

// TestEngineRestartResumesFromLog is the restart-resume acceptance test:
// an engine restarted over its log directory rebuilds the replica, keeps
// its clock, re-stamps nothing, and converges with live peers.
func TestEngineRestartResumesFromLog(t *testing.T) {
	dir := t.TempDir()
	ra := newSnapReplica(t, 1)
	ea, err := NewEngine(1, ra, WithLogDir(dir), WithSyncInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	rb := newSnapReplica(t, 2)
	eb, err := NewEngine(2, rb, WithSyncInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer eb.Stop()
	la, lb := ChanPair(256)
	ea.Connect(la)
	eb.Connect(lb)

	for i := 0; i < 40; i++ {
		if err := ea.Broadcast(ra.insertAt(t, i, "a")); err != nil {
			t.Fatal(err)
		}
		if err := eb.Broadcast(rb.insertAt(t, 0, "b")); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, []*Engine{ea, eb}, 15*time.Second)
	wantContent := ra.content()
	wantClock := ea.Clock()
	wantSeq := ra.seq()
	ea.Stop()
	if err := ea.Err(); err != nil {
		t.Fatal(err)
	}

	// Restart: a completely fresh replica over the same directory.
	ra2 := newSnapReplica(t, 1)
	ea2, err := NewEngine(1, ra2, WithLogDir(dir), WithSyncInterval(20*time.Millisecond))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer ea2.Stop()
	if got := ra2.content(); got != wantContent {
		t.Fatalf("restart content:\n got %q\nwant %q", got, wantContent)
	}
	if got := ea2.Clock(); !vcEqual(got, wantClock) {
		t.Fatalf("restart clock: got %v want %v", got, wantClock)
	}
	if got := ra2.seq(); got != wantSeq {
		t.Fatalf("restart seq: got %d want %d (re-stamping would corrupt peers)", got, wantSeq)
	}

	// New local edits must continue the sequence: if the restarted engine
	// re-stamped, B's causal buffer would discard them as duplicates and
	// the clocks would never re-converge.
	la2, lb2 := ChanPair(256)
	ea2.Connect(la2)
	eb.Connect(lb2)
	n := ra2.length()
	for i := 0; i < 10; i++ {
		if err := ea2.Broadcast(ra2.insertAt(t, n+i, "c")); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, []*Engine{ea2, eb}, 15*time.Second)
	if ra2.content() != rb.content() {
		t.Fatalf("restarted replica diverged:\n a=%q\n b=%q", ra2.content(), rb.content())
	}
	if err := ra2.check(); err != nil {
		t.Fatal(err)
	}
	if err := rb.check(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartAfterTornTail kills a replica mid-append — a truncated tail
// record — and checks that reopen recovers the valid prefix and the
// network heals the lost suffix.
func TestRestartAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	ra := newSnapReplica(t, 1)
	ea, err := NewEngine(1, ra, WithLogDir(dir), WithSyncInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	rb := newSnapReplica(t, 2)
	eb, err := NewEngine(2, rb, WithSyncInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer eb.Stop()
	la, lb := ChanPair(256)
	ea.Connect(la)
	eb.Connect(lb)
	for i := 0; i < 50; i++ {
		if err := eb.Broadcast(rb.insertAt(t, i, "b")); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, []*Engine{ea, eb}, 15*time.Second)
	ea.Stop()

	// Crash simulation: tear bytes off the tail segment.
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	tail := segs[len(segs)-1]
	data, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tail, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	ra2 := newSnapReplica(t, 1)
	ea2, err := NewEngine(1, ra2, WithLogDir(dir), WithSyncInterval(20*time.Millisecond))
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer ea2.Stop()
	// The recovered prefix must be a prefix: shorter than or equal to the
	// full history, never corrupt.
	if err := ra2.check(); err != nil {
		t.Fatal(err)
	}
	// Reconnect: anti-entropy retransmits the truncated suffix.
	la2, lb2 := ChanPair(256)
	ea2.Connect(la2)
	eb.Connect(lb2)
	waitConverged(t, []*Engine{ea2, eb}, 15*time.Second)
	if ra2.content() != rb.content() {
		t.Fatalf("torn-tail recovery diverged:\n a=%q\n b=%q", ra2.content(), rb.content())
	}
}

// TestLateJoinerSnapshotCatchup is the snapshot catch-up acceptance test:
// a joiner to a document with >= 10k historical ops converges via a
// SnapReply plus the log suffix, replaying only the post-barrier tail —
// and the compaction policy keeps both the in-memory message log and the
// on-disk segments bounded.
func TestLateJoinerSnapshotCatchup(t *testing.T) {
	const (
		total        = 10000
		compactEvery = 512
		threshold    = 256
	)
	dir := t.TempDir()
	ra := newSnapReplica(t, 1)
	ea, err := NewEngine(1, ra,
		WithLogDir(dir),
		WithSyncInterval(25*time.Millisecond),
		WithCompactEvery(compactEvery),
		WithSnapshotThreshold(threshold))
	if err != nil {
		t.Fatal(err)
	}
	defer ea.Stop()

	for i := 0; i < total; i++ {
		if err := ea.Broadcast(ra.insertAt(t, i, "h")); err != nil {
			t.Fatal(err)
		}
	}
	// Let the engine drain and compact: the retained message log must be
	// bounded by the policy, not the 10k history.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if n := msgLogLen(ea); n >= 0 && n < 2*compactEvery {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("msgLog not compacted: %d retained of %d", msgLogLen(ea), total)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The joiner arrives with empty state and must catch up via snapshot,
	// not a 10k-op replay.
	rj := newSnapReplica(t, 2)
	ej, err := NewEngine(2, rj,
		WithSyncInterval(25*time.Millisecond),
		WithCompactEvery(compactEvery),
		WithSnapshotThreshold(threshold))
	if err != nil {
		t.Fatal(err)
	}
	defer ej.Stop()
	la, lb := ChanPair(1024)
	ea.Connect(la)
	ej.Connect(lb)

	waitConverged(t, []*Engine{ea, ej}, 30*time.Second)
	if rj.content() != ra.content() {
		t.Fatal("joiner content diverged")
	}
	if got := ej.SnapshotsInstalled(); got < 1 {
		t.Fatalf("joiner installed %d snapshots, want >= 1", got)
	}
	// The replayed tail must be a small fraction of history: snapshot
	// catch-up replaces the bulk replay. Allow generous slack for ops that
	// arrive between barrier creation and convergence.
	if got := ej.Applied(); got > total/4 {
		t.Fatalf("joiner replayed %d of %d ops — snapshot catch-up did not bound the replay", got, total)
	}
	if ea.SnapshotsSent() < 1 {
		t.Fatalf("server sent %d snapshots", ea.SnapshotsSent())
	}
	// Segment bytes are bounded by the compaction policy too: the live log
	// must end up far smaller than the full history would be. Disk
	// truncation trails the barrier by the floor-promotion delay, so poll.
	// Record size grows with identifier depth (late ops in a 10k append
	// workload carry ~300-byte paths), so the un-compacted history exceeds
	// a megabyte while the retained window (≤ ~2×compactEvery of the
	// deepest records) stays under 300kB.
	logSize := func() int64 {
		ch := make(chan int64, 1)
		if !ea.ctl(func() { ch <- ea.log.SizeBytes() }) {
			return -1
		}
		select {
		case sz := <-ch:
			return sz
		case <-time.After(5 * time.Second):
			return -1
		}
	}
	sizeDeadline := time.Now().Add(15 * time.Second)
	for {
		sz := logSize()
		if sz < 0 {
			t.Fatal("engine did not report log size")
		}
		if sz <= 300*1024 {
			break
		}
		if time.Now().After(sizeDeadline) {
			segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
			st := make(chan string, 1)
			ea.ctl(func() {
				st <- fmt.Sprintf("clock=%v snapVC=%v truncVC=%v sinceSnap=%d msgLog=%d segs=%d",
					e1sum(ea.buf.Clock()), e1sum(ea.snapVC), e1sum(ea.truncVC), ea.sinceSnap, ea.retained.Len(), ea.log.Segments())
			})
			t.Fatalf("log segments hold %d bytes — compaction did not prune\n err=%v\n %s\n files=%v",
				sz, ea.Err(), <-st, segs)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := ea.Err(); err != nil {
		t.Fatal(err)
	}
	if err := ej.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotCatchupBelowBarrier forces the barrier case: the server has
// compacted away the early history, so a joiner's digest below the
// barrier cannot be served with ops at all.
func TestSnapshotCatchupBelowBarrier(t *testing.T) {
	ra := newSnapReplica(t, 1)
	// Threshold 0 disables gap-based snapshots: only the compaction
	// barrier can force one.
	ea, err := NewEngine(1, ra,
		WithSyncInterval(25*time.Millisecond),
		WithCompactEvery(128),
		WithSnapshotThreshold(0))
	if err != nil {
		t.Fatal(err)
	}
	defer ea.Stop()
	for i := 0; i < 1000; i++ {
		if err := ea.Broadcast(ra.insertAt(t, i, "x")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if n := msgLogLen(ea); n >= 0 && n < 1000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("barrier never formed: msgLog=%d", msgLogLen(ea))
		}
		time.Sleep(10 * time.Millisecond)
	}

	rj := newSnapReplica(t, 2)
	ej, err := NewEngine(2, rj, WithSyncInterval(25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer ej.Stop()
	la, lb := ChanPair(512)
	ea.Connect(la)
	ej.Connect(lb)
	waitConverged(t, []*Engine{ea, ej}, 30*time.Second)
	if rj.content() != ra.content() {
		t.Fatal("below-barrier joiner diverged")
	}
	if ej.SnapshotsInstalled() < 1 {
		t.Fatal("joiner below the barrier converged without a snapshot — ops below the barrier should not exist")
	}
}

// e1sum compacts a clock for failure messages.
func e1sum(vc vclock.VC) string {
	if vc == nil {
		return "nil"
	}
	return vc.String()
}

package transport

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/treedoc/treedoc/internal/vclock"
)

func TestRingAnnounceRoundTrip(t *testing.T) {
	frame, err := EncodeRingAnnounce(9, []string{"10.0.0.1:9707", "10.0.0.2:9707"})
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	rf, ok := decoded.(*RingFrame)
	if !ok {
		t.Fatalf("decoded %T, want *RingFrame", decoded)
	}
	if rf.Epoch != 9 || !reflect.DeepEqual(rf.Nodes, []string{"10.0.0.1:9707", "10.0.0.2:9707"}) {
		t.Fatalf("round trip: %+v", rf)
	}
	if rf.IsQuery() {
		t.Fatal("announce misreported as query")
	}

	// The query form: epoch 0, no nodes.
	q, err := EncodeRingAnnounce(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err = DecodeFrame(q)
	if err != nil {
		t.Fatal(err)
	}
	if !decoded.(*RingFrame).IsQuery() {
		t.Fatal("query form not recognised")
	}

	if _, err := EncodeRingAnnounce(1, []string{""}); err == nil {
		t.Fatal("empty node address accepted")
	}
	if _, err := EncodeRingAnnounce(1, []string{strings.Repeat("a", maxRedirectAddr+1)}); err == nil {
		t.Fatal("oversized node address accepted")
	}
}

func TestHandoffMarkRoundTrip(t *testing.T) {
	begin, err := EncodeHandoffBegin("notes", 4)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(begin)
	if err != nil {
		t.Fatal(err)
	}
	bf, ok := decoded.(*HandoffBeginFrame)
	if !ok || bf.Doc != "notes" || bf.Epoch != 4 {
		t.Fatalf("decoded %T %+v", decoded, decoded)
	}
	done, err := EncodeHandoffDone("notes", 4)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err = DecodeFrame(done)
	if err != nil {
		t.Fatal(err)
	}
	df, ok := decoded.(*HandoffDoneFrame)
	if !ok || df.Doc != "notes" || df.Epoch != 4 {
		t.Fatalf("decoded %T %+v", decoded, decoded)
	}
}

func TestForwardAndHandoffStateEnvelopes(t *testing.T) {
	inner, err := EncodeSyncReq(7, vclock.VC{7: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		enc  func(string, []byte) ([]byte, error)
	}{
		{"forward", EncodeForward},
		{"handoff-state", EncodeHandoffState},
	} {
		env, err := tc.enc("notes", inner)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		decoded, err := DecodeFrame(env)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var doc string
		var got []byte
		switch d := decoded.(type) {
		case *ForwardFrame:
			doc, got = d.Doc, d.Inner
		case *HandoffStateFrame:
			doc, got = d.Doc, d.Inner
		default:
			t.Fatalf("%s: decoded %T", tc.name, decoded)
		}
		if doc != "notes" || !bytes.Equal(got, inner) {
			t.Fatalf("%s: round trip (%q, %x)", tc.name, doc, got)
		}
		// Envelopes never nest, in any combination.
		if _, err := tc.enc("notes", env); err == nil {
			t.Fatalf("%s: nested self accepted", tc.name)
		}
		docEnv, err := EncodeDocFrame("notes", inner)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tc.enc("notes", docEnv); err == nil {
			t.Fatalf("%s: nested doc envelope accepted", tc.name)
		}
		if _, err := EncodeDocFrame("notes", env); err == nil {
			t.Fatalf("doc envelope accepted nested %s", tc.name)
		}
	}
}

func TestHelloForwardRoundTrip(t *testing.T) {
	frame, err := EncodeHelloForward([]string{"notes"})
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	hf, ok := decoded.(*HelloFrame)
	if !ok || !hf.Forward || !reflect.DeepEqual(hf.Docs, []string{"notes"}) {
		t.Fatalf("decoded %T %+v", decoded, decoded)
	}
	// A plain hello still decodes with the flag off.
	plain, err := EncodeHello([]string{"notes"})
	if err != nil {
		t.Fatal(err)
	}
	decoded, err = DecodeFrame(plain)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.(*HelloFrame).Forward {
		t.Fatal("plain hello decoded with forward flag")
	}
	// An explicit zero flags byte is non-canonical and refused.
	if _, err := DecodeFrame(append(append([]byte{}, plain...), 0x00)); err == nil {
		t.Fatal("zero flags byte accepted")
	}
	// Unknown flag bits are refused.
	if _, err := DecodeFrame(append(append([]byte{}, plain...), 0x02)); err == nil {
		t.Fatal("unknown flag bits accepted")
	}
}

func TestHelloRespCarriesEpoch(t *testing.T) {
	entries := []HelloEntry{
		{Doc: "notes", Epoch: 3},
		{Doc: "design", Redirect: "10.0.0.2:9707", Epoch: 3},
	}
	frame, err := EncodeHelloResp(entries)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got := decoded.(*HelloRespFrame).Entries; !reflect.DeepEqual(got, entries) {
		t.Fatalf("round trip: %+v", got)
	}
}

// FuzzRingFrame fuzzes the ring membership and handoff frame decoders:
// they must never panic, and anything accepted must re-encode to an
// equivalent frame.
func FuzzRingFrame(f *testing.F) {
	if frame, err := EncodeRingAnnounce(5, []string{"h1:1", "h2:2"}); err == nil {
		f.Add(frame)
	}
	if frame, err := EncodeRingAnnounce(0, nil); err == nil {
		f.Add(frame)
	}
	if frame, err := EncodeHandoffBegin("doc", 2); err == nil {
		f.Add(frame)
	}
	if frame, err := EncodeHandoffDone("doc", 2); err == nil {
		f.Add(frame)
	}
	if inner, err := EncodeSyncReq(3, vclock.VC{1: 5}); err == nil {
		if env, err := EncodeForward("doc", inner); err == nil {
			f.Add(env)
		}
		if env, err := EncodeHandoffState("doc", inner); err == nil {
			f.Add(env)
		}
	}
	if frame, err := EncodeHelloForward([]string{"a"}); err == nil {
		f.Add(frame)
	}
	f.Add([]byte{kindRingAnnounce, 0x01, 0x01, 0x01, 'a'})
	f.Add([]byte{kindHandoffBegin, 0x01, 'a', 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeFrame(data)
		if err != nil {
			return
		}
		switch d := decoded.(type) {
		case *RingFrame:
			re, err := EncodeRingAnnounce(d.Epoch, d.Nodes)
			if err != nil {
				t.Fatalf("accepted ring frame failed to re-encode: %v", err)
			}
			again, err := DecodeFrame(re)
			if err != nil || !reflect.DeepEqual(again, decoded) {
				t.Fatalf("ring frame not stable under re-encoding: %v", err)
			}
		case *HandoffBeginFrame:
			re, err := EncodeHandoffBegin(d.Doc, d.Epoch)
			if err != nil {
				t.Fatalf("accepted handoff begin failed to re-encode: %v", err)
			}
			again, err := DecodeFrame(re)
			if err != nil || !reflect.DeepEqual(again, decoded) {
				t.Fatalf("handoff begin not stable under re-encoding: %v", err)
			}
		case *HandoffDoneFrame:
			re, err := EncodeHandoffDone(d.Doc, d.Epoch)
			if err != nil {
				t.Fatalf("accepted handoff done failed to re-encode: %v", err)
			}
			again, err := DecodeFrame(re)
			if err != nil || !reflect.DeepEqual(again, decoded) {
				t.Fatalf("handoff done not stable under re-encoding: %v", err)
			}
		case *ForwardFrame:
			re, err := EncodeForward(d.Doc, d.Inner)
			if err != nil {
				t.Fatalf("accepted forward failed to re-encode: %v", err)
			}
			doc, inner, err := splitEnvelope(kindForward, re)
			if err != nil || doc != d.Doc || !bytes.Equal(inner, d.Inner) {
				t.Fatalf("forward not stable under re-encoding: %v", err)
			}
		case *HandoffStateFrame:
			re, err := EncodeHandoffState(d.Doc, d.Inner)
			if err != nil {
				t.Fatalf("accepted handoff state failed to re-encode: %v", err)
			}
			doc, inner, err := splitEnvelope(kindHandoffState, re)
			if err != nil || doc != d.Doc || !bytes.Equal(inner, d.Inner) {
				t.Fatalf("handoff state not stable under re-encoding: %v", err)
			}
		}
	})
}

package transport

import (
	"io"
	"sync"
)

// ChanLink is the in-process Link: one end of a pair of bounded frame
// channels. Send blocks while the peer's queue is full (backpressure) and
// both ends unblock when either end closes. Frames still travel in the
// binary wire encoding, so in-process transport exercises exactly the same
// codec as TCP.
type ChanLink struct {
	send chan<- []byte
	recv <-chan []byte
	pipe *chanPipe
}

// chanPipe is the shared state of a link pair.
type chanPipe struct {
	ab     chan []byte
	ba     chan []byte
	closed chan struct{}
	once   sync.Once
}

// ChanPair creates a connected pair of in-process links with the given
// queue depth per direction.
func ChanPair(depth int) (*ChanLink, *ChanLink) {
	if depth < 1 {
		depth = 1
	}
	p := &chanPipe{
		ab:     make(chan []byte, depth),
		ba:     make(chan []byte, depth),
		closed: make(chan struct{}),
	}
	a := &ChanLink{send: p.ab, recv: p.ba, pipe: p}
	b := &ChanLink{send: p.ba, recv: p.ab, pipe: p}
	return a, b
}

// Send queues one frame for the peer, blocking while the queue is full.
func (l *ChanLink) Send(frame []byte) error {
	select {
	case <-l.pipe.closed:
		return io.ErrClosedPipe
	default:
	}
	select {
	case l.send <- frame:
		return nil
	case <-l.pipe.closed:
		return io.ErrClosedPipe
	}
}

// Recv returns the next frame from the peer.
func (l *ChanLink) Recv() ([]byte, error) {
	select {
	case f := <-l.recv:
		return f, nil
	case <-l.pipe.closed:
		// Drain frames that raced the close so a graceful shutdown loses
		// as little as possible.
		select {
		case f := <-l.recv:
			return f, nil
		default:
			return nil, io.EOF
		}
	}
}

// Close tears down both ends of the pair.
func (l *ChanLink) Close() error {
	l.pipe.once.Do(func() { close(l.pipe.closed) })
	return nil
}

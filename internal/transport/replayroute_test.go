package transport

// Directed replay routing suite: kindReplay wire round-trips, engines
// address digest answers on replay-routing links, and a hub delivers a
// directed answer to its one requester instead of the whole group. Run
// under `go test -race`: the routing capability is read from the actor
// and from chunked-snapshot sender goroutines.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

func TestReplayFrameRoundTrip(t *testing.T) {
	inner, err := EncodeSyncReq(7, vclock.VC{3: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Any non-envelope kind wraps; a digest frame is a convenient payload.
	frame, err := EncodeReplay(42, inner)
	if err != nil {
		t.Fatal(err)
	}
	to, got, err := SplitReplay(frame)
	if err != nil {
		t.Fatal(err)
	}
	if to != 42 || !bytes.Equal(got, inner) {
		t.Fatalf("split = (%d, %x), want (42, %x)", to, got, inner)
	}
	decoded, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	rf, ok := decoded.(*ReplayFrame)
	if !ok {
		t.Fatalf("decoded %T, want *ReplayFrame", decoded)
	}
	if rf.To != 42 || !bytes.Equal(rf.Inner, inner) {
		t.Fatalf("decoded = (%d, %x), want (42, %x)", rf.To, rf.Inner, inner)
	}
}

func TestReplayFrameRejects(t *testing.T) {
	inner, err := EncodeSyncReq(7, vclock.VC{3: 12})
	if err != nil {
		t.Fatal(err)
	}
	env, err := EncodeDocFrame("doc", inner)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := EncodeReplay(42, inner)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeReplay(42, nil); err == nil {
		t.Fatal("empty inner frame accepted")
	}
	if _, err := EncodeReplay(42, env); err == nil {
		t.Fatal("envelope inner frame accepted")
	}
	if _, err := EncodeReplay(42, wrapped); err == nil {
		t.Fatal("nested replay accepted")
	}
	if _, _, err := SplitReplay(append([]byte{kindReplay, 0x00}, inner...)); err == nil {
		t.Fatal("site id zero accepted")
	}
	if _, _, err := SplitReplay([]byte{kindReplay, 0x05}); err == nil {
		t.Fatal("empty payload accepted")
	}
}

// routingLink marks a plain link replay-routing, standing in for a
// Session link through a doc-aware hub.
type routingLink struct{ Link }

func (routingLink) RoutesReplay() bool { return true }

// TestDirectedAnswerOnRoutingLink sends a behind digest into an engine
// over a replay-routing link and expects the answer wrapped in kindReplay
// frames addressed to the requesting site — and, on a plain link, the
// same answer unwrapped.
func TestDirectedAnswerOnRoutingLink(t *testing.T) {
	for _, directed := range []bool{true, false} {
		t.Run(fmt.Sprintf("directed=%v", directed), func(t *testing.T) {
			const syncEvery = 10 * time.Millisecond
			rep := newTestReplica(t, 1)
			eng, err := NewEngine(1, rep, WithSyncInterval(syncEvery))
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Stop()
			a, b := ChanPair(256)
			if directed {
				eng.Connect(routingLink{a})
			} else {
				eng.Connect(a)
			}

			for i := 0; i < 5; i++ {
				if err := eng.Broadcast(rep.insertAt(t, rep.len(), fmt.Sprintf("x%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			// The settle horizon keeps the freshest tick out of digest
			// answers; let two settle marks pass before pulling.
			time.Sleep(5 * syncEvery)

			pull, err := EncodeSyncReq(9, vclock.New())
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Send(pull); err != nil {
				t.Fatal(err)
			}
			deadline := time.After(5 * time.Second)
			for {
				var frame []byte
				done := make(chan error, 1)
				go func() {
					var err error
					frame, err = b.Recv()
					done <- err
				}()
				select {
				case err := <-done:
					if err != nil {
						t.Fatal(err)
					}
				case <-deadline:
					t.Fatal("no answer frame before deadline")
				}
				switch frame[0] {
				case kindReplay:
					if !directed {
						t.Fatal("plain link received a directed answer")
					}
					to, inner, err := SplitReplay(frame)
					if err != nil {
						t.Fatal(err)
					}
					if to != 9 {
						t.Fatalf("answer addressed to site %d, want 9", to)
					}
					if inner[0] != kindOps {
						t.Fatalf("directed answer wraps kind %#x, want kindOps", inner[0])
					}
					return
				case kindOps:
					if directed {
						// The engine's own flush also emits kindOps frames;
						// only ops carrying the full history constitute an
						// unwrapped answer. Simplest disambiguation: a
						// directed engine may still flush, so keep reading
						// for the kindReplay.
						continue
					}
					return
				default:
					continue // the engine's own digests and snapshots
				}
			}
		})
	}
}

// TestHubRoutesReplayToRequester attaches writers to a hub, converges
// them, then attaches an empty late joiner: its pull must be answered
// with directed frames the hub delivers to it alone, and the joiner must
// end up with the full document.
func TestHubRoutesReplayToRequester(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	addr := hub.Addr().String()
	const doc = "routed"

	var engines []*Engine
	var reps []*testReplica
	for i := 0; i < 3; i++ {
		site := ident.SiteID(i + 1)
		link, err := DialDoc(addr, doc)
		if err != nil {
			t.Fatal(err)
		}
		rep := newTestReplica(t, site)
		eng, err := NewEngine(site, rep, WithSyncInterval(15*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		eng.Connect(link)
		engines = append(engines, eng)
		reps = append(reps, rep)
	}
	defer func() {
		for _, e := range engines {
			e.Stop()
		}
	}()

	for round := 0; round < 10; round++ {
		for i := 0; i < 2; i++ {
			if err := engines[i].Broadcast(reps[i].insertAt(t, reps[i].len(), fmt.Sprintf("w%d.%d ", i, round))); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitConverged(t, engines, 30*time.Second)

	// The late joiner holds nothing; everything it learns arrives through
	// digest answers, which the hub must route to it alone.
	link, err := DialDoc(addr, doc)
	if err != nil {
		t.Fatal(err)
	}
	rep := newTestReplica(t, 9)
	eng, err := NewEngine(9, rep, WithSyncInterval(15*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	eng.Connect(link)
	engines = append(engines, eng)
	reps = append(reps, rep)

	waitConverged(t, engines, 30*time.Second)
	checkAll(t, reps...)
	if hub.ReplayRoutes() == 0 {
		t.Fatalf("no answer was replay-routed (fallbacks %d)", hub.ReplayFallbacks())
	}
}

// FuzzReplayFrame exercises the directed-answer decoder with arbitrary
// bytes: it must never panic, and every accepted frame must re-encode to
// the same split.
func FuzzReplayFrame(f *testing.F) {
	inner, err := EncodeSyncReq(7, vclock.VC{3: 12})
	if err != nil {
		f.Fatal(err)
	}
	seed, err := EncodeReplay(42, inner)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{kindReplay})
	f.Add([]byte{kindReplay, 0x01, kindOps, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		to, payload, err := SplitReplay(data)
		if err != nil {
			return
		}
		re, err := EncodeReplay(to, payload)
		if err != nil {
			t.Fatalf("accepted split (%d, %x) does not re-encode: %v", to, payload, err)
		}
		to2, payload2, err := SplitReplay(re)
		if err != nil || to2 != to || !bytes.Equal(payload2, payload) {
			t.Fatalf("re-encoded frame splits to (%d, %x, %v), want (%d, %x)", to2, payload2, err, to, payload)
		}
	})
}

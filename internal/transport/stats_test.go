package transport_test

import (
	"encoding/json"
	"testing"
	"time"

	treedoc "github.com/treedoc/treedoc"
)

// TestHubStatsSnapshot drives a little traffic through a hub and checks
// the aggregate snapshot agrees with the individual counter getters and
// round-trips through JSON (the expvar/load-report path).
func TestHubStatsSnapshot(t *testing.T) {
	hub, err := treedoc.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	addr := hub.Addr().String()

	a, err := treedoc.DialDoc(addr, "stats-doc")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := treedoc.DialDoc(addr, "stats-doc")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send([]byte("frame-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}

	var s treedoc.HubStats
	deadline := time.Now().Add(2 * time.Second)
	for {
		s = hub.Stats()
		if s.Clients == 2 && s.Relays >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never settled: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.Docs != 1 {
		t.Errorf("Docs = %d, want 1", s.Docs)
	}
	if s.Relays != hub.Relays() || s.Drops != hub.Drops() || s.Forwards != hub.Forwards() {
		t.Errorf("aggregate disagrees with getters: %+v", s)
	}
	ds, ok := s.PerDoc["stats-doc"]
	if !ok || ds.Clients != 2 || ds.Relays < 1 {
		t.Errorf("PerDoc[stats-doc] = %+v (ok=%v)", ds, ok)
	}
	if s.RingEpoch != 0 {
		t.Errorf("unsharded hub RingEpoch = %d", s.RingEpoch)
	}

	// The expvar path serialises via encoding/json; the snapshot must
	// survive the round trip intact.
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back treedoc.HubStats
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Clients != s.Clients || back.PerDoc["stats-doc"].Relays != ds.Relays {
		t.Errorf("JSON round trip changed stats: %+v vs %+v", back, s)
	}
}

package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/treedoc/treedoc/internal/causal"
	"github.com/treedoc/treedoc/internal/core"
	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// testReplica wraps a core.Document with the lock the engine contract
// requires: Apply (actor goroutine) may race local edits (test goroutine).
type testReplica struct {
	mu  sync.Mutex
	doc *core.Document
}

func newTestReplica(t testing.TB, site ident.SiteID) *testReplica {
	t.Helper()
	doc, err := core.NewDocument(core.Config{Site: site})
	if err != nil {
		t.Fatal(err)
	}
	return &testReplica{doc: doc}
}

func (r *testReplica) Apply(op core.Op) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doc.Apply(op)
}

func (r *testReplica) insertAt(t testing.TB, i int, atom string) core.Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	op, err := r.doc.InsertAt(i, atom)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func (r *testReplica) deleteAt(t testing.TB, i int) core.Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	op, err := r.doc.DeleteAt(i)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func (r *testReplica) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doc.Len()
}

func (r *testReplica) content() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doc.ContentString()
}

func (r *testReplica) check() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.doc.Check()
}

// waitConverged polls until every engine reports the same clock, failing
// the test at the deadline. Equal clocks mean every stamped operation has
// been delivered (and therefore applied) everywhere.
func waitConverged(t testing.TB, engines []*Engine, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		same := true
		first := engines[0].Clock()
		for _, e := range engines[1:] {
			c := e.Clock()
			if len(c) != len(first) {
				same = false
				break
			}
			for s, n := range first {
				if c.Get(s) != n {
					same = false
					break
				}
			}
			if !same {
				break
			}
		}
		if same && len(first) > 0 {
			return
		}
		if time.Now().After(deadline) {
			clocks := ""
			for _, e := range engines {
				clocks += fmt.Sprintf(" s%d=%v", e.Site(), e.Clock())
			}
			t.Fatalf("engines did not converge within %v:%s", timeout, clocks)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func stopAll(engines ...*Engine) {
	for _, e := range engines {
		e.Stop()
	}
}

func checkAll(t testing.TB, replicas ...*testReplica) {
	t.Helper()
	want := replicas[0].content()
	for i, r := range replicas[1:] {
		if got := r.content(); got != want {
			t.Fatalf("replica %d diverged:\n got %q\nwant %q", i+1, got, want)
		}
		if err := r.check(); err != nil {
			t.Fatal(err)
		}
	}
	if err := replicas[0].check(); err != nil {
		t.Fatal(err)
	}
}

func TestEnginePairConvergesOverChanLink(t *testing.T) {
	r1, r2 := newTestReplica(t, 1), newTestReplica(t, 2)
	e1, err := NewEngine(1, r1, WithSyncInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(2, r2, WithSyncInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer stopAll(e1, e2)
	a, b := ChanPair(64)
	e1.Connect(a)
	e2.Connect(b)

	for i := 0; i < 50; i++ {
		if err := e1.Broadcast(r1.insertAt(t, r1.len(), fmt.Sprintf("one-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := e2.Broadcast(r2.insertAt(t, 0, fmt.Sprintf("two-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e1.Broadcast(r1.deleteAt(t, 0)); err != nil {
		t.Fatal(err)
	}

	waitConverged(t, []*Engine{e1, e2}, 10*time.Second)
	checkAll(t, r1, r2)
	if err := e1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := e2.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestLateJoinerCatchesUpViaAntiEntropy(t *testing.T) {
	r1 := newTestReplica(t, 1)
	e1, err := NewEngine(1, r1, WithSyncInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Stop()
	for i := 0; i < 200; i++ {
		if err := e1.Broadcast(r1.insertAt(t, i, fmt.Sprintf("line-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// The second replica connects only after all 200 edits happened: its
	// initial sync request pulls the whole history.
	r2 := newTestReplica(t, 2)
	e2, err := NewEngine(2, r2, WithSyncInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Stop()
	a, b := ChanPair(64)
	e1.Connect(a)
	e2.Connect(b)

	waitConverged(t, []*Engine{e1, e2}, 10*time.Second)
	checkAll(t, r1, r2)
	if got := r2.len(); got != 200 {
		t.Fatalf("late joiner has %d atoms, want 200", got)
	}
}

func TestEngineRelaysHistoryForThirdParty(t *testing.T) {
	// Chain topology 1—2—3: site 1's edits reach site 3 only through site
	// 2's retained log (sync replies retransmit relayed messages too).
	var replicas []*testReplica
	var engines []*Engine
	for site := ident.SiteID(1); site <= 3; site++ {
		r := newTestReplica(t, site)
		e, err := NewEngine(site, r, WithSyncInterval(10*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, r)
		engines = append(engines, e)
	}
	defer stopAll(engines...)
	a, b := ChanPair(64)
	engines[0].Connect(a)
	engines[1].Connect(b)
	c, d := ChanPair(64)
	engines[1].Connect(c)
	engines[2].Connect(d)

	for i := 0; i < 30; i++ {
		r, e := replicas[i%3], engines[i%3]
		if err := e.Broadcast(r.insertAt(t, r.len(), fmt.Sprintf("s%d-%d", e.Site(), i))); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, engines, 15*time.Second)
	checkAll(t, replicas...)
}

func TestEnginePairConvergesOverTCP(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	r1, r2 := newTestReplica(t, 1), newTestReplica(t, 2)
	e1, err := NewEngine(1, r1, WithSyncInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(2, r2, WithSyncInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer stopAll(e1, e2)
	for _, e := range []*Engine{e1, e2} {
		link, err := Dial(hub.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		e.Connect(link)
	}

	for i := 0; i < 100; i++ {
		if err := e1.Broadcast(r1.insertAt(t, r1.len(), fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := e2.Broadcast(r2.insertAt(t, 0, fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, []*Engine{e1, e2}, 15*time.Second)
	checkAll(t, r1, r2)
	if hub.Relays() == 0 {
		t.Fatal("hub relayed nothing; traffic bypassed TCP")
	}
}

func TestBroadcastAfterStop(t *testing.T) {
	r := newTestReplica(t, 1)
	e, err := NewEngine(1, r)
	if err != nil {
		t.Fatal(err)
	}
	e.Stop()
	e.Stop() // idempotent
	if err := e.Broadcast(r.insertAt(t, 0, "x")); err != ErrStopped {
		t.Fatalf("Broadcast after Stop = %v, want ErrStopped", err)
	}
	if c := e.Clock(); c != nil {
		t.Fatalf("Clock after Stop = %v, want nil", c)
	}
}

func TestHostileCausalGapIsBounded(t *testing.T) {
	// Wire-valid messages with a permanent causal gap must not pin
	// unbounded memory: the engine prunes the causal backlog at maxPending
	// and counts the evictions, and legitimate traffic keeps flowing.
	r := newTestReplica(t, 1)
	e, err := NewEngine(1, r, WithSyncInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	a, b := ChanPair(256)
	e.Connect(a)

	hostile := newTestReplica(t, 7)
	op := hostile.insertAt(t, 0, "x")
	const extra = 512
	var batch []causal.Message
	for i := 0; i < maxPending+extra; i++ {
		// Own stamp starts at 2: seq 1 never arrives, so nothing delivers.
		batch = append(batch, causal.Message{From: 7, TS: vclock.VC{7: uint64(i) + 2}, Payload: op})
		if len(batch) == syncChunk {
			frame, err := EncodeOps(batch)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Send(frame); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		frame, err := EncodeOps(batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Send(frame); err != nil {
			t.Fatal(err)
		}
	}

	// Generous deadline: ingesting ~17k undeliverable messages costs a
	// full pending-buffer scan each, which is slow under -race on a
	// single-CPU machine.
	deadline := time.Now().Add(120 * time.Second)
	for e.Pruned() < extra {
		if time.Now().After(deadline) {
			t.Fatalf("backlog not pruned: pruned=%d", e.Pruned())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Backlog pruning is load shedding, not a wire error: the frames were
	// valid, so the error counter must not conflate them.
	if n := e.WireErrs(); n != 0 {
		t.Errorf("pruning inflated wireErrs to %d", n)
	}

	// A legitimate message from another site still applies immediately.
	legit := newTestReplica(t, 9)
	frame, err := EncodeOps([]causal.Message{{From: 9, TS: vclock.VC{9: 1}, Payload: legit.insertAt(t, 0, "ok")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Send(frame); err != nil {
		t.Fatal(err)
	}
	for e.Applied() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("legitimate op not applied after hostile flood")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConnectStopRace(t *testing.T) {
	// Connect racing Stop must neither panic the WaitGroup nor leak
	// goroutines past Stop; run many interleavings under -race.
	for i := 0; i < 50; i++ {
		r := newTestReplica(t, 1)
		e, err := NewEngine(1, r)
		if err != nil {
			t.Fatal(err)
		}
		a, b := ChanPair(4)
		done := make(chan struct{})
		go func() {
			e.Connect(a)
			close(done)
		}()
		e.Stop()
		<-done
		b.Close()
	}
}

func TestChanLinkBackpressureAndClose(t *testing.T) {
	a, b := ChanPair(1)
	if err := a.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	// Queue full: a second Send must block until the peer reads.
	done := make(chan error, 1)
	go func() {
		done <- a.Send([]byte{2})
	}()
	select {
	case err := <-done:
		t.Fatalf("Send on full queue returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if f, err := b.Recv(); err != nil || f[0] != 1 {
		t.Fatalf("Recv = %v, %v", f, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	b.Close()
	if err := a.Send([]byte{3}); err == nil {
		t.Fatal("Send after close succeeded")
	}
	if _, err := a.Recv(); err == nil {
		// one buffered frame may drain first
		if _, err := a.Recv(); err == nil {
			t.Fatal("Recv after close and drain succeeded")
		}
	}
}

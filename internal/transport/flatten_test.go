package transport_test

// Engine-coordinated flatten over live links: the commitment protocol
// (internal/commit) driven from the engine actor over real transports.
// The headline test is the acceptance scenario for this subsystem: a
// 3-replica TCP mesh with writers that keep editing while cold-subtree
// flattens are proposed, at least one commit, byte-identical convergence,
// and a post-flatten joiner that catches up from the flatten-epoch
// snapshot without replaying pre-flatten operations. Run under
// `go test -race`.

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/treedoc/treedoc"
	"github.com/treedoc/treedoc/internal/transport"
)

type flatSite struct {
	id  treedoc.SiteID
	buf *treedoc.TextBuffer
	eng *treedoc.Engine
}

func newFlatSite(t testing.TB, id treedoc.SiteID, opts ...treedoc.EngineOption) *flatSite {
	t.Helper()
	buf, err := treedoc.NewTextBuffer(treedoc.WithSite(id))
	if err != nil {
		t.Fatal(err)
	}
	base := []treedoc.EngineOption{
		treedoc.WithSyncInterval(15 * time.Millisecond),
		treedoc.WithFlattenTimeout(250 * time.Millisecond),
	}
	eng, err := treedoc.NewEngine(id, buf, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return &flatSite{id: id, buf: buf, eng: eng}
}

// tcpPair returns the two ends of one real TCP loopback connection,
// framed as engine links.
func tcpPair(t testing.TB) (treedoc.Link, treedoc.Link) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		conn, err := ln.Accept()
		ch <- accepted{conn, err}
	}()
	dialSide, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	acc := <-ch
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	return transport.NewTCPLink(dialSide), transport.NewTCPLink(acc.conn)
}

// meshTCP wires every pair of sites with its own TCP loopback connection.
func meshTCP(t testing.TB, sites []*flatSite) {
	t.Helper()
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			a, b := tcpPair(t)
			sites[i].eng.Connect(a)
			sites[j].eng.Connect(b)
		}
	}
}

func meshChan(sites []*flatSite) {
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			a, b := treedoc.NewChanPair(128)
			sites[i].eng.Connect(a)
			sites[j].eng.Connect(b)
		}
	}
}

func stopFlatSites(sites []*flatSite) {
	for _, s := range sites {
		s.eng.Stop()
	}
}

// waitContentEqual polls until every replica holds identical, non-empty
// bytes and every engine's delivered clock matches every other's.
func waitContentEqual(t testing.TB, sites []*flatSite, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		equal := true
		want := sites[0].buf.String()
		for _, s := range sites[1:] {
			if s.buf.String() != want {
				equal = false
				break
			}
		}
		if equal {
			base := sites[0].eng.Clock()
			for _, s := range sites[1:] {
				c := s.eng.Clock()
				if c == nil || base == nil || !c.Dominates(base) || !base.Dominates(c) {
					equal = false
					break
				}
			}
		}
		if equal {
			return
		}
		if time.Now().After(deadline) {
			for _, s := range sites {
				t.Logf("site %d: clock %v len %d applied %d flattens %d",
					s.id, s.eng.Clock(), s.buf.Len(), s.eng.Applied(), s.eng.FlattensApplied())
			}
			t.Fatal("replicas did not converge within deadline")
		}
		time.Sleep(15 * time.Millisecond)
	}
}

func checkFlatSites(t testing.TB, sites []*flatSite) {
	t.Helper()
	for _, s := range sites {
		if err := s.buf.Doc().Check(); err != nil {
			t.Fatalf("site %d invariants: %v", s.id, err)
		}
		if err := s.eng.Err(); err != nil {
			t.Fatalf("site %d engine error: %v", s.id, err)
		}
	}
}

// broadcast is a must-style edit helper.
func (s *flatSite) broadcast(t testing.TB, ops []treedoc.Op, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("site %d edit: %v", s.id, err)
	}
	if err := s.eng.Broadcast(ops...); err != nil {
		t.Fatalf("site %d broadcast: %v", s.id, err)
	}
}

// TestFlattenWholeDocCommitsOnQuiescentMesh is the transport twin of the
// simulator's flattenfleet scenario: seed a document with tombstone
// churn, quiesce, propose a whole-document flatten, and watch the commit
// reduce every replica to a zero-overhead array.
func TestFlattenWholeDocCommitsOnQuiescentMesh(t *testing.T) {
	sites := []*flatSite{newFlatSite(t, 1), newFlatSite(t, 2), newFlatSite(t, 3)}
	defer stopFlatSites(sites)
	meshChan(sites)

	ops, err := sites[0].buf.Append("the quick brown fox jumps over the lazy dog")
	sites[0].broadcast(t, ops, err)
	waitContentEqual(t, sites, 20*time.Second)
	ops, err = sites[1].buf.Delete(0, 10) // tombstones under SDIS
	sites[1].broadcast(t, ops, err)
	waitContentEqual(t, sites, 20*time.Second)

	before := sites[0].buf.Stats()
	if before.Tree.DeadMinis == 0 {
		t.Fatal("seed phase left no tombstones to collect")
	}
	if err := sites[0].eng.ProposeFlatten(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		done := true
		for _, s := range sites {
			if s.eng.FlattensApplied() == 0 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flatten did not commit: committed=%d aborted=%d",
				sites[0].eng.FlattensCommitted(), sites[0].eng.FlattensAborted())
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitContentEqual(t, sites, 20*time.Second)
	checkFlatSites(t, sites)
	if got := sites[0].eng.FlattensCommitted(); got != 1 {
		t.Fatalf("FlattensCommitted = %d, want 1", got)
	}
	for _, s := range sites {
		st := s.buf.Stats()
		if st.Tree.DeadMinis != 0 || st.Tree.MemBytes != 0 {
			t.Fatalf("site %d not flattened: %d tombstones, %d overhead bytes",
				s.id, st.Tree.DeadMinis, st.Tree.MemBytes)
		}
	}
}

// TestFlattenAbortsOnInFlightLocalEdit pins the vote rule that makes the
// port safe without intercepting local edits: an edit applied to the
// replica but not yet stamped by the actor forces a No vote. The edit is
// deliberately held un-broadcast, so the abort is deterministic.
func TestFlattenAbortsOnInFlightLocalEdit(t *testing.T) {
	sites := []*flatSite{newFlatSite(t, 1), newFlatSite(t, 2)}
	defer stopFlatSites(sites)
	meshChan(sites)

	ops, err := sites[0].buf.Append("stable prefix")
	sites[0].broadcast(t, ops, err)
	waitContentEqual(t, sites, 20*time.Second)

	// Site 2 edits but does not broadcast yet: applied version is now ahead
	// of the delivered clock at site 2.
	held, err := sites[1].buf.Append("!")
	if err != nil {
		t.Fatal(err)
	}
	if err := sites[0].eng.ProposeFlatten(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for sites[0].eng.FlattensAborted() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("proposal against an in-flight edit did not abort")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := sites[0].eng.FlattensApplied() + sites[1].eng.FlattensApplied(); got != 0 {
		t.Fatalf("aborted flatten applied %d times", got)
	}

	// Release the held edit; a retry on the quiesced document commits.
	if err := sites[1].eng.Broadcast(held...); err != nil {
		t.Fatal(err)
	}
	waitContentEqual(t, sites, 20*time.Second)
	if err := sites[0].eng.ProposeFlatten(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(20 * time.Second)
	for sites[0].eng.FlattensApplied() == 0 || sites[1].eng.FlattensApplied() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("retry did not commit: committed=%d aborted=%d",
				sites[0].eng.FlattensCommitted(), sites[0].eng.FlattensAborted())
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitContentEqual(t, sites, 20*time.Second)
	checkFlatSites(t, sites)
}

// applierOnly hides every replica capability except Apply, modelling a
// peer that cannot vote.
type applierOnly struct{ buf *treedoc.TextBuffer }

func (a applierOnly) Apply(op treedoc.Op) error { return a.buf.Apply(op) }

// TestFlattenLockBlocksEditsUntilTimeoutAbort: a coordinator's own Yes
// vote freezes the region; with a voteless peer the round can only die by
// deadline, which must release the freeze.
func TestFlattenLockBlocksEditsUntilTimeoutAbort(t *testing.T) {
	s1 := newFlatSite(t, 1)
	defer s1.eng.Stop()
	peerBuf, err := treedoc.NewTextBuffer(treedoc.WithSite(2))
	if err != nil {
		t.Fatal(err)
	}
	peer, err := treedoc.NewEngine(2, applierOnly{peerBuf},
		treedoc.WithSyncInterval(15*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Stop()
	a, b := treedoc.NewChanPair(128)
	s1.eng.Connect(a)
	peer.Connect(b)

	ops, err := s1.buf.Append("content to freeze")
	s1.broadcast(t, ops, err)
	// Let the peer's digests register it as a participant, so the round
	// cannot commit on the coordinator's vote alone.
	deadline := time.Now().Add(10 * time.Second)
	for peer.Applied() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("peer never received the seed ops")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := s1.eng.ProposeFlatten(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the actor cast its own vote
	if _, err := s1.buf.Append("blocked"); !errors.Is(err, treedoc.ErrRegionLocked) {
		t.Fatalf("edit during open vote: err = %v, want ErrRegionLocked", err)
	}
	deadline = time.Now().Add(20 * time.Second)
	for s1.eng.FlattensAborted() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("voteless round did not abort by deadline")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The freeze must be gone after the abort.
	deadline = time.Now().Add(10 * time.Second)
	for {
		ops, err := s1.buf.Append(" released")
		if err == nil {
			if err := s1.eng.Broadcast(ops...); err != nil {
				t.Fatal(err)
			}
			break
		}
		if !errors.Is(err, treedoc.ErrRegionLocked) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("region still frozen after abort")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := s1.eng.FlattensApplied(); got != 0 {
		t.Fatalf("FlattensApplied = %d after abort-only run", got)
	}
}

// TestFlattenCommitsUnderConcurrentWritersTCPMesh is the acceptance
// scenario: three replicas on a real TCP loopback mesh, writers that keep
// appending while cold-subtree flattens are proposed until one commits,
// byte-identical convergence afterwards, and a fourth replica that joins
// post-flatten and catches up via the flatten-epoch snapshot without
// replaying pre-flatten operations.
func TestFlattenCommitsUnderConcurrentWritersTCPMesh(t *testing.T) {
	snapOpt := treedoc.WithSnapshotThreshold(64)
	sites := []*flatSite{
		newFlatSite(t, 1, snapOpt),
		newFlatSite(t, 2, snapOpt),
		newFlatSite(t, 3, snapOpt),
	}
	defer stopFlatSites(sites)
	meshTCP(t, sites)

	// Seed history: a block of text, then heavy front churn so the early
	// region is tombstone-rich — the flatten's payoff.
	for i := 0; i < 30; i++ {
		ops, err := sites[0].buf.Append("all work and no play makes treedoc a dull doc\n")
		sites[0].broadcast(t, ops, err)
	}
	waitContentEqual(t, sites, 30*time.Second)
	for i := 0; i < 20; i++ {
		ops, err := sites[1].buf.Delete(0, 20)
		sites[1].broadcast(t, ops, err)
	}
	waitContentEqual(t, sites, 30*time.Second)

	// Writers keep appending at the tail for the whole flatten phase.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, s := range sites {
		wg.Add(1)
		go func(s *flatSite) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ops, err := s.buf.Append("+tail")
				if err != nil {
					if errors.Is(err, treedoc.ErrRegionLocked) {
						time.Sleep(time.Millisecond)
						continue
					}
					t.Errorf("site %d writer: %v", s.id, err)
					return
				}
				if err := s.eng.Broadcast(ops...); err != nil {
					t.Errorf("site %d writer: %v", s.id, err)
					return
				}
				// A human-ish cadence: continuous editing, but with room for
				// the actor to stamp each burst — on a single-CPU -race run a
				// tighter loop would keep every vote's applied-version check
				// behind and starve the commitment of Yes votes.
				time.Sleep(5 * time.Millisecond)
			}
		}(s)
	}

	// Propose cold-subtree flattens from site 1 until one commits. The
	// writers only touch the tail, so the churned front goes cold as the
	// revision clock advances; any proposal that races an in-flight edit
	// aborts harmlessly and is retried.
	committed := false
	proposeDeadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(proposeDeadline) {
		sites[0].buf.EndRevision()
		before := sites[0].eng.FlattensCommitted() + sites[0].eng.FlattensAborted()
		ok, err := sites[0].eng.ProposeFlattenCold(2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		// Wait for this round to decide, then retry immediately on abort.
		for sites[0].eng.FlattensCommitted()+sites[0].eng.FlattensAborted() == before &&
			time.Now().Before(proposeDeadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if sites[0].eng.FlattensCommitted() > 0 {
			committed = true
			break
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if !committed {
		t.Fatalf("no flatten committed while writers ran: aborted=%d",
			sites[0].eng.FlattensAborted())
	}

	waitContentEqual(t, sites, 60*time.Second)
	checkFlatSites(t, sites)
	for _, s := range sites {
		if s.eng.FlattensApplied() == 0 {
			t.Fatalf("site %d never applied the committed flatten", s.id)
		}
	}
	t.Logf("flatten committed with writers live: committed=%d aborted=%d applied=[%d %d %d]",
		sites[0].eng.FlattensCommitted(), sites[0].eng.FlattensAborted(),
		sites[0].eng.FlattensApplied(), sites[1].eng.FlattensApplied(), sites[2].eng.FlattensApplied())

	// Post-flatten joiner: catches up via the flatten-epoch snapshot.
	var totalOps uint64
	for _, n := range sites[0].eng.Clock() {
		totalOps += n
	}
	joiner := newFlatSite(t, 4, snapOpt)
	defer joiner.eng.Stop()
	ja, jb := tcpPair(t)
	sites[0].eng.Connect(ja)
	joiner.eng.Connect(jb)
	all := append(append([]*flatSite(nil), sites...), joiner)
	waitContentEqual(t, all, 60*time.Second)
	checkFlatSites(t, all)

	if got := joiner.eng.SnapshotsInstalled(); got == 0 {
		t.Fatal("joiner caught up without a snapshot")
	}
	if got := joiner.eng.FlattensApplied(); got != 0 {
		t.Fatalf("joiner replayed %d pre-snapshot flattens; the flatten epoch should be inside the snapshot", got)
	}
	if applied := joiner.eng.Applied(); applied >= totalOps {
		t.Fatalf("joiner replayed %d ops of %d total; snapshot catch-up should skip the pre-flatten history", applied, totalOps)
	}
	t.Logf("joiner: %d snapshot(s), %d ops replayed of %d total", joiner.eng.SnapshotsInstalled(), joiner.eng.Applied(), totalOps)
}

// TestFlattenSurvivesRestartFromLog: a committed flatten is an operation
// in the durable log, so a replica restarted over its log directory
// replays it at the right point and resumes with the flattened state.
func TestFlattenSurvivesRestartFromLog(t *testing.T) {
	dir := t.TempDir()
	s1 := newFlatSite(t, 1, treedoc.WithLogDir(dir))
	s2 := newFlatSite(t, 2)
	defer s2.eng.Stop()
	a, b := treedoc.NewChanPair(128)
	s1.eng.Connect(a)
	s2.eng.Connect(b)

	ops, err := s1.buf.Append("durable flatten target 0123456789")
	s1.broadcast(t, ops, err)
	pair := []*flatSite{s1, s2}
	waitContentEqual(t, pair, 20*time.Second)
	ops, err = s2.buf.Delete(0, 8)
	s2.broadcast(t, ops, err)
	waitContentEqual(t, pair, 20*time.Second)

	if err := s1.eng.ProposeFlatten(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for s1.eng.FlattensApplied() == 0 || s2.eng.FlattensApplied() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flatten did not commit")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ops, err = s1.buf.Append(" +after")
	s1.broadcast(t, ops, err)
	waitContentEqual(t, pair, 20*time.Second)
	want := s1.buf.String()
	s1.eng.Stop()

	// Restart over the same directory with a fresh replica.
	buf, err := treedoc.NewTextBuffer(treedoc.WithSite(1))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := treedoc.NewEngine(1, buf,
		treedoc.WithLogDir(dir),
		treedoc.WithSyncInterval(15*time.Millisecond),
		treedoc.WithFlattenTimeout(250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	restarted := &flatSite{id: 1, buf: buf, eng: eng}
	defer eng.Stop()
	if got := buf.String(); got != want {
		t.Fatalf("restart lost the flattened state:\n got %q\nwant %q", got, want)
	}
	if err := buf.Doc().Check(); err != nil {
		t.Fatal(err)
	}

	// The restarted replica still coordinates flattens.
	a2, b2 := treedoc.NewChanPair(128)
	eng.Connect(a2)
	s2.eng.Connect(b2)
	pair = []*flatSite{restarted, s2}
	ops, err = s2.buf.Delete(0, 4)
	s2.broadcast(t, ops, err)
	waitContentEqual(t, pair, 20*time.Second)
	if err := eng.ProposeFlatten(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(20 * time.Second)
	for eng.FlattensApplied() == 0 || s2.eng.FlattensApplied() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("post-restart flatten did not commit: committed=%d aborted=%d",
				eng.FlattensCommitted(), eng.FlattensAborted())
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitContentEqual(t, pair, 20*time.Second)
	checkFlatSites(t, pair)
}

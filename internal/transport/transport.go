// Package transport is the real concurrent replication engine: it carries
// Treedoc operations between live replicas over goroutines and sockets,
// where internal/simnet only simulates delivery inside one discrete-event
// loop. The paper's deployment story — "common edit operations execute
// optimistically, with no latency; replicas synchronise only in the
// background" (Section 6) — maps onto three layers here:
//
//   - Engine owns one replica's distribution state (causal delivery buffer,
//     retained message log, outbound batch) behind an actor loop: a single
//     goroutine draining an inbox channel. The replica document itself stays
//     whatever the caller hands in (any Applier, e.g. the public Doc or
//     TextBuffer); the engine applies remote operations to it in causal
//     order and stamps local operations for broadcast.
//
//   - Link is the wire: a bidirectional, frame-oriented connection. Two
//     implementations share one binary protocol built on Op's
//     MarshalBinary/UnmarshalBinary — ChanPair (in-process channel pairs
//     with bounded queues and backpressure, for tests and co-located
//     replicas) and TCPLink (length-prefixed framing over net.Conn).
//
//   - Hub is a relay server (cmd/treedoc-serve): clients connect over TCP,
//     attach to one or more documents (DialDoc / Session; plain Dial
//     clients land on DefaultDoc), and every inbound frame is fanned out
//     within its document's relay group only. The hub holds no replica;
//     the causal buffers at the edges deduplicate and order. N hubs can
//     split the document space by consistent hashing (shardmap), with
//     attaches for foreign documents redirected to their owner.
//
// Operation gossip is lossy by design: bounded queues drop frames under
// overload rather than stalling the actor, and a periodic anti-entropy
// exchange (the vector-clock digest protocol of internal/cluster/sync.go)
// retransmits whatever a peer is missing, so delivery is eventual even
// across drops, slow consumers, or a peer that connected late.
//
// Concurrency contract: the engine may be fed from any number of
// goroutines, but each replica's local edits must be generated and
// broadcast in order (one writer goroutine per replica, or external
// serialisation), because causal delivery preserves per-site FIFO only if
// the stamps are issued in generation order.
package transport

// Link is a bidirectional frame pipe between two engines (or an engine and
// a hub). Send may block — that is the backpressure path — and must be safe
// for concurrent use; Recv is called from one reader goroutine. Close
// unblocks both directions.
type Link interface {
	// Send transmits one frame. It may block while the peer is slow; it
	// returns an error once the link is closed or broken.
	Send(frame []byte) error
	// Recv returns the next frame, blocking until one arrives. It returns
	// an error once the link is closed or broken.
	Recv() ([]byte, error)
	// Close tears the link down, unblocking pending Send and Recv calls.
	Close() error
}

// ReplayRouter is implemented by links whose far end can route a directed
// kindReplay frame to its addressed requester — a Session link through a
// doc-aware hub. Engines answer anti-entropy pulls on such links with
// addressed frames, so a hot document's answers cost one delivery each
// instead of one per group member; on plain links answers broadcast
// exactly as before.
type ReplayRouter interface {
	RoutesReplay() bool
}

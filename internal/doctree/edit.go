package doctree

import (
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
)

// InsertID places atom at identifier id, materialising any missing ancestor
// structure (replay may find ancestors discarded concurrently under UDIS and
// "must re-create empty nodes to replace them", Section 3.3.1). It fails if
// a live atom already holds the identifier: position identifiers are unique
// (Section 2.1), so a duplicate indicates a protocol violation upstream.
func (t *Tree) InsertID(id ident.Path, atom string) error {
	m, err := t.materialize(id)
	if err != nil {
		return fmt.Errorf("doctree: insert %v: %w", id, err)
	}
	if !m.dead {
		return fmt.Errorf("doctree: insert %v: identifier already holds a live atom", id)
	}
	m.dead = false
	m.atom = atom
	t.bubble(m.owner, +1, 0, -1) // the placeholder created by materialize was dead
	return nil
}

// DeleteID removes the atom with identifier id. The delete operation is
// idempotent (Section 2.2): deleting an already-dead or already-discarded
// identifier reports found=false with no error.
//
// With prune=true (UDIS semantics, Section 3.3.1) the mini-node is discarded
// immediately when it has no descendants, and emptied ancestors are
// discarded recursively. With prune=false (SDIS semantics, Section 3.3.2)
// the mini-node is kept as a tombstone so the identifier is never reused.
func (t *Tree) DeleteID(id ident.Path, prune bool) (found bool, err error) {
	m, err := t.walkMini(id)
	if err != nil {
		if IsNotFound(err) {
			return false, nil
		}
		return false, fmt.Errorf("doctree: delete %v: %w", id, err)
	}
	if m.dead {
		return false, nil
	}
	m.dead = true
	m.atom = ""
	t.bubble(m.owner, -1, 0, +1)
	if prune {
		t.pruneMini(m)
	}
	return true, nil
}

// pruneMini discards a dead, childless mini-node and cascades upward:
// "if all the mini-nodes of a major node are deleted, and all its
// descendants, then the major node is discarded" (Section 3.3.1).
func (t *Tree) pruneMini(m *Mini) {
	if !m.dead || m.left != nil || m.right != nil {
		return
	}
	n := m.owner
	for i, mm := range n.minis {
		if mm == m {
			n.minis = append(n.minis[:i], n.minis[i+1:]...)
			t.bubble(n, 0, 0, -1)
			if n.empty() {
				bubbleEmpty(n, +1)
			}
			break
		}
	}
	t.pruneNode(n)
}

// pruneNode discards n if it holds nothing and has no children, then
// continues with the slot it hung from.
func (t *Tree) pruneNode(n *Node) {
	for n != nil && n.parent != nil && n.empty() && n.left == nil && n.right == nil {
		parent, pmini := n.parent, n.pmini
		if pmini != nil {
			pmini.setChild(n.bit, nil)
		} else {
			parent.setChild(n.bit, nil)
		}
		t.bubbleCounts(parent, 0, -1)
		bubbleEmpty(parent, -1) // the removed node was an empty slot
		if pmini != nil && pmini.dead && pmini.left == nil && pmini.right == nil {
			for i, mm := range parent.minis {
				if mm == pmini {
					parent.minis = append(parent.minis[:i], parent.minis[i+1:]...)
					t.bubble(parent, 0, 0, -1)
					if parent.empty() {
						bubbleEmpty(parent, +1)
					}
					break
				}
			}
			n = parent
			continue
		}
		n = parent
	}
}

// HasLive reports whether id currently identifies a live atom.
func (t *Tree) HasLive(id ident.Path) bool {
	m, err := t.walkMini(id)
	return err == nil && !m.dead
}

// Exists reports whether id is a used identifier: a live atom or a
// tombstone. Identifier allocation consults this so SDIS never re-mints a
// tombstoned identifier (Section 3.3.2: "a delete does not discard the
// node" exactly so the identifier stays used). Unlike walkMini, this never
// explodes flattened regions: identifiers inside them are canonical pure
// bitstrings, so any site-disambiguated candidate is known absent without
// materialising the region.
func (t *Tree) Exists(id ident.Path) bool {
	cur := slot{node: t.root}
	for i, e := range id {
		if cur.node.flat != nil {
			// Inside a flattened region every used identifier carries only
			// canonical disambiguators on a pure bitstring; a candidate with
			// a site disambiguator cannot collide. Candidates that are pure
			// canonical are never allocated (explode owns that space), so
			// conservatively report used only for canonical-tail ids.
			for ; i < len(id); i++ {
				if id[i].Kind == ident.Mini && !id[i].Dis.IsCanonical() {
					return false
				}
			}
			return true
		}
		next := cur.child(e.Bit)
		if next == nil {
			return false
		}
		if e.Kind == ident.Major {
			cur = slot{node: next}
			continue
		}
		if next.flat != nil {
			if e.Dis.IsCanonical() {
				return true // conservatively used: inside the canonical space
			}
			return false
		}
		m := next.findMini(e.Dis)
		if m == nil {
			return false
		}
		cur = slot{node: next, mini: m}
	}
	return cur.mini != nil
}

// AtomByID returns the live atom at id.
func (t *Tree) AtomByID(id ident.Path) (string, error) {
	m, err := t.walkMini(id)
	if err != nil {
		return "", err
	}
	if m.dead {
		return "", errNotFound
	}
	return m.atom, nil
}

package doctree

import (
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
)

// InsertID places atom at identifier id, materialising any missing ancestor
// structure (replay may find ancestors discarded concurrently under UDIS and
// "must re-create empty nodes to replace them", Section 3.3.1). It fails if
// a live atom already holds the identifier: position identifiers are unique
// (Section 2.1), so a duplicate indicates a protocol violation upstream.
func (t *Tree) InsertID(id ident.Path, atom string) error {
	// Fast path: walk the identifier accumulating all count deltas, then
	// climb to the root once. Nodes created here form a suffix of the walk
	// (a created node's children cannot pre-exist), so their counters are
	// set exactly in one bottom-up pass over the created chain. The one case
	// needing a placeholder mini inside a *pre-existing* node mid-path — a
	// replay whose ancestors were concurrently discarded (Section 3.3.1) —
	// falls back to the per-delta slow path before anything is modified.
	cur, depth := t.resumeSlot(id)
	skip := depth
	if err := id.ValidateFrom(depth); err != nil {
		return fmt.Errorf("doctree: insert %v: %w", id, err)
	}
	var first *Node       // shallowest node created by this walk
	finalCreated := false // the atom's mini was created (vs found)
	ownerWasFree := false // final mini added to an existing node with no minis
	for _, e := range id[depth:] {
		if cur.node.flat != nil {
			t.explodeNode(cur.node)
		}
		depth++
		next := cur.child(e.Bit)
		created := next == nil
		if created {
			next = t.newNode(cur.node, cur.mini, e.Bit)
			cur.setChild(e.Bit, next)
			if first == nil {
				first = next
			}
			if depth > t.height {
				t.height = depth
			}
		} else if next.flat != nil {
			t.explodeNode(next)
		}
		if e.Kind == ident.Major {
			cur = slot{node: next}
			continue
		}
		m := next.findMini(e.Dis)
		if m == nil {
			if !created && depth != len(id) {
				return t.insertSlow(id, atom)
			}
			if !created {
				ownerWasFree = len(next.minis) == 0
			}
			m = t.insertMini(next, e.Dis)
			m.dead = true
			if depth == len(id) {
				finalCreated = true
			}
		}
		cur = slot{node: next, mini: m}
	}
	m := cur.mini
	if !finalCreated {
		if !m.dead {
			return fmt.Errorf("doctree: insert %v: identifier already holds a live atom", id)
		}
		// Revive an existing tombstone.
		m.dead = false
		m.atom = atom
		t.bubble(m.owner, +1, 0, -1)
		t.cacheWalkFrom(id, m, skip)
		return nil
	}
	m.dead = false
	m.atom = atom
	if first == nil {
		// Fresh mini in an existing node; no structure added.
		d := 0
		if ownerWasFree {
			d = -1 // the node stops being a free slot
		}
		t.bubbleAll(m.owner, +1, 0, 0, d)
		t.cacheWalkFrom(id, m, skip)
		return nil
	}
	// Set the created chain's counters bottom-up, then climb once from the
	// chain's attachment point with the accumulated deltas.
	accNodes, accDead, accEmpty := 0, 0, 0
	for n := m.owner; ; n = n.parent {
		accNodes++
		for _, mm := range n.minis {
			if mm.dead {
				accDead++
			}
		}
		if len(n.minis) == 0 {
			accEmpty++
		}
		n.live = 1
		n.nodes = accNodes
		n.dead = accDead
		n.emptyN = accEmpty
		n.lastMod = t.rev
		if n == first {
			break
		}
	}
	t.bubbleAll(first.parent, +1, accNodes, accDead, accEmpty)
	t.cacheWalkFrom(id, m, skip)
	return nil
}

// insertSlow is InsertID's general path: full per-delta materialisation, for
// replays that must re-create placeholder minis inside existing nodes.
func (t *Tree) insertSlow(id ident.Path, atom string) error {
	m, err := t.materialize(id)
	if err != nil {
		return fmt.Errorf("doctree: insert %v: %w", id, err)
	}
	if !m.dead {
		return fmt.Errorf("doctree: insert %v: identifier already holds a live atom", id)
	}
	m.dead = false
	m.atom = atom
	t.bubble(m.owner, +1, 0, -1) // the placeholder created by materialize was dead
	return nil
}

// DeleteID removes the atom with identifier id. The delete operation is
// idempotent (Section 2.2): deleting an already-dead or already-discarded
// identifier reports found=false with no error.
//
// With prune=true (UDIS semantics, Section 3.3.1) the mini-node is discarded
// immediately when it has no descendants, and emptied ancestors are
// discarded recursively. With prune=false (SDIS semantics, Section 3.3.2)
// the mini-node is kept as a tombstone so the identifier is never reused.
func (t *Tree) DeleteID(id ident.Path, prune bool) (found bool, err error) {
	m, err := t.walkMini(id)
	if err != nil {
		if IsNotFound(err) {
			return false, nil
		}
		return false, fmt.Errorf("doctree: delete %v: %w", id, err)
	}
	return t.deleteMini(m, prune), nil
}

// DeleteAtIndex deletes the i-th live atom in a single count-guided descent,
// appending its identifier to dst. The locate walk already ends at the
// atom's mini-node, so the delete needs no second identifier walk — local
// deletes are the other half of an editor's hot path, and the re-walk
// DeleteID would do costs a full O(depth) prefix comparison even when it
// resumes from the walk cache.
func (t *Tree) DeleteAtIndex(i int, prune bool, dst ident.Path) (ident.Path, error) {
	if i < 0 || i >= t.root.live {
		return dst, fmt.Errorf("doctree: index %d out of range [0,%d)", i, t.root.live)
	}
	base := len(dst)
	dst, m := t.appendIDDown(t.root, i, dst)
	kept := !prune || m.left != nil || m.right != nil
	t.deleteMini(m, prune)
	if kept && base == 0 {
		// The tombstone stays addressable, so the completed walk may seed the
		// cache exactly as AppendIDAt would (a prune invalidates it instead,
		// inside deleteMini).
		t.cacheWalk(dst, m)
	}
	return dst, nil
}

// deleteMini applies delete semantics to a located mini-node; see DeleteID.
func (t *Tree) deleteMini(m *Mini, prune bool) (found bool) {
	if m.dead {
		return false
	}
	m.dead = true
	m.atom = ""
	if !prune || m.left != nil || m.right != nil {
		// Tombstone (SDIS), or a discard blocked by descendants (UDIS).
		t.bubble(m.owner, -1, 0, +1)
		return true
	}
	// UDIS discard: remove the mini and cascade emptied ancestors, then
	// climb once with the accumulated deltas. Nodes detached mid-cascade
	// need no counter updates (they are gone); only the chain above the
	// cascade's stop point sees the net change.
	t.cacheDrop()
	n := m.owner
	for i, mm := range n.minis {
		if mm == m {
			n.minis = append(n.minis[:i], n.minis[i+1:]...)
			break
		}
	}
	dNodes, dDead, dEmpty := 0, 0, 0
	if n.empty() {
		dEmpty++
	}
	for n.parent != nil && n.empty() && n.left == nil && n.right == nil {
		parent, pmini := n.parent, n.pmini
		if pmini != nil {
			pmini.setChild(n.bit, nil)
		} else {
			parent.setChild(n.bit, nil)
		}
		dNodes--
		dEmpty-- // the detached node was an empty slot
		if pmini != nil && pmini.dead && pmini.left == nil && pmini.right == nil {
			for i, mm := range parent.minis {
				if mm == pmini {
					parent.minis = append(parent.minis[:i], parent.minis[i+1:]...)
					break
				}
			}
			dDead--
			if parent.empty() {
				dEmpty++
			}
		}
		n = parent
	}
	t.bubbleAll(n, -1, dNodes, dDead, dEmpty)
	return true
}

// HasLive reports whether id currently identifies a live atom.
func (t *Tree) HasLive(id ident.Path) bool {
	m, err := t.walkMini(id)
	return err == nil && !m.dead
}

// Exists reports whether id is a used identifier: a live atom or a
// tombstone. Identifier allocation consults this so SDIS never re-mints a
// tombstoned identifier (Section 3.3.2: "a delete does not discard the
// node" exactly so the identifier stays used). Unlike walkMini, this never
// explodes flattened regions: identifiers inside them are canonical pure
// bitstrings, so any site-disambiguated candidate is known absent without
// materialising the region.
func (t *Tree) Exists(id ident.Path) bool {
	cur, skip := t.resumeSlot(id)
	for i, e := range id[skip:] {
		i += skip
		if cur.node.flat != nil {
			// Inside a flattened region every used identifier carries only
			// canonical disambiguators on a pure bitstring; a candidate with
			// a site disambiguator cannot collide. Candidates that are pure
			// canonical are never allocated (explode owns that space), so
			// conservatively report used only for canonical-tail ids.
			for ; i < len(id); i++ {
				if id[i].Kind == ident.Mini && !id[i].Dis.IsCanonical() {
					return false
				}
			}
			return true
		}
		next := cur.child(e.Bit)
		if next == nil {
			return false
		}
		if e.Kind == ident.Major {
			cur = slot{node: next}
			continue
		}
		if next.flat != nil {
			if e.Dis.IsCanonical() {
				return true // conservatively used: inside the canonical space
			}
			return false
		}
		m := next.findMini(e.Dis)
		if m == nil {
			return false
		}
		cur = slot{node: next, mini: m}
	}
	return cur.mini != nil
}

// AtomByID returns the live atom at id.
func (t *Tree) AtomByID(id ident.Path) (string, error) {
	m, err := t.walkMini(id)
	if err != nil {
		return "", err
	}
	if m.dead {
		return "", errNotFound
	}
	return m.atom, nil
}

package doctree

import (
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
)

// Content returns the document's live atoms in order. It does not explode
// flattened regions.
func (t *Tree) Content() []string {
	out := make([]string, 0, t.root.live)
	collectLive(t.root, &out)
	return out
}

// AtomAt returns the i-th live atom (0-based) without exploding flattened
// regions.
func (t *Tree) AtomAt(i int) (string, error) {
	if i < 0 || i >= t.root.live {
		return "", fmt.Errorf("doctree: index %d out of range [0,%d)", i, t.root.live)
	}
	n, mini, flatIdx := locate(t.root, i)
	if mini != nil {
		return mini.atom, nil
	}
	return n.flat[flatIdx], nil
}

// locate descends by live-atom counts to position i within n's subtree,
// returning either the mini-node holding it or the flat node and offset.
func locate(n *Node, i int) (*Node, *Mini, int) {
	for {
		if n.flat != nil {
			return n, nil, i
		}
		if n.left != nil {
			if i < n.left.live {
				n = n.left
				continue
			}
			i -= n.left.live
		}
		advanced := false
		for _, m := range n.minis {
			if m.left != nil {
				if i < m.left.live {
					n = m.left
					advanced = true
					break
				}
				i -= m.left.live
			}
			if !m.dead {
				if i == 0 {
					return n, m, 0
				}
				i--
			}
			if m.right != nil {
				if i < m.right.live {
					n = m.right
					advanced = true
					break
				}
				i -= m.right.live
			}
		}
		if advanced {
			continue
		}
		n = n.right
	}
}

// MiniAt returns the mini-node of the i-th live atom, exploding a flattened
// region if the atom lives inside one (identifier requests are "applying a
// path to an array", Section 4.2).
func (t *Tree) MiniAt(i int) (*Mini, error) {
	if i < 0 || i >= t.root.live {
		return nil, fmt.Errorf("doctree: index %d out of range [0,%d)", i, t.root.live)
	}
	for {
		n, mini, _ := locate(t.root, i)
		if mini != nil {
			return mini, nil
		}
		t.explodeNode(n)
	}
}

// IDAt returns the position identifier of the i-th live atom.
func (t *Tree) IDAt(i int) (ident.Path, error) {
	m, err := t.MiniAt(i)
	if err != nil {
		return nil, err
	}
	return PathToMini(m), nil
}

// NeighborIDs returns the identifiers around insertion gap i: the atom at
// i-1 (nil at the document start) and the atom at i (nil at the end).
// Inserting at gap i places the new atom between them.
func (t *Tree) NeighborIDs(i int) (p, f ident.Path, err error) {
	if i < 0 || i > t.root.live {
		return nil, nil, fmt.Errorf("doctree: gap %d out of range [0,%d]", i, t.root.live)
	}
	if i > 0 {
		if p, err = t.IDAt(i - 1); err != nil {
			return nil, nil, err
		}
	}
	if i < t.root.live {
		if f, err = t.IDAt(i); err != nil {
			return nil, nil, err
		}
	}
	return p, f, nil
}

// IndexOfID returns the current document index of the live atom with the
// given identifier.
func (t *Tree) IndexOfID(id ident.Path) (int, error) {
	m, err := t.walkMini(id)
	if err != nil {
		return 0, err
	}
	if m.dead {
		return 0, errNotFound
	}
	// Count live atoms before m: its left subtree, then climb.
	idx := 0
	if m.left != nil {
		idx += m.left.live
	}
	n := m.owner
	for _, mm := range n.minis {
		if mm == m {
			break
		}
		idx += miniLive(mm)
	}
	if n.left != nil {
		idx += n.left.live
	}
	// Climb: whenever we were in a right-side region, everything to the left
	// at that level precedes us.
	child := n
	for cur := n.parent; cur != nil; child, cur = cur, cur.parent {
		if child.pmini != nil {
			pm := child.pmini
			if child.bit == 1 {
				// Right child of the mini: the mini's atom and left subtree
				// precede us.
				if pm.left != nil {
					idx += pm.left.live
				}
				if !pm.dead {
					idx++
				}
			}
			for _, mm := range cur.minis {
				if mm == pm {
					break
				}
				idx += miniLive(mm)
			}
			if cur.left != nil {
				idx += cur.left.live
			}
		} else if child.bit == 1 {
			// Right child of the major node: everything else in cur precedes.
			idx += cur.live - child.live
		}
	}
	return idx, nil
}

// miniLive returns the live atoms in a mini's own region (its subtrees plus
// its atom).
func miniLive(m *Mini) int {
	n := 0
	if m.left != nil {
		n += m.left.live
	}
	if !m.dead {
		n++
	}
	if m.right != nil {
		n += m.right.live
	}
	return n
}

// VisitLive calls fn for every live atom in document order with its index.
// Atoms inside flattened regions are visited with a nil mini. Iteration
// stops early if fn returns false.
func (t *Tree) VisitLive(fn func(i int, atom string, m *Mini) bool) {
	i := 0
	visitLive(t.root, &i, fn)
}

func visitLive(n *Node, i *int, fn func(int, string, *Mini) bool) bool {
	if n == nil {
		return true
	}
	if n.flat != nil {
		for _, a := range n.flat {
			if !fn(*i, a, nil) {
				return false
			}
			*i++
		}
		return true
	}
	if !visitLive(n.left, i, fn) {
		return false
	}
	for _, m := range n.minis {
		if !visitLive(m.left, i, fn) {
			return false
		}
		if !m.dead {
			if !fn(*i, m.atom, m) {
				return false
			}
			*i++
		}
		if !visitLive(m.right, i, fn) {
			return false
		}
	}
	return visitLive(n.right, i, fn)
}

package doctree

import (
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
)

// Content returns the document's live atoms in order. It does not explode
// flattened regions.
func (t *Tree) Content() []string {
	out := make([]string, 0, t.root.live)
	collectLive(t.root, &out)
	return out
}

// AtomAt returns the i-th live atom (0-based) without exploding flattened
// regions.
func (t *Tree) AtomAt(i int) (string, error) {
	if i < 0 || i >= t.root.live {
		return "", fmt.Errorf("doctree: index %d out of range [0,%d)", i, t.root.live)
	}
	n, mini, flatIdx := locate(t.root, i)
	if mini != nil {
		return mini.atom, nil
	}
	return n.flat[flatIdx], nil
}

// locate descends by live-atom counts to position i within n's subtree,
// returning either the mini-node holding it or the flat node and offset.
func locate(n *Node, i int) (*Node, *Mini, int) {
	for {
		if n.flat != nil {
			return n, nil, i
		}
		if n.left != nil {
			if i < n.left.live {
				n = n.left
				continue
			}
			i -= n.left.live
		}
		advanced := false
		for _, m := range n.minis {
			if m.left != nil {
				if i < m.left.live {
					n = m.left
					advanced = true
					break
				}
				i -= m.left.live
			}
			if !m.dead {
				if i == 0 {
					return n, m, 0
				}
				i--
			}
			if m.right != nil {
				if i < m.right.live {
					n = m.right
					advanced = true
					break
				}
				i -= m.right.live
			}
		}
		if advanced {
			continue
		}
		n = n.right
	}
}

// MiniAt returns the mini-node of the i-th live atom, exploding a flattened
// region if the atom lives inside one (identifier requests are "applying a
// path to an array", Section 4.2).
func (t *Tree) MiniAt(i int) (*Mini, error) {
	if i < 0 || i >= t.root.live {
		return nil, fmt.Errorf("doctree: index %d out of range [0,%d)", i, t.root.live)
	}
	for {
		n, mini, _ := locate(t.root, i)
		if mini != nil {
			return mini, nil
		}
		t.explodeNode(n)
	}
}

// IDAt returns the position identifier of the i-th live atom.
func (t *Tree) IDAt(i int) (ident.Path, error) {
	m, err := t.MiniAt(i)
	if err != nil {
		return nil, err
	}
	return PathToMini(m), nil
}

// AppendIDAt appends the position identifier of the i-th live atom to dst.
// It is IDAt in append-to-dst form for callers that consult identifiers per
// edit (neighbour lookups), and it builds the identifier during the locate
// descent itself: the nodes the count-guided descent visits are exactly the
// identifier's chain, so the element for each node is emitted as the walk
// leaves it, with no separate path-building climb afterwards. Flattened
// regions on the way are exploded (applying a path to an array,
// Section 4.2).
func (t *Tree) AppendIDAt(dst ident.Path, i int) (ident.Path, error) {
	if i < 0 || i >= t.root.live {
		return dst, fmt.Errorf("doctree: index %d out of range [0,%d)", i, t.root.live)
	}
	base := len(dst)
	dst, m := t.appendIDDown(t.root, i, dst)
	if base == 0 {
		// The identifier is well-formed by construction, so it may seed the
		// walk cache: the operation that consults an atom's identifier (a
		// delete, a neighbour probe) walks to this same mini next.
		t.cacheWalk(dst, m)
	}
	return dst, nil
}

// appendIDDown locates the i-th live atom of n's subtree, appending the
// identifier elements of the descent to dst, and returns the extended path
// and the atom's mini-node. i must be within n's live count. Flattened
// regions on the way are exploded.
func (t *Tree) appendIDDown(n *Node, i int, dst ident.Path) (ident.Path, *Mini) {
	for {
		if n.flat != nil {
			t.explodeNode(n)
		}
		if n.left != nil && i < n.left.live {
			// Leaving n through its major-left slot: a plain element.
			// The root contributes no element.
			if n.parent != nil {
				dst = append(dst, ident.J(n.bit))
			}
			n = n.left
			continue
		}
		if n.left != nil {
			i -= n.left.live
		}
		var next *Node
		for _, m := range n.minis {
			if m.left != nil {
				if i < m.left.live {
					next = m.left
					dst = append(dst, ident.M(n.bit, m.dis))
					break
				}
				i -= m.left.live
			}
			if !m.dead {
				if i == 0 {
					return append(dst, ident.M(n.bit, m.dis)), m
				}
				i--
			}
			if m.right != nil {
				if i < m.right.live {
					next = m.right
					dst = append(dst, ident.M(n.bit, m.dis))
					break
				}
				i -= m.right.live
			}
		}
		if next != nil {
			n = next
			continue
		}
		if n.parent != nil {
			dst = append(dst, ident.J(n.bit))
		}
		n = n.right
	}
}

// AppendNeighborIDs appends the identifiers of the atoms at i-1 (to dstP)
// and i (to dstF) around insertion gap i, with 0 < i < Len. Adjacent atoms
// share their identifier prefix down to the node where their routes split,
// so the shared part is walked (and written) once instead of twice — the
// per-edit neighbour lookup is the hottest read path of a replica. The walk
// cache is left at the left neighbour: the identifier allocated for the gap
// extends it, so the insert that follows resumes deepest there.
func (t *Tree) AppendNeighborIDs(dstP, dstF ident.Path, i int) (p, f ident.Path, err error) {
	if i <= 0 || i >= t.root.live {
		return dstP, dstF, fmt.Errorf("doctree: interior gap %d out of range (0,%d)", i, t.root.live)
	}
	pBase := len(dstP)
	a := i - 1 // left target, relative to the current subtree; right = a+1
	n := t.root
descend:
	for {
		if n.flat != nil {
			t.explodeNode(n)
		}
		// Find the region holding the left target; descend only while the
		// right target lands in the same child subtree. rel tracks the
		// left target's offset within the regions scanned so far and is
		// committed to a only on descent, so a stays relative to n's whole
		// subtree when the routes split here.
		rel := a
		var next *Node
		var elem ident.Elem
		if n.left != nil {
			if rel+1 < n.left.live {
				next, elem = n.left, ident.J(n.bit)
			} else if rel < n.left.live {
				break descend
			} else {
				rel -= n.left.live
			}
		}
		if next == nil {
			for _, m := range n.minis {
				if m.left != nil {
					if rel+1 < m.left.live {
						next, elem = m.left, ident.M(n.bit, m.dis)
						break
					}
					if rel < m.left.live {
						break descend
					}
					rel -= m.left.live
				}
				if !m.dead {
					if rel == 0 {
						break descend
					}
					rel--
				}
				if m.right != nil {
					if rel+1 < m.right.live {
						next, elem = m.right, ident.M(n.bit, m.dis)
						break
					}
					if rel < m.right.live {
						break descend
					}
					rel -= m.right.live
				}
			}
		}
		if next == nil {
			// Both targets remain in the major-right subtree.
			next, elem = n.right, ident.J(n.bit)
		}
		if n.parent != nil {
			dstP = append(dstP, elem)
		}
		n, a = next, rel
	}
	// The routes split inside n: finish each target separately. The right
	// target first, so the walk cache ends at the left neighbour.
	dstF = append(dstF, dstP[pBase:]...)
	dstF, _ = t.appendIDDown(n, a+1, dstF)
	var pm *Mini
	dstP, pm = t.appendIDDown(n, a, dstP)
	if pBase == 0 {
		t.cacheWalk(dstP, pm)
	}
	return dstP, dstF, nil
}

// NeighborIDs returns the identifiers around insertion gap i: the atom at
// i-1 (nil at the document start) and the atom at i (nil at the end).
// Inserting at gap i places the new atom between them.
func (t *Tree) NeighborIDs(i int) (p, f ident.Path, err error) {
	if i < 0 || i > t.root.live {
		return nil, nil, fmt.Errorf("doctree: gap %d out of range [0,%d]", i, t.root.live)
	}
	if i > 0 {
		if p, err = t.IDAt(i - 1); err != nil {
			return nil, nil, err
		}
	}
	if i < t.root.live {
		if f, err = t.IDAt(i); err != nil {
			return nil, nil, err
		}
	}
	return p, f, nil
}

// IndexOfID returns the current document index of the live atom with the
// given identifier.
func (t *Tree) IndexOfID(id ident.Path) (int, error) {
	m, err := t.walkMini(id)
	if err != nil {
		return 0, err
	}
	if m.dead {
		return 0, errNotFound
	}
	// Count live atoms before m: its left subtree, then climb.
	idx := 0
	if m.left != nil {
		idx += m.left.live
	}
	n := m.owner
	for _, mm := range n.minis {
		if mm == m {
			break
		}
		idx += miniLive(mm)
	}
	if n.left != nil {
		idx += n.left.live
	}
	// Climb: whenever we were in a right-side region, everything to the left
	// at that level precedes us.
	child := n
	for cur := n.parent; cur != nil; child, cur = cur, cur.parent {
		if child.pmini != nil {
			pm := child.pmini
			if child.bit == 1 {
				// Right child of the mini: the mini's atom and left subtree
				// precede us.
				if pm.left != nil {
					idx += pm.left.live
				}
				if !pm.dead {
					idx++
				}
			}
			for _, mm := range cur.minis {
				if mm == pm {
					break
				}
				idx += miniLive(mm)
			}
			if cur.left != nil {
				idx += cur.left.live
			}
		} else if child.bit == 1 {
			// Right child of the major node: everything else in cur precedes.
			idx += cur.live - child.live
		}
	}
	return idx, nil
}

// miniLive returns the live atoms in a mini's own region (its subtrees plus
// its atom).
func miniLive(m *Mini) int {
	n := 0
	if m.left != nil {
		n += m.left.live
	}
	if !m.dead {
		n++
	}
	if m.right != nil {
		n += m.right.live
	}
	return n
}

// VisitRange calls fn for the live atoms of the index range [from, to) in
// document order, descending by live counts to skip whole subtrees before
// the range: one walk of cost O(height + to - from), where per-atom lookup
// would cost O((to-from)·height). It does not explode flattened regions.
// Iteration stops early if fn returns false.
func (t *Tree) VisitRange(from, to int, fn func(atom string) bool) error {
	if from < 0 || to < from || to > t.root.live {
		return fmt.Errorf("doctree: range [%d,%d) out of range [0,%d]", from, to, t.root.live)
	}
	skip, count := from, to-from
	visitRange(t.root, &skip, &count, fn)
	return nil
}

func visitRange(n *Node, skip, count *int, fn func(string) bool) bool {
	if n == nil || *count == 0 {
		return true
	}
	if *skip >= n.live {
		*skip -= n.live
		return true
	}
	if n.flat != nil {
		for _, a := range n.flat[*skip:] {
			if *count == 0 {
				return true
			}
			if !fn(a) {
				return false
			}
			*count--
		}
		*skip = 0
		return true
	}
	if !visitRange(n.left, skip, count, fn) {
		return false
	}
	for _, m := range n.minis {
		if *count == 0 {
			return true
		}
		if !visitRange(m.left, skip, count, fn) {
			return false
		}
		if !m.dead && *count > 0 {
			if *skip > 0 {
				*skip--
			} else {
				if !fn(m.atom) {
					return false
				}
				*count--
			}
		}
		if !visitRange(m.right, skip, count, fn) {
			return false
		}
	}
	return visitRange(n.right, skip, count, fn)
}

// VisitLive calls fn for every live atom in document order with its index.
// Atoms inside flattened regions are visited with a nil mini. Iteration
// stops early if fn returns false.
func (t *Tree) VisitLive(fn func(i int, atom string, m *Mini) bool) {
	i := 0
	visitLive(t.root, &i, fn)
}

func visitLive(n *Node, i *int, fn func(int, string, *Mini) bool) bool {
	if n == nil {
		return true
	}
	if n.flat != nil {
		for _, a := range n.flat {
			if !fn(*i, a, nil) {
				return false
			}
			*i++
		}
		return true
	}
	if !visitLive(n.left, i, fn) {
		return false
	}
	for _, m := range n.minis {
		if !visitLive(m.left, i, fn) {
			return false
		}
		if !m.dead {
			if !fn(*i, m.atom, m) {
				return false
			}
			*i++
		}
		if !visitLive(m.right, i, fn) {
			return false
		}
	}
	return visitLive(n.right, i, fn)
}

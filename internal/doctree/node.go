// Package doctree implements the extended binary tree that backs a Treedoc
// document (Section 3 of the ICDCS 2009 paper): major nodes whose contents
// are disambiguated mini-nodes, with children hanging both off major nodes
// (plain path elements) and off individual mini-nodes (disambiguated path
// elements).
//
// The tree is simultaneously the identifier space and the storage layer. It
// supports the paper's mixed representation (Section 4.2): quiescent
// subtrees may be held as flat atom arrays with zero per-atom metadata and
// are exploded back into canonical tree form lazily when a path is applied
// to them.
//
// doctree is a single-replica data structure with no concurrency control of
// its own; internal/core layers CRDT operation semantics on top, and the
// public treedoc package adds locking.
package doctree

import (
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
)

// Node is a major node: one position of the binary identifier tree. Its
// contents are mini-nodes ordered by disambiguator. Children reached by
// plain path elements hang off the node itself (left, right); children
// reached by disambiguated elements hang off the individual mini-nodes.
//
// A node with a non-nil flat slice is a flattened region (Section 4.2): it
// stores its whole subtree's live atoms as a plain array with no metadata,
// and has no minis or children until a path walk explodes it.
type Node struct {
	parent *Node // node containing the slot we hang from; nil at root
	pmini  *Mini // mini of parent we hang from; nil = parent's major slot
	bit    uint8 // which side of the parent slot

	left, right *Node
	minis       []*Mini // sorted by disambiguator

	flat []string // non-nil: flattened subtree content (leaf region)

	live    int   // live atoms in this subtree, including flat content
	nodes   int   // tree nodes in this subtree (flat regions count as 0)
	dead    int   // tombstone mini-nodes in this subtree
	emptyN  int   // empty (reusable-slot) nodes in this subtree
	lastMod int64 // latest revision that edited inside this subtree
}

// Mini is a mini-node: one atom slot inside a major node, identified by its
// disambiguator (Section 3.1). A dead mini is a tombstone (SDIS) or an
// awaiting-discard placeholder (UDIS); its atom is gone but the identifier
// remains allocated.
type Mini struct {
	owner *Node
	dis   ident.Dis
	atom  string
	dead  bool

	left, right *Node
}

// Dis returns the mini-node's disambiguator.
func (m *Mini) Dis() ident.Dis { return m.dis }

// Atom returns the mini-node's atom ("" once dead).
func (m *Mini) Atom() string { return m.atom }

// Dead reports whether the mini-node is a tombstone.
func (m *Mini) Dead() bool { return m.dead }

// Tree is a Treedoc document tree. The zero value is not usable; call New.
type Tree struct {
	root   *Node
	height int   // max depth of any node (root = 0)
	rev    int64 // current revision stamp for lastMod bookkeeping
}

// New returns an empty document tree.
func New() *Tree {
	return &Tree{root: &Node{}}
}

// Len returns the number of live atoms in the document.
func (t *Tree) Len() int { return t.root.live }

// Height returns the maximum node depth ever materialised (root = 0). It is
// maintained as a monotonic maximum between structural clean-ups; Flatten
// recomputes it.
func (t *Tree) Height() int { return t.height }

// Rev returns the current revision stamp.
func (t *Tree) Rev() int64 { return t.rev }

// AdvanceRev moves the revision clock forward; subsequent edits stamp
// subtrees with the new revision. The cold-subtree heuristics compare
// against these stamps.
func (t *Tree) AdvanceRev() { t.rev++ }

// child returns the indicated major child slot.
func (n *Node) child(bit uint8) *Node {
	if bit == 0 {
		return n.left
	}
	return n.right
}

func (n *Node) setChild(bit uint8, c *Node) {
	if bit == 0 {
		n.left = c
	} else {
		n.right = c
	}
}

func (m *Mini) child(bit uint8) *Node {
	if bit == 0 {
		return m.left
	}
	return m.right
}

func (m *Mini) setChild(bit uint8, c *Node) {
	if bit == 0 {
		m.left = c
	} else {
		m.right = c
	}
}

// findMini returns the mini with disambiguator d, or nil.
func (n *Node) findMini(d ident.Dis) *Mini {
	for _, m := range n.minis {
		if m.dis == d {
			return m
		}
	}
	return nil
}

// insertMini adds a mini with disambiguator d in sorted position and returns
// it. The caller must ensure d is not already present.
func (n *Node) insertMini(d ident.Dis) *Mini {
	m := &Mini{owner: n, dis: d}
	i := 0
	for i < len(n.minis) && n.minis[i].dis.Compare(d) < 0 {
		i++
	}
	n.minis = append(n.minis, nil)
	copy(n.minis[i+1:], n.minis[i:])
	n.minis[i] = m
	return m
}

// depth returns the node's depth (root = 0).
func (n *Node) depth() int {
	d := 0
	for p := n.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// empty reports whether the node has no contents at all: no minis, no flat
// region. Empty nodes are the free identifier slots reused by the balanced
// allocation strategy (Section 4.1).
func (n *Node) empty() bool {
	return len(n.minis) == 0 && n.flat == nil
}

// PathToMini returns the position identifier of mini-node m.
func PathToMini(m *Mini) ident.Path {
	rev := make([]ident.Elem, 0, 8)
	sel := m
	for n := m.owner; n != nil && n.parent != nil; n = n.parent {
		if sel != nil {
			rev = append(rev, ident.M(n.bit, sel.dis))
		} else {
			rev = append(rev, ident.J(n.bit))
		}
		sel = n.pmini
	}
	p := make(ident.Path, len(rev))
	for i, e := range rev {
		p[len(rev)-1-i] = e
	}
	return p
}

// PathToNode returns the structural path of major node n (ending in a Major
// element). The root yields the empty path.
func PathToNode(n *Node) ident.Path {
	if n.parent == nil {
		return ident.Path{}
	}
	rev := make([]ident.Elem, 0, 8)
	sel := (*Mini)(nil)
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		if sel != nil {
			rev = append(rev, ident.M(cur.bit, sel.dis))
		} else {
			rev = append(rev, ident.J(cur.bit))
		}
		sel = cur.pmini
	}
	p := make(ident.Path, len(rev))
	for i, e := range rev {
		p[len(rev)-1-i] = e
	}
	return p
}

// bubbleCounts adjusts live atom, node and tombstone counts from n up to
// the root and stamps lastMod with the tree's current revision.
func (t *Tree) bubbleCounts(n *Node, dLive, dNodes int) {
	t.bubble(n, dLive, dNodes, 0)
}

func (t *Tree) bubble(n *Node, dLive, dNodes, dDead int) {
	for ; n != nil; n = n.parent {
		n.live += dLive
		n.nodes += dNodes
		n.dead += dDead
		n.lastMod = t.rev
	}
}

// bubbleEmpty adjusts the empty-slot counters from n to the root. The
// free-slot search prunes subtrees with emptyN == 0, which keeps
// allocation fast in tombstone-dense documents.
func bubbleEmpty(n *Node, d int) {
	for ; n != nil; n = n.parent {
		n.emptyN += d
	}
}

// errNotFound is returned by lookups of identifiers with no materialised
// mini-node.
var errNotFound = fmt.Errorf("doctree: identifier not found")

// IsNotFound reports whether err is the not-found lookup error.
func IsNotFound(err error) bool { return err == errNotFound }

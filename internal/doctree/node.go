// Package doctree implements the extended binary tree that backs a Treedoc
// document (Section 3 of the ICDCS 2009 paper): major nodes whose contents
// are disambiguated mini-nodes, with children hanging both off major nodes
// (plain path elements) and off individual mini-nodes (disambiguated path
// elements).
//
// The tree is simultaneously the identifier space and the storage layer. It
// supports the paper's mixed representation (Section 4.2): quiescent
// subtrees may be held as flat atom arrays with zero per-atom metadata and
// are exploded back into canonical tree form lazily when a path is applied
// to them.
//
// doctree is a single-replica data structure with no concurrency control of
// its own; internal/core layers CRDT operation semantics on top, and the
// public treedoc package adds locking.
package doctree

import (
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
)

// Node is a major node: one position of the binary identifier tree. Its
// contents are mini-nodes ordered by disambiguator. Children reached by
// plain path elements hang off the node itself (left, right); children
// reached by disambiguated elements hang off the individual mini-nodes.
//
// A node with a non-nil flat slice is a flattened region (Section 4.2): it
// stores its whole subtree's live atoms as a plain array with no metadata,
// and has no minis or children until a path walk explodes it.
// Field order is cache-conscious: the first 64 bytes hold exactly what the
// two hot per-edit loops touch — the count-guided descent (left, right,
// minis, live) and the counter climb (parent, live, nodes) — so each level
// of a walk or bubble stays within one cache line of the node. Occasional
// fields (tombstone and empty-slot counters, flatten bookkeeping) fill the
// second line; bubble writes them only when their delta is non-zero, so
// ordinary inserts dirty a single line per ancestor. Nodes are bump-chunk
// allocated (see Tree.nodeChunk) and 128 bytes long, keeping the split
// aligned.
type Node struct {
	parent      *Node   // node containing the slot we hang from; nil at root
	left, right *Node   // major child slots
	minis       []*Mini // sorted by disambiguator
	live        int     // live atoms in this subtree, including flat content
	nodes       int     // tree nodes in this subtree (flat regions count as 0)

	dead    int      // tombstone mini-nodes in this subtree
	emptyN  int      // empty (reusable-slot) nodes in this subtree
	lastMod int64    // latest revision that edited at this node (see bubble)
	pmini   *Mini    // mini of parent we hang from; nil = parent's major slot
	flat    []string // non-nil: flattened subtree content (leaf region)
	bit     uint8    // which side of the parent slot
}

// Mini is a mini-node: one atom slot inside a major node, identified by its
// disambiguator (Section 3.1). A dead mini is a tombstone (SDIS) or an
// awaiting-discard placeholder (UDIS); its atom is gone but the identifier
// remains allocated.
type Mini struct {
	owner *Node
	dis   ident.Dis
	atom  string
	dead  bool

	left, right *Node
}

// Dis returns the mini-node's disambiguator.
func (m *Mini) Dis() ident.Dis { return m.dis }

// Atom returns the mini-node's atom ("" once dead).
func (m *Mini) Atom() string { return m.atom }

// Dead reports whether the mini-node is a tombstone.
func (m *Mini) Dead() bool { return m.dead }

// Tree is a Treedoc document tree. The zero value is not usable; call New.
type Tree struct {
	root   *Node
	height int   // max depth of any node (root = 0)
	rev    int64 // current revision stamp for lastMod bookkeeping

	// Walk cache: the identifier and mini-node of the last successful
	// root-to-leaf walk. Consecutive operations on nearby identifiers (an
	// insert run, an insert followed by its delete) share long path
	// prefixes, so the next walk resumes from the deepest shared slot
	// instead of descending from the root. Any structural removal (prune,
	// flatten) drops the cache; see cacheDrop call sites.
	ckID   ident.Path
	ckMini *Mini

	// Chunked node and mini allocation: tree structure is built from bump
	// blocks instead of individual heap objects, so deep-chain creation
	// (the naive strategy adds one node per atom) costs one allocation per
	// chunk, and consecutively created nodes — which are exactly the
	// parent chains the count climbs traverse — sit adjacent in memory.
	// Chunks are abandoned to the garbage collector when full; a pruned
	// node pins at most its own chunk.
	nodeChunk []Node
	miniChunk []Mini
}

const (
	nodeChunkLen = 128
	miniChunkLen = 256
)

// newNode allocates a node from the tree's bump chunk.
func (t *Tree) newNode(parent *Node, pmini *Mini, bit uint8) *Node {
	if len(t.nodeChunk) == cap(t.nodeChunk) {
		t.nodeChunk = make([]Node, 0, nodeChunkLen)
	}
	t.nodeChunk = append(t.nodeChunk, Node{parent: parent, pmini: pmini, bit: bit})
	return &t.nodeChunk[len(t.nodeChunk)-1]
}

// insertMini adds a chunk-allocated mini with disambiguator d to n in sorted
// position and returns it. The caller must ensure d is not already present.
func (t *Tree) insertMini(n *Node, d ident.Dis) *Mini {
	if len(t.miniChunk) == cap(t.miniChunk) {
		t.miniChunk = make([]Mini, 0, miniChunkLen)
	}
	t.miniChunk = append(t.miniChunk, Mini{owner: n, dis: d})
	return n.placeMini(&t.miniChunk[len(t.miniChunk)-1])
}

// insertMini is the chunk-less form for builders without a tree handle
// (canonical explosion).
func (n *Node) insertMini(d ident.Dis) *Mini {
	return n.placeMini(&Mini{owner: n, dis: d})
}

// placeMini links m into n's mini list in disambiguator order.
func (n *Node) placeMini(m *Mini) *Mini {
	i := 0
	for i < len(n.minis) && n.minis[i].dis.Compare(m.dis) < 0 {
		i++
	}
	n.minis = append(n.minis, nil)
	copy(n.minis[i+1:], n.minis[i:])
	n.minis[i] = m
	return m
}

// cacheWalk records a completed walk to mini m at identifier p. The
// identifier is copied into a tree-owned buffer, so callers may reuse p.
// Callers must have validated p (every walk does): cache-resumed walks
// validate only the elements beyond the shared prefix, which is sound
// precisely because everything cached here is known well-formed.
func (t *Tree) cacheWalk(p ident.Path, m *Mini) {
	t.ckID = append(t.ckID[:0], p...)
	t.ckMini = m
}

// cacheWalkFrom is cacheWalk for walks that resumed from the cache at depth
// skip: resumeSlot verified ckID[:skip] == p[:skip] element-wise and nothing
// rewrites ckID mid-walk, so only the suffix needs copying. Consecutive
// edits in one region share almost their whole identifier, making this the
// common case an O(1)-ish cache update instead of an O(depth) copy. If the
// cache was dropped mid-walk the prefix guarantee is gone and the whole
// identifier is copied.
func (t *Tree) cacheWalkFrom(p ident.Path, m *Mini, skip int) {
	if t.ckMini == nil {
		skip = 0
	}
	t.ckID = append(t.ckID[:skip], p[skip:]...)
	t.ckMini = m
}

// cacheDrop invalidates the walk cache. It must be called before any
// mini-node or node is detached from the tree (the cached chain climbs
// parent pointers).
func (t *Tree) cacheDrop() { t.ckMini = nil }

// resumeSlot returns the deepest walk slot shared between p and the cached
// last walk, plus the number of elements of p already consumed by it.
// Exact-prefix element equality guarantees the cached chain reaches the
// identical slot; the chain's nodes are materialised (never flat), so the
// skipped elements need no explosion checks.
func (t *Tree) resumeSlot(p ident.Path) (slot, int) {
	m := t.ckMini
	if m == nil {
		return slot{node: t.root}, 0
	}
	last := t.ckID
	max := len(p)
	if len(last) < max {
		max = len(last)
	}
	j := 0
	for j < max && p[j] == last[j] {
		j++
	}
	if j == 0 {
		return slot{node: t.root}, 0
	}
	// Climb from the cached mini's owner (at depth len(last)) to the node at
	// depth j, remembering the node below it on the chain: if element j-1
	// selects a mini, that selection is the below node's parent mini (or the
	// cached mini itself when j is the full cached depth).
	n := m.owner
	var below *Node
	for d := len(last); d > j; d-- {
		below = n
		n = n.parent
	}
	if p[j-1].Kind == ident.Major {
		return slot{node: n}, j
	}
	if below == nil {
		return slot{node: n, mini: m}, j
	}
	return slot{node: n, mini: below.pmini}, j
}

// New returns an empty document tree.
func New() *Tree {
	return &Tree{root: &Node{}}
}

// Len returns the number of live atoms in the document.
func (t *Tree) Len() int { return t.root.live }

// Height returns the maximum node depth ever materialised (root = 0). It is
// maintained as a monotonic maximum between structural clean-ups; Flatten
// recomputes it.
func (t *Tree) Height() int { return t.height }

// Rev returns the current revision stamp.
func (t *Tree) Rev() int64 { return t.rev }

// AdvanceRev moves the revision clock forward; subsequent edits stamp
// subtrees with the new revision. The cold-subtree heuristics compare
// against these stamps.
func (t *Tree) AdvanceRev() { t.rev++ }

// child returns the indicated major child slot.
func (n *Node) child(bit uint8) *Node {
	if bit == 0 {
		return n.left
	}
	return n.right
}

func (n *Node) setChild(bit uint8, c *Node) {
	if bit == 0 {
		n.left = c
	} else {
		n.right = c
	}
}

func (m *Mini) child(bit uint8) *Node {
	if bit == 0 {
		return m.left
	}
	return m.right
}

func (m *Mini) setChild(bit uint8, c *Node) {
	if bit == 0 {
		m.left = c
	} else {
		m.right = c
	}
}

// findMini returns the mini with disambiguator d, or nil.
func (n *Node) findMini(d ident.Dis) *Mini {
	for _, m := range n.minis {
		if m.dis == d {
			return m
		}
	}
	return nil
}

// depth returns the node's depth (root = 0).
func (n *Node) depth() int {
	d := 0
	for p := n.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// empty reports whether the node has no contents at all: no minis, no flat
// region. Empty nodes are the free identifier slots reused by the balanced
// allocation strategy (Section 4.1).
func (n *Node) empty() bool {
	return len(n.minis) == 0 && n.flat == nil
}

// PathToMini returns the position identifier of mini-node m.
func PathToMini(m *Mini) ident.Path {
	return AppendPathToMini(nil, m)
}

// AppendPathToMini appends the position identifier of mini-node m to dst and
// returns the extended path. The identifier length is known from the node
// chain, so the append is a single exact-size operation: this is the
// allocation-lean form used by the hot paths (identifier queries dominate the
// replay profile otherwise).
func AppendPathToMini(dst ident.Path, m *Mini) ident.Path {
	d := 0
	for n := m.owner; n != nil && n.parent != nil; n = n.parent {
		d++
	}
	base := len(dst)
	if cap(dst) < base+d {
		grown := make(ident.Path, base+d)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:base+d]
	}
	i := base + d - 1
	sel := m
	for n := m.owner; n != nil && n.parent != nil; n = n.parent {
		if sel != nil {
			dst[i] = ident.M(n.bit, sel.dis)
		} else {
			dst[i] = ident.J(n.bit)
		}
		sel = n.pmini
		i--
	}
	return dst
}

// PathToNode returns the structural path of major node n (ending in a Major
// element). The root yields the empty path.
func PathToNode(n *Node) ident.Path {
	if n.parent == nil {
		return ident.Path{}
	}
	d := 0
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		d++
	}
	p := make(ident.Path, d)
	i := d - 1
	sel := (*Mini)(nil)
	for cur := n; cur != nil && cur.parent != nil; cur = cur.parent {
		if sel != nil {
			p[i] = ident.M(cur.bit, sel.dis)
		} else {
			p[i] = ident.J(cur.bit)
		}
		sel = cur.pmini
		i--
	}
	return p
}

// bubbleCounts adjusts live atom, node and tombstone counts from n up to
// the root and stamps n's lastMod with the tree's current revision.
func (t *Tree) bubbleCounts(n *Node, dLive, dNodes int) {
	t.bubble(n, dLive, dNodes, 0)
}

// bubble climbs to the root applying the count deltas. lastMod is stamped
// only on n itself — the edit point — not the whole ancestor chain: subtree
// recency is the maximum stamp over the subtree, which coldWalk computes
// during its own traversal. Keeping the climb to the first-line counters
// (and skipping the tombstone counter when unchanged) means an ordinary
// insert dirties one cache line per ancestor instead of two, and the climb
// is the single hottest write loop of a deep-tree replay.
func (t *Tree) bubble(n *Node, dLive, dNodes, dDead int) {
	if n == nil {
		return
	}
	n.lastMod = t.rev
	if dDead == 0 {
		for ; n != nil; n = n.parent {
			n.live += dLive
			n.nodes += dNodes
		}
		return
	}
	for ; n != nil; n = n.parent {
		n.live += dLive
		n.nodes += dNodes
		n.dead += dDead
	}
}

// bubbleEmpty adjusts the empty-slot counters from n to the root. The
// free-slot search prunes subtrees with emptyN == 0, which keeps
// allocation fast in tombstone-dense documents.
func bubbleEmpty(n *Node, d int) {
	for ; n != nil; n = n.parent {
		n.emptyN += d
	}
}

// bubbleAll adjusts every counter from n to the root in one climb and stamps
// n's lastMod. The edit fast paths accumulate their whole delta set and climb
// once; the equivalent sequence of bubble/bubbleEmpty calls would walk the
// ancestor chain per delta, which dominates deep-tree edit profiles. Like
// bubble, the climb writes the second-line counters only when they change.
func (t *Tree) bubbleAll(n *Node, dLive, dNodes, dDead, dEmpty int) {
	if n == nil {
		return
	}
	n.lastMod = t.rev
	if dDead == 0 && dEmpty == 0 {
		for ; n != nil; n = n.parent {
			n.live += dLive
			n.nodes += dNodes
		}
		return
	}
	for ; n != nil; n = n.parent {
		n.live += dLive
		n.nodes += dNodes
		n.dead += dDead
		n.emptyN += dEmpty
	}
}

// errNotFound is returned by lookups of identifiers with no materialised
// mini-node.
var errNotFound = fmt.Errorf("doctree: identifier not found")

// IsNotFound reports whether err is the not-found lookup error.
func IsNotFound(err error) bool { return err == errNotFound }

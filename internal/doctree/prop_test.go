package doctree

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
)

// refModel is the abstract data type of Section 2.2: a set of (atom, PosID)
// couples whose contents is the sequence of atoms ordered by PosID. The tree
// must behave identically.
type refModel struct {
	ids   []ident.Path
	atoms []string
}

func (r *refModel) insert(id ident.Path, atom string) {
	i := sort.Search(len(r.ids), func(i int) bool { return ident.Compare(r.ids[i], id) >= 0 })
	r.ids = append(r.ids, nil)
	copy(r.ids[i+1:], r.ids[i:])
	r.ids[i] = id
	r.atoms = append(r.atoms, "")
	copy(r.atoms[i+1:], r.atoms[i:])
	r.atoms[i] = atom
}

func (r *refModel) delete(id ident.Path) {
	i := sort.Search(len(r.ids), func(i int) bool { return ident.Compare(r.ids[i], id) >= 0 })
	if i < len(r.ids) && r.ids[i].Equal(id) {
		r.ids = append(r.ids[:i], r.ids[i+1:]...)
		r.atoms = append(r.atoms[:i], r.atoms[i+1:]...)
	}
}

// TestRandomOpsAgainstModel drives the tree with random inserts at random
// positions (identifiers built as random children of existing atoms) and
// random deletes, in both pruning modes, comparing content with the
// reference model and re-checking the structural invariants throughout.
func TestRandomOpsAgainstModel(t *testing.T) {
	for _, prune := range []bool{false, true} {
		prune := prune
		name := "sdis"
		if prune {
			name = "udis"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			tr := New()
			ref := &refModel{}
			var liveIDs []ident.Path
			nextSite := ident.SiteID(1)
			for step := 0; step < 2000; step++ {
				if len(liveIDs) == 0 || rng.Intn(100) < 70 {
					// Insert: pick a random gap, derive a fresh child id from a
					// neighbor (or the root for the empty doc).
					var id ident.Path
					d := ident.Dis{Site: nextSite}
					nextSite++
					if len(liveIDs) == 0 {
						id = ident.Path{ident.M(1, d)}
					} else {
						base := liveIDs[rng.Intn(len(liveIDs))]
						// Random child of base: through the mini (both bits) or
						// the node's major slot.
						switch rng.Intn(3) {
						case 0:
							id = base.Child(ident.M(0, d))
						case 1:
							id = base.Child(ident.M(1, d))
						default:
							id = base.StripLastDis().Child(ident.M(uint8(rng.Intn(2)), d))
						}
					}
					if tr.HasLive(id) {
						continue
					}
					atom := string(rune('a' + rng.Intn(26)))
					if err := tr.InsertID(id, atom); err != nil {
						t.Fatalf("step %d: insert %v: %v", step, id, err)
					}
					ref.insert(id, atom)
					liveIDs = append(liveIDs, id)
				} else {
					i := rng.Intn(len(liveIDs))
					id := liveIDs[i]
					found, err := tr.DeleteID(id, prune)
					if err != nil || !found {
						t.Fatalf("step %d: delete %v: found=%v err=%v", step, id, found, err)
					}
					ref.delete(id)
					liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
				}
				if step%97 == 0 {
					if err := tr.Check(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
			got := tr.Content()
			if len(got) != len(ref.atoms) {
				t.Fatalf("content length %d, want %d", len(got), len(ref.atoms))
			}
			for i := range got {
				if got[i] != ref.atoms[i] {
					t.Fatalf("content[%d] = %q, want %q", i, got[i], ref.atoms[i])
				}
			}
			// Index round trips on the final document.
			for i := 0; i < len(got); i += 17 {
				id, err := tr.IDAt(i)
				if err != nil {
					t.Fatal(err)
				}
				if !id.Equal(ref.ids[i]) {
					t.Fatalf("IDAt(%d) = %v, want %v", i, id, ref.ids[i])
				}
				back, err := tr.IndexOfID(id)
				if err != nil || back != i {
					t.Fatalf("IndexOfID(%v) = %d, %v", id, back, err)
				}
			}
		})
	}
}

// TestRandomFlattenPreservesContent interleaves edits with flattens of cold
// subtrees and whole-document flattens, checking content preservation and
// invariants.
func TestRandomFlattenPreservesContent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New()
	var live []ident.Path
	site := ident.SiteID(1)
	for step := 0; step < 1200; step++ {
		switch {
		case len(live) == 0 || rng.Intn(100) < 60:
			var id ident.Path
			d := ident.Dis{Site: site}
			site++
			if len(live) == 0 {
				id = ident.Path{ident.M(1, d)}
			} else {
				base := live[rng.Intn(len(live))]
				id = base.Child(ident.M(uint8(rng.Intn(2)), d))
			}
			if tr.HasLive(id) {
				continue
			}
			if err := tr.InsertID(id, "x"); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			live = append(live, id)
		case rng.Intn(100) < 80:
			i := rng.Intn(len(live))
			if _, err := tr.DeleteID(live[i], false); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			live = append(live[:i], live[i+1:]...)
		default:
			before := tr.Content()
			if err := tr.FlattenAll(); err != nil {
				t.Fatalf("step %d: flatten: %v", step, err)
			}
			after := tr.Content()
			if len(before) != len(after) {
				t.Fatalf("step %d: flatten changed length %d -> %d", step, len(before), len(after))
			}
			// All identifiers renamed: rebuild the live set canonically.
			live = live[:0]
			for i := range after {
				id, err := tr.IDAt(i)
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, id)
			}
			// Re-inserts after flatten need fresh non-colliding ids; site
			// counter keeps growing so collisions cannot happen.
		}
		if step%101 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestNeighborLookupsAgainstIDAt drives a random document and checks the
// fused lookup paths — AppendIDAt's build-during-descent and
// AppendNeighborIDs' shared-prefix split — against the plain IDAt walk at
// every interior gap, interleaved with deletes so walk-cache resumption and
// pruned chains are exercised too.
func TestNeighborLookupsAgainstIDAt(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New()
	var liveIDs []ident.Path
	nextSite := ident.SiteID(1)
	for step := 0; step < 600; step++ {
		if len(liveIDs) == 0 || rng.Intn(100) < 75 {
			var id ident.Path
			d := ident.Dis{Site: nextSite}
			nextSite++
			if len(liveIDs) == 0 {
				id = ident.Path{ident.M(1, d)}
			} else {
				base := liveIDs[rng.Intn(len(liveIDs))]
				switch rng.Intn(3) {
				case 0:
					id = base.Child(ident.M(0, d))
				case 1:
					id = base.Child(ident.M(1, d))
				default:
					id = base.StripLastDis().Child(ident.M(uint8(rng.Intn(2)), d))
				}
			}
			if tr.HasLive(id) {
				continue
			}
			if err := tr.InsertID(id, "x"); err != nil {
				t.Fatalf("step %d: insert %v: %v", step, id, err)
			}
			liveIDs = append(liveIDs, id)
		} else {
			i := rng.Intn(len(liveIDs))
			if _, err := tr.DeleteID(liveIDs[i], true); err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
			liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
		}
		if step%31 != 0 {
			continue
		}
		for i := 0; i < tr.Len(); i++ {
			want, err := tr.IDAt(i)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tr.AppendIDAt(nil, i)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("step %d: AppendIDAt(%d) = %v, want %v", step, i, got, want)
			}
			if i > 0 {
				wantP, err := tr.IDAt(i - 1)
				if err != nil {
					t.Fatal(err)
				}
				p, f, err := tr.AppendNeighborIDs(nil, nil, i)
				if err != nil {
					t.Fatal(err)
				}
				if !p.Equal(wantP) || !f.Equal(want) {
					t.Fatalf("step %d: AppendNeighborIDs(%d) = %v, %v; want %v, %v", step, i, p, f, wantP, want)
				}
			}
		}
	}
}

package doctree

import (
	"github.com/treedoc/treedoc/internal/ident"
)

// Stats aggregates the overhead measurements of the paper's evaluation
// (Section 5, Table 1): identifier sizes, node counts, tombstone fraction,
// and the in-memory cost model.
type Stats struct {
	LiveAtoms int // atoms currently in the document
	DocBytes  int // total bytes of live atoms (document size)

	Nodes     int // materialised tree nodes; flattened regions count zero
	Minis     int // mini-nodes, including tombstones
	DeadMinis int // tombstone mini-nodes
	FlatAtoms int // atoms held in flattened (array) regions

	MaxIDBits   int // longest live-atom identifier, in bits
	TotalIDBits int // sum of live-atom identifier sizes, in bits
	DeadIDBits  int // sum of tombstone identifier sizes, in bits

	MemBytes int // in-memory overhead under the paper's node cost model
}

// OverheadBitsPerAtom is total identifier overhead — live and tombstone
// identifiers together — relative to the live document (Table 4's
// "overhead/atom" row): tombstones cost space even though their atoms are
// gone, which is exactly why UDIS beats SDIS overall despite its larger
// per-identifier cost.
func (s Stats) OverheadBitsPerAtom() float64 {
	if s.LiveAtoms == 0 {
		return 0
	}
	return float64(s.TotalIDBits+s.DeadIDBits) / float64(s.LiveAtoms)
}

// AvgIDBits returns the average live-atom identifier size in bits
// (Table 1's "PosID Avg" column).
func (s Stats) AvgIDBits() float64 {
	if s.LiveAtoms == 0 {
		return 0
	}
	return float64(s.TotalIDBits) / float64(s.LiveAtoms)
}

// NonTombstoneFraction returns the fraction of non-tombstone atom slots
// (Table 1's "% non-Tomb" column). Flattened atoms count as non-tombstones:
// flatten discards tombstones by construction.
func (s Stats) NonTombstoneFraction() float64 {
	total := s.Minis + s.FlatAtoms
	if total == 0 {
		return 1
	}
	return float64(s.Minis-s.DeadMinis+s.FlatAtoms) / float64(total)
}

// MemOverheadRatio returns in-memory overhead relative to document size
// (Table 1's "Mem ovhd" column).
func (s Stats) MemOverheadRatio() float64 {
	if s.DocBytes == 0 {
		return 0
	}
	return float64(s.MemBytes) / float64(s.DocBytes)
}

// Stats measures the tree under disambiguator cost model c.
//
// The memory model follows Section 5.2: a standard node holds its subtree's
// non-tombstone count (4 B), two child pointers (2×4 B), one disambiguator,
// and an atom pointer (4 B) — 26 B with the 10-byte UDIS disambiguator. A
// node with several mini-nodes replaces the disambiguator with an array of
// {node, disambiguator} pairs; mini-node children add two pointers each.
// Flattened regions cost nothing: they are the plain sequential buffer.
func (t *Tree) Stats(c ident.Cost) Stats {
	var s Stats
	statsWalk(t.root, 0, 0, c, &s)
	return s
}

// statsWalk accumulates s over n's subtree. depth is n's level (one
// identifier bit per level) and disBits the disambiguator bits of the
// mini-node selections above n, threaded down the recursion so each
// identifier's size is known at its mini without re-climbing to the root.
func statsWalk(n *Node, depth, disBits int, c ident.Cost, s *Stats) {
	if n == nil {
		return
	}
	if n.flat != nil {
		s.FlatAtoms += len(n.flat)
		s.LiveAtoms += len(n.flat)
		for _, a := range n.flat {
			s.DocBytes += len(a)
		}
		sum, max := flatIDBits(len(n.flat), depth, n.parent == nil)
		s.TotalIDBits += sum
		if max > s.MaxIDBits {
			s.MaxIDBits = max
		}
		return
	}
	if n.parent != nil {
		s.Nodes++
		s.MemBytes += 12 // subtree count + two child pointers
		for _, m := range n.minis {
			s.MemBytes += c.DisBytes() + 4 // disambiguator + atom pointer
			if m.left != nil || m.right != nil {
				s.MemBytes += 8
			}
		}
	}
	statsWalk(n.left, depth+1, disBits, c, s)
	for _, m := range n.minis {
		s.Minis++
		mBits := disBits + c.Bits(m.dis)
		if m.dead {
			s.DeadMinis++
			s.DeadIDBits += depth + mBits
		} else {
			s.LiveAtoms++
			s.DocBytes += len(m.atom)
			bits := depth + mBits
			s.TotalIDBits += bits
			if bits > s.MaxIDBits {
				s.MaxIDBits = bits
			}
		}
		statsWalk(m.left, depth+1, mBits, c, s)
		statsWalk(m.right, depth+1, mBits, c, s)
	}
	statsWalk(n.right, depth+1, disBits, c, s)
}

// flatIDBits returns the total and maximum identifier bit sizes the n atoms
// of a flattened region would have once exploded into canonical form: pure
// bitstrings, one bit per level (Section 4.2). base is the region root's
// depth; atRoot indicates the document root region, whose canonical form
// skips the atom-less root slot.
func flatIDBits(n, base int, atRoot bool) (sum, max int) {
	if n == 0 {
		return 0, 0
	}
	if atRoot {
		depth := 0
		for capacityBelowRoot(depth) < n {
			depth++
		}
		capLeft := subtreeCapacity(depth)
		nLeft := n
		if nLeft > capLeft {
			nLeft = capLeft
		}
		s1, m1 := canonicalDepthSum(nLeft, depth, base+1)
		s2, m2 := canonicalDepthSum(n-nLeft, depth, base+1)
		if m2 > m1 {
			m1 = m2
		}
		return s1 + s2, m1
	}
	depth := 1
	for subtreeCapacity(depth) < n {
		depth++
	}
	return canonicalDepthSum(n, depth, base)
}

// canonicalDepthSum returns the sum and maximum of identifier depths for n
// atoms filling the first n infix slots of a complete subtree with the
// given number of levels, whose root sits at depth base.
func canonicalDepthSum(n, levels, base int) (sum, max int) {
	if n == 0 {
		return 0, 0
	}
	capChild := subtreeCapacity(levels - 1)
	nLeft := n
	if nLeft > capChild {
		nLeft = capChild
	}
	sum, max = canonicalDepthSum(nLeft, levels-1, base+1)
	rest := n - nLeft
	if rest > 0 {
		sum += base
		if base > max {
			max = base
		}
		rest--
	}
	if rest > 0 {
		s, m := canonicalDepthSum(rest, levels-1, base+1)
		sum += s
		if m > max {
			max = m
		}
	}
	return sum, max
}

// ColdestSubtree returns the structural path of the most profitable cold
// subtree: among subtrees whose latest edit is at or before cutoff and that
// hold at least minNodes nodes, the one maximising a tombstone-weighted
// size score. The paper's own heuristic picked cold areas by size alone and
// under-delivered ("we believe the heuristic choice of the sub-tree to
// flatten is to blame", Section 5.1); weighting tombstones targets the
// garbage flatten actually collects. Returns nil if nothing qualifies; the
// root (whole document) is returned only when everything is cold.
func (t *Tree) ColdestSubtree(cutoff int64, minNodes int) ident.Path {
	best, _ := coldWalk(t.root, cutoff, minNodes)
	if best == nil {
		return nil
	}
	return PathToNode(best)
}

// coldScore weights tombstones heavily: collecting them is flatten's GC
// payoff, shortening identifiers the secondary one.
func coldScore(n *Node) int { return 8*n.dead + n.nodes }

// coldWalk returns the best flatten candidate within n's subtree and the
// subtree's latest edit revision. Edits stamp lastMod only at the edit
// point (bubble keeps its climb to the counter cache line), so subtree
// recency is the maximum node-local stamp, computed by this same post-order
// walk. A subtree whose maximum is at or before cutoff is cold; its root
// dominates every descendant's coldScore (the counters are inclusive), so
// the highest cold node on each path is the candidate — exactly what the
// old pruning descent selected.
func coldWalk(n *Node, cutoff int64, minNodes int) (best *Node, maxRev int64) {
	if n == nil {
		return nil, 0
	}
	if n.flat != nil {
		return nil, n.lastMod
	}
	maxRev = n.lastMod
	consider := func(b *Node, r int64) {
		if r > maxRev {
			maxRev = r
		}
		if b != nil && (best == nil || coldScore(b) > coldScore(best)) {
			best = b
		}
	}
	consider(coldWalk(n.left, cutoff, minNodes))
	for _, m := range n.minis {
		consider(coldWalk(m.left, cutoff, minNodes))
		consider(coldWalk(m.right, cutoff, minNodes))
	}
	consider(coldWalk(n.right, cutoff, minNodes))
	// Candidates must contain at least one mini-node: regions made only of
	// locally reserved slots are not materialised at remote replicas, so a
	// distributed flatten could not resolve them there.
	if maxRev <= cutoff && n.nodes >= minNodes && n.live+n.dead >= 1 {
		return n, maxRev
	}
	return best, maxRev
}

package doctree

import (
	"fmt"
	"strings"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
)

func mustInsert(t *testing.T, tr *Tree, id, atom string) {
	t.Helper()
	if err := tr.InsertID(ident.MustParsePath(id), atom); err != nil {
		t.Fatalf("InsertID(%s, %q): %v", id, atom, err)
	}
}

func content(tr *Tree) string { return strings.Join(tr.Content(), "") }

func checkTree(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

// figure2 builds the six-atom document of the paper's Figure 2 in the
// rooted layout (see ident tests): a=[00] b=[0] c=[01] d=[10] e=[1] f=[11].
func figure2(t *testing.T) *Tree {
	t.Helper()
	tr := New()
	mustInsert(t, tr, "[0(0:s1)]", "a")
	mustInsert(t, tr, "[(0:s2)]", "b")
	mustInsert(t, tr, "[0(1:s3)]", "c")
	mustInsert(t, tr, "[1(0:s4)]", "d")
	mustInsert(t, tr, "[(1:s5)]", "e")
	mustInsert(t, tr, "[1(1:s6)]", "f")
	checkTree(t, tr)
	return tr
}

func TestInsertOrder(t *testing.T) {
	tr := figure2(t)
	if got := content(tr); got != "abcdef" {
		t.Errorf("content = %q, want abcdef", got)
	}
	if tr.Len() != 6 {
		t.Errorf("Len = %d, want 6", tr.Len())
	}
	if tr.Height() != 2 {
		t.Errorf("Height = %d, want 2", tr.Height())
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	tr := figure2(t)
	if err := tr.InsertID(ident.MustParsePath("[(0:s2)]"), "x"); err == nil {
		t.Error("duplicate insert succeeded")
	}
}

func TestInsertInvalidPath(t *testing.T) {
	tr := New()
	if err := tr.InsertID(ident.Path{}, "x"); err == nil {
		t.Error("empty path insert succeeded")
	}
	if err := tr.InsertID(ident.Path{ident.J(1)}, "x"); err == nil {
		t.Error("major-element path insert succeeded")
	}
}

// TestFigure3ConcurrentMinis reproduces Figure 3: concurrent inserts of W
// and Y between c and d create mini-siblings in one major node, then X
// lands under mini-node W (Figure 4) and Z in the node's right child.
func TestFigure3ConcurrentMinis(t *testing.T) {
	tr := figure2(t)
	mustInsert(t, tr, "[10(0:s7)]", "W")
	mustInsert(t, tr, "[10(0:s9)]", "Y")
	mustInsert(t, tr, "[10(0:s7)(1:s8)]", "X")
	mustInsert(t, tr, "[100(1:s10)]", "Z")
	checkTree(t, tr)
	if got := content(tr); got != "abcWXYZdef" {
		t.Errorf("content = %q, want abcWXYZdef", got)
	}
}

func TestDeleteTombstone(t *testing.T) {
	tr := figure2(t)
	found, err := tr.DeleteID(ident.MustParsePath("[0(1:s3)]"), false)
	if err != nil || !found {
		t.Fatalf("delete c: found=%v err=%v", found, err)
	}
	checkTree(t, tr)
	if got := content(tr); got != "abdef" {
		t.Errorf("content = %q, want abdef", got)
	}
	s := tr.Stats(ident.PaperCost(ident.SDIS))
	if s.DeadMinis != 1 || s.Minis != 6 {
		t.Errorf("tombstones: %d/%d, want 1/6", s.DeadMinis, s.Minis)
	}
	// Idempotent: a second delete is a no-op.
	found, err = tr.DeleteID(ident.MustParsePath("[0(1:s3)]"), false)
	if err != nil || found {
		t.Errorf("second delete: found=%v err=%v, want false,nil", found, err)
	}
	// Deleting a never-inserted identifier is also a no-op (idempotence
	// across replicas that already pruned it).
	found, err = tr.DeleteID(ident.MustParsePath("[111(0:s9)]"), false)
	if err != nil || found {
		t.Errorf("missing delete: found=%v err=%v, want false,nil", found, err)
	}
}

func TestDeletePruneCascade(t *testing.T) {
	tr := figure2(t)
	// Delete f (leaf mini at [11]): with pruning the mini and its node go.
	if _, err := tr.DeleteID(ident.MustParsePath("[1(1:s6)]"), true); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	s := tr.Stats(ident.PaperCost(ident.UDIS))
	if s.DeadMinis != 0 {
		t.Errorf("UDIS delete left %d tombstones", s.DeadMinis)
	}
	if s.Nodes != 5 {
		t.Errorf("nodes = %d, want 5 after pruning", s.Nodes)
	}
	if got := content(tr); got != "abcde" {
		t.Errorf("content = %q", got)
	}
}

func TestDeletePruneKeepsNodeWithChildren(t *testing.T) {
	tr := figure2(t)
	// b's mini at [0] has no descendants of its own (a and c hang off the
	// major node's slots), so the mini is discarded — but the node stays.
	if _, err := tr.DeleteID(ident.MustParsePath("[(0:s2)]"), true); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	if got := content(tr); got != "acdef" {
		t.Errorf("content = %q", got)
	}
	s := tr.Stats(ident.PaperCost(ident.UDIS))
	if s.DeadMinis != 0 {
		t.Errorf("dead minis = %d, want 0 (leaf mini discarded)", s.DeadMinis)
	}
	if s.Nodes != 6 {
		t.Errorf("nodes = %d, want 6 (node [0] kept: it has children)", s.Nodes)
	}
	// Delete a and c: the cascade must now discard nodes [00], [01] and the
	// emptied node [0] itself.
	if _, err := tr.DeleteID(ident.MustParsePath("[0(0:s1)]"), true); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.DeleteID(ident.MustParsePath("[0(1:s3)]"), true); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	s = tr.Stats(ident.PaperCost(ident.UDIS))
	if s.Nodes != 3 {
		t.Errorf("nodes = %d, want 3 after cascade", s.Nodes)
	}
	if got := content(tr); got != "def" {
		t.Errorf("content = %q", got)
	}
}

func TestDeletePruneKeepsNonLeafMini(t *testing.T) {
	tr := figure2(t)
	mustInsert(t, tr, "[10(0:s7)]", "W")
	mustInsert(t, tr, "[10(0:s7)(1:s8)]", "X") // X hangs off mini-node W
	// Deleting W discards its atom but keeps the mini: X descends from it
	// ("the node itself must be kept", Section 3.3.1).
	if _, err := tr.DeleteID(ident.MustParsePath("[10(0:s7)]"), true); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	if got := content(tr); got != "abcXdef" {
		t.Errorf("content = %q", got)
	}
	s := tr.Stats(ident.PaperCost(ident.UDIS))
	if s.DeadMinis != 1 {
		t.Errorf("dead minis = %d, want 1 (W kept as placeholder)", s.DeadMinis)
	}
	// Deleting X cascades: X's node goes, then the dead mini W, then W's
	// emptied node.
	if _, err := tr.DeleteID(ident.MustParsePath("[10(0:s7)(1:s8)]"), true); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	s = tr.Stats(ident.PaperCost(ident.UDIS))
	if s.DeadMinis != 0 {
		t.Errorf("dead minis = %d, want 0 after cascade", s.DeadMinis)
	}
	if got := content(tr); got != "abcdef" {
		t.Errorf("content = %q", got)
	}
	if s.Nodes != 6 {
		t.Errorf("nodes = %d, want 6 after cascade", s.Nodes)
	}
}

func TestResurrectDiscardedAncestors(t *testing.T) {
	tr := figure2(t)
	// Discard f's branch entirely (UDIS semantics).
	if _, err := tr.DeleteID(ident.MustParsePath("[1(1:s6)]"), true); err != nil {
		t.Fatal(err)
	}
	// A remote replay inserts a child of the discarded mini: ancestors must
	// be re-created as empty placeholders (Section 3.3.1).
	mustInsert(t, tr, "[1(1:s6)(0:s7)]", "g")
	checkTree(t, tr)
	if got := content(tr); got != "abcdeg" {
		t.Errorf("content = %q, want abcdeg", got)
	}
	s := tr.Stats(ident.PaperCost(ident.UDIS))
	if s.DeadMinis != 1 {
		t.Errorf("dead minis = %d, want 1 placeholder", s.DeadMinis)
	}
}

func TestIndexing(t *testing.T) {
	tr := figure2(t)
	want := "abcdef"
	for i := 0; i < len(want); i++ {
		got, err := tr.AtomAt(i)
		if err != nil {
			t.Fatalf("AtomAt(%d): %v", i, err)
		}
		if got != string(want[i]) {
			t.Errorf("AtomAt(%d) = %q, want %q", i, got, want[i])
		}
		id, err := tr.IDAt(i)
		if err != nil {
			t.Fatalf("IDAt(%d): %v", i, err)
		}
		back, err := tr.IndexOfID(id)
		if err != nil {
			t.Fatalf("IndexOfID(%v): %v", id, err)
		}
		if back != i {
			t.Errorf("IndexOfID(IDAt(%d)) = %d", i, back)
		}
	}
	if _, err := tr.AtomAt(-1); err == nil {
		t.Error("AtomAt(-1) succeeded")
	}
	if _, err := tr.AtomAt(6); err == nil {
		t.Error("AtomAt(len) succeeded")
	}
}

func TestIndexingWithTombstonesAndMinis(t *testing.T) {
	tr := figure2(t)
	mustInsert(t, tr, "[10(0:s7)]", "W")
	mustInsert(t, tr, "[10(0:s9)]", "Y")
	mustInsert(t, tr, "[10(0:s7)(1:s8)]", "X")
	if _, err := tr.DeleteID(ident.MustParsePath("[1(0:s4)]"), false); err != nil { // delete d
		t.Fatal(err)
	}
	checkTree(t, tr)
	want := "abcWXYef"
	if got := content(tr); got != want {
		t.Fatalf("content = %q, want %q", got, want)
	}
	for i := 0; i < len(want); i++ {
		id, err := tr.IDAt(i)
		if err != nil {
			t.Fatalf("IDAt(%d): %v", i, err)
		}
		back, err := tr.IndexOfID(id)
		if err != nil || back != i {
			t.Errorf("IndexOfID(IDAt(%d)) = %d, %v", i, back, err)
		}
	}
}

func TestNeighborIDs(t *testing.T) {
	tr := figure2(t)
	p, f, err := tr.NeighborIDs(0)
	if err != nil || p != nil || f == nil {
		t.Errorf("gap 0: p=%v f=%v err=%v", p, f, err)
	}
	p, f, err = tr.NeighborIDs(6)
	if err != nil || p == nil || f != nil {
		t.Errorf("gap 6: p=%v f=%v err=%v", p, f, err)
	}
	p, f, err = tr.NeighborIDs(3)
	if err != nil {
		t.Fatal(err)
	}
	if ident.Compare(p, f) >= 0 {
		t.Errorf("gap 3 neighbors out of order: %v >= %v", p, f)
	}
	if _, _, err := tr.NeighborIDs(7); err == nil {
		t.Error("gap out of range succeeded")
	}
}

func TestFlattenRoot(t *testing.T) {
	tr := figure2(t)
	if _, err := tr.DeleteID(ident.MustParsePath("[0(1:s3)]"), false); err != nil { // tombstone c
		t.Fatal(err)
	}
	if err := tr.FlattenAll(); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	if got := content(tr); got != "abdef" {
		t.Errorf("content after flatten = %q, want abdef", got)
	}
	s := tr.Stats(ident.PaperCost(ident.SDIS))
	if s.Nodes != 0 || s.Minis != 0 || s.DeadMinis != 0 {
		t.Errorf("flattened doc has nodes=%d minis=%d dead=%d, want 0", s.Nodes, s.Minis, s.DeadMinis)
	}
	if s.MemBytes != 0 {
		t.Errorf("flattened doc mem overhead = %d, want 0 (paper: zero overhead)", s.MemBytes)
	}
	if s.FlatAtoms != 5 || s.LiveAtoms != 5 {
		t.Errorf("flat=%d live=%d, want 5/5", s.FlatAtoms, s.LiveAtoms)
	}
}

func TestExplodeOnEdit(t *testing.T) {
	tr := figure2(t)
	if err := tr.FlattenAll(); err != nil {
		t.Fatal(err)
	}
	// Applying a path to the array must explode it back into tree form
	// (Section 4.2), with canonical pure-bitstring identifiers.
	id, err := tr.IDAt(2)
	if err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	for _, e := range id[:len(id)-1] {
		if e.Kind != ident.Major {
			t.Errorf("canonical id %v has a non-major interior element", id)
		}
	}
	if !id.Last().Dis.IsCanonical() {
		t.Errorf("canonical id %v carries a site disambiguator", id)
	}
	if got := content(tr); got != "abcdef" {
		t.Errorf("content after explode = %q", got)
	}
	s := tr.Stats(ident.PaperCost(ident.SDIS))
	if s.FlatAtoms != 0 {
		t.Errorf("flat atoms = %d after explode", s.FlatAtoms)
	}
	// Canonical identifiers cost one bit per level: total must equal the
	// analytic value computed before exploding.
	if s.TotalIDBits != 2+3+2+3+2+3 && s.TotalIDBits != 14 {
		t.Logf("total id bits = %d", s.TotalIDBits)
	}
}

func TestFlattenSubtree(t *testing.T) {
	tr := figure2(t)
	// Flatten the subtree at [1] (atoms d under [10], e's mini, f under [11]).
	// [1] designates node "1": its region holds d, e, f.
	if err := tr.Flatten(ident.MustParsePath("[1(1:s6)]").StripLastDis()[:1]); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	if got := content(tr); got != "abcdef" {
		t.Errorf("content = %q", got)
	}
	s := tr.Stats(ident.PaperCost(ident.SDIS))
	if s.FlatAtoms != 3 {
		t.Errorf("flat atoms = %d, want 3 (d,e,f)", s.FlatAtoms)
	}
	if s.Nodes != 3 {
		t.Errorf("nodes = %d, want 3 (a,b,c)", s.Nodes)
	}
	// Inserting next to the flat region explodes it lazily.
	mustInsert(t, tr, "[11(0:s9)]", "X")
	checkTree(t, tr)
	got := content(tr)
	if !strings.Contains(got, "X") || len(got) != 7 {
		t.Errorf("content = %q", got)
	}
}

func TestFlattenErrors(t *testing.T) {
	tr := figure2(t)
	if err := tr.Flatten(ident.MustParsePath("[(0:s2)]")); err == nil {
		t.Error("flattening a mini-node path succeeded")
	}
	if err := tr.Flatten(ident.Path{ident.J(1), ident.J(1), ident.J(1), ident.J(1)}); err == nil {
		t.Error("flattening a missing node succeeded")
	}
}

func TestFlattenEmptyDoc(t *testing.T) {
	tr := New()
	if err := tr.FlattenAll(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	// An exploded empty flat region stays empty.
	mustInsert(t, tr, "[(1:s1)]", "x")
	checkTree(t, tr)
	if got := content(tr); got != "x" {
		t.Errorf("content = %q", got)
	}
}

func TestFreeMiniBetween(t *testing.T) {
	tr := figure2(t)
	// No free slots in the dense figure-2 tree between adjacent atoms a,b.
	a := ident.MustParsePath("[0(0:s1)]")
	b := ident.MustParsePath("[(0:s2)]")
	if got := tr.FreeMiniBetween(a, b, ident.Dis{Site: 9}); got != nil {
		t.Errorf("unexpected free slot %v", got)
	}
	// Materialise a grown region: an empty chain below [11] right.
	mustInsert(t, tr, "[1110(0:s7)]", "g") // creates empty nodes [111] and [1110]
	checkTree(t, tr)
	f := ident.MustParsePath("[1(1:s6)]")
	g := ident.MustParsePath("[1110(0:s7)]")
	// Between f and g there are no free slots (the chain sits right of g)…
	if got := tr.FreeMiniBetween(f, g, ident.Dis{Site: 9}); got != nil {
		t.Errorf("unexpected free slot between f and g: %v", got)
	}
	// …but after g, the empty nodes [1110] and [111] are reusable, in infix
	// order: [1110]'s mini position comes first.
	got := tr.FreeMiniBetween(g, nil, ident.Dis{Site: 9})
	if got == nil {
		t.Fatal("no free slot found after g")
	}
	if want := "[111(0:s9)]"; got.String() != want {
		t.Errorf("free slot = %v, want %v", got, want)
	}
	if !ident.Between(g, got, nil) {
		t.Errorf("free slot %v not after g", got)
	}
	// Fill it and ask again: the next slot must differ and still be ordered.
	mustInsert(t, tr, got.String(), "h")
	checkTree(t, tr)
	next := tr.FreeMiniBetween(ident.MustParsePath(got.String()), nil, ident.Dis{Site: 9})
	if next == nil {
		t.Fatal("no second free slot")
	}
	if ident.Compare(got, next) >= 0 {
		t.Errorf("slots out of order: %v then %v", got, next)
	}
}

func TestColdestSubtree(t *testing.T) {
	tr := New()
	mustInsert(t, tr, "[(0:s1)]", "a")
	mustInsert(t, tr, "[0(0:s1)]", "b")
	mustInsert(t, tr, "[0(1:s1)]", "c")
	tr.AdvanceRev()
	mustInsert(t, tr, "[(1:s1)]", "x") // hot branch at rev 1
	// Cutoff 0: the [0] subtree (3 nodes… node [0] plus two children) is cold.
	cold := tr.ColdestSubtree(0, 1)
	if cold == nil {
		t.Fatal("no cold subtree found")
	}
	if want := "[0]"; cold.String() != want {
		t.Errorf("cold subtree = %v, want %v", cold, want)
	}
	// Nothing cold enough with a high node threshold.
	if got := tr.ColdestSubtree(0, 100); got != nil {
		t.Errorf("unexpected cold subtree %v", got)
	}
	// Everything cold at cutoff 1: the whole document (root, empty path).
	cold = tr.ColdestSubtree(1, 1)
	if cold == nil || len(cold) != 0 {
		t.Errorf("cold subtree = %v, want root", cold)
	}
}

func TestStatsIdentifierBits(t *testing.T) {
	tr := figure2(t)
	c := ident.PaperCost(ident.SDIS)
	s := tr.Stats(c)
	// Depths: a,c,d,f at 2; b,e at 1. Bits = depth + 48 per atom.
	wantTotal := (2+48)*4 + (1+48)*2
	if s.TotalIDBits != wantTotal {
		t.Errorf("TotalIDBits = %d, want %d", s.TotalIDBits, wantTotal)
	}
	if s.MaxIDBits != 50 {
		t.Errorf("MaxIDBits = %d, want 50", s.MaxIDBits)
	}
	if s.LiveAtoms != 6 || s.DocBytes != 6 {
		t.Errorf("live=%d bytes=%d", s.LiveAtoms, s.DocBytes)
	}
	if got := s.AvgIDBits(); got < 49 || got > 50 {
		t.Errorf("AvgIDBits = %v", got)
	}
	if s.NonTombstoneFraction() != 1 {
		t.Errorf("NonTombstoneFraction = %v", s.NonTombstoneFraction())
	}
	// Memory model: 6 nodes, single childless minis under SDIS: 12+6+4 each,
	// but b and e have mini children? No: a,c hang off node [0]'s major
	// slots, so all minis are childless: 6 × 22 = 132.
	if s.MemBytes != 6*22 {
		t.Errorf("MemBytes = %d, want %d", s.MemBytes, 6*22)
	}
}

func TestStatsFlatRegionBits(t *testing.T) {
	tr := figure2(t)
	if err := tr.FlattenAll(); err != nil {
		t.Fatal(err)
	}
	before := tr.Stats(ident.PaperCost(ident.SDIS))
	// Force the explode and compare: analytic flat bits must equal the
	// post-explode measured bits.
	if _, err := tr.IDAt(0); err != nil {
		t.Fatal(err)
	}
	after := tr.Stats(ident.PaperCost(ident.SDIS))
	if before.TotalIDBits != after.TotalIDBits {
		t.Errorf("flat id bits %d != exploded id bits %d", before.TotalIDBits, after.TotalIDBits)
	}
	if before.MaxIDBits != after.MaxIDBits {
		t.Errorf("flat max bits %d != exploded max bits %d", before.MaxIDBits, after.MaxIDBits)
	}
}

func TestVisitLiveEarlyStop(t *testing.T) {
	tr := figure2(t)
	seen := 0
	tr.VisitLive(func(i int, atom string, m *Mini) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Errorf("visited %d atoms, want 3", seen)
	}
}

func TestAtomByID(t *testing.T) {
	tr := figure2(t)
	got, err := tr.AtomByID(ident.MustParsePath("[(1:s5)]"))
	if err != nil || got != "e" {
		t.Errorf("AtomByID = %q, %v", got, err)
	}
	if _, err := tr.AtomByID(ident.MustParsePath("[(1:s99)]")); !IsNotFound(err) {
		t.Errorf("missing atom err = %v", err)
	}
	if _, err := tr.DeleteID(ident.MustParsePath("[(1:s5)]"), false); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AtomByID(ident.MustParsePath("[(1:s5)]")); !IsNotFound(err) {
		t.Errorf("tombstoned atom err = %v", err)
	}
	if tr.HasLive(ident.MustParsePath("[(1:s5)]")) {
		t.Error("tombstoned atom reported live")
	}
}

func TestLargeCanonicalExplode(t *testing.T) {
	tr := New()
	atoms := make([]string, 1000)
	for i := range atoms {
		atoms[i] = fmt.Sprintf("line-%d", i)
	}
	// Build by flattening an empty doc and splicing content in via the flat
	// path: simplest is inserting then flattening, but use the explode path
	// directly: set a flat root via FlattenAll on an empty tree…
	// Instead: insert sequentially at canonical ids via IDAt after seeding.
	tr.root.flat = atoms
	tr.root.live = len(atoms)
	if _, err := tr.IDAt(500); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	if tr.Len() != 1000 {
		t.Errorf("Len = %d", tr.Len())
	}
	got := tr.Content()
	for i, a := range got {
		if a != atoms[i] {
			t.Fatalf("content[%d] = %q, want %q", i, a, atoms[i])
		}
	}
	// Canonical tree of 1000 atoms under the root: depth 9 subtrees
	// (2^10-2 = 1022 >= 1000): height <= 10.
	if tr.Height() > 10 {
		t.Errorf("Height = %d, want <= 10", tr.Height())
	}
}

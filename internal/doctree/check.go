package doctree

import (
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
)

// Check verifies the tree's structural invariants. It is exercised by tests
// and property checks; a healthy tree always returns nil.
//
// Invariants:
//  1. Parent/child backlinks are consistent.
//  2. Mini-nodes are strictly ordered by disambiguator within each node.
//  3. Cached live/node counts match a full recount.
//  4. Dead mini-nodes carry no atom.
//  5. Flattened nodes have no minis or children.
//  6. The identifiers of live atoms are strictly increasing in document
//     order (the infix walk agrees with ident.Compare).
func (t *Tree) Check() error {
	if t.root == nil {
		return fmt.Errorf("doctree: nil root")
	}
	if t.root.parent != nil || t.root.pmini != nil {
		return fmt.Errorf("doctree: root has a parent")
	}
	if _, _, _, err := checkNode(t.root); err != nil {
		return err
	}
	// Invariant 6: infix identifiers strictly increase. The walk maintains
	// the current identifier incrementally in a reused buffer (one element
	// per tree level) instead of materialising a fresh path per atom, so
	// Check stays linear in tree size with O(height) extra memory — it runs
	// on every snapshot decode.
	c := &orderChecker{}
	c.walk(t.root, 0)
	return c.bad
}

// orderChecker verifies invariant 6 during one infix walk. cur[:d] is the
// identifier prefix of the current position at depth d; prev is the previous
// live atom's identifier, copied into a second reused buffer.
type orderChecker struct {
	cur     ident.Path
	prev    ident.Path
	prevSet bool
	i       int // live-atom index, for error messages
	bad     error
}

func (c *orderChecker) set(i int, e ident.Elem) {
	for len(c.cur) <= i {
		c.cur = append(c.cur, ident.Elem{})
	}
	c.cur[i] = e
}

// walk visits node n at depth d with cur[:d-1] holding the finalized
// elements for n's ancestors; it owns element d-1 (the step into n), which
// differs between n's major subtrees (a bare bit) and each mini's region (the
// bit plus that mini's disambiguator).
func (c *orderChecker) walk(n *Node, d int) bool {
	if n == nil {
		return true
	}
	if n.flat != nil {
		// Flattened atoms have canonical identifiers by construction; they
		// are not compared (matching the identifiers they would explode to
		// would require materialising the region).
		c.i += len(n.flat)
		return true
	}
	if d == 0 && len(n.minis) > 0 {
		c.bad = fmt.Errorf("doctree: root holds mini-nodes")
		return false
	}
	if d > 0 {
		c.set(d-1, ident.J(n.bit))
	}
	if !c.walk(n.left, d+1) {
		return false
	}
	for _, m := range n.minis {
		if d > 0 {
			c.set(d-1, ident.M(n.bit, m.dis))
		}
		if !c.walk(m.left, d+1) {
			return false
		}
		if !m.dead {
			if !c.atom(d) {
				return false
			}
		}
		if !c.walk(m.right, d+1) {
			return false
		}
	}
	if d > 0 {
		c.set(d-1, ident.J(n.bit))
	}
	return c.walk(n.right, d+1)
}

// atom checks the live atom whose identifier is cur[:d] against the previous
// one, then records it as the new lower bound.
func (c *orderChecker) atom(d int) bool {
	id := c.cur[:d]
	if err := id.Validate(); err != nil {
		c.bad = fmt.Errorf("doctree: atom %d has invalid identifier: %w", c.i, err)
		return false
	}
	if c.prevSet && ident.Compare(c.prev, id) >= 0 {
		c.bad = fmt.Errorf("doctree: atom %d identifier %v does not sort after %v", c.i, id.Clone(), c.prev.Clone())
		return false
	}
	c.prev = append(c.prev[:0], id...)
	c.prevSet = true
	c.i++
	return true
}

// checkNode validates n's subtree and returns its recomputed live, node and
// tombstone counts.
func checkNode(n *Node) (live, nodes, dead int, err error) {
	if n == nil {
		return 0, 0, 0, nil
	}
	if n.flat != nil {
		if len(n.minis) != 0 || n.left != nil || n.right != nil {
			return 0, 0, 0, fmt.Errorf("doctree: flattened node has structure")
		}
		if n.live != len(n.flat) {
			return 0, 0, 0, fmt.Errorf("doctree: flattened node live=%d, want %d", n.live, len(n.flat))
		}
		if n.nodes != 0 || n.dead != 0 {
			return 0, 0, 0, fmt.Errorf("doctree: flattened node nodes=%d dead=%d, want 0", n.nodes, n.dead)
		}
		return n.live, 0, 0, nil
	}
	for _, side := range []struct {
		bit uint8
		c   *Node
	}{{0, n.left}, {1, n.right}} {
		if side.c == nil {
			continue
		}
		if side.c.parent != n || side.c.pmini != nil || side.c.bit != side.bit {
			return 0, 0, 0, fmt.Errorf("doctree: bad backlink on major child bit %d", side.bit)
		}
		l, nn, dd, err := checkNode(side.c)
		if err != nil {
			return 0, 0, 0, err
		}
		live += l
		nodes += nn
		dead += dd
	}
	for i, m := range n.minis {
		if m.owner != n {
			return 0, 0, 0, fmt.Errorf("doctree: mini %s has wrong owner", m.dis)
		}
		if i > 0 && n.minis[i-1].dis.Compare(m.dis) >= 0 {
			return 0, 0, 0, fmt.Errorf("doctree: minis out of order: %s >= %s", n.minis[i-1].dis, m.dis)
		}
		if m.dead && m.atom != "" {
			return 0, 0, 0, fmt.Errorf("doctree: dead mini %s carries atom %q", m.dis, m.atom)
		}
		if m.dead {
			dead++
		} else {
			live++
		}
		for _, side := range []struct {
			bit uint8
			c   *Node
		}{{0, m.left}, {1, m.right}} {
			if side.c == nil {
				continue
			}
			if side.c.parent != n || side.c.pmini != m || side.c.bit != side.bit {
				return 0, 0, 0, fmt.Errorf("doctree: bad backlink on mini child bit %d of %s", side.bit, m.dis)
			}
			l, nn, dd, err := checkNode(side.c)
			if err != nil {
				return 0, 0, 0, err
			}
			live += l
			nodes += nn
			dead += dd
		}
	}
	self := 1
	if n.parent == nil {
		self = 0 // the root is not counted (it holds no atoms)
	}
	nodes += self
	if n.live != live {
		return 0, 0, 0, fmt.Errorf("doctree: node live=%d, recount=%d", n.live, live)
	}
	if n.nodes != nodes {
		return 0, 0, 0, fmt.Errorf("doctree: node nodes=%d, recount=%d", n.nodes, nodes)
	}
	if n.dead != dead {
		return 0, 0, 0, fmt.Errorf("doctree: node dead=%d, recount=%d", n.dead, dead)
	}
	emptyN := n.left.emptyCount() + n.right.emptyCount()
	for _, m := range n.minis {
		emptyN += m.left.emptyCount() + m.right.emptyCount()
	}
	if n.empty() && n.parent != nil {
		// The root is excluded: it cannot hold mini-nodes, so it is never a
		// reusable slot.
		emptyN++
	}
	if n.emptyN != emptyN {
		return 0, 0, 0, fmt.Errorf("doctree: node emptyN=%d, recount=%d", n.emptyN, emptyN)
	}
	return live, nodes, dead, nil
}

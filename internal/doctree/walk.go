package doctree

import (
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
)

// slot is a walk position: either the major slot of a node or one of its
// mini-nodes. The next path element departs from the slot's children.
type slot struct {
	node *Node
	mini *Mini // nil = major slot
}

func (s slot) child(bit uint8) *Node {
	if s.mini != nil {
		return s.mini.child(bit)
	}
	return s.node.child(bit)
}

func (s slot) setChild(bit uint8, c *Node) {
	if s.mini != nil {
		s.mini.setChild(bit, c)
	} else {
		s.node.setChild(bit, c)
	}
}

// walkMini locates the mini-node with identifier p, without materialising
// anything. It returns errNotFound if any step is missing. Walking into a
// flattened region explodes it first (Section 4.2: "array storage is
// converted to tree storage when necessary, e.g., when applying a path to
// an array").
func (t *Tree) walkMini(p ident.Path) (*Mini, error) {
	cur, skip := t.resumeSlot(p)
	// The resumed prefix matched a cached, already-validated identifier
	// elementwise, so only the remaining elements need checking.
	if err := p.ValidateFrom(skip); err != nil {
		return nil, err
	}
	cacheFrom := skip
	for i, e := range p[skip:] {
		i += skip
		if cur.node.flat != nil {
			t.explodeNode(cur.node)
		}
		next := cur.child(e.Bit)
		if next == nil {
			return nil, errNotFound
		}
		if next.flat != nil && (e.Kind == ident.Mini || i+1 < len(p)) {
			t.explodeNode(next)
		}
		if e.Kind == ident.Major {
			cur = slot{node: next}
			continue
		}
		m := next.findMini(e.Dis)
		if m == nil {
			return nil, errNotFound
		}
		cur = slot{node: next, mini: m}
	}
	t.cacheWalkFrom(p, cur.mini, cacheFrom)
	return cur.mini, nil
}

// materialize walks identifier p, creating any missing nodes and mini-nodes
// along the way. Intermediate minis are created dead (they are placeholders
// for concurrently discarded ancestors, Section 3.3.1: replay "must
// re-create empty nodes to replace them"). The final mini is returned
// as-is; the caller decides its atom and liveness.
func (t *Tree) materialize(p ident.Path) (*Mini, error) {
	cur, depth := t.resumeSlot(p)
	skip := depth
	if err := p.ValidateFrom(depth); err != nil {
		return nil, err
	}
	for _, e := range p[depth:] {
		if cur.node.flat != nil {
			t.explodeNode(cur.node)
		}
		depth++
		next := cur.child(e.Bit)
		if next == nil {
			next = t.newNode(cur.node, cur.mini, e.Bit)
			cur.setChild(e.Bit, next)
			t.bubbleCounts(next, 0, 1)
			bubbleEmpty(next, +1)
			if depth > t.height {
				t.height = depth
			}
		} else if next.flat != nil {
			t.explodeNode(next)
		}
		if e.Kind == ident.Major {
			cur = slot{node: next}
			continue
		}
		m := next.findMini(e.Dis)
		if m == nil {
			if len(next.minis) == 0 {
				bubbleEmpty(next, -1) // the node stops being a free slot
			}
			m = t.insertMini(next, e.Dis)
			m.dead = true // placeholder until the caller revives it
			t.bubble(next, 0, 0, +1)
		}
		cur = slot{node: next, mini: m}
	}
	t.cacheWalkFrom(p, cur.mini, skip)
	return cur.mini, nil
}

// explodeNode converts a flattened region back into canonical tree form
// (Algorithm 2's explode): a complete binary subtree with the atoms assigned
// in infix order carrying the canonical disambiguator, so their identifiers
// are pure bitstrings below the region root.
func (t *Tree) explodeNode(n *Node) {
	atoms := n.flat
	n.flat = nil
	if len(atoms) == 0 {
		t.bubbleCounts(n, 0, 0) // stamp lastMod; counts unchanged
		if n.empty() && n.parent != nil {
			bubbleEmpty(n, +1) // the emptied region becomes a reusable slot
		}
		return
	}
	// The region's live count stays the same; nodes get rebuilt below.
	if n.parent == nil {
		// The root holds no atoms: fill its two child subtrees, skipping the
		// root slot itself (DESIGN.md: rooted variant of Algorithm 2).
		depth := 0
		for capacityBelowRoot(depth) < len(atoms) {
			depth++
		}
		capLeft := subtreeCapacity(depth)
		nLeft := len(atoms)
		if nLeft > capLeft {
			nLeft = capLeft
		}
		n.left = buildCanonical(n, nil, 0, atoms[:nLeft], depth)
		n.right = buildCanonical(n, nil, 1, atoms[nLeft:], depth)
		dn, de := 0, 0
		if n.left != nil {
			dn += n.left.nodes
			de += n.left.emptyN
		}
		if n.right != nil {
			dn += n.right.nodes
			de += n.right.emptyN
		}
		t.bubbleCounts(n, 0, dn)
		bubbleEmpty(n, de)
		if d := n.depth() + depth; d > t.height {
			t.height = d
		}
		return
	}
	// Non-root region: the region root node itself holds the appropriate
	// infix atom, exactly as Algorithm 2 assigns identifiers.
	depth := 1
	for subtreeCapacity(depth) < len(atoms) {
		depth++
	}
	fillCanonical(n, atoms, depth)
	t.bubbleCounts(n.parent, 0, n.nodes)
	bubbleEmpty(n.parent, n.emptyN)
	n.lastMod = t.rev
	if d := n.depth() + depth - 1; d > t.height {
		t.height = d
	}
}

// subtreeCapacity returns the atom capacity of a complete subtree of the
// given depth (levels), rooted at a node that can hold an atom: 2^depth - 1.
func subtreeCapacity(depth int) int {
	if depth >= 62 {
		return 1<<62 - 1
	}
	return 1<<depth - 1
}

// capacityBelowRoot returns the capacity of two complete subtrees of the
// given depth hanging under the atom-less root: 2^(depth+1) - 2.
func capacityBelowRoot(depth int) int {
	return 2 * subtreeCapacity(depth)
}

// fillCanonical populates existing node n as the root of a canonical
// complete subtree of the given depth holding atoms in infix order. n must
// have no minis or children. It sets n's subtree counts but does not touch
// ancestors.
func fillCanonical(n *Node, atoms []string, depth int) {
	capChild := subtreeCapacity(depth - 1)
	nLeft := len(atoms)
	if nLeft > capChild {
		nLeft = capChild
	}
	rest := atoms[nLeft:]
	n.live = len(atoms)
	n.nodes = 1
	n.dead = 0
	n.emptyN = 0
	if nLeft > 0 {
		n.left = buildCanonical(n, nil, 0, atoms[:nLeft], depth-1)
		n.nodes += n.left.nodes
		n.emptyN += n.left.emptyN
	}
	if len(rest) > 0 {
		m := n.insertMini(ident.Canonical)
		m.atom = rest[0]
		rest = rest[1:]
	}
	if len(rest) > 0 {
		n.right = buildCanonical(n, nil, 1, rest, depth-1)
		n.nodes += n.right.nodes
		n.emptyN += n.right.emptyN
	}
	if n.empty() {
		n.emptyN++
	}
}

// buildCanonical allocates the canonical complete subtree for atoms (in
// infix order) as the bit-child of parent/pmini, returning the new node.
func buildCanonical(parent *Node, pmini *Mini, bit uint8, atoms []string, depth int) *Node {
	if len(atoms) == 0 {
		return nil
	}
	n := &Node{parent: parent, pmini: pmini, bit: bit}
	fillCanonical(n, atoms, depth)
	return n
}

// Flatten replaces the subtree rooted at the node designated by path with a
// flat atom array holding its live content (Algorithm 2's flatten): all
// tombstones and identifier metadata in the region are discarded. The path
// must designate a major node: the empty path (whole document) or a
// structural path ending in a Major element; an atom identifier's node is
// addressed by its StripLastDis form.
//
// Flatten is a structural clean-up, not a CRDT operation: callers must
// establish that no concurrent edits target the region (internal/commit
// implements the paper's commitment protocol for this).
func (t *Tree) Flatten(path ident.Path) error {
	n, err := t.walkNode(path)
	if err != nil {
		return err
	}
	t.cacheDrop()
	atoms := make([]string, 0, n.live)
	collectLive(n, &atoms)
	removedNodes, removedDead, removedEmpty := n.nodes, n.dead, n.emptyN
	n.left, n.right, n.minis = nil, nil, nil
	n.flat = atoms
	n.nodes = 0
	n.dead = 0
	n.emptyN = 0
	t.bubble(n.parent, 0, -removedNodes, -removedDead)
	bubbleEmpty(n.parent, -removedEmpty)
	n.lastMod = t.rev
	t.recomputeHeight()
	return nil
}

// FlattenAll flattens the entire document to a plain array: the paper's
// best case, "a compacted Treedoc reduces to a sequential array, with zero
// overhead".
func (t *Tree) FlattenAll() error { return t.Flatten(ident.Path{}) }

// walkNode locates the major node designated by a structural path (empty =
// root, otherwise every element including the last is followed; a final
// Major element selects the node itself).
func (t *Tree) walkNode(p ident.Path) (*Node, error) {
	cur := slot{node: t.root}
	for i, e := range p {
		if cur.node.flat != nil {
			t.explodeNode(cur.node)
		}
		next := cur.child(e.Bit)
		if next == nil {
			return nil, errNotFound
		}
		if e.Kind == ident.Major {
			cur = slot{node: next}
			continue
		}
		if next.flat != nil {
			t.explodeNode(next)
		}
		m := next.findMini(e.Dis)
		if m == nil {
			return nil, errNotFound
		}
		if i == len(p)-1 {
			return nil, fmt.Errorf("doctree: path %v designates a mini-node, not a major node", p)
		}
		cur = slot{node: next, mini: m}
	}
	return cur.node, nil
}

// collectLive appends the live atoms of n's subtree in infix order.
func collectLive(n *Node, out *[]string) {
	if n == nil {
		return
	}
	if n.flat != nil {
		*out = append(*out, n.flat...)
		return
	}
	collectLive(n.left, out)
	for _, m := range n.minis {
		collectLive(m.left, out)
		if !m.dead {
			*out = append(*out, m.atom)
		}
		collectLive(m.right, out)
	}
	collectLive(n.right, out)
}

// recomputeHeight walks the tree to refresh the cached height after a
// structural clean-up removed nodes.
func (t *Tree) recomputeHeight() {
	t.height = maxDepth(t.root, 0)
}

func maxDepth(n *Node, d int) int {
	if n == nil {
		return d - 1
	}
	best := d
	if h := maxDepth(n.left, d+1); h > best {
		best = h
	}
	if h := maxDepth(n.right, d+1); h > best {
		best = h
	}
	for _, m := range n.minis {
		if h := maxDepth(m.left, d+1); h > best {
			best = h
		}
		if h := maxDepth(m.right, d+1); h > best {
			best = h
		}
	}
	return best
}

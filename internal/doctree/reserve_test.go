package doctree

import (
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
)

func TestReserveMaterialisesCompleteSubtree(t *testing.T) {
	tr := New()
	mustInsert(t, tr, "[(1:s1)]", "a")
	// Reserve 2 levels under [11]: nodes [11], [110], [111].
	if err := tr.Reserve(ident.MustParsePath("[11(0:s1)]").StripLastDis()[:2], 2); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	s := tr.Stats(ident.PaperCost(ident.SDIS))
	if s.Nodes != 4 { // node [1] (holds a) + the three reserved
		t.Errorf("nodes = %d, want 4", s.Nodes)
	}
	if tr.Height() != 3 {
		t.Errorf("height = %d, want 3 (region root at depth 2 plus one level)", tr.Height())
	}
	// The reserved slots are found by the free search, in infix order.
	a := ident.MustParsePath("[(1:s1)]")
	got := tr.FreeMiniBetween(a, nil, ident.Dis{Site: 2})
	if got == nil || got.String() != "[11(0:s2)]" {
		t.Errorf("first free slot = %v, want [11(0:s2)]", got)
	}
}

func TestReserveValidation(t *testing.T) {
	tr := New()
	if err := tr.Reserve(ident.Path{}, 2); err == nil {
		t.Error("reserving the root (empty path) accepted")
	}
	if err := tr.Reserve(ident.MustParsePath("[(1:s1)]"), 2); err == nil {
		t.Error("reserving a mini path accepted")
	}
}

func TestReserveThroughMiniAndExisting(t *testing.T) {
	tr := New()
	mustInsert(t, tr, "[(1:s1)]", "a")
	mustInsert(t, tr, "[(1:s1)(0:s2)]", "b") // child of mini a
	// Reserve below the mini's child region.
	path := ident.MustParsePath("[(1:s1)(0:s2)]").StripLastDis()
	if err := tr.Reserve(path, 2); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	// Re-reserving is idempotent structurally.
	before := tr.Stats(ident.PaperCost(ident.SDIS)).Nodes
	if err := tr.Reserve(path, 2); err != nil {
		t.Fatal(err)
	}
	if got := tr.Stats(ident.PaperCost(ident.SDIS)).Nodes; got != before {
		t.Errorf("re-reserve changed node count %d -> %d", before, got)
	}
}

func TestExistsEdgeCases(t *testing.T) {
	tr := figure2(t)
	if !tr.Exists(ident.MustParsePath("[(0:s2)]")) {
		t.Error("live atom not reported used")
	}
	if _, err := tr.DeleteID(ident.MustParsePath("[(0:s2)]"), false); err != nil {
		t.Fatal(err)
	}
	if !tr.Exists(ident.MustParsePath("[(0:s2)]")) {
		t.Error("tombstone not reported used (SDIS must not re-mint it)")
	}
	if tr.Exists(ident.MustParsePath("[(0:s9)]")) {
		t.Error("absent mini reported used")
	}
	if tr.Exists(ident.MustParsePath("[0000(1:s1)]")) {
		t.Error("absent deep path reported used")
	}
	// Flat regions: canonical space is conservatively used, site ids free.
	if err := tr.FlattenAll(); err != nil {
		t.Fatal(err)
	}
	if tr.Exists(ident.MustParsePath("[00(1:s5)]")) {
		t.Error("site-disambiguated id inside flat region reported used")
	}
	if !tr.Exists(ident.MustParsePath("[00(1:⊥)]")) {
		t.Error("canonical id inside flat region reported free")
	}
	// Exists must not have exploded the region (5 atoms: b was tombstoned
	// before the flatten collected it).
	if got := tr.Stats(ident.PaperCost(ident.SDIS)).FlatAtoms; got != 5 {
		t.Errorf("Exists exploded the flat region: flat atoms = %d", got)
	}
}

func TestAtomAtInsideFlatDoesNotExplode(t *testing.T) {
	tr := figure2(t)
	if err := tr.FlattenAll(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"a", "b", "c", "d", "e", "f"} {
		got, err := tr.AtomAt(i)
		if err != nil || got != want {
			t.Fatalf("AtomAt(%d) = %q, %v", i, got, err)
		}
	}
	if got := tr.Stats(ident.PaperCost(ident.SDIS)).FlatAtoms; got != 6 {
		t.Errorf("AtomAt exploded the region: flat = %d", got)
	}
	// MiniAt requires identifiers, so it explodes.
	if _, err := tr.MiniAt(3); err != nil {
		t.Fatal(err)
	}
	if got := tr.Stats(ident.PaperCost(ident.SDIS)).FlatAtoms; got != 0 {
		t.Errorf("MiniAt left flat atoms: %d", got)
	}
	checkTree(t, tr)
}

func TestColdestSubtreeSkipsMiniLessRegions(t *testing.T) {
	tr := New()
	mustInsert(t, tr, "[(0:s1)]", "a")
	mustInsert(t, tr, "[1(0:s1)]", "c") // a small cold region with an atom
	// A purely reserved (mini-less) region, much larger: must never be
	// selected, since remote replicas would not have it materialised.
	if err := tr.Reserve(ident.Path{ident.J(1), ident.J(1)}, 4); err != nil {
		t.Fatal(err)
	}
	tr.AdvanceRev()
	mustInsert(t, tr, "[0(0:s1)]", "b") // keep the left branch hot
	cold := tr.ColdestSubtree(0, 1)
	if cold == nil {
		t.Fatal("no cold subtree at all")
	}
	n, err := tr.walkNode(cold)
	if err != nil {
		t.Fatal(err)
	}
	if n.live+n.dead == 0 {
		t.Errorf("cold subtree %v has no mini-nodes", cold)
	}
	// The selected region may enclose the reserved slots (it then contains
	// c's mini and remains remotely resolvable) but must never be the
	// mini-less reserved region itself.
	if cold.HasPrefix(ident.Path{ident.J(1), ident.J(1)}) {
		t.Errorf("cold subtree = %v lies inside the reserved-only region", cold)
	}
}

func TestColdScorePrefersTombstones(t *testing.T) {
	tr := New()
	// Left branch: many live atoms. Right branch: fewer nodes but dense
	// tombstones. The heuristic must pick the tombstone-rich region.
	for i, s := range []string{"[0(0:s1)]", "[00(0:s1)]", "[000(0:s1)]", "[0000(0:s1)]", "[00000(0:s1)]"} {
		mustInsert(t, tr, s, string(rune('a'+i)))
	}
	for _, s := range []string{"[1(0:s1)]", "[10(0:s1)]", "[100(0:s1)]"} {
		mustInsert(t, tr, s, "x")
		if _, err := tr.DeleteID(ident.MustParsePath(s), false); err != nil {
			t.Fatal(err)
		}
	}
	tr.AdvanceRev()
	// Keep a shallow left branch hot so the root itself is not cold.
	mustInsert(t, tr, "[01(0:s1)]", "hot")
	cold := tr.ColdestSubtree(0, 1)
	if cold == nil {
		t.Fatal("no cold subtree")
	}
	if cold.String() != "[1]" {
		t.Errorf("cold subtree = %v, want [1] (tombstone-rich)", cold)
	}
}

package doctree

import (
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
)

// ExportMini is the serialisation view of a mini-node.
type ExportMini struct {
	Dis  ident.Dis
	Dead bool
	Atom string
}

// ExportNode is the serialisation view of one breadth-first slot: either
// absent, a flattened region, or a node with its mini-nodes.
type ExportNode struct {
	Present bool
	Flat    []string // non-nil: flattened region content
	IsFlat  bool
	Minis   []ExportMini
}

// ExportBFS visits the tree breadth-first in the on-disk layout order of
// Section 5.2: "nodes are stored from top to bottom, line by line, and
// nodes on the same line are stored left to right". The root is the first
// slot; each present non-flattened node contributes its child slots to the
// next line in a fixed order — major-left, major-right, then each
// mini-node's left and right in disambiguator order. Absent slots are
// emitted (they become the paper's run-length-encoded markers) and
// contribute no further slots.
func (t *Tree) ExportBFS(visit func(ExportNode)) {
	queue := []*Node{t.root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == nil {
			visit(ExportNode{})
			continue
		}
		if n.flat != nil {
			visit(ExportNode{Present: true, IsFlat: true, Flat: n.flat})
			continue
		}
		en := ExportNode{Present: true, Minis: make([]ExportMini, 0, len(n.minis))}
		for _, m := range n.minis {
			en.Minis = append(en.Minis, ExportMini{Dis: m.dis, Dead: m.dead, Atom: m.atom})
		}
		visit(en)
		queue = append(queue, n.left, n.right)
		for _, m := range n.minis {
			queue = append(queue, m.left, m.right)
		}
	}
}

// BuildFromBFS reconstructs a tree from the slot stream produced by
// ExportBFS. next is called once per slot in the same order.
func BuildFromBFS(next func() (ExportNode, error)) (*Tree, error) {
	t := New()
	en, err := next()
	if err != nil {
		return nil, fmt.Errorf("doctree: import root: %w", err)
	}
	if !en.Present {
		return t, nil
	}
	type slotRef struct {
		parent *Node
		pmini  *Mini
		bit    uint8
	}
	var queue []slotRef
	fill := func(n *Node, en ExportNode) {
		if en.IsFlat {
			n.flat = append([]string(nil), en.Flat...)
			return
		}
		for _, em := range en.Minis {
			m := n.insertMini(em.Dis)
			m.dead = em.Dead
			m.atom = em.Atom
		}
		queue = append(queue, slotRef{n, nil, 0}, slotRef{n, nil, 1})
		for _, m := range n.minis {
			queue = append(queue, slotRef{n, m, 0}, slotRef{n, m, 1})
		}
	}
	fill(t.root, en)
	for i := 0; i < len(queue); i++ {
		ref := queue[i]
		en, err := next()
		if err != nil {
			return nil, fmt.Errorf("doctree: import slot %d: %w", i, err)
		}
		if !en.Present {
			continue
		}
		n := &Node{parent: ref.parent, pmini: ref.pmini, bit: ref.bit}
		if ref.pmini != nil {
			ref.pmini.setChild(ref.bit, n)
		} else {
			ref.parent.setChild(ref.bit, n)
		}
		fill(n, en)
	}
	t.recount(t.root)
	t.recomputeHeight()
	return t, nil
}

// recount rebuilds the cached live/node/tombstone counts bottom-up after an
// import.
func (t *Tree) recount(n *Node) (live, nodes, dead int) {
	if n == nil {
		return 0, 0, 0
	}
	if n.flat != nil {
		n.live = len(n.flat)
		n.nodes = 0
		n.dead = 0
		n.emptyN = 0
		return n.live, 0, 0
	}
	l, nn, ld := t.recount(n.left)
	r, rn, rd := t.recount(n.right)
	live, nodes, dead = l+r, nn+rn, ld+rd
	for _, m := range n.minis {
		ml, mn, md := t.recount(m.left)
		mr, mrn, mrd := t.recount(m.right)
		live += ml + mr
		nodes += mn + mrn
		dead += md + mrd
		if m.dead {
			dead++
		} else {
			live++
		}
	}
	if n.parent != nil {
		nodes++
	}
	n.live = live
	n.nodes = nodes
	n.dead = dead
	n.emptyN = n.left.emptyCount() + n.right.emptyCount()
	for _, m := range n.minis {
		n.emptyN += m.left.emptyCount() + m.right.emptyCount()
	}
	if n.empty() && n.parent != nil {
		n.emptyN++
	}
	return live, nodes, dead
}

// emptyCount returns the subtree's empty-slot count, tolerating nil.
func (n *Node) emptyCount() int {
	if n == nil {
		return 0
	}
	return n.emptyN
}

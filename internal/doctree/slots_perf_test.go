package doctree

import (
	"fmt"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
)

// TestFreeSearchPrunesTombstoneChains is the regression test for the
// allocation slowdown: a deep chain of tombstones contains no reusable
// slots, and the empty-slot subtree counters must let the search reject it
// without walking it.
func TestFreeSearchPrunesTombstoneChains(t *testing.T) {
	tr := New()
	// Build a deep right-spine of tombstones.
	id := ident.Path{ident.M(1, ident.Dis{Site: 1})}
	if err := tr.InsertID(id, "root-atom"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		id = id.Child(ident.M(1, ident.Dis{Site: 1}))
		if err := tr.InsertID(id, "x"); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if _, err := tr.DeleteID(id, false); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	checkTree(t, tr)
	// No empty slots exist anywhere: the search must answer instantly, by
	// the root-level emptyN==0 prune rather than a full scan. The budget in
	// the searcher would allow ~48k visits; assert correctness here and let
	// the benchmark below document the speed.
	first := ident.MustParsePath("[(1:s1)]")
	if got := tr.FreeMiniBetween(first, nil, ident.Dis{Site: 2}); got != nil {
		t.Errorf("found a free slot %v in a tombstone-only chain", got)
	}
	// Now reserve a region: the search must find it even with the chain
	// in between.
	if err := tr.Reserve(ident.Path{ident.J(0)}, 2); err != nil {
		t.Fatal(err)
	}
	got := tr.FreeMiniBetween(nil, first, ident.Dis{Site: 2})
	if got == nil {
		t.Fatal("reserved slot not found")
	}
	if !ident.Between(nil, got, first) {
		t.Errorf("slot %v not before %v", got, first)
	}
	checkTree(t, tr)
}

// TestEmptyCountsSurviveChurn cross-checks the emptyN counters (via Check)
// through every lifecycle: reserve, fill, delete with and without pruning,
// flatten, explode, and snapshot restore.
func TestEmptyCountsSurviveChurn(t *testing.T) {
	tr := New()
	mustInsert(t, tr, "[(1:s1)]", "a")
	if err := tr.Reserve(ident.Path{ident.J(1), ident.J(1)}, 3); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	// Fill two reserved slots.
	p := ident.MustParsePath("[(1:s1)]")
	for i := 0; i < 2; i++ {
		id := tr.FreeMiniBetween(p, nil, ident.Dis{Site: 2})
		if id == nil {
			t.Fatal("no reserved slot found")
		}
		if err := tr.InsertID(id, fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
		checkTree(t, tr)
		p = id
	}
	// Delete one with pruning (UDIS): slot may become empty again.
	if _, err := tr.DeleteID(p, true); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	// Tombstone the other (SDIS).
	id, err := tr.IDAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.DeleteID(id, false); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	// Flatten everything, explode by touching, keep checking.
	if err := tr.FlattenAll(); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
	if _, err := tr.IDAt(0); err != nil {
		t.Fatal(err)
	}
	checkTree(t, tr)
}

// BenchmarkFreeSearchTombstoneChain documents the pruned search cost on a
// tombstone-heavy document (the pre-fix cost was the whole visit budget).
func BenchmarkFreeSearchTombstoneChain(b *testing.B) {
	tr := New()
	id := ident.Path{ident.M(1, ident.Dis{Site: 1})}
	if err := tr.InsertID(id, "root-atom"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		id = id.Child(ident.M(1, ident.Dis{Site: 1}))
		if err := tr.InsertID(id, "x"); err != nil {
			b.Fatal(err)
		}
		if _, err := tr.DeleteID(id, false); err != nil {
			b.Fatal(err)
		}
	}
	first := ident.MustParsePath("[(1:s1)]")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tr.FreeMiniBetween(first, nil, ident.Dis{Site: 2}); got != nil {
			b.Fatal("unexpected slot")
		}
	}
}

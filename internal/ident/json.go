package ident

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON encodes the path as its bracket notation string (the paper's
// notation, e.g. "[10(0:s2)]"), which is self-describing and diffable in
// logs and trace files.
func (p Path) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON decodes the bracket notation produced by MarshalJSON.
func (p *Path) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("ident: path must be a string: %w", err)
	}
	q, err := ParsePath(s)
	if err != nil {
		return err
	}
	*p = q
	return nil
}

// Package ident implements Treedoc position identifiers (PosIDs): paths in
// an extended binary tree of major nodes and disambiguated mini-nodes, as
// described in Section 3 of the ICDCS 2009 Treedoc paper.
//
// A PosID is a Path: a sequence of elements. Each element steps one level
// down the binary tree (bit 0 = left, bit 1 = right) and either selects a
// mini-node in the node it arrives at (a Mini element, carrying a
// disambiguator) or passes through the node's major slot (a Major element).
// The element after a Mini element departs from that mini-node's children;
// the element after a Major element departs from the major node's children.
//
// The package provides the strict total order over PosIDs that is consistent
// with the infix walk of the tree (see DESIGN.md §2, deviation 3), the
// density primitives used by identifier allocation, and a compact binary
// encoding whose size accounting matches the paper's evaluation (Section 5):
// one bit per tree level plus the disambiguator bytes, where the reserved
// canonical disambiguator costs zero bytes.
package ident

import (
	"fmt"
	"strconv"
)

// SiteID identifies a replica site. The paper uses 6-byte identifiers (MAC
// addresses, Section 3.3.2); only the low 48 bits are meaningful. SiteID 0
// is reserved for the canonical disambiguator produced by explode.
type SiteID uint64

// MaxSiteID is the largest representable site identifier (48 bits, matching
// the paper's 6-byte MAC-address site identifiers).
const MaxSiteID SiteID = 1<<48 - 1

// Dis is a disambiguator: it makes concurrently allocated identifiers at the
// same tree position unique and ordered (Section 3.3).
//
// The two schemes of the paper share this representation:
//
//   - UDIS ("unique disambiguators"): a (counter, site) pair where counter is
//     a per-site persistent counter. Ordered by counter, then site.
//   - SDIS ("site disambiguators"): a bare site identifier; Counter is always
//     zero, so the UDIS order degrades to site order.
//
// The zero value is the reserved canonical disambiguator ⊥ assigned by
// explode to atoms of a compacted region. It sorts before every
// site-generated disambiguator and costs zero bytes on the wire, which keeps
// "a path of an atom [after explode] is a simple bitstring" (Section 4.2)
// true for size accounting.
type Dis struct {
	// Counter is the per-site persistent counter (UDIS only; zero in SDIS).
	Counter uint32
	// Site is the site identifier. Zero is reserved for canonical atoms.
	Site SiteID
}

// Canonical is the reserved disambiguator assigned by explode. It is the
// zero value of Dis.
var Canonical = Dis{}

// IsCanonical reports whether d is the reserved canonical disambiguator.
func (d Dis) IsCanonical() bool { return d == Canonical }

// Compare returns -1, 0, or +1 ordering disambiguators by (counter, site),
// per Section 3.3.1. The canonical disambiguator (0,0) sorts first.
func (d Dis) Compare(o Dis) int {
	switch {
	case d.Counter < o.Counter:
		return -1
	case d.Counter > o.Counter:
		return +1
	case d.Site < o.Site:
		return -1
	case d.Site > o.Site:
		return +1
	}
	return 0
}

// String renders the disambiguator for debugging: "⊥" for canonical,
// "s<site>" for SDIS-style, "c<counter>s<site>" for UDIS-style.
func (d Dis) String() string {
	if d.IsCanonical() {
		return "⊥"
	}
	if d.Counter == 0 {
		return "s" + strconv.FormatUint(uint64(d.Site), 10)
	}
	return "c" + strconv.FormatUint(uint64(d.Counter), 10) +
		"s" + strconv.FormatUint(uint64(d.Site), 10)
}

// Mode selects the disambiguator scheme, which determines deletion semantics
// (Section 3.3) and wire/storage cost (Section 5).
type Mode uint8

const (
	// SDIS uses bare site identifiers. Deleted atoms leave tombstones
	// (Section 3.3.2): the node is kept so the identifier is never reused.
	SDIS Mode = iota + 1
	// UDIS uses (counter, site) pairs, which are globally unique, so deleted
	// leaf mini-nodes are discarded immediately (Section 3.3.1).
	UDIS
)

// String returns the scheme name as used in the paper.
func (m Mode) String() string {
	switch m {
	case SDIS:
		return "SDIS"
	case UDIS:
		return "UDIS"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Cost is the byte-size model for disambiguators used in the paper's
// evaluation (Section 5): "We use 6 bytes for site identifiers in both UDIS
// and SDIS, and 4 bytes for the UDIS counter."
type Cost struct {
	// SiteBytes is the width of a site identifier (paper: 6).
	SiteBytes int
	// CounterBytes is the width of the UDIS counter (paper: 4; 0 for SDIS).
	CounterBytes int
}

// PaperCost returns the evaluation cost model of Section 5 for mode m:
// 6-byte sites, plus a 4-byte counter under UDIS.
func PaperCost(m Mode) Cost {
	c := Cost{SiteBytes: 6}
	if m == UDIS {
		c.CounterBytes = 4
	}
	return c
}

// CompactCost returns the "known membership" SDIS variant of Section 3.3.2,
// where each site is assigned a short integer: 2-byte site identifiers.
func CompactCost() Cost {
	return Cost{SiteBytes: 2}
}

// DisBytes returns the wire size of one disambiguator under this cost model.
func (c Cost) DisBytes() int { return c.SiteBytes + c.CounterBytes }

// Bits returns the size in bits of disambiguator d under this cost model.
// The canonical disambiguator is free: compacted atoms carry no metadata.
func (c Cost) Bits(d Dis) int {
	if d.IsCanonical() {
		return 0
	}
	return 8 * c.DisBytes()
}

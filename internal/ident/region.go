package ident

// RegionCompare compares identifier a against the identifier region of the
// tree node designated by structural path r (a path whose final element is
// Major, or the empty path for the root). The region of a node is the
// contiguous identifier interval of its entire subtree: every identifier
// whose walk passes through the node.
//
// It returns -1 if a sorts before the whole region, 0 if a lies inside it,
// and +1 if a sorts after the whole region. Identifier allocation
// (Algorithm 1) uses this to establish that a candidate child region lies
// strictly between the insert neighbours.
func RegionCompare(a Path, r Path) int {
	if len(r) == 0 {
		return 0 // the root's region is the whole identifier space
	}
	k := len(r)
	// a lies inside the region iff it walks through the region's node: its
	// first k-1 elements match r exactly and its k-th element steps the same
	// direction (entering the node through its major slot or any mini).
	if len(a) >= k {
		inside := true
		for i := 0; i < k-1; i++ {
			if a[i] != r[i] {
				inside = false
				break
			}
		}
		if inside && a[k-1].Bit == r[k-1].Bit {
			return 0
		}
	}
	// Outside: the divergence point decides the side, which is exactly the
	// lexicographic element order (subtree regions are intervals).
	return Compare(a, r)
}

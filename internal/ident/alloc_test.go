package ident

import "testing"

// TestAppendBinaryAllocs guards the zero-allocation contract of the
// append-style path encoder: with a presized destination, serialising an
// identifier must not touch the heap. The wire and storage encoders lean on
// this in their per-op hot loops; a regression here multiplies into one
// allocation per operation across every frame and snapshot.
func TestAppendBinaryAllocs(t *testing.T) {
	p := Path{J(0), J(1), M(0, Dis{Counter: 7, Site: 42}), M(1, Dis{Counter: 9, Site: 99})}
	dst := make([]byte, 0, 256)
	got := testing.AllocsPerRun(200, func() {
		dst = p.AppendBinary(dst[:0])
	})
	if got != 0 {
		t.Errorf("Path.AppendBinary into presized dst: %.1f allocs/op, want 0", got)
	}
}

package ident

import (
	"encoding/binary"
	"fmt"
)

// Wire encoding of a Path:
//
//	uvarint(len) then per element one flag byte followed, for site-generated
//	mini elements only, by uvarint(counter) and uvarint(site).
//
// Flag byte layout: bit 0 = descent bit; bits 1-2 = element form
// (0 = Major, 1 = Mini with canonical disambiguator, 2 = Mini with
// site-generated disambiguator).
//
// This is the transport encoding. The paper-comparable identifier size
// (Section 5's PosID columns) is the analytic Path.Bits(Cost) model; the
// on-disk document format of Section 5.2 lives in internal/storage.
const (
	formMajor    = 0
	formMiniCan  = 1
	formMiniSite = 2
)

// AppendBinary appends the wire encoding of p to dst and returns the result.
//
//treedoc:noalloc
func (p Path) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	for _, e := range p {
		flag := e.Bit & 1
		switch {
		case e.Kind == Major:
			flag |= formMajor << 1
		case e.Dis.IsCanonical():
			flag |= formMiniCan << 1
		default:
			flag |= formMiniSite << 1
		}
		dst = append(dst, flag)
		if e.Kind == Mini && !e.Dis.IsCanonical() {
			dst = binary.AppendUvarint(dst, uint64(e.Dis.Counter))
			dst = binary.AppendUvarint(dst, uint64(e.Dis.Site))
		}
	}
	return dst
}

// MarshalBinary encodes p in the wire format.
func (p Path) MarshalBinary() ([]byte, error) {
	return p.AppendBinary(nil), nil
}

// DecodePath decodes one path from the front of buf, returning the path and
// the number of bytes consumed.
func DecodePath(buf []byte) (Path, int, error) {
	n, used := binary.Uvarint(buf)
	if used <= 0 {
		return nil, 0, fmt.Errorf("ident: truncated path length")
	}
	if n > uint64(len(buf)) {
		return nil, 0, fmt.Errorf("ident: path length %d exceeds buffer", n)
	}
	off := used
	p := make(Path, 0, n)
	for i := uint64(0); i < n; i++ {
		if off >= len(buf) {
			return nil, 0, fmt.Errorf("ident: truncated path element %d", i)
		}
		flag := buf[off]
		off++
		e := Elem{Bit: flag & 1}
		switch (flag >> 1) & 3 {
		case formMajor:
			e.Kind = Major
		case formMiniCan:
			e.Kind = Mini
		case formMiniSite:
			e.Kind = Mini
			c, cn := binary.Uvarint(buf[off:])
			if cn <= 0 {
				return nil, 0, fmt.Errorf("ident: truncated counter in element %d", i)
			}
			off += cn
			s, sn := binary.Uvarint(buf[off:])
			if sn <= 0 {
				return nil, 0, fmt.Errorf("ident: truncated site in element %d", i)
			}
			off += sn
			if c > 1<<32-1 {
				return nil, 0, fmt.Errorf("ident: counter %d overflows uint32", c)
			}
			if SiteID(s) > MaxSiteID {
				return nil, 0, fmt.Errorf("ident: site %d exceeds 48 bits", s)
			}
			e.Dis = Dis{Counter: uint32(c), Site: SiteID(s)}
		default:
			return nil, 0, fmt.Errorf("ident: invalid element form %d", (flag>>1)&3)
		}
		p = append(p, e)
	}
	return p, off, nil
}

// UnmarshalBinary decodes p from data, requiring the whole buffer to be
// consumed.
func (p *Path) UnmarshalBinary(data []byte) error {
	q, n, err := DecodePath(data)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("ident: %d trailing bytes after path", len(data)-n)
	}
	*p = q
	return nil
}

package ident

import (
	"fmt"
	"strings"
)

// Kind distinguishes the two element forms of Section 3.1: elements that
// carry a disambiguator (selecting a mini-node) and elements that do not
// (passing through a major node).
type Kind uint8

const (
	// Major is a path element without a disambiguator: it "refers to the
	// children of the corresponding major node" (Section 3.1).
	Major Kind = iota + 1
	// Mini is a path element with a disambiguator: it selects a mini-node of
	// the node it steps into; subsequent elements descend from that
	// mini-node's children.
	Mini
)

// Elem is one element of a PosID path: a step down the binary tree plus an
// optional mini-node selection.
type Elem struct {
	// Bit is the descent direction: 0 = left child, 1 = right child.
	Bit uint8
	// Kind says whether the element selects a mini-node (Mini) or passes
	// through the major slot (Major).
	Kind Kind
	// Dis is the mini-node's disambiguator; meaningful only when Kind==Mini.
	Dis Dis
}

// M returns a Mini element with bit b and disambiguator d.
func M(b uint8, d Dis) Elem { return Elem{Bit: b, Kind: Mini, Dis: d} }

// J returns a Major ("jump-through") element with bit b.
func J(b uint8) Elem { return Elem{Bit: b, Kind: Major} }

// Path is a Treedoc position identifier (PosID): the walk from the document
// root to an atom's mini-node. The empty path denotes the root major node,
// which holds no atoms; every atom identifier is non-empty and ends with a
// Mini element.
type Path []Elem

// Len returns the tree depth of the identifier (number of elements).
func (p Path) Len() int { return len(p) }

// IsRoot reports whether p is the empty path (the document root).
func (p Path) IsRoot() bool { return len(p) == 0 }

// Last returns the final element. It panics on the empty path; callers
// validate atom identifiers with Validate first.
func (p Path) Last() Elem { return p[len(p)-1] }

// Clone returns an independent copy of p.
func (p Path) Clone() Path {
	if p == nil {
		return nil
	}
	q := make(Path, len(p))
	copy(q, p)
	return q
}

// Child returns a new path extending p with element e. The result never
// aliases p's backing array, so it is safe to extend one path two ways.
func (p Path) Child(e Elem) Path {
	q := make(Path, len(p)+1)
	copy(q, p)
	q[len(p)] = e
	return q
}

// StripLastDis returns p with its final element demoted to a Major element
// (the "c1…pn" form used by Algorithm 1: the bits of the final element are
// kept, the disambiguator dropped). It panics on the empty path.
func (p Path) StripLastDis() Path {
	q := p.Clone()
	q[len(q)-1] = J(q[len(q)-1].Bit)
	return q
}

// Equal reports whether p and q are element-wise identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// HasPrefix reports whether q is an element-wise prefix of p (including
// p.Equal(q)).
func (p Path) HasPrefix(q Path) bool {
	if len(q) > len(p) {
		return false
	}
	for i := range q {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Validate checks that p is a well-formed atom identifier: non-empty, every
// bit is 0 or 1, every element kind is Major or Mini, and the final element
// is a Mini (atoms live in mini-nodes).
func (p Path) Validate() error {
	return p.ValidateFrom(0)
}

// ValidateFrom is Validate for a path whose first skip elements are already
// known well-formed — typically because they matched a previously validated
// identifier elementwise (the doctree walk cache). Only the remaining
// elements are checked, which keeps validation O(suffix) on cache-resumed
// walks instead of O(depth) per operation.
func (p Path) ValidateFrom(skip int) error {
	if len(p) == 0 {
		return fmt.Errorf("ident: empty path is not an atom identifier")
	}
	for i := skip; i < len(p); i++ {
		e := p[i]
		if e.Bit > 1 {
			return fmt.Errorf("ident: element %d has bit %d (want 0 or 1)", i, e.Bit)
		}
		switch e.Kind {
		case Major, Mini:
		default:
			return fmt.Errorf("ident: element %d has invalid kind %d", i, e.Kind)
		}
	}
	if p.Last().Kind != Mini {
		return fmt.Errorf("ident: atom identifier must end with a mini-node element")
	}
	return nil
}

// ValidateStructural checks that p is a well-formed structural path — one
// designating a major node rather than an atom: the empty path (the root)
// or a path of valid elements whose final element is a Major. Flatten
// operations and subtree regions are addressed this way.
func (p Path) ValidateStructural() error {
	for i, e := range p {
		if e.Bit > 1 {
			return fmt.Errorf("ident: element %d has bit %d (want 0 or 1)", i, e.Bit)
		}
		switch e.Kind {
		case Major, Mini:
		default:
			return fmt.Errorf("ident: element %d has invalid kind %d", i, e.Kind)
		}
	}
	if len(p) > 0 && p.Last().Kind != Major {
		return fmt.Errorf("ident: structural path must end with a major element")
	}
	return nil
}

// String renders the path in the paper's notation, e.g. "[10(0:s2)]" for
// bits 1,0 followed by a mini element with bit 0 and disambiguator site 2.
// Major elements print as bare bits; Mini elements as "(bit:dis)".
func (p Path) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for _, e := range p {
		if e.Kind == Mini {
			fmt.Fprintf(&b, "(%d:%s)", e.Bit, e.Dis)
		} else {
			b.WriteByte('0' + e.Bit)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// elemClass positions an element among its node's contents for ordering.
// Within one tree node reached by bit b, the infix walk visits: the node's
// major-left subtree, then its mini-nodes in disambiguator order (each with
// its own subtrees), then its major-right subtree. A Major element therefore
// ranks by the direction of the *next* step, while a Mini element ranks by
// its disambiguator between the two.
const (
	classLeft  = 0 // Major element whose next step descends left
	classMini  = 1 // Mini element (ordered by disambiguator)
	classRight = 2 // Major element whose next step descends right
)

func class(p Path, i int) int {
	e := p[i]
	if e.Kind == Mini {
		return classMini
	}
	if i+1 < len(p) && p[i+1].Bit == 1 {
		return classRight
	}
	if i+1 < len(p) {
		return classLeft
	}
	// A final Major element denotes the major slot itself; it only occurs in
	// structural (non-atom) paths. Rank it like the canonical mini so the
	// order stays total; the kind tiebreak below distinguishes it from a
	// genuine canonical mini.
	return classMini
}

// Compare implements the strict total order over position identifiers,
// consistent with the infix walk of the extended tree (Section 3.1; see
// DESIGN.md for the correction to the paper's element rules). It returns
// -1 if p < q, 0 if p == q, +1 if p > q.
func Compare(p, q Path) int {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	i := 0
	if n > 0 && &p[0] == &q[0] {
		// Shared backing from index 0 (one path arena-Extends the other):
		// the common prefix is the whole shorter path, element by element the
		// same memory, so the scan starts at the length tiebreak.
		i = n
	}
	for ; i < n; i++ {
		pe, qe := p[i], q[i]
		if pe == qe {
			continue
		}
		if pe.Bit != qe.Bit {
			if pe.Bit < qe.Bit {
				return -1
			}
			return +1
		}
		pc, qc := class(p, i), class(q, i)
		if pc != qc {
			if pc < qc {
				return -1
			}
			return +1
		}
		if pc == classMini {
			// Same bit, both rank as minis: order by disambiguator, then
			// prefer the Major (structural) form as the smaller so the order
			// stays total on structural paths too.
			pd, qd := Dis{}, Dis{}
			if pe.Kind == Mini {
				pd = pe.Dis
			}
			if qe.Kind == Mini {
				qd = qe.Dis
			}
			if c := pd.Compare(qd); c != 0 {
				return c
			}
			if pe.Kind != qe.Kind {
				if pe.Kind == Major {
					return -1
				}
				return +1
			}
			// Same bit, kind, and dis but unequal elements is impossible.
		}
		// Same bit and class but different kinds cannot happen outside the
		// classMini branch: Left/Right classes are Major-only.
	}
	switch {
	case len(p) == len(q):
		return 0
	case len(p) < len(q):
		// p is a proper prefix: p's atom sits between its mini-node's left
		// and right subtrees, so q's continuation bit decides.
		if q[len(p)].Bit == 0 {
			return +1
		}
		return -1
	default:
		if p[len(q)].Bit == 0 {
			return -1
		}
		return +1
	}
}

// Less reports whether p sorts strictly before q.
func Less(p, q Path) bool { return Compare(p, q) < 0 }

// Between reports whether p < n < f, treating a nil p as the start of the
// document (-∞) and a nil f as the end (+∞).
func Between(p, n, f Path) bool {
	if p != nil && Compare(p, n) >= 0 {
		return false
	}
	if f != nil && Compare(n, f) >= 0 {
		return false
	}
	return true
}

// Bits returns the identifier's size in bits under cost model c: one bit per
// element plus the disambiguator cost of each Mini element (Section 5:
// canonical disambiguators are free, so compacted paths are pure bitstrings).
func (p Path) Bits(c Cost) int {
	bits := len(p)
	for _, e := range p {
		if e.Kind == Mini {
			bits += c.Bits(e.Dis)
		}
	}
	return bits
}

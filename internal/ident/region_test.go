package ident

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegionCompareBasics(t *testing.T) {
	root := Path{}
	anyID := MustParsePath("[10(0:s3)]")
	if RegionCompare(anyID, root) != 0 {
		t.Error("everything lies inside the root region")
	}
	region := MustParsePath("[10(0:s3)]").StripLastDis() // node [100]
	tests := []struct {
		id   string
		want int
	}{
		{"[10(0:s3)]", 0},       // the node's own mini
		{"[100(1:s4)]", 0},      // a descendant through the major slot
		{"[10(0:s3)(1:s8)]", 0}, // a descendant through a mini
		{"[(0:s1)]", -1},        // left sibling branch: before
		{"[10(1:s1)]", +1},      // right-bit mini of the same parent: after
		{"[(1:s1)]", +1},        // the parent branch's own mini: after the left subtree
		{"[1000(0:s2)]", 0},     // deeper descendant
		{"[101(0:s2)]", +1},     // parent's major-right subtree: after
	}
	for _, tt := range tests {
		id := MustParsePath(tt.id)
		if got := RegionCompare(id, region); got != tt.want {
			t.Errorf("RegionCompare(%s, %v) = %d, want %d", tt.id, region, got, tt.want)
		}
	}
}

// TestRegionCompareIntervalProperty: a subtree region is an interval in the
// total order. For random region paths and random identifiers, every
// identifier classified "before" must sort before every identifier inside,
// and those before every identifier "after".
func TestRegionCompareIntervalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3000; trial++ {
		region := randomPath(rng, 5).StripLastDis()
		var before, inside, after []Path
		for i := 0; i < 12; i++ {
			id := randomPath(rng, 8)
			switch RegionCompare(id, region) {
			case -1:
				before = append(before, id)
			case 0:
				inside = append(inside, id)
			case +1:
				after = append(after, id)
			}
		}
		for _, b := range before {
			for _, in := range inside {
				if Compare(b, in) >= 0 {
					t.Fatalf("region %v: before-id %v >= inside-id %v", region, b, in)
				}
			}
			for _, a := range after {
				if Compare(b, a) >= 0 {
					t.Fatalf("region %v: before-id %v >= after-id %v", region, b, a)
				}
			}
		}
		for _, in := range inside {
			for _, a := range after {
				if Compare(in, a) >= 0 {
					t.Fatalf("region %v: inside-id %v >= after-id %v", region, in, a)
				}
			}
		}
	}
}

// TestRegionCompareDescendants: any extension of a path through the
// region's node classifies as inside.
func TestRegionCompareDescendants(t *testing.T) {
	f := func(a, b quickPath) bool {
		region := a.P.StripLastDis()
		// Build a descendant: enter the node (mini or major) and continue.
		desc := append(region.Clone(), b.P...)
		return RegionCompare(desc, region) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestRegionCompareMiniEntry: entering the region's node via a mini (same
// bit, any disambiguator) is inside.
func TestRegionCompareMiniEntry(t *testing.T) {
	region := MustParsePath("[01(1:s1)]").StripLastDis() // node [011]
	for _, s := range []string{"[01(1:⊥)]", "[01(1:s9)]", "[01(1:c3s2)]"} {
		if got := RegionCompare(MustParsePath(s), region); got != 0 {
			t.Errorf("RegionCompare(%s) = %d, want 0", s, got)
		}
	}
}

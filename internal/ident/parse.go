package ident

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsePath parses the paper's bracket notation as produced by Path.String,
// e.g. "[10(0:s2)]", "[1110(0:c3s1)]", "[(1:⊥)]". Bare digits are Major
// elements; "(bit:dis)" groups are Mini elements with disambiguator syntax
// "⊥" (canonical), "sN" (SDIS) or "cNsM" (UDIS). It is intended for tests
// and tooling, where scenarios from the paper's figures are written down
// verbatim.
func ParsePath(s string) (Path, error) {
	orig := s
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("ident: path %q must be bracketed", orig)
	}
	s = s[1 : len(s)-1]
	var p Path
	for len(s) > 0 {
		switch s[0] {
		case '0', '1':
			p = append(p, J(s[0]-'0'))
			s = s[1:]
		case '(':
			end := strings.IndexByte(s, ')')
			if end < 0 {
				return nil, fmt.Errorf("ident: unterminated mini element in %q", orig)
			}
			body := s[1:end]
			s = s[end+1:]
			colon := strings.IndexByte(body, ':')
			if colon != 1 || (body[0] != '0' && body[0] != '1') {
				return nil, fmt.Errorf("ident: mini element %q must be (bit:dis)", body)
			}
			d, err := parseDis(body[colon+1:])
			if err != nil {
				return nil, fmt.Errorf("ident: in path %q: %w", orig, err)
			}
			p = append(p, M(body[0]-'0', d))
		default:
			return nil, fmt.Errorf("ident: unexpected character %q in path %q", s[0], orig)
		}
	}
	return p, nil
}

// MustParsePath is ParsePath that panics on error, for tests and fixtures.
func MustParsePath(s string) Path {
	p, err := ParsePath(s)
	if err != nil {
		panic(err)
	}
	return p
}

func parseDis(s string) (Dis, error) {
	if s == "⊥" || s == "" {
		return Canonical, nil
	}
	var d Dis
	rest := s
	if strings.HasPrefix(rest, "c") {
		rest = rest[1:]
		i := strings.IndexByte(rest, 's')
		if i < 0 {
			return Dis{}, fmt.Errorf("disambiguator %q missing site", s)
		}
		c, err := strconv.ParseUint(rest[:i], 10, 32)
		if err != nil {
			return Dis{}, fmt.Errorf("disambiguator %q: bad counter: %w", s, err)
		}
		d.Counter = uint32(c)
		rest = rest[i:]
	}
	if !strings.HasPrefix(rest, "s") {
		return Dis{}, fmt.Errorf("disambiguator %q must be ⊥, sN or cNsM", s)
	}
	site, err := strconv.ParseUint(rest[1:], 10, 64)
	if err != nil {
		return Dis{}, fmt.Errorf("disambiguator %q: bad site: %w", s, err)
	}
	if SiteID(site) > MaxSiteID {
		return Dis{}, fmt.Errorf("disambiguator %q: site exceeds 48 bits", s)
	}
	d.Site = SiteID(site)
	return d, nil
}

package ident

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// randomPath draws a well-formed atom identifier of depth 1..maxDepth with a
// small site/counter alphabet so collisions (shared prefixes, equal
// disambiguators) are frequent enough to exercise every comparison branch.
func randomPath(r *rand.Rand, maxDepth int) Path {
	depth := 1 + r.Intn(maxDepth)
	p := make(Path, 0, depth)
	for i := 0; i < depth; i++ {
		bit := uint8(r.Intn(2))
		last := i == depth-1
		if last || r.Intn(3) == 0 {
			var d Dis
			switch r.Intn(3) {
			case 0:
				d = Canonical
			case 1:
				d = Dis{Site: SiteID(1 + r.Intn(4))}
			default:
				d = Dis{Counter: uint32(1 + r.Intn(3)), Site: SiteID(1 + r.Intn(4))}
			}
			p = append(p, M(bit, d))
		} else {
			p = append(p, J(bit))
		}
	}
	return p
}

// Generate implements quick.Generator so testing/quick can draw Paths.
type quickPath struct{ P Path }

func (quickPath) Generate(r *rand.Rand, size int) reflect.Value {
	maxDepth := size
	if maxDepth < 2 {
		maxDepth = 2
	}
	if maxDepth > 24 {
		maxDepth = 24
	}
	return reflect.ValueOf(quickPath{P: randomPath(r, maxDepth)})
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b quickPath) bool {
		return Compare(a.P, b.P) == -Compare(b.P, a.P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCompareReflexiveOnEquals(t *testing.T) {
	f := func(a quickPath) bool {
		return Compare(a.P, a.P.Clone()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompareZeroImpliesEqual(t *testing.T) {
	f := func(a, b quickPath) bool {
		if Compare(a.P, b.P) == 0 {
			return a.P.Equal(b.P)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitive(t *testing.T) {
	f := func(a, b, c quickPath) bool {
		x, y, z := a.P, b.P, c.P
		// Sort the triple by Compare, then verify pairwise consistency.
		s := []Path{x, y, z}
		sort.Slice(s, func(i, j int) bool { return Less(s[i], s[j]) })
		return Compare(s[0], s[1]) <= 0 && Compare(s[1], s[2]) <= 0 && Compare(s[0], s[2]) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestCompareTransitiveExhaustiveSmall enumerates every path of depth <= 3
// over a two-bit, three-disambiguator alphabet and checks transitivity
// exhaustively on ordered triples sampled from the sorted universe.
func TestCompareTransitiveExhaustiveSmall(t *testing.T) {
	dises := []Dis{Canonical, {Site: 1}, {Site: 2}}
	var elems []Elem
	for bit := uint8(0); bit <= 1; bit++ {
		elems = append(elems, J(bit))
		for _, d := range dises {
			elems = append(elems, M(bit, d))
		}
	}
	var universe []Path
	var build func(prefix Path, depth int)
	build = func(prefix Path, depth int) {
		if len(prefix) > 0 && prefix.Last().Kind == Mini {
			universe = append(universe, prefix.Clone())
		}
		if depth == 0 {
			return
		}
		for _, e := range elems {
			build(append(prefix, e), depth-1)
		}
	}
	build(Path{}, 3)
	sort.Slice(universe, func(i, j int) bool { return Less(universe[i], universe[j]) })
	// After sorting with the comparator, every pair must agree with the
	// sorted order; any intransitivity shows up as an inversion.
	for i := 0; i < len(universe); i++ {
		for j := i + 1; j < len(universe); j++ {
			if c := Compare(universe[i], universe[j]); c > 0 {
				t.Fatalf("inversion after sort: %v > %v", universe[i], universe[j])
			} else if c == 0 && !universe[i].Equal(universe[j]) {
				t.Fatalf("distinct paths compare equal: %v, %v", universe[i], universe[j])
			}
		}
	}
	if len(universe) < 100 {
		t.Fatalf("universe too small (%d paths), enumeration is broken", len(universe))
	}
}

func TestEncodeRoundTripProperty(t *testing.T) {
	f := func(a quickPath) bool {
		data := a.P.AppendBinary(nil)
		q, n, err := DecodePath(data)
		return err == nil && n == len(data) && q.Equal(a.P)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestOrderAgreesWithChildGeometry(t *testing.T) {
	// For any atom id p: everything in p's left-descendant region sorts
	// before p, everything in the right-descendant region after.
	f := func(a, b quickPath) bool {
		p := a.P
		suffix := b.P
		left := append(p.Clone(), suffix...)
		left[len(p)] = Elem{Bit: 0, Kind: left[len(p)].Kind, Dis: left[len(p)].Dis}
		right := append(p.Clone(), suffix...)
		right[len(p)] = Elem{Bit: 1, Kind: right[len(p)].Kind, Dis: right[len(p)].Dis}
		return Less(left, p) && Less(p, right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

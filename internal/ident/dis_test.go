package ident

import "testing"

func TestDisCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Dis
		want int
	}{
		{"equal zero", Dis{}, Dis{}, 0},
		{"equal nonzero", Dis{Counter: 3, Site: 9}, Dis{Counter: 3, Site: 9}, 0},
		{"counter dominates", Dis{Counter: 1, Site: 99}, Dis{Counter: 2, Site: 1}, -1},
		{"site breaks tie", Dis{Counter: 2, Site: 1}, Dis{Counter: 2, Site: 5}, -1},
		{"canonical first vs SDIS", Canonical, Dis{Site: 1}, -1},
		{"canonical first vs UDIS", Canonical, Dis{Counter: 1, Site: 1}, -1},
		{"SDIS order by site", Dis{Site: 2}, Dis{Site: 7}, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
			if got := tt.b.Compare(tt.a); got != -tt.want {
				t.Errorf("Compare(%v, %v) = %d, want %d", tt.b, tt.a, got, -tt.want)
			}
		})
	}
}

func TestDisString(t *testing.T) {
	tests := []struct {
		d    Dis
		want string
	}{
		{Canonical, "⊥"},
		{Dis{Site: 42}, "s42"},
		{Dis{Counter: 7, Site: 3}, "c7s3"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("%#v.String() = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestIsCanonical(t *testing.T) {
	if !Canonical.IsCanonical() {
		t.Error("Canonical.IsCanonical() = false")
	}
	if (Dis{Site: 1}).IsCanonical() {
		t.Error("site disambiguator reported canonical")
	}
	if (Dis{Counter: 1}).IsCanonical() {
		t.Error("counter-only disambiguator reported canonical")
	}
}

func TestPaperCost(t *testing.T) {
	// Section 5: 6-byte site identifiers for both schemes, 4-byte UDIS counter.
	sdis := PaperCost(SDIS)
	if sdis.DisBytes() != 6 {
		t.Errorf("SDIS disambiguator = %d bytes, want 6", sdis.DisBytes())
	}
	udis := PaperCost(UDIS)
	if udis.DisBytes() != 10 {
		t.Errorf("UDIS disambiguator = %d bytes, want 10", udis.DisBytes())
	}
	if got := CompactCost().DisBytes(); got != 2 {
		t.Errorf("compact SDIS disambiguator = %d bytes, want 2", got)
	}
}

func TestCostBits(t *testing.T) {
	c := PaperCost(UDIS)
	if got := c.Bits(Canonical); got != 0 {
		t.Errorf("canonical disambiguator costs %d bits, want 0", got)
	}
	if got := c.Bits(Dis{Counter: 1, Site: 2}); got != 80 {
		t.Errorf("UDIS disambiguator costs %d bits, want 80", got)
	}
}

func TestModeString(t *testing.T) {
	if SDIS.String() != "SDIS" || UDIS.String() != "UDIS" {
		t.Errorf("mode strings: %s, %s", SDIS, UDIS)
	}
	if Mode(0).String() != "Mode(0)" {
		t.Errorf("invalid mode string: %s", Mode(0))
	}
}

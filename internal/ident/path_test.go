package ident

import (
	"sort"
	"testing"
)

// dsite returns an SDIS disambiguator for site n, used throughout the tests
// to mirror the paper's dA, dB, … notation.
func dsite(n SiteID) Dis { return Dis{Site: n} }

func TestPathStringParseRoundTrip(t *testing.T) {
	paths := []string{
		"[(1:s1)]",
		"[10(0:s25)]",
		"[10(0:s3)(1:s4)]",
		"[1110(0:c3s1)]",
		"[(0:⊥)]",
		"[01(1:⊥)]",
	}
	for _, s := range paths {
		p, err := ParsePath(s)
		if err != nil {
			t.Fatalf("ParsePath(%q): %v", s, err)
		}
		if got := p.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParsePathErrors(t *testing.T) {
	bad := []string{
		"",                            // no brackets
		"[10",                         // unterminated
		"[2]",                         // bad bit
		"[(0:s1]",                     // unterminated mini
		"[(2:s1)]",                    // bad mini bit
		"[(0;s1)]",                    // bad separator
		"[(0:x1)]",                    // bad dis
		"[(0:c1)]",                    // counter without site
		"[(0:s99999999999999999999)]", // overflow
	}
	for _, s := range bad {
		if _, err := ParsePath(s); err == nil {
			t.Errorf("ParsePath(%q) succeeded, want error", s)
		}
	}
}

// TestFigure2Order reproduces Figure 2 of the paper: the document "abcdef"
// with one atom per site, laid out as the complete tree of Figure 1. The
// paper's figure places atom c at the tree root; our root holds no atoms
// (DESIGN.md), so the same shape sits one level down: the heap layout
// a=[00], b=[0], c=[01], d=[10], e=[1], f=[11], which must sort in document
// order under the infix walk.
func TestFigure2Order(t *testing.T) {
	ids := map[string]string{
		"a": "[0(0:s1)]",
		"b": "[(0:s2)]",
		"c": "[0(1:s3)]",
		"d": "[1(0:s4)]",
		"e": "[(1:s5)]",
		"f": "[1(1:s6)]",
	}
	want := []string{"a", "b", "c", "d", "e", "f"}
	type pair struct {
		atom string
		id   Path
	}
	var all []pair
	for atom, s := range ids {
		all = append(all, pair{atom, MustParsePath(s)})
	}
	sort.Slice(all, func(i, j int) bool { return Less(all[i].id, all[j].id) })
	for i, p := range all {
		if p.atom != want[i] {
			t.Fatalf("position %d = %q, want %q (order %v)", i, p.atom, want[i], all)
		}
	}
}

// TestFigure3And4Order reproduces the concurrent-insert scenario of
// Figures 3 and 4: W and Y inserted concurrently between c and d become
// mini-siblings ordered by disambiguator (dW < dY); X inserted between
// W and Y becomes a child of mini-node W (the paper's [10(0:dW)(1:dX)]);
// and Z inserted between Y and d lands in the major-right child of the
// W/Y node (the paper's [100(1:dZ)]). The paper roots this scenario at
// atom c; our root holds no atoms, so the identifiers carry c's position
// [(1:s3)] as prefix context and the W/Y node is [110] instead of [100].
func TestFigure3And4Order(t *testing.T) {
	c := MustParsePath("[(1:s3)]")
	d := MustParsePath("[1(1:s4)]")
	w := MustParsePath("[11(0:s7)]") // dW = s7
	y := MustParsePath("[11(0:s9)]") // dY = s9 > dW
	x := MustParsePath("[11(0:s7)(1:s8)]")
	z := MustParsePath("[110(1:s10)]") // inserted between Y and d (Fig 3 text)

	wantOrder := []struct {
		name string
		id   Path
	}{
		{"c", c}, {"W", w}, {"X", x}, {"Y", y}, {"Z", z}, {"d", d},
	}
	for i := 0; i < len(wantOrder)-1; i++ {
		a, b := wantOrder[i], wantOrder[i+1]
		if Compare(a.id, b.id) >= 0 {
			t.Errorf("want %s %v < %s %v", a.name, a.id, b.name, b.id)
		}
	}
}

// TestFigure5BalancedID checks the balanced-growth identifier from
// Section 4.1: appending g to the Figure 2 document grows the tree by
// ⌈log2(h)⌉+1 = 3 levels, yielding [1110(0:d)].
func TestFigure5BalancedID(t *testing.T) {
	f := MustParsePath("[1(1:s6)]")
	g := MustParsePath("[1110(0:s7)]")
	if Compare(f, g) >= 0 {
		t.Errorf("g must sort after f: %v >= %v", f, g)
	}
	// g is the smallest identifier in the grown subtree rooted at [111]:
	// every other slot in that subtree sorts after it.
	later := []string{"[111(0:s1)]", "[1110(1:s1)]", "[(1:s1)]"} // last: future root-right sibling region n/a
	_ = later
	for _, s := range []string{"[111(0:s1)]", "[1110(1:s1)]", "[1111(0:s1)]", "[111(1:s1)]"} {
		o := MustParsePath(s)
		if Compare(g, o) >= 0 {
			t.Errorf("g %v must sort before grown-subtree slot %v", g, o)
		}
	}
}

func TestCompareTable(t *testing.T) {
	tests := []struct {
		name string
		a, b string
		want int
	}{
		{"equal", "[(1:s1)]", "[(1:s1)]", 0},
		{"bit order at root", "[(0:s9)]", "[(1:s1)]", -1},
		{"left child before parent", "[1(0:s1)]", "[(1:s2)]", -1},
		{"right child after parent", "[1(1:s1)]", "[(1:s2)]", +1},
		{"mini order", "[10(0:s3)]", "[10(0:s5)]", -1},
		{"canonical mini first", "[10(0:⊥)]", "[10(0:s1)]", -1},
		{"major-left subtree before minis", "[100(0:s9)]", "[10(0:s1)]", -1},
		{"major-left subtree before minis, same bit", "[1010(0:s9)]", "[10(1:s1)]", -1},
		{"minis before major-right subtree", "[10(1:s9)]", "[1011(0:s1)]", -1},
		{"mini-left subtree before mini atom", "[1(0:s4)(0:s9)]", "[1(0:s4)]", -1},
		{"mini-right subtree after mini atom", "[1(0:s4)(1:s1)]", "[1(0:s4)]", +1},
		{"mini subtrees nest between sibling minis", "[1(0:s4)(1:s9)]", "[1(0:s5)]", -1},
		{"UDIS counter dominates site", "[(0:c1s9)]", "[(0:c2s1)]", -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, b := MustParsePath(tt.a), MustParsePath(tt.b)
			if got := Compare(a, b); got != tt.want {
				t.Errorf("Compare(%s, %s) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
			if got := Compare(b, a); got != -tt.want {
				t.Errorf("Compare(%s, %s) = %d, want %d", tt.b, tt.a, got, -tt.want)
			}
		})
	}
}

func TestBetween(t *testing.T) {
	p := MustParsePath("[(0:s1)]")
	n := MustParsePath("[(0:s1)(1:s2)]")
	f := MustParsePath("[(1:s1)]")
	if !Between(p, n, f) {
		t.Errorf("Between(%v, %v, %v) = false", p, n, f)
	}
	if !Between(nil, p, f) {
		t.Error("nil lower bound should act as -inf")
	}
	if !Between(p, f, nil) {
		t.Error("nil upper bound should act as +inf")
	}
	if Between(p, p, f) {
		t.Error("Between must be strict at the lower bound")
	}
	if Between(p, f, f) {
		t.Error("Between must be strict at the upper bound")
	}
}

func TestValidate(t *testing.T) {
	if err := (Path{}).Validate(); err == nil {
		t.Error("empty path validated as atom identifier")
	}
	if err := MustParsePath("[10(0:s1)]").Validate(); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := (Path{J(1)}).Validate(); err == nil {
		t.Error("path ending in major element validated as atom identifier")
	}
	if err := (Path{{Bit: 2, Kind: Mini}}).Validate(); err == nil {
		t.Error("bit 2 validated")
	}
	if err := (Path{{Bit: 0, Kind: 0}}).Validate(); err == nil {
		t.Error("kind 0 validated")
	}
}

func TestPathHelpers(t *testing.T) {
	p := MustParsePath("[10(0:s3)]")
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
	if p.IsRoot() || !(Path{}).IsRoot() {
		t.Error("IsRoot misbehaves")
	}
	if p.Last() != M(0, dsite(3)) {
		t.Errorf("Last = %v", p.Last())
	}
	q := p.Clone()
	q[0] = J(0)
	if p[0] != J(1) {
		t.Error("Clone aliases the original")
	}
	c := p.Child(M(1, dsite(4)))
	if c.String() != "[10(0:s3)(1:s4)]" {
		t.Errorf("Child = %s", c)
	}
	if p.String() != "[10(0:s3)]" {
		t.Error("Child mutated the parent")
	}
	s := p.StripLastDis()
	if s.String() != "[100]" {
		t.Errorf("StripLastDis = %s, want [100]", s)
	}
	if !c.HasPrefix(p) || p.HasPrefix(c) {
		t.Error("HasPrefix misbehaves")
	}
	if !p.Equal(p.Clone()) || p.Equal(s) {
		t.Error("Equal misbehaves")
	}
	var nilPath Path
	if nilPath.Clone() != nil {
		t.Error("Clone(nil) != nil")
	}
}

func TestPathBits(t *testing.T) {
	sdis := PaperCost(SDIS)
	udis := PaperCost(UDIS)
	tests := []struct {
		path string
		cost Cost
		want int
	}{
		// Pure canonical path: bits only (Section 4.2: after explode, a
		// path is a simple bitstring).
		{"[01(1:⊥)]", sdis, 3},
		// One SDIS disambiguator: 3 bits + 48.
		{"[01(1:s2)]", sdis, 51},
		// One UDIS disambiguator: 3 bits + 80.
		{"[01(1:c1s2)]", udis, 83},
		// Two minis on the path, one canonical.
		{"[1(0:⊥)(1:s2)]", sdis, 3 + 48},
	}
	for _, tt := range tests {
		p := MustParsePath(tt.path)
		if got := p.Bits(tt.cost); got != tt.want {
			t.Errorf("%s.Bits = %d, want %d", tt.path, got, tt.want)
		}
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	paths := []string{
		"[(1:s1)]",
		"[10(0:s25)]",
		"[10(0:s3)(1:s4)]",
		"[1110(0:c3s1)]",
		"[(0:⊥)]",
		"[0101010101(1:c4294967295s281474976710655)]",
	}
	for _, s := range paths {
		p := MustParsePath(s)
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %s: %v", s, err)
		}
		var q Path
		if err := q.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal %s: %v", s, err)
		}
		if !p.Equal(q) {
			t.Errorf("round trip %s -> %s", p, q)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	p := MustParsePath("[10(0:c9s9)]")
	data := p.AppendBinary(nil)
	for cut := 0; cut < len(data); cut++ {
		if _, _, err := DecodePath(data[:cut]); err == nil && cut < len(data) {
			// Some prefixes decode as a shorter valid path only if the length
			// varint says so; with len 3 elements they cannot.
			t.Errorf("DecodePath of %d-byte prefix succeeded", cut)
		}
	}
	if _, _, err := DecodePath([]byte{1, 7}); err == nil {
		t.Error("invalid element form decoded")
	}
	var q Path
	if err := q.UnmarshalBinary(append(data, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Length varint larger than buffer.
	if _, _, err := DecodePath([]byte{200}); err == nil {
		t.Error("truncated length accepted")
	}
}

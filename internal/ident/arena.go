package ident

// arenaChunkElems is the bump-allocation block size: 4096 elements is 64 KiB
// per chunk, amortising one heap allocation over dozens of identifiers even
// at the deep-tree identifier lengths the naive strategy produces.
const arenaChunkElems = 4096

// Arena is a bump allocator for identifier paths. Hot paths that mint one
// escaping identifier per operation (local edit ops carry their identifier
// out to the caller) allocate from an arena so the per-operation heap
// allocation collapses into one chunk allocation per few dozen operations.
//
// The arena never reuses memory: allocation only advances within a chunk,
// and a full chunk is abandoned to the garbage collector, which frees it
// once no allocated path references it. A long-retained path therefore pins
// at most one chunk. Element slices handed out are capacity-clipped, so
// appending to an allocated path can never overwrite a neighbouring one.
//
// The zero value is ready to use. An Arena is not safe for concurrent use;
// each Document owns one.
type Arena struct {
	chunk []Elem
}

// Alloc returns a zeroed path of length n. Oversized requests fall through
// to a direct allocation rather than wasting a fresh chunk.
func (a *Arena) Alloc(n int) Path {
	if n > arenaChunkElems/4 {
		return make(Path, n)
	}
	if len(a.chunk)+n > cap(a.chunk) {
		a.chunk = make([]Elem, 0, arenaChunkElems)
	}
	off := len(a.chunk)
	a.chunk = a.chunk[:off+n]
	return Path(a.chunk[off : off+n : off+n])
}

// Copy returns an arena-allocated copy of p.
func (a *Arena) Copy(p Path) Path {
	q := a.Alloc(len(p))
	copy(q, p)
	return q
}

// Extend returns the path p+e. When p is the most recent allocation from
// this arena — a run of child-of-previous mints, the shape typing produces —
// the element is written in place after p and no copy happens: the chunk
// then backs both p and the result, which is safe because handed-out paths
// are immutable and capacity-clipped. The shared backing also makes prefix
// comparison against p O(1) (see Compare). Otherwise it falls back to an
// allocate-and-copy.
func (a *Arena) Extend(p Path, e Elem) Path {
	n := len(p)
	if n > 0 && n <= len(a.chunk) && len(a.chunk) < cap(a.chunk) &&
		&p[0] == &a.chunk[len(a.chunk)-n] {
		off := len(a.chunk)
		a.chunk = a.chunk[:off+1]
		a.chunk[off] = e
		return Path(a.chunk[off-n : off+1 : off+1])
	}
	q := a.Alloc(n + 1)
	copy(q, p)
	q[n] = e
	return q
}

package diff

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func apply(t *testing.T, a []string, script []Op) []string {
	t.Helper()
	out, err := Apply(a, script)
	if err != nil {
		t.Fatalf("apply %v to %v: %v", script, a, err)
	}
	return out
}

func TestBasicScripts(t *testing.T) {
	tests := []struct {
		name string
		a, b []string
		ops  int // expected script length (shortest edit distance), -1 = skip
	}{
		{"equal", []string{"x", "y"}, []string{"x", "y"}, 0},
		{"empty to doc", nil, []string{"a", "b"}, 2},
		{"doc to empty", []string{"a", "b"}, nil, 2},
		{"append", []string{"a"}, []string{"a", "b"}, 1},
		{"prepend", []string{"b"}, []string{"a", "b"}, 1},
		{"middle insert", []string{"a", "c"}, []string{"a", "b", "c"}, 1},
		{"delete middle", []string{"a", "b", "c"}, []string{"a", "c"}, 1},
		{"replace", []string{"a", "b", "c"}, []string{"a", "X", "c"}, 2},
		{"swap blocks", []string{"a", "b", "c", "d"}, []string{"c", "d", "a", "b"}, 4},
		{"total rewrite", []string{"a", "b"}, []string{"x", "y", "z"}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			script := Atoms(tt.a, tt.b)
			got := apply(t, tt.a, script)
			if !reflect.DeepEqual(got, normalize(tt.b)) {
				t.Fatalf("Apply = %v, want %v (script %v)", got, tt.b, script)
			}
			if tt.ops >= 0 && len(script) != tt.ops {
				t.Errorf("script length = %d, want %d: %v", len(script), tt.ops, script)
			}
		})
	}
}

// normalize maps nil to the empty slice for DeepEqual.
func normalize(s []string) []string {
	if s == nil {
		return []string{}
	}
	return s
}

func TestApplyErrors(t *testing.T) {
	if _, err := Apply([]string{"a"}, []Op{{Kind: Delete, Index: 5}}); err == nil {
		t.Error("delete out of range accepted")
	}
	if _, err := Apply([]string{"a"}, []Op{{Kind: Insert, Index: 5, Atom: "x"}}); err == nil {
		t.Error("insert out of range accepted")
	}
	if _, err := Apply(nil, []Op{{Kind: 9}}); err == nil {
		t.Error("bad kind accepted")
	}
}

func TestOpString(t *testing.T) {
	if got := (Op{Kind: Insert, Index: 3, Atom: "x"}).String(); got != `+3"x"` {
		t.Errorf("insert string = %q", got)
	}
	if got := (Op{Kind: Delete, Index: 7}).String(); got != "-7" {
		t.Errorf("delete string = %q", got)
	}
}

// TestRandomRoundTrip: for random document pairs, applying the script to a
// yields b. This is the correctness property the replay pipeline rests on.
func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	alphabet := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	randDoc := func(n int) []string {
		doc := make([]string, n)
		for i := range doc {
			doc[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return doc
	}
	for trial := 0; trial < 300; trial++ {
		a := randDoc(rng.Intn(40))
		b := randDoc(rng.Intn(40))
		script := Atoms(a, b)
		got, err := Apply(a, script)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(b)) {
			t.Fatalf("trial %d: a=%v b=%v script=%v got=%v", trial, a, b, script, got)
		}
	}
}

// TestRandomMutationRoundTrip derives b by mutating a (the realistic
// revision pattern) and checks round trips plus script economy: the script
// must not exceed the number of mutations times two.
func TestRandomMutationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 300; trial++ {
		n := 10 + rng.Intn(100)
		a := make([]string, n)
		for i := range a {
			a[i] = fmt.Sprintf("line-%d-%d", trial, i)
		}
		b := append([]string(nil), a...)
		muts := 1 + rng.Intn(8)
		for m := 0; m < muts; m++ {
			switch {
			case len(b) == 0 || rng.Intn(3) == 0:
				i := rng.Intn(len(b) + 1)
				b = append(b, "")
				copy(b[i+1:], b[i:])
				b[i] = fmt.Sprintf("new-%d-%d", trial, m)
			case rng.Intn(2) == 0:
				i := rng.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			default:
				b[rng.Intn(len(b))] = fmt.Sprintf("mod-%d-%d", trial, m)
			}
		}
		script := Atoms(a, b)
		got, err := Apply(a, script)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(b)) {
			t.Fatalf("trial %d: diverged", trial)
		}
		if len(script) > 2*muts {
			t.Errorf("trial %d: script %d ops for %d mutations", trial, len(script), muts)
		}
	}
}

// Package diff computes line/atom-level edit scripts between document
// revisions, reproducing the paper's replay pipeline: "for each revision,
// we compute the differences from the previous version, and execute an
// equivalent sequence of insert and delete operations" (Section 5).
// Modifying an atom appears as a delete plus an insert, exactly as the
// paper models it.
//
// The algorithm is Myers' O(ND) greedy shortest edit script.
package diff

import "fmt"

// Kind is an edit script operation type.
type Kind uint8

const (
	// Delete removes the atom at Index.
	Delete Kind = iota + 1
	// Insert places Atom at Index.
	Insert
)

// Op is one step of an edit script. Ops apply sequentially to the evolving
// document: indices refer to the document state after all preceding ops.
type Op struct {
	Kind  Kind   `json:"k"`
	Index int    `json:"i"`
	Atom  string `json:"a,omitempty"`
}

// String renders the op.
func (o Op) String() string {
	if o.Kind == Insert {
		return fmt.Sprintf("+%d%q", o.Index, o.Atom)
	}
	return fmt.Sprintf("-%d", o.Index)
}

// Atoms computes a shortest edit script transforming a into b.
func Atoms(a, b []string) []Op {
	// Trim common prefix and suffix first: revision diffs are usually local.
	pre := 0
	for pre < len(a) && pre < len(b) && a[pre] == b[pre] {
		pre++
	}
	suf := 0
	for suf < len(a)-pre && suf < len(b)-pre && a[len(a)-1-suf] == b[len(b)-1-suf] {
		suf++
	}
	ca, cb := a[pre:len(a)-suf], b[pre:len(b)-suf]
	script := myers(ca, cb)
	// Rebase onto the untrimmed coordinates.
	out := make([]Op, len(script))
	for i, op := range script {
		op.Index += pre
		out[i] = op
	}
	return out
}

// myers runs the O(ND) algorithm, returning the script in sequential-apply
// form.
func myers(a, b []string) []Op {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return nil
	}
	max := n + m
	// v[k] = furthest x on diagonal k; store a copy per step for backtrack.
	offset := max
	v := make([]int, 2*max+1)
	var trace [][]int
	var dFound = -1
outer:
	for d := 0; d <= max; d++ {
		snapshot := make([]int, len(v))
		copy(snapshot, v)
		trace = append(trace, snapshot)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[offset+k-1] < v[offset+k+1]) {
				x = v[offset+k+1] // down: insert from b
			} else {
				x = v[offset+k-1] + 1 // right: delete from a
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[offset+k] = x
			if x >= n && y >= m {
				dFound = d
				break outer
			}
		}
	}
	// Backtrack from (n, m) to (0, 0) collecting reverse-order raw edits.
	type raw struct {
		del  bool
		x, y int // position in a (del) or target position pair (ins)
	}
	var rev []raw
	x, y := n, m
	for d := dFound; d > 0; d-- {
		vprev := trace[d]
		k := x - y
		var pk int
		if k == -d || (k != d && vprev[offset+k-1] < vprev[offset+k+1]) {
			pk = k + 1 // came from an insert
		} else {
			pk = k - 1 // came from a delete
		}
		px := vprev[offset+pk]
		py := px - pk
		// Walk back the snake.
		for x > px && y > py {
			x--
			y--
		}
		if pk == k+1 {
			// Insert of b[py] at position (px in a / py in b).
			rev = append(rev, raw{del: false, x: px, y: py})
			y = py
			x = px
		} else {
			rev = append(rev, raw{del: true, x: px, y: py})
			x = px
			y = py
		}
	}
	// Convert to forward order with sequential indices. Process raw edits in
	// forward order (reverse of rev); maintain the shift between a-indices
	// and current-document indices.
	ops := make([]Op, 0, len(rev))
	shift := 0
	for i := len(rev) - 1; i >= 0; i-- {
		r := rev[i]
		if r.del {
			ops = append(ops, Op{Kind: Delete, Index: r.x + shift})
			shift--
		} else {
			ops = append(ops, Op{Kind: Insert, Index: r.x + shift, Atom: b[r.y]})
			shift++
		}
	}
	return ops
}

// Apply executes a script against a document, returning the result. It is
// the reference executor used by tests and the trace replayer.
func Apply(a []string, script []Op) ([]string, error) {
	out := make([]string, len(a))
	copy(out, a)
	for i, op := range script {
		switch op.Kind {
		case Delete:
			if op.Index < 0 || op.Index >= len(out) {
				return nil, fmt.Errorf("diff: op %d: delete index %d out of range [0,%d)", i, op.Index, len(out))
			}
			out = append(out[:op.Index], out[op.Index+1:]...)
		case Insert:
			if op.Index < 0 || op.Index > len(out) {
				return nil, fmt.Errorf("diff: op %d: insert index %d out of range [0,%d]", i, op.Index, len(out))
			}
			out = append(out, "")
			copy(out[op.Index+1:], out[op.Index:])
			out[op.Index] = op.Atom
		default:
			return nil, fmt.Errorf("diff: op %d: invalid kind %d", i, op.Kind)
		}
	}
	return out, nil
}

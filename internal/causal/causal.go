// Package causal implements causal broadcast delivery: operations are
// buffered until every operation that happened-before them has been
// delivered. This is the replay contract the Treedoc CRDT requires:
// "Updates received from remote sites may be replayed as soon as received,
// as long as happened-before order is satisfied" (Section 2.2).
//
// The implementation is the classic vector-clock causal broadcast: a
// message from site s carrying timestamp T is deliverable at a replica with
// clock V when V[s] = T[s]-1 (it is the next message from s) and V[k] ≥ T[k]
// for every other site k (all its causal dependencies are in).
package causal

import (
	"fmt"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

// Message is a causally-timestamped broadcast payload.
type Message struct {
	From ident.SiteID
	// TS is the sender's vector clock after ticking its own entry for this
	// message: TS[From] is the message's sequence number, the other entries
	// its causal dependencies.
	TS      vclock.VC
	Payload any
}

// Lossy marks operation gossip as tolerating network loss: duplicate
// suppression and the anti-entropy retransmission layer make redelivery
// safe and eventual delivery certain.
func (Message) Lossy() bool { return true }

// Buffer implements causal delivery for one replica. The zero value is not
// usable; call NewBuffer. Not safe for concurrent use.
type Buffer struct {
	site      ident.SiteID
	delivered vclock.VC
	pending   []Message
}

// NewBuffer creates a delivery buffer for the given site.
func NewBuffer(site ident.SiteID) *Buffer {
	return &Buffer{site: site, delivered: vclock.New()}
}

// Stamp timestamps an outgoing local broadcast: it ticks the local entry
// and returns the message to send. Local messages count as delivered
// immediately (a replica has, by definition, seen its own operations).
func (b *Buffer) Stamp(payload any) Message {
	b.delivered.Tick(b.site)
	return Message{From: b.site, TS: b.delivered.Clone(), Payload: payload}
}

// Clock returns a copy of the delivered vector clock.
func (b *Buffer) Clock() vclock.VC { return b.delivered.Clone() }

// Pending returns the number of buffered undeliverable messages.
func (b *Buffer) Pending() int { return len(b.pending) }

// Prune discards buffered undeliverable messages beyond max, oldest first,
// and returns how many were dropped. A transport calls it to bound the
// memory a hostile or broken peer can pin with wire-valid messages whose
// causal dependencies never arrive; legitimate pruned messages are
// recovered by anti-entropy retransmission.
func (b *Buffer) Prune(max int) int {
	if max < 0 {
		max = 0
	}
	n := len(b.pending) - max
	if n <= 0 {
		return 0
	}
	b.pending = append(b.pending[:0], b.pending[n:]...)
	return n
}

// Advance raises the delivered clock to cover vc (pointwise maximum) and
// returns any buffered messages that become deliverable, in causal order.
// A transport calls it after installing a state snapshot: the snapshot's
// version vector stands in for the messages it contains, so everything at
// or below it counts as delivered and buffered successors may now flow.
func (b *Buffer) Advance(vc vclock.VC) []Message {
	b.delivered.Merge(vc)
	var out []Message
	for progress := true; progress; {
		progress = false
		for i := 0; i < len(b.pending); i++ {
			p := b.pending[i]
			if p.TS.Get(p.From) <= b.delivered.Get(p.From) {
				// Covered by the snapshot (or a duplicate): drop.
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				i--
				continue
			}
			if !b.deliverable(p) {
				continue
			}
			b.delivered.Merge(p.TS)
			out = append(out, p)
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			i--
			progress = true
		}
	}
	return out
}

// deliverable reports whether m can be delivered now.
func (b *Buffer) deliverable(m Message) bool {
	for s, n := range m.TS {
		if s == m.From {
			if b.delivered.Get(s)+1 != n {
				return false
			}
			continue
		}
		if b.delivered.Get(s) < n {
			return false
		}
	}
	return true
}

// Add ingests a received message and returns every message that becomes
// deliverable, in causal order. Duplicate and own messages are dropped.
func (b *Buffer) Add(m Message) ([]Message, error) {
	if m.From == 0 {
		return nil, fmt.Errorf("causal: message without sender")
	}
	if m.TS.Get(m.From) == 0 {
		return nil, fmt.Errorf("causal: message from s%d without own timestamp", m.From)
	}
	if m.From == b.site || m.TS.Get(m.From) <= b.delivered.Get(m.From) {
		return nil, nil // own or already-delivered message
	}
	b.pending = append(b.pending, m)
	var out []Message
	for progress := true; progress; {
		progress = false
		for i := 0; i < len(b.pending); i++ {
			p := b.pending[i]
			if p.TS.Get(p.From) <= b.delivered.Get(p.From) {
				// Duplicate that became stale while buffered.
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				i--
				continue
			}
			if !b.deliverable(p) {
				continue
			}
			b.delivered.Merge(p.TS)
			out = append(out, p)
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			i--
			progress = true
		}
	}
	return out, nil
}

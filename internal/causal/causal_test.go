package causal

import (
	"math/rand"
	"testing"

	"github.com/treedoc/treedoc/internal/ident"
	"github.com/treedoc/treedoc/internal/vclock"
)

func TestStampTicksOwnEntry(t *testing.T) {
	b := NewBuffer(1)
	m1 := b.Stamp("x")
	m2 := b.Stamp("y")
	if m1.TS.Get(1) != 1 || m2.TS.Get(1) != 2 {
		t.Errorf("timestamps: %v, %v", m1.TS, m2.TS)
	}
	if m1.From != 1 {
		t.Errorf("from = %d", m1.From)
	}
}

func TestInOrderDelivery(t *testing.T) {
	a := NewBuffer(1)
	b := NewBuffer(2)
	m1 := a.Stamp("one")
	m2 := a.Stamp("two")
	got, err := b.Add(m1)
	if err != nil || len(got) != 1 || got[0].Payload != "one" {
		t.Fatalf("first delivery: %v, %v", got, err)
	}
	got, err = b.Add(m2)
	if err != nil || len(got) != 1 || got[0].Payload != "two" {
		t.Fatalf("second delivery: %v, %v", got, err)
	}
}

func TestOutOfOrderBuffered(t *testing.T) {
	a := NewBuffer(1)
	b := NewBuffer(2)
	m1 := a.Stamp("one")
	m2 := a.Stamp("two")
	got, err := b.Add(m2)
	if err != nil || len(got) != 0 {
		t.Fatalf("early message delivered: %v, %v", got, err)
	}
	if b.Pending() != 1 {
		t.Errorf("pending = %d", b.Pending())
	}
	got, err = b.Add(m1)
	if err != nil || len(got) != 2 {
		t.Fatalf("catch-up: %v, %v", got, err)
	}
	if got[0].Payload != "one" || got[1].Payload != "two" {
		t.Errorf("order: %v", got)
	}
	if b.Pending() != 0 {
		t.Errorf("pending = %d", b.Pending())
	}
}

func TestCrossDependency(t *testing.T) {
	// Site 1 sends m1; site 2 receives it then sends m2 (m1 → m2). A third
	// site receiving m2 first must wait for m1.
	a, b, c := NewBuffer(1), NewBuffer(2), NewBuffer(3)
	m1 := a.Stamp("m1")
	if _, err := b.Add(m1); err != nil {
		t.Fatal(err)
	}
	m2 := b.Stamp("m2")
	got, err := c.Add(m2)
	if err != nil || len(got) != 0 {
		t.Fatalf("m2 delivered before its dependency: %v, %v", got, err)
	}
	got, err = c.Add(m1)
	if err != nil || len(got) != 2 {
		t.Fatalf("delivery after dependency: %v, %v", got, err)
	}
	if got[0].Payload != "m1" || got[1].Payload != "m2" {
		t.Errorf("order: %v", got)
	}
}

func TestDuplicatesDropped(t *testing.T) {
	a, b := NewBuffer(1), NewBuffer(2)
	m := a.Stamp("x")
	if got, _ := b.Add(m); len(got) != 1 {
		t.Fatal("first copy not delivered")
	}
	if got, _ := b.Add(m); len(got) != 0 {
		t.Error("duplicate delivered")
	}
	// Own messages are ignored.
	own := b.Stamp("own")
	if got, _ := b.Add(own); len(got) != 0 {
		t.Error("own message delivered")
	}
}

func TestBufferedDuplicateCleanup(t *testing.T) {
	a, b := NewBuffer(1), NewBuffer(2)
	m1 := a.Stamp("one")
	m2 := a.Stamp("two")
	if got, _ := b.Add(m2); len(got) != 0 {
		t.Fatal("m2 early")
	}
	if got, _ := b.Add(m2); len(got) != 0 {
		t.Fatal("dup m2")
	}
	got, _ := b.Add(m1)
	if len(got) != 2 {
		t.Fatalf("delivered %d, want 2 (duplicate must not deliver twice)", len(got))
	}
	if b.Pending() != 0 {
		t.Errorf("pending = %d", b.Pending())
	}
}

func TestAddErrors(t *testing.T) {
	b := NewBuffer(1)
	if _, err := b.Add(Message{From: 0}); err == nil {
		t.Error("message without sender accepted")
	}
	if _, err := b.Add(Message{From: 2, TS: vclock.VC{}}); err == nil {
		t.Error("message without own timestamp accepted")
	}
}

// TestRandomDeliveryAllArrive drives N senders' interleaved causal streams
// through one receiver in random order and checks complete, causally
// ordered delivery.
func TestRandomDeliveryAllArrive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const senders = 4
	const msgs = 50
	bufs := make([]*Buffer, senders)
	for i := range bufs {
		bufs[i] = NewBuffer(ident.SiteID(i + 1))
	}
	var all []Message
	// Random causal history: before each send, the sender may "receive" some
	// pending messages from others, creating cross-dependencies.
	for k := 0; k < senders*msgs; k++ {
		i := rng.Intn(senders)
		for _, m := range all {
			if rng.Intn(4) == 0 {
				_, _ = bufs[i].Add(m)
			}
		}
		all = append(all, bufs[i].Stamp(k))
	}
	recv := NewBuffer(99)
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	var delivered []Message
	for _, m := range all {
		got, err := recv.Add(m)
		if err != nil {
			t.Fatal(err)
		}
		delivered = append(delivered, got...)
	}
	if len(delivered) != len(all) {
		t.Fatalf("delivered %d of %d (pending %d)", len(delivered), len(all), recv.Pending())
	}
	// Causal order: per-sender sequence numbers ascend, and every message's
	// dependencies precede it.
	seen := vclock.New()
	for _, m := range delivered {
		for s, n := range m.TS {
			if s == m.From {
				if seen.Get(s)+1 != n {
					t.Fatalf("sender %d out of order: have %d, got %d", s, seen.Get(s), n)
				}
				continue
			}
			if seen.Get(s) < n {
				t.Fatalf("dependency violated: need s%d:%d, have %d", s, n, seen.Get(s))
			}
		}
		seen.Tick(m.From)
	}
}

func TestPruneBoundsPending(t *testing.T) {
	b := NewBuffer(1)
	// Messages from site 7 with a permanent causal gap (seq 1 never sent)
	// stay pending forever.
	for i := 0; i < 100; i++ {
		if _, err := b.Add(Message{From: 7, TS: vclock.VC{7: uint64(i) + 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Pending(); got != 100 {
		t.Fatalf("Pending = %d, want 100", got)
	}
	if n := b.Prune(150); n != 0 {
		t.Fatalf("Prune above backlog dropped %d", n)
	}
	if n := b.Prune(30); n != 70 {
		t.Fatalf("Prune(30) dropped %d, want 70", n)
	}
	if got := b.Pending(); got != 30 {
		t.Fatalf("Pending after prune = %d, want 30", got)
	}
	// Delivery still works for messages that survived or arrive later: the
	// newest 30 gap messages remain, and a fresh deliverable message from
	// another site goes straight through.
	out, err := b.Add(Message{From: 9, TS: vclock.VC{9: 1}})
	if err != nil || len(out) != 1 {
		t.Fatalf("Add after prune = %v, %v", out, err)
	}
	if n := b.Prune(-1); n != 30 {
		t.Fatalf("Prune(-1) dropped %d, want 30", n)
	}
}

func TestAdvanceFlushesPendingAndDropsCovered(t *testing.T) {
	a := NewBuffer(1)
	b := NewBuffer(2)
	m1 := a.Stamp("one")
	m2 := a.Stamp("two")
	m3 := a.Stamp("three")
	// b receives m2 and m3 out of order: both buffered behind missing m1.
	if got, _ := b.Add(m2); len(got) != 0 {
		t.Fatalf("m2 delivered early: %v", got)
	}
	if got, _ := b.Add(m3); len(got) != 0 {
		t.Fatalf("m3 delivered early: %v", got)
	}
	// A snapshot covering m1 and m2 arrives: m2 is dropped as covered, m3
	// becomes deliverable.
	got := b.Advance(vclock.VC{1: 2})
	if len(got) != 1 || got[0].Payload != "three" {
		t.Fatalf("advance delivered %v", got)
	}
	if b.Pending() != 0 {
		t.Errorf("pending = %d", b.Pending())
	}
	if b.Clock().Get(1) != 3 {
		t.Errorf("clock = %v", b.Clock())
	}
	_ = m1
}

func TestAdvanceOnEmptyBuffer(t *testing.T) {
	b := NewBuffer(2)
	if got := b.Advance(vclock.VC{1: 5, 3: 2}); len(got) != 0 {
		t.Fatalf("advance delivered %v", got)
	}
	if b.Clock().Get(1) != 5 || b.Clock().Get(3) != 2 {
		t.Errorf("clock = %v", b.Clock())
	}
}
